# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# commands; keep the two in sync.

GO ?= go
FUZZTIME ?= 10s

# Stress divisor for the race run: the detector slows execution ~10x,
# so shrink the stress loops by the same factor (see internal/testenv).
RACE_STRESS_DIV ?= 10

# Restrict the lfcheck analyzers: make lint CHECKS=refbalance,abaguard
CHECKS ?=
LFCHECK_FLAGS := $(if $(CHECKS),-checks $(CHECKS))

# Incremental result cache for the analyzers; warm runs re-analyze only
# packages whose sources (or in-module deps, or analyzer versions)
# changed. Point LFCHECK_CACHE elsewhere or empty it to disable.
LFCHECK_CACHE ?= .lfcheck-cache
LFCHECK_CACHE_FLAGS := $(if $(LFCHECK_CACHE),-cache $(LFCHECK_CACHE))

# Serving defaults: make serve / make loadgen (see scripts/smoke.sh for
# the scripted end-to-end version CI runs).
ADDR ?= 127.0.0.1:11311
BACKEND ?= skiplist
MODE ?= rc
CONNS ?= 64
LOAD_DURATION ?= 10s
PROTOCOL ?= text
PIPELINE ?= 1

.PHONY: build test race lint lint-json lint-sarif lint-debt lint-strict \
	fuzz-short fmt-check bench-quick serve loadgen smoke chaos durability \
	bench-server

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	VALOIS_STRESS_DIV=$(RACE_STRESS_DIV) $(GO) test -race -count=1 ./internal/...

# lint = the stock vet pass, the gofmt check, and the lock-free
# invariant analyzers (cmd/lfcheck), cache-warm on repeat runs.
lint: fmt-check
	$(GO) vet ./...
	$(GO) run ./cmd/lfcheck $(LFCHECK_FLAGS) $(LFCHECK_CACHE_FLAGS) ./...

# Machine-readable findings for CI consumers; same exit convention.
lint-json:
	$(GO) run ./cmd/lfcheck $(LFCHECK_FLAGS) $(LFCHECK_CACHE_FLAGS) -json ./...

lint-sarif:
	$(GO) run ./cmd/lfcheck $(LFCHECK_FLAGS) $(LFCHECK_CACHE_FLAGS) -sarif ./...

# lint-debt inventories every //lfcheck:allow suppression (check, reason,
# file age) so accepted analyzer debt stays a tracked number. Always
# exits 0; add JSON=1 for machine-readable output.
lint-debt:
	$(GO) run ./cmd/lfcheck -debt $(if $(JSON),-json) ./...

# lint-strict is the CI gate for suppression hygiene: the inventory plus
# an analysis run, failing on directives that are malformed or stale
# (suppressing nothing — their finding was fixed, so the excuse must go
# before it hides a future one).
lint-strict:
	$(GO) run ./cmd/lfcheck -debt -strict $(LFCHECK_CACHE_FLAGS) ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# bench-quick runs the free-list contention experiment (E10) and the
# memory-mode comparison (E11) at reduced iterations — a CI-speed
# regression check that the striped free list still beats the single head
# and that mode=ebr traversal stays below rc with zero leaked cells. The
# committed BENCH_E10.json / BENCH_E11.json are from the full run:
# go run ./cmd/lfbench -e E10,E11 -json-dir .
bench-quick:
	$(GO) run ./cmd/lfbench -e E10,E11 -quick -d 50ms

fuzz-short:
	$(GO) test -run='^$$' -fuzz=FuzzDictionarySemantics -fuzztime=$(FUZZTIME) ./internal/dict
	$(GO) test -run='^$$' -fuzz=FuzzAllocFree -fuzztime=$(FUZZTIME) ./internal/buddy
	$(GO) test -run='^$$' -fuzz=FuzzParseCommand -fuzztime=$(FUZZTIME) ./internal/proto
	$(GO) test -run='^$$' -fuzz=FuzzReadReply -fuzztime=$(FUZZTIME) ./internal/proto
	$(GO) test -run='^$$' -fuzz=FuzzCommandRoundTrip -fuzztime=$(FUZZTIME) ./internal/proto
	$(GO) test -run='^$$' -fuzz=FuzzRESPCommand -fuzztime=$(FUZZTIME) ./internal/proto
	$(GO) test -run='^$$' -fuzz=FuzzRESPRoundTrip -fuzztime=$(FUZZTIME) ./internal/proto
	$(GO) test -run='^$$' -fuzz=FuzzAOFRecord -fuzztime=$(FUZZTIME) ./internal/persist

# serve runs valoisd in the foreground; stop it with Ctrl-C or SIGTERM
# (both drain in-flight requests before exiting).
serve:
	$(GO) run ./cmd/valoisd -addr $(ADDR) -backend $(BACKEND) -mode $(MODE)

# loadgen drives a running valoisd (see `make serve`) and writes
# BENCH_server.json at the repo root.
loadgen:
	$(GO) run ./cmd/lfload -addr $(ADDR) -conns $(CONNS) -d $(LOAD_DURATION) \
		-protocol $(PROTOCOL) -pipeline $(PIPELINE)

# bench-server runs the four-arm serving benchmark (text/resp × batch
# on/off) against a freshly built valoisd on an ephemeral port and
# regenerates BENCH_server.json from the winning pipelined arm. See
# scripts/bench_server.sh for knobs (BENCH_DURATION, BENCH_CONNS, ...).
bench-server:
	sh scripts/bench_server.sh

# smoke builds both binaries, boots the server on an ephemeral loopback
# port, sustains $(CONNS) connections, then checks SIGTERM drains to
# exit 0.
smoke:
	SMOKE_CONNS=$(CONNS) SMOKE_BACKEND=$(BACKEND) SMOKE_MODE=$(MODE) \
		sh scripts/smoke.sh

# durability runs the persistence layer end to end, race-enabled: the
# AOF/snapshot unit and torn-tail tests, the snapshot-under-mutation
# scans, the in-process recovery round-trips, and the crash-restart
# chaos matrix (SIGKILL a real valoisd mid-run, restart from disk,
# check the merged history for linearizability — see
# internal/server/crashrestart_test.go).
durability:
	VALOIS_STRESS_DIV=$(RACE_STRESS_DIV) $(GO) test -race -count=1 ./internal/persist
	VALOIS_STRESS_DIV=$(RACE_STRESS_DIV) $(GO) test -race -count=1 -timeout 15m \
		-run 'TestCrashRestart|TestServerRecovery|TestServerSnapshot|TestServerPersistStats' \
		./internal/server

# chaos runs the fault-injection suite race-enabled: every backend ×
# memory mode through the faultnet proxy with client histories checked
# for wire-level linearizability, plus the deadline / max-conns / panic
# hardening tests (DESIGN.md §8). Failures print the replay seed.
chaos:
	$(GO) test -race -count=1 ./internal/faultnet
	VALOIS_STRESS_DIV=$(RACE_STRESS_DIV) $(GO) test -race -count=1 -timeout 15m \
		-run 'TestChaos|TestWireLinearizable|TestSlowLoris|TestIdleTimeout|TestMaxConns|TestPanicIsolation|TestRetry|TestTransient|TestFatalProto' \
		./internal/server ./internal/client
