# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# commands; keep the two in sync.

GO ?= go
FUZZTIME ?= 10s

# Stress divisor for the race run: the detector slows execution ~10x,
# so shrink the stress loops by the same factor (see internal/testenv).
RACE_STRESS_DIV ?= 10

# Restrict the lfcheck analyzers: make lint CHECKS=refbalance,abaguard
CHECKS ?=
LFCHECK_FLAGS := $(if $(CHECKS),-checks $(CHECKS))

.PHONY: build test race lint lint-json lint-sarif fuzz-short fmt-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	VALOIS_STRESS_DIV=$(RACE_STRESS_DIV) $(GO) test -race -count=1 ./internal/...

# lint = the stock vet pass, the gofmt check, and the lock-free
# invariant analyzers (cmd/lfcheck).
lint: fmt-check
	$(GO) vet ./...
	$(GO) run ./cmd/lfcheck $(LFCHECK_FLAGS) ./...

# Machine-readable findings for CI consumers; same exit convention.
lint-json:
	$(GO) run ./cmd/lfcheck $(LFCHECK_FLAGS) -json ./...

lint-sarif:
	$(GO) run ./cmd/lfcheck $(LFCHECK_FLAGS) -sarif ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

fuzz-short:
	$(GO) test -run='^$$' -fuzz=FuzzDictionarySemantics -fuzztime=$(FUZZTIME) ./internal/dict
	$(GO) test -run='^$$' -fuzz=FuzzAllocFree -fuzztime=$(FUZZTIME) ./internal/buddy
