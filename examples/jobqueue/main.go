// Jobqueue: a work-distribution pipeline on the lock-free queue, with a
// lock-free dictionary tracking job results — the §1 scenario that
// motivates avoiding locks. One of the workers is pathologically slow
// (simulating a process stalled by preemption or a page fault); because
// nothing holds a lock, the slow worker delays only the jobs it picked
// up, never the queue or the results index that every other worker uses.
//
// Run with:
//
//	go run ./examples/jobqueue
package main

import (
	"fmt"
	"sync"
	"time"

	"valois"
)

type job struct {
	ID      int
	Payload int
}

const (
	numJobs    = 600
	numWorkers = 8
	slowWorker = 3 // this worker stalls on every job
	jobWork    = 200 * time.Microsecond
	stall      = 4 * time.Millisecond
)

func main() {
	jobs := valois.NewQueue[job]()
	results := valois.NewHashDict[int, int](64, valois.GC, valois.HashInt)

	for i := 0; i < numJobs; i++ {
		jobs.Enqueue(job{ID: i, Payload: i})
	}

	start := time.Now()
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		completed = make(map[int]int, numWorkers) // worker -> jobs done
	)
	for w := 0; w < numWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			done := 0
			for {
				j, ok := jobs.Dequeue()
				if !ok {
					break
				}
				time.Sleep(jobWork) // simulate real per-job work
				if w == slowWorker {
					// A stalled process: under a lock-based queue this
					// would convoy everyone behind it.
					time.Sleep(stall)
				}
				results.Insert(j.ID, j.Payload*j.Payload)
				done++
			}
			mu.Lock()
			completed[w] = done
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	missing := 0
	for i := 0; i < numJobs; i++ {
		if _, ok := results.Find(i); !ok {
			missing++
		}
	}
	fmt.Printf("processed %d jobs in %v (%d missing)\n", numJobs, elapsed.Round(time.Millisecond), missing)
	for w := 0; w < numWorkers; w++ {
		tag := ""
		if w == slowWorker {
			tag = fmt.Sprintf("  <- stalled %v/job, hurt only itself", stall)
		}
		fmt.Printf("  worker %d: %4d jobs%s\n", w, completed[w], tag)
	}
	if v, ok := results.Find(42); ok {
		fmt.Printf("spot check: result[42] = %d\n", v)
	}
}
