// Quickstart: the lock-free list and a dictionary in a dozen lines.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"valois"
)

func main() {
	// A lock-free list of strings. Cursors traverse and edit it; any
	// number of goroutines may hold cursors over the same list.
	l := valois.NewList[string](valois.GC)
	c := l.Cursor()
	c.Insert("world") // insert before the cursor's position
	c.Reset()
	c.Insert("hello")
	c.Reset()
	for !c.End() {
		fmt.Println(c.Item())
		c.Next()
	}
	c.Close()

	// A non-blocking dictionary: here the skip list; the sorted list,
	// hash table, and binary search tree share the same interface.
	d := valois.NewSkipListDict[int, string](valois.GC)
	d.Insert(3, "three")
	d.Insert(1, "one")
	d.Insert(2, "two")
	d.Delete(2)

	if v, ok := d.Find(1); ok {
		fmt.Println("found:", v)
	}
	d.Range(func(k int, v string) bool {
		fmt.Printf("  %d => %s\n", k, v)
		return true
	})
}
