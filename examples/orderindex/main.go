// Orderindex: a sorted price index over the lock-free sorted list
// (§4.1). Traders add and cancel orders concurrently while a reporting
// goroutine repeatedly range-scans the book in price order — the
// paper's headline capability: arbitrary traversal concurrent with
// interior insertion and deletion, with no lock stopping the scanners.
//
// Run with:
//
//	go run ./examples/orderindex
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"valois"
)

type order struct {
	Qty    int
	Trader int
}

const (
	traders    = 6
	priceLevls = 500
	runFor     = 400 * time.Millisecond
)

func main() {
	// Keyed by price (in cents); ordered iteration gives the book in
	// price-priority order. A skip list would serve the same API at
	// O(log n) per operation; the sorted list keeps the example closest
	// to the paper's §3 structure.
	book := valois.NewSortedListDict[int, order](valois.GC)

	var (
		wg      sync.WaitGroup
		stop    atomic.Bool
		adds    atomic.Int64
		cancels atomic.Int64
		scans   atomic.Int64
		scanned atomic.Int64
	)

	for tr := 0; tr < traders; tr++ {
		wg.Add(1)
		go func(tr int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(tr + 1)))
			for !stop.Load() {
				price := 10000 + rng.Intn(priceLevls)
				if rng.Intn(3) > 0 {
					if book.Insert(price, order{Qty: 1 + rng.Intn(100), Trader: tr}) {
						adds.Add(1)
					}
				} else {
					if book.Delete(price) {
						cancels.Add(1)
					}
				}
			}
		}(tr)
	}

	// The scanner: a full in-order pass over the live book, over and
	// over, while the traders mutate it underneath.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			prev := -1
			n := 0
			book.Range(func(price int, o order) bool {
				if price <= prev {
					panic("scan observed prices out of order")
				}
				prev = price
				n++
				return true
			})
			scans.Add(1)
			scanned.Add(int64(n))
		}
	}()

	time.Sleep(runFor)
	stop.Store(true)
	wg.Wait()

	fmt.Printf("order book after %v of concurrent trading:\n", runFor)
	fmt.Printf("  %d orders added, %d cancelled, %d live levels\n",
		adds.Load(), cancels.Load(), book.Len())
	fmt.Printf("  %d full in-order scans completed concurrently (avg %d levels/scan), order always consistent\n",
		scans.Load(), scanned.Load()/maxI64(scans.Load(), 1))

	fmt.Println("best five levels:")
	shown := 0
	book.Range(func(price int, o order) bool {
		fmt.Printf("  $%d.%02d  qty %3d  (trader %d)\n", price/100, price%100, o.Qty, o.Trader)
		shown++
		return shown < 5
	})
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
