// Kvstore: the concurrent key-value cache served over TCP. The example
// boots valoisd's serving core (internal/server) in-process on a loopback
// port with the lock-free hash dictionary (§4.1) behind it, then drives
// it through internal/client the way an external valoisd deployment would
// be: readers issue GETs while writers insert and expire entries, every
// connection multiplexing onto the same lock-free shards, and the run
// reports per-role throughput. The two memory modes are contrasted: GC
// (Go's collector reclaims cells) and RC (the paper's §5 reference
// counts reclaim them exactly — the final STATS line shows the exact
// reclamation balance).
//
// Run with:
//
//	go run ./examples/kvstore
//
// To run against a standalone daemon instead: `make serve` in one shell,
// then point internal/client (or cmd/lfload) at its address.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"valois/internal/client"
	"valois/internal/server"
)

const (
	keySpace = 4096
	readers  = 6
	writers  = 2
	runFor   = 500 * time.Millisecond
)

func main() {
	for _, mode := range []string{"gc", "rc", "ebr"} {
		if err := run(mode); err != nil {
			log.Fatalf("kvstore [%s]: %v", mode, err)
		}
	}
}

func run(mode string) error {
	// Boot the serving core in-process, exactly as cmd/valoisd does.
	srv, err := server.New(server.Config{
		Backend: server.BackendHash,
		Mode:    mode,
		Shards:  8,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()

	// Warm the cache with one pipelined connection.
	warm, err := client.Dial(addr, client.Options{})
	if err != nil {
		return err
	}
	var b client.Batch
	for i := 0; i < keySpace/2; i++ {
		b.Set(key(i), []byte(fmt.Sprint(i)))
	}
	if _, err := warm.Do(&b); err != nil {
		return err
	}
	warm.Close()

	var (
		wg             sync.WaitGroup
		stop           atomic.Bool
		reads, hits    atomic.Int64
		writes, evicts atomic.Int64
	)
	errs := make(chan error, readers+writers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			c, err := client.Dial(addr, client.Options{})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				_, ok, err := c.Get(key(rng.Intn(keySpace)))
				if err != nil {
					errs <- err
					return
				}
				if ok {
					hits.Add(1)
				}
				reads.Add(1)
			}
		}(int64(r + 1))
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			c, err := client.Dial(addr, client.Options{})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				i := rng.Intn(keySpace)
				if rng.Intn(2) == 0 {
					if err := c.Set(key(i), []byte(fmt.Sprint(i))); err != nil {
						errs <- err
						return
					}
					writes.Add(1)
				} else {
					deleted, err := c.Delete(key(i))
					if err != nil {
						errs <- err
						return
					}
					if deleted {
						evicts.Add(1)
					}
				}
			}
		}(int64(100 + w))
	}

	time.Sleep(runFor)
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
	}

	total := reads.Load()
	hitRate := 0.0
	if total > 0 {
		hitRate = 100 * float64(hits.Load()) / float64(total)
	}
	fmt.Printf("[%s] %.0f reads/s (%.0f%% hits), %.0f writes/s, %.0f evictions/s over TCP\n",
		mode,
		float64(total)/runFor.Seconds(), hitRate,
		float64(writes.Load())/runFor.Seconds(),
		float64(evicts.Load())/runFor.Seconds())

	// Under RC the STATS counters prove exact reclamation: every cell the
	// evictions freed went back through the §5 free list.
	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		return err
	}
	stats, err := c.Stats()
	c.Close()
	if err != nil {
		return err
	}
	for _, name := range []string{"curr_items", "mm_allocs", "mm_reclaims", "mm_live"} {
		fmt.Printf("    %s = %s\n", name, stats[name])
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}

func key(i int) string { return fmt.Sprintf("user:%04d", i) }
