// Kvstore: a concurrent key-value cache on the lock-free hash dictionary
// (§4.1). Writers continuously insert and expire entries while readers
// serve lookups; no operation ever blocks another, and the run reports
// per-role throughput. The example also contrasts the two memory modes:
// GC (Go's collector reclaims cells) and RC (the paper's §5 reference
// counts reclaim them exactly).
//
// Run with:
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"valois"
)

const (
	keySpace = 4096
	buckets  = 1024
	readers  = 6
	writers  = 2
	runFor   = 500 * time.Millisecond
)

func main() {
	for _, mode := range []valois.MemoryMode{valois.GC, valois.RC} {
		run(mode)
	}
}

func run(mode valois.MemoryMode) {
	cache := valois.NewHashDict[string, int](buckets, mode, valois.HashString)

	// Warm the cache.
	for i := 0; i < keySpace/2; i++ {
		cache.Insert(key(i), i)
	}

	var (
		wg             sync.WaitGroup
		stop           atomic.Bool
		reads, hits    atomic.Int64
		writes, evicts atomic.Int64
	)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				k := key(rng.Intn(keySpace))
				if _, ok := cache.Find(k); ok {
					hits.Add(1)
				}
				reads.Add(1)
			}
		}(int64(r + 1))
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				i := rng.Intn(keySpace)
				if rng.Intn(2) == 0 {
					if cache.Insert(key(i), i) {
						writes.Add(1)
					}
				} else {
					if cache.Delete(key(i)) {
						evicts.Add(1)
					}
				}
			}
		}(int64(100 + w))
	}

	time.Sleep(runFor)
	stop.Store(true)
	wg.Wait()

	total := reads.Load()
	hitRate := 0.0
	if total > 0 {
		hitRate = 100 * float64(hits.Load()) / float64(total)
	}
	fmt.Printf("[%s] %.0f reads/s (%.0f%% hits), %.0f writes/s, %.0f evictions/s\n",
		mode,
		float64(total)/runFor.Seconds(), hitRate,
		float64(writes.Load())/runFor.Seconds(),
		float64(evicts.Load())/runFor.Seconds())
}

func key(i int) string { return fmt.Sprintf("user:%04d", i) }
