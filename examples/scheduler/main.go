// Scheduler: an earliest-deadline-first task scheduler on the lock-free
// priority queue (skip-list backed, §4.1), with per-task buffers carved
// out of the lock-free buddy allocator (§5.2's variable-sized-cell
// extension). Producers submit tasks with deadlines while workers
// continuously extract the most urgent one; no lock anywhere, and at the
// end the buddy arena coalesces back to a single block.
//
// Run with:
//
//	go run ./examples/scheduler
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"valois"
)

type task struct {
	name   string
	offset int // buffer in the buddy arena
	order  int
	units  int
}

const (
	producers = 3
	workers   = 4
	perProd   = 400
)

func main() {
	pq := valois.NewPriorityQueue[int, task](valois.GC)
	arena, err := valois.NewBuddyAllocator(17) // 131072 units
	if err != nil {
		panic(err)
	}

	var (
		wg        sync.WaitGroup
		submitted atomic.Int64
		executed  atomic.Int64
		rejected  atomic.Int64
		unitsPeak atomic.Int64
	)

	// Producers: submit tasks with random deadlines and buffer sizes.
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(p + 1)))
			for i := 0; i < perProd; i++ {
				size := 1 + rng.Intn(64)
				off, order, err := arena.Alloc(size)
				if err != nil {
					rejected.Add(1)
					continue
				}
				deadline := p*perProd*10 + i*10 + rng.Intn(10) // unique-ish
				ok := pq.Insert(deadline, task{
					name:   fmt.Sprintf("p%d-t%d", p, i),
					offset: off,
					order:  order,
					units:  1 << order,
				})
				if !ok {
					// Deadline collision: return the buffer and move on.
					_ = arena.Free(off, order)
					rejected.Add(1)
					continue
				}
				submitted.Add(1)
				if used := int64(arena.Capacity() - arena.FreeUnits()); used > unitsPeak.Load() {
					unitsPeak.Store(used)
				}
			}
		}(p)
	}

	// Workers: repeatedly run the most urgent task.
	done := make(chan struct{})
	var wwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			for {
				deadline, t, ok := pq.DeleteMin()
				if !ok {
					select {
					case <-done:
						// Producers finished; drain what remains.
						for {
							_, t, ok := pq.DeleteMin()
							if !ok {
								return
							}
							_ = arena.Free(t.offset, t.order)
							executed.Add(1)
						}
					default:
						continue
					}
				}
				_ = deadline // a real scheduler would compare against the clock
				_ = arena.Free(t.offset, t.order)
				executed.Add(1)
			}
		}()
	}

	wg.Wait()
	close(done)
	wwg.Wait()

	fmt.Printf("submitted %d tasks (%d rejected), executed %d — earliest-deadline-first\n",
		submitted.Load(), rejected.Load(), executed.Load())
	fmt.Printf("buddy arena: peak usage %d/%d units; after completion %d/%d free",
		unitsPeak.Load(), arena.Capacity(), arena.FreeUnits(), arena.Capacity())
	if arena.FreeUnits() == arena.Capacity() {
		fmt.Println(" — fully coalesced back to one block")
	} else {
		fmt.Println(" — LEAK!")
	}
	if got := pq.Len(); got != 0 {
		fmt.Printf("queue not empty: %d tasks left\n", got)
	}
}
