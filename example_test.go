package valois_test

import (
	"fmt"

	"valois"
)

func ExampleList() {
	l := valois.NewList[string](valois.GC)
	c := l.Cursor()
	c.Insert("world")
	c.Reset()
	c.Insert("hello")
	c.Reset()
	for !c.End() {
		fmt.Println(c.Item())
		c.Next()
	}
	c.Close()
	// Output:
	// hello
	// world
}

func ExampleCursor_onDeleted() {
	// Cell persistence (paper §2.2): a cursor survives deletion of the
	// item it is visiting.
	l := valois.NewList[string](valois.RC)
	w := l.Cursor()
	w.Insert("b")
	w.Reset()
	w.Insert("a")

	parked := l.Cursor() // visiting "a"
	deleter := l.Cursor()
	deleter.TryDelete() // removes "a"
	deleter.Close()

	fmt.Println(parked.OnDeleted(), parked.Item())
	parked.Next()
	fmt.Println(parked.Item())
	parked.Close()
	w.Close()
	// Output:
	// true a
	// b
}

func ExampleNewSortedListDict() {
	d := valois.NewSortedListDict[int, string](valois.GC)
	d.Insert(2, "two")
	d.Insert(1, "one")
	d.Insert(2, "TWO") // duplicate: rejected, value not replaced
	v, ok := d.Find(2)
	fmt.Println(v, ok)
	d.Range(func(k int, v string) bool {
		fmt.Println(k, v)
		return true
	})
	// Output:
	// two true
	// 1 one
	// 2 two
}

func ExampleNewHashDict() {
	d := valois.NewHashDict[string, int](64, valois.GC, valois.HashString)
	d.Insert("x", 1)
	d.Insert("y", 2)
	d.Delete("x")
	_, okX := d.Find("x")
	vy, okY := d.Find("y")
	fmt.Println(okX, vy, okY)
	// Output:
	// false 2 true
}

func ExampleOrderedDictionary_rangeFrom() {
	d := valois.NewSkipListDict[int, string](valois.GC)
	for _, k := range []int{40, 10, 30, 20} {
		d.Insert(k, fmt.Sprintf("v%d", k))
	}
	d.RangeFrom(20, func(k int, v string) bool {
		fmt.Println(k, v)
		return k < 30 // stop after 30
	})
	// Output:
	// 20 v20
	// 30 v30
}

func ExampleNewBSTDict() {
	d := valois.NewBSTDict[int, string](valois.GC)
	d.Insert(2, "b")
	d.Insert(1, "a")
	d.Insert(3, "c")
	d.Delete(2) // interior deletion (two children)
	d.Range(func(k int, v string) bool {
		fmt.Println(k, v)
		return true
	})
	// Output:
	// 1 a
	// 3 c
}

func ExampleNewPriorityQueue() {
	pq := valois.NewPriorityQueue[int, string](valois.GC)
	pq.Insert(30, "low")
	pq.Insert(10, "urgent")
	pq.Insert(20, "soon")
	for {
		p, v, ok := pq.DeleteMin()
		if !ok {
			break
		}
		fmt.Println(p, v)
	}
	// Output:
	// 10 urgent
	// 20 soon
	// 30 low
}

func ExampleQueue() {
	q := valois.NewQueue[int]()
	q.Enqueue(1)
	q.Enqueue(2)
	v, _ := q.Dequeue()
	fmt.Println(v, q.Len())
	// Output:
	// 1 1
}

func ExampleNewManagedQueue() {
	// Under RC the queue recycles its nodes through the paper's §5
	// lock-free free list instead of the garbage collector.
	q := valois.NewManagedQueue[string](valois.RC)
	q.Enqueue("a")
	v, ok := q.Dequeue()
	fmt.Println(v, ok)
	q.Close()
	// Output:
	// a true
}

func ExampleStack() {
	s := valois.NewStack[int]()
	s.Push(1)
	s.Push(2)
	v, _ := s.Pop()
	fmt.Println(v)
	// Output:
	// 2
}

func ExampleBuddyAllocator() {
	b, _ := valois.NewBuddyAllocator(10) // 1024 units
	off, order, _ := b.Alloc(100)        // rounds up to 128 units
	fmt.Println(off, order, b.FreeUnits())
	b.Free(off, order)
	fmt.Println(b.FreeUnits())
	// Output:
	// 0 7 896
	// 1024
}
