package valois

import "valois/internal/buddy"

// BuddyAllocator is the lock-free buddy system the paper's §5.2 points to
// for variable-sized cells: per-order lock-free free lists with
// tag-validated lazy deletion and fully concurrent coalescing. It manages
// abstract units — offsets into an arena of 2^maxOrder units — so it can
// back any pool of variable-sized resources. All methods are safe for
// concurrent use and non-blocking.
type BuddyAllocator struct {
	a *buddy.Allocator
}

// NewBuddyAllocator returns an allocator over 2^maxOrder units.
func NewBuddyAllocator(maxOrder int) (*BuddyAllocator, error) {
	a, err := buddy.New(maxOrder)
	if err != nil {
		return nil, err
	}
	return &BuddyAllocator{a: a}, nil
}

// Alloc returns the offset of a free block of at least size units,
// aligned to the block's (power-of-two) size, together with the order to
// pass back to Free. It returns buddy.ErrExhausted when no block can be
// assembled.
func (b *BuddyAllocator) Alloc(size int) (offset, order int, err error) {
	order = buddy.OrderFor(size)
	offset, err = b.a.Alloc(order)
	return offset, order, err
}

// Free returns a block obtained from Alloc, coalescing it with free
// buddies as far as possible.
func (b *BuddyAllocator) Free(offset, order int) error {
	return b.a.Free(offset, order)
}

// Capacity reports the arena size in units.
func (b *BuddyAllocator) Capacity() int { return b.a.Capacity() }

// FreeUnits counts the currently free units (exact at quiescence).
func (b *BuddyAllocator) FreeUnits() int { return b.a.FreeUnits() }
