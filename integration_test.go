package valois_test

import (
	"math/rand"
	"sync"
	"testing"

	"valois"
	"valois/internal/linearize"
)

// TestIntegrationGauntlet drives every public dictionary through a
// recorded concurrent workload and checks the full contract end to end:
// linearizability of the recorded history, population conservation, and
// ordered iteration consistency. It exercises the library exactly the way
// a downstream application would — through the root package only.
func TestIntegrationGauntlet(t *testing.T) {
	if testing.Short() {
		t.Skip("integration gauntlet is slow")
	}
	type entry struct {
		name string
		d    valois.Dictionary[int, int]
	}
	for _, mode := range []valois.MemoryMode{valois.GC, valois.RC} {
		entries := []entry{
			{"sortedlist/" + mode.String(), valois.NewSortedListDict[int, int](mode)},
			{"hash/" + mode.String(), valois.NewHashDict[int, int](16, mode, valois.HashInt)},
			{"skiplist/" + mode.String(), valois.NewSkipListDict[int, int](mode)},
			{"bst/" + mode.String(), valois.NewBSTDict[int, int](mode)},
		}
		for _, e := range entries {
			e := e
			t.Run(e.name, func(t *testing.T) {
				r := linearize.NewRecorder(e.d)
				const (
					goroutines = 6
					perG       = 300
					keys       = 48
				)
				var wg sync.WaitGroup
				for g := 0; g < goroutines; g++ {
					wg.Add(1)
					go func(seed int64) {
						defer wg.Done()
						s := r.Session()
						rng := rand.New(rand.NewSource(seed))
						for i := 0; i < perG; i++ {
							k := rng.Intn(keys)
							switch rng.Intn(4) {
							case 0:
								s.Insert(k, int(seed)<<20|i)
							case 1:
								s.Delete(k)
							default:
								s.Find(k)
							}
						}
					}(int64(g + 1))
				}
				wg.Wait()

				if res := linearize.Check(r.History()); !res.OK {
					t.Fatalf("history not linearizable at key %d", res.BadKey)
				}

				// Population: count Find hits and cross-check against the
				// ordered view where available.
				population := 0
				for k := 0; k < keys; k++ {
					if _, ok := e.d.Find(k); ok {
						population++
					}
				}
				if od, ok := e.d.(valois.OrderedDictionary[int, int]); ok {
					if got := od.Len(); got != population {
						t.Fatalf("Len = %d, but %d keys answer Find", got, population)
					}
					prev := -1
					seen := 0
					od.Range(func(k, _ int) bool {
						if k <= prev {
							t.Errorf("Range out of order: %d after %d", k, prev)
							return false
						}
						prev = k
						seen++
						return true
					})
					if seen != population {
						t.Fatalf("Range visited %d items, want %d", seen, population)
					}
					// RangeFrom must agree with Range's tail.
					mid := keys / 2
					var fromRange []int
					od.Range(func(k, _ int) bool {
						if k >= mid {
							fromRange = append(fromRange, k)
						}
						return true
					})
					var fromStart []int
					od.RangeFrom(mid, func(k, _ int) bool {
						fromStart = append(fromStart, k)
						return true
					})
					if len(fromRange) != len(fromStart) {
						t.Fatalf("RangeFrom(%d) saw %d items, Range tail has %d", mid, len(fromStart), len(fromRange))
					}
					for i := range fromRange {
						if fromRange[i] != fromStart[i] {
							t.Fatalf("RangeFrom mismatch at %d: %d vs %d", i, fromStart[i], fromRange[i])
						}
					}
				}
			})
		}
	}
}

// TestIntegrationPipelines wires several structures together the way the
// examples do: a managed queue feeding a priority queue feeding a
// dictionary, all under concurrent producers and consumers.
func TestIntegrationPipelines(t *testing.T) {
	in := valois.NewManagedQueue[int](valois.RC)
	pq := valois.NewPriorityQueue[int, int](valois.GC)
	out := valois.NewHashDict[int, int](32, valois.GC, valois.HashInt)

	const items = 3000
	var wg sync.WaitGroup
	// Stage 1: producers enqueue raw items.
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; i < items; i += 3 {
				in.Enqueue(i)
			}
		}(p)
	}
	// Stage 2: sorters move items into the priority queue.
	var swg sync.WaitGroup
	stop1 := make(chan struct{})
	for s := 0; s < 2; s++ {
		swg.Add(1)
		go func() {
			defer swg.Done()
			for {
				v, ok := in.Dequeue()
				if !ok {
					select {
					case <-stop1:
						for {
							v, ok := in.Dequeue()
							if !ok {
								return
							}
							pq.Insert(v, v*2)
						}
					default:
						continue
					}
				} else {
					pq.Insert(v, v*2)
				}
			}
		}()
	}
	// Stage 3: drainers extract in priority order into the dictionary.
	var dwg sync.WaitGroup
	stop2 := make(chan struct{})
	for d := 0; d < 2; d++ {
		dwg.Add(1)
		go func() {
			defer dwg.Done()
			for {
				k, v, ok := pq.DeleteMin()
				if !ok {
					select {
					case <-stop2:
						for {
							k, v, ok := pq.DeleteMin()
							if !ok {
								return
							}
							out.Insert(k, v)
						}
					default:
						continue
					}
				} else {
					out.Insert(k, v)
				}
			}
		}()
	}
	wg.Wait()
	close(stop1)
	swg.Wait()
	close(stop2)
	dwg.Wait()

	for k := 0; k < items; k++ {
		if v, ok := out.Find(k); !ok || v != k*2 {
			t.Fatalf("item %d: got %d,%v; want %d,true", k, v, ok, k*2)
		}
	}
	in.Close()
}
