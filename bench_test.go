// Benchmarks, one per reproduction experiment (DESIGN.md E1–E9), plus
// micro-benchmarks of the primitive operations. The cmd/lfbench tool runs
// the same experiments as duration-based sweeps and prints the paper-style
// tables; these testing.B entry points measure the identical workload
// shapes per operation so `go test -bench=.` regenerates every row.
package valois_test

import (
	"math"
	"math/rand"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"valois"
	"valois/internal/bst"
	"valois/internal/core"
	"valois/internal/dict"
	"valois/internal/mm"
	"valois/internal/skiplist"
	"valois/internal/spinlock"
	"valois/internal/universal"
	"valois/internal/workload"
)

const benchKeySpace = 512

// benchDict drives a dictionary with the E1 mix (50/25/25) from parallel
// workers.
func benchDict(b *testing.B, d dict.Dictionary[int, int], mix workload.Mix, keySpace int) {
	b.Helper()
	workload.Prefill(workload.Config{KeySpace: keySpace, Prefill: keySpace / 2, Seed: 1}, d)
	var seed atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seed.Add(1)))
		for pb.Next() {
			k := rng.Intn(keySpace)
			p := rng.Intn(100)
			switch {
			case p < mix.FindPct:
				d.Find(k)
			case p < mix.FindPct+mix.InsertPct:
				d.Insert(k, k)
			default:
				d.Delete(k)
			}
		}
	})
}

// BenchmarkE1ListVsLocks is experiment E1: the lock-free sorted list
// against the same sequential list under each spin lock (claim C1,
// "competitive with spin locks").
func BenchmarkE1ListVsLocks(b *testing.B) {
	b.SetParallelism(8)
	b.Run("lockfree/gc", func(b *testing.B) {
		benchDict(b, dict.NewSortedList[int, int](mm.ModeGC), workload.Mixed(), benchKeySpace)
	})
	b.Run("lockfree/rc", func(b *testing.B) {
		benchDict(b, dict.NewSortedList[int, int](mm.ModeRC), workload.Mixed(), benchKeySpace)
	})
	for _, kind := range spinlock.LockKinds() {
		kind := kind
		b.Run("lock/"+kind, func(b *testing.B) {
			benchDict(b, spinlock.NewLockedList[int, int](spinlock.NewLock(kind)), workload.Mixed(), benchKeySpace)
		})
	}
}

// BenchmarkE2DelayInjection is experiment E2: one operation in 100 stalls
// for 50µs — inside the critical section for the locked list, inside the
// operation window for the lock-free list (claim C2, convoying).
func BenchmarkE2DelayInjection(b *testing.B) {
	b.SetParallelism(8)
	delay := func() func() {
		var n atomic.Int64
		return func() {
			if n.Add(1)%100 == 0 {
				time.Sleep(50 * time.Microsecond)
			}
		}
	}
	b.Run("lockfree/gc", func(b *testing.B) {
		d := dict.NewSortedList[int, int](mm.ModeGC)
		workload.Prefill(workload.Config{KeySpace: benchKeySpace, Prefill: benchKeySpace / 2, Seed: 1}, d)
		hook := delay()
		var seed atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(seed.Add(1)))
			for pb.Next() {
				hook() // a stalled lock-free operation blocks only itself
				k := rng.Intn(benchKeySpace)
				switch rng.Intn(4) {
				case 0:
					d.Insert(k, k)
				case 1:
					d.Delete(k)
				default:
					d.Find(k)
				}
			}
		})
	})
	b.Run("lock/mutex", func(b *testing.B) {
		d := spinlock.NewLockedList[int, int](spinlock.NewLock("mutex"))
		workload.Prefill(workload.Config{KeySpace: benchKeySpace, Prefill: benchKeySpace / 2, Seed: 1}, d)
		d.SetDelay(delay()) // the stall happens while holding the lock
		var seed atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(seed.Add(1)))
			for pb.Next() {
				k := rng.Intn(benchKeySpace)
				switch rng.Intn(4) {
				case 0:
					d.Insert(k, k)
				case 1:
					d.Delete(k)
				default:
					d.Find(k)
				}
			}
		})
	})
}

// BenchmarkE3SortedWork is experiment E3: extra work per sorted-list
// operation as the list grows (claim C4, O(n²) total for n operations).
func BenchmarkE3SortedWork(b *testing.B) {
	b.SetParallelism(8)
	for _, n := range []int{256, 1024} {
		b.Run(sizeName(n), func(b *testing.B) {
			s := dict.NewSortedList[int, int](mm.ModeGC)
			s.EnableStats()
			workload.Prefill(workload.Config{KeySpace: 2 * n, Prefill: n, Seed: 1}, s)
			s.List().Stats().Reset()
			var seed atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(seed.Add(1)))
				for pb.Next() {
					k := rng.Intn(2 * n)
					if rng.Intn(2) == 0 {
						s.Insert(k, k)
					} else {
						s.Delete(k)
					}
				}
			})
			b.StopTimer()
			w := s.List().Stats().Snapshot()
			b.ReportMetric(float64(w.ExtraWork())/float64(b.N), "extrawork/op")
		})
	}
}

// BenchmarkE4HashWork is experiment E4: per-operation cost of the hash
// dictionary stays flat as n grows at fixed load factor (claim C5, O(1)).
func BenchmarkE4HashWork(b *testing.B) {
	b.SetParallelism(8)
	for _, n := range []int{1024, 16384} {
		b.Run(sizeName(n), func(b *testing.B) {
			h := dict.NewHash[int, int](n/2, mm.ModeGC, dict.HashInt)
			h.EnableStats()
			workload.Prefill(workload.Config{KeySpace: 2 * n, Prefill: n, Seed: 1}, h)
			var seed atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(seed.Add(1)))
				for pb.Next() {
					k := rng.Intn(2 * n)
					if rng.Intn(2) == 0 {
						h.Insert(k, k)
					} else {
						h.Delete(k)
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(h.WorkStats().ExtraWork())/float64(b.N), "extrawork/op")
		})
	}
}

// BenchmarkE5SkipVsList is experiment E5: the skip list's O(log n) search
// against the sorted list's O(n) (claim C6).
func BenchmarkE5SkipVsList(b *testing.B) {
	b.SetParallelism(8)
	for _, n := range []int{512, 4096} {
		b.Run("sortedlist/"+sizeName(n), func(b *testing.B) {
			benchDict(b, dict.NewSortedList[int, int](mm.ModeGC), workload.ReadMostly(), 2*n)
		})
		b.Run("skiplist/"+sizeName(n), func(b *testing.B) {
			benchDict(b, skiplist.New[int, int](mm.ModeGC), workload.ReadMostly(), 2*n)
		})
	}
}

// BenchmarkE6BST is experiment E6: find+insert cost on the tree tracks
// the expected O(log n) height (claim C7).
func BenchmarkE6BST(b *testing.B) {
	b.SetParallelism(8)
	for _, n := range []int{1024, 32768} {
		b.Run(sizeName(n), func(b *testing.B) {
			tr := bst.New[int, int](mm.ModeGC)
			workload.Prefill(workload.Config{KeySpace: 4 * n, Prefill: n, Seed: 1}, tr)
			var seed atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(seed.Add(1)))
				for pb.Next() {
					k := rng.Intn(4 * n)
					if rng.Intn(2) == 0 {
						tr.Find(k)
					} else {
						tr.Insert(k, k)
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/math.Log2(float64(n)), "ns/op/log2n")
		})
	}
}

// BenchmarkE7Universal is experiment E7: the direct implementation
// against the copy-the-object universal construction (claim C3).
func BenchmarkE7Universal(b *testing.B) {
	b.SetParallelism(8)
	b.Run("direct-list", func(b *testing.B) {
		benchDict(b, dict.NewSortedList[int, int](mm.ModeGC), workload.Mixed(), benchKeySpace)
	})
	b.Run("direct-hash", func(b *testing.B) {
		benchDict(b, dict.NewHash[int, int](benchKeySpace/4, mm.ModeGC, dict.HashInt), workload.Mixed(), benchKeySpace)
	})
	b.Run("universal", func(b *testing.B) {
		benchDict(b, universal.New[int, int](), workload.Mixed(), benchKeySpace)
	})
}

// BenchmarkE8SafeRead is experiment E8: raw cursor traversal, GC manager
// (SafeRead = load) vs RC manager (two counter updates per hop; claim C8).
func BenchmarkE8SafeRead(b *testing.B) {
	const size = 4096
	for _, mode := range []mm.Mode{mm.ModeGC, mm.ModeRC} {
		b.Run(mode.String(), func(b *testing.B) {
			l := core.New(mm.NewManager[int](mode))
			c := l.NewCursor()
			for i := 0; i < size; i++ {
				q, a := l.AllocInsertNodes(i)
				if !c.TryInsert(q, a) {
					b.Fatal("prefill insert failed")
				}
				l.ReleaseNodes(q, a)
				c.Update()
			}
			c.Close()
			b.ResetTimer()
			items := 0
			for items < b.N {
				tc := l.NewCursor()
				for !tc.End() && items < b.N {
					items++
					tc.Next()
				}
				tc.Close()
			}
		})
	}
}

// BenchmarkE9Freelist is experiment E9: Alloc/Release pairs through the
// lock-free free list vs garbage-collected allocation (claim C9).
func BenchmarkE9Freelist(b *testing.B) {
	b.SetParallelism(8)
	for _, mode := range []mm.Mode{mm.ModeRC, mm.ModeGC} {
		b.Run(mode.String(), func(b *testing.B) {
			m := mm.NewManager[int](mode)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					n := m.Alloc()
					m.Release(n)
				}
			})
		})
	}
}

// --- micro-benchmarks of the §3 operations through the public API ---

func BenchmarkCursorTraversal(b *testing.B) {
	l := valois.NewList[int](valois.GC)
	c := l.Cursor()
	for i := 0; i < 1024; i++ {
		c.Insert(i)
	}
	c.Close()
	b.ResetTimer()
	items := 0
	for items < b.N {
		tc := l.Cursor()
		for !tc.End() && items < b.N {
			items++
			tc.Next()
		}
		tc.Close()
	}
}

func BenchmarkCursorInsertDeleteFront(b *testing.B) {
	l := valois.NewList[int](valois.GC)
	c := l.Cursor()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reset()
		c.Insert(i)
		c.Reset()
		for !c.TryDelete() {
			c.Update()
		}
	}
	c.Close()
}

func BenchmarkQueueEnqueueDequeue(b *testing.B) {
	q := valois.NewQueue[int]()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q.Enqueue(1)
			q.Dequeue()
		}
	})
}

func BenchmarkStackPushPop(b *testing.B) {
	s := valois.NewStack[int]()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			s.Push(1)
			s.Pop()
		}
	})
}

func BenchmarkManagedQueue(b *testing.B) {
	for _, mode := range []valois.MemoryMode{valois.GC, valois.RC} {
		b.Run(mode.String(), func(b *testing.B) {
			q := valois.NewManagedQueue[int](mode)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					q.Enqueue(1)
					q.Dequeue()
				}
			})
		})
	}
}

func BenchmarkBuddyAllocFree(b *testing.B) {
	for _, order := range []int{0, 4} {
		b.Run("order="+strconv.Itoa(order), func(b *testing.B) {
			alloc, err := valois.NewBuddyAllocator(16)
			if err != nil {
				b.Fatal(err)
			}
			size := 1 << order
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					off, ord, err := alloc.Alloc(size)
					if err != nil {
						continue
					}
					if err := alloc.Free(off, ord); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

func sizeName(n int) string {
	if n >= 1024 && n%1024 == 0 {
		return "n=" + strconv.Itoa(n/1024) + "k"
	}
	return "n=" + strconv.Itoa(n)
}
