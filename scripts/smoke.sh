#!/bin/sh
# smoke.sh — end-to-end smoke test of the serving path, as run by
# `make smoke` and CI: build valoisd and lfload, boot the server on an
# ephemeral loopback port, drive it with >= 64 concurrent connections
# over the text protocol, then again over RESP with pipelining (the
# batched execution path), then SIGTERM the server and require a
# graceful (exit 0) drain.
# A second phase smoke-tests durability: boot with -aof -fsync always,
# store a key with valoisctl, SIGKILL the server, restart it on the same
# data directory, and require the key back over both protocols.
#
# Environment knobs:
#   SMOKE_CONNS     concurrent lfload connections (default 64)
#   SMOKE_DURATION  measured load duration       (default 3s)
#   SMOKE_BACKEND   server backend               (default skiplist)
#   SMOKE_MODE      memory mode: gc or rc        (default rc)
#   SMOKE_PIPELINE  RESP-phase pipeline depth    (default 8)
#   SMOKE_JSON      lfload JSON report path      (default: none)
set -eu

CONNS=${SMOKE_CONNS:-64}
DURATION=${SMOKE_DURATION:-3s}
BACKEND=${SMOKE_BACKEND:-skiplist}
MODE=${SMOKE_MODE:-rc}
PIPELINE=${SMOKE_PIPELINE:-8}
JSON=${SMOKE_JSON:-}

workdir=$(mktemp -d)
server_pid=
cleanup() {
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill -KILL "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "smoke: building valoisd, lfload, valoisctl"
go build -o "$workdir/valoisd" ./cmd/valoisd
go build -o "$workdir/lfload" ./cmd/lfload
go build -o "$workdir/valoisctl" ./cmd/valoisctl

# wait_addr LOGFILE PID: scrape the ephemeral "serving on <addr>" line.
wait_addr() {
    addr=
    i=0
    while [ $i -lt 50 ]; do
        addr=$(sed -n 's/.*serving on \([0-9.:]*\) .*/\1/p' "$1" | head -n 1)
        [ -n "$addr" ] && return 0
        if ! kill -0 "$2" 2>/dev/null; then
            echo "smoke: valoisd exited before serving:" >&2
            cat "$1" >&2
            return 1
        fi
        i=$((i + 1))
        sleep 0.1
    done
    echo "smoke: timed out waiting for valoisd to listen:" >&2
    cat "$1" >&2
    return 1
}

echo "smoke: starting valoisd (backend=$BACKEND mode=$MODE)"
"$workdir/valoisd" -addr 127.0.0.1:0 -backend "$BACKEND" -mode "$MODE" \
    >"$workdir/valoisd.log" 2>&1 &
server_pid=$!

wait_addr "$workdir/valoisd.log" "$server_pid"

echo "smoke: loading $addr with $CONNS connections for $DURATION (text)"
"$workdir/lfload" -addr "$addr" -conns "$CONNS" -d "$DURATION" \
    -mix mixed -prefill 1024 -json "$JSON"

echo "smoke: loading $addr with $CONNS connections for $DURATION (resp, pipeline=$PIPELINE)"
"$workdir/lfload" -addr "$addr" -conns "$CONNS" -d "$DURATION" \
    -mix mixed -protocol resp -pipeline "$PIPELINE" -json ""

echo "smoke: valoisctl over RESP (set/get/ping)"
"$workdir/valoisctl" -addr "$addr" -protocol resp set smoke-resp binary-safe
got=$("$workdir/valoisctl" -addr "$addr" -protocol resp get smoke-resp)
if [ "$got" != "binary-safe" ]; then
    echo "smoke: RESP get came back as '$got', want 'binary-safe'" >&2
    exit 1
fi
"$workdir/valoisctl" -addr "$addr" -protocol resp ping >/dev/null

echo "smoke: SIGTERM — server must drain and exit 0"
kill -TERM "$server_pid"
i=0
while kill -0 "$server_pid" 2>/dev/null; do
    i=$((i + 1))
    if [ $i -gt 150 ]; then
        echo "smoke: valoisd did not exit within 15s of SIGTERM" >&2
        cat "$workdir/valoisd.log" >&2
        exit 1
    fi
    sleep 0.1
done
# wait recovers the exit status; a non-graceful shutdown fails here.
set +e
wait "$server_pid"
status=$?
set -e
server_pid=
if [ "$status" -ne 0 ]; then
    echo "smoke: valoisd exited $status after SIGTERM, want 0:" >&2
    cat "$workdir/valoisd.log" >&2
    exit 1
fi

# ---- durability phase: SET, SIGKILL, restart, GET ----------------------
echo "smoke: durability — starting valoisd with -aof -fsync always"
datadir="$workdir/data"
"$workdir/valoisd" -addr 127.0.0.1:0 -backend "$BACKEND" -mode "$MODE" \
    -aof -data-dir "$datadir" -fsync always \
    >"$workdir/valoisd-aof.log" 2>&1 &
server_pid=$!
wait_addr "$workdir/valoisd-aof.log" "$server_pid"

"$workdir/valoisctl" -addr "$addr" set smoke-durable survives-sigkill
echo "smoke: durability — SIGKILL $server_pid (no graceful flush)"
kill -KILL "$server_pid"
set +e
wait "$server_pid" 2>/dev/null
set -e
server_pid=

echo "smoke: durability — restarting from $datadir"
"$workdir/valoisd" -addr 127.0.0.1:0 -backend "$BACKEND" -mode "$MODE" \
    -aof -data-dir "$datadir" -fsync always \
    >"$workdir/valoisd-aof2.log" 2>&1 &
server_pid=$!
wait_addr "$workdir/valoisd-aof2.log" "$server_pid"

got=$("$workdir/valoisctl" -addr "$addr" get smoke-durable) || {
    echo "smoke: durable key missing after SIGKILL+restart:" >&2
    cat "$workdir/valoisd-aof2.log" >&2
    exit 1
}
if [ "$got" != "survives-sigkill" ]; then
    echo "smoke: durable key came back as '$got', want 'survives-sigkill'" >&2
    exit 1
fi
# The same recovered key must read back over RESP — both wire protocols
# front the same recovered store.
got=$("$workdir/valoisctl" -addr "$addr" -protocol resp get smoke-durable) || {
    echo "smoke: durable key missing over RESP after restart" >&2
    exit 1
}
if [ "$got" != "survives-sigkill" ]; then
    echo "smoke: RESP durable key came back as '$got', want 'survives-sigkill'" >&2
    exit 1
fi
kill -TERM "$server_pid"
set +e
wait "$server_pid"
status=$?
set -e
server_pid=
if [ "$status" -ne 0 ]; then
    echo "smoke: valoisd (aof) exited $status after SIGTERM, want 0:" >&2
    cat "$workdir/valoisd-aof2.log" >&2
    exit 1
fi

echo "smoke: OK"
