#!/bin/sh
# smoke.sh — end-to-end smoke test of the serving path, as run by
# `make smoke` and CI: build valoisd and lfload, boot the server on an
# ephemeral loopback port, drive it with >= 64 concurrent connections,
# then SIGTERM the server and require a graceful (exit 0) drain.
#
# Environment knobs:
#   SMOKE_CONNS     concurrent lfload connections (default 64)
#   SMOKE_DURATION  measured load duration       (default 3s)
#   SMOKE_BACKEND   server backend               (default skiplist)
#   SMOKE_MODE      memory mode: gc or rc        (default rc)
#   SMOKE_JSON      lfload JSON report path      (default: none)
set -eu

CONNS=${SMOKE_CONNS:-64}
DURATION=${SMOKE_DURATION:-3s}
BACKEND=${SMOKE_BACKEND:-skiplist}
MODE=${SMOKE_MODE:-rc}
JSON=${SMOKE_JSON:-}

workdir=$(mktemp -d)
server_pid=
cleanup() {
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill -KILL "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "smoke: building valoisd and lfload"
go build -o "$workdir/valoisd" ./cmd/valoisd
go build -o "$workdir/lfload" ./cmd/lfload

echo "smoke: starting valoisd (backend=$BACKEND mode=$MODE)"
"$workdir/valoisd" -addr 127.0.0.1:0 -backend "$BACKEND" -mode "$MODE" \
    >"$workdir/valoisd.log" 2>&1 &
server_pid=$!

# valoisd logs "serving on <addr>" once the listener is up; scrape the
# ephemeral address from the log.
addr=
i=0
while [ $i -lt 50 ]; do
    addr=$(sed -n 's/.*serving on \([0-9.:]*\) .*/\1/p' "$workdir/valoisd.log" | head -n 1)
    [ -n "$addr" ] && break
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "smoke: valoisd exited before serving:" >&2
        cat "$workdir/valoisd.log" >&2
        exit 1
    fi
    i=$((i + 1))
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "smoke: timed out waiting for valoisd to listen:" >&2
    cat "$workdir/valoisd.log" >&2
    exit 1
fi

echo "smoke: loading $addr with $CONNS connections for $DURATION"
"$workdir/lfload" -addr "$addr" -conns "$CONNS" -d "$DURATION" \
    -mix mixed -prefill 1024 -json "$JSON"

echo "smoke: SIGTERM — server must drain and exit 0"
kill -TERM "$server_pid"
i=0
while kill -0 "$server_pid" 2>/dev/null; do
    i=$((i + 1))
    if [ $i -gt 150 ]; then
        echo "smoke: valoisd did not exit within 15s of SIGTERM" >&2
        cat "$workdir/valoisd.log" >&2
        exit 1
    fi
    sleep 0.1
done
# wait recovers the exit status; a non-graceful shutdown fails here.
set +e
wait "$server_pid"
status=$?
set -e
server_pid=
if [ "$status" -ne 0 ]; then
    echo "smoke: valoisd exited $status after SIGTERM, want 0:" >&2
    cat "$workdir/valoisd.log" >&2
    exit 1
fi

echo "smoke: OK"
