#!/bin/sh
# bench_server.sh — the serving-path benchmark behind `make bench-server`
# and the committed BENCH_server.json. Builds valoisd and lfload, boots
# the daemon on an ephemeral loopback port, and runs the comparison arms
# the wire redesign is about:
#
#   1. text,  closed loop   (pipeline=1)  — the historical baseline shape
#   2. text,  pipelined                   — batching without the protocol
#   3. resp,  pipelined                   — the headline arm, recorded to
#                                           $BENCH_JSON (BENCH_server.json)
#   4. resp,  pipelined, -batch=false     — same wire load with batched
#                                           execution disabled, isolating
#                                           the executor's contribution
#
# The default backend is hash/gc: this benchmark is the wire path's
# scoreboard, and the O(1) backend keeps dictionary cost out of the
# denominator (on the 1-CPU bench host, skiplist descent alone costs
# ~5µs/op — more than the entire batched wire path — and the structures
# have their own scoreboard, BENCH_E10.json). Set BENCH_BACKEND /
# BENCH_MODE to measure a specific structure instead.
#
# Environment knobs:
#   BENCH_DURATION  per-arm measured duration      (default 5s)
#   BENCH_CONNS     connections for the closed arm (default 64)
#   BENCH_PIPECONNS connections for pipelined arms (default 2)
#   BENCH_PIPELINE  pipeline depth                 (default 48)
#   BENCH_BACKEND   server backend                 (default hash)
#   BENCH_MODE      memory mode                    (default gc)
#   BENCH_JSON      report path for arm 3          (default BENCH_server.json)
set -eu

DURATION=${BENCH_DURATION:-5s}
CONNS=${BENCH_CONNS:-64}
PIPECONNS=${BENCH_PIPECONNS:-2}
PIPELINE=${BENCH_PIPELINE:-48}
BACKEND=${BENCH_BACKEND:-hash}
MODE=${BENCH_MODE:-gc}
JSON=${BENCH_JSON:-BENCH_server.json}

workdir=$(mktemp -d)
server_pid=
cleanup() {
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill -KILL "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "bench-server: building valoisd and lfload"
go build -o "$workdir/valoisd" ./cmd/valoisd
go build -o "$workdir/lfload" ./cmd/lfload

wait_addr() {
    addr=
    i=0
    while [ $i -lt 50 ]; do
        addr=$(sed -n 's/.*serving on \([0-9.:]*\) .*/\1/p' "$1" | head -n 1)
        [ -n "$addr" ] && return 0
        if ! kill -0 "$2" 2>/dev/null; then
            echo "bench-server: valoisd exited before serving:" >&2
            cat "$1" >&2
            return 1
        fi
        i=$((i + 1))
        sleep 0.1
    done
    echo "bench-server: timed out waiting for valoisd to listen:" >&2
    cat "$1" >&2
    return 1
}

start_server() { # start_server LOGNAME [extra args...]
    log="$workdir/$1.log"
    shift
    "$workdir/valoisd" -addr 127.0.0.1:0 -backend "$BACKEND" -mode "$MODE" "$@" \
        >"$log" 2>&1 &
    server_pid=$!
    wait_addr "$log" "$server_pid"
}

stop_server() {
    kill -TERM "$server_pid"
    set +e
    wait "$server_pid"
    set -e
    server_pid=
}

start_server batched

echo "bench-server: arm 1/4 — text, closed loop ($CONNS conns)"
"$workdir/lfload" -addr "$addr" -conns "$CONNS" -d "$DURATION" \
    -mix mixed -prefill 1024 -json ""

echo "bench-server: arm 2/4 — text, pipeline=$PIPELINE ($PIPECONNS conns)"
"$workdir/lfload" -addr "$addr" -conns "$PIPECONNS" -d "$DURATION" \
    -mix mixed -prefill 1024 -pipeline "$PIPELINE" -json ""

echo "bench-server: arm 3/4 — resp, pipeline=$PIPELINE ($PIPECONNS conns) -> $JSON"
"$workdir/lfload" -addr "$addr" -conns "$PIPECONNS" -d "$DURATION" \
    -mix mixed -prefill 1024 -protocol resp -pipeline "$PIPELINE" -json "$JSON"

stop_server
start_server nobatch -batch=false

echo "bench-server: arm 4/4 — resp, pipeline=$PIPELINE, batched execution off"
"$workdir/lfload" -addr "$addr" -conns "$PIPECONNS" -d "$DURATION" \
    -mix mixed -prefill 1024 -protocol resp -pipeline "$PIPELINE" -json ""

stop_server
echo "bench-server: done; report in $JSON"
