module valois

go 1.22
