// Package dict implements the paper's dictionary abstract data type (§4):
// "a collection of items which are distinguished by distinct keys", with
// the operations Find, Insert, and Delete. Two of the paper's four
// non-blocking structures live here — the sorted linked list (§4.1,
// Figures 11–13) and the hash table of sorted lists (§4.1); the skip list
// and the binary search tree have their own packages (internal/skiplist,
// internal/bst) but satisfy the same Dictionary interface.
package dict

import "cmp"

// Dictionary is the §4 concurrent dictionary: a set of key/value items
// with distinct keys. Implementations in this module are non-blocking and
// linearizable; all methods are safe for concurrent use.
type Dictionary[K cmp.Ordered, V any] interface {
	// Find reports the value stored under key, if any.
	Find(key K) (V, bool)
	// Insert adds the item if no item with the same key is present,
	// reporting whether it inserted. Dictionaries do not replace values:
	// inserting an existing key returns false, per Figure 12.
	Insert(key K, value V) bool
	// Delete removes the item with the given key, reporting whether an
	// item was removed (Figure 13).
	Delete(key K) bool
}

// Entry is the item stored in a dictionary cell: the paper's "key field
// which contains the unique key for the item stored in the cell" (§4.1)
// plus the associated value.
type Entry[K cmp.Ordered, V any] struct {
	Key   K
	Value V
}
