package dict_test

import (
	"testing"

	"valois/internal/bst"
	"valois/internal/dict"
	"valois/internal/mm"
	"valois/internal/skiplist"
)

// FuzzDictionarySemantics feeds one operation stream to every dictionary
// implementation and a map model; any divergence in any return value is a
// bug in one of them.
func FuzzDictionarySemantics(f *testing.F) {
	f.Add([]byte{0, 1, 0, 1, 2, 1, 1, 1, 4, 1})
	f.Add([]byte{0, 5, 0, 5, 1, 5, 1, 5})
	f.Add([]byte{0, 1, 0, 2, 0, 3, 1, 2, 2, 2, 2, 1, 0, 2})
	f.Fuzz(func(t *testing.T, ops []byte) {
		structures := []struct {
			name string
			d    dict.Dictionary[int, int]
		}{
			{"sortedlist", dict.NewSortedList[int, int](mm.ModeRC)},
			{"hash", dict.NewHash[int, int](4, mm.ModeGC, dict.HashInt)},
			{"skiplist", skiplist.New[int, int](mm.ModeGC, skiplist.WithMaxLevel(4))},
			{"bst", bst.New[int, int](mm.ModeRC)},
		}
		model := map[int]int{}
		val := 0
		for i := 0; i+1 < len(ops); i += 2 {
			op := ops[i] % 3
			k := int(ops[i+1] % 16)
			switch op {
			case 0:
				val++
				_, exists := model[k]
				for _, s := range structures {
					if got := s.d.Insert(k, val); got != !exists {
						t.Fatalf("%s: Insert(%d,%d) = %v, model says %v", s.name, k, val, got, !exists)
					}
				}
				if !exists {
					model[k] = val
				}
			case 1:
				_, exists := model[k]
				for _, s := range structures {
					if got := s.d.Delete(k); got != exists {
						t.Fatalf("%s: Delete(%d) = %v, model says %v", s.name, k, got, exists)
					}
				}
				delete(model, k)
			default:
				mv, exists := model[k]
				for _, s := range structures {
					v, ok := s.d.Find(k)
					if ok != exists || (ok && v != mv) {
						t.Fatalf("%s: Find(%d) = %d,%v; model says %d,%v", s.name, k, v, ok, mv, exists)
					}
				}
			}
		}
		// Cross-check the final population everywhere.
		for k := 0; k < 16; k++ {
			_, want := model[k]
			for _, s := range structures {
				if _, ok := s.d.Find(k); ok != want {
					t.Fatalf("%s: final Find(%d) = %v, want %v", s.name, k, ok, want)
				}
			}
		}
	})
}
