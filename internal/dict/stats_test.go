package dict

import (
	"sync"
	"testing"

	"valois/internal/mm"
)

func TestSortedListStatsAndKnobs(t *testing.T) {
	s := NewSortedList[int, int](mm.ModeRC)
	counters := s.EnableStats()
	s.EnableTorture(2)
	s.DisableBackoff()

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := i % 8 // hot keys to force retries through the torture yields
				s.Insert(k, g)
				s.Delete(k)
			}
		}(g)
	}
	wg.Wait()
	w := counters.Snapshot()
	if w.ExtraWork() == 0 {
		t.Fatal("tortured hot-key churn recorded no extra work")
	}
	if got := s.Len(); got < 0 || got > 8 {
		t.Fatalf("Len = %d, want within [0,8]", got)
	}
	counters.Reset()
	if counters.Snapshot().ExtraWork() != 0 {
		t.Fatal("Reset did not zero the counters")
	}
	s.Close()
	if live := s.List().Manager().(*mm.RC[Entry[int, int]]).Stats().Live(); live != 0 {
		t.Fatalf("live cells after Close = %d, want 0", live)
	}
}

func TestHashStatsAndKnobs(t *testing.T) {
	h := NewHash[int, int](4, mm.ModeRC, HashInt)
	h.EnableStats()
	h.EnableTorture(2)
	h.DisableBackoff()

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := i % 8
				h.Insert(k, g)
				h.Delete(k)
			}
		}(g)
	}
	wg.Wait()
	if w := h.WorkStats(); w.ExtraWork() == 0 {
		t.Fatal("tortured hot-key churn recorded no extra work across buckets")
	}
	if got := h.Len(); got < 0 || got > 8 {
		t.Fatalf("Len = %d, want within [0,8]", got)
	}
	h.Close()
}

func TestNegativeBucketCountClamped(t *testing.T) {
	h := NewHash[int, int](0, mm.ModeGC, HashInt)
	if !h.Insert(1, 1) {
		t.Fatal("insert into clamped single-bucket hash failed")
	}
	if v, ok := h.Find(1); !ok || v != 1 {
		t.Fatalf("Find = %d,%v", v, ok)
	}
}
