package dict

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"valois/internal/mm"
	"valois/internal/testenv"
)

// implementations yields each dictionary implementation under each memory
// mode, for table-style reuse of the semantic tests.
func implementations(t *testing.T, f func(t *testing.T, d Dictionary[int, int])) {
	t.Helper()
	for _, mode := range []mm.Mode{mm.ModeGC, mm.ModeRC} {
		t.Run("sortedlist/"+mode.String(), func(t *testing.T) {
			f(t, NewSortedList[int, int](mode))
		})
		t.Run("hash/"+mode.String(), func(t *testing.T) {
			f(t, NewHash[int, int](8, mode, HashInt))
		})
	}
}

func TestDictionaryBasics(t *testing.T) {
	implementations(t, func(t *testing.T, d Dictionary[int, int]) {
		if _, ok := d.Find(1); ok {
			t.Fatal("Find on empty dictionary reported a hit")
		}
		if !d.Insert(1, 100) {
			t.Fatal("first Insert failed")
		}
		if d.Insert(1, 200) {
			t.Fatal("duplicate Insert succeeded (Fig 12 lines 6-7 forbid it)")
		}
		if v, ok := d.Find(1); !ok || v != 100 {
			t.Fatalf("Find(1) = %d,%v; want 100,true (duplicate insert must not replace)", v, ok)
		}
		if !d.Delete(1) {
			t.Fatal("Delete of present key failed")
		}
		if d.Delete(1) {
			t.Fatal("Delete of absent key succeeded")
		}
		if _, ok := d.Find(1); ok {
			t.Fatal("Find after Delete reported a hit")
		}
	})
}

func TestDictionaryManyKeys(t *testing.T) {
	implementations(t, func(t *testing.T, d Dictionary[int, int]) {
		const n = 200
		perm := rand.New(rand.NewSource(7)).Perm(n)
		for _, k := range perm {
			if !d.Insert(k, k*10) {
				t.Fatalf("Insert(%d) failed", k)
			}
		}
		for k := 0; k < n; k++ {
			if v, ok := d.Find(k); !ok || v != k*10 {
				t.Fatalf("Find(%d) = %d,%v; want %d,true", k, v, ok, k*10)
			}
		}
		// Delete the odd keys; the even ones must remain.
		for k := 1; k < n; k += 2 {
			if !d.Delete(k) {
				t.Fatalf("Delete(%d) failed", k)
			}
		}
		for k := 0; k < n; k++ {
			_, ok := d.Find(k)
			if want := k%2 == 0; ok != want {
				t.Fatalf("Find(%d) present=%v, want %v", k, ok, want)
			}
		}
	})
}

func TestSortedListOrderAndRange(t *testing.T) {
	s := NewSortedList[int, string](mm.ModeGC)
	for _, k := range []int{5, 1, 4, 2, 3} {
		if !s.Insert(k, fmt.Sprintf("v%d", k)) {
			t.Fatalf("Insert(%d) failed", k)
		}
	}
	var keys []int
	s.Range(func(k int, v string) bool {
		keys = append(keys, k)
		if want := fmt.Sprintf("v%d", k); v != want {
			t.Fatalf("Range value for %d = %q, want %q", k, v, want)
		}
		return true
	})
	for i, k := range keys {
		if k != i+1 {
			t.Fatalf("keys in list order = %v, want ascending 1..5", keys)
		}
	}
	// Early termination.
	count := 0
	s.Range(func(int, string) bool { count++; return count < 2 })
	if count != 2 {
		t.Fatalf("Range visited %d items after early stop, want 2", count)
	}
	if err := s.List().CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

func TestDictionaryMatchesMapModel(t *testing.T) {
	// Fields must be exported for testing/quick to generate values.
	type op struct {
		Kind uint8
		Key  uint8
	}
	check := func(make func() Dictionary[int, int]) func(ops []op) bool {
		return func(ops []op) bool {
			d := make()
			model := map[int]int{}
			val := 0
			for _, o := range ops {
				k := int(o.Key % 32)
				switch o.Kind % 3 {
				case 0:
					val++
					_, exists := model[k]
					if got, want := d.Insert(k, val), !exists; got != want {
						return false
					}
					if !exists {
						model[k] = val
					}
				case 1:
					_, exists := model[k]
					if got := d.Delete(k); got != exists {
						return false
					}
					delete(model, k)
				default:
					mv, exists := model[k]
					v, ok := d.Find(k)
					if ok != exists || (ok && v != mv) {
						return false
					}
				}
			}
			return true
		}
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(check(func() Dictionary[int, int] {
		return NewSortedList[int, int](mm.ModeRC)
	}), cfg); err != nil {
		t.Errorf("sortedlist: %v", err)
	}
	if err := quick.Check(check(func() Dictionary[int, int] {
		return NewHash[int, int](4, mm.ModeGC, HashInt)
	}), cfg); err != nil {
		t.Errorf("hash: %v", err)
	}
}

func TestConcurrentDistinctKeyInserts(t *testing.T) {
	implementations(t, func(t *testing.T, d Dictionary[int, int]) {
		const (
			goroutines = 8
			perG       = 200
		)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					k := g*perG + i
					if !d.Insert(k, k) {
						t.Errorf("Insert(%d) of a distinct key failed", k)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		for k := 0; k < goroutines*perG; k++ {
			if v, ok := d.Find(k); !ok || v != k {
				t.Fatalf("Find(%d) = %d,%v after concurrent inserts", k, v, ok)
			}
		}
	})
}

func TestConcurrentSameKeyInsertExactlyOneWins(t *testing.T) {
	implementations(t, func(t *testing.T, d Dictionary[int, int]) {
		const (
			goroutines = 8
			keys       = 50
		)
		var wins atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for k := 0; k < keys; k++ {
					if d.Insert(k, g) {
						wins.Add(1)
					}
				}
			}(g)
		}
		wg.Wait()
		if got := wins.Load(); got != keys {
			t.Fatalf("%d inserts won across %d contended keys, want exactly %d (key uniqueness, §4.1)", got, keys, keys)
		}
		for k := 0; k < keys; k++ {
			if _, ok := d.Find(k); !ok {
				t.Fatalf("key %d missing after contended inserts", k)
			}
		}
	})
}

func TestConcurrentSameKeyDeleteExactlyOneWins(t *testing.T) {
	implementations(t, func(t *testing.T, d Dictionary[int, int]) {
		const (
			goroutines = 8
			keys       = 50
		)
		for k := 0; k < keys; k++ {
			d.Insert(k, k)
		}
		var wins atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := 0; k < keys; k++ {
					if d.Delete(k) {
						wins.Add(1)
					}
				}
			}()
		}
		wg.Wait()
		if got := wins.Load(); got != keys {
			t.Fatalf("%d deletes won across %d keys, want exactly %d", got, keys, keys)
		}
	})
}

func TestConcurrentMixedChurn(t *testing.T) {
	iters := 4000
	if testing.Short() {
		iters = 400
	}
	iters = testenv.Iters(iters)
	implementations(t, func(t *testing.T, d Dictionary[int, int]) {
		const (
			goroutines = 8
			keyspace   = 64
		)
		var inserts, deletes atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < iters; i++ {
					k := rng.Intn(keyspace)
					switch rng.Intn(3) {
					case 0:
						if d.Insert(k, k) {
							inserts.Add(1)
						}
					case 1:
						if d.Delete(k) {
							deletes.Add(1)
						}
					default:
						if v, ok := d.Find(k); ok && v != k {
							t.Errorf("Find(%d) returned foreign value %d", k, v)
							return
						}
					}
				}
			}(int64(g + 1))
		}
		wg.Wait()
		// Conservation: successful inserts minus successful deletes must
		// equal the remaining population.
		remaining := 0
		for k := 0; k < keyspace; k++ {
			if _, ok := d.Find(k); ok {
				remaining++
			}
		}
		if got, want := inserts.Load()-deletes.Load(), int64(remaining); got != want {
			t.Fatalf("inserts-deletes = %d, but %d keys remain", got, want)
		}
	})
}

func TestSortedListStaysSortedUnderChurn(t *testing.T) {
	s := NewSortedList[int, int](mm.ModeRC)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				k := rng.Intn(100)
				if rng.Intn(2) == 0 {
					s.Insert(k, k)
				} else {
					s.Delete(k)
				}
			}
		}(int64(g + 1))
	}
	wg.Wait()
	if err := s.List().CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
	items := s.List().Items()
	for i := 1; i < len(items); i++ {
		if items[i-1].Key >= items[i].Key {
			t.Fatalf("list not strictly sorted at %d: %v then %v", i, items[i-1].Key, items[i].Key)
		}
	}
	// Leak check: close and verify full reclamation.
	n := int64(len(items))
	rc := s.List().Manager().(*mm.RC[Entry[int, int]])
	if live, want := rc.Stats().Live(), 3+2*n; live != want {
		t.Fatalf("live cells = %d, want %d", live, want)
	}
	s.Close()
	if live := rc.Stats().Live(); live != 0 {
		t.Fatalf("live cells after Close = %d, want 0", live)
	}
}

func TestHashDistribution(t *testing.T) {
	// The helper hash functions must spread sequential keys across
	// buckets reasonably evenly — the assumption behind §4.1's O(1)
	// claim.
	const buckets = 16
	const keys = 1 << 12
	counts := make([]int, buckets)
	for k := 0; k < keys; k++ {
		counts[HashInt(k)%buckets]++
	}
	want := keys / buckets
	for b, got := range counts {
		if got < want/2 || got > want*2 {
			t.Fatalf("bucket %d has %d of %d keys; hash is too skewed", b, got, keys)
		}
	}
	s1 := HashString("alpha")
	s2 := HashString("beta")
	if s1 == s2 {
		t.Fatal("HashString collides on trivial inputs")
	}
	if HashString("alpha") != s1 {
		t.Fatal("HashString is not deterministic")
	}
}
