package dict

import (
	"cmp"

	"valois/internal/core"
	"valois/internal/mm"
)

// Hash is the paper's second dictionary structure (§4.1): "a
// straightforward extension" of the sorted list that hashes each key to
// one of a fixed number of buckets, each an independent lock-free sorted
// list. With a hash function that spreads operations evenly, the expected
// extra work per operation is O(1) — experiment E4 measures this.
type Hash[K cmp.Ordered, V any] struct {
	buckets []*SortedList[K, V]
	hash    func(K) uint64
}

var _ Dictionary[int, int] = (*Hash[int, int])(nil)

// NewHash returns a hash dictionary with nbuckets buckets using the given
// hash function. The bucket count is fixed for the structure's lifetime
// (the paper's structure does not resize). nbuckets must be positive.
// RC options are forwarded to every bucket's manager (see NewSortedList).
func NewHash[K cmp.Ordered, V any](nbuckets int, mode mm.Mode, hash func(K) uint64, opts ...mm.RCOption) *Hash[K, V] {
	if nbuckets < 1 {
		nbuckets = 1
	}
	h := &Hash[K, V]{
		buckets: make([]*SortedList[K, V], nbuckets),
		hash:    hash,
	}
	for i := range h.buckets {
		h.buckets[i] = NewSortedList[K, V](mode, opts...)
	}
	return h
}

func (h *Hash[K, V]) bucket(key K) *SortedList[K, V] {
	return h.buckets[h.hash(key)%uint64(len(h.buckets))]
}

// Find reports the value stored under key.
func (h *Hash[K, V]) Find(key K) (V, bool) { return h.bucket(key).Find(key) }

// Insert adds the item if the key is not present, reporting whether it
// inserted.
func (h *Hash[K, V]) Insert(key K, value V) bool { return h.bucket(key).Insert(key, value) }

// Delete removes the item with the given key, reporting whether an item
// was removed.
func (h *Hash[K, V]) Delete(key K) bool { return h.bucket(key).Delete(key) }

// Len reports the total number of items across buckets (a snapshot).
func (h *Hash[K, V]) Len() int {
	n := 0
	for _, b := range h.buckets {
		n += b.Len()
	}
	return n
}

// MemStats sums the §5 memory-manager allocation counters across buckets.
func (h *Hash[K, V]) MemStats() mm.Stats {
	var total mm.Stats
	for _, b := range h.buckets {
		total.Add(b.MemStats())
	}
	return total
}

// EnableStats turns on extra-work counters on every bucket.
func (h *Hash[K, V]) EnableStats() {
	for _, b := range h.buckets {
		b.EnableStats()
	}
}

// SetYieldHook installs a yield hook on every bucket's list (see
// core.List.SetYieldHook), for the deterministic schedule explorer. Must
// be called before concurrent use; compare SkipList.SetYieldHook.
func (h *Hash[K, V]) SetYieldHook(f func()) {
	for _, b := range h.buckets {
		b.List().SetYieldHook(f)
	}
}

// Bucket returns bucket i (modulo the bucket count), for tests that
// assert per-bucket structural invariants; compare SkipList.Level.
func (h *Hash[K, V]) Bucket(i int) *SortedList[K, V] {
	return h.buckets[i%len(h.buckets)]
}

// NumBuckets reports the fixed bucket count. Together with Bucket it
// lets callers iterate the whole table bucket by bucket — each bucket is
// a sorted list whose cursor scan is lock-free, which is how the
// durability layer snapshots hash-backed shards (keys arrive grouped by
// bucket, not globally sorted).
func (h *Hash[K, V]) NumBuckets() int { return len(h.buckets) }

// EnableTorture enables interleaving torture on every bucket; see
// core.List.EnableTorture.
func (h *Hash[K, V]) EnableTorture(period uint32) {
	for _, b := range h.buckets {
		b.EnableTorture(period)
	}
}

// DisableBackoff turns off retry backoff on every bucket (ablation A1).
func (h *Hash[K, V]) DisableBackoff() {
	for _, b := range h.buckets {
		b.DisableBackoff()
	}
}

// WorkStats sums the extra-work counters across buckets.
func (h *Hash[K, V]) WorkStats() core.WorkStats {
	var total core.WorkStats
	for _, b := range h.buckets {
		s := b.List().Stats().Snapshot()
		total.AuxSkips += s.AuxSkips
		total.AuxRemovals += s.AuxRemovals
		total.BacklinkSteps += s.BacklinkSteps
		total.ChainSteps += s.ChainSteps
		total.DeleteCASRetries += s.DeleteCASRetries
		total.InsertRetries += s.InsertRetries
		total.DeleteRetries += s.DeleteRetries
	}
	return total
}

// Close releases every bucket's cells; see SortedList.Close.
func (h *Hash[K, V]) Close() {
	for _, b := range h.buckets {
		b.Close()
	}
}
