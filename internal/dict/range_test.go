package dict

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"valois/internal/mm"
	"valois/internal/testenv"
)

// TestRangeMonotoneUnderChurn is the regression test for the traversal
// rejoin phenomenon documented in internal/core: a raw cursor sweep over a
// list whose cells are deleted and reinserted concurrently can rejoin the
// live list at an earlier position. Range must nevertheless report keys in
// strictly ascending order.
func TestRangeMonotoneUnderChurn(t *testing.T) {
	duration := 2 * time.Second
	if testing.Short() {
		duration = 200 * time.Millisecond
	}
	duration = testenv.Duration(duration)
	s := NewSortedList[int, int](mm.ModeGC)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				k := rng.Intn(24) // hot keys: maximal delete/reinsert churn
				if rng.Intn(3) > 0 {
					s.Insert(k, k)
				} else {
					s.Delete(k)
				}
			}
		}(int64(g + 1))
	}
	var violation atomic.Bool
	var scans atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			prev := -1
			s.Range(func(k, _ int) bool {
				if k <= prev {
					violation.Store(true)
					stop.Store(true)
					return false
				}
				prev = k
				return true
			})
			scans.Add(1)
		}
	}()
	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	if violation.Load() {
		t.Fatal("Range reported keys out of order under churn")
	}
	if scans.Load() == 0 {
		t.Fatal("scanner completed no scans")
	}
}

func TestSortedListRangeFrom(t *testing.T) {
	s := NewSortedList[int, string](mm.ModeGC)
	for k := 10; k <= 50; k += 10 {
		s.Insert(k, "v")
	}
	var keys []int
	s.RangeFrom(25, func(k int, _ string) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != 3 || keys[0] != 30 || keys[2] != 50 {
		t.Fatalf("RangeFrom(25) keys = %v, want [30 40 50]", keys)
	}
	keys = nil
	s.RangeFrom(30, func(k int, _ string) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != 3 || keys[0] != 30 {
		t.Fatalf("RangeFrom(30) keys = %v, want [30 40 50] (inclusive start)", keys)
	}
}
