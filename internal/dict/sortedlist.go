package dict

import (
	"cmp"

	"valois/internal/core"
	"valois/internal/mm"
	"valois/internal/primitive"
)

// SortedList is the paper's first dictionary structure (§4.1): the items
// are kept in a single lock-free list sorted by key, which makes key
// uniqueness enforceable with FindFrom (Figure 11) and positions the
// cursor for insertion in one pass.
type SortedList[K cmp.Ordered, V any] struct {
	list      *core.List[Entry[K, V]]
	noBackoff bool
}

var _ Dictionary[int, int] = (*SortedList[int, int])(nil)

// NewSortedList returns an empty sorted-list dictionary whose cells come
// from a fresh manager of the given mode. RC options (free-list striping,
// cell padding, backoff — see mm.NewRC) configure the free list under
// mm.ModeRC and mm.ModeEBR and are ignored under mm.ModeGC.
func NewSortedList[K cmp.Ordered, V any](mode mm.Mode, opts ...mm.RCOption) *SortedList[K, V] {
	return &SortedList[K, V]{list: core.New(mm.NewManager[Entry[K, V]](mode, opts...))}
}

// List exposes the underlying lock-free list for structural checks and
// work-counter access in tests and benchmarks.
func (s *SortedList[K, V]) List() *core.List[Entry[K, V]] { return s.list }

// EnableStats turns on the extra-work counters of §4.1's analysis.
func (s *SortedList[K, V]) EnableStats() *core.Counters { return s.list.EnableStats() }

// MemStats returns the allocation counters of the list's §5 memory
// manager (always-zero Reclaims under mm.ModeGC).
func (s *SortedList[K, V]) MemStats() mm.Stats { return s.list.Manager().Stats() }

// EnableTorture forwards to core.List.EnableTorture; see there.
func (s *SortedList[K, V]) EnableTorture(period uint32) { s.list.EnableTorture(period) }

// DisableBackoff turns off the exponential backoff in the Insert/Delete
// retry loops (§2.1 recommends backoff for "starvation at high levels of
// contention"), and in the list-level TryDelete collapse loop. For the A1
// ablation experiment and the faithful configuration; must be called
// before the structure is shared.
func (s *SortedList[K, V]) DisableBackoff() {
	s.noBackoff = true
	s.list.DisableBackoff()
}

// findFrom implements FindFrom (Figure 11): search onward from the
// cursor's position for the key, leaving the cursor either on the matching
// cell (returning true) or on the first cell with a larger key / the
// end-of-list position (returning false) — which is exactly the insertion
// point for the key.
func findFrom[K cmp.Ordered, V any](k K, c *core.Cursor[Entry[K, V]]) bool {
	for !c.End() { // Fig 11 line 1
		key := c.Item().Key
		switch {
		case key == k: // Fig 11 lines 2-3
			return true
		case key > k: // Fig 11 lines 4-5
			return false
		default: // Fig 11 line 7
			c.Next()
		}
	}
	return false // Fig 11 line 8
}

// Find reports the value stored under key.
func (s *SortedList[K, V]) Find(key K) (V, bool) {
	c := s.list.NewCursor()
	defer c.Close()
	if !findFrom(key, c) {
		var zero V
		return zero, false
	}
	// Cell persistence (§2.2) makes this read safe even if the cell is
	// deleted concurrently; the Find linearizes while the cell was in the
	// list.
	return c.Item().Value, true
}

// Insert implements Insert (Figure 12). It returns false if an item with
// the key is already present.
func (s *SortedList[K, V]) Insert(key K, value V) bool {
	c := s.list.NewCursor() // Fig 12 line 1
	defer c.Close()
	q, a := s.list.AllocInsertNodes(Entry[K, V]{Key: key, Value: value}) // Fig 12 lines 2-4
	if q == nil {
		return false // capacity exhausted (only with a bounded RC manager)
	}
	backoff := primitive.Backoff{Disabled: s.noBackoff}
	for {
		if findFrom(key, c) { // Fig 12 lines 5-7: key already present
			s.list.ReleaseNodes(q, a)
			return false
		}
		if c.TryInsert(q, a) { // Fig 12 lines 8-10
			s.list.ReleaseNodes(q, a)
			return true
		}
		s.list.Stats().AddInsertRetries(1)
		backoff.Wait() // §2.1: exponential backoff under contention
		c.Update()     // Fig 12 line 11; the loop re-runs FindFrom, which both
		// re-checks uniqueness and re-establishes the insertion point
	}
}

// Delete implements Delete (Figure 13). It returns false if no item with
// the key is present.
func (s *SortedList[K, V]) Delete(key K) bool {
	c := s.list.NewCursor() // Fig 13 line 1
	defer c.Close()
	backoff := primitive.Backoff{Disabled: s.noBackoff}
	for {
		if !findFrom(key, c) { // Fig 13 lines 2-4
			return false
		}
		if c.TryDelete() { // Fig 13 lines 5-7
			return true
		}
		s.list.Stats().AddDeleteRetries(1)
		backoff.Wait()
		c.Update() // Fig 13 line 8
	}
}

// Len reports the number of items, by traversal; under concurrent updates
// it is only a snapshot.
func (s *SortedList[K, V]) Len() int { return s.list.Len() }

// Range calls f for each item in strictly ascending key order until f
// returns false. Items inserted or deleted concurrently may or may not be
// observed; items present for the whole traversal are observed.
//
// The underlying cursor sweep can rejoin the list at an earlier position
// after traversing cells deleted concurrently (see the internal/core
// package comment), so Range skips any item whose key is not greater than
// the last one reported, guaranteeing monotone output.
func (s *SortedList[K, V]) Range(f func(key K, value V) bool) {
	c := s.list.NewCursor()
	defer c.Close()
	first := true
	var last K
	for !c.End() {
		e := c.Item()
		if first || e.Key > last {
			if !f(e.Key, e.Value) {
				return
			}
			first = false
			last = e.Key
		}
		if !c.Next() {
			return
		}
	}
}

// RangeFrom is Range starting at the first key ≥ start: one FindFrom
// positions the cursor (Figure 11 leaves it exactly there on a miss) and
// iteration proceeds with the same monotonicity filter as Range.
func (s *SortedList[K, V]) RangeFrom(start K, f func(key K, value V) bool) {
	c := s.list.NewCursor()
	defer c.Close()
	findFrom(start, c)
	first := true
	var last K
	for !c.End() {
		e := c.Item()
		if e.Key >= start && (first || e.Key > last) {
			if !f(e.Key, e.Value) {
				return
			}
			first = false
			last = e.Key
		}
		if !c.Next() {
			return
		}
	}
}

// Close releases the structure's cells. Under an RC manager it must only
// be called once no operations are in flight.
func (s *SortedList[K, V]) Close() { s.list.Close() }
