package dict

// Hash functions for the common key types. They are deterministic across
// processes so experiments are reproducible.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashString is 64-bit FNV-1a, suitable for the Hash dictionary's hash
// parameter with string keys.
func HashString(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// HashUint64 is the SplitMix64 finalizer, a fast high-quality mixer for
// integer keys.
func HashUint64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashInt hashes a signed integer key with HashUint64.
func HashInt(x int) uint64 { return HashUint64(uint64(x)) }
