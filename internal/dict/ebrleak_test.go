package dict_test

import (
	"runtime"
	"testing"
	"time"

	"valois/internal/bst"
	"valois/internal/dict"
	"valois/internal/mm"
	"valois/internal/skiplist"
	"valois/internal/testenv"
	"valois/internal/workload"
)

// These are the mode=ebr leak-accounting regressions: a mixed workload
// churns each of the four dictionaries, then — at quiescence — limbo must
// drain completely and the manager's live-cell count must equal exactly
// what the surviving keys account for. Deferred reclamation makes "a few
// cells still in limbo" look harmless; these tests pin down that the lag
// is bounded by the grace periods and not a slow leak.

// ebrManager pulls the deferred-reclamation surface out of a structure's
// manager (whose item type parameter is unexported for the skip list and
// the tree — hence the interface assertion).
func ebrManager(t *testing.T, m any) mm.Quiescer {
	t.Helper()
	q, ok := m.(mm.Quiescer)
	if !ok {
		t.Fatalf("manager %T does not implement mm.Quiescer", m)
	}
	return q
}

// churnEBR runs the VALOIS_STRESS_DIV-scaled mixed workload against d.
func churnEBR(d dict.Dictionary[int, int]) workload.Config {
	cfg := workload.Config{
		Goroutines: 4,
		Duration:   testenv.Duration(400 * time.Millisecond),
		Mix:        workload.Mixed(),
		KeySpace:   128,
		Prefill:    64,
		Seed:       42,
	}
	workload.Prefill(cfg, d)
	workload.Run(cfg, d)
	return cfg
}

// surviving counts the keys present at quiescence.
func surviving(d dict.Dictionary[int, int], keySpace int) int64 {
	n := int64(0)
	for k := 0; k < keySpace; k++ {
		if _, ok := d.Find(k); ok {
			n++
		}
	}
	return n
}

// drainAndCheck quiesces the manager and verifies the exact live-cell
// accounting: wantLive cells for the surviving keys plus skeleton, then
// zero after closing the structure.
func drainAndCheck(t *testing.T, q mm.Quiescer, stats func() mm.Stats, wantLive int64, close func()) {
	t.Helper()
	q.ForceAdvance() // cover the explicit force-advance path, then drain
	if !q.Quiesce() {
		t.Fatalf("limbo did not drain: %d cells, epoch %d", q.LimboLen(), q.Epoch())
	}
	if got := q.LimboLen(); got != 0 {
		t.Fatalf("limbo = %d after Quiesce, want 0", got)
	}
	s := stats()
	if got := s.Live(); got != wantLive {
		t.Fatalf("live cells = %d, want %d (allocs %d, reclaims %d)", got, wantLive, s.Allocs, s.Reclaims)
	}
	close()
	if !q.Quiesce() {
		t.Fatalf("limbo did not drain after Close: %d cells", q.LimboLen())
	}
	if got := stats().Live(); got != 0 {
		t.Fatalf("live cells after Close+Quiesce = %d, want 0 — leaked", got)
	}
}

// checkGoroutines fails the test if the workload's goroutines outlive it.
func checkGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d running, baseline %d", runtime.NumGoroutine(), baseline)
}

func TestEBRLeakAccountingSortedList(t *testing.T) {
	base := runtime.NumGoroutine()
	s := dict.NewSortedList[int, int](mm.ModeEBR)
	cfg := churnEBR(s)
	q := ebrManager(t, s.List().Manager())
	n := surviving(s, cfg.KeySpace)
	// Skeleton: First, Last, head aux = 3; each key: cell + aux = 2.
	drainAndCheck(t, q, s.MemStats, 3+2*n, s.Close)
	checkGoroutines(t, base)
}

func TestEBRLeakAccountingHash(t *testing.T) {
	base := runtime.NumGoroutine()
	const buckets = 8
	h := dict.NewHash[int, int](buckets, mm.ModeEBR, dict.HashInt)
	cfg := churnEBR(h)
	n := surviving(h, cfg.KeySpace)
	// Each bucket has its own manager; quiesce them all, then check the
	// summed stats: per-bucket skeleton of 3 plus 2 cells per key.
	for i := 0; i < buckets; i++ {
		q := ebrManager(t, h.Bucket(i).List().Manager())
		q.ForceAdvance()
		if !q.Quiesce() {
			t.Fatalf("bucket %d: limbo did not drain: %d cells", i, q.LimboLen())
		}
	}
	if got, want := h.MemStats().Live(), int64(3*buckets)+2*n; got != want {
		t.Fatalf("live cells = %d, want %d for %d surviving keys", got, want, n)
	}
	h.Close()
	for i := 0; i < buckets; i++ {
		q := ebrManager(t, h.Bucket(i).List().Manager())
		if !q.Quiesce() {
			t.Fatalf("bucket %d: limbo did not drain after Close", i)
		}
	}
	if got := h.MemStats().Live(); got != 0 {
		t.Fatalf("live cells after Close+Quiesce = %d, want 0 — leaked", got)
	}
	checkGoroutines(t, base)
}

func TestEBRLeakAccountingSkipList(t *testing.T) {
	base := runtime.NumGoroutine()
	s := skiplist.New[int, int](mm.ModeEBR, skiplist.WithMaxLevel(4))
	churnEBR(s)
	q := ebrManager(t, s.Level(0).Manager())
	// Tower heights are randomized, so the exact constant is computed from
	// the per-level populations: every level is a list (skeleton 3) and
	// every tower node is cell + aux = 2. Counting is itself a cursor
	// traversal, and traversal helps — it collapses aux chains and excises
	// deleted cells left behind by the churn, retiring more cells after
	// the drain. Iterate traverse→drain until the accounting stabilizes.
	var want, got int64
	for attempt := 0; ; attempt++ {
		want = 0
		for i := 0; i < s.Levels(); i++ {
			want += 3 + 2*int64(s.Level(i).Len())
		}
		q.ForceAdvance()
		if !q.Quiesce() {
			t.Fatalf("limbo did not drain: %d cells", q.LimboLen())
		}
		got = s.MemStats().Live()
		if got == want {
			break
		}
		if attempt >= 50 {
			t.Fatalf("live cells = %d, want %d from per-level populations (stuck after %d traverse+drain rounds)", got, want, attempt)
		}
	}
	s.Close()
	if !q.Quiesce() {
		t.Fatalf("limbo did not drain after Close: %d cells", q.LimboLen())
	}
	if got := s.MemStats().Live(); got != 0 {
		t.Fatalf("live cells after Close+Quiesce = %d, want 0 — leaked", got)
	}
	checkGoroutines(t, base)
}

func TestEBRLeakAccountingBST(t *testing.T) {
	base := runtime.NumGoroutine()
	tr := bst.New[int, int](mm.ModeEBR)
	cfg := churnEBR(tr)
	q := ebrManager(t, tr.Manager())
	n := surviving(tr, cfg.KeySpace)
	// Tree deletions leave the deleted cell's auxiliary nodes behind as
	// connective chains, so there is no per-key live-cell formula; the
	// exact accounting is reachability: every cell the manager considers
	// live must be reachable from the root. A floor of root aux + empty
	// sentinel + (cell + two side auxiliaries) per key still holds.
	want := int64(tr.NodeCount())
	if floor := 2 + 3*n; want < floor {
		t.Fatalf("reachable nodes = %d, below the structural floor %d for %d keys", want, floor, n)
	}
	drainAndCheck(t, q, tr.MemStats, want, tr.Close)
	checkGoroutines(t, base)
}
