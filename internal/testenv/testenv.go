// Package testenv centralises the environment knobs used by the heavy
// concurrency tests. CI sets VALOIS_STRESS_DIV to shrink stress iteration
// counts and churn durations so the race-detector run stays well under its
// time budget without skipping the tests outright (as -short would).
//
// VALOIS_STRESS_DIV is an integer divisor, default 1. A value of 10 makes
// every stress loop one tenth as long; values below 1 and unparsable
// values are treated as 1. It composes with -short: tests apply their
// -short reduction first and then divide by VALOIS_STRESS_DIV.
package testenv

import (
	"os"
	"strconv"
	"time"
)

// EnvStressDiv is the name of the stress-divisor environment variable.
const EnvStressDiv = "VALOIS_STRESS_DIV"

// Divisor reports the current stress divisor (always >= 1).
func Divisor() int {
	v := os.Getenv(EnvStressDiv)
	if v == "" {
		return 1
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return 1
	}
	return n
}

// Iters scales an iteration count by the stress divisor, never
// returning less than 1 so loops still execute at least once.
func Iters(n int) int {
	n /= Divisor()
	if n < 1 {
		return 1
	}
	return n
}

// Duration scales a churn duration by the stress divisor, never
// returning less than a millisecond.
func Duration(d time.Duration) time.Duration {
	d /= time.Duration(Divisor())
	if d < time.Millisecond {
		return time.Millisecond
	}
	return d
}
