package testenv

import (
	"testing"
	"time"
)

func TestDivisorParsing(t *testing.T) {
	cases := []struct {
		val  string
		want int
	}{
		{"", 1},
		{"1", 1},
		{"10", 10},
		{"0", 1},
		{"-4", 1},
		{"nope", 1},
	}
	for _, c := range cases {
		t.Setenv(EnvStressDiv, c.val)
		if got := Divisor(); got != c.want {
			t.Errorf("Divisor() with %q = %d, want %d", c.val, got, c.want)
		}
	}
}

func TestItersFloorsAtOne(t *testing.T) {
	t.Setenv(EnvStressDiv, "100")
	if got := Iters(5000); got != 50 {
		t.Errorf("Iters(5000) = %d, want 50", got)
	}
	if got := Iters(3); got != 1 {
		t.Errorf("Iters(3) = %d, want 1", got)
	}
}

func TestDurationFloorsAtMillisecond(t *testing.T) {
	t.Setenv(EnvStressDiv, "10")
	if got := Duration(time.Second); got != 100*time.Millisecond {
		t.Errorf("Duration(1s) = %v, want 100ms", got)
	}
	t.Setenv(EnvStressDiv, "1000000")
	if got := Duration(time.Second); got != time.Millisecond {
		t.Errorf("Duration(1s) with huge divisor = %v, want 1ms", got)
	}
}
