// Package workload generates the synthetic workloads the experiment suite
// (DESIGN.md, E1–E7) runs against the dictionary structures: key
// distributions, operation mixes, delay injection that models the
// unpredictable process delays of §1 (page faults, multitasking
// preemption), and a timed multi-goroutine runner that reports throughput.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"valois/internal/dict"
)

// Mix is an operation mix in percent; the three fields must sum to 100.
type Mix struct {
	FindPct   int
	InsertPct int
	DeletePct int
}

// Valid reports whether the mix sums to 100 with no negative entries.
func (m Mix) Valid() bool {
	return m.FindPct >= 0 && m.InsertPct >= 0 && m.DeletePct >= 0 &&
		m.FindPct+m.InsertPct+m.DeletePct == 100
}

// ReadMostly is 90% finds and 5% each inserts and deletes.
func ReadMostly() Mix { return Mix{FindPct: 90, InsertPct: 5, DeletePct: 5} }

// Mixed is the 50/25/25 find/insert/delete mix used by E1.
func Mixed() Mix { return Mix{FindPct: 50, InsertPct: 25, DeletePct: 25} }

// UpdateHeavy is all inserts and deletes.
func UpdateHeavy() Mix { return Mix{InsertPct: 50, DeletePct: 50} }

// ParseMix resolves a mix from its name — "read-mostly", "mixed", or
// "update-heavy" — or an explicit "find/insert/delete" percent triple such
// as "50/25/25". The load generator (cmd/lfload) and tools that share its
// flags use this so network runs exercise the same mixes as the in-process
// experiment suite.
func ParseMix(s string) (Mix, error) {
	switch s {
	case "read-mostly":
		return ReadMostly(), nil
	case "mixed":
		return Mixed(), nil
	case "update-heavy":
		return UpdateHeavy(), nil
	}
	var m Mix
	if n, err := fmt.Sscanf(s, "%d/%d/%d", &m.FindPct, &m.InsertPct, &m.DeletePct); err != nil || n != 3 {
		return Mix{}, fmt.Errorf("workload: bad mix %q (want read-mostly, mixed, update-heavy, or F/I/D)", s)
	}
	if !m.Valid() {
		return Mix{}, fmt.Errorf("workload: mix %q does not sum to 100", s)
	}
	return m, nil
}

// ParseDistribution resolves "uniform" or "zipfian".
func ParseDistribution(s string) (Distribution, error) {
	switch s {
	case "uniform":
		return Uniform, nil
	case "zipfian":
		return Zipfian, nil
	}
	return 0, fmt.Errorf("workload: bad distribution %q (want uniform or zipfian)", s)
}

// String returns the distribution's flag spelling.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Zipfian:
		return "zipfian"
	default:
		return "invalid"
	}
}

// Distribution selects how keys are drawn from the key space.
type Distribution int

const (
	// Uniform draws keys uniformly from [0, KeySpace).
	Uniform Distribution = iota + 1
	// Zipfian draws keys with a Zipf(1.2) distribution, concentrating
	// operations on a few hot keys — the high-contention regime.
	Zipfian
)

// DelaySpec injects a delay into one in Every operations, modelling a
// process stalled by a page fault or preemption (§1). For lock-based
// structures the runner installs the delay inside the critical section
// (where a real stall would hold the lock); for lock-free structures it
// runs within the operation's window, where it stalls only the delayed
// process itself.
type DelaySpec struct {
	Every int // 0 disables injection
	D     time.Duration
}

// DelaySettable is implemented by lock-based structures that can run the
// delay hook while holding their lock.
type DelaySettable interface {
	SetDelay(func())
}

// Config parameterizes a run.
type Config struct {
	Goroutines int
	Duration   time.Duration
	Mix        Mix
	KeySpace   int
	Dist       Distribution
	Prefill    int // keys inserted before the clock starts
	Seed       int64
	Delay      DelaySpec
}

// Result reports what a run did.
type Result struct {
	Ops     int64 // total operations completed
	Finds   int64
	Inserts int64 // successful insertions
	Deletes int64 // successful deletions
	Elapsed time.Duration
	// LatP50 and LatP99 are percentiles of sampled per-operation
	// latencies (every latencySample-th operation is timed). Convoying
	// (§1) shows up here long before it shows in mean throughput.
	LatP50 time.Duration
	LatP99 time.Duration
}

// latencySample times one in this many operations.
const latencySample = 16

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// OpsPerSec returns the run's throughput.
func (r Result) OpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// Prefill inserts cfg.Prefill distinct keys drawn deterministically from
// the key space, so runs start from a populated structure.
func Prefill(cfg Config, d dict.Dictionary[int, int]) {
	rng := rand.New(rand.NewSource(cfg.Seed + 42))
	inserted := 0
	for _, k := range rng.Perm(max(cfg.KeySpace, cfg.Prefill)) {
		if inserted >= cfg.Prefill {
			break
		}
		if d.Insert(k, k) {
			inserted++
		}
	}
}

// Run drives cfg.Goroutines goroutines of the configured mix against d
// for cfg.Duration and reports the aggregate result. If d implements
// DelaySettable and a delay is configured, the hook is installed inside
// the structure (and removed after the run); otherwise the runner injects
// the delay within the operation window.
func Run(cfg Config, d dict.Dictionary[int, int]) Result {
	if !cfg.Mix.Valid() {
		panic("workload: invalid mix")
	}
	if cfg.KeySpace < 1 {
		cfg.KeySpace = 1
	}

	var delayCounter atomic.Int64
	delayHook := func() {}
	if cfg.Delay.Every > 0 {
		every := int64(cfg.Delay.Every)
		dur := cfg.Delay.D
		delayHook = func() {
			if delayCounter.Add(1)%every == 0 {
				time.Sleep(dur)
			}
		}
	}
	inStructure := false
	if ds, ok := d.(DelaySettable); ok && cfg.Delay.Every > 0 {
		ds.SetDelay(delayHook)
		inStructure = true
		defer ds.SetDelay(nil)
	}

	var (
		wg        sync.WaitGroup
		stop      atomic.Bool
		ops       atomic.Int64
		finds     atomic.Int64
		inserts   atomic.Int64
		deletes   atomic.Int64
		latMu     sync.Mutex
		latencies []time.Duration
	)
	start := time.Now()
	for g := 0; g < cfg.Goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var zipf *rand.Zipf
			if cfg.Dist == Zipfian {
				zipf = rand.NewZipf(rng, 1.2, 1, uint64(cfg.KeySpace-1))
			}
			var localOps, localFinds, localIns, localDel int64
			var localLats []time.Duration
			for !stop.Load() {
				k := 0
				if zipf != nil {
					k = int(zipf.Uint64())
				} else {
					k = rng.Intn(cfg.KeySpace)
				}
				if !inStructure && cfg.Delay.Every > 0 {
					delayHook()
				}
				sampled := localOps%latencySample == 0
				var opStart time.Time
				if sampled {
					opStart = time.Now()
				}
				p := rng.Intn(100)
				switch {
				case p < cfg.Mix.FindPct:
					d.Find(k)
					localFinds++
				case p < cfg.Mix.FindPct+cfg.Mix.InsertPct:
					if d.Insert(k, k) {
						localIns++
					}
				default:
					if d.Delete(k) {
						localDel++
					}
				}
				if sampled {
					localLats = append(localLats, time.Since(opStart))
				}
				localOps++
			}
			ops.Add(localOps)
			finds.Add(localFinds)
			inserts.Add(localIns)
			deletes.Add(localDel)
			latMu.Lock()
			latencies = append(latencies, localLats...)
			latMu.Unlock()
		}(cfg.Seed + int64(g) + 1)
	}
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	return Result{
		Ops:     ops.Load(),
		Finds:   finds.Load(),
		Inserts: inserts.Load(),
		Deletes: deletes.Load(),
		Elapsed: time.Since(start),
		LatP50:  percentile(latencies, 0.50),
		LatP99:  percentile(latencies, 0.99),
	}
}

// RunOps is like Run but executes a fixed number of operations per
// goroutine instead of running for a duration — the mode the extra-work
// experiments (E3–E6) use so "total work for n operations" is exact.
func RunOps(cfg Config, opsPerG int, d dict.Dictionary[int, int]) Result {
	if !cfg.Mix.Valid() {
		panic("workload: invalid mix")
	}
	if cfg.KeySpace < 1 {
		cfg.KeySpace = 1
	}
	var (
		wg      sync.WaitGroup
		finds   atomic.Int64
		inserts atomic.Int64
		deletes atomic.Int64
	)
	start := time.Now()
	for g := 0; g < cfg.Goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var zipf *rand.Zipf
			if cfg.Dist == Zipfian {
				zipf = rand.NewZipf(rng, 1.2, 1, uint64(cfg.KeySpace-1))
			}
			for i := 0; i < opsPerG; i++ {
				k := 0
				if zipf != nil {
					k = int(zipf.Uint64())
				} else {
					k = rng.Intn(cfg.KeySpace)
				}
				p := rng.Intn(100)
				switch {
				case p < cfg.Mix.FindPct:
					d.Find(k)
					finds.Add(1)
				case p < cfg.Mix.FindPct+cfg.Mix.InsertPct:
					if d.Insert(k, k) {
						inserts.Add(1)
					}
				default:
					if d.Delete(k) {
						deletes.Add(1)
					}
				}
			}
		}(cfg.Seed + int64(g) + 1)
	}
	wg.Wait()
	return Result{
		Ops:     int64(cfg.Goroutines) * int64(opsPerG),
		Finds:   finds.Load(),
		Inserts: inserts.Load(),
		Deletes: deletes.Load(),
		Elapsed: time.Since(start),
	}
}
