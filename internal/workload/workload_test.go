package workload

import (
	"sync"
	"testing"
	"time"

	"valois/internal/dict"
	"valois/internal/mm"
	"valois/internal/spinlock"
)

func TestMixValid(t *testing.T) {
	tests := []struct {
		mix  Mix
		want bool
	}{
		{Mixed(), true},
		{ReadMostly(), true},
		{UpdateHeavy(), true},
		{Mix{FindPct: 101, InsertPct: -1}, false},
		{Mix{FindPct: 30, InsertPct: 30, DeletePct: 30}, false},
	}
	for _, tt := range tests {
		if got := tt.mix.Valid(); got != tt.want {
			t.Errorf("Valid(%+v) = %v, want %v", tt.mix, got, tt.want)
		}
	}
}

func TestPrefillInsertsExactly(t *testing.T) {
	d := dict.NewSortedList[int, int](mm.ModeGC)
	cfg := Config{KeySpace: 256, Prefill: 100, Seed: 1}
	Prefill(cfg, d)
	if got := d.Len(); got != 100 {
		t.Fatalf("prefilled %d keys, want 100", got)
	}
}

func TestRunProducesWork(t *testing.T) {
	d := dict.NewSortedList[int, int](mm.ModeGC)
	cfg := Config{
		Goroutines: 4,
		Duration:   50 * time.Millisecond,
		Mix:        Mixed(),
		KeySpace:   64,
		Dist:       Uniform,
		Prefill:    32,
		Seed:       7,
	}
	Prefill(cfg, d)
	res := Run(cfg, d)
	if res.Ops == 0 {
		t.Fatal("run completed zero operations")
	}
	if res.Finds == 0 {
		t.Fatal("mixed run did no finds")
	}
	if res.OpsPerSec() <= 0 {
		t.Fatal("non-positive throughput")
	}
	// Population must equal prefill + successful inserts - deletes.
	if got, expect := d.Len(), cfg.Prefill+int(res.Inserts)-int(res.Deletes); got != expect {
		t.Fatalf("population = %d, want %d", got, expect)
	}
}

func TestRunOpsCountsExactly(t *testing.T) {
	d := dict.NewSortedList[int, int](mm.ModeGC)
	cfg := Config{Goroutines: 3, Mix: UpdateHeavy(), KeySpace: 32, Seed: 5}
	res := RunOps(cfg, 500, d)
	if res.Ops != 1500 {
		t.Fatalf("Ops = %d, want 1500", res.Ops)
	}
	if got, expect := d.Len(), int(res.Inserts)-int(res.Deletes); got != expect {
		t.Fatalf("population = %d, want %d", got, expect)
	}
}

func TestZipfianSkew(t *testing.T) {
	// Under Zipf, key 0 must be drawn far more often than under uniform;
	// verify indirectly through a counting dictionary.
	counts := &countingDict{counts: make(map[int]int)}
	cfg := Config{
		Goroutines: 1,
		Mix:        Mix{FindPct: 100},
		KeySpace:   1024,
		Dist:       Zipfian,
		Seed:       3,
	}
	RunOps(cfg, 5000, counts)
	zero := counts.counts[0]
	if zero < 5000/20 {
		t.Fatalf("Zipf drew key 0 only %d/5000 times; distribution looks uniform", zero)
	}
}

type countingDict struct {
	mu     sync.Mutex
	counts map[int]int
}

func (c *countingDict) Find(k int) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counts[k]++
	return 0, false
}
func (c *countingDict) Insert(k, v int) bool { return false }
func (c *countingDict) Delete(k int) bool    { return false }

func TestDelayInstalledInsideLockedStructure(t *testing.T) {
	l := spinlock.NewLockedList[int, int](spinlock.NewLock("mutex"))
	cfg := Config{
		Goroutines: 2,
		Duration:   30 * time.Millisecond,
		Mix:        Mixed(),
		KeySpace:   16,
		Seed:       9,
		Delay:      DelaySpec{Every: 10, D: time.Millisecond},
	}
	res := Run(cfg, l)
	if res.Ops == 0 {
		t.Fatal("delayed run completed zero operations")
	}
	if l.Delay != nil {
		t.Fatal("delay hook not removed after the run")
	}
	// With a 1ms stall every 10 ops inside the critical section, two
	// goroutines for 30ms cannot complete more than ~600 ops; without the
	// delay they would do tens of thousands. Use a loose bound.
	if res.Ops > 5000 {
		t.Fatalf("ops = %d; the critical-section delay appears not to throttle", res.Ops)
	}
}
