package proto

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzRESPCommand feeds arbitrary bytes to the RESP request parser, the
// way FuzzParseCommand does for the text grammar. Whatever the input,
// RESPCodec.ReadCommand must terminate without panicking and return
// either a command satisfying the wire invariants or a classified error;
// the loop continues on the same stream after recoverable errors, so the
// drain-the-broken-array resynchronisation logic is fuzzed too.
func FuzzRESPCommand(f *testing.F) {
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$3\r\nfoo\r\n"))
	f.Add([]byte("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhello\r\n*1\r\n$4\r\nPING\r\n"))
	f.Add([]byte("*3\r\n$3\r\nSET\r\n$0\r\n\r\n$5\r\nhello\r\n"))
	f.Add([]byte("*2\r\n$4\r\nFROB\r\n$2\r\nxx\r\n*1\r\n$5\r\nSTATS\r\n"))
	f.Add([]byte("*1\r\n$3\r\nGET\r\n"))
	f.Add([]byte("*999\r\n"))
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$1048577\r\n"))
	f.Add([]byte("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$9\r\nshort\r\n"))
	f.Add([]byte("PING\r\nGET k\r\n"))
	f.Add([]byte("SET k inline-value\r\n"))
	f.Add([]byte("*2\r\nGET\r\n$1\r\nk\r\n"))
	f.Add([]byte{'*', 0xff, 0x0d, 0x0a})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		var rc RESPCodec
		// A connection handler loops; bound by the input length so the
		// target always terminates.
		for i := 0; i <= len(data); i++ {
			cmd, err := rc.ReadCommand(r)
			if err == nil {
				checkRESPInvariants(t, cmd)
				continue
			}
			var ce *ClientError
			switch {
			case errors.As(err, &ce):
				if ce.Fatal {
					return // server closes the connection here
				}
			case errors.Is(err, ErrUnknownVerb):
				// server replies -ERR and keeps reading
			case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
				return
			default:
				t.Fatalf("unclassified error type %T: %v", err, err)
			}
		}
	})
}

func checkRESPInvariants(t *testing.T, c Command) {
	t.Helper()
	switch c.Verb {
	case VerbGet, VerbSet, VerbDelete, VerbRange, VerbStats, VerbQuit, VerbPing:
	default:
		t.Fatalf("parsed command has invalid verb %d", int(c.Verb))
	}
	if c.Verb == VerbGet || c.Verb == VerbSet || c.Verb == VerbDelete || c.Verb == VerbRange {
		if !validKey([]byte(c.Key)) {
			t.Fatalf("parsed key %q violates the key grammar", c.Key)
		}
	}
	if len(c.Value) > MaxValueLen {
		t.Fatalf("parsed value length %d exceeds MaxValueLen", len(c.Value))
	}
	if c.Verb == VerbRange && (c.Count < 1 || c.Count > MaxRange) {
		t.Fatalf("parsed range count %d out of bounds", c.Count)
	}
}

// FuzzRESPRoundTrip is the RESP analogue of FuzzCommandRoundTrip: for
// every command a correct client can emit, AppendRESPCommand →
// RESPCodec.ReadCommand must be the identity, and re-encoding the parsed
// command must reproduce the original bytes. Values range over arbitrary
// bytes — the binary-safety claim is what this target defends.
func FuzzRESPRoundTrip(f *testing.F) {
	f.Add(int(VerbGet), "k", []byte(nil), 0)
	f.Add(int(VerbSet), "key:with:colons", []byte("binary\r\n\x00\xffvalue"), 0)
	f.Add(int(VerbSet), "k", []byte{}, 0)
	f.Add(int(VerbDelete), "zz", []byte(nil), 0)
	f.Add(int(VerbRange), "start", []byte(nil), 100)
	f.Add(int(VerbStats), "", []byte(nil), 0)
	f.Add(int(VerbQuit), "", []byte(nil), 0)
	f.Add(int(VerbPing), "", []byte(nil), 0)
	f.Fuzz(func(t *testing.T, verb int, key string, value []byte, count int) {
		cmd := Command{Verb: Verb(verb), Key: key, Value: value, Count: count}
		switch cmd.Verb {
		case VerbGet, VerbDelete, VerbSet, VerbRange:
			if !validKey([]byte(cmd.Key)) {
				t.Skip("key not representable on the wire")
			}
		case VerbStats, VerbQuit, VerbPing:
			cmd.Key = ""
		default:
			t.Skip("not a wire verb")
		}
		if cmd.Verb != VerbSet {
			cmd.Value = nil
		} else if len(cmd.Value) > MaxValueLen {
			cmd.Value = cmd.Value[:MaxValueLen]
		}
		if cmd.Verb == VerbRange {
			if cmd.Count < 1 || cmd.Count > MaxRange {
				t.Skip("count not representable on the wire")
			}
		} else {
			cmd.Count = 0
		}

		encoded, err := AppendRESPCommand(nil, cmd)
		if err != nil {
			t.Fatalf("AppendRESPCommand(%+v): %v", cmd, err)
		}
		var rc RESPCodec
		parsed, err := rc.ReadCommand(bufio.NewReader(bytes.NewReader(encoded)))
		if err != nil {
			t.Fatalf("ReadCommand of our own encoding %q: %v", encoded, err)
		}
		if parsed.Verb != cmd.Verb || parsed.Key != cmd.Key || parsed.Count != cmd.Count || !bytes.Equal(parsed.Value, cmd.Value) {
			t.Fatalf("round trip changed the command:\nsent   %+v\nparsed %+v", cmd, parsed)
		}
		again, err := AppendRESPCommand(nil, parsed)
		if err != nil {
			t.Fatalf("re-encoding parsed command: %v", err)
		}
		if !bytes.Equal(again, encoded) {
			t.Fatalf("re-encoding differs:\nfirst  %q\nsecond %q", encoded, again)
		}

		// The Complete scanner must agree with the parser on every whole
		// encoding, and reject every strict prefix.
		if !rc.Complete(encoded) {
			t.Fatalf("Complete(%q) = false on a whole command", encoded)
		}
		if len(encoded) > 1 && rc.Complete(encoded[:len(encoded)-1]) {
			t.Fatalf("Complete(%q) = true on a strict prefix", encoded[:len(encoded)-1])
		}
	})
}
