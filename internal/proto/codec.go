package proto

import (
	"bufio"
	"strconv"
	"sync"
)

// Protocol names accepted by valoisd -protocol and client Options.
const (
	ProtocolText = "text"
	ProtocolRESP = "resp"
	ProtocolAuto = "auto" // server-side: sniff the first byte per connection
)

// ServerCodec is one wire protocol from the server's side: it parses
// requests off a connection and appends replies into a caller-owned
// buffer. Implementations (TextCodec, RESPCodec) are stateful scratch
// holders and are owned by exactly one connection goroutine.
//
// The append-style reply surface is the zero-allocation contract of the
// serving hot path: the connection loop reuses one pooled reply buffer
// per batch and issues a single write for all of it, so encoding a reply
// costs no allocation and no syscall of its own.
type ServerCodec interface {
	// Name reports the protocol name (ProtocolText or ProtocolRESP).
	Name() string
	// ReadCommand reads and parses one request. Errors are io errors,
	// ErrUnknownVerb, or *ClientError (Fatal ⇒ framing lost, close after
	// replying).
	ReadCommand(r *bufio.Reader) (Command, error)
	// Complete reports whether buf (the bytes already buffered in the
	// reader) contains at least one whole request, so ReadCommand can be
	// called without risking a blocking socket read.
	Complete(buf []byte) bool

	// Reply encoders, appending wire bytes to dst.
	AppendGetReply(dst []byte, key string, value []byte, found bool) []byte
	AppendSetReply(dst []byte) []byte
	AppendDeleteReply(dst []byte, deleted bool) []byte
	AppendRangeHeader(dst []byte, n int) []byte
	AppendRangeItem(dst []byte, key string, value []byte) []byte
	AppendRangeTrailer(dst []byte) []byte
	AppendStatsHeader(dst []byte, n int) []byte
	AppendStatItem(dst []byte, name, value string) []byte
	AppendStatsTrailer(dst []byte) []byte
	AppendPong(dst []byte) []byte
	AppendQuit(dst []byte) []byte
	AppendClientError(dst []byte, msg string) []byte
	AppendServerError(dst []byte, msg string) []byte
	AppendUnknownVerb(dst []byte) []byte
}

// Text reply encoders: the append-into-caller-buffer versions of the
// Write* helpers above, used by the batched serving path.

// AppendValueBlock appends one "VALUE <key> <n>\r\n<data>\r\n" block.
func AppendValueBlock(dst []byte, key string, value []byte) []byte {
	dst = append(dst, "VALUE "...)
	dst = append(dst, key...)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(len(value)), 10)
	dst = append(dst, '\r', '\n')
	dst = append(dst, value...)
	return append(dst, '\r', '\n')
}

// appendSanitized appends msg with CR/LF flattened to spaces so a reply
// message can never break line framing.
func appendSanitized(dst []byte, msg string) []byte {
	for i := 0; i < len(msg); i++ {
		c := msg[i]
		if c == '\r' || c == '\n' {
			c = ' '
		}
		dst = append(dst, c)
	}
	return dst
}

func (tc *TextCodec) AppendGetReply(dst []byte, key string, value []byte, found bool) []byte {
	if found {
		dst = AppendValueBlock(dst, key, value)
	}
	return append(dst, "END\r\n"...)
}

func (tc *TextCodec) AppendSetReply(dst []byte) []byte {
	return append(dst, "STORED\r\n"...)
}

func (tc *TextCodec) AppendDeleteReply(dst []byte, deleted bool) []byte {
	if deleted {
		return append(dst, "DELETED\r\n"...)
	}
	return append(dst, "NOT_FOUND\r\n"...)
}

func (tc *TextCodec) AppendRangeHeader(dst []byte, n int) []byte { return dst }

func (tc *TextCodec) AppendRangeItem(dst []byte, key string, value []byte) []byte {
	return AppendValueBlock(dst, key, value)
}

func (tc *TextCodec) AppendRangeTrailer(dst []byte) []byte {
	return append(dst, "END\r\n"...)
}

func (tc *TextCodec) AppendStatsHeader(dst []byte, n int) []byte { return dst }

func (tc *TextCodec) AppendStatItem(dst []byte, name, value string) []byte {
	dst = append(dst, "STAT "...)
	dst = append(dst, name...)
	dst = append(dst, ' ')
	dst = append(dst, value...)
	return append(dst, '\r', '\n')
}

func (tc *TextCodec) AppendStatsTrailer(dst []byte) []byte {
	return append(dst, "END\r\n"...)
}

// AppendPong is unreachable on the text protocol (its grammar has no
// PING) but kept total so the interface cannot panic.
func (tc *TextCodec) AppendPong(dst []byte) []byte {
	return append(dst, "PONG\r\n"...)
}

// AppendQuit appends nothing: the text protocol closes silently on QUIT.
func (tc *TextCodec) AppendQuit(dst []byte) []byte { return dst }

func (tc *TextCodec) AppendClientError(dst []byte, msg string) []byte {
	dst = append(dst, "CLIENT_ERROR "...)
	dst = appendSanitized(dst, msg)
	return append(dst, '\r', '\n')
}

func (tc *TextCodec) AppendServerError(dst []byte, msg string) []byte {
	dst = append(dst, "SERVER_ERROR "...)
	dst = appendSanitized(dst, msg)
	return append(dst, '\r', '\n')
}

func (tc *TextCodec) AppendUnknownVerb(dst []byte) []byte {
	return append(dst, "ERROR\r\n"...)
}

// Buffer pool, sized-class. Reply and encode buffers cycle through here
// so steady-state serving allocates nothing per batch: a buffer that
// grew to fit a burst is returned to the class its capacity now fits,
// and outliers beyond the largest class are dropped for the GC rather
// than pinned forever.
var bufPools = [...]struct {
	size int
	pool sync.Pool
}{
	{size: 4 << 10},
	{size: 64 << 10},
	{size: 1 << 20},
}

// GetBuffer returns an empty buffer with capacity at least hint (zero
// picks the smallest class). Release with PutBuffer.
func GetBuffer(hint int) []byte {
	for i := range bufPools {
		p := &bufPools[i]
		if hint <= p.size {
			if b, ok := p.pool.Get().(*[]byte); ok {
				return (*b)[:0]
			}
			return make([]byte, 0, p.size)
		}
	}
	return make([]byte, 0, hint)
}

// PutBuffer recycles a buffer obtained from GetBuffer (or anywhere — the
// class is chosen by capacity). Oversized buffers are dropped.
func PutBuffer(b []byte) {
	c := cap(b)
	for i := len(bufPools) - 1; i >= 0; i-- {
		p := &bufPools[i]
		if c >= p.size {
			if c <= bufPools[len(bufPools)-1].size {
				b = b[:0]
				p.pool.Put(&b)
			}
			return
		}
	}
}
