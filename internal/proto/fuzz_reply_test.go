package proto

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// FuzzReadReply feeds arbitrary bytes to the client-side reply reader —
// the path a byte-flipping network reaches (see internal/faultnet's
// corruption fault). Whatever arrives, the reader must terminate without
// panicking, return only classified errors, and never hand the caller a
// malformed field set.
func FuzzReadReply(f *testing.F) {
	f.Add([]byte("STORED\r\n"))
	f.Add([]byte("END\r\n"))
	f.Add([]byte("VALUE k 5\r\nhello\r\nEND\r\n"))
	f.Add([]byte("VALUE k 99\r\nshort\r\n"))
	f.Add([]byte("VALUE k -1\r\n"))
	f.Add([]byte("VALUE k 1048577\r\n"))
	f.Add([]byte("STAT cmd_get 12\r\nEND\r\n"))
	f.Add([]byte("CLIENT_ERROR bad key\r\nSTORED\r\n"))
	f.Add([]byte("SERVER_ERROR too many connections\r\n"))
	f.Add([]byte("ERROR\r\n"))
	f.Add([]byte("\r\n\r\n"))
	f.Add(bytes.Repeat([]byte("y"), MaxLineLen*2))
	f.Add([]byte{0xff, 0x00, 0x0d, 0x0a})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		// A client loops over reply lines; bound by the input length so
		// the target always terminates.
		for i := 0; i <= len(data); i++ {
			fields, err := ReadReplyLine(r)
			if err != nil {
				var re *ReplyError
				var ce *ClientError
				switch {
				case errors.As(err, &re):
					if re.Kind != "ERROR" && re.Kind != "CLIENT_ERROR" && re.Kind != "SERVER_ERROR" {
						t.Fatalf("ReplyError with invalid kind %q", re.Kind)
					}
					continue // an error reply; the client keeps the stream
				case errors.As(err, &ce):
					return // framing lost (over-long or truncated line)
				case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
					return
				case err.Error() == "proto: empty reply line":
					continue
				default:
					t.Fatalf("unclassified error type %T: %v", err, err)
				}
			}
			if len(fields) == 0 {
				t.Fatal("ReadReplyLine returned no fields and no error")
			}
			for _, fd := range fields {
				if fd == "" || strings.ContainsAny(fd, " \t\r\n") {
					t.Fatalf("reply field %q is not a clean token", fd)
				}
			}
			// Consume VALUE payloads the way the client does, so the
			// size-field and terminator paths of ReadValueBlock run too.
			if fields[0] == "VALUE" && len(fields) == 3 {
				if _, err := ReadValueBlock(r, fields[2]); err != nil {
					return // bad size or cut stream: the client drops the conn
				}
			}
		}
	})
}

// FuzzCommandRoundTrip checks that for every command the client can
// legally send, WriteCommand → ReadCommand is the identity, and that
// re-encoding the parsed command reproduces the original bytes — the
// two ends of the protocol cannot drift apart on any input.
func FuzzCommandRoundTrip(f *testing.F) {
	f.Add(int(VerbGet), "k", []byte(nil), 0)
	f.Add(int(VerbSet), "key:with:colons", []byte("some value\r\nwith CRLF"), 0)
	f.Add(int(VerbSet), "k", []byte{}, 0)
	f.Add(int(VerbDelete), "zz", []byte(nil), 0)
	f.Add(int(VerbRange), "start", []byte(nil), 100)
	f.Add(int(VerbStats), "", []byte(nil), 0)
	f.Add(int(VerbQuit), "", []byte(nil), 0)
	f.Fuzz(func(t *testing.T, verb int, key string, value []byte, count int) {
		cmd := Command{Verb: Verb(verb), Key: key, Value: value, Count: count}
		// Constrain to commands a correct client emits: WriteCommand does
		// not validate (the server's parser is the gate), so inputs the
		// wire grammar cannot represent are out of scope here.
		switch cmd.Verb {
		case VerbGet, VerbDelete, VerbSet, VerbRange:
			if !validKey([]byte(cmd.Key)) {
				t.Skip("key not representable on the wire")
			}
		case VerbStats, VerbQuit:
			cmd.Key = ""
		default:
			t.Skip("not a wire verb")
		}
		if cmd.Verb != VerbSet {
			cmd.Value = nil
		} else if len(cmd.Value) > MaxValueLen {
			cmd.Value = cmd.Value[:MaxValueLen]
		}
		if cmd.Verb == VerbRange {
			if cmd.Count < 1 || cmd.Count > MaxRange {
				t.Skip("count not representable on the wire")
			}
		} else {
			cmd.Count = 0
		}

		var wire bytes.Buffer
		w := bufio.NewWriter(&wire)
		if err := WriteCommand(w, cmd); err != nil {
			t.Fatalf("WriteCommand(%+v): %v", cmd, err)
		}
		w.Flush()
		encoded := append([]byte(nil), wire.Bytes()...)

		parsed, err := ReadCommand(bufio.NewReader(&wire))
		if err != nil {
			t.Fatalf("ReadCommand of our own encoding %q: %v", encoded, err)
		}
		if parsed.Verb != cmd.Verb || parsed.Key != cmd.Key || parsed.Count != cmd.Count || !bytes.Equal(parsed.Value, cmd.Value) {
			t.Fatalf("round trip changed the command:\nsent   %+v\nparsed %+v", cmd, parsed)
		}

		var again bytes.Buffer
		w2 := bufio.NewWriter(&again)
		if err := WriteCommand(w2, parsed); err != nil {
			t.Fatalf("re-encoding parsed command: %v", err)
		}
		w2.Flush()
		if !bytes.Equal(again.Bytes(), encoded) {
			t.Fatalf("re-encoding differs:\nfirst  %q\nsecond %q", encoded, again.Bytes())
		}
	})
}
