package proto

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzParseCommand feeds arbitrary bytes to the request parser. Whatever
// the input, ReadCommand must terminate without panicking and either
// return a command that satisfies the wire invariants or a classified
// error; the loop then continues on the same stream the way a server
// connection would, so resynchronisation after non-fatal errors is
// exercised too.
func FuzzParseCommand(f *testing.F) {
	f.Add([]byte("GET foo\r\n"))
	f.Add([]byte("SET k 5\r\nhello\r\nGET k\r\n"))
	f.Add([]byte("SET k 99\r\nshort\r\n"))
	f.Add([]byte("DELETE \x00\r\n"))
	f.Add([]byte("RANGE a -3\r\n"))
	f.Add([]byte("STATS\r\nQUIT\r\n"))
	f.Add([]byte("FROB\r\nGET x\r\n"))
	f.Add(bytes.Repeat([]byte("x"), MaxLineLen*2))
	f.Add([]byte("SET k 1048577\r\n"))
	f.Add([]byte{0xff, 0xfe, 0x0d, 0x0a})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		// A real connection handler loops; bound by the input length so
		// the fuzz target always terminates.
		for i := 0; i <= len(data); i++ {
			cmd, err := ReadCommand(r)
			if err == nil {
				checkInvariants(t, cmd)
				continue
			}
			var ce *ClientError
			switch {
			case errors.As(err, &ce):
				if ce.Fatal {
					return // server would close the connection here
				}
			case errors.Is(err, ErrUnknownVerb):
				// server replies ERROR and keeps reading
			case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
				return
			default:
				t.Fatalf("unclassified error type %T: %v", err, err)
			}
		}
	})
}

func checkInvariants(t *testing.T, c Command) {
	t.Helper()
	switch c.Verb {
	case VerbGet, VerbSet, VerbDelete, VerbRange, VerbStats, VerbQuit:
	default:
		t.Fatalf("parsed command has invalid verb %d", int(c.Verb))
	}
	if c.Verb == VerbGet || c.Verb == VerbSet || c.Verb == VerbDelete || c.Verb == VerbRange {
		if len(c.Key) == 0 || len(c.Key) > MaxKeyLen {
			t.Fatalf("parsed key length %d out of bounds", len(c.Key))
		}
		for i := 0; i < len(c.Key); i++ {
			if c.Key[i] <= ' ' || c.Key[i] == 0x7f {
				t.Fatalf("parsed key %q contains forbidden byte", c.Key)
			}
		}
	}
	if len(c.Value) > MaxValueLen {
		t.Fatalf("parsed value length %d exceeds MaxValueLen", len(c.Value))
	}
	if c.Verb == VerbRange && (c.Count < 1 || c.Count > MaxRange) {
		t.Fatalf("parsed range count %d out of bounds", c.Count)
	}
}
