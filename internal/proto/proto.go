// Package proto defines the valoisd wire protocol: a small memcached-style
// text protocol over TCP that exposes the paper's §4 dictionary operations
// as network verbs. Requests are a single CRLF-terminated line (SET adds a
// value block); replies are lines, with GET/RANGE streaming VALUE blocks
// terminated by END.
//
//	GET <key>                  → VALUE <key> <n>\r\n<data>\r\n END | END
//	SET <key> <n>\r\n<data>    → STORED
//	DELETE <key>               → DELETED | NOT_FOUND
//	RANGE <start> <count>      → VALUE... END
//	STATS                      → STAT <name> <value>... END
//	QUIT                       → (connection closes)
//
// Malformed requests draw "ERROR" (unknown verb) or "CLIENT_ERROR <msg>"
// (bad arguments). Errors that desynchronise framing — an over-long line,
// or a SET data block without its CRLF terminator — are fatal: the server
// replies and closes the connection, since the byte stream can no longer
// be parsed reliably.
//
// Both ends of the protocol live on this package: the server
// (internal/server) reads commands and writes replies, the client
// (internal/client) writes commands and reads replies.
package proto

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Verb identifies a protocol command.
type Verb int

const (
	VerbGet Verb = iota + 1
	VerbSet
	VerbDelete
	VerbRange
	VerbStats
	VerbQuit
	// VerbPing exists only on the RESP protocol (redis-benchmark and
	// redis clients probe with it); the text grammar has no PING and the
	// canonical AOF encoding rejects it, so it can never be persisted.
	VerbPing
)

// String returns the verb's wire spelling.
func (v Verb) String() string {
	switch v {
	case VerbGet:
		return "GET"
	case VerbSet:
		return "SET"
	case VerbDelete:
		return "DELETE"
	case VerbRange:
		return "RANGE"
	case VerbStats:
		return "STATS"
	case VerbQuit:
		return "QUIT"
	case VerbPing:
		return "PING"
	default:
		return "INVALID"
	}
}

// Wire limits. Keys are short tokens (no spaces or control bytes); values
// are arbitrary bytes up to MaxValueLen; request lines never legitimately
// exceed MaxLineLen.
const (
	MaxKeyLen   = 250
	MaxValueLen = 1 << 20
	MaxRange    = 1 << 16
	MaxLineLen  = 512
)

// Command is one parsed request.
type Command struct {
	Verb  Verb
	Key   string // GET, SET, DELETE; RANGE start key
	Value []byte // SET payload
	Count int    // RANGE item budget
}

// ClientError is a request the peer formed badly: the connection survives
// (the server replies CLIENT_ERROR and keeps reading) unless Fatal is
// set, which means request framing was lost and the connection must
// close after the reply.
type ClientError struct {
	Msg   string
	Fatal bool
}

func (e *ClientError) Error() string { return e.Msg }

// ErrUnknownVerb is returned by ReadCommand for an unrecognised verb; the
// server replies "ERROR" and keeps the connection open.
var ErrUnknownVerb = errors.New("unknown command verb")

func clientErr(fatal bool, format string, args ...any) error {
	return &ClientError{Msg: fmt.Sprintf(format, args...), Fatal: fatal}
}

// readLine reads one CRLF- (or bare-LF-) terminated line of at most
// MaxLineLen bytes, excluding the terminator. Over-long lines are a fatal
// client error: the reader cannot tell where the next request starts.
func readLine(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadSlice('\n')
	if err == bufio.ErrBufferFull || (err == nil && len(line) > MaxLineLen+2) {
		return nil, clientErr(true, "request line exceeds %d bytes", MaxLineLen)
	}
	if err != nil {
		// Bytes without a newline followed by EOF: a truncated request.
		if err == io.EOF && len(line) > 0 {
			return nil, clientErr(true, "truncated request line")
		}
		return nil, err
	}
	line = line[:len(line)-1]
	line = bytes.TrimSuffix(line, []byte{'\r'})
	return line, nil
}

// asciiFields splits a line into tokens separated by runs of ASCII space
// or tab. bytes.Fields would split on Unicode whitespace, which is wider
// than what validKey (a byte-level check) forbids inside keys — a key
// containing U+2000 would then encode fine on the client but tokenize
// apart on the server (found by FuzzCommandRoundTrip). The wire grammar
// is byte-oriented; so is the tokenizer.
func asciiFields(line []byte) [][]byte {
	return asciiFieldsInto(nil, line)
}

// asciiFieldsInto is asciiFields appending into a caller-owned scratch
// slice, so per-command tokenizing on the serving hot path does not
// allocate (the codecs keep the scratch across commands).
func asciiFieldsInto(fields [][]byte, line []byte) [][]byte {
	for len(line) > 0 {
		for len(line) > 0 && (line[0] == ' ' || line[0] == '\t') {
			line = line[1:]
		}
		if len(line) == 0 {
			break
		}
		i := 0
		for i < len(line) && line[i] != ' ' && line[i] != '\t' {
			i++
		}
		fields = append(fields, line[:i])
		line = line[i:]
	}
	return fields
}

// parseDecimal parses an optionally negative decimal integer without
// allocating (strconv.Atoi needs a string). At most 18 digits, so the
// result cannot overflow int64; a leading '+' is rejected — the wire
// grammar only ever carries plain digits.
func parseDecimal(b []byte) (int64, bool) {
	neg := false
	if len(b) > 0 && b[0] == '-' {
		neg = true
		b = b[1:]
	}
	if len(b) == 0 || len(b) > 18 {
		return 0, false
	}
	var v int64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int64(c-'0')
	}
	if neg {
		v = -v
	}
	return v, true
}

// validKey reports whether k is a legal key token: 1..MaxKeyLen bytes,
// none of which are spaces or control characters.
func validKey(k []byte) bool {
	if len(k) == 0 || len(k) > MaxKeyLen {
		return false
	}
	for _, b := range k {
		if b <= ' ' || b == 0x7f {
			return false
		}
	}
	return true
}

// ReadCommand reads and parses one request. Errors are either io errors
// (connection gone), ErrUnknownVerb, or *ClientError.
func ReadCommand(r *bufio.Reader) (Command, error) {
	var tc TextCodec
	return tc.ReadCommand(r)
}

// TextCodec is the memcached-style text protocol as a ServerCodec. The
// zero value is ready to use; it carries tokenizer scratch so parsing a
// command performs no slice allocation beyond the key string and SET
// payload.
type TextCodec struct {
	fields [][]byte
}

// Name reports the codec's protocol name.
func (tc *TextCodec) Name() string { return ProtocolText }

// ReadCommand reads and parses one request (see package ReadCommand).
func (tc *TextCodec) ReadCommand(r *bufio.Reader) (Command, error) {
	line, err := readLine(r)
	if err != nil {
		return Command{}, err
	}
	tc.fields = asciiFieldsInto(tc.fields[:0], line)
	fields := tc.fields
	if len(fields) == 0 {
		return Command{}, clientErr(false, "empty request")
	}
	args := fields[1:]
	// switch-on-conversion is allocation-free: the compiler compares the
	// byte slice against the case literals without materializing a string.
	switch string(fields[0]) {
	case "GET", "get":
		if len(args) != 1 {
			return Command{}, clientErr(false, "GET wants 1 argument, got %d", len(args))
		}
		if !validKey(args[0]) {
			return Command{}, clientErr(false, "bad key")
		}
		return Command{Verb: VerbGet, Key: string(args[0])}, nil

	case "SET", "set":
		if len(args) != 2 {
			return Command{}, clientErr(false, "SET wants <key> <bytes>, got %d arguments", len(args))
		}
		if !validKey(args[0]) {
			return Command{}, clientErr(false, "bad key")
		}
		// Copy the key out NOW: args[0] aliases the bufio buffer
		// (readLine uses ReadSlice), and reading the data block below may
		// refill that buffer, overwriting the key bytes with later stream
		// bytes — the key would pass validKey yet store as garbage.
		key := string(args[0])
		n64, ok := parseDecimal(args[1])
		if !ok || n64 < 0 {
			return Command{}, clientErr(false, "bad value length %q", args[1])
		}
		n := int(n64)
		if n > MaxValueLen {
			// The data block is on the wire; without reading it framing is
			// lost, and reading it would buffer an over-limit value. Fatal.
			return Command{}, clientErr(true, "value exceeds %d bytes", MaxValueLen)
		}
		val := make([]byte, n)
		if _, err := io.ReadFull(r, val); err != nil {
			return Command{}, clientErr(true, "short value data block")
		}
		// The data block carries its own CRLF terminator.
		switch crlf, err := r.Peek(2); {
		case err == nil && crlf[0] == '\r' && crlf[1] == '\n':
			r.Discard(2)
		case len(crlf) >= 1 && crlf[0] == '\n': // tolerate bare LF
			r.Discard(1)
		default:
			return Command{}, clientErr(true, "value data block not terminated by CRLF")
		}
		return Command{Verb: VerbSet, Key: key, Value: val}, nil

	case "DELETE", "delete":
		if len(args) != 1 {
			return Command{}, clientErr(false, "DELETE wants 1 argument, got %d", len(args))
		}
		if !validKey(args[0]) {
			return Command{}, clientErr(false, "bad key")
		}
		return Command{Verb: VerbDelete, Key: string(args[0])}, nil

	case "RANGE", "range":
		if len(args) != 2 {
			return Command{}, clientErr(false, "RANGE wants <start> <count>, got %d arguments", len(args))
		}
		if !validKey(args[0]) {
			return Command{}, clientErr(false, "bad start key")
		}
		n, ok := parseDecimal(args[1])
		if !ok || n < 1 || n > MaxRange {
			return Command{}, clientErr(false, "bad count %q (want 1..%d)", args[1], MaxRange)
		}
		return Command{Verb: VerbRange, Key: string(args[0]), Count: int(n)}, nil

	case "STATS", "stats":
		if len(args) != 0 {
			return Command{}, clientErr(false, "STATS wants no arguments")
		}
		return Command{Verb: VerbStats}, nil

	case "QUIT", "quit":
		return Command{Verb: VerbQuit}, nil

	default:
		return Command{}, ErrUnknownVerb
	}
}

// Complete reports whether buf — the reader's currently-buffered bytes —
// holds at least one whole command, i.e. whether ReadCommand is
// guaranteed to reach a verdict (a command or an error) without another
// socket read. The serving loop uses it to drain a pipelined burst
// without ever blocking mid-batch. It is conservative the cheap way:
// anything that makes ReadCommand fail before touching a data block
// (unknown verb, bad length, over-limit value) counts as complete,
// because the error path consumes only the already-buffered line.
func (tc *TextCodec) Complete(buf []byte) bool {
	i := bytes.IndexByte(buf, '\n')
	if i < 0 {
		return false
	}
	line := buf[:i]
	if len(line) > 0 && line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
	}
	tc.fields = asciiFieldsInto(tc.fields[:0], line)
	f := tc.fields
	// Only a well-formed SET reads past its command line; everything
	// else resolves on the line alone. The length check must mirror
	// ReadCommand exactly, or a "complete" SET could still block.
	if len(f) == 3 && (string(f[0]) == "SET" || string(f[0]) == "set") {
		if n, ok := parseDecimal(f[2]); ok && n >= 0 && n <= MaxValueLen {
			return int64(len(buf)) >= int64(i+1)+n+2
		}
	}
	return true
}

// AppendCommand appends the canonical wire encoding of c to dst and
// returns the extended slice. This is THE single-command encoder: the
// client's WriteCommand delegates to it, and the durability layer
// (internal/persist) frames its output as AOF and snapshot records — so
// a log record is byte-for-byte what the wire would carry, and replay is
// the same ReadCommand path the server already trusts.
func AppendCommand(dst []byte, c Command) ([]byte, error) {
	switch c.Verb {
	case VerbGet, VerbDelete:
		dst = append(dst, c.Verb.String()...)
		dst = append(dst, ' ')
		dst = append(dst, c.Key...)
		dst = append(dst, "\r\n"...)
	case VerbSet:
		dst = append(dst, "SET "...)
		dst = append(dst, c.Key...)
		dst = append(dst, ' ')
		dst = strconv.AppendInt(dst, int64(len(c.Value)), 10)
		dst = append(dst, "\r\n"...)
		dst = append(dst, c.Value...)
		dst = append(dst, "\r\n"...)
	case VerbRange:
		dst = append(dst, "RANGE "...)
		dst = append(dst, c.Key...)
		dst = append(dst, ' ')
		dst = strconv.AppendInt(dst, int64(c.Count), 10)
		dst = append(dst, "\r\n"...)
	case VerbStats:
		dst = append(dst, "STATS\r\n"...)
	case VerbQuit:
		dst = append(dst, "QUIT\r\n"...)
	default:
		return dst, fmt.Errorf("proto: invalid verb %d", int(c.Verb))
	}
	return dst, nil
}

// DecodeCommand parses one complete command encoding (the output of
// AppendCommand), requiring that it consumes the whole buffer. It is the
// decode half used by AOF/snapshot replay.
func DecodeCommand(payload []byte) (Command, error) {
	r := bufio.NewReader(bytes.NewReader(payload))
	c, err := ReadCommand(r)
	if err != nil {
		return Command{}, err
	}
	if _, err := r.Peek(1); err != io.EOF {
		return Command{}, errors.New("proto: trailing bytes after command")
	}
	return c, nil
}

// WriteCommand writes one request in wire form (the client side of
// ReadCommand). The caller flushes.
func WriteCommand(w *bufio.Writer, c Command) error {
	buf, err := AppendCommand(nil, c)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// Reply lines.
const (
	ReplyStored   = "STORED"
	ReplyDeleted  = "DELETED"
	ReplyNotFound = "NOT_FOUND"
	ReplyEnd      = "END"
)

// WriteLine writes one reply line with the CRLF terminator.
func WriteLine(w *bufio.Writer, line string) error {
	if _, err := w.WriteString(line); err != nil {
		return err
	}
	_, err := w.WriteString("\r\n")
	return err
}

// WriteValue writes one VALUE block of a GET or RANGE reply.
func WriteValue(w *bufio.Writer, key string, value []byte) error {
	if _, err := fmt.Fprintf(w, "VALUE %s %d\r\n", key, len(value)); err != nil {
		return err
	}
	if _, err := w.Write(value); err != nil {
		return err
	}
	_, err := w.WriteString("\r\n")
	return err
}

// WriteStat writes one STAT line of a STATS reply.
func WriteStat(w *bufio.Writer, name, value string) error {
	_, err := fmt.Fprintf(w, "STAT %s %s\r\n", name, value)
	return err
}

// WriteClientError writes a CLIENT_ERROR reply.
func WriteClientError(w *bufio.Writer, msg string) error {
	_, err := fmt.Fprintf(w, "CLIENT_ERROR %s\r\n", sanitize(msg))
	return err
}

// WriteServerError writes a SERVER_ERROR reply.
func WriteServerError(w *bufio.Writer, msg string) error {
	_, err := fmt.Fprintf(w, "SERVER_ERROR %s\r\n", sanitize(msg))
	return err
}

// WriteError writes the bare ERROR reply for an unknown verb.
func WriteError(w *bufio.Writer) error { return WriteLine(w, "ERROR") }

// sanitize keeps reply messages single-line so they cannot break framing.
func sanitize(msg string) string {
	b := []byte(msg)
	for i, c := range b {
		if c == '\r' || c == '\n' {
			b[i] = ' '
		}
	}
	return string(b)
}

// ReplyError is an ERROR / CLIENT_ERROR / SERVER_ERROR reply surfaced on
// the client side.
type ReplyError struct {
	Kind string // "ERROR", "CLIENT_ERROR", or "SERVER_ERROR"
	Msg  string
}

func (e *ReplyError) Error() string {
	if e.Msg == "" {
		return "server replied " + e.Kind
	}
	return e.Kind + ": " + e.Msg
}

// ReadReplyLine reads one reply line, mapping error replies to
// *ReplyError. The returned fields are the line's space-separated tokens.
func ReadReplyLine(r *bufio.Reader) ([]string, error) {
	line, err := readLine(r)
	if err != nil {
		return nil, err
	}
	fields := asciiFields(line)
	if len(fields) == 0 {
		return nil, errors.New("proto: empty reply line")
	}
	head := string(fields[0])
	switch head {
	case "ERROR", "CLIENT_ERROR", "SERVER_ERROR":
		msg := ""
		if rest := bytes.TrimSpace(line[len(head):]); len(rest) > 0 {
			msg = string(rest)
		}
		return nil, &ReplyError{Kind: head, Msg: msg}
	}
	out := make([]string, len(fields))
	for i, f := range fields {
		out[i] = string(f)
	}
	return out, nil
}

// ReadValueBlock finishes reading a VALUE block whose header line has
// already been parsed into key and size fields: it reads size bytes of
// data plus the CRLF terminator.
func ReadValueBlock(r *bufio.Reader, sizeField string) ([]byte, error) {
	n, err := strconv.Atoi(sizeField)
	if err != nil || n < 0 || n > MaxValueLen {
		return nil, fmt.Errorf("proto: bad VALUE size %q", sizeField)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, err
	}
	if crlf, err := r.Peek(2); err == nil && crlf[0] == '\r' && crlf[1] == '\n' {
		r.Discard(2)
	} else if len(crlf) >= 1 && crlf[0] == '\n' {
		r.Discard(1)
	} else {
		return nil, errors.New("proto: VALUE data not terminated by CRLF")
	}
	return data, nil
}
