package proto

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strconv"
	"strings"
	"testing"
)

func respReader(s string) *bufio.Reader { return bufio.NewReader(strings.NewReader(s)) }

func TestRESPReadCommandWellFormed(t *testing.T) {
	tests := []struct {
		in   string
		want Command
	}{
		{"*2\r\n$3\r\nGET\r\n$3\r\nfoo\r\n", Command{Verb: VerbGet, Key: "foo"}},
		{"*2\r\n$3\r\nget\r\n$3\r\nfoo\r\n", Command{Verb: VerbGet, Key: "foo"}},
		{"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhello\r\n", Command{Verb: VerbSet, Key: "k", Value: []byte("hello")}},
		{"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$0\r\n\r\n", Command{Verb: VerbSet, Key: "k", Value: []byte{}}},
		// Binary-safe value: CRLF and NUL inside the payload.
		{"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$6\r\na\r\nb\x00c\r\n", Command{Verb: VerbSet, Key: "k", Value: []byte("a\r\nb\x00c")}},
		{"*2\r\n$3\r\nDEL\r\n$1\r\nk\r\n", Command{Verb: VerbDelete, Key: "k"}},
		{"*2\r\n$6\r\nDELETE\r\n$1\r\nk\r\n", Command{Verb: VerbDelete, Key: "k"}},
		{"*3\r\n$5\r\nRANGE\r\n$1\r\na\r\n$2\r\n10\r\n", Command{Verb: VerbRange, Key: "a", Count: 10}},
		{"*1\r\n$5\r\nSTATS\r\n", Command{Verb: VerbStats}},
		{"*1\r\n$4\r\nQUIT\r\n", Command{Verb: VerbQuit}},
		{"*1\r\n$4\r\nPING\r\n", Command{Verb: VerbPing}},
		// Inline commands (redis-benchmark PING_INLINE and hand-typed).
		{"PING\r\n", Command{Verb: VerbPing}},
		{"GET foo\r\n", Command{Verb: VerbGet, Key: "foo"}},
		{"SET k vvv\r\n", Command{Verb: VerbSet, Key: "k", Value: []byte("vvv")}},
		{"DEL k\n", Command{Verb: VerbDelete, Key: "k"}},
		// Bare-LF bulk terminators are tolerated like text data blocks.
		{"*2\r\n$3\r\nGET\n$3\r\nfoo\n", Command{Verb: VerbGet, Key: "foo"}},
	}
	var rc RESPCodec
	for _, tt := range tests {
		got, err := rc.ReadCommand(respReader(tt.in))
		if err != nil {
			t.Errorf("ReadCommand(%q) error: %v", tt.in, err)
			continue
		}
		if got.Verb != tt.want.Verb || got.Key != tt.want.Key ||
			got.Count != tt.want.Count || !bytes.Equal(got.Value, tt.want.Value) {
			t.Errorf("ReadCommand(%q) = %+v, want %+v", tt.in, got, tt.want)
		}
	}
}

func TestRESPReadCommandMalformed(t *testing.T) {
	longKey := strings.Repeat("k", MaxKeyLen+1)
	tests := []struct {
		in    string
		fatal bool
	}{
		{"*0\r\n", true},                                     // empty array
		{"*-1\r\n", true},                                    // negative array length
		{"*999\r\n", true},                                   // array length over maxRESPArgs
		{"*notanum\r\n", true},                               // unparsable array length
		{"*2\r\nGET\r\n$1\r\nk\r\n", true},                   // element without bulk header
		{"*2\r\n$3\r\nGET\r\n$-2\r\n", true},                 // negative bulk length
		{"*2\r\n$3\r\nGET\r\n$1\r\nkX", true},                // missing bulk terminator
		{"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1048577\r\n", true}, // value over MaxValueLen
		{"*1\r\n$3\r\nGET\r\n", false},                       // wrong arity
		{"*3\r\n$3\r\nGET\r\n$1\r\na\r\n$1\r\nb\r\n", false}, // wrong arity, args drained
		{"*2\r\n$3\r\nGET\r\n$0\r\n\r\n", false},             // empty key
		{"*2\r\n$3\r\nGET\r\n$" + lenStr(longKey) + "\r\n" + longKey + "\r\n", false}, // oversized key
		{"*2\r\n$3\r\nGET\r\n$3\r\na b\r\n", false},                                   // space in key
		{"*3\r\n$5\r\nRANGE\r\n$1\r\na\r\n$2\r\n-3\r\n", false},                       // bad count
		{"\r\n", false},           // empty inline line
		{"GET\r\n", false},        // inline wrong arity
		{"GET a b c\r\n", false},  // inline wrong arity
		{"RANGE a zz\r\n", false}, // inline bad count
		{strings.Repeat("x", MaxLineLen+10) + "\r\n", true}, // over-long inline line
	}
	for _, tt := range tests {
		var rc RESPCodec
		_, err := rc.ReadCommand(respReader(tt.in))
		var ce *ClientError
		if !errors.As(err, &ce) {
			t.Errorf("ReadCommand(%.40q) error = %v, want *ClientError", tt.in, err)
			continue
		}
		if ce.Fatal != tt.fatal {
			t.Errorf("ReadCommand(%.40q) fatal = %v, want %v (%s)", tt.in, ce.Fatal, tt.fatal, ce.Msg)
		}
	}
}

func lenStr(s string) string { return strconv.Itoa(len(s)) }

// TestRESPRecoverableErrorPreservesFraming: after a non-fatal error
// mid-array (bad key with a value still on the wire), the next command
// on the same stream must parse cleanly — the codec drained the
// remainder of the broken request.
func TestRESPRecoverableErrorPreservesFraming(t *testing.T) {
	stream := "*3\r\n$3\r\nSET\r\n$0\r\n\r\n$5\r\nhello\r\n" + // bad (empty) key, value trails
		"*2\r\n$3\r\nGET\r\n$4\r\ngood\r\n"
	var rc RESPCodec
	r := respReader(stream)
	_, err := rc.ReadCommand(r)
	var ce *ClientError
	if !errors.As(err, &ce) || ce.Fatal {
		t.Fatalf("first command: error = %v, want non-fatal *ClientError", err)
	}
	cmd, err := rc.ReadCommand(r)
	if err != nil || cmd.Verb != VerbGet || cmd.Key != "good" {
		t.Fatalf("second command after recoverable error = %+v, %v", cmd, err)
	}
	// Unknown verbs drain their whole array too.
	stream = "*2\r\n$4\r\nFROB\r\n$5\r\nxxxxx\r\n*1\r\n$4\r\nPING\r\n"
	r = respReader(stream)
	if _, err := rc.ReadCommand(r); !errors.Is(err, ErrUnknownVerb) {
		t.Fatalf("unknown verb: error = %v, want ErrUnknownVerb", err)
	}
	if cmd, err := rc.ReadCommand(r); err != nil || cmd.Verb != VerbPing {
		t.Fatalf("command after unknown verb = %+v, %v", cmd, err)
	}
}

func TestRESPUnknownVerb(t *testing.T) {
	var rc RESPCodec
	if _, err := rc.ReadCommand(respReader("*1\r\n$4\r\nFROB\r\n")); !errors.Is(err, ErrUnknownVerb) {
		t.Fatalf("array: error = %v, want ErrUnknownVerb", err)
	}
	if _, err := rc.ReadCommand(respReader("FROB x\r\n")); !errors.Is(err, ErrUnknownVerb) {
		t.Fatalf("inline: error = %v, want ErrUnknownVerb", err)
	}
}

func TestRESPReadCommandEOF(t *testing.T) {
	var rc RESPCodec
	if _, err := rc.ReadCommand(respReader("")); !errors.Is(err, io.EOF) {
		t.Fatalf("error = %v, want io.EOF", err)
	}
}

// TestRESPCommandRoundTripTable: AppendRESPCommand → ReadCommand is the
// identity and re-encoding is byte-stable, for every client-emittable
// verb including a binary value.
func TestRESPCommandRoundTripTable(t *testing.T) {
	cmds := []Command{
		{Verb: VerbGet, Key: "alpha"},
		{Verb: VerbSet, Key: "beta", Value: []byte("bytes\r\nwith\x00binary")},
		{Verb: VerbSet, Key: "empty", Value: nil},
		{Verb: VerbDelete, Key: "gamma"},
		{Verb: VerbRange, Key: "delta", Count: 99},
		{Verb: VerbStats},
		{Verb: VerbQuit},
		{Verb: VerbPing},
	}
	var rc RESPCodec
	for _, c := range cmds {
		enc, err := AppendRESPCommand(nil, c)
		if err != nil {
			t.Fatalf("AppendRESPCommand(%v): %v", c.Verb, err)
		}
		got, err := rc.ReadCommand(bufio.NewReader(bytes.NewReader(enc)))
		if err != nil {
			t.Fatalf("ReadCommand of our own encoding %q: %v", enc, err)
		}
		if got.Verb != c.Verb || got.Key != c.Key || got.Count != c.Count || !bytes.Equal(got.Value, c.Value) {
			t.Fatalf("round trip %v: got %+v, want %+v", c.Verb, got, c)
		}
		again, err := AppendRESPCommand(nil, got)
		if err != nil || !bytes.Equal(again, enc) {
			t.Fatalf("re-encoding %v differs: %q vs %q (%v)", c.Verb, enc, again, err)
		}
	}
}

// TestRESPReplyEncoders pins the exact reply bytes and checks the client
// readers parse them back.
func TestRESPReplyEncoders(t *testing.T) {
	var rc RESPCodec
	for _, tt := range []struct {
		got  []byte
		want string
	}{
		{rc.AppendGetReply(nil, "k", []byte("hello"), true), "$5\r\nhello\r\n"},
		{rc.AppendGetReply(nil, "k", nil, false), "$-1\r\n"},
		{rc.AppendSetReply(nil), "+OK\r\n"},
		{rc.AppendDeleteReply(nil, true), ":1\r\n"},
		{rc.AppendDeleteReply(nil, false), ":0\r\n"},
		{rc.AppendPong(nil), "+PONG\r\n"},
		{rc.AppendQuit(nil), "+OK\r\n"},
		{rc.AppendUnknownVerb(nil), "-ERR unknown command\r\n"},
		{rc.AppendClientError(nil, "bad\r\nkey"), "-CLIENT_ERROR bad  key\r\n"},
		{rc.AppendServerError(nil, "boom"), "-SERVER_ERROR boom\r\n"},
		{rc.AppendRangeHeader(nil, 2), "*4\r\n"},
		{rc.AppendStatItem(nil, "ops", "12"), "$3\r\nops\r\n$2\r\n12\r\n"},
	} {
		if string(tt.got) != tt.want {
			t.Errorf("encoder produced %q, want %q", tt.got, tt.want)
		}
	}

	// Client-side error mapping: the three server error shapes become the
	// same *ReplyError kinds the text protocol produces.
	for _, tt := range []struct {
		wire string
		kind string
		msg  string
	}{
		{"-CLIENT_ERROR bad key\r\n", "CLIENT_ERROR", "bad key"},
		{"-SERVER_ERROR too many connections\r\n", "SERVER_ERROR", "too many connections"},
		{"-ERR unknown command\r\n", "ERROR", "unknown command"},
	} {
		_, _, err := ReadRESPLine(respReader(tt.wire))
		var re *ReplyError
		if !errors.As(err, &re) || re.Kind != tt.kind || re.Msg != tt.msg {
			t.Errorf("ReadRESPLine(%q) = %v, want kind=%s msg=%q", tt.wire, err, tt.kind, tt.msg)
		}
	}

	// Bulk reply read-back.
	kind, rest, err := ReadRESPLine(respReader("$5\r\nworld\r\n"))
	if err != nil || kind != '$' {
		t.Fatalf("bulk header = %c, %v", kind, err)
	}
	n, err := ParseRESPInt(rest)
	if err != nil || n != 5 {
		t.Fatalf("bulk length = %d, %v", n, err)
	}
}

// TestCompleteScanners drives both codecs' pipeline scanners over
// partial and whole buffers: Complete must be false for any strict
// prefix of a well-formed command (so the batch drain never blocks) and
// true once the whole command — or a decidable error — is buffered.
func TestCompleteScanners(t *testing.T) {
	wholeText := []string{
		"GET foo\r\n",
		"SET k 5\r\nhello\r\n",
		"DELETE k\r\n",
		"RANGE a 10\r\n",
		"STATS\r\n",
		"FROB x\r\n",        // unknown verb: decidable from the line
		"SET k zz\r\n",      // bad length: decidable from the line
		"SET k 1048577\r\n", // over-limit: fatal from the line
	}
	var tc TextCodec
	for _, s := range wholeText {
		if !tc.Complete([]byte(s)) {
			t.Errorf("text Complete(%q) = false, want true", s)
		}
	}
	// Prefixes of commands that read past the line must be incomplete.
	for _, s := range []string{"GET fo", "SET k 5\r\nhel", "SET k 5\r\nhello", "SET k 5\r\nhello\r"} {
		if tc.Complete([]byte(s)) {
			t.Errorf("text Complete(%q) = true, want false", s)
		}
	}

	wholeRESP := []string{
		"*2\r\n$3\r\nGET\r\n$3\r\nfoo\r\n",
		"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhello\r\n",
		"*1\r\n$4\r\nPING\r\n",
		"PING\r\n",                   // inline
		"*999\r\n",                   // bad array length: fatal from the header
		"*2\r\n$3\r\nGET\r\n$zz\r\n", // bad bulk length: fatal at that header
	}
	var rcodec RESPCodec
	for _, s := range wholeRESP {
		if !rcodec.Complete([]byte(s)) {
			t.Errorf("resp Complete(%q) = false, want true", s)
		}
	}
	full := "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhello\r\n"
	for i := 1; i < len(full); i++ {
		if rcodec.Complete([]byte(full[:i])) {
			t.Errorf("resp Complete(%q) = true, want false", full[:i])
		}
	}
	if rcodec.Complete(nil) {
		t.Error("resp Complete(nil) = true")
	}

	// Complete-then-read agreement: for every whole command above,
	// ReadCommand must resolve using only the buffered bytes (no EOF
	// surprises besides the decidable-error cases).
	for _, s := range wholeText {
		if _, err := tc.ReadCommand(respReader(s)); err == io.EOF {
			t.Errorf("text ReadCommand(%q) hit EOF after Complete said true", s)
		}
	}
	for _, s := range wholeRESP {
		if _, err := rcodec.ReadCommand(respReader(s)); err == io.EOF {
			t.Errorf("resp ReadCommand(%q) hit EOF after Complete said true", s)
		}
	}
}

// TestBufferPool exercises the sized-class cycle.
func TestBufferPool(t *testing.T) {
	b := GetBuffer(0)
	if len(b) != 0 || cap(b) < 4<<10 {
		t.Fatalf("GetBuffer(0): len %d cap %d", len(b), cap(b))
	}
	b = append(b, "data"...)
	PutBuffer(b)
	big := GetBuffer(100 << 10)
	if cap(big) < 100<<10 {
		t.Fatalf("GetBuffer(100K): cap %d", cap(big))
	}
	PutBuffer(big)
	PutBuffer(make([]byte, 0, 8<<20)) // oversized: dropped, must not panic
}
