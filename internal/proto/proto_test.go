package proto

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func reader(s string) *bufio.Reader { return bufio.NewReader(strings.NewReader(s)) }

// chunkedReader returns each chunk from a separate Read call, the way a
// TCP stream can deliver a pipelined request in arbitrary pieces.
type chunkedReader struct{ chunks []string }

func (c *chunkedReader) Read(p []byte) (int, error) {
	if len(c.chunks) == 0 {
		return 0, io.EOF
	}
	n := copy(p, c.chunks[0])
	if n == len(c.chunks[0]) {
		c.chunks = c.chunks[1:]
	} else {
		c.chunks[0] = c.chunks[0][n:]
	}
	return n, nil
}

// TestReadCommandSetSplitMidValue is a regression test: when the SET
// command line and its data block arrive in separate reads, fetching the
// data block refills the bufio buffer the parsed key still points into.
// The key must be copied out before that refill, or a corrupted key —
// arbitrary later stream bytes, including CR/LF that validKey could never
// pass — gets stored.
func TestReadCommandSetSplitMidValue(t *testing.T) {
	for _, split := range []int{13, 15, 17} { // before, inside, after "hello"
		stream := "SET alpha 5\r\nhello\r\nSET beta 4\r\nbeta\r\n"
		r := bufio.NewReader(&chunkedReader{chunks: []string{stream[:split], stream[split:]}})
		first, err := ReadCommand(r)
		if err != nil {
			t.Fatalf("split %d: first command: %v", split, err)
		}
		if first.Key != "alpha" || string(first.Value) != "hello" {
			t.Fatalf("split %d: got key %q value %q, want alpha/hello", split, first.Key, first.Value)
		}
		second, err := ReadCommand(r)
		if err != nil {
			t.Fatalf("split %d: second command: %v", split, err)
		}
		if second.Key != "beta" || string(second.Value) != "beta" {
			t.Fatalf("split %d: got key %q value %q, want beta/beta", split, second.Key, second.Value)
		}
	}
}

func TestReadCommandWellFormed(t *testing.T) {
	tests := []struct {
		in   string
		want Command
	}{
		{"GET foo\r\n", Command{Verb: VerbGet, Key: "foo"}},
		{"get foo\n", Command{Verb: VerbGet, Key: "foo"}},
		{"SET k 5\r\nhello\r\n", Command{Verb: VerbSet, Key: "k", Value: []byte("hello")}},
		{"SET k 0\r\n\r\n", Command{Verb: VerbSet, Key: "k", Value: []byte{}}},
		{"SET k 2\nhi\n", Command{Verb: VerbSet, Key: "k", Value: []byte("hi")}},
		{"DELETE k\r\n", Command{Verb: VerbDelete, Key: "k"}},
		{"RANGE a 10\r\n", Command{Verb: VerbRange, Key: "a", Count: 10}},
		{"STATS\r\n", Command{Verb: VerbStats}},
		{"QUIT\r\n", Command{Verb: VerbQuit}},
	}
	for _, tt := range tests {
		got, err := ReadCommand(reader(tt.in))
		if err != nil {
			t.Errorf("ReadCommand(%q) error: %v", tt.in, err)
			continue
		}
		if got.Verb != tt.want.Verb || got.Key != tt.want.Key ||
			got.Count != tt.want.Count || !bytes.Equal(got.Value, tt.want.Value) {
			t.Errorf("ReadCommand(%q) = %+v, want %+v", tt.in, got, tt.want)
		}
	}
}

func TestReadCommandMalformed(t *testing.T) {
	tests := []struct {
		in    string
		fatal bool
	}{
		{"\r\n", false},        // empty request
		{"GET\r\n", false},     // missing key
		{"GET a b\r\n", false}, // extra argument
		{"GET " + strings.Repeat("k", MaxKeyLen+1) + "\r\n", false}, // oversized key
		{"GET ba\x01d\r\n", false},                                  // control byte in key
		{"SET k notanumber\r\n", false},                             // bad length
		{"SET k -1\r\n", false},                                     // negative length
		{"SET k 5\r\nhelloXY", true},                                // data block missing CRLF
		{"SET k 5\r\nhel", true},                                    // truncated data block
		{"SET k 9999999999\r\n", true},                              // over-limit value
		{"RANGE a 0\r\n", false},                                    // count below 1
		{"RANGE a\r\n", false},                                      // missing count
		{"STATS now\r\n", false},                                    // STATS takes no args
		{strings.Repeat("x", MaxLineLen+10) + "\r\n", true},         // over-long line
		{"GET truncated", true},                                     // no terminator before EOF
	}
	for _, tt := range tests {
		_, err := ReadCommand(reader(tt.in))
		var ce *ClientError
		if !errors.As(err, &ce) {
			t.Errorf("ReadCommand(%.40q) error = %v, want *ClientError", tt.in, err)
			continue
		}
		if ce.Fatal != tt.fatal {
			t.Errorf("ReadCommand(%.40q) fatal = %v, want %v (%s)", tt.in, ce.Fatal, tt.fatal, ce.Msg)
		}
	}
}

func TestReadCommandUnknownVerb(t *testing.T) {
	if _, err := ReadCommand(reader("FROB x\r\n")); !errors.Is(err, ErrUnknownVerb) {
		t.Fatalf("error = %v, want ErrUnknownVerb", err)
	}
}

func TestReadCommandEOF(t *testing.T) {
	if _, err := ReadCommand(reader("")); !errors.Is(err, io.EOF) {
		t.Fatalf("error = %v, want io.EOF", err)
	}
}

// TestCommandRoundTrip writes every verb with WriteCommand and parses it
// back with ReadCommand.
func TestCommandRoundTrip(t *testing.T) {
	cmds := []Command{
		{Verb: VerbGet, Key: "alpha"},
		{Verb: VerbSet, Key: "beta", Value: []byte("some bytes\nwith a newline")},
		{Verb: VerbSet, Key: "empty", Value: nil},
		{Verb: VerbDelete, Key: "gamma"},
		{Verb: VerbRange, Key: "delta", Count: 99},
		{Verb: VerbStats},
		{Verb: VerbQuit},
	}
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	for _, c := range cmds {
		if err := WriteCommand(w, c); err != nil {
			t.Fatalf("WriteCommand(%v): %v", c.Verb, err)
		}
	}
	w.Flush()
	r := bufio.NewReader(&buf)
	for _, want := range cmds {
		got, err := ReadCommand(r)
		if err != nil {
			t.Fatalf("ReadCommand after Write(%v): %v", want.Verb, err)
		}
		if got.Verb != want.Verb || got.Key != want.Key || got.Count != want.Count ||
			!bytes.Equal(got.Value, want.Value) {
			t.Fatalf("round trip = %+v, want %+v", got, want)
		}
	}
}

func TestReplyLines(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	WriteValue(w, "k", []byte("vv"))
	WriteStat(w, "ops", "12")
	WriteLine(w, ReplyEnd)
	w.Flush()

	r := bufio.NewReader(&buf)
	fields, err := ReadReplyLine(r)
	if err != nil || len(fields) != 3 || fields[0] != "VALUE" || fields[1] != "k" {
		t.Fatalf("VALUE header = %v, %v", fields, err)
	}
	data, err := ReadValueBlock(r, fields[2])
	if err != nil || string(data) != "vv" {
		t.Fatalf("value block = %q, %v", data, err)
	}
	if fields, err = ReadReplyLine(r); err != nil || fields[0] != "STAT" || fields[2] != "12" {
		t.Fatalf("STAT line = %v, %v", fields, err)
	}
	if fields, err = ReadReplyLine(r); err != nil || fields[0] != ReplyEnd {
		t.Fatalf("END line = %v, %v", fields, err)
	}
}

func TestReplyErrors(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	WriteClientError(w, "bad\r\nthing")
	WriteServerError(w, "boom")
	WriteError(w)
	w.Flush()

	r := bufio.NewReader(&buf)
	for _, wantKind := range []string{"CLIENT_ERROR", "SERVER_ERROR", "ERROR"} {
		_, err := ReadReplyLine(r)
		var re *ReplyError
		if !errors.As(err, &re) || re.Kind != wantKind {
			t.Fatalf("reply error = %v, want kind %s", err, wantKind)
		}
		if strings.ContainsAny(re.Msg, "\r\n") {
			t.Fatalf("reply message %q not sanitized", re.Msg)
		}
	}
}

// TestAppendCommandCanonical pins the canonical encoder: AppendCommand's
// bytes must round-trip through DecodeCommand unchanged, and WriteCommand
// (which delegates to it) must produce identical bytes — the AOF replay
// path and the wire path are the same encoding by construction.
func TestAppendCommandCanonical(t *testing.T) {
	cmds := []Command{
		{Verb: VerbGet, Key: "k"},
		{Verb: VerbSet, Key: "k", Value: []byte("hello")},
		{Verb: VerbSet, Key: "k", Value: nil},
		{Verb: VerbSet, Key: "k", Value: []byte("line\r\nbreak")},
		{Verb: VerbDelete, Key: "a-key"},
		{Verb: VerbRange, Key: "start", Count: 42},
		{Verb: VerbStats},
		{Verb: VerbQuit},
	}
	for _, c := range cmds {
		enc, err := AppendCommand(nil, c)
		if err != nil {
			t.Fatalf("AppendCommand(%v): %v", c.Verb, err)
		}
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		if err := WriteCommand(bw, c); err != nil {
			t.Fatalf("WriteCommand(%v): %v", c.Verb, err)
		}
		bw.Flush()
		if !bytes.Equal(enc, buf.Bytes()) {
			t.Errorf("%v: AppendCommand %q != WriteCommand %q", c.Verb, enc, buf.Bytes())
		}
		if c.Verb == VerbQuit {
			continue // ReadCommand returns QUIT without consuming trailing state
		}
		got, err := DecodeCommand(enc)
		if err != nil {
			t.Fatalf("DecodeCommand(%q): %v", enc, err)
		}
		if got.Verb != c.Verb || got.Key != c.Key || got.Count != c.Count || !bytes.Equal(got.Value, c.Value) {
			t.Errorf("round trip %v: got %+v, want %+v", c.Verb, got, c)
		}
	}
}

// TestDecodeCommandRejectsTrailing ensures a framed record holding more
// than one command (or stray bytes) is rejected rather than silently
// replaying only a prefix.
func TestDecodeCommandRejectsTrailing(t *testing.T) {
	enc, err := AppendCommand(nil, Command{Verb: VerbDelete, Key: "k"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCommand(append(enc, "GET x\r\n"...)); err == nil {
		t.Error("DecodeCommand accepted trailing bytes")
	}
	if _, err := DecodeCommand(nil); err == nil {
		t.Error("DecodeCommand accepted empty payload")
	}
}
