// RESP2 wire protocol (the redis serialization protocol), the second
// codec valoisd speaks. Requests are arrays of bulk strings —
// "*2\r\n$3\r\nGET\r\n$1\r\nk\r\n" — or inline space-separated lines
// (redis-benchmark's PING_INLINE); replies use the five RESP2 types:
//
//	GET <key>        → $<n>\r\n<data>\r\n | $-1\r\n (miss)
//	SET <key> <val>  → +OK
//	DEL <key>        → :1 | :0          (DELETE accepted as an alias)
//	RANGE <start> <n>→ *<2n> of key, value bulk pairs
//	STATS            → *<2n> of name, value bulk pairs
//	PING             → +PONG
//	QUIT             → +OK, then the server closes
//
// Errors map onto RESP error replies carrying the text protocol's error
// kinds — "-CLIENT_ERROR <msg>", "-SERVER_ERROR <msg>", and "-ERR
// unknown command" — so both codecs surface the same *ReplyError kinds
// on the client side.
//
// Values are binary-safe (any bytes, length-prefixed both ways). Keys
// remain constrained to the text protocol's token grammar (validKey:
// 1..250 bytes, no spaces or control bytes) because the durability layer
// persists mutations in the canonical text encoding — one decode path
// for AOF replay regardless of which protocol carried the write. See
// DESIGN.md §11 for the argument.
package proto

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
)

// maxRESPArgs bounds a request array. The largest real command (SET) has
// 3 elements; anything larger is a framing attack or a lost stream, and
// is fatal rather than consumed.
const maxRESPArgs = 16

// RESPCodec is the RESP2 protocol as a ServerCodec. The zero value is
// ready; it carries parsing scratch (key bytes, small args, inline
// tokenizer fields) so request parsing allocates only the key string and
// SET payload, mirroring TextCodec.
type RESPCodec struct {
	fields [][]byte        // inline-command tokenizer scratch
	keybuf [MaxKeyLen]byte // key argument bytes before interning
	numbuf [24]byte        // RANGE count argument
	vrbbuf [16]byte        // verb argument
}

// Name reports the codec's protocol name.
func (rc *RESPCodec) Name() string { return ProtocolRESP }

// respVerb resolves a verb token case-insensitively without allocating.
// DEL is the redis spelling of DELETE; both are accepted.
func respVerb(tok []byte) (Verb, bool) {
	var up [8]byte
	if len(tok) == 0 || len(tok) > len(up) {
		return 0, false
	}
	for i := 0; i < len(tok); i++ {
		c := tok[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		up[i] = c
	}
	switch string(up[:len(tok)]) {
	case "GET":
		return VerbGet, true
	case "SET":
		return VerbSet, true
	case "DEL", "DELETE":
		return VerbDelete, true
	case "RANGE":
		return VerbRange, true
	case "STATS":
		return VerbStats, true
	case "QUIT":
		return VerbQuit, true
	case "PING":
		return VerbPing, true
	}
	return 0, false
}

// verbArity is the exact array length each verb requires.
func verbArity(v Verb) int {
	switch v {
	case VerbGet, VerbDelete:
		return 2
	case VerbSet, VerbRange:
		return 3
	default: // STATS, QUIT, PING
		return 1
	}
}

// readBulkHeader reads a "$<n>\r\n" bulk-string header. Any malformation
// here is fatal: the element boundary is lost and the stream cannot be
// re-synchronized.
func readBulkHeader(r *bufio.Reader) (int, error) {
	hdr, err := readLine(r)
	if err != nil {
		return 0, err
	}
	if len(hdr) < 2 || hdr[0] != '$' {
		return 0, clientErr(true, "expected bulk string header, got %q", hdr)
	}
	n, ok := parseDecimal(hdr[1:])
	if !ok || n < 0 || n > MaxValueLen {
		return 0, clientErr(true, "bad bulk length %q", hdr[1:])
	}
	return int(n), nil
}

// readBulkBody fills dst (already sized to the declared length) and
// consumes the trailing CRLF. A missing terminator is fatal.
func readBulkBody(r *bufio.Reader, dst []byte) error {
	if _, err := io.ReadFull(r, dst); err != nil {
		return clientErr(true, "short bulk string body")
	}
	return discardCRLF(r)
}

// discardBulkBody consumes a bulk body without keeping it, preserving
// framing while an error reply is being prepared.
func discardBulkBody(r *bufio.Reader, n int) error {
	if _, err := r.Discard(n); err != nil {
		return clientErr(true, "short bulk string body")
	}
	return discardCRLF(r)
}

// discardCRLF consumes a bulk terminator, tolerating a bare LF the same
// way the text protocol's data blocks do.
func discardCRLF(r *bufio.Reader) error {
	switch crlf, err := r.Peek(2); {
	case err == nil && crlf[0] == '\r' && crlf[1] == '\n':
		r.Discard(2)
	case len(crlf) >= 1 && crlf[0] == '\n':
		r.Discard(1)
	default:
		return clientErr(true, "bulk string not terminated by CRLF")
	}
	return nil
}

// drainBulks consumes k complete bulk strings. It is the framing
// preserver for recoverable errors mid-array (bad key, wrong arity): the
// request's remaining elements are consumed so the next ReadCommand
// starts at a request boundary. A framing error while draining wins over
// the softer error the caller was about to return.
func drainBulks(r *bufio.Reader, k int) error {
	for ; k > 0; k-- {
		n, err := readBulkHeader(r)
		if err != nil {
			return err
		}
		if err := discardBulkBody(r, n); err != nil {
			return err
		}
	}
	return nil
}

// readKeyArg reads one bulk string as a key, enforcing the key grammar.
// The bulk is always fully consumed, valid or not.
func (rc *RESPCodec) readKeyArg(r *bufio.Reader) (string, error) {
	n, err := readBulkHeader(r)
	if err != nil {
		return "", err
	}
	if n < 1 || n > MaxKeyLen {
		if err := discardBulkBody(r, n); err != nil {
			return "", err
		}
		return "", clientErr(false, "bad key")
	}
	b := rc.keybuf[:n]
	if err := readBulkBody(r, b); err != nil {
		return "", err
	}
	if !validKey(b) {
		return "", clientErr(false, "bad key")
	}
	return string(b), nil
}

// readArrayCommand parses the elements of a "*<n>" request after its
// header line.
func (rc *RESPCodec) readArrayCommand(r *bufio.Reader, n int) (Command, error) {
	vn, err := readBulkHeader(r)
	if err != nil {
		return Command{}, err
	}
	if vn > len(rc.vrbbuf) {
		if err := discardBulkBody(r, vn); err != nil {
			return Command{}, err
		}
		if err := drainBulks(r, n-1); err != nil {
			return Command{}, err
		}
		return Command{}, ErrUnknownVerb
	}
	vb := rc.vrbbuf[:vn]
	if err := readBulkBody(r, vb); err != nil {
		return Command{}, err
	}
	verb, known := respVerb(vb)
	if !known {
		if err := drainBulks(r, n-1); err != nil {
			return Command{}, err
		}
		return Command{}, ErrUnknownVerb
	}
	if n != verbArity(verb) {
		if err := drainBulks(r, n-1); err != nil {
			return Command{}, err
		}
		return Command{}, clientErr(false, "wrong number of arguments for %s", verb)
	}
	switch verb {
	case VerbGet, VerbDelete:
		key, err := rc.readKeyArg(r)
		if err != nil {
			return Command{}, err
		}
		return Command{Verb: verb, Key: key}, nil

	case VerbSet:
		key, kerr := rc.readKeyArg(r)
		if kerr != nil {
			if isFatalOrIO(kerr) {
				return Command{}, kerr
			}
			if err := drainBulks(r, 1); err != nil { // the unread value
				return Command{}, err
			}
			return Command{}, kerr
		}
		vn, err := readBulkHeader(r)
		if err != nil {
			return Command{}, err
		}
		val := make([]byte, vn)
		if err := readBulkBody(r, val); err != nil {
			return Command{}, err
		}
		return Command{Verb: VerbSet, Key: key, Value: val}, nil

	case VerbRange:
		key, kerr := rc.readKeyArg(r)
		if kerr != nil {
			if isFatalOrIO(kerr) {
				return Command{}, kerr
			}
			if err := drainBulks(r, 1); err != nil { // the unread count
				return Command{}, err
			}
			return Command{}, kerr
		}
		cn, err := readBulkHeader(r)
		if err != nil {
			return Command{}, err
		}
		if cn > len(rc.numbuf) {
			if err := discardBulkBody(r, cn); err != nil {
				return Command{}, err
			}
			return Command{}, clientErr(false, "bad count")
		}
		cb := rc.numbuf[:cn]
		if err := readBulkBody(r, cb); err != nil {
			return Command{}, err
		}
		count, ok := parseDecimal(cb)
		if !ok || count < 1 || count > MaxRange {
			return Command{}, clientErr(false, "bad count %q (want 1..%d)", cb, MaxRange)
		}
		return Command{Verb: VerbRange, Key: key, Count: int(count)}, nil

	default: // STATS, QUIT, PING: no arguments
		return Command{Verb: verb}, nil
	}
}

// isFatalOrIO reports whether err already abandons framing (a fatal
// *ClientError or a transport error), in which case draining the rest of
// the array is pointless and the error must surface as-is.
func isFatalOrIO(err error) bool {
	if ce, ok := err.(*ClientError); ok {
		return ce.Fatal
	}
	return true // io errors; non-ClientError
}

// inlineCommand parses a RESP inline command: the whole request on one
// space-separated line, like the text protocol but with redis verb
// spellings and no SET data block (the value is the third token).
func (rc *RESPCodec) inlineCommand(line []byte) (Command, error) {
	rc.fields = asciiFieldsInto(rc.fields[:0], line)
	f := rc.fields
	if len(f) == 0 {
		return Command{}, clientErr(false, "empty request")
	}
	verb, known := respVerb(f[0])
	if !known {
		return Command{}, ErrUnknownVerb
	}
	if len(f) != verbArity(verb) {
		return Command{}, clientErr(false, "wrong number of arguments for %s", verb)
	}
	switch verb {
	case VerbGet, VerbDelete:
		if !validKey(f[1]) {
			return Command{}, clientErr(false, "bad key")
		}
		return Command{Verb: verb, Key: string(f[1])}, nil
	case VerbSet:
		if !validKey(f[1]) {
			return Command{}, clientErr(false, "bad key")
		}
		return Command{Verb: VerbSet, Key: string(f[1]), Value: append([]byte(nil), f[2]...)}, nil
	case VerbRange:
		if !validKey(f[1]) {
			return Command{}, clientErr(false, "bad start key")
		}
		n, ok := parseDecimal(f[2])
		if !ok || n < 1 || n > MaxRange {
			return Command{}, clientErr(false, "bad count %q (want 1..%d)", f[2], MaxRange)
		}
		return Command{Verb: VerbRange, Key: string(f[1]), Count: int(n)}, nil
	default:
		return Command{Verb: verb}, nil
	}
}

// ReadCommand reads and parses one RESP request (array or inline).
// Errors are io errors, ErrUnknownVerb, or *ClientError; unlike the text
// protocol most malformations are recoverable, because bulk strings are
// length-prefixed and can be consumed even when their content is
// rejected — only a broken array/bulk header or missing terminator loses
// framing and turns fatal.
func (rc *RESPCodec) ReadCommand(r *bufio.Reader) (Command, error) {
	line, err := readLine(r)
	if err != nil {
		return Command{}, err
	}
	if len(line) == 0 {
		return Command{}, clientErr(false, "empty request")
	}
	if line[0] != '*' {
		return rc.inlineCommand(line)
	}
	n, ok := parseDecimal(line[1:])
	if !ok || n < 1 || n > maxRESPArgs {
		return Command{}, clientErr(true, "bad array length %q", line[1:])
	}
	return rc.readArrayCommand(r, int(n))
}

// Complete reports whether buf holds one whole RESP request (see
// TextCodec.Complete for the contract). For arrays it walks the declared
// element lengths; a malformation that ReadCommand rejects while still
// inside buf also counts as complete, since the error path consumes no
// bytes beyond it.
func (rc *RESPCodec) Complete(buf []byte) bool {
	if len(buf) == 0 {
		return false
	}
	if buf[0] != '*' {
		return bytes.IndexByte(buf, '\n') >= 0
	}
	nl := bytes.IndexByte(buf, '\n')
	if nl < 0 {
		return false
	}
	n, ok := parseDecimal(trimCR(buf[1:nl]))
	if !ok || n < 1 || n > maxRESPArgs {
		return true // ReadCommand fails on the header alone
	}
	pos := nl + 1
	for i := int64(0); i < n; i++ {
		rest := buf[pos:]
		nl = bytes.IndexByte(rest, '\n')
		if nl < 0 {
			return false
		}
		hdr := trimCR(rest[:nl])
		if len(hdr) < 2 || hdr[0] != '$' {
			return true // fatal on this header, already buffered
		}
		m, ok := parseDecimal(hdr[1:])
		if !ok || m < 0 || m > MaxValueLen {
			return true // fatal on this header
		}
		pos += nl + 1 + int(m) + 2
		if int64(len(buf)) < int64(pos) {
			return false
		}
	}
	return true
}

func trimCR(b []byte) []byte {
	if len(b) > 0 && b[len(b)-1] == '\r' {
		return b[:len(b)-1]
	}
	return b
}

// RESP reply encoders (append-style; used by RESPCodec and tests).

// AppendRESPSimple appends a "+<s>\r\n" simple string.
func AppendRESPSimple(dst []byte, s string) []byte {
	dst = append(dst, '+')
	dst = appendSanitized(dst, s)
	return append(dst, '\r', '\n')
}

// AppendRESPError appends a "-<kind> <msg>\r\n" error reply.
func AppendRESPError(dst []byte, kind, msg string) []byte {
	dst = append(dst, '-')
	dst = append(dst, kind...)
	if msg != "" {
		dst = append(dst, ' ')
		dst = appendSanitized(dst, msg)
	}
	return append(dst, '\r', '\n')
}

// AppendRESPInt appends a ":<v>\r\n" integer reply.
func AppendRESPInt(dst []byte, v int64) []byte {
	dst = append(dst, ':')
	dst = strconv.AppendInt(dst, v, 10)
	return append(dst, '\r', '\n')
}

// AppendRESPBulk appends a "$<n>\r\n<data>\r\n" bulk string.
func AppendRESPBulk(dst []byte, b []byte) []byte {
	dst = append(dst, '$')
	dst = strconv.AppendInt(dst, int64(len(b)), 10)
	dst = append(dst, '\r', '\n')
	dst = append(dst, b...)
	return append(dst, '\r', '\n')
}

// AppendRESPBulkString is AppendRESPBulk for string payloads.
func AppendRESPBulkString(dst []byte, s string) []byte {
	dst = append(dst, '$')
	dst = strconv.AppendInt(dst, int64(len(s)), 10)
	dst = append(dst, '\r', '\n')
	dst = append(dst, s...)
	return append(dst, '\r', '\n')
}

// AppendRESPNull appends the "$-1\r\n" null bulk (a GET miss).
func AppendRESPNull(dst []byte) []byte {
	return append(dst, "$-1\r\n"...)
}

// AppendRESPArrayHeader appends a "*<n>\r\n" array header.
func AppendRESPArrayHeader(dst []byte, n int) []byte {
	dst = append(dst, '*')
	dst = strconv.AppendInt(dst, int64(n), 10)
	return append(dst, '\r', '\n')
}

func (rc *RESPCodec) AppendGetReply(dst []byte, key string, value []byte, found bool) []byte {
	if !found {
		return AppendRESPNull(dst)
	}
	return AppendRESPBulk(dst, value)
}

func (rc *RESPCodec) AppendSetReply(dst []byte) []byte {
	return append(dst, "+OK\r\n"...)
}

func (rc *RESPCodec) AppendDeleteReply(dst []byte, deleted bool) []byte {
	if deleted {
		return append(dst, ":1\r\n"...)
	}
	return append(dst, ":0\r\n"...)
}

func (rc *RESPCodec) AppendRangeHeader(dst []byte, n int) []byte {
	return AppendRESPArrayHeader(dst, 2*n)
}

func (rc *RESPCodec) AppendRangeItem(dst []byte, key string, value []byte) []byte {
	dst = AppendRESPBulkString(dst, key)
	return AppendRESPBulk(dst, value)
}

func (rc *RESPCodec) AppendRangeTrailer(dst []byte) []byte { return dst }

func (rc *RESPCodec) AppendStatsHeader(dst []byte, n int) []byte {
	return AppendRESPArrayHeader(dst, 2*n)
}

func (rc *RESPCodec) AppendStatItem(dst []byte, name, value string) []byte {
	dst = AppendRESPBulkString(dst, name)
	return AppendRESPBulkString(dst, value)
}

func (rc *RESPCodec) AppendStatsTrailer(dst []byte) []byte { return dst }

func (rc *RESPCodec) AppendPong(dst []byte) []byte {
	return append(dst, "+PONG\r\n"...)
}

// AppendQuit acknowledges QUIT before the server closes, matching redis.
func (rc *RESPCodec) AppendQuit(dst []byte) []byte {
	return append(dst, "+OK\r\n"...)
}

func (rc *RESPCodec) AppendClientError(dst []byte, msg string) []byte {
	return AppendRESPError(dst, "CLIENT_ERROR", msg)
}

func (rc *RESPCodec) AppendServerError(dst []byte, msg string) []byte {
	return AppendRESPError(dst, "SERVER_ERROR", msg)
}

func (rc *RESPCodec) AppendUnknownVerb(dst []byte) []byte {
	return AppendRESPError(dst, "ERR", "unknown command")
}

// AppendRESPCommand appends the RESP array encoding of c — the client
// side of RESPCodec.ReadCommand. DELETE is spelled DEL on the wire.
func AppendRESPCommand(dst []byte, c Command) ([]byte, error) {
	switch c.Verb {
	case VerbGet:
		dst = AppendRESPArrayHeader(dst, 2)
		dst = AppendRESPBulkString(dst, "GET")
		dst = AppendRESPBulkString(dst, c.Key)
	case VerbSet:
		dst = AppendRESPArrayHeader(dst, 3)
		dst = AppendRESPBulkString(dst, "SET")
		dst = AppendRESPBulkString(dst, c.Key)
		dst = AppendRESPBulk(dst, c.Value)
	case VerbDelete:
		dst = AppendRESPArrayHeader(dst, 2)
		dst = AppendRESPBulkString(dst, "DEL")
		dst = AppendRESPBulkString(dst, c.Key)
	case VerbRange:
		dst = AppendRESPArrayHeader(dst, 3)
		dst = AppendRESPBulkString(dst, "RANGE")
		dst = AppendRESPBulkString(dst, c.Key)
		dst = append(dst, '$')
		n := strconv.AppendInt(nil, int64(c.Count), 10)
		dst = strconv.AppendInt(dst, int64(len(n)), 10)
		dst = append(dst, '\r', '\n')
		dst = append(dst, n...)
		dst = append(dst, '\r', '\n')
	case VerbStats:
		dst = AppendRESPArrayHeader(dst, 1)
		dst = AppendRESPBulkString(dst, "STATS")
	case VerbQuit:
		dst = AppendRESPArrayHeader(dst, 1)
		dst = AppendRESPBulkString(dst, "QUIT")
	case VerbPing:
		dst = AppendRESPArrayHeader(dst, 1)
		dst = AppendRESPBulkString(dst, "PING")
	default:
		return dst, fmt.Errorf("proto: invalid verb %d", int(c.Verb))
	}
	return dst, nil
}

// RESP reply reading (the client side).

// ReadRESPLine reads one RESP reply header line, returning its type byte
// and the rest of the line. Error replies ('-') are mapped to
// *ReplyError with the same kinds the text protocol surfaces; "ERR" (the
// redis-native kind this server uses for unknown commands) maps to
// "ERROR". The returned payload aliases the reader's buffer and must be
// consumed before the next read.
func ReadRESPLine(r *bufio.Reader) (kind byte, rest []byte, err error) {
	line, err := readLine(r)
	if err != nil {
		return 0, nil, err
	}
	if len(line) == 0 {
		return 0, nil, clientErr(true, "empty RESP reply line")
	}
	kind, rest = line[0], line[1:]
	if kind != '-' {
		return kind, rest, nil
	}
	re := &ReplyError{Kind: "ERROR"}
	f := asciiFields(rest)
	if len(f) > 0 {
		switch string(f[0]) {
		case "CLIENT_ERROR", "SERVER_ERROR", "ERROR":
			re.Kind = string(f[0])
			re.Msg = string(bytes.TrimSpace(rest[len(f[0]):]))
		case "ERR":
			re.Msg = string(bytes.TrimSpace(rest[3:]))
		default:
			re.Msg = string(bytes.TrimSpace(rest))
		}
	}
	return 0, nil, re
}

// ParseRESPInt parses the integer payload of a ':', '$', or '*' header.
func ParseRESPInt(rest []byte) (int64, error) {
	n, ok := parseDecimal(rest)
	if !ok {
		return 0, fmt.Errorf("proto: bad RESP integer %q", rest)
	}
	return n, nil
}

// ReadRESPBulkBody reads the n data bytes of a bulk string plus its
// terminator, after the "$<n>" header has been read.
func ReadRESPBulkBody(r *bufio.Reader, n int) ([]byte, error) {
	if n < 0 || n > MaxValueLen {
		return nil, fmt.Errorf("proto: bad RESP bulk length %d", n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, err
	}
	if err := discardCRLF(r); err != nil {
		return nil, err
	}
	return data, nil
}
