package skiplist

import "valois/internal/mm"

// Priority-queue operations on the skip list. A concurrent priority queue
// is the workload of Huang & Weihl's study the paper cites for contention
// management ([15], §2.1); with keys as priorities, the skip list's
// bottom level makes the minimum the first cell, and deleting it is an
// ordinary bottom-level deletion — the §3 machinery does all the work.

// Min returns the smallest key and its value, reporting false if the
// structure was observed empty.
func (s *SkipList[K, V]) Min() (K, V, bool) {
	c := s.levels[0].NewCursor()
	defer c.Close()
	if c.End() {
		var zk K
		var zv V
		return zk, zv, false
	}
	it := c.Item()
	return it.Key, it.Value, true
}

// DeleteMin removes and returns the item with the smallest key, reporting
// false if the structure was observed empty. Concurrent DeleteMins race
// on the same front cell; exactly one wins each item (the bottom-level
// TryDelete is the linearization point) and the losers retry on the next
// minimum.
func (s *SkipList[K, V]) DeleteMin() (K, V, bool) {
	for {
		c := s.levels[0].NewCursor()
		if c.End() {
			c.Close()
			var zk K
			var zv V
			return zk, zv, false
		}
		it := c.Item()
		if c.TryDelete() {
			c.Close()
			// Remove the tower's index cells; the head of every level is
			// the natural starting point for the minimum.
			s.deleteIndex(it.Key, make([]*mm.Node[item[K, V]], len(s.levels)))
			return it.Key, it.Value, true
		}
		s.levels[0].Stats().AddDeleteRetries(1)
		c.Close()
	}
}
