package skiplist

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"valois/internal/mm"
	"valois/internal/testenv"
)

func TestSingleLevelDegeneratesToSortedList(t *testing.T) {
	s := New[int, int](mm.ModeGC, WithMaxLevel(1))
	for _, k := range []int{3, 1, 2} {
		if !s.Insert(k, k) {
			t.Fatalf("Insert(%d) failed", k)
		}
	}
	if s.Levels() != 1 {
		t.Fatalf("Levels = %d, want 1", s.Levels())
	}
	var keys []int
	s.Range(func(k, _ int) bool { keys = append(keys, k); return true })
	if len(keys) != 3 || keys[0] != 1 || keys[2] != 3 {
		t.Fatalf("keys = %v, want [1 2 3]", keys)
	}
	if !s.Delete(2) || s.Len() != 2 {
		t.Fatal("single-level delete broken")
	}
}

func TestRangeMonotoneUnderChurn(t *testing.T) {
	// The bottom level is a Valois list, so the traversal-rejoin
	// phenomenon (see internal/core) applies; Range must still emit
	// strictly ascending keys.
	duration := time.Second
	if testing.Short() {
		duration = 100 * time.Millisecond
	}
	duration = testenv.Duration(duration)
	s := New[int, int](mm.ModeGC)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				k := rng.Intn(24)
				if rng.Intn(3) > 0 {
					s.Insert(k, k)
				} else {
					s.Delete(k)
				}
			}
		}(int64(g + 1))
	}
	var bad atomic.Bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			prev := -1
			s.Range(func(k, _ int) bool {
				if k <= prev {
					bad.Store(true)
					stop.Store(true)
					return false
				}
				prev = k
				return true
			})
		}
	}()
	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	if bad.Load() {
		t.Fatal("skip-list Range emitted keys out of order under churn")
	}
}

func TestFindStartsFromIndexedPredecessor(t *testing.T) {
	// Large ordered workload: every lookup must succeed and the index
	// must actually cut the work — verified via the bottom level's aux
	// traffic staying near zero (no full scans show up as extra work, but
	// a broken descent would fail the lookups).
	const n = 2000
	s := New[int, int](mm.ModeRC, WithSeed(5))
	for k := 0; k < n; k++ {
		s.Insert(k, k^0x5a5a)
	}
	for i := 0; i < n; i += 7 {
		if v, ok := s.Find(i); !ok || v != i^0x5a5a {
			t.Fatalf("Find(%d) = %d,%v", i, v, ok)
		}
	}
	if _, ok := s.Find(n + 1); ok {
		t.Fatal("Find past the maximum key reported a hit")
	}
	if _, ok := s.Find(-1); ok {
		t.Fatal("Find below the minimum key reported a hit")
	}
}
