package skiplist

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"valois/internal/mm"
	"valois/internal/testenv"
)

func modes(t *testing.T, f func(t *testing.T, mode mm.Mode)) {
	t.Helper()
	for _, mode := range []mm.Mode{mm.ModeGC, mm.ModeRC} {
		t.Run(mode.String(), func(t *testing.T) { f(t, mode) })
	}
}

func TestBasics(t *testing.T) {
	modes(t, func(t *testing.T, mode mm.Mode) {
		s := New[int, string](mode)
		if _, ok := s.Find(1); ok {
			t.Fatal("Find on empty skip list reported a hit")
		}
		if !s.Insert(1, "one") {
			t.Fatal("first Insert failed")
		}
		if s.Insert(1, "uno") {
			t.Fatal("duplicate Insert succeeded")
		}
		if v, ok := s.Find(1); !ok || v != "one" {
			t.Fatalf("Find(1) = %q,%v; want one,true", v, ok)
		}
		if !s.Delete(1) {
			t.Fatal("Delete failed")
		}
		if s.Delete(1) {
			t.Fatal("Delete of absent key succeeded")
		}
		if _, ok := s.Find(1); ok {
			t.Fatal("Find after Delete reported a hit")
		}
	})
}

func TestManyKeysAscendingOrder(t *testing.T) {
	modes(t, func(t *testing.T, mode mm.Mode) {
		const n = 500
		s := New[int, int](mode, WithSeed(42))
		perm := rand.New(rand.NewSource(3)).Perm(n)
		for _, k := range perm {
			if !s.Insert(k, k*2) {
				t.Fatalf("Insert(%d) failed", k)
			}
		}
		if got := s.Len(); got != n {
			t.Fatalf("Len = %d, want %d", got, n)
		}
		for k := 0; k < n; k++ {
			if v, ok := s.Find(k); !ok || v != k*2 {
				t.Fatalf("Find(%d) = %d,%v; want %d,true", k, v, ok, k*2)
			}
		}
		prev := -1
		s.Range(func(k, v int) bool {
			if k <= prev {
				t.Fatalf("Range out of order: %d after %d", k, prev)
			}
			prev = k
			return true
		})
	})
}

// TestLevelSubsetProperty checks §4.1's structural requirement after an
// insert-only workload: "higher level lists contain a subset of the cells
// in lower level lists".
func TestLevelSubsetProperty(t *testing.T) {
	const n = 600
	s := New[int, int](mm.ModeGC, WithSeed(7))
	for k := 0; k < n; k++ {
		s.Insert(k, k)
	}
	keysAt := func(level int) map[int]bool {
		set := make(map[int]bool)
		for _, it := range s.Level(level).Items() {
			set[it.Key] = true
		}
		return set
	}
	lower := keysAt(0)
	if len(lower) != n {
		t.Fatalf("bottom level has %d keys, want %d", len(lower), n)
	}
	for i := 1; i < s.Levels(); i++ {
		upper := keysAt(i)
		for k := range upper {
			if !lower[k] {
				t.Fatalf("level %d contains key %d missing from level %d", i, k, i-1)
			}
		}
		if len(upper) >= len(lower) && len(lower) > 0 && i <= 4 {
			t.Fatalf("level %d (%d keys) not smaller than level %d (%d keys)", i, len(upper), i-1, len(lower))
		}
		lower = upper
	}
	// With p=1/2, level 1 should hold roughly half the keys.
	l1 := len(keysAt(1))
	if l1 < n/4 || l1 > 3*n/4 {
		t.Fatalf("level 1 holds %d of %d keys; tower heights look broken", l1, n)
	}
	// Every level must individually be a structurally sound list.
	for i := 0; i < s.Levels(); i++ {
		if err := s.Level(i).CheckQuiescent(); err != nil {
			t.Fatalf("level %d: %v", i, err)
		}
	}
}

func TestDeleteRemovesIndexCells(t *testing.T) {
	modes(t, func(t *testing.T, mode mm.Mode) {
		const n = 200
		s := New[int, int](mode, WithSeed(11))
		for k := 0; k < n; k++ {
			s.Insert(k, k)
		}
		for k := 0; k < n; k++ {
			if !s.Delete(k) {
				t.Fatalf("Delete(%d) failed", k)
			}
		}
		for i := 0; i < s.Levels(); i++ {
			if got := s.Level(i).Len(); got != 0 {
				t.Fatalf("level %d still has %d cells after deleting every key", i, got)
			}
		}
	})
}

func TestRCLeakFreeAfterChurnAndClose(t *testing.T) {
	s := New[int, int](mm.ModeRC, WithSeed(13))
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		k := rng.Intn(128)
		if rng.Intn(2) == 0 {
			s.Insert(k, k)
		} else {
			s.Delete(k)
		}
	}
	rc := s.manager.(*mm.RC[item[int, int]])
	s.Close()
	if live := rc.Stats().Live(); live != 0 {
		t.Fatalf("live cells after Close = %d, want 0", live)
	}
}

func TestConcurrentDistinctKeys(t *testing.T) {
	modes(t, func(t *testing.T, mode mm.Mode) {
		const (
			goroutines = 8
			perG       = 150
		)
		s := New[int, int](mode)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					k := g*perG + i
					if !s.Insert(k, k) {
						t.Errorf("Insert(%d) failed", k)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		for k := 0; k < goroutines*perG; k++ {
			if v, ok := s.Find(k); !ok || v != k {
				t.Fatalf("Find(%d) = %d,%v", k, v, ok)
			}
		}
	})
}

func TestConcurrentSameKeyOps(t *testing.T) {
	modes(t, func(t *testing.T, mode mm.Mode) {
		const (
			goroutines = 8
			keys       = 40
		)
		s := New[int, int](mode)
		var wins atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for k := 0; k < keys; k++ {
					if s.Insert(k, g) {
						wins.Add(1)
					}
				}
			}(g)
		}
		wg.Wait()
		if got := wins.Load(); got != keys {
			t.Fatalf("%d contended inserts won, want %d", got, keys)
		}
		wins.Store(0)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := 0; k < keys; k++ {
					if s.Delete(k) {
						wins.Add(1)
					}
				}
			}()
		}
		wg.Wait()
		if got := wins.Load(); got != keys {
			t.Fatalf("%d contended deletes won, want %d", got, keys)
		}
		if got := s.Len(); got != 0 {
			t.Fatalf("Len = %d after deleting everything, want 0", got)
		}
	})
}

func TestConcurrentMixedChurnConservation(t *testing.T) {
	iters := 2500
	if testing.Short() {
		iters = 250
	}
	iters = testenv.Iters(iters)
	modes(t, func(t *testing.T, mode mm.Mode) {
		const (
			goroutines = 8
			keyspace   = 96
		)
		s := New[int, int](mode)
		var inserts, deletes atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < iters; i++ {
					k := rng.Intn(keyspace)
					switch rng.Intn(3) {
					case 0:
						if s.Insert(k, k) {
							inserts.Add(1)
						}
					case 1:
						if s.Delete(k) {
							deletes.Add(1)
						}
					default:
						if v, ok := s.Find(k); ok && v != k {
							t.Errorf("Find(%d) returned foreign value %d", k, v)
							return
						}
					}
				}
			}(int64(g + 1))
		}
		wg.Wait()
		remaining := 0
		for k := 0; k < keyspace; k++ {
			if _, ok := s.Find(k); ok {
				remaining++
			}
		}
		if got, want := inserts.Load()-deletes.Load(), int64(remaining); got != want {
			t.Fatalf("inserts-deletes = %d, but %d keys remain", got, want)
		}
		if err := s.Level(0).CheckQuiescent(); err != nil {
			t.Fatal(err)
		}
		items := s.Level(0).Items()
		for i := 1; i < len(items); i++ {
			if items[i-1].Key >= items[i].Key {
				t.Fatalf("bottom level unsorted: %d then %d", items[i-1].Key, items[i].Key)
			}
		}
	})
}

func TestHeightDistribution(t *testing.T) {
	s := New[int, int](mm.ModeGC, WithSeed(99), WithMaxLevel(20))
	const draws = 1 << 14
	counts := make([]int, 21)
	for i := 0; i < draws; i++ {
		h := s.height()
		if h < 1 || h > 20 {
			t.Fatalf("height %d out of range", h)
		}
		counts[h]++
	}
	if counts[1] < draws/3 || counts[1] > 2*draws/3 {
		t.Fatalf("P(height=1) ≈ %f, want ≈ 0.5", float64(counts[1])/draws)
	}
	if counts[2] < draws/8 || counts[2] > draws/2 {
		t.Fatalf("P(height=2) ≈ %f, want ≈ 0.25", float64(counts[2])/draws)
	}
}

func TestMatchesMapModel(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
	}
	f := func(ops []op) bool {
		s := New[int, int](mm.ModeRC, WithMaxLevel(4))
		model := map[int]int{}
		v := 0
		for _, o := range ops {
			k := int(o.Key % 24)
			switch o.Kind % 3 {
			case 0:
				v++
				_, exists := model[k]
				if got := s.Insert(k, v); got != !exists {
					return false
				}
				if !exists {
					model[k] = v
				}
			case 1:
				_, exists := model[k]
				if got := s.Delete(k); got != exists {
					return false
				}
				delete(model, k)
			default:
				mv, exists := model[k]
				got, ok := s.Find(k)
				if ok != exists || (ok && got != mv) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
