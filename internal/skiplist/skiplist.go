// Package skiplist implements the paper's third dictionary structure
// (§4.1): "a lock-free skip list [24] as a collection of k sorted
// singly-linked lists, such that higher level lists contain a subset of
// the cells in lower level lists. As in [23], insertions and deletions are
// performed one level at a time, insertions starting with the bottom level
// and working up, and deletions starting at the top and working down."
//
// Every level is an independent lock-free list from internal/core. The
// bottom level holds all items and is the linearization point of every
// dictionary operation; the higher levels are an index — towers of cells
// for the same key connected by Down pointers — that only accelerates the
// descent. A search walks each level from the closest predecessor found on
// the level above, following the predecessor cell's Down pointer
// (List.CursorAt supports resuming from a held cell even if it has been
// deleted, thanks to cell persistence).
//
// Because index levels are hints, races between an insertion building a
// tower upward and a deletion tearing it down top-down can strand index
// cells whose tower no longer reaches a live bottom cell. Such orphans
// never affect correctness — the bottom level decides membership — and are
// garbage-collected opportunistically: Delete sweeps every level for the
// key again after the bottom-level deletion succeeds.
package skiplist

import (
	"cmp"
	"sync/atomic"

	"valois/internal/core"
	"valois/internal/dict"
	"valois/internal/mm"
)

const defaultMaxLevel = 16

// item is what a cell stores: the key at every level, the value at the
// bottom level, and the Down pointer into the next lower level (nil at the
// bottom). Down is a counted reference under mm.RC; the manager's reclaim
// extractor releases it when the cell is reclaimed.
type item[K cmp.Ordered, V any] struct {
	Key   K
	Value V
	Down  *mm.Node[item[K, V]]
}

// SkipList is a non-blocking skip-list dictionary.
type SkipList[K cmp.Ordered, V any] struct {
	manager mm.Manager[item[K, V]]
	levels  []*core.List[item[K, V]] // levels[0] is the bottom (authoritative) list
	rng     atomic.Uint64            // state for deterministic tower heights
}

var _ dict.Dictionary[int, int] = (*SkipList[int, int])(nil)

// Option configures a SkipList.
type Option interface {
	apply(*options)
}

type options struct {
	maxLevel int
	seed     uint64
	rcOpts   []mm.RCOption
}

type maxLevelOption int

func (m maxLevelOption) apply(o *options) { o.maxLevel = int(m) }

// WithMaxLevel sets the number of levels k, which the paper suggests
// choosing as Θ(log N) for N expected items. The default is 16.
func WithMaxLevel(k int) Option { return maxLevelOption(k) }

type seedOption uint64

func (s seedOption) apply(o *options) { o.seed = uint64(s) }

// WithSeed seeds the tower-height generator, for reproducible structure in
// tests and benchmarks.
func WithSeed(seed uint64) Option { return seedOption(seed) }

type rcOptionsOption []mm.RCOption

func (r rcOptionsOption) apply(o *options) { o.rcOpts = append(o.rcOpts, r...) }

// WithRCOptions forwards options to the skip list's free-list memory
// manager (striping, cell padding, backoff — see mm.NewRC), used under
// mm.ModeRC and mm.ModeEBR. Ignored under mm.ModeGC.
func WithRCOptions(opts ...mm.RCOption) Option { return rcOptionsOption(opts) }

// New returns an empty skip-list dictionary under the given memory mode.
func New[K cmp.Ordered, V any](mode mm.Mode, opts ...Option) *SkipList[K, V] {
	o := options{maxLevel: defaultMaxLevel, seed: 0x5eed}
	for _, opt := range opts {
		opt.apply(&o)
	}
	if o.maxLevel < 1 {
		o.maxLevel = 1
	}
	extractor := func(it item[K, V]) (*mm.Node[item[K, V]], *mm.Node[item[K, V]]) {
		return it.Down, nil
	}
	var manager mm.Manager[item[K, V]]
	switch mode {
	case mm.ModeRC:
		rc := mm.NewRC[item[K, V]](o.rcOpts...)
		rc.SetReclaimExtractor(extractor)
		manager = rc
	case mm.ModeEBR:
		// The level cursors pin themselves (core.List detects the Pinner);
		// the cross-level predecessor references descend keeps across
		// cursor lifetimes stay counted, so they survive unpinned windows.
		ebr := mm.NewEBR[item[K, V]](o.rcOpts...)
		ebr.SetReclaimExtractor(extractor)
		manager = ebr
	default:
		manager = mm.NewGC[item[K, V]]()
	}
	s := &SkipList[K, V]{
		manager: manager,
		levels:  make([]*core.List[item[K, V]], o.maxLevel),
	}
	s.rng.Store(o.seed)
	for i := range s.levels {
		s.levels[i] = core.New(manager)
	}
	return s
}

// Levels returns the number of levels k.
func (s *SkipList[K, V]) Levels() int { return len(s.levels) }

// Level exposes one level's list for structural checks in tests.
func (s *SkipList[K, V]) Level(i int) *core.List[item[K, V]] { return s.levels[i] }

// MemStats returns the allocation counters of the skip list's §5 memory
// manager (all levels share one manager).
func (s *SkipList[K, V]) MemStats() mm.Stats { return s.manager.Stats() }

// EnableStats turns on the extra-work counters on every level.
func (s *SkipList[K, V]) EnableStats() {
	for _, l := range s.levels {
		l.EnableStats()
	}
}

// SetYieldHook installs a yield hook on every level's list (see
// core.List.SetYieldHook), for the deterministic schedule explorer. Must
// be called before the structure is shared.
func (s *SkipList[K, V]) SetYieldHook(f func()) {
	for _, l := range s.levels {
		l.SetYieldHook(f)
	}
}

// WorkStats sums the extra-work counters across levels.
func (s *SkipList[K, V]) WorkStats() core.WorkStats {
	var total core.WorkStats
	for _, l := range s.levels {
		w := l.Stats().Snapshot()
		total.AuxSkips += w.AuxSkips
		total.AuxRemovals += w.AuxRemovals
		total.BacklinkSteps += w.BacklinkSteps
		total.ChainSteps += w.ChainSteps
		total.DeleteCASRetries += w.DeleteCASRetries
		total.InsertRetries += w.InsertRetries
		total.DeleteRetries += w.DeleteRetries
	}
	return total
}

// height draws a tower height with geometric distribution p=1/2, in
// [1, maxLevel]. The generator is a shared SplitMix64 counter, so heights
// are deterministic for a given seed regardless of scheduling.
func (s *SkipList[K, V]) height() int {
	x := dict.HashUint64(s.rng.Add(1))
	h := 1
	for x&1 == 1 && h < len(s.levels) {
		h++
		x >>= 1
	}
	return h
}

// cursorFor returns a cursor on level i, starting from the held
// predecessor cell start (or from the level's head if start is nil).
func (s *SkipList[K, V]) cursorFor(i int, start *mm.Node[item[K, V]]) *core.Cursor[item[K, V]] {
	if start == nil {
		return s.levels[i].NewCursor()
	}
	return s.levels[i].CursorAt(start)
}

// seek advances the cursor until it visits the first cell with key ≥ k.
// It is findFrom's traversal (Figure 11) without the equality decision.
func seek[K cmp.Ordered, V any](c *core.Cursor[item[K, V]], k K) {
	for !c.End() && c.Item().Key < k {
		if !c.Next() {
			return
		}
	}
}

// descend walks the levels from the top, recording for each level the
// closest predecessor cell with key < k (nil when that is the level's
// head dummy). The returned cells carry a counted reference each; the
// caller must hand them to releasePreds.
func (s *SkipList[K, V]) descend(k K) []*mm.Node[item[K, V]] {
	m := s.manager
	preds := make([]*mm.Node[item[K, V]], len(s.levels))
	var start *mm.Node[item[K, V]] // counted reference we hold, or nil
	for i := len(s.levels) - 1; i >= 0; i-- {
		c := s.cursorFor(i, start)
		if start != nil {
			m.Release(start)
			start = nil
		}
		seek(c, k)
		if p := c.PreCell(); p.Kind() == mm.KindCell {
			m.AddRef(p)
			preds[i] = p
			if i > 0 {
				// The Down reference is kept alive by p, which the
				// cursor still holds; count our own before moving on.
				start = p.Item.Down
				m.AddRef(start)
			}
		}
		c.Close()
	}
	return preds
}

func (s *SkipList[K, V]) releasePreds(preds []*mm.Node[item[K, V]]) {
	for _, p := range preds {
		s.manager.Release(p) // Release(nil) is a no-op
	}
}

// Find reports the value stored under key. Membership is decided by the
// bottom level; higher levels only provide the starting point.
func (s *SkipList[K, V]) Find(key K) (V, bool) {
	preds := s.descend(key)
	defer s.releasePreds(preds)
	c := s.cursorFor(0, preds[0])
	defer c.Close()
	seek(c, key)
	if !c.End() {
		if it := c.Item(); it.Key == key {
			return it.Value, true
		}
	}
	var zero V
	return zero, false
}

// Insert adds the item if the key is not present, reporting whether it
// inserted. The bottom-level insertion is the linearization point and
// enforces uniqueness exactly as Figure 12 does; index cells are then
// added bottom-up (§4.1).
func (s *SkipList[K, V]) Insert(key K, value V) bool {
	m := s.manager
	h := s.height()
	preds := s.descend(key)
	defer s.releasePreds(preds)

	// Bottom level: the Figure 12 loop, starting from the descent's
	// vantage point.
	base := s.levels[0]
	c := s.cursorFor(0, preds[0])
	q, a := base.AllocInsertNodes(item[K, V]{Key: key, Value: value})
	if q == nil {
		c.Close()
		return false
	}
	for {
		seek(c, key)
		if !c.End() && c.Item().Key == key {
			base.ReleaseNodes(q, a)
			c.Close()
			return false
		}
		if c.TryInsert(q, a) {
			break
		}
		base.Stats().AddInsertRetries(1)
		c.Update()
	}
	c.Close()
	base.ReleaseNodes(a) // the auxiliary node's allocation reference

	// Build the index tower bottom-up. q's allocation reference keeps it
	// alive while it becomes the first Down target.
	below := q // counted: the allocation reference we have not released yet
	for i := 1; i < h; i++ {
		if q.Deleted() {
			// A concurrent Delete already removed the bottom cell;
			// stop building — its sweep may have passed our level.
			break
		}
		lvl := s.levels[i]
		m.AddRef(below) // counted: the Down pointer stored in the new cell
		iq, ia := lvl.AllocInsertNodes(item[K, V]{Key: key, Down: below})
		if iq == nil {
			m.Release(below)
			break
		}
		inserted := false
		lc := s.cursorFor(i, preds[i])
		for {
			seek(lc, key)
			if !lc.End() && lc.Item().Key == key {
				break // an index cell for the key is already here
			}
			if lc.TryInsert(iq, ia) {
				inserted = true
				break
			}
			lvl.Stats().AddInsertRetries(1)
			lc.Update()
		}
		lc.Close()
		if !inserted {
			lvl.ReleaseNodes(iq, ia) // also drops the Down reference via reclaim
			break
		}
		m.Release(below) // drop our hold; iq's Down keeps it
		below = iq
		m.AddRef(below)
		lvl.ReleaseNodes(iq, ia)
	}
	m.Release(below)
	return true
}

// Delete removes the item with the given key, reporting whether an item
// was removed. Index cells are removed top-down (§4.1) before the
// bottom-level deletion, which is the linearization point; a final sweep
// removes index cells a racing insertion may have added meanwhile.
func (s *SkipList[K, V]) Delete(key K) bool {
	preds := s.descend(key)
	s.deleteIndex(key, preds)

	base := s.levels[0]
	c := s.cursorFor(0, preds[0])
	deleted := false
	for {
		seek(c, key)
		if c.End() || c.Item().Key != key {
			break
		}
		if c.TryDelete() {
			deleted = true
			break
		}
		base.Stats().AddDeleteRetries(1)
		c.Update()
	}
	c.Close()

	if deleted {
		// Sweep stragglers left by towers built concurrently with us.
		s.deleteIndex(key, preds)
	}
	s.releasePreds(preds)
	return deleted
}

// deleteIndex removes every index cell with the key from levels top..1.
func (s *SkipList[K, V]) deleteIndex(key K, preds []*mm.Node[item[K, V]]) {
	for i := len(s.levels) - 1; i >= 1; i-- {
		lvl := s.levels[i]
		c := s.cursorFor(i, preds[i])
		for {
			seek(c, key)
			if c.End() || c.Item().Key != key {
				break
			}
			if !c.TryDelete() {
				lvl.Stats().AddDeleteRetries(1)
			}
			c.Update()
		}
		c.Close()
	}
}

// Len reports the number of items (bottom-level snapshot).
func (s *SkipList[K, V]) Len() int { return s.levels[0].Len() }

// Range calls f for each item in strictly ascending key order until f
// returns false, traversing the bottom level. As with
// dict.SortedList.Range, the sweep may rejoin the list at an earlier
// position after passing through concurrently deleted cells, so items with
// keys not above the last reported key are skipped to keep the output
// monotone.
func (s *SkipList[K, V]) Range(f func(key K, value V) bool) {
	c := s.levels[0].NewCursor()
	defer c.Close()
	first := true
	var last K
	for !c.End() {
		it := c.Item()
		if first || it.Key > last {
			if !f(it.Key, it.Value) {
				return
			}
			first = false
			last = it.Key
		}
		if !c.Next() {
			return
		}
	}
}

// RangeFrom is Range starting at the first key ≥ start, using the index
// levels to reach the starting position in O(log n) instead of scanning
// the bottom level.
func (s *SkipList[K, V]) RangeFrom(start K, f func(key K, value V) bool) {
	preds := s.descend(start)
	c := s.cursorFor(0, preds[0])
	s.releasePreds(preds)
	defer c.Close()
	seek(c, start)
	first := true
	var last K
	for !c.End() {
		it := c.Item()
		if it.Key >= start && (first || it.Key > last) {
			if !f(it.Key, it.Value) {
				return
			}
			first = false
			last = it.Key
		}
		if !c.Next() {
			return
		}
	}
}

// Close releases every level's cells. Under an RC manager it must only be
// called once no operations are in flight.
func (s *SkipList[K, V]) Close() {
	for _, l := range s.levels {
		l.Close()
	}
}
