package skiplist

import (
	"math/rand"
	"sync"
	"testing"

	"valois/internal/mm"
)

func TestMinAndDeleteMinSequential(t *testing.T) {
	modes(t, func(t *testing.T, mode mm.Mode) {
		s := New[int, string](mode)
		if _, _, ok := s.Min(); ok {
			t.Fatal("Min on empty structure reported an item")
		}
		if _, _, ok := s.DeleteMin(); ok {
			t.Fatal("DeleteMin on empty structure reported an item")
		}
		for _, k := range []int{5, 1, 9, 3, 7} {
			s.Insert(k, "v")
		}
		if k, _, ok := s.Min(); !ok || k != 1 {
			t.Fatalf("Min = %d,%v; want 1,true", k, ok)
		}
		want := []int{1, 3, 5, 7, 9}
		for _, w := range want {
			k, v, ok := s.DeleteMin()
			if !ok || k != w || v != "v" {
				t.Fatalf("DeleteMin = %d,%q,%v; want %d", k, v, ok, w)
			}
		}
		if _, _, ok := s.DeleteMin(); ok {
			t.Fatal("DeleteMin after draining reported an item")
		}
		for i := 0; i < s.Levels(); i++ {
			if got := s.Level(i).Len(); got != 0 {
				t.Fatalf("level %d has %d cells after draining", i, got)
			}
		}
	})
}

func TestDeleteMinConcurrentDistinct(t *testing.T) {
	modes(t, func(t *testing.T, mode mm.Mode) {
		const n = 800
		s := New[int, int](mode)
		perm := rand.New(rand.NewSource(4)).Perm(n)
		for _, k := range perm {
			s.Insert(k, k)
		}
		var mu sync.Mutex
		taken := make(map[int]bool, n)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					k, v, ok := s.DeleteMin()
					if !ok {
						return
					}
					if v != k {
						t.Errorf("DeleteMin value %d for key %d", v, k)
						return
					}
					mu.Lock()
					if taken[k] {
						mu.Unlock()
						t.Errorf("key %d extracted twice", k)
						return
					}
					taken[k] = true
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		if len(taken) != n {
			t.Fatalf("extracted %d distinct keys, want %d", len(taken), n)
		}
	})
}

func TestDeleteMinRoughPriorityOrder(t *testing.T) {
	// Under concurrency DeleteMin is linearizable per extraction but two
	// overlapping extractions may commit out of order with respect to
	// each other's return. Sequential extraction must be exactly sorted.
	s := New[int, int](mm.ModeGC, WithSeed(9))
	perm := rand.New(rand.NewSource(11)).Perm(300)
	for _, k := range perm {
		s.Insert(k, k)
	}
	prev := -1
	for {
		k, _, ok := s.DeleteMin()
		if !ok {
			break
		}
		if k <= prev {
			t.Fatalf("DeleteMin out of order: %d after %d", k, prev)
		}
		prev = k
	}
}

func TestRangeFrom(t *testing.T) {
	s := New[int, int](mm.ModeGC)
	for k := 0; k < 100; k += 2 { // evens only
		s.Insert(k, k)
	}
	var keys []int
	s.RangeFrom(31, func(k, _ int) bool {
		keys = append(keys, k)
		return len(keys) < 5
	})
	want := []int{32, 34, 36, 38, 40}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
	// Start beyond the maximum: no items.
	called := false
	s.RangeFrom(1000, func(int, int) bool { called = true; return true })
	if called {
		t.Fatal("RangeFrom past the end visited items")
	}
}
