package sched_test

import (
	"fmt"
	"testing"

	"valois/internal/core"
	"valois/internal/mm"
	"valois/internal/sched"
)

// These scenarios turn the epoch-based reclamation protocol's safety
// argument into exhaustive checks. The dangerous windows are not the
// structural Compare&Swaps (those are covered by the Figure 2/3 scenarios,
// which now also run under ebr) but the epoch transitions: a cell retired
// while a reader is pinned must stay out of the free list until that pin
// is gone, no matter how retirements, advancement attempts, and the
// reader's own hops interleave. Reuse of a wrongly-freed cell is made
// observable by having writers insert fresh keys after forcing
// advancement: if the pinned reader's cell were recycled, the reader's
// parked position would suddenly carry the new key (or a corrupted kind),
// and the item/contents checks below would see it.

// ebrCheck drains and leak-checks an EBR-managed list once all pins are
// released.
func ebrCheck(m *mm.EBR[int], l *core.List[int], cursors []*core.Cursor[int], want []int) error {
	for _, c := range cursors {
		c.Close()
	}
	got := l.Items()
	if len(got) != len(want) {
		return fmt.Errorf("items = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("items = %v, want %v", got, want)
		}
	}
	if err := l.CheckQuiescent(); err != nil {
		return err
	}
	l.Close()
	if !m.Quiesce() {
		return fmt.Errorf("ebr limbo did not drain: %d cells", m.LimboLen())
	}
	if live := m.Stats().Live(); live != 0 {
		return fmt.Errorf("live cells after Close+Quiesce = %d, want 0", live)
	}
	return nil
}

// TestExhaustiveEBRPinnedReaderBlocksReclaim explores a reader pinned in
// epoch e against a writer that retires the reader's cell in e and then
// tries as hard as it can to get it recycled: delete, repeated forced
// advancement, and a fresh insertion that would pop a wrongly-freed cell
// off the free list. Under every interleaving the reader's parked cell
// must still read as its original item.
func TestExhaustiveEBRPinnedReaderBlocksReclaim(t *testing.T) {
	var m *mm.EBR[int]
	var l *core.List[int]
	var cursors []*core.Cursor[int]
	build := func(yield func()) sched.Scenario {
		m = mm.NewEBR[int]()
		m.SetYieldHook(yield) // interleave at epoch-advancement windows too
		l, cursors = listFixture(m, yield, []int{10, 20, 30}, []int{20, 20})
		reader, writer := cursors[0], cursors[1]
		return sched.Scenario{
			Threads: []func(){
				func() { // pinned since fixture time; parked on 20
					yield()
					if got := reader.Item(); got != 20 {
						panic(fmt.Sprintf("pinned reader's cell corrupted: item = %d, want 20", got))
					}
					yield()
					// The deleted cell's next pointer must also have
					// survived: walk off it onto the live list.
					for !reader.End() {
						if k := reader.Item(); k != 10 && k != 20 && k != 30 && k != 40 {
							panic(fmt.Sprintf("reader walked onto corrupted cell %d", k))
						}
						if !reader.Next() {
							break
						}
					}
				},
				func() {
					deleteKey(writer, 20) // retires cells in the reader's epoch
					for i := 0; i < 4; i++ {
						m.ForceAdvance() // must stall against the reader's pin
					}
					// A recycled cell would surface here as the new 40.
					for !writer.End() && writer.Item() < 40 {
						writer.Next()
					}
					insertSorted(l, writer, 40)
				},
			},
			Check: func() error {
				return ebrCheck(m, l, cursors, []int{10, 30, 40})
			},
		}
	}
	res, err := sched.Explore(sched.Options{MaxSchedules: 500_000}, build)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatal("exploration truncated; raise the cap")
	}
	t.Logf("pinned reader vs retire+advance: %d schedules, ≤%d decisions", res.Schedules, res.MaxDecisions)
	if res.Schedules < 3 {
		t.Fatalf("only %d schedules explored; yield points not firing", res.Schedules)
	}
}

// TestExhaustiveEBRUnpinTriggersDrain explores the release half of the
// protocol: whatever order the reader's unpin and the writer's forced
// advancements land in, once both threads are done a quiesce must drain
// every retired cell — the pin may defer reclamation but never wedge it.
func TestExhaustiveEBRUnpinTriggersDrain(t *testing.T) {
	var m *mm.EBR[int]
	var l *core.List[int]
	var cursors []*core.Cursor[int]
	var reclaimedEarly int64
	build := func(yield func()) sched.Scenario {
		m = mm.NewEBR[int]()
		m.SetYieldHook(yield) // interleave at epoch-advancement windows too
		l, cursors = listFixture(m, yield, []int{10, 20, 30}, []int{20, 20})
		reader, writer := cursors[0], cursors[1]
		reclaimedEarly = -1
		return sched.Scenario{
			Threads: []func(){
				func() {
					yield()
					if got := reader.Item(); got != 20 {
						panic(fmt.Sprintf("pinned reader's cell corrupted: item = %d", got))
					}
					reader.Close() // unpin: from here reclamation may proceed
					yield()
				},
				func() {
					deleteKey(writer, 20)
					writer.Close() // the writer's own pin must not wedge things
					yield()
					for i := 0; i < 8; i++ {
						m.ForceAdvance()
					}
					reclaimedEarly = m.Stats().Reclaims
				},
			},
			Check: func() error {
				// Both cursors are already closed; drain and leak-check.
				if err := ebrCheck(m, l, nil, []int{10, 30}); err != nil {
					return err
				}
				if m.Stats().Reclaims < reclaimedEarly {
					return fmt.Errorf("reclaim counter went backwards")
				}
				return nil
			},
		}
	}
	res, err := sched.Explore(sched.Options{MaxSchedules: 500_000}, build)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatal("exploration truncated; raise the cap")
	}
	t.Logf("unpin drains: %d schedules, ≤%d decisions", res.Schedules, res.MaxDecisions)
}

// TestExhaustiveEBRTwoWritersDifferentEpochs explores two writers whose
// retirements can land in different epochs (each forces advancement after
// its delete) against a reader pinned across both. The union of the two
// grace periods must cover the reader: neither deleted cell — nor the
// auxiliary nodes between them, which the reader's frozen path runs
// through — may be freed while the reader can still reach them.
func TestExhaustiveEBRTwoWritersDifferentEpochs(t *testing.T) {
	var m *mm.EBR[int]
	var l *core.List[int]
	var cursors []*core.Cursor[int]
	build := func(yield func()) sched.Scenario {
		m = mm.NewEBR[int]()
		m.SetYieldHook(yield) // interleave at epoch-advancement windows too
		l, cursors = listFixture(m, yield, []int{10, 20, 30, 40}, []int{20, 20, 30})
		reader, w1, w2 := cursors[0], cursors[1], cursors[2]
		return sched.Scenario{
			Threads: []func(){
				func() { // pinned across both writers' epochs
					yield()
					if got := reader.Item(); got != 20 {
						panic(fmt.Sprintf("reader's first cell corrupted: item = %d", got))
					}
					yield()
					// Walk the frozen path 20 → 30 → live tail. Both cells
					// may be deleted by now but must remain intact: every
					// key read must be one that was ever in the list (the
					// raw-cursor sweep is not guaranteed monotonic when an
					// adjacent region is deleted — see core's package doc —
					// but a recycled or corrupted cell would read as
					// something outside this set or trip the kind checks).
					for !reader.End() {
						switch reader.Item() {
						case 10, 20, 30, 40, 50:
						default:
							panic(fmt.Sprintf("reader walked onto corrupted cell %d", reader.Item()))
						}
						if !reader.Next() {
							break
						}
					}
				},
				func() {
					deleteKey(w1, 20)
					m.ForceAdvance() // push w2's retirement into a later epoch
					for !w1.End() && w1.Item() < 50 {
						w1.Next()
					}
					insertSorted(l, w1, 50) // would reuse a wrongly-freed cell
				},
				func() {
					deleteKey(w2, 30)
					m.ForceAdvance()
				},
			},
			Check: func() error {
				return ebrCheck(m, l, cursors, []int{10, 40, 50})
			},
		}
	}
	res, err := sched.Explore(sched.Options{MaxSchedules: 2_000_000}, build)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatal("exploration truncated; raise the cap")
	}
	t.Logf("two writers, pinned reader: %d schedules, ≤%d decisions", res.Schedules, res.MaxDecisions)
}
