package sched_test

import (
	"fmt"
	"testing"

	"valois/internal/dict"
	"valois/internal/mm"
	"valois/internal/sched"
)

// Exhaustive exploration of the hash dictionary (§4.1, "a
// straightforward extension" of the sorted list): the interesting
// schedules are the ones the hash function cannot spread apart — keys
// that collide in one bucket contend on that bucket's lock-free list
// exactly as the single-list scenarios do, with the dictionary layer's
// own retry loops (Figure 12/13 at dict level) on top. Every scenario
// uses a deliberately colliding hash so all operations meet in bucket 0,
// with a bystander key in bucket 1 proving the collision domain is
// bucket-sized, not structure-sized.

// collide maps even keys to bucket 0 and odd keys to bucket 1.
func collide(k int) uint64 { return uint64(k % 2) }

// newCollidingHash builds a two-bucket hash holding even (bucket 0) keys
// 10 and 30 plus the odd bystander 7 in bucket 1.
func newCollidingHash(mode mm.Mode, yield func()) *dict.Hash[int, int] {
	h := dict.NewHash[int, int](2, mode, collide)
	h.Insert(10, 10)
	h.Insert(30, 30)
	h.Insert(7, 7)
	h.SetYieldHook(yield)
	return h
}

// checkCollidingHash validates the bystander, both buckets' structure,
// and under RC exact reclamation at Close.
func checkCollidingHash(h *dict.Hash[int, int], mode mm.Mode) error {
	if v, ok := h.Find(7); !ok || v != 7 {
		return fmt.Errorf("bystander key 7 in the other bucket = %d,%v; want 7,true", v, ok)
	}
	for i := 0; i < 2; i++ {
		if err := h.Bucket(i).List().CheckQuiescent(); err != nil {
			return fmt.Errorf("bucket %d: %w", i, err)
		}
	}
	switch mode {
	case mm.ModeRC:
		h.Close()
		if live := h.MemStats().Live(); live != 0 {
			return fmt.Errorf("live cells after Close = %d, want 0", live)
		}
	case mm.ModeEBR:
		// Each bucket has its own manager; quiesce them all after Close.
		managers := make([]*mm.EBR[dict.Entry[int, int]], 0, 2)
		for i := 0; i < 2; i++ {
			managers = append(managers, h.Bucket(i).List().Manager().(*mm.EBR[dict.Entry[int, int]]))
		}
		h.Close()
		for i, ebr := range managers {
			if !ebr.Quiesce() {
				return fmt.Errorf("bucket %d: ebr limbo did not drain: %d cells", i, ebr.LimboLen())
			}
		}
		if live := h.MemStats().Live(); live != 0 {
			return fmt.Errorf("live cells after Close+Quiesce = %d, want 0", live)
		}
	}
	return nil
}

func hashModes(t *testing.T, f func(t *testing.T, mode mm.Mode)) {
	t.Helper()
	t.Run("gc", func(t *testing.T) { f(t, mm.ModeGC) })
	t.Run("rc", func(t *testing.T) { f(t, mm.ModeRC) })
	t.Run("ebr", func(t *testing.T) { f(t, mm.ModeEBR) })
}

// TestExhaustiveHashInsertVsDeleteColliding races Insert(20) against
// Delete(30), both in bucket 0: the Figure 2 shape lifted to the
// dictionary layer. Under every schedule the insert lands, the delete
// wins its key, and the bucket list stays sound.
func TestExhaustiveHashInsertVsDeleteColliding(t *testing.T) {
	hashModes(t, func(t *testing.T, mode mm.Mode) {
		var h *dict.Hash[int, int]
		var inserted, deleted bool
		build := func(yield func()) sched.Scenario {
			h = newCollidingHash(mode, yield)
			inserted, deleted = false, false
			return sched.Scenario{
				Threads: []func(){
					func() { inserted = h.Insert(20, 20) },
					func() { deleted = h.Delete(30) },
				},
				Check: func() error {
					h.SetYieldHook(nil)
					if !inserted {
						return fmt.Errorf("Insert(20) returned false with no competing inserter")
					}
					if !deleted {
						return fmt.Errorf("Delete(30) returned false for a present key")
					}
					if v, ok := h.Find(20); !ok || v != 20 {
						return fmt.Errorf("Find(20) = %d,%v; want 20,true", v, ok)
					}
					if _, ok := h.Find(30); ok {
						return fmt.Errorf("deleted key 30 still present")
					}
					if n := h.Len(); n != 3 {
						return fmt.Errorf("Len = %d, want 3", n)
					}
					return checkCollidingHash(h, mode)
				},
			}
		}
		res, err := sched.Explore(sched.Options{MaxSchedules: 400_000}, build)
		if err != nil {
			t.Fatal(err)
		}
		if res.Truncated {
			t.Fatal("exploration truncated; raise the cap")
		}
		if res.Schedules < 5 {
			t.Fatalf("only %d schedules; the scenario is not interleaving", res.Schedules)
		}
		t.Logf("hash insert vs delete: %d schedules, ≤%d decisions", res.Schedules, res.MaxDecisions)
	})
}

// TestExhaustiveHashInsertInsertSameKey races two Inserts of the same
// colliding key: exactly one must win under every schedule (the paper's
// Insert refuses duplicates), and Find must return the winner's value.
func TestExhaustiveHashInsertInsertSameKey(t *testing.T) {
	hashModes(t, func(t *testing.T, mode mm.Mode) {
		var h *dict.Hash[int, int]
		var won [2]bool
		build := func(yield func()) sched.Scenario {
			h = newCollidingHash(mode, yield)
			won = [2]bool{}
			ins := func(i, val int) func() {
				return func() { won[i] = h.Insert(20, val) }
			}
			return sched.Scenario{
				Threads: []func(){ins(0, 100), ins(1, 200)},
				Check: func() error {
					h.SetYieldHook(nil)
					if won[0] == won[1] {
						return fmt.Errorf("wins = %v, want exactly one", won)
					}
					v, ok := h.Find(20)
					if !ok {
						return fmt.Errorf("key 20 missing after a successful insert")
					}
					if (won[0] && v != 100) || (won[1] && v != 200) {
						return fmt.Errorf("Find(20) = %d but wins = %v", v, won)
					}
					return checkCollidingHash(h, mode)
				},
			}
		}
		res, err := sched.Explore(sched.Options{MaxSchedules: 400_000}, build)
		if err != nil {
			t.Fatal(err)
		}
		if res.Truncated {
			t.Fatal("exploration truncated; raise the cap")
		}
		t.Logf("hash insert/insert same key: %d schedules, ≤%d decisions", res.Schedules, res.MaxDecisions)
	})
}

// TestExhaustiveHashDeleteDeleteSameKey races two Deletes of the same
// colliding key: exactly one must win under every schedule.
func TestExhaustiveHashDeleteDeleteSameKey(t *testing.T) {
	hashModes(t, func(t *testing.T, mode mm.Mode) {
		var h *dict.Hash[int, int]
		var won [2]bool
		build := func(yield func()) sched.Scenario {
			h = newCollidingHash(mode, yield)
			won = [2]bool{}
			del := func(i int) func() {
				return func() { won[i] = h.Delete(30) }
			}
			return sched.Scenario{
				Threads: []func(){del(0), del(1)},
				Check: func() error {
					h.SetYieldHook(nil)
					if won[0] == won[1] {
						return fmt.Errorf("wins = %v, want exactly one", won)
					}
					if _, ok := h.Find(30); ok {
						return fmt.Errorf("key 30 still present after delete")
					}
					if n := h.Len(); n != 2 {
						return fmt.Errorf("Len = %d, want 2", n)
					}
					return checkCollidingHash(h, mode)
				},
			}
		}
		res, err := sched.Explore(sched.Options{MaxSchedules: 400_000}, build)
		if err != nil {
			t.Fatal(err)
		}
		if res.Truncated {
			t.Fatal("exploration truncated; raise the cap")
		}
		t.Logf("hash delete/delete same key: %d schedules, ≤%d decisions", res.Schedules, res.MaxDecisions)
	})
}
