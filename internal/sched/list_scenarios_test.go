package sched_test

import (
	"fmt"
	"testing"

	"valois/internal/core"
	"valois/internal/mm"
	"valois/internal/sched"
)

// These tests turn the paper's two danger figures into exhaustive checks:
// every interleaving of the operations' Compare&Swap windows is executed
// (code between yield points runs atomically), and after each schedule the
// full invariant set is validated — contents, structural soundness, and
// under mm.RC exact memory reclamation.

// listFixture builds a list with the given keys and returns it along with
// per-thread cursors positioned on the requested target keys.
func listFixture(m mm.Manager[int], yield func(), keys []int, targets []int) (*core.List[int], []*core.Cursor[int]) {
	l := core.New(m)
	l.SetYieldHook(yield) // no-ops during this setup (scheduler context)
	c := l.NewCursor()
	for i := len(keys) - 1; i >= 0; i-- {
		q, a := l.AllocInsertNodes(keys[i])
		if !c.TryInsert(q, a) {
			panic("sched fixture: insert failed on idle list")
		}
		l.ReleaseNodes(q, a)
		c.Reset()
	}
	c.Close()
	cursors := make([]*core.Cursor[int], len(targets))
	for i, k := range targets {
		cur := l.NewCursor()
		for !cur.End() && cur.Item() != k {
			cur.Next()
		}
		if cur.End() {
			panic("sched fixture: target key missing")
		}
		cursors[i] = cur
	}
	return l, cursors
}

// checkList validates items, quiescent structure, and (rc) exact
// reclamation. Cursors are closed first.
func checkList(m mm.Manager[int], l *core.List[int], cursors []*core.Cursor[int], want []int) error {
	for _, c := range cursors {
		c.Close()
	}
	got := l.Items()
	if len(got) != len(want) {
		return fmt.Errorf("items = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("items = %v, want %v", got, want)
		}
	}
	if err := l.CheckQuiescent(); err != nil {
		return err
	}
	if rc, ok := m.(*mm.RC[int]); ok {
		if live, expect := rc.Stats().Live(), int64(3+2*len(want)); live != expect {
			return fmt.Errorf("live cells = %d, want %d", live, expect)
		}
		l.Close()
		if live := rc.Stats().Live(); live != 0 {
			return fmt.Errorf("live cells after Close = %d, want 0", live)
		}
	}
	if ebr, ok := m.(*mm.EBR[int]); ok {
		// Reclamation is deferred under EBR: with every pin released, a
		// quiesce must drain the limbo lists down to zero live cells.
		l.Close()
		if !ebr.Quiesce() {
			return fmt.Errorf("ebr limbo did not drain: %d cells", ebr.LimboLen())
		}
		if live := ebr.Stats().Live(); live != 0 {
			return fmt.Errorf("live cells after Close+Quiesce = %d, want 0", live)
		}
	}
	return nil
}

// insertSorted is Figure 12's retry loop at list level: re-seek the
// sorted position after every failed attempt.
func insertSorted(l *core.List[int], c *core.Cursor[int], key int) {
	q, a := l.AllocInsertNodes(key)
	for {
		if c.TryInsert(q, a) {
			l.ReleaseNodes(q, a)
			return
		}
		c.Update()
		for !c.End() && c.Item() < key {
			c.Next()
		}
	}
}

// deleteKey is Figure 13's retry loop: re-seek the key after every
// failed attempt. (The schedule explorer itself demonstrated why the
// re-seek is mandatory: without it, a deleter whose cursor was updated
// past a concurrent insertion deletes the wrong cell.)
func deleteKey(c *core.Cursor[int], key int) {
	for {
		for !c.End() && c.Item() < key {
			c.Next()
		}
		if c.End() || c.Item() != key {
			panic("sched scenario: key to delete is missing")
		}
		if c.TryDelete() {
			return
		}
		c.Update()
	}
}

func managers(t *testing.T, f func(t *testing.T, newM func() mm.Manager[int])) {
	t.Helper()
	t.Run("gc", func(t *testing.T) { f(t, func() mm.Manager[int] { return mm.NewGC[int]() }) })
	t.Run("rc", func(t *testing.T) { f(t, func() mm.Manager[int] { return mm.NewRC[int]() }) })
	t.Run("ebr", func(t *testing.T) { f(t, func() mm.Manager[int] { return mm.NewEBR[int]() }) })
}

// TestExhaustiveFigure2 explores every interleaving of the Figure 2 race:
// inserting C at the position of B while B is concurrently deleted. Under
// no schedule may C be lost or the structure corrupted.
func TestExhaustiveFigure2(t *testing.T) {
	managers(t, func(t *testing.T, newM func() mm.Manager[int]) {
		var m mm.Manager[int]
		var l *core.List[int]
		var cursors []*core.Cursor[int]
		build := func(yield func()) sched.Scenario {
			m = newM()
			l, cursors = listFixture(m, yield, []int{10, 30}, []int{30, 30})
			return sched.Scenario{
				Threads: []func(){
					func() { insertSorted(l, cursors[0], 20) }, // insert C before B
					func() { deleteKey(cursors[1], 30) },       // delete B (Fig 13 loop)
				},
				Check: func() error {
					return checkList(m, l, cursors, []int{10, 20})
				},
			}
		}
		res, err := sched.Explore(sched.Options{}, build)
		if err != nil {
			t.Fatal(err)
		}
		if res.Truncated {
			t.Fatal("exploration truncated")
		}
		t.Logf("figure 2: %d schedules, ≤%d decisions", res.Schedules, res.MaxDecisions)
		if res.Schedules < 3 {
			t.Fatalf("only %d schedules explored; yield points not firing", res.Schedules)
		}
	})
}

// TestExhaustiveFigure3 explores every interleaving of the Figure 3 race:
// deleting two adjacent cells. Under no schedule may a deletion be undone.
func TestExhaustiveFigure3(t *testing.T) {
	managers(t, func(t *testing.T, newM func() mm.Manager[int]) {
		var m mm.Manager[int]
		var l *core.List[int]
		var cursors []*core.Cursor[int]
		build := func(yield func()) sched.Scenario {
			m = newM()
			l, cursors = listFixture(m, yield, []int{10, 20, 30}, []int{20, 30})
			return sched.Scenario{
				Threads: []func(){
					func() { deleteKey(cursors[0], 20) },
					func() { deleteKey(cursors[1], 30) },
				},
				Check: func() error {
					return checkList(m, l, cursors, []int{10})
				},
			}
		}
		res, err := sched.Explore(sched.Options{}, build)
		if err != nil {
			t.Fatal(err)
		}
		if res.Truncated {
			t.Fatal("exploration truncated")
		}
		t.Logf("figure 3: %d schedules, ≤%d decisions", res.Schedules, res.MaxDecisions)
	})
}

// TestExhaustiveThreeAdjacentDeletes extends Figure 3 to three deleters,
// the shape behind the §3 chain-collapse theorem.
func TestExhaustiveThreeAdjacentDeletes(t *testing.T) {
	managers(t, func(t *testing.T, newM func() mm.Manager[int]) {
		var m mm.Manager[int]
		var l *core.List[int]
		var cursors []*core.Cursor[int]
		build := func(yield func()) sched.Scenario {
			m = newM()
			l, cursors = listFixture(m, yield, []int{10, 20, 30, 40}, []int{20, 30, 40})
			return sched.Scenario{
				Threads: []func(){
					func() { deleteKey(cursors[0], 20) },
					func() { deleteKey(cursors[1], 30) },
					func() { deleteKey(cursors[2], 40) },
				},
				Check: func() error {
					return checkList(m, l, cursors, []int{10})
				},
			}
		}
		res, err := sched.Explore(sched.Options{MaxSchedules: 500_000}, build)
		if err != nil {
			t.Fatal(err)
		}
		if res.Truncated {
			t.Fatal("exploration truncated; raise the cap")
		}
		t.Logf("three deletes: %d schedules, ≤%d decisions", res.Schedules, res.MaxDecisions)
	})
}

// TestExhaustiveDeleteRace explores two deleters racing on the SAME cell:
// exactly one must win under every schedule.
func TestExhaustiveDeleteRace(t *testing.T) {
	managers(t, func(t *testing.T, newM func() mm.Manager[int]) {
		var m mm.Manager[int]
		var l *core.List[int]
		var cursors []*core.Cursor[int]
		var wins [2]bool
		build := func(yield func()) sched.Scenario {
			m = newM()
			l, cursors = listFixture(m, yield, []int{10, 20, 30}, []int{20, 20})
			wins = [2]bool{}
			del := func(i int) func() {
				return func() { wins[i] = cursors[i].TryDelete() }
			}
			return sched.Scenario{
				Threads: []func(){del(0), del(1)},
				Check: func() error {
					if wins[0] == wins[1] {
						return fmt.Errorf("wins = %v, want exactly one", wins)
					}
					return checkList(m, l, cursors, []int{10, 30})
				},
			}
		}
		res, err := sched.Explore(sched.Options{}, build)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("delete race: %d schedules", res.Schedules)
	})
}

// TestExhaustiveInsertInsert explores two sorted inserts aimed at the
// same position; both must land, in order, under every schedule.
func TestExhaustiveInsertInsert(t *testing.T) {
	managers(t, func(t *testing.T, newM func() mm.Manager[int]) {
		var m mm.Manager[int]
		var l *core.List[int]
		var cursors []*core.Cursor[int]
		build := func(yield func()) sched.Scenario {
			m = newM()
			l, cursors = listFixture(m, yield, []int{10, 30}, []int{30, 30})
			return sched.Scenario{
				Threads: []func(){
					func() { insertSorted(l, cursors[0], 20) },
					func() { insertSorted(l, cursors[1], 25) },
				},
				Check: func() error {
					return checkList(m, l, cursors, []int{10, 20, 25, 30})
				},
			}
		}
		res, err := sched.Explore(sched.Options{}, build)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("insert/insert: %d schedules", res.Schedules)
	})
}
