// Package sched is a deterministic schedule explorer for small concurrent
// scenarios: it runs a handful of operations as cooperatively-scheduled
// threads that hand control back at every structural Compare&Swap window
// (core.List.SetYieldHook), and enumerates EVERY possible interleaving of
// those windows, validating an invariant after each complete schedule.
//
// This turns the paper's informal "consider the following interleaving"
// arguments (Figures 2 and 3) into exhaustive checks: instead of hoping a
// stress test stumbles onto the bad schedule, every schedule at
// Compare&Swap granularity is executed. The state space is the tree of
// scheduling decisions; it is explored depth-first by replaying decision
// prefixes, so scenario bodies must be deterministic (no randomness, no
// time, fresh structures per schedule).
package sched

import (
	"fmt"
)

// Scenario is one configuration to explore: the controlled threads and a
// final-state invariant.
type Scenario struct {
	// Threads run concurrently under the explorer's control; each is
	// started fresh for every schedule.
	Threads []func()
	// Check validates the final state once every thread has finished.
	Check func() error
}

// Options bounds the exploration.
type Options struct {
	// MaxSchedules caps how many schedules run (0 = 1<<20). If the space
	// is larger, Explore reports Truncated instead of running forever.
	MaxSchedules int
}

// Result reports what an exploration covered.
type Result struct {
	// Schedules is the number of complete interleavings executed.
	Schedules int
	// MaxDecisions is the largest number of scheduling decisions seen in
	// one schedule.
	MaxDecisions int
	// Truncated reports that MaxSchedules was reached before the space
	// was exhausted.
	Truncated bool
}

// A FailedScheduleError carries the decision prefix that produced a
// failing schedule, so it can be replayed.
type FailedScheduleError struct {
	Prefix []int
	Err    error
}

func (e *FailedScheduleError) Error() string {
	return fmt.Sprintf("sched: invariant failed under schedule %v: %v", e.Prefix, e.Err)
}

func (e *FailedScheduleError) Unwrap() error { return e.Err }

// Explore enumerates every interleaving of the scenario built by build.
// build is invoked once per schedule and receives the controlled yield
// function, which it must install as the yield hook of the structures
// under test before returning the scenario. Any failing Check aborts the
// exploration with a FailedScheduleError naming the schedule.
func Explore(opts Options, build func(yield func()) Scenario) (Result, error) {
	limit := opts.MaxSchedules
	if limit <= 0 {
		limit = 1 << 20
	}
	var (
		res    Result
		prefix []int
	)
	for {
		branches, err := runOne(build, prefix)
		res.Schedules++
		if len(branches) > res.MaxDecisions {
			res.MaxDecisions = len(branches)
		}
		if err != nil {
			return res, &FailedScheduleError{Prefix: append([]int(nil), prefix...), Err: err}
		}
		if res.Schedules >= limit {
			res.Truncated = true
			return res, nil
		}
		// Advance to the next schedule in depth-first order: find the
		// deepest decision whose choice can still be incremented.
		next := make([]int, len(branches))
		copy(next, prefix) // positions beyond the prefix were choice 0
		pos := len(branches) - 1
		for ; pos >= 0; pos-- {
			if next[pos]+1 < branches[pos] {
				next[pos]++
				prefix = next[:pos+1]
				break
			}
		}
		if pos < 0 {
			return res, nil // space exhausted
		}
	}
}

// Replay runs the single schedule named by prefix (as reported in a
// FailedScheduleError) and returns its Check result.
func Replay(build func(yield func()) Scenario, prefix []int) error {
	_, err := runOne(build, prefix)
	return err
}

type event struct {
	tid  int
	done bool
}

// controller serializes the scenario's threads: exactly one runs at a
// time; yield hands control back to the scheduling loop.
type controller struct {
	resume  []chan struct{}
	events  chan event
	current int // tid of the running controlled thread, or -1
}

// yield is the hook installed into the structures under test. Calls made
// outside any controlled thread (scenario setup, final checks) are
// no-ops; only one controlled thread runs at a time, so reading current
// is race-free.
func (c *controller) yield() {
	tid := c.current
	if tid < 0 {
		return
	}
	c.events <- event{tid: tid}
	<-c.resume[tid]
}

// runOne executes one schedule: decisions beyond the prefix default to
// choice 0. It returns the branching factor at every decision point (for
// the enumerator) and the scenario's Check error.
func runOne(build func(yield func()) Scenario, prefix []int) (branches []int, err error) {
	c := &controller{
		events:  make(chan event),
		current: -1,
	}
	scen := build(c.yield)
	n := len(scen.Threads)
	if n == 0 {
		return nil, scen.Check()
	}
	c.resume = make([]chan struct{}, n)
	finished := make([]bool, n)
	for i := range scen.Threads {
		c.resume[i] = make(chan struct{})
		go func(i int) {
			<-c.resume[i] // wait to be scheduled for the first time
			scen.Threads[i]()
			c.events <- event{tid: i, done: true}
		}(i)
	}

	alive := n
	step := 0
	for alive > 0 {
		enabled := make([]int, 0, n)
		for i := 0; i < n; i++ {
			if !finished[i] {
				enabled = append(enabled, i)
			}
		}
		choice := 0
		if step < len(prefix) {
			choice = prefix[step]
			if choice >= len(enabled) {
				// A stale prefix from a diverging schedule tree; clamp.
				choice = len(enabled) - 1
			}
		}
		branches = append(branches, len(enabled))
		tid := enabled[choice]
		c.current = tid
		c.resume[tid] <- struct{}{}
		ev := <-c.events
		c.current = -1
		if ev.done {
			finished[ev.tid] = true
			alive--
		}
		step++
	}
	return branches, scen.Check()
}
