package sched

import (
	"errors"
	"fmt"
	"testing"
)

// TestEnumeratesAllInterleavings checks the enumerator itself: two
// threads with fixed yield counts must produce exactly the binomial
// number of schedules.
func TestEnumeratesAllInterleavings(t *testing.T) {
	tests := []struct {
		yieldsA, yieldsB int
		want             int // C(a+b+2, a+1): interleavings of a+1 and b+1 segments
	}{
		{0, 0, 2},  // each thread is one atomic segment: AB or BA
		{1, 0, 3},  // A has two segments: AAB, ABA, BAA
		{1, 1, 6},  // C(4,2)
		{2, 2, 20}, // C(6,3)
	}
	for _, tt := range tests {
		t.Run(fmt.Sprintf("%dx%d", tt.yieldsA, tt.yieldsB), func(t *testing.T) {
			seen := make(map[string]bool)
			build := func(yield func()) Scenario {
				var trace []byte
				run := func(name byte, yields int) func() {
					return func() {
						trace = append(trace, name)
						for i := 0; i < yields; i++ {
							yield()
							trace = append(trace, name)
						}
					}
				}
				return Scenario{
					Threads: []func(){run('A', tt.yieldsA), run('B', tt.yieldsB)},
					Check: func() error {
						seen[string(trace)] = true
						return nil
					},
				}
			}
			res, err := Explore(Options{}, build)
			if err != nil {
				t.Fatal(err)
			}
			if res.Schedules != tt.want {
				t.Fatalf("ran %d schedules, want %d", res.Schedules, tt.want)
			}
			if len(seen) != tt.want {
				t.Fatalf("observed %d distinct traces, want %d (duplicate schedules)", len(seen), tt.want)
			}
		})
	}
}

// TestFailingScheduleIsReportedAndReplayable plants an invariant that
// fails only under one specific interleaving and checks that Explore
// finds it and that Replay reproduces it.
func TestFailingScheduleIsReportedAndReplayable(t *testing.T) {
	errPlanted := errors.New("planted")
	build := func(yield func()) Scenario {
		shared := 0
		return Scenario{
			Threads: []func(){
				func() { // A: increment in two racy halves
					v := shared
					yield()
					shared = v + 1
				},
				func() { // B
					v := shared
					yield()
					shared = v + 1
				},
			},
			Check: func() error {
				if shared != 2 {
					return errPlanted // the classic lost update
				}
				return nil
			},
		}
	}
	_, err := Explore(Options{}, build)
	var fse *FailedScheduleError
	if !errors.As(err, &fse) {
		t.Fatalf("Explore = %v, want FailedScheduleError (the lost update must be found)", err)
	}
	if !errors.Is(err, errPlanted) {
		t.Fatal("cause not preserved")
	}
	if got := Replay(build, fse.Prefix); !errors.Is(got, errPlanted) {
		t.Fatalf("Replay(%v) = %v, want the planted failure", fse.Prefix, got)
	}
}

func TestTruncationCap(t *testing.T) {
	build := func(yield func()) Scenario {
		busy := func() {
			for i := 0; i < 6; i++ {
				yield()
			}
		}
		return Scenario{
			Threads: []func(){busy, busy},
			Check:   func() error { return nil },
		}
	}
	res, err := Explore(Options{MaxSchedules: 10}, build)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || res.Schedules != 10 {
		t.Fatalf("res = %+v, want truncated at 10", res)
	}
}

func TestEmptyScenario(t *testing.T) {
	res, err := Explore(Options{}, func(func()) Scenario {
		return Scenario{Check: func() error { return nil }}
	})
	if err != nil || res.Schedules != 1 {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}
