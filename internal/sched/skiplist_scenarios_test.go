package sched_test

import (
	"fmt"
	"testing"

	"valois/internal/mm"
	"valois/internal/sched"
	"valois/internal/skiplist"
)

// Exhaustive exploration of the skip list's cross-level races: towers are
// built bottom-up while deletions tear them down top-down (§4.1), so an
// insertion and a deletion of the same key can interleave anywhere in
// between. The bottom level is authoritative; whatever the schedule, the
// outcome visible through Find must agree with the operations' return
// values.

func skipModes(t *testing.T, f func(t *testing.T, mode mm.Mode)) {
	t.Helper()
	t.Run("gc", func(t *testing.T) { f(t, mm.ModeGC) })
	t.Run("rc", func(t *testing.T) { f(t, mm.ModeRC) })
	t.Run("ebr", func(t *testing.T) { f(t, mm.ModeEBR) })
}

// TestExhaustiveSkipListDeleteVsReinsert races Delete(k) against a
// re-Insert(k) of a key that is present with a multi-level tower: the
// deletion tears the tower down top-to-bottom while the insertion tries
// to publish a new bottom cell and build a new tower — the §4.1
// "insertions bottom-up, deletions top-down" interaction. Under every
// schedule the delete must win its key exactly once, the insert succeeds
// iff it linearizes after the bottom-level removal, and Find must agree.
func TestExhaustiveSkipListDeleteVsReinsert(t *testing.T) {
	skipModes(t, func(t *testing.T, mode mm.Mode) {
		var s *skiplist.SkipList[int, int]
		var inserted, deleted bool
		build := func(yield func()) sched.Scenario {
			// Fixed seed so key 20's original tower spans two levels.
			s = skiplist.New[int, int](mode, skiplist.WithMaxLevel(3), skiplist.WithSeed(3))
			s.Insert(10, 10)
			s.Insert(20, 20)
			s.Insert(30, 30)
			s.SetYieldHook(yield)
			inserted, deleted = false, false
			return sched.Scenario{
				Threads: []func(){
					func() { deleted = s.Delete(20) },
					func() { inserted = s.Insert(20, 99) },
				},
				Check: func() error {
					s.SetYieldHook(nil)
					if !deleted {
						return fmt.Errorf("Delete(20) returned false for a present key")
					}
					v, present := s.Find(20)
					if present != inserted {
						return fmt.Errorf("present=%v but inserted=%v", present, inserted)
					}
					if present && v != 99 {
						return fmt.Errorf("Find(20) = %d, want the re-inserted 99", v)
					}
					// The authoritative bottom level must be structurally
					// sound under every schedule.
					if err := s.Level(0).CheckQuiescent(); err != nil {
						return err
					}
					for _, k := range []int{10, 30} {
						if _, ok := s.Find(k); !ok {
							return fmt.Errorf("bystander key %d lost", k)
						}
					}
					return nil
				},
			}
		}
		res, err := sched.Explore(sched.Options{MaxSchedules: 400_000}, build)
		if err != nil {
			t.Fatal(err)
		}
		if res.Truncated {
			t.Fatal("exploration truncated; raise the cap")
		}
		if res.Schedules < 20 {
			t.Fatalf("only %d schedules; the scenario is not interleaving", res.Schedules)
		}
		t.Logf("skiplist delete vs reinsert: %d schedules, ≤%d decisions", res.Schedules, res.MaxDecisions)
	})
}

// TestExhaustiveSkipListDeleteMinRace races two DeleteMins over a
// two-item structure: every schedule must hand out each item exactly once
// and in some order consistent with priorities.
func TestExhaustiveSkipListDeleteMinRace(t *testing.T) {
	skipModes(t, func(t *testing.T, mode mm.Mode) {
		var s *skiplist.SkipList[int, int]
		type got struct {
			k  int
			ok bool
		}
		var res1, res2 got
		build := func(yield func()) sched.Scenario {
			s = skiplist.New[int, int](mode, skiplist.WithMaxLevel(2), skiplist.WithSeed(1))
			s.Insert(10, 10)
			s.Insert(20, 20)
			s.SetYieldHook(yield)
			res1, res2 = got{}, got{}
			return sched.Scenario{
				Threads: []func(){
					func() { k, _, ok := s.DeleteMin(); res1 = got{k, ok} },
					func() { k, _, ok := s.DeleteMin(); res2 = got{k, ok} },
				},
				Check: func() error {
					s.SetYieldHook(nil)
					if !res1.ok || !res2.ok {
						return fmt.Errorf("results %v %v: both DeleteMins must succeed on 2 items", res1, res2)
					}
					if res1.k == res2.k {
						return fmt.Errorf("both extracted %d", res1.k)
					}
					if res1.k+res2.k != 30 {
						return fmt.Errorf("extracted %d and %d, want 10 and 20", res1.k, res2.k)
					}
					if s.Len() != 0 {
						return fmt.Errorf("Len = %d after draining, want 0", s.Len())
					}
					return s.Level(0).CheckQuiescent()
				},
			}
		}
		exp, err := sched.Explore(sched.Options{MaxSchedules: 400_000}, build)
		if err != nil {
			t.Fatal(err)
		}
		if exp.Truncated {
			t.Fatal("exploration truncated; raise the cap")
		}
		t.Logf("skiplist DeleteMin race: %d schedules, ≤%d decisions", exp.Schedules, exp.MaxDecisions)
	})
}
