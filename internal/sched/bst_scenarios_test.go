package sched_test

import (
	"fmt"
	"sort"
	"testing"

	"valois/internal/bst"
	"valois/internal/mm"
	"valois/internal/sched"
)

// Exhaustive exploration of the tree's deletion protocol (§4.2,
// Figure 14) — the most intricate code in the repository. Yield points
// sit before every structural Compare&Swap, at the deletion claim, and at
// each traversal hop, so searches interleave with every phase of a
// deletion: claim, short-circuit, subtree move, splice.

func treeModes(t *testing.T, f func(t *testing.T, mode mm.Mode)) {
	t.Helper()
	t.Run("gc", func(t *testing.T) { f(t, mm.ModeGC) })
	t.Run("rc", func(t *testing.T) { f(t, mm.ModeRC) })
	t.Run("ebr", func(t *testing.T) { f(t, mm.ModeEBR) })
}

func checkTree(tr *bst.Tree[int, int], want []int) error {
	if err := tr.CheckQuiescent(); err != nil {
		return err
	}
	got := tr.Keys()
	if len(got) != len(want) {
		return fmt.Errorf("keys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("keys = %v, want %v", got, want)
		}
	}
	for _, k := range want {
		if v, ok := tr.Find(k); !ok || v != k {
			return fmt.Errorf("Find(%d) = %d,%v after quiescence", k, v, ok)
		}
	}
	// RC leak checks live in bst's own white-box tests; the item type
	// parameter is unexported, so the manager cannot be downcast here.
	return nil
}

func buildTree(mode mm.Mode, yield func(), keys ...int) *bst.Tree[int, int] {
	tr := bst.New[int, int](mode)
	for _, k := range keys {
		if !tr.Insert(k, k) {
			panic("sched fixture: tree insert failed")
		}
	}
	tr.SetYieldHook(yield)
	return tr
}

// TestExhaustiveTreeTwoChildrenDeleteVsFind explores every interleaving
// of a two-children deletion (the Figure 14 subtree move) with searches
// for the keys that survive: the searches must never miss.
func TestExhaustiveTreeTwoChildrenDeleteVsFind(t *testing.T) {
	treeModes(t, func(t *testing.T, mode mm.Mode) {
		var tr *bst.Tree[int, int]
		var found1, found3, deleted bool
		build := func(yield func()) sched.Scenario {
			// 2 is the root with two children: deleting it exercises the
			// in-order-successor move.
			tr = buildTree(mode, yield, 2, 1, 3)
			found1, found3, deleted = false, false, false
			return sched.Scenario{
				Threads: []func(){
					func() { deleted = tr.Delete(2) },
					func() {
						_, found1 = tr.Find(1)
						_, found3 = tr.Find(3)
					},
				},
				Check: func() error {
					tr.SetYieldHook(nil)
					if !deleted {
						return fmt.Errorf("Delete(2) returned false")
					}
					if !found1 || !found3 {
						return fmt.Errorf("concurrent Find missed a live key: 1=%v 3=%v", found1, found3)
					}
					return checkTree(tr, []int{1, 3})
				},
			}
		}
		res, err := sched.Explore(sched.Options{MaxSchedules: 300_000}, build)
		if err != nil {
			t.Fatal(err)
		}
		if res.Truncated {
			t.Fatal("exploration truncated; raise the cap")
		}
		t.Logf("two-children delete vs finds: %d schedules, ≤%d decisions", res.Schedules, res.MaxDecisions)
	})
}

// TestExhaustiveTreeDeleteVsInsert explores a deletion racing an
// insertion that lands in the subtree being restructured.
func TestExhaustiveTreeDeleteVsInsert(t *testing.T) {
	treeModes(t, func(t *testing.T, mode mm.Mode) {
		var tr *bst.Tree[int, int]
		var deleted, inserted bool
		build := func(yield func()) sched.Scenario {
			tr = buildTree(mode, yield, 2, 1, 4)
			deleted, inserted = false, false
			return sched.Scenario{
				Threads: []func(){
					func() { deleted = tr.Delete(2) },     // root, two children
					func() { inserted = tr.Insert(3, 3) }, // lands under 4 (or the moved subtree)
				},
				Check: func() error {
					tr.SetYieldHook(nil)
					if !deleted || !inserted {
						return fmt.Errorf("deleted=%v inserted=%v, want both", deleted, inserted)
					}
					return checkTree(tr, []int{1, 3, 4})
				},
			}
		}
		res, err := sched.Explore(sched.Options{MaxSchedules: 300_000}, build)
		if err != nil {
			t.Fatal(err)
		}
		if res.Truncated {
			t.Fatal("exploration truncated; raise the cap")
		}
		t.Logf("delete vs insert: %d schedules, ≤%d decisions", res.Schedules, res.MaxDecisions)
	})
}

// TestExhaustiveTreeAdjacentDeletes explores two deletions racing on a
// parent and its child.
func TestExhaustiveTreeAdjacentDeletes(t *testing.T) {
	treeModes(t, func(t *testing.T, mode mm.Mode) {
		var tr *bst.Tree[int, int]
		var d1, d2 bool
		build := func(yield func()) sched.Scenario {
			tr = buildTree(mode, yield, 3, 1, 2, 4) // 1 is 3's left child, 2 is 1's right child
			d1, d2 = false, false
			return sched.Scenario{
				Threads: []func(){
					func() { d1 = tr.Delete(1) },
					func() { d2 = tr.Delete(2) },
				},
				Check: func() error {
					tr.SetYieldHook(nil)
					if !d1 || !d2 {
						return fmt.Errorf("d1=%v d2=%v, want both true", d1, d2)
					}
					return checkTree(tr, []int{3, 4})
				},
			}
		}
		res, err := sched.Explore(sched.Options{MaxSchedules: 300_000}, build)
		if err != nil {
			t.Fatal(err)
		}
		if res.Truncated {
			t.Fatal("exploration truncated; raise the cap")
		}
		t.Logf("adjacent tree deletes: %d schedules, ≤%d decisions", res.Schedules, res.MaxDecisions)
	})
}

// TestExhaustiveTreeSameKeyDelete explores two deleters of the same key:
// exactly one must win under every schedule (the claim CAS arbitrates).
func TestExhaustiveTreeSameKeyDelete(t *testing.T) {
	treeModes(t, func(t *testing.T, mode mm.Mode) {
		var tr *bst.Tree[int, int]
		var wins [2]bool
		build := func(yield func()) sched.Scenario {
			tr = buildTree(mode, yield, 2, 1, 3)
			wins = [2]bool{}
			return sched.Scenario{
				Threads: []func(){
					func() { wins[0] = tr.Delete(2) },
					func() { wins[1] = tr.Delete(2) },
				},
				Check: func() error {
					tr.SetYieldHook(nil)
					if wins[0] == wins[1] {
						return fmt.Errorf("wins = %v, want exactly one", wins)
					}
					keys := tr.Keys()
					want := []int{1, 3}
					if !sort.IntsAreSorted(keys) || len(keys) != 2 || keys[0] != want[0] || keys[1] != want[1] {
						return fmt.Errorf("keys = %v, want %v", keys, want)
					}
					return tr.CheckQuiescent()
				},
			}
		}
		res, err := sched.Explore(sched.Options{MaxSchedules: 300_000}, build)
		if err != nil {
			t.Fatal(err)
		}
		if res.Truncated {
			t.Fatal("exploration truncated; raise the cap")
		}
		t.Logf("same-key tree deletes: %d schedules, ≤%d decisions", res.Schedules, res.MaxDecisions)
	})
}
