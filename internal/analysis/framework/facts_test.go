package framework

import (
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// countFact is a toy object fact carrying an arbitrary payload.
type countFact struct{ N int }

func (*countFact) AFact() {}

// writeFixture drops source files under dir and returns their paths.
func writeFixture(t *testing.T, dir, name, src string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestFactsDiamond builds a three-package diamond (top imports mid and
// base, mid imports base) out of LoadFiles fixtures and checks that facts
// exported while analyzing base are importable from both edges of the
// diamond — in particular that top sees exactly one set of facts for base,
// not two conflicting ones.
func TestFactsDiamond(t *testing.T) {
	dir := t.TempDir()
	basePath := writeFixture(t, dir, "base/base.go", `package base

func Plus(a, b int) int { return a + b }

func Minus(a, b int) int { return a - b }
`)
	midPath := writeFixture(t, dir, "mid/mid.go", `package mid

import "base"

func Via(x int) int { return base.Plus(x, 1) }
`)
	topPath := writeFixture(t, dir, "top/top.go", `package top

import (
	"base"
	"mid"
)

func Use(x int) int { return base.Plus(x, 2) + mid.Via(x) }
`)

	ld := NewLoader("")
	facts := NewFactStore()

	// The analyzer exports a fact (parameter count) for every declared
	// function, and records which callees' facts it can import.
	imported := make(map[string]int)
	toy := &Analyzer{
		Name:      "toyfacts",
		Doc:       "export a parameter-count fact per function",
		FactTypes: []Fact{(*countFact)(nil)},
		Run: func(pass *Pass) (any, error) {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.FuncDecl:
						if fn := funcObj(pass, n.Name); fn != nil {
							pass.ExportObjectFact(fn, &countFact{N: n.Type.Params.NumFields()})
						}
					case *ast.CallExpr:
						if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
							if fn := funcObj(pass, sel.Sel); fn != nil {
								var got countFact
								if pass.ImportObjectFact(fn, &got) {
									imported[ObjectKey(fn)] = got.N
								}
							}
						}
					}
					return true
				})
			}
			return nil, nil
		},
	}

	// Analyze in dependency order, as the driver does.
	for _, p := range []struct {
		pkgPath string
		file    string
	}{{"base", basePath}, {"mid", midPath}, {"top", topPath}} {
		loaded, err := ld.LoadFiles(p.pkgPath, p.file)
		if err != nil {
			t.Fatalf("loading %s: %v", p.pkgPath, err)
		}
		if len(loaded.Errors) > 0 {
			t.Fatalf("%s has errors: %v", p.pkgPath, loaded.Errors)
		}
		pass := &Pass{
			Analyzer:  toy,
			Fset:      ld.Fset(),
			Files:     loaded.Syntax,
			Pkg:       loaded.Types,
			TypesInfo: loaded.TypesInfo,
			Facts:     facts,
			Report:    func(Diagnostic) {},
		}
		if _, err := toy.Run(pass); err != nil {
			t.Fatalf("analyzing %s: %v", p.pkgPath, err)
		}
	}

	want := map[string]int{
		"base.Plus": 2, // imported by both mid and top — the diamond joins here
		"mid.Via":   1, // imported by top
	}
	if !reflect.DeepEqual(imported, want) {
		t.Fatalf("imported facts = %v, want %v", imported, want)
	}

	// base.Minus is never called, but its fact must still be in the store;
	// the store keys must be the stable ObjectKey strings.
	keys := facts.Keys()
	wantKeys := []string{"base.Minus", "base.Plus", "mid.Via", "top.Use"}
	var gotKeys []string
	for _, k := range keys {
		gotKeys = append(gotKeys, k)
	}
	if !reflect.DeepEqual(gotKeys, wantKeys) {
		t.Fatalf("fact store keys = %v, want %v", gotKeys, wantKeys)
	}
}

// funcObj resolves an identifier to the function it defines or uses.
func funcObj(pass *Pass, id *ast.Ident) *types.Func {
	if fn, ok := pass.TypesInfo.Defs[id].(*types.Func); ok {
		return fn
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// TestRunDeterministicAcrossRuns drives the full Run pipeline twice with an
// analyzer that deliberately reports while iterating a map — the classic
// source of run-to-run jitter — and requires byte-identical diagnostics.
func TestRunDeterministicAcrossRuns(t *testing.T) {
	mk := func() *Analyzer {
		return &Analyzer{
			Name: "toymap",
			Doc:  "report every function, iterating a map (determinism probe)",
			Run: func(pass *Pass) (any, error) {
				found := make(map[string]*ast.FuncDecl)
				for _, f := range pass.Files {
					for _, d := range f.Decls {
						if fn, ok := d.(*ast.FuncDecl); ok {
							found[fn.Name.Name] = fn
						}
					}
				}
				for name, fn := range found {
					pass.Reportf(fn.Pos(), "func %s", name)
				}
				return nil, nil
			},
		}
	}
	run := func() []RunDiagnostic {
		diags, err := Run(NewLoader(""), []*Analyzer{mk()}, []string{"valois/internal/primitive"})
		if err != nil {
			t.Fatal(err)
		}
		return diags
	}
	first, second := run(), run()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("diagnostics differ between runs:\n%v\n%v", first, second)
	}
	if len(first) == 0 {
		t.Fatal("probe analyzer reported nothing")
	}
}
