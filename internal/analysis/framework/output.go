package framework

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
)

// jsonDiagnostic is the machine-readable shape of one finding, stable for
// CI consumers: {"file", "line", "col", "analyzer", "category", "message"}.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Category string `json:"category,omitempty"`
	Message  string `json:"message"`
}

// WriteJSON emits the diagnostics as an indented JSON array (an empty run
// prints "[]", never null).
func WriteJSON(w io.Writer, diags []RunDiagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:     relToCwd(d.Position.Filename),
			Line:     d.Position.Line,
			Col:      d.Position.Column,
			Analyzer: d.Analyzer,
			Category: d.Category,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(out)
}

// Minimal SARIF 2.1.0 model: one run of one tool, one rule per analyzer,
// one result per diagnostic. Only the properties CI annotation consumers
// need are emitted.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string        `json:"id"`
	ShortDescription sarifTextPart `json:"shortDescription"`
}

type sarifTextPart struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID     string          `json:"ruleId"`
	Level      string          `json:"level"`
	Message    sarifTextPart   `json:"message"`
	Locations  []sarifLocation `json:"locations"`
	Properties map[string]any  `json:"properties,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF emits the diagnostics as a SARIF 2.1.0 log, with one rule per
// analyzer that ran (so a clean run still documents its rule set) and the
// diagnostic category carried in each result's property bag.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, diags []RunDiagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifTextPart{Text: firstLine(a.Doc)},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		r := sarifResult{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarifTextPart{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI: filepath.ToSlash(relToCwd(d.Position.Filename)),
					},
					Region: sarifRegion{
						StartLine:   d.Position.Line,
						StartColumn: d.Position.Column,
					},
				},
			}},
		}
		if d.Category != "" {
			r.Properties = map[string]any{"category": d.Category}
		}
		results = append(results, r)
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "lfcheck", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(log)
}

// relToCwd shortens an absolute file path to be relative to the working
// directory when possible, keeping CI output and SARIF URIs stable across
// checkouts.
func relToCwd(file string) string {
	cwd, err := os.Getwd()
	if err != nil {
		return file
	}
	rel, err := filepath.Rel(cwd, file)
	if err != nil || len(rel) >= len(file) {
		return file
	}
	return rel
}
