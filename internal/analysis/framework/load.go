package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// Package is a loaded, type-checked package, mirroring packages.Package.
type Package struct {
	PkgPath   string
	Name      string
	Dir       string // the package's source directory, as reported by go list
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info

	// DepOnly marks a package loaded by LoadClosure only because a
	// requested package depends on it: it is analyzed for facts but its
	// diagnostics are not reported.
	DepOnly bool

	// Imports lists the in-module packages this one imports (standard
	// library excluded), sorted; the parallel driver schedules along
	// these edges and the incremental cache hashes across them.
	Imports []string

	// GoFiles are the package's source files (absolute paths), in go
	// list order; the incremental cache hashes their contents.
	GoFiles []string

	// Errors holds parse and type errors encountered in this package.
	// Dependencies must check cleanly; root packages tolerate errors so a
	// driver can report them all at once.
	Errors []error
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	Export     string // compiled export data, from go list -export
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *listError
}

type listError struct {
	Err string
}

// Loader loads packages by shelling out to `go list` for metadata,
// type-checking in-module packages from source and importing
// standard-library dependencies from compiled export data (so packages
// like net, whose source needs cgo or GOROOT vendoring, still resolve).
// A Loader caches checked packages, so loading several patterns or
// fixture packages that share dependencies pays each import cost once.
type Loader struct {
	// Dir is the working directory for `go list`; empty means the
	// process's current directory. Patterns like ./... are resolved
	// relative to it.
	Dir string

	fset     *token.FileSet
	meta     map[string]*listPkg
	pkgs     map[string]*types.Package
	roots    map[string]*Package
	checking map[string]bool
	gcImp    types.Importer // export-data importer for standard packages
}

// NewLoader returns a Loader rooted at dir.
func NewLoader(dir string) *Loader {
	return &Loader{
		Dir:      dir,
		fset:     token.NewFileSet(),
		meta:     make(map[string]*listPkg),
		pkgs:     make(map[string]*types.Package),
		roots:    make(map[string]*Package),
		checking: make(map[string]bool),
	}
}

// Fset returns the loader's file set, shared by all packages it loads.
func (ld *Loader) Fset() *token.FileSet { return ld.fset }

// Load resolves the given go-list patterns (e.g. "./...") and returns the
// matched packages, parsed and type-checked, in dependency order
// (dependencies before importers). Dependencies are type-checked too but
// not returned.
func (ld *Loader) Load(patterns ...string) ([]*Package, error) {
	return ld.load(patterns, false)
}

// LoadClosure is Load extended to the in-module dependency closure: every
// non-standard-library package the matched packages depend on is loaded
// too, fully checked with syntax, marked DepOnly, and placed before its
// importers. Interprocedural drivers use this order to compute function
// facts bottom-up.
func (ld *Loader) LoadClosure(patterns ...string) ([]*Package, error) {
	return ld.load(patterns, true)
}

func (ld *Loader) load(patterns []string, closure bool) ([]*Package, error) {
	if err := ld.list(patterns); err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, m := range ld.topoOrder(closure) {
		pkg, err := ld.checkRoot(m)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", m.ImportPath, err)
		}
		pkg.DepOnly = m.DepOnly
		pkg.Imports = ld.moduleImports(m)
		pkg.GoFiles = absFiles(m)
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// moduleImports returns m's in-module (non-standard-library) imports,
// sorted.
func (ld *Loader) moduleImports(m *listPkg) []string {
	var deps []string
	for _, imp := range m.Imports {
		if d := ld.meta[imp]; d != nil && !d.Standard {
			deps = append(deps, imp)
		}
	}
	sort.Strings(deps)
	return deps
}

// absFiles returns m's GoFiles as absolute paths.
func absFiles(m *listPkg) []string {
	files := make([]string, 0, len(m.GoFiles))
	for _, name := range m.GoFiles {
		if m.Dir != "" && !filepath.IsAbs(name) {
			name = filepath.Join(m.Dir, name)
		}
		files = append(files, name)
	}
	return files
}

// topoOrder returns the metadata of the packages to check, dependencies
// first. With closure set it includes every non-standard dependency of the
// roots; otherwise only the roots themselves, still in dependency order.
// Ties are broken by import path, so the order is deterministic.
func (ld *Loader) topoOrder(closure bool) []*listPkg {
	var roots []*listPkg
	for _, m := range ld.meta {
		if !m.DepOnly {
			roots = append(roots, m)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })

	var order []*listPkg
	seen := make(map[string]bool)
	var visit func(m *listPkg)
	visit = func(m *listPkg) {
		if seen[m.ImportPath] {
			return
		}
		seen[m.ImportPath] = true
		imports := append([]string(nil), m.Imports...)
		sort.Strings(imports)
		for _, imp := range imports {
			if d := ld.meta[imp]; d != nil && !d.Standard {
				visit(d)
			}
		}
		order = append(order, m)
	}
	for _, r := range roots {
		visit(r)
	}
	if closure {
		return order
	}
	var onlyRoots []*listPkg
	for _, m := range order {
		if !m.DepOnly {
			onlyRoots = append(onlyRoots, m)
		}
	}
	return onlyRoots
}

// LoadFiles parses and type-checks the given Go files as a single package
// (used by the analysistest harness for testdata fixtures, which `go list`
// deliberately ignores). Imports resolve through the loader as usual, and
// the checked package is registered under pkgPath, so a later LoadFiles
// fixture may import an earlier one by that path — which is how the facts
// tests build multi-package dependency graphs out of fixtures.
func (ld *Loader) LoadFiles(pkgPath string, filenames ...string) (*Package, error) {
	m := &listPkg{ImportPath: pkgPath, GoFiles: filenames}
	return ld.checkRoot(m)
}

// list runs `go list -e -json -deps -export` on the patterns and merges
// the result into ld.meta. The -export flag records the path of each
// dependency's compiled export data, which Import uses for standard
// packages in place of type-checking their source.
func (ld *Loader) list(patterns []string) error {
	args := append([]string{"list", "-e", "-json", "-deps", "-export"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = ld.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("go list: %v", err)
	}
	dec := json.NewDecoder(out)
	var decodeErr error
	for {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			if err != io.EOF {
				decodeErr = err
			}
			break
		}
		if old, ok := ld.meta[p.ImportPath]; ok {
			// A package listed once as a dependency and once as a root is
			// a root.
			old.DepOnly = old.DepOnly && p.DepOnly
			continue
		}
		pp := p
		ld.meta[p.ImportPath] = &pp
	}
	if err := cmd.Wait(); err != nil {
		return fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	if decodeErr != nil {
		return fmt.Errorf("go list %v: decoding output: %v", patterns, decodeErr)
	}
	return nil
}

// Import implements types.Importer. Standard-library packages resolve
// from their compiled export data (their source may require cgo or
// GOROOT-internal vendoring, neither of which source checking handles);
// everything else is type-checked from source, recursively.
func (ld *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	m := ld.meta[path]
	if m == nil {
		// A fixture import outside any previously listed closure:
		// resolve it on demand.
		if err := ld.list([]string{path}); err != nil {
			return nil, err
		}
		if m = ld.meta[path]; m == nil {
			return nil, fmt.Errorf("package %q not found by go list", path)
		}
	}
	if m.Standard && m.Export != "" {
		pkg, err := ld.importExportData(path)
		if err != nil {
			return nil, fmt.Errorf("importing %s from export data: %v", path, err)
		}
		ld.pkgs[path] = pkg
		return pkg, nil
	}
	if ld.checking[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	ld.checking[path] = true
	defer delete(ld.checking, path)

	pkg, errs := ld.check(m, nil)
	if len(errs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", path, errs[0])
	}
	ld.pkgs[path] = pkg
	return pkg, nil
}

// importExportData imports a package from compiled export data via the gc
// importer, looking the data file up in the go list metadata (listing on
// demand for paths first seen inside another package's export data). The
// importer instance is shared so packages referenced from several export
// files resolve to one *types.Package.
func (ld *Loader) importExportData(path string) (*types.Package, error) {
	if ld.gcImp == nil {
		lookup := func(p string) (io.ReadCloser, error) {
			m := ld.meta[p]
			if m == nil || m.Export == "" {
				if err := ld.list([]string{p}); err != nil {
					return nil, err
				}
				m = ld.meta[p]
			}
			if m == nil || m.Export == "" {
				return nil, fmt.Errorf("no export data for %q", p)
			}
			return os.Open(m.Export)
		}
		ld.gcImp = importer.ForCompiler(ld.fset, "gc", lookup)
	}
	return ld.gcImp.Import(path)
}

// checkRoot type-checks a root package, capturing syntax and type
// information for analysis. Parse and type errors are collected into the
// returned Package rather than failing the load. A cleanly checked package
// is cached both as a root (repeat loads return the same *Package) and as
// an importable dependency, so packages checked later in dependency order
// resolve their imports to this very instance.
func (ld *Loader) checkRoot(m *listPkg) (*Package, error) {
	if m.Error != nil {
		return nil, fmt.Errorf("%s", m.Error.Err)
	}
	if pkg, ok := ld.roots[m.ImportPath]; ok {
		return pkg, nil
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg := &Package{PkgPath: m.ImportPath, Dir: m.Dir, Fset: ld.fset, TypesInfo: info}
	tpkg, errs := ld.checkInto(m, info, &pkg.Syntax)
	pkg.Types = tpkg
	pkg.Errors = errs
	if tpkg != nil {
		pkg.Name = tpkg.Name()
	}
	if len(errs) == 0 && tpkg != nil && m.ImportPath != "" {
		ld.roots[m.ImportPath] = pkg
		if _, imported := ld.pkgs[m.ImportPath]; !imported {
			ld.pkgs[m.ImportPath] = tpkg
		}
	}
	return pkg, nil
}

// check type-checks a dependency (no syntax or info retained beyond what
// go/types needs internally).
func (ld *Loader) check(m *listPkg, info *types.Info) (*types.Package, []error) {
	return ld.checkInto(m, info, nil)
}

func (ld *Loader) checkInto(m *listPkg, info *types.Info, syntax *[]*ast.File) (*types.Package, []error) {
	var errs []error
	if m.Error != nil {
		errs = append(errs, fmt.Errorf("%s", m.Error.Err))
	}
	if len(m.CgoFiles) > 0 {
		return nil, []error{fmt.Errorf("package %s uses cgo, which the source loader does not support", m.ImportPath)}
	}
	var files []*ast.File
	for _, name := range m.GoFiles {
		if m.Dir != "" && !filepath.IsAbs(name) {
			name = filepath.Join(m.Dir, name)
		}
		f, err := parser.ParseFile(ld.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		files = append(files, f)
	}
	if syntax != nil {
		*syntax = files
	}
	conf := types.Config{
		Importer: ld,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			errs = append(errs, err)
		},
	}
	tpkg, _ := conf.Check(m.ImportPath, ld.fset, files, info)
	return tpkg, errs
}
