package framework

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"valois/internal/analysis/framework/cfg"
)

// Driver runs a set of analyzers over packages with the scheduling and
// caching upgrades the whole-tree CI loop needs:
//
//   - packages are analyzed in parallel, scheduled along the in-module
//     import graph so a package runs only after its dependencies (whose
//     facts it imports) have finished — a topological wave schedule with
//     at most Jobs packages in flight;
//   - with CacheDir set, each package's result (diagnostics plus exported
//     facts) is memoized under a content hash of its sources, its
//     in-module dependency closure's sources, and the analyzer suite's
//     names and versions, so a warm run skips every unchanged package;
//   - diagnostics are merged and sorted on every key (file, line, column,
//     analyzer, category, message), making the output byte-stable across
//     runs regardless of scheduling order or cache state.
//
// The zero value is not usable; populate Loader and Analyzers.
type Driver struct {
	Loader    *Loader
	Analyzers []*Analyzer

	// CacheDir enables the incremental result cache when non-empty. The
	// directory is created on demand; entries are content-addressed, so
	// concurrent runs sharing one directory are safe.
	CacheDir string

	// Jobs bounds how many packages are analyzed concurrently; <= 0
	// means GOMAXPROCS.
	Jobs int
}

// RunStats reports how much work a driver run performed, for the CLI's
// cache summary and the cache-correctness tests.
type RunStats struct {
	// Packages is the number of packages scheduled for analysis (after
	// the wildcard testdata skip).
	Packages int
	// Analyzed counts packages whose analyzers actually ran.
	Analyzed int
	// CacheHits counts packages restored from the warm cache instead of
	// being analyzed; Analyzed + CacheHits == Packages.
	CacheHits int
	// UsedAllows lists the //lfcheck:allow directives that suppressed at
	// least one diagnostic during this run (deduplicated, sorted). The
	// -debt -strict mode compares this against the directive inventory to
	// find suppressions that no longer suppress anything.
	UsedAllows []AllowUse
}

// AllowUse identifies one allow directive, by position and check name, that
// a run actually consulted to drop a diagnostic.
type AllowUse struct {
	File  string
	Line  int
	Check string
}

// pkgResult accumulates one package's outcome: its reportable diagnostics
// and the facts its passes exported.
type pkgResult struct {
	diags []RunDiagnostic
	facts []exportedFact
	// usedAllows are the directives that suppressed a diagnostic in this
	// package, deduplicated. They ride the cache so a warm run reports the
	// same usage a cold one would.
	usedAllows []allowKey
}

// Run loads the patterns and applies the driver's analyzers to every
// matched package. See Run (package function) for the loading, testdata,
// and suppression semantics, which are identical; this entry point adds
// parallelism, the incremental cache, and work counters.
func (d *Driver) Run(patterns ...string) ([]RunDiagnostic, RunStats, error) {
	var stats RunStats
	ld := d.Loader

	needFacts := false
	for _, a := range d.Analyzers {
		if len(a.FactTypes) > 0 {
			needFacts = true
		}
	}
	var loaded []*Package
	var err error
	if needFacts {
		loaded, err = ld.LoadClosure(patterns...)
	} else {
		loaded, err = ld.Load(patterns...)
	}
	if err != nil {
		return nil, stats, err
	}

	// The schedulable set, in the loader's deterministic topological
	// order (dependencies first).
	var pkgs []*Package
	for _, pkg := range loaded {
		if skipTestdata(ld, pkg, patterns) {
			continue
		}
		if len(pkg.Errors) > 0 {
			return nil, stats, fmt.Errorf("package %s did not type-check: %v", pkg.PkgPath, pkg.Errors[0])
		}
		pkgs = append(pkgs, pkg)
	}
	stats.Packages = len(pkgs)

	var cache *resultCache
	if d.CacheDir != "" {
		cache, err = newResultCache(d.CacheDir, ld, d.Analyzers)
		if err != nil {
			return nil, stats, err
		}
	}

	facts := NewFactStore()
	scheduled := make(map[string]*Package, len(pkgs))
	done := make(map[string]chan struct{}, len(pkgs))
	for _, pkg := range pkgs {
		scheduled[pkg.PkgPath] = pkg
		done[pkg.PkgPath] = make(chan struct{})
	}

	jobs := d.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, jobs)

	var (
		mu       sync.Mutex
		results  = make(map[string]*pkgResult, len(pkgs))
		analyzed atomic.Int64
		hits     atomic.Int64
		failed   atomic.Bool
		firstErr error
		errOnce  sync.Once
	)
	fail := func(err error) {
		failed.Store(true)
		errOnce.Do(func() { firstErr = err })
	}

	var wg sync.WaitGroup
	for _, pkg := range pkgs {
		wg.Add(1)
		go func(pkg *Package) {
			defer wg.Done()
			defer close(done[pkg.PkgPath])
			// Facts flow along import edges: wait for every scheduled
			// in-module dependency.
			for _, dep := range pkg.Imports {
				if ch, ok := done[dep]; ok {
					<-ch
				}
			}
			if failed.Load() {
				return
			}
			sem <- struct{}{}
			defer func() { <-sem }()

			if cache != nil {
				if res, ok := cache.load(pkg, facts); ok {
					hits.Add(1)
					mu.Lock()
					results[pkg.PkgPath] = res
					mu.Unlock()
					return
				}
			}
			res, err := d.analyzePackage(pkg, facts)
			if err != nil {
				fail(err)
				return
			}
			analyzed.Add(1)
			if cache != nil {
				cache.store(pkg, res)
			}
			mu.Lock()
			results[pkg.PkgPath] = res
			mu.Unlock()
		}(pkg)
	}
	wg.Wait()
	if failed.Load() {
		return nil, stats, firstErr
	}
	stats.Analyzed = int(analyzed.Load())
	stats.CacheHits = int(hits.Load())

	var diags []RunDiagnostic
	used := make(map[allowKey]bool)
	for _, pkg := range pkgs {
		if res := results[pkg.PkgPath]; res != nil {
			diags = append(diags, res.diags...)
			for _, k := range res.usedAllows {
				used[k] = true
			}
		}
	}
	for k := range used {
		stats.UsedAllows = append(stats.UsedAllows, AllowUse{File: k.file, Line: k.line, Check: k.check})
	}
	sort.Slice(stats.UsedAllows, func(i, j int) bool {
		a, b := stats.UsedAllows[i], stats.UsedAllows[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Check < b.Check
	})
	sortDiagnostics(diags)
	return diags, stats, nil
}

// analyzePackage runs every applicable analyzer over one package,
// returning its diagnostics and exported facts. It is called concurrently
// for independent packages; everything it touches is either package-local
// or (the fact store) internally synchronized.
func (d *Driver) analyzePackage(pkg *Package, facts *FactStore) (*pkgResult, error) {
	res := &pkgResult{}
	var allows map[allowKey]bool
	if !pkg.DepOnly {
		allows = collectAllows(pkg, &res.diags)
	}
	usedSet := make(map[allowKey]bool)
	// One CFG cache per package: every analyzer's pass shares the graphs
	// (passes run sequentially within a package, so no locking).
	cfgs := cfg.NewCache(pkg.TypesInfo)
	for _, a := range d.Analyzers {
		if pkg.DepOnly && len(a.FactTypes) == 0 {
			continue // dependency passes exist only to compute facts
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Facts:     facts,
			cfgs:      cfgs,
			exportHook: func(objKey string, fact Fact) {
				res.facts = append(res.facts, exportedFact{objKey: objKey, fact: fact})
			},
		}
		pass.Report = func(di Diagnostic) {
			if pkg.DepOnly {
				return
			}
			pos := pkg.Fset.Position(di.Pos)
			if key, ok := allowed(allows, pos, a.Name); ok {
				if !usedSet[key] {
					usedSet[key] = true
					res.usedAllows = append(res.usedAllows, key)
				}
				return
			}
			res.diags = append(res.diags, RunDiagnostic{
				Position: pos,
				Message:  di.Message,
				Analyzer: a.Name,
				Category: di.Category,
			})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.PkgPath, err)
		}
	}
	return res, nil
}

// sortDiagnostics orders diags on every key so the driver's output is
// byte-stable: position first, then analyzer, category, and message.
func sortDiagnostics(diags []RunDiagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := diags[i].Position, diags[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		if diags[i].Category != diags[j].Category {
			return diags[i].Category < diags[j].Category
		}
		return diags[i].Message < diags[j].Message
	})
}
