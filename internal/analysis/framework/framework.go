// Package framework is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis API surface that the lfcheck suite needs.
//
// The container this repository builds in has no module proxy access, so
// the canonical go/analysis machinery cannot be vendored. The subset here
// keeps the same shape — an Analyzer value with a Run(*Pass) function that
// reports Diagnostics — so each checker under internal/analysis can be
// ported to the real framework by swapping one import when the dependency
// becomes available. Package loading is built on `go list -json -deps` plus
// go/parser and go/types, type-checking the dependency closure from source
// (the approach of go/internal/srcimporter).
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"valois/internal/analysis/framework/cfg"
)

// Analyzer describes one static check, mirroring analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -checks filters.
	// It must be a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation; the first line is used as a
	// summary in the multichecker's usage text.
	Doc string

	// FactTypes lists the Fact types this analyzer exports or imports.
	// A non-empty list tells the driver the analyzer is interprocedural:
	// the in-module dependency closure of the requested packages is then
	// analyzed bottom-up (dependencies first) so facts flow from a package
	// to its importers.
	FactTypes []Fact

	// Version participates in the incremental cache key: bump it when the
	// analyzer's semantics change, so results cached under the old
	// behavior are invalidated even though no package source changed.
	// The empty string is a valid (initial) version.
	Version string

	// Run applies the analyzer to a package.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass provides one analyzer with the parsed, type-checked syntax of one
// package, mirroring analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts is the fact store shared by every pass of this driver run;
	// nil when the driver is not facts-enabled.
	Facts *FactStore

	// Report delivers a diagnostic to the driver.
	Report func(Diagnostic)

	// exportHook, when set by the driver, observes every exported fact so
	// the incremental cache can record which facts this package produced.
	exportHook func(objKey string, fact Fact)

	// cfgs memoizes per-function control-flow graphs. The driver shares
	// one cache across every analyzer's pass over a package (analyzers run
	// sequentially per package); when unset — e.g. under analysistest —
	// FuncCFG creates a pass-local one on first use.
	cfgs *cfg.Cache
}

// FuncCFG returns the control-flow graph of a function body in this
// package, built on first use and memoized for the rest of the package's
// analysis, so the path-sensitive analyzers share one graph per function.
func (p *Pass) FuncCFG(body *ast.BlockStmt) *cfg.Graph {
	if p.cfgs == nil {
		p.cfgs = cfg.NewCache(p.TypesInfo)
	}
	return p.cfgs.Get(body)
}

// Reportf reports a formatted diagnostic at pos with no category.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Categorizef reports a formatted diagnostic at pos carrying a category, a
// short stable slug ("leak", "double-release", "aba", ...) that output
// modes surface so CI can group findings within one analyzer.
func (p *Pass) Categorizef(category string, pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Category: category, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is a message associated with a source position.
type Diagnostic struct {
	Pos      token.Pos
	Category string // optional stable slug classifying the finding
	Message  string
}
