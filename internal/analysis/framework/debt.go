package framework

import (
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

// Directive is one //lfcheck:allow suppression found in the tree: a unit of
// accepted analyzer debt. The debt report inventories them so suppressions
// are revisited instead of accumulating silently.
type Directive struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Check  string `json:"check"`
	Reason string `json:"reason"`
	// AgeDays is the age of the containing file's last modification — a
	// proxy for how long the suppression has gone unrevisited.
	AgeDays   int  `json:"age_days"`
	Malformed bool `json:"malformed,omitempty"`
	// Stale marks a well-formed directive that suppressed nothing in the
	// strict-mode analysis run: the code it excused has been fixed or
	// deleted, so the suppression should be removed before it silently
	// excuses a future, unrelated finding on its line.
	Stale bool `json:"stale,omitempty"`
}

// MarkStale sets Stale on every well-formed directive that does not appear
// in used (the allow directives an analysis run actually consulted),
// returning how many it marked. Positions are compared after relativizing
// to the current directory, matching CollectDebt's rendering.
func MarkStale(dirs []Directive, used []AllowUse) int {
	consulted := make(map[string]bool, len(used))
	for _, u := range used {
		consulted[fmt.Sprintf("%s:%d:%s", relToCwd(u.File), u.Line, u.Check)] = true
	}
	stale := 0
	for i := range dirs {
		if dirs[i].Malformed {
			continue
		}
		if !consulted[fmt.Sprintf("%s:%d:%s", dirs[i].File, dirs[i].Line, dirs[i].Check)] {
			dirs[i].Stale = true
			stale++
		}
	}
	return stale
}

// CollectDebt scans the packages matching the patterns for //lfcheck:allow
// directives. It is a parse-only pass (comments need no type information),
// so it stays fast even on trees that do not type-check. Testdata packages
// are skipped under wildcard patterns, exactly like an analysis run.
func CollectDebt(ld *Loader, patterns []string) ([]Directive, error) {
	if err := ld.list(patterns); err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	dirs := []Directive{}
	for _, m := range ld.topoOrder(false) {
		if skipTestdataDir(ld, m.Dir, m.ImportPath, patterns) {
			continue
		}
		for _, file := range absFiles(m) {
			f, err := parser.ParseFile(fset, file, nil, parser.ParseComments|parser.SkipObjectResolution)
			if f == nil {
				return nil, fmt.Errorf("parsing %s: %v", file, err)
			}
			age := 0
			if fi, err := os.Stat(file); err == nil {
				age = int(time.Since(fi.ModTime()).Hours() / 24)
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, allowPrefix)
					if !ok {
						continue
					}
					pos := fset.Position(c.Pos())
					d := Directive{
						File:    relToCwd(pos.Filename),
						Line:    pos.Line,
						AgeDays: age,
					}
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						d.Malformed = true
						if len(fields) == 1 {
							d.Check = fields[0]
						}
					} else {
						d.Check = fields[0]
						d.Reason = strings.Join(fields[1:], " ")
					}
					dirs = append(dirs, d)
				}
			}
		}
	}
	sort.Slice(dirs, func(i, j int) bool {
		if dirs[i].File != dirs[j].File {
			return dirs[i].File < dirs[j].File
		}
		return dirs[i].Line < dirs[j].Line
	})
	return dirs, nil
}

// WriteDebtText renders the debt inventory for humans: a summary line, then
// one line per directive with its position, check, age, and reason.
func WriteDebtText(w io.Writer, dirs []Directive) error {
	byCheck := make(map[string]int)
	for _, d := range dirs {
		byCheck[d.Check]++
	}
	checks := make([]string, 0, len(byCheck))
	for c := range byCheck {
		checks = append(checks, c)
	}
	sort.Strings(checks)
	var parts []string
	for _, c := range checks {
		name := c
		if name == "" {
			name = "(malformed)"
		}
		parts = append(parts, fmt.Sprintf("%s=%d", name, byCheck[c]))
	}
	summary := ""
	if len(parts) > 0 {
		summary = " (" + strings.Join(parts, ", ") + ")"
	}
	if _, err := fmt.Fprintf(w, "lfcheck debt: %d directive(s)%s\n", len(dirs), summary); err != nil {
		return err
	}
	for _, d := range dirs {
		status := ""
		if d.Malformed {
			status = " MALFORMED"
		} else if d.Stale {
			status = " STALE"
		}
		if _, err := fmt.Fprintf(w, "%s:%d: %s [%dd]%s: %s\n",
			d.File, d.Line, d.Check, d.AgeDays, status, d.Reason); err != nil {
			return err
		}
	}
	return nil
}

// WriteDebtJSON emits the debt inventory as an indented JSON array (an
// empty inventory prints "[]", never null).
func WriteDebtJSON(w io.Writer, dirs []Directive) error {
	if dirs == nil {
		dirs = []Directive{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(dirs)
}
