package framework

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"strings"
)

// cacheSchema versions the on-disk entry format itself; bumping it orphans
// every existing entry (they are simply never looked up again).
const cacheSchema = "lfcheck-cache-v2" // v2: entries carry used-allow keys

// exportedFact is one fact a package's passes exported, recorded so a
// cache entry can replay it into the fact store on a warm run.
type exportedFact struct {
	objKey string
	fact   Fact
}

// cacheEntry is the JSON shape of one memoized package result.
type cacheEntry struct {
	// Diags are the package's reportable diagnostics, file paths
	// relative to the loader base so entries survive checkout moves.
	Diags []cachedDiag `json:"diags"`
	// Facts are the facts the package's passes exported, keyed by the
	// stable object key and the fact's Go type name.
	Facts []cachedFact `json:"facts,omitempty"`
	// Used are the allow directives that suppressed a diagnostic in this
	// package, so warm runs feed -debt -strict the same usage as cold ones.
	Used []cachedAllow `json:"used,omitempty"`
}

type cachedDiag struct {
	File     string `json:"file"`
	Offset   int    `json:"off"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Category string `json:"category,omitempty"`
	Message  string `json:"message"`
}

type cachedFact struct {
	Obj  string          `json:"obj"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data"`
}

type cachedAllow struct {
	File  string `json:"file"`
	Line  int    `json:"line"`
	Check string `json:"check"`
}

// resultCache memoizes per-package analysis results under content hashes.
//
// The key of a package's entry covers everything that can change its
// result: the bytes of its own sources, the bytes of its whole in-module
// dependency closure (types and facts flow upward through imports), the
// analyzer suite (names and Versions), the package's role in the run
// (root or fact-only dependency — they run different analyzer subsets),
// the Go toolchain version (standard-library types), and the entry schema.
// Anything else — scheduling order, cache state, wall clock — does not
// participate, which is what makes warm output byte-identical to cold.
type resultCache struct {
	dir      string
	ld       *Loader
	base     string // absolute loader base, for relativizing positions
	suiteKey string // analyzer names+versions, part of every entry key
	registry map[string]reflect.Type
	hashes   map[string]string // contentHash memo, import path → hex
}

func newResultCache(dir string, ld *Loader, analyzers []*Analyzer) (*resultCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("creating cache dir: %w", err)
	}
	base := ld.Dir
	if base == "" {
		base, _ = os.Getwd()
	}
	base, _ = filepath.Abs(base)

	var suite []string
	registry := make(map[string]reflect.Type)
	for _, a := range analyzers {
		suite = append(suite, a.Name+"@"+a.Version)
		for _, f := range a.FactTypes {
			t := reflect.TypeOf(f)
			registry[t.String()] = t
		}
	}
	sort.Strings(suite)
	return &resultCache{
		dir:      dir,
		ld:       ld,
		base:     base,
		suiteKey: strings.Join(suite, ","),
		registry: registry,
		hashes:   make(map[string]string),
	}, nil
}

// contentHash hashes a package's sources and, recursively, its in-module
// dependency closure's. It is role- and suite-independent: one package has
// one content hash per source state.
func (c *resultCache) contentHash(path string) (string, error) {
	if h, ok := c.hashes[path]; ok {
		return h, nil
	}
	m := c.ld.meta[path]
	if m == nil {
		return "", fmt.Errorf("cache: no metadata for package %q", path)
	}
	h := sha256.New()
	fmt.Fprintf(h, "pkg %s\n", path)
	for _, file := range absFiles(m) {
		data, err := os.ReadFile(file)
		if err != nil {
			return "", fmt.Errorf("cache: hashing %s: %w", path, err)
		}
		fmt.Fprintf(h, "file %s %d\n", filepath.Base(file), len(data))
		h.Write(data)
	}
	for _, dep := range c.ld.moduleImports(m) {
		dh, err := c.contentHash(dep)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "dep %s %s\n", dep, dh)
	}
	sum := hex.EncodeToString(h.Sum(nil))
	c.hashes[path] = sum
	return sum, nil
}

// entryPath computes the cache file for pkg in this run's configuration,
// or "" when the package cannot be hashed (it is then analyzed live).
func (c *resultCache) entryPath(pkg *Package) string {
	content, err := c.contentHash(pkg.PkgPath)
	if err != nil {
		return ""
	}
	role := "root"
	if pkg.DepOnly {
		role = "dep"
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\n%s\n%s\n%s\n", cacheSchema, runtime.Version(), c.suiteKey, role, content)
	return filepath.Join(c.dir, hex.EncodeToString(h.Sum(nil))+".json")
}

// load restores pkg's memoized result, replaying its exported facts into
// facts, and reports whether an entry was found.
func (c *resultCache) load(pkg *Package, facts *FactStore) (*pkgResult, bool) {
	path := c.entryPath(pkg)
	if path == "" {
		return nil, false
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var entry cacheEntry
	if err := json.Unmarshal(data, &entry); err != nil {
		return nil, false // corrupt entry: fall back to live analysis
	}
	res := &pkgResult{}
	for _, d := range entry.Diags {
		file := d.File
		if file != "" && !filepath.IsAbs(file) {
			file = filepath.Join(c.base, file)
		}
		res.diags = append(res.diags, RunDiagnostic{
			Position: token.Position{Filename: file, Offset: d.Offset, Line: d.Line, Column: d.Col},
			Message:  d.Message,
			Analyzer: d.Analyzer,
			Category: d.Category,
		})
	}
	for _, f := range entry.Facts {
		typ, ok := c.registry[f.Type]
		if !ok {
			continue // fact of an analyzer not in this run's suite
		}
		fact := reflect.New(typ.Elem()).Interface().(Fact)
		if err := json.Unmarshal(f.Data, fact); err != nil {
			return nil, false // corrupt fact: recompute the package
		}
		facts.install(f.Obj, fact)
		res.facts = append(res.facts, exportedFact{objKey: f.Obj, fact: fact})
	}
	for _, u := range entry.Used {
		file := u.File
		if file != "" && !filepath.IsAbs(file) {
			file = filepath.Join(c.base, file)
		}
		res.usedAllows = append(res.usedAllows, allowKey{file: file, line: u.Line, check: u.Check})
	}
	return res, true
}

// store memoizes one live result. Failures are silent: the cache is an
// accelerator, never a correctness dependency.
func (c *resultCache) store(pkg *Package, res *pkgResult) {
	path := c.entryPath(pkg)
	if path == "" {
		return
	}
	entry := cacheEntry{Diags: make([]cachedDiag, 0, len(res.diags))}
	for _, d := range res.diags {
		file := d.Position.Filename
		if rel, err := filepath.Rel(c.base, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
		entry.Diags = append(entry.Diags, cachedDiag{
			File:     file,
			Offset:   d.Position.Offset,
			Line:     d.Position.Line,
			Col:      d.Position.Column,
			Analyzer: d.Analyzer,
			Category: d.Category,
			Message:  d.Message,
		})
	}
	for _, u := range res.usedAllows {
		file := u.file
		if rel, err := filepath.Rel(c.base, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
		entry.Used = append(entry.Used, cachedAllow{File: file, Line: u.line, Check: u.check})
	}
	for _, f := range res.facts {
		data, err := json.Marshal(f.fact)
		if err != nil {
			return // unserializable fact: skip caching this package
		}
		entry.Facts = append(entry.Facts, cachedFact{
			Obj:  f.objKey,
			Type: reflect.TypeOf(f.fact).String(),
			Data: data,
		})
	}
	data, err := json.Marshal(entry)
	if err != nil {
		return
	}
	// Content-addressed entries make concurrent writers idempotent; the
	// rename keeps readers from seeing a torn entry.
	tmp, err := os.CreateTemp(c.dir, "tmp-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	tmp.Close()
	os.Rename(tmp.Name(), path)
}
