package framework

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"
)

// Main runs the given analyzers over the packages matching the command-line
// patterns (default "./...") and exits with status 1 if any diagnostics
// were reported, 2 on loading or analyzer failures, and 0 otherwise — the
// exit convention of go vet.
//
// Flags:
//
//	-checks a,b  run only the named analyzers
//	-list        print the available analyzers and exit
func Main(analyzers ...*Analyzer) {
	checks := flag.String("checks", "", "comma-separated list of analyzers to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: %s [flags] [packages]\n\nAnalyzers:\n", os.Args[0])
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, firstLine(a.Doc))
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}

	selected := analyzers
	if *checks != "" {
		byName := make(map[string]*Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*checks, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "lfcheck: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	diags, err := Run(NewLoader(""), selected, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lfcheck: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s\n", d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// RunDiagnostic is one analyzer finding, positioned and printable.
type RunDiagnostic struct {
	Position token.Position
	Message  string
	Analyzer string
}

func (d RunDiagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Position, d.Message, d.Analyzer)
}

// Run loads the patterns through ld and applies each analyzer to each
// matched package, returning the diagnostics sorted by position. Load or
// type-check errors in the target packages are returned as an error: the
// analyzers' results would not be trustworthy on broken packages.
func Run(ld *Loader, analyzers []*Analyzer, patterns []string) ([]RunDiagnostic, error) {
	pkgs, err := ld.Load(patterns...)
	if err != nil {
		return nil, err
	}
	var diags []RunDiagnostic
	for _, pkg := range pkgs {
		if len(pkg.Errors) > 0 {
			return nil, fmt.Errorf("package %s did not type-check: %v", pkg.PkgPath, pkg.Errors[0])
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d Diagnostic) {
				diags = append(diags, RunDiagnostic{
					Position: pkg.Fset.Position(d.Pos),
					Message:  d.Message,
					Analyzer: a.Name,
				})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := diags[i].Position, diags[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
