package framework

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// Main runs the given analyzers over the packages matching the command-line
// patterns (default "./...") and exits with status 1 if any diagnostics
// were reported, 2 on loading or analyzer failures, and 0 otherwise — the
// exit convention of go vet.
//
// Flags:
//
//	-checks a,b  run only the named analyzers
//	-list        print the available analyzers and exit
//	-json        print diagnostics as a JSON array instead of text
//	-sarif       print diagnostics as a SARIF 2.1.0 log instead of text
//	-cache DIR   memoize per-package results under DIR; a warm run skips
//	             unchanged packages and prints a work summary to stderr
//	-jobs N      analyze at most N packages concurrently (0: GOMAXPROCS)
//	-debt        inventory //lfcheck:allow directives (text, or JSON with
//	             -json) instead of running analyzers; exits 0 unless -strict
//	-strict      with -debt: also run the analyzers, mark directives that
//	             suppressed nothing as STALE, and exit 1 when any directive
//	             is stale or malformed
func Main(analyzers ...*Analyzer) {
	checks := flag.String("checks", "", "comma-separated list of analyzers to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	sarifOut := flag.Bool("sarif", false, "emit diagnostics as SARIF 2.1.0")
	cacheDir := flag.String("cache", "", "directory for the incremental result cache (default: no cache)")
	jobs := flag.Int("jobs", 0, "maximum number of concurrently analyzed packages (0: GOMAXPROCS)")
	debt := flag.Bool("debt", false, "report the //lfcheck:allow suppression inventory instead of analyzing")
	strict := flag.Bool("strict", false, "with -debt: run the analyzers and exit 1 on stale or malformed directives")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: %s [flags] [packages]\n\nAnalyzers:\n", os.Args[0])
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, firstLine(a.Doc))
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "lfcheck: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}

	selected := analyzers
	if *checks != "" {
		byName := make(map[string]*Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*checks, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "lfcheck: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if *debt {
		if *sarifOut {
			fmt.Fprintln(os.Stderr, "lfcheck: -debt and -sarif are mutually exclusive")
			os.Exit(2)
		}
		dirs, err := CollectDebt(NewLoader(""), patterns)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lfcheck: %v\n", err)
			os.Exit(2)
		}
		stale, malformed := 0, 0
		if *strict {
			// A strict inventory re-runs the analyzers to learn which
			// directives still earn their keep: one that suppresses nothing
			// is dead weight waiting to hide a future finding.
			driver := &Driver{
				Loader:    NewLoader(""),
				Analyzers: selected,
				CacheDir:  *cacheDir,
				Jobs:      *jobs,
			}
			_, stats, err := driver.Run(patterns...)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lfcheck: %v\n", err)
				os.Exit(2)
			}
			stale = MarkStale(dirs, stats.UsedAllows)
			for _, d := range dirs {
				if d.Malformed {
					malformed++
				}
			}
		}
		write := WriteDebtText
		if *jsonOut {
			write = WriteDebtJSON
		}
		if err := write(os.Stdout, dirs); err != nil {
			fmt.Fprintf(os.Stderr, "lfcheck: %v\n", err)
			os.Exit(2)
		}
		if *strict && stale+malformed > 0 {
			fmt.Fprintf(os.Stderr, "lfcheck: %d stale and %d malformed directive(s)\n", stale, malformed)
			os.Exit(1)
		}
		return
	}

	driver := &Driver{
		Loader:    NewLoader(""),
		Analyzers: selected,
		CacheDir:  *cacheDir,
		Jobs:      *jobs,
	}
	diags, stats, err := driver.Run(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lfcheck: %v\n", err)
		os.Exit(2)
	}
	if *cacheDir != "" {
		fmt.Fprintf(os.Stderr, "lfcheck: %d packages: %d cached, %d analyzed\n",
			stats.Packages, stats.CacheHits, stats.Analyzed)
	}
	switch {
	case *jsonOut:
		if err := WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "lfcheck: %v\n", err)
			os.Exit(2)
		}
	case *sarifOut:
		if err := WriteSARIF(os.Stdout, selected, diags); err != nil {
			fmt.Fprintf(os.Stderr, "lfcheck: %v\n", err)
			os.Exit(2)
		}
	default:
		for _, d := range diags {
			fmt.Printf("%s\n", d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// RunDiagnostic is one analyzer finding, positioned and printable.
type RunDiagnostic struct {
	Position token.Position
	Message  string
	Analyzer string
	Category string
}

func (d RunDiagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Position, d.Message, d.Analyzer)
}

// Run loads the patterns through ld and applies each analyzer to each
// matched package, returning the diagnostics sorted by position. Load or
// type-check errors in the target packages are returned as an error: the
// analyzers' results would not be trustworthy on broken packages.
//
// If any analyzer declares FactTypes, the in-module dependency closure of
// the patterns is analyzed bottom-up first, so cross-package function facts
// are available when an importing package is checked; closure-only packages
// contribute facts but no diagnostics.
//
// Packages living under a testdata directory are skipped when they were
// matched by a wildcard ("...") pattern: analyzer fixtures are intentionally
// buggy and must not trip a whole-tree run. Naming a testdata package
// explicitly still analyzes it.
//
// Diagnostics may be suppressed by a directive comment
//
//	//lfcheck:allow <check> <reason>
//
// which silences diagnostics of analyzer <check> (or of every analyzer,
// for <check> = "all") on the directive's own line and the line below it.
// The reason is mandatory; a directive missing its check name or reason is
// itself reported, as analyzer "lfcheck" category "directive".
func Run(ld *Loader, analyzers []*Analyzer, patterns []string) ([]RunDiagnostic, error) {
	d := &Driver{Loader: ld, Analyzers: analyzers}
	diags, _, err := d.Run(patterns...)
	return diags, err
}

// allowKey identifies one suppression: this check is allowed on this line.
type allowKey struct {
	file  string
	line  int
	check string
}

// allowed reports whether a diagnostic of the named analyzer at pos is
// covered by a directive on its own line or the line above, returning the
// key of the directive that matched so the run can record it as used.
func allowed(allows map[allowKey]bool, pos token.Position, analyzer string) (allowKey, bool) {
	if len(allows) == 0 {
		return allowKey{}, false
	}
	for _, check := range [2]string{analyzer, "all"} {
		for _, line := range [2]int{pos.Line, pos.Line - 1} {
			key := allowKey{pos.Filename, line, check}
			if allows[key] {
				return key, true
			}
		}
	}
	return allowKey{}, false
}

const allowPrefix = "//lfcheck:allow"

// collectAllows gathers the //lfcheck:allow directives of one package,
// reporting malformed ones (missing check name or reason) into diags.
func collectAllows(pkg *Package, diags *[]RunDiagnostic) map[allowKey]bool {
	allows := make(map[allowKey]bool)
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					*diags = append(*diags, RunDiagnostic{
						Position: pos,
						Message:  fmt.Sprintf("malformed directive %q: want %s <check> <reason>", c.Text, allowPrefix),
						Analyzer: "lfcheck",
						Category: "directive",
					})
					continue
				}
				allows[allowKey{pos.Filename, pos.Line, fields[0]}] = true
			}
		}
	}
	return allows
}

// skipTestdata reports whether pkg lives under a testdata directory and was
// matched only by a wildcard pattern.
func skipTestdata(ld *Loader, pkg *Package, patterns []string) bool {
	return skipTestdataDir(ld, pkg.Dir, pkg.PkgPath, patterns)
}

func skipTestdataDir(ld *Loader, dir, pkgPath string, patterns []string) bool {
	if !underTestdata(dir) {
		return false
	}
	base := ld.Dir
	if base == "" {
		base, _ = os.Getwd()
	}
	for _, p := range patterns {
		if strings.Contains(p, "...") {
			continue
		}
		if p == pkgPath {
			return false
		}
		if abs, err := filepath.Abs(filepath.Join(base, p)); err == nil && abs == filepath.Clean(dir) {
			return false
		}
	}
	return true
}

func underTestdata(dir string) bool {
	for _, part := range strings.Split(filepath.ToSlash(dir), "/") {
		if part == "testdata" {
			return true
		}
	}
	return false
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
