package framework

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// writeCacheModule lays down a tiny two-package module (b imports a) in a
// temp dir and returns its root. The cache tests drive the full Driver —
// go list, type-checking, facts, and the result cache — against it.
func writeCacheModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	writeFixture(t, dir, "go.mod", "module cachetest\n\ngo 1.22\n")
	writeFixture(t, dir, "a/a.go", `package a

func Plus(a, b int) int { return a + b }
`)
	writeFixture(t, dir, "b/b.go", `package b

import "cachetest/a"

func Use(x int) int { return a.Plus(x, 1) }
`)
	return dir
}

// cacheProbe is a toy interprocedural analyzer: it exports an arity fact
// per declared function and reports both declarations and calls whose
// callee fact it can import. The call diagnostics only appear when facts
// flow across packages — live or replayed from the cache.
func cacheProbe(version string) *Analyzer {
	return &Analyzer{
		Name:      "cacheprobe",
		Doc:       "report declarations and fact-resolved calls (cache probe)",
		Version:   version,
		FactTypes: []Fact{(*countFact)(nil)},
		Run: func(pass *Pass) (any, error) {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.FuncDecl:
						if fn := funcObj(pass, n.Name); fn != nil {
							pass.ExportObjectFact(fn, &countFact{N: n.Type.Params.NumFields()})
							pass.Reportf(n.Pos(), "func %s declared", fn.Name())
						}
					case *ast.CallExpr:
						if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
							if fn := funcObj(pass, sel.Sel); fn != nil {
								var got countFact
								if pass.ImportObjectFact(fn, &got) {
									pass.Reportf(n.Pos(), "call to %s (%d params)", fn.Name(), got.N)
								}
							}
						}
					}
					return true
				})
			}
			return nil, nil
		},
	}
}

// runCached performs one whole-module driver run with a fresh loader, as a
// new process would.
func runCached(t *testing.T, moduleDir, cacheDir, version string) ([]RunDiagnostic, RunStats) {
	t.Helper()
	d := &Driver{
		Loader:    NewLoader(moduleDir),
		Analyzers: []*Analyzer{cacheProbe(version)},
		CacheDir:  cacheDir,
		Jobs:      2,
	}
	diags, stats, err := d.Run("./...")
	if err != nil {
		t.Fatal(err)
	}
	return diags, stats
}

// TestCacheColdRunsByteIdentical runs the driver twice against separate,
// empty cache directories and requires byte-identical diagnostics: the
// cache must not perturb output, and the parallel schedule must not leak
// into ordering.
func TestCacheColdRunsByteIdentical(t *testing.T) {
	dir := writeCacheModule(t)
	d1, s1 := runCached(t, dir, filepath.Join(dir, "cache1"), "v1")
	d2, s2 := runCached(t, dir, filepath.Join(dir, "cache2"), "v1")
	for _, s := range []RunStats{s1, s2} {
		if s.Packages != 2 || s.Analyzed != 2 || s.CacheHits != 0 {
			t.Fatalf("cold run stats = %+v, want 2 packages all analyzed", s)
		}
	}
	if len(d1) == 0 {
		t.Fatal("probe reported nothing")
	}
	b1, err := json.Marshal(d1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(d2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("cold runs differ:\n%s\n%s", b1, b2)
	}
}

// TestCacheWarmRunSkipsUnchanged reruns against a populated cache and
// requires every package to be restored (Analyzed == 0) with diagnostics
// identical to the cold run's.
func TestCacheWarmRunSkipsUnchanged(t *testing.T) {
	dir := writeCacheModule(t)
	cache := filepath.Join(dir, "cache")
	cold, _ := runCached(t, dir, cache, "v1")
	warm, stats := runCached(t, dir, cache, "v1")
	if stats.CacheHits != stats.Packages || stats.Analyzed != 0 {
		t.Fatalf("warm run stats = %+v, want all %d packages cached", stats, stats.Packages)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("warm diagnostics differ from cold:\ncold: %v\nwarm: %v", cold, warm)
	}
}

// TestCacheInvalidatedBySourceEdit edits first the leaf package (only it
// re-runs, with the dependency's facts replayed from cache) and then the
// dependency (whose importer's content hash covers it, so both re-run).
func TestCacheInvalidatedBySourceEdit(t *testing.T) {
	dir := writeCacheModule(t)
	cache := filepath.Join(dir, "cache")
	runCached(t, dir, cache, "v1")

	// Edit b only: a must hit, b must re-analyze — and b's re-analysis
	// must still see a's facts (replayed from a's cached entry), proving
	// the cache restores facts and not just diagnostics.
	writeFixture(t, dir, "b/b.go", `package b

import "cachetest/a"

func Use(x int) int { return a.Plus(x, 1) }

func Twice(x int) int { return a.Plus(x, x) }
`)
	diags, stats := runCached(t, dir, cache, "v1")
	if stats.CacheHits != 1 || stats.Analyzed != 1 {
		t.Fatalf("after leaf edit: stats = %+v, want 1 hit + 1 analyzed", stats)
	}
	calls := 0
	for _, d := range diags {
		if strings.Contains(d.Message, "call to Plus (2 params)") {
			calls++
		}
	}
	if calls != 2 {
		t.Fatalf("want 2 fact-resolved call diagnostics after leaf edit, got %d in %v", calls, diags)
	}

	// Edit a: every importer's hash covers its in-module deps, so both
	// packages are stale.
	writeFixture(t, dir, "a/a.go", `package a

func Plus(a, b int) int { return a + b }

func Minus(a, b int) int { return a - b }
`)
	if _, stats = runCached(t, dir, cache, "v1"); stats.Analyzed != 2 || stats.CacheHits != 0 {
		t.Fatalf("after dep edit: stats = %+v, want both re-analyzed", stats)
	}
}

// TestCacheInvalidatedByVersionBump bumps the analyzer's Version with
// unchanged sources: every entry must miss, and the bumped suite must then
// warm up independently of the old one.
func TestCacheInvalidatedByVersionBump(t *testing.T) {
	dir := writeCacheModule(t)
	cache := filepath.Join(dir, "cache")
	runCached(t, dir, cache, "v1")

	if _, stats := runCached(t, dir, cache, "v2"); stats.Analyzed != 2 || stats.CacheHits != 0 {
		t.Fatalf("after version bump: stats = %+v, want both re-analyzed", stats)
	}
	if _, stats := runCached(t, dir, cache, "v2"); stats.CacheHits != 2 {
		t.Fatalf("second v2 run: stats = %+v, want both cached", stats)
	}
	// The old version's entries are still intact alongside.
	if _, stats := runCached(t, dir, cache, "v1"); stats.CacheHits != 2 {
		t.Fatalf("back at v1: stats = %+v, want both cached", stats)
	}
}
