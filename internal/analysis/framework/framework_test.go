package framework

import (
	"go/ast"
	"strings"
	"testing"
)

// TestLoadTypeChecksFromSource loads a real package of this module through
// the go-list loader and checks that syntax and type information arrive.
func TestLoadTypeChecksFromSource(t *testing.T) {
	ld := NewLoader("")
	pkgs, err := ld.Load("valois/internal/primitive")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if len(pkg.Errors) > 0 {
		t.Fatalf("package has errors: %v", pkg.Errors)
	}
	if pkg.Name != "primitive" {
		t.Fatalf("package name = %q, want primitive", pkg.Name)
	}
	if len(pkg.Syntax) == 0 {
		t.Fatal("no syntax trees")
	}
	if pkg.Types == nil || pkg.TypesInfo == nil {
		t.Fatal("missing type information")
	}
	// The loader must have resolved sync/atomic (a dependency) from source.
	if _, err := ld.Import("sync/atomic"); err != nil {
		t.Fatalf("importing sync/atomic: %v", err)
	}
}

// TestRunReportsDiagnosticsSorted runs a toy analyzer that flags every
// function declaration, and checks driver plumbing end to end.
func TestRunReportsDiagnosticsSorted(t *testing.T) {
	toy := &Analyzer{
		Name: "toyfuncs",
		Doc:  "flag every function declaration (driver smoke test)",
		Run: func(pass *Pass) (any, error) {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					if fn, ok := d.(*ast.FuncDecl); ok {
						pass.Reportf(fn.Pos(), "func %s", fn.Name.Name)
					}
				}
			}
			return nil, nil
		},
	}
	diags, err := Run(NewLoader(""), []*Analyzer{toy}, []string{"valois/internal/primitive"})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("toy analyzer reported nothing")
	}
	seen := false
	for _, d := range diags {
		if strings.Contains(d.Message, "CompareAndSwap") {
			seen = true
		}
		if d.Analyzer != "toyfuncs" {
			t.Fatalf("diagnostic attributed to %q", d.Analyzer)
		}
	}
	if !seen {
		t.Fatalf("expected a diagnostic for CompareAndSwap, got %v", diags)
	}
	for i := 1; i < len(diags); i++ {
		if diags[i-1].Position.Filename == diags[i].Position.Filename &&
			diags[i-1].Position.Line > diags[i].Position.Line {
			t.Fatalf("diagnostics not sorted: %v before %v", diags[i-1], diags[i])
		}
	}
}
