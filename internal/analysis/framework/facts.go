package framework

import (
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
	"sync"
)

// A Fact is a datum an analyzer attaches to a named object (typically a
// function) so that analysis of one package can inform analysis of the
// packages that import it, mirroring analysis.Fact. The lfcheck suite uses
// facts for per-function reference-count summaries ("returns a +1
// reference", "releases parameter i"), computed bottom-up over the
// `go list -deps` load order; see internal/analysis/refbalance.
//
// Fact values must be pointers, and a given analyzer registers the fact
// types it produces in Analyzer.FactTypes, which also signals the driver
// that the analyzer needs its dependencies analyzed first.
type Fact interface {
	// AFact marks the type as a Fact; it is never called.
	AFact()
}

// FactStore holds the facts exported while analyzing a package graph.
//
// The canonical go/analysis framework keys facts by types.Object identity.
// This loader type-checks a package once per role it plays (root with
// syntax, plain dependency), so two *types.Func values can describe the
// same function; the store therefore keys facts by the stable (package
// path, receiver, name) string of ObjectKey instead, which is identical
// across instances.
//
// The store is safe for concurrent use: the parallel driver analyzes
// independent packages of one topological wave simultaneously, each
// exporting its own facts while importing its dependencies'.
type FactStore struct {
	mu sync.RWMutex
	m  map[factKey]Fact
}

type factKey struct {
	obj string
	typ reflect.Type
}

// NewFactStore returns an empty store. One store is shared by every pass
// of one driver run.
func NewFactStore() *FactStore {
	return &FactStore{m: make(map[factKey]Fact)}
}

// export records fact for obj, replacing any previous fact of the same
// dynamic type.
func (s *FactStore) export(obj types.Object, fact Fact) {
	s.install(ObjectKey(obj), fact)
}

// install records fact under a pre-computed object key. The cache layer
// uses it directly to restore a skipped package's facts, for which no
// types.Object exists.
func (s *FactStore) install(key string, fact Fact) {
	if key == "" {
		return
	}
	s.mu.Lock()
	s.m[factKey{obj: key, typ: reflect.TypeOf(fact)}] = fact
	s.mu.Unlock()
}

// imports copies the stored fact of fact's dynamic type for obj into fact,
// reporting whether one was found. fact must be a pointer, as every Fact
// is.
func (s *FactStore) imp(obj types.Object, fact Fact) bool {
	key := ObjectKey(obj)
	if key == "" {
		return false
	}
	s.mu.RLock()
	stored, ok := s.m[factKey{obj: key, typ: reflect.TypeOf(fact)}]
	s.mu.RUnlock()
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// Len reports the number of facts in the store (for tests).
func (s *FactStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// Keys returns the sorted object keys that carry at least one fact (for
// tests and debugging).
func (s *FactStore) Keys() []string {
	s.mu.RLock()
	seen := make(map[string]bool)
	for k := range s.m {
		seen[k.obj] = true
	}
	s.mu.RUnlock()
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ObjectKey returns a stable cross-instance identifier for a package-level
// object or method: "pkgpath.Name" for package-level objects and
// "pkgpath.Recv.Name" for methods (the receiver's named type, pointerness
// and type arguments stripped). Objects without a package (builtins, nil)
// have no key.
func ObjectKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString(obj.Pkg().Path())
	b.WriteByte('.')
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			b.WriteString(recvName(sig))
			b.WriteByte('.')
		}
	}
	b.WriteString(obj.Name())
	return b.String()
}

// recvName names a method's receiver type: the named type's name, with any
// pointer indirection and instantiation stripped, or a best-effort string
// for unnamed receivers.
func recvName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name()
	case *types.Alias:
		return t.Obj().Name()
	default:
		return fmt.Sprintf("(%s)", t)
	}
}

// ExportObjectFact records fact for obj in the driver's fact store, making
// it visible to later passes over packages that import this one. It is a
// no-op outside a facts-enabled driver run.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.Facts == nil {
		return
	}
	p.Facts.export(obj, fact)
	if p.exportHook != nil {
		if key := ObjectKey(obj); key != "" {
			p.exportHook(key, fact)
		}
	}
}

// ImportObjectFact copies the fact of fact's dynamic type previously
// exported for obj into fact, reporting whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.Facts == nil {
		return false
	}
	return p.Facts.imp(obj, fact)
}
