package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFunc parses one function and returns its CFG plus the fileset.
func buildFunc(t *testing.T, src string) (*Graph, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fixture.go", "package p\n\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return New(fd.Body, nil), fset
		}
	}
	t.Fatal("no function in fixture")
	return nil, nil
}

// checkDump builds src's CFG and compares the dump byte-for-byte. The
// goldens pin block/edge structure and dominator trees: any builder
// change that reshapes a graph shows up as a readable diff here.
func checkDump(t *testing.T, src, want string) {
	t.Helper()
	g, fset := buildFunc(t, src)
	got := Dump(g, fset)
	want = strings.TrimPrefix(want, "\n")
	if got != want {
		t.Errorf("dump mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestDumpIfElse(t *testing.T) {
	checkDump(t, `
func f(x int) int {
	if x > 0 {
		return 1
	} else {
		x--
	}
	return x
}
`, `
b0 entry:
	x > 0
	-> b1 [true]
	-> b2 [false]
b1 if.then:
	return 1
	-> b4 [return]
b2 if.else:
	x--
	-> b3 [flow]
b3 if.after:
	return x
	-> b4 [return]
b4 exit:
idom: b1=b0 b2=b0 b3=b2 b4=b0
`)
}

func TestDumpGoto(t *testing.T) {
	checkDump(t, `
func f(x int) int {
	if x == 0 {
		goto done
	}
	x *= 2
done:
	return x
}
`, `
b0 entry:
	x == 0
	-> b1 [true]
	-> b2 [false]
b1 if.then:
	-> b3 [flow]
b2 if.after:
	x *= 2
	-> b3 [flow]
b3 label.done:
	return x
	-> b4 [return]
b4 exit:
idom: b1=b0 b2=b0 b3=b0 b4=b3
`)
}

func TestDumpLabeledBreakContinue(t *testing.T) {
	checkDump(t, `
func f(rows [][]int) int {
	total := 0
outer:
	for i := 0; i < len(rows); i++ {
		for _, v := range rows[i] {
			if v < 0 {
				continue outer
			}
			if v == 99 {
				break outer
			}
			total += v
		}
	}
	return total
}
`, `
b0 entry:
	total := 0
	-> b1 [flow]
b1 label.outer:
	i := 0
	-> b2 [flow]
b2 for.head:
	i < len(rows)
	-> b3 [true]
	-> b4 [false]
b3 for.body:
	rows[i]
	-> b6 [flow]
b4 for.after:
	return total
	-> b13 [return]
b5 for.post:
	i++
	-> b2 [flow]
b6 range.head:
	range: _, v := rows[i]
	-> b7 [flow]
	-> b8 [flow]
b7 range.body:
	v < 0
	-> b9 [true]
	-> b10 [false]
b8 range.after:
	-> b5 [flow]
b9 if.then:
	-> b5 [flow]
b10 if.after:
	v == 99
	-> b11 [true]
	-> b12 [false]
b11 if.then:
	-> b4 [flow]
b12 if.after:
	total += v
	-> b6 [flow]
b13 exit:
idom: b1=b0 b2=b1 b3=b2 b4=b2 b5=b6 b6=b3 b7=b6 b8=b6 b9=b7 b10=b7 b11=b10 b12=b10 b13=b4
`)
}

func TestDumpSelect(t *testing.T) {
	checkDump(t, `
func f(a, b chan int, done chan struct{}) int {
	for {
		select {
		case v := <-a:
			return v
		case b <- 1:
		case <-done:
			return 0
		}
	}
}
`, `
b0 entry:
	-> b1 [flow]
b1 for.head:
	-> b2 [flow]
b2 for.body:
	-> b4 [flow]
	-> b5 [flow]
	-> b6 [flow]
b3 select.after:
	-> b1 [flow]
b4 select.arm:
	v := <-a
	return v
	-> b7 [return]
b5 select.arm:
	b <- 1
	-> b3 [flow]
b6 select.arm:
	<-done
	return 0
	-> b7 [return]
b7 exit:
idom: b1=b0 b2=b1 b3=b5 b4=b2 b5=b2 b6=b2 b7=b2
`)
}

func TestDumpDeferRecover(t *testing.T) {
	checkDump(t, `
func f(m map[string]int, key string) (v int, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = errFromPanic
		}
	}()
	if key == "" {
		panic("empty key")
	}
	v = m[key]
	return v, nil
}
`, `
b0 entry:
	defer func() { if r := recover(); r != nil { err = errFromPanic } }()
	key == ""
	-> b1 [true]
	-> b2 [false]
b1 if.then:
	panic("empty key")
	-> b3 [panic]
b2 if.after:
	v = m[key]
	return v, nil
	-> b3 [return]
b3 exit:
idom: b1=b0 b2=b0 b3=b0
`)
}

func TestDumpSwitchFallthrough(t *testing.T) {
	checkDump(t, `
func f(x int) string {
	s := ""
	switch x {
	case 1:
		s += "one"
		fallthrough
	case 2:
		s += "two"
	default:
		s = "many"
	}
	return s
}
`, `
b0 entry:
	s := ""
	x
	-> b2 [flow]
	-> b3 [flow]
	-> b4 [flow]
b1 switch.after:
	return s
	-> b5 [return]
b2 case:
	1
	s += "one"
	-> b3 [flow]
b3 case:
	2
	s += "two"
	-> b1 [flow]
b4 case.default:
	s = "many"
	-> b1 [flow]
b5 exit:
idom: b1=b0 b2=b0 b3=b0 b4=b0 b5=b1
`)
}

func TestDumpTypeSwitch(t *testing.T) {
	checkDump(t, `
func f(x interface{}) int {
	switch v := x.(type) {
	case int:
		return v
	case string:
		return len(v)
	}
	return -1
}
`, `
b0 entry:
	v := x.(type)
	-> b2 [flow]
	-> b3 [flow]
	-> b1 [flow]
b1 switch.after:
	return -1
	-> b4 [return]
b2 case:
	return v
	-> b4 [return]
b3 case:
	return len(v)
	-> b4 [return]
b4 exit:
idom: b1=b0 b2=b0 b3=b0 b4=b0
`)
}

// TestDumpInfiniteLoop pins the one legal shape where the exit is
// unreachable: every path loops forever, so the exit's dominator is
// reported unknown.
func TestDumpInfiniteLoop(t *testing.T) {
	checkDump(t, `
func f(c chan int) {
	for {
		<-c
	}
}
`, `
b0 entry:
	-> b1 [flow]
b1 for.head:
	-> b2 [flow]
b2 for.body:
	<-c
	-> b1 [flow]
b3 exit:
idom: b1=b0 b2=b1 b3=?
`)
}

// TestUnreachablePruned: statements after a return that nothing jumps to
// must not appear in the graph.
func TestUnreachablePruned(t *testing.T) {
	g, _ := buildFunc(t, `
func f() int {
	return 1
	x := 2
	_ = x
}
`)
	for _, blk := range g.Blocks {
		if blk.Label == "unreachable" {
			t.Errorf("unreachable block survived pruning: b%d", blk.Index)
		}
	}
}

// TestSolveReachable exercises the generic forward solver with a trivial
// may-problem: which blocks are reachable with a "flag set" fact that an
// assignment to the magic name sets.
func TestSolveReachable(t *testing.T) {
	g, _ := buildFunc(t, `
func f(x int) int {
	armed := false
	if x > 0 {
		armed = true
	}
	return bool2int(armed)
}
`)
	res := Solve(g, Problem[bool]{
		Dir:      Forward,
		Boundary: false,
		Init:     false,
		Join:     func(a, b bool) bool { return a || b },
		Transfer: func(b *Block, in bool) bool {
			for _, n := range b.Nodes {
				if as, ok := n.(*ast.AssignStmt); ok {
					if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "armed" {
						if id2, ok := as.Rhs[0].(*ast.Ident); ok && id2.Name == "true" {
							return true
						}
					}
				}
			}
			return in
		},
		Equal: func(a, b bool) bool { return a == b },
	})
	// The exit merges the then-branch (armed) and the fallthrough (not):
	// a may-analysis must say "possibly armed" there.
	if !res.In[g.Exit.Index] {
		t.Errorf("may-fact did not reach the exit")
	}
	// The entry itself must stay unarmed.
	if res.Out[g.Entry.Index] {
		t.Errorf("entry transfer spuriously armed")
	}
}

// TestSolveBackward checks the backward orientation: liveness-style "a
// return lies ahead" reaches the entry.
func TestSolveBackward(t *testing.T) {
	g, _ := buildFunc(t, `
func f(x int) int {
	if x > 0 {
		return 1
	}
	return 0
}
`)
	res := Solve(g, Problem[bool]{
		Dir:      Backward,
		Boundary: true,
		Init:     false,
		Join:     func(a, b bool) bool { return a || b },
		Transfer: func(b *Block, in bool) bool { return in },
		Equal:    func(a, b bool) bool { return a == b },
	})
	if !res.In[g.Entry.Index] {
		t.Errorf("backward fact did not reach the entry")
	}
}

// TestInterpExitKinds runs the bounded path interpreter over a function
// with a return path and a panic path and checks both exits are observed
// with the right kinds, and that branch refinement sees the conditions.
func TestInterpExitKinds(t *testing.T) {
	g, _ := buildFunc(t, `
func f(x int) int {
	if x < 0 {
		panic("negative")
	}
	return x
}
`)
	type state struct{ conds []string }
	var exits []EdgeKind
	ip := &Interp[*state]{
		Clone: func(s *state) *state {
			return &state{conds: append([]string(nil), s.conds...)}
		},
		Node: func(n ast.Node, s *state) {},
		Edge: func(e *Edge, s *state) bool {
			if e.Cond != nil {
				s.conds = append(s.conds, e.Kind.String())
			}
			return true
		},
		Exit: func(e *Edge, s *state) { exits = append(exits, e.Kind) },
	}
	ip.Run(g, &state{})
	var sawPanic, sawReturn bool
	for _, k := range exits {
		switch k {
		case Panic:
			sawPanic = true
		case Return:
			sawReturn = true
		}
	}
	if !sawPanic || !sawReturn {
		t.Errorf("exit kinds = %v, want both panic and return", exits)
	}
}

// TestInterpLoopBudget: a loop must terminate under the visit budget and
// still deliver a state to the exit.
func TestInterpLoopBudget(t *testing.T) {
	g, _ := buildFunc(t, `
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}
`)
	reached := 0
	ip := &Interp[int]{
		Clone: func(s int) int { return s },
		Node:  func(n ast.Node, s int) {},
		Exit:  func(e *Edge, s int) { reached++ },
	}
	ip.Run(g, 0)
	if reached == 0 {
		t.Error("no state reached the exit")
	}
}

// TestDominates sanity-checks the helper on the if/else diamond.
func TestDominates(t *testing.T) {
	g, _ := buildFunc(t, `
func f(x int) int {
	if x > 0 {
		x = 1
	}
	return x
}
`)
	idom := Dominators(g)
	if !Dominates(idom, g.Entry.Index, g.Exit.Index) {
		t.Error("entry must dominate exit")
	}
	// The then-block must not dominate the exit (the false edge skips it).
	var then *Block
	for _, blk := range g.Blocks {
		if blk.Label == "if.then" {
			then = blk
		}
	}
	if then == nil {
		t.Fatal("no if.then block")
	}
	if Dominates(idom, then.Index, g.Exit.Index) {
		t.Error("branch block must not dominate exit")
	}
}
