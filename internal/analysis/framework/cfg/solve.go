package cfg

// Direction orients a dataflow problem.
type Direction uint8

const (
	// Forward propagates facts from the entry along successor edges.
	Forward Direction = iota
	// Backward propagates facts from the exit along predecessor edges.
	Backward
)

// Problem defines a monotone dataflow problem over fact type F. The solver
// is agnostic to the lattice: the client supplies the boundary fact, the
// join, the per-block transfer, and equality for the fixpoint test.
type Problem[F any] struct {
	Dir Direction

	// Boundary is the fact at the flow source: the entry's in-fact for a
	// forward problem, the exit's out-fact for a backward one.
	Boundary F

	// Init is the starting fact of every other block (conventionally the
	// lattice bottom for may-problems, top for must-problems).
	Init F

	// Join combines facts at a merge point. It must not mutate its
	// arguments.
	Join func(a, b F) F

	// Transfer computes a block's out-fact (in-fact for backward problems)
	// from its flow-in fact. It must not mutate in.
	Transfer func(b *Block, in F) F

	// EdgeTransfer, when non-nil, refines the fact crossing a specific
	// edge (e.g. applying a branch condition). It must not mutate f.
	EdgeTransfer func(e *Edge, f F) F

	// Equal reports whether two facts are equal, ending iteration.
	Equal func(a, b F) bool
}

// Result holds the fixpoint of a dataflow problem, indexed by Block.Index.
// In[b] is the fact flowing into b (from predecessors for a forward
// problem, successors for a backward one); Out[b] is Transfer(b, In[b]).
type Result[F any] struct {
	In, Out []F
}

// Solve runs the worklist algorithm to fixpoint. Blocks are processed in
// reverse postorder (postorder for backward problems), revisiting only
// when an input changes; with a monotone Transfer over a finite-height
// lattice, termination is guaranteed.
func Solve[F any](g *Graph, p Problem[F]) Result[F] {
	n := len(g.Blocks)
	res := Result[F]{In: make([]F, n), Out: make([]F, n)}

	rpo := ReversePostorder(g)
	order := rpo
	if p.Dir == Backward {
		order = make([]*Block, len(rpo))
		for i, blk := range rpo {
			order[len(rpo)-1-i] = blk
		}
	}
	pos := make([]int, n) // block index -> position in order
	for i := range pos {
		pos[i] = -1
	}
	for i, blk := range order {
		pos[blk.Index] = i
	}

	boundary := g.Entry
	if p.Dir == Backward {
		boundary = g.Exit
	}
	for _, blk := range g.Blocks {
		if blk == boundary {
			res.In[blk.Index] = p.Boundary
		} else {
			res.In[blk.Index] = p.Init
		}
		res.Out[blk.Index] = p.Transfer(blk, res.In[blk.Index])
	}

	// flowEdges yields the edges facts propagate across from blk, paired
	// with the receiving block.
	type hop struct {
		e  *Edge
		to *Block
	}
	flow := func(blk *Block) []hop {
		var hs []hop
		if p.Dir == Forward {
			for _, e := range blk.Succs {
				hs = append(hs, hop{e, e.To})
			}
		} else {
			for _, e := range blk.Preds {
				hs = append(hs, hop{e, e.From})
			}
		}
		return hs
	}

	dirty := make([]bool, n)
	for _, blk := range order {
		dirty[blk.Index] = true
	}
	for {
		// Pick the dirty block earliest in iteration order — deterministic
		// and close to the classic RPO sweep.
		next := -1
		for _, blk := range order {
			if dirty[blk.Index] {
				next = blk.Index
				break
			}
		}
		if next == -1 {
			break
		}
		dirty[next] = false
		blk := g.Blocks[next]

		res.Out[next] = p.Transfer(blk, res.In[next])
		for _, h := range flow(blk) {
			if pos[h.to.Index] == -1 {
				continue // not reachable in this direction
			}
			f := res.Out[next]
			if p.EdgeTransfer != nil {
				f = p.EdgeTransfer(h.e, f)
			}
			joined := p.Join(res.In[h.to.Index], f)
			if !p.Equal(joined, res.In[h.to.Index]) {
				res.In[h.to.Index] = joined
				dirty[h.to.Index] = true
			}
		}
	}
	return res
}
