package cfg

// Dominators computes the immediate-dominator relation of g with the
// Cooper/Harvey/Kennedy iterative algorithm over a reverse postorder. The
// returned slice is indexed by Block.Index: idom[b] is the index of b's
// immediate dominator, idom[entry] is the entry itself, and blocks with no
// path from the entry (the exit of a function whose every path loops
// forever) get -1.
//
// Analyzers use dominance for precision in wording: a write dominated by
// the publication point races "on every path", one merely reachable from
// it races "on some path".
func Dominators(g *Graph) []int {
	rpo := ReversePostorder(g)
	order := make([]int, len(g.Blocks)) // block index -> rpo position
	for i := range order {
		order[i] = -1
	}
	for pos, blk := range rpo {
		order[blk.Index] = pos
	}

	idom := make([]int, len(g.Blocks))
	for i := range idom {
		idom[i] = -1
	}
	idom[g.Entry.Index] = g.Entry.Index

	intersect := func(a, b int) int {
		for a != b {
			for order[a] > order[b] {
				a = idom[a]
			}
			for order[b] > order[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, blk := range rpo {
			if blk == g.Entry {
				continue
			}
			newIdom := -1
			for _, e := range blk.Preds {
				p := e.From.Index
				if idom[p] == -1 {
					continue // predecessor not yet processed / unreachable
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[blk.Index] != newIdom {
				idom[blk.Index] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether block a dominates block b under idom (as
// returned by Dominators): every path from the entry to b passes through a.
func Dominates(idom []int, a, b int) bool {
	if idom[b] == -1 {
		return false
	}
	for {
		if b == a {
			return true
		}
		if idom[b] == b { // reached the entry
			return b == a
		}
		b = idom[b]
	}
}

// ReversePostorder returns g's blocks in reverse postorder of a
// depth-first search from the entry — the canonical iteration order for
// forward dataflow. Successor edges are followed in their stored order, so
// the result is deterministic for a given build.
func ReversePostorder(g *Graph) []*Block {
	seen := make([]bool, len(g.Blocks))
	post := make([]*Block, 0, len(g.Blocks))
	var dfs func(*Block)
	dfs = func(blk *Block) {
		if seen[blk.Index] {
			return
		}
		seen[blk.Index] = true
		for _, e := range blk.Succs {
			dfs(e.To)
		}
		post = append(post, blk)
	}
	dfs(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}
