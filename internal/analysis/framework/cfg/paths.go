package cfg

import "go/ast"

// Interp is a bounded path-sensitive interpreter: it pushes sets of
// client states along the CFG's edges, calling back per evaluated node,
// per edge (for branch-condition refinement), and per function exit.
//
// This is deliberately an under-approximation. Loops are explored until a
// per-block visit budget runs out, then remaining states are dropped —
// analyzers built on it report a violation only when it shows on an
// explored path, so the budget trims reports, never adds spurious ones
// (the lfcheck house rule: fewer reports, never noise). State-set size is
// capped the same way.
type Interp[S any] struct {
	// MaxStates caps the number of distinct states queued at any one
	// block; excess states are dropped. Zero means a default of 64.
	MaxStates int

	// MaxVisits caps how many times one block is processed; once
	// exhausted, new states arriving there are dropped. This bounds loop
	// exploration (the first pass plus a few refinement rounds covers the
	// zero-, one-, and stabilized-iteration behaviors). Zero means a
	// default of 4.
	MaxVisits int

	// Clone deep-copies a state; the interpreter forks states at branch
	// points.
	Clone func(S) S

	// Equal, when non-nil, deduplicates states queued at the same block,
	// keeping path explosion in check on diamond-heavy code.
	Equal func(a, b S) bool

	// Node applies one evaluated node (statement or control condition) to
	// a state, mutating it in place.
	Node func(n ast.Node, s S)

	// Edge, when non-nil, refines a state crossing an edge — typically
	// applying the branch condition carried on True/False edges. It
	// returns false to kill the state (the path is infeasible).
	Edge func(e *Edge, s S) bool

	// Exit is called once per state per edge into the exit block, with
	// the edge's kind telling the client how the function ended (Return,
	// ImplicitReturn, or Panic).
	Exit func(e *Edge, s S)
}

// Run explores g starting from the given entry state.
func (ip *Interp[S]) Run(g *Graph, entry S) {
	maxStates := ip.MaxStates
	if maxStates == 0 {
		maxStates = 64
	}
	maxVisits := ip.MaxVisits
	if maxVisits == 0 {
		maxVisits = 4
	}

	rpoPos := make([]int, len(g.Blocks))
	for i := range rpoPos {
		rpoPos[i] = -1
	}
	rpo := ReversePostorder(g)
	for pos, blk := range rpo {
		rpoPos[blk.Index] = pos
	}

	pending := make([][]S, len(g.Blocks))
	visits := make([]int, len(g.Blocks))

	enqueue := func(blk *Block, s S) {
		q := pending[blk.Index]
		if ip.Equal != nil {
			for _, old := range q {
				if ip.Equal(old, s) {
					return
				}
			}
		}
		if len(q) >= maxStates {
			return
		}
		pending[blk.Index] = append(q, s)
	}
	enqueue(g.Entry, entry)

	for {
		// Pick the pending block earliest in RPO — deterministic, and it
		// drains straight-line regions before revisiting loop heads.
		next := -1
		for _, blk := range rpo {
			if len(pending[blk.Index]) > 0 {
				next = blk.Index
				break
			}
		}
		if next == -1 {
			return
		}
		blk := g.Blocks[next]
		states := pending[next]
		pending[next] = nil
		if visits[next] >= maxVisits {
			continue // budget spent: drop these states
		}
		visits[next]++

		for _, s := range states {
			for _, n := range blk.Nodes {
				ip.Node(n, s)
			}
			for i, e := range blk.Succs {
				out := s
				if i < len(blk.Succs)-1 {
					out = ip.Clone(s)
				}
				if ip.Edge != nil && !ip.Edge(e, out) {
					continue
				}
				if e.To == g.Exit {
					if ip.Exit != nil {
						ip.Exit(e, out)
					}
					continue
				}
				enqueue(e.To, out)
			}
			// A state reaching a block with no successors that is not the
			// exit can only be the empty select: the path blocks forever
			// and is dropped, matching the lenient rule.
		}
	}
}
