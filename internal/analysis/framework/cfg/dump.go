package cfg

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// Dump renders g in a compact, byte-stable text form for golden tests and
// debugging: one section per block (index, role label, the source text of
// each evaluated node on one line) followed by its out-edges, then the
// dominator tree. Block order is Graph.Blocks order (entry first, exit
// last), so output is stable for a given build.
func Dump(g *Graph, fset *token.FileSet) string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d %s:\n", blk.Index, blk.Label)
		for _, n := range blk.Nodes {
			fmt.Fprintf(&sb, "\t%s\n", nodeText(n, fset))
		}
		for _, e := range blk.Succs {
			fmt.Fprintf(&sb, "\t-> b%d [%s]\n", e.To.Index, e.Kind)
		}
	}
	idom := Dominators(g)
	sb.WriteString("idom:")
	for i, d := range idom {
		if i == g.Entry.Index {
			continue
		}
		if d == -1 {
			fmt.Fprintf(&sb, " b%d=?", i)
		} else {
			fmt.Fprintf(&sb, " b%d=b%d", i, d)
		}
	}
	sb.WriteString("\n")
	return sb.String()
}

// nodeText renders one evaluated node as a single line of source.
func nodeText(n ast.Node, fset *token.FileSet) string {
	if rs, ok := n.(*ast.RangeStmt); ok {
		// The head occurrence of a RangeStmt stands for the per-iteration
		// key/value binding, not the whole loop; render just that.
		var head string
		if rs.Key != nil {
			head = exprText(rs.Key, fset)
			if rs.Value != nil {
				head += ", " + exprText(rs.Value, fset)
			}
			head += " " + rs.Tok.String() + " "
		}
		return "range: " + head + exprText(rs.X, fset)
	}
	var buf bytes.Buffer
	cfgPrinter.Fprint(&buf, fset, n)
	return strings.Join(strings.Fields(buf.String()), " ")
}

func exprText(e ast.Expr, fset *token.FileSet) string {
	var buf bytes.Buffer
	cfgPrinter.Fprint(&buf, fset, e)
	return strings.Join(strings.Fields(buf.String()), " ")
}

var cfgPrinter = printer.Config{Mode: printer.RawFormat}
