// Package cfg builds per-function control-flow graphs from go/ast syntax,
// with dominator computation, a generic worklist dataflow solver, and a
// bounded path-sensitive interpreter — the flow foundation the lfcheck
// reference-lifetime analyzers stand on.
//
// The paper's SafeRead/Release discipline (Figures 17 and 18) is inherently
// path-dependent: which counted references are live depends on which branch
// a function took. Per-statement AST walking cannot see that; a CFG makes
// every path explicit. The builder covers the full statement language —
// if/else, for (all three clauses), range, switch with fallthrough, type
// switch, select, goto and labels, labeled break/continue, defer, and
// explicit panic — and routes every way out of a function through a single
// synthetic Exit block, with edges classified as normal returns, the
// implicit return at the end of the body, or panics. Analyzers use the
// classification to treat "this path returns" differently from "this path
// only panics".
//
// A graph is pure syntax plus edges: blocks hold the statements and
// condition expressions evaluated on a path, in execution order, and edges
// carry the branch condition (with its polarity) so dataflow clients can
// refine facts at branch points ("on this edge, q == nil held").
// Unreachable code is pruned at build time, so every block an analyzer
// sees lies on some path from the entry.
package cfg

import (
	"go/ast"
	"go/token"
	"go/types"
)

// EdgeKind classifies how control moves along an edge.
type EdgeKind uint8

const (
	// Flow is an unconditional transfer: sequential fallthrough between
	// blocks, a jump (goto, break, continue), or one nondeterministic arm
	// of a switch or select.
	Flow EdgeKind = iota

	// True is taken when the source block's final condition evaluated true.
	True

	// False is taken when the source block's final condition evaluated
	// false.
	False

	// Return enters the Exit block from an explicit return statement.
	Return

	// ImplicitReturn enters the Exit block by falling off the end of the
	// function body.
	ImplicitReturn

	// Panic enters the Exit block from an explicit call to the panic
	// builtin: the path terminates without returning.
	Panic
)

func (k EdgeKind) String() string {
	switch k {
	case Flow:
		return "flow"
	case True:
		return "true"
	case False:
		return "false"
	case Return:
		return "return"
	case ImplicitReturn:
		return "implicit-return"
	case Panic:
		return "panic"
	}
	return "?"
}

// Edge is one control transfer between blocks.
type Edge struct {
	From, To *Block
	Kind     EdgeKind

	// Cond is the governing condition for True/False edges: the expression
	// the source block evaluated last. Dataflow clients refine facts with
	// it (a True edge for `q == nil` proves q nil on the target side).
	Cond ast.Expr

	// Ret is the terminating statement of Return edges, for diagnostics.
	Ret *ast.ReturnStmt
}

// Block is a maximal straight-line run of evaluated nodes. Nodes holds
// statements and the expressions evaluated for control decisions
// (conditions, switch tags, case lists, range operands), in execution
// order; an interpreter applies them sequentially and then fans out along
// Succs.
type Block struct {
	Index int
	Label string // a human-readable role ("entry", "for.body", ...) for dumps
	Nodes []ast.Node
	Succs []*Edge
	Preds []*Edge
}

// Graph is one function's control-flow graph. Blocks[0] is the entry; Exit
// is the synthetic final block every return, implicit return, and panic
// edge targets. Exit holds no nodes and has no successors.
type Graph struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
}

// New builds the CFG of one function body. info supplies type information
// for recognizing the panic builtin; it may be nil (a bare name match is
// used then), which test fixtures rely on.
func New(body *ast.BlockStmt, info *types.Info) *Graph {
	b := &builder{
		info:   info,
		labels: make(map[string]*labelInfo),
	}
	b.exit = b.newBlock("exit")
	entry := b.newBlock("entry")
	b.cur = entry
	b.stmtList(body.List)
	b.edgeTo(b.exit, ImplicitReturn, nil, nil)
	return b.finish(entry)
}

// A Cache memoizes the CFGs of one package, shared by every analyzer the
// driver runs over it (analyzers run sequentially per package, so no
// locking is needed). Graphs are keyed by body identity — the driver
// already content-hashes package sources for its result cache, so within
// one load a body node identifies its source text.
type Cache struct {
	info *types.Info
	m    map[*ast.BlockStmt]*Graph
}

// NewCache returns an empty CFG cache for a package with the given type
// information.
func NewCache(info *types.Info) *Cache {
	return &Cache{info: info, m: make(map[*ast.BlockStmt]*Graph)}
}

// Get returns the memoized CFG for body, building it on first use.
func (c *Cache) Get(body *ast.BlockStmt) *Graph {
	if g, ok := c.m[body]; ok {
		return g
	}
	g := New(body, c.info)
	c.m[body] = g
	return g
}

// labelInfo tracks one label: the block a goto to it jumps to, and, once
// its statement turns out to be a loop/switch/select, the break/continue
// targets a labeled branch uses.
type labelInfo struct {
	target *Block // the labeled statement's entry, for goto
	brk    *Block
	cont   *Block
}

// breakable is one enclosing construct break (and for loops, continue) can
// leave.
type breakable struct {
	label  string // "" when the construct is unlabeled
	brk    *Block
	cont   *Block // nil for switch/select
	isLoop bool
}

type builder struct {
	info   *types.Info
	blocks []*Block
	cur    *Block
	exit   *Block
	stack  []breakable
	labels map[string]*labelInfo

	// pendingLabel is the label of the LabeledStmt just entered, consumed
	// by the next loop/switch/select so labeled break/continue resolve.
	pendingLabel string

	// switchBodies, during switch construction, maps each case body's
	// entry so fallthrough can jump to the next one.
	switchBodies [][]*Block
}

func (b *builder) newBlock(label string) *Block {
	blk := &Block{Index: len(b.blocks), Label: label}
	b.blocks = append(b.blocks, blk)
	return blk
}

// edgeTo links the current block to dst; a nil current block (after a
// terminator) makes it a no-op.
func (b *builder) edgeTo(dst *Block, kind EdgeKind, cond ast.Expr, ret *ast.ReturnStmt) {
	if b.cur == nil {
		return
	}
	e := &Edge{From: b.cur, To: dst, Kind: kind, Cond: cond, Ret: ret}
	b.cur.Succs = append(b.cur.Succs, e)
	dst.Preds = append(dst.Preds, e)
}

// edgeFrom links an arbitrary source block to dst.
func (b *builder) edgeFrom(src, dst *Block, kind EdgeKind, cond ast.Expr) {
	e := &Edge{From: src, To: dst, Kind: kind, Cond: cond}
	src.Succs = append(src.Succs, e)
	dst.Preds = append(dst.Preds, e)
}

func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		// Unreachable statement (after return/panic/jump): give it a block
		// so syntax is not lost, knowing the prune pass will drop it if
		// nothing jumps here.
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// ensure makes sure there is a current block, for statements that begin
// with control flow (e.g. a loop as the first statement after a return —
// unreachable, but goto labels inside it may not be).
func (b *builder) ensure() {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.EmptyStmt:
		// no effect

	case *ast.LabeledStmt:
		li := b.labelFor(s.Label.Name)
		b.ensure()
		b.edgeTo(li.target, Flow, nil, nil)
		b.cur = li.target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := unparen(s.X).(*ast.CallExpr); ok && b.isPanic(call) {
			b.edgeTo(b.exit, Panic, nil, nil)
			b.cur = nil
		}

	case *ast.ReturnStmt:
		b.add(s)
		if b.cur != nil {
			e := &Edge{From: b.cur, To: b.exit, Kind: Return, Ret: s}
			b.cur.Succs = append(b.cur.Succs, e)
			b.exit.Preds = append(b.exit.Preds, e)
		}
		b.cur = nil

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.IfStmt:
		b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.ensure()
		b.add(s.Cond)
		condBlock := b.cur
		then := b.newBlock("if.then")
		var els *Block
		if s.Else != nil {
			els = b.newBlock("if.else")
		}
		after := b.newBlock("if.after")
		b.edgeFrom(condBlock, then, True, s.Cond)
		b.cur = then
		b.stmtList(s.Body.List)
		b.edgeTo(after, Flow, nil, nil)
		if els != nil {
			b.edgeFrom(condBlock, els, False, s.Cond)
			b.cur = els
			b.stmt(s.Else)
			b.edgeTo(after, Flow, nil, nil)
		} else {
			b.edgeFrom(condBlock, after, False, s.Cond)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.ensure()
		head := b.newBlock("for.head")
		body := b.newBlock("for.body")
		after := b.newBlock("for.after")
		b.edgeTo(head, Flow, nil, nil)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
			b.edgeTo(body, True, s.Cond, nil)
			b.edgeFrom(b.cur, after, False, s.Cond)
		} else {
			b.edgeTo(body, Flow, nil, nil)
		}
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock("for.post")
			cont = post
		}
		b.pushBreakable(label, after, cont, true)
		b.cur = body
		b.stmtList(s.Body.List)
		b.edgeTo(cont, Flow, nil, nil)
		b.popBreakable()
		if post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.edgeTo(head, Flow, nil, nil)
		}
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.ensure()
		// The range operand is evaluated once, before iteration begins.
		b.add(s.X)
		head := b.newBlock("range.head")
		body := b.newBlock("range.body")
		after := b.newBlock("range.after")
		b.edgeTo(head, Flow, nil, nil)
		// Each arrival at the head either starts another iteration
		// (binding the key/value variables — the RangeStmt node stands for
		// that binding) or exhausts the range.
		head.Nodes = append(head.Nodes, s)
		b.edgeFrom(head, body, Flow, nil)
		b.edgeFrom(head, after, Flow, nil)
		b.pushBreakable(label, after, head, true)
		b.cur = body
		b.stmtList(s.Body.List)
		b.edgeTo(head, Flow, nil, nil)
		b.popBreakable()
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.ensure()
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBlocks(label, s.Body, func(cc *ast.CaseClause, blk *Block) {
			// The case expressions are evaluated while matching.
			for _, e := range cc.List {
				blk.Nodes = append(blk.Nodes, e)
			}
		}, true)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.ensure()
		if s.Assign != nil {
			b.add(s.Assign)
		}
		// Case lists are types, not evaluated expressions; fallthrough is
		// not permitted in a type switch.
		b.switchBlocks(label, s.Body, nil, false)

	case *ast.SelectStmt:
		label := b.takeLabel()
		b.ensure()
		head := b.cur
		after := b.newBlock("select.after")
		b.pushBreakable(label, after, nil, false)
		taken := false
		for _, clause := range s.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			taken = true
			arm := b.newBlock("select.arm")
			b.edgeFrom(head, arm, Flow, nil)
			b.cur = arm
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edgeTo(after, Flow, nil, nil)
		}
		b.popBreakable()
		if !taken {
			// select{} blocks forever: no path continues.
			b.cur = nil
			return
		}
		b.cur = after

	case *ast.DeclStmt, *ast.AssignStmt, *ast.SendStmt, *ast.IncDecStmt,
		*ast.GoStmt, *ast.DeferStmt:
		b.add(s)

	default:
		// Anything unanticipated flows through as an opaque node.
		b.add(s)
	}
}

// switchBlocks lays out the arms of a (type) switch: the current block fans
// out nondeterministically to each case, plus directly to the after block
// when no default clause exists. evalCase, when non-nil, seeds each arm
// with the expressions matching evaluates.
func (b *builder) switchBlocks(label string, body *ast.BlockStmt, evalCase func(*ast.CaseClause, *Block), allowFallthrough bool) {
	head := b.cur
	after := b.newBlock("switch.after")
	b.pushBreakable(label, after, nil, false)

	var clauses []*ast.CaseClause
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	arms := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		arms[i] = b.newBlock("case")
		if cc.List == nil {
			arms[i].Label = "case.default"
			hasDefault = true
		}
		b.edgeFrom(head, arms[i], Flow, nil)
		if evalCase != nil {
			evalCase(cc, arms[i])
		}
	}
	if !hasDefault {
		b.edgeFrom(head, after, Flow, nil)
	}
	if allowFallthrough {
		b.switchBodies = append(b.switchBodies, arms)
	}
	for i, cc := range clauses {
		b.cur = arms[i]
		if allowFallthrough {
			// Mark which arm is current so a fallthrough statement finds
			// its successor; encoded by rotating the tracked slice.
			b.switchBodies[len(b.switchBodies)-1] = arms[i+1:]
		}
		b.stmtList(cc.Body)
		b.edgeTo(after, Flow, nil, nil)
	}
	if allowFallthrough {
		b.switchBodies = b.switchBodies[:len(b.switchBodies)-1]
	}
	b.popBreakable()
	b.cur = after
}

func (b *builder) branch(s *ast.BranchStmt) {
	switch s.Tok {
	case token.BREAK:
		if t := b.findBreakable(labelName(s), false); t != nil {
			b.edgeTo(t.brk, Flow, nil, nil)
		}
		b.cur = nil
	case token.CONTINUE:
		if t := b.findBreakable(labelName(s), true); t != nil {
			b.edgeTo(t.cont, Flow, nil, nil)
		}
		b.cur = nil
	case token.GOTO:
		if s.Label != nil {
			b.edgeTo(b.labelFor(s.Label.Name).target, Flow, nil, nil)
		}
		b.cur = nil
	case token.FALLTHROUGH:
		if n := len(b.switchBodies); n > 0 && len(b.switchBodies[n-1]) > 0 {
			b.edgeTo(b.switchBodies[n-1][0], Flow, nil, nil)
		}
		b.cur = nil
	}
}

func labelName(s *ast.BranchStmt) string {
	if s.Label != nil {
		return s.Label.Name
	}
	return ""
}

func (b *builder) pushBreakable(label string, brk, cont *Block, isLoop bool) {
	b.stack = append(b.stack, breakable{label: label, brk: brk, cont: cont, isLoop: isLoop})
	if label != "" {
		li := b.labelFor(label)
		li.brk = brk
		li.cont = cont
	}
}

func (b *builder) popBreakable() {
	b.stack = b.stack[:len(b.stack)-1]
}

// findBreakable resolves the target of a break (or, with needLoop,
// continue): the innermost matching construct, or the labeled one.
func (b *builder) findBreakable(label string, needLoop bool) *breakable {
	for i := len(b.stack) - 1; i >= 0; i-- {
		t := &b.stack[i]
		if label != "" {
			if t.label == label {
				return t
			}
			continue
		}
		if !needLoop || t.isLoop {
			return t
		}
	}
	return nil
}

func (b *builder) labelFor(name string) *labelInfo {
	if li, ok := b.labels[name]; ok {
		return li
	}
	li := &labelInfo{target: b.newBlock("label." + name)}
	b.labels[name] = li
	return li
}

// isPanic reports whether call invokes the panic builtin.
func (b *builder) isPanic(call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	if b.info == nil {
		return true
	}
	_, isBuiltin := b.info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// finish prunes blocks unreachable from the entry, renumbers the survivors
// (entry first, exit last), and filters dead edges out of predecessor
// lists.
func (b *builder) finish(entry *Block) *Graph {
	reach := make(map[*Block]bool)
	var visit func(*Block)
	visit = func(blk *Block) {
		if reach[blk] {
			return
		}
		reach[blk] = true
		for _, e := range blk.Succs {
			visit(e.To)
		}
	}
	visit(entry)

	g := &Graph{Entry: entry, Exit: b.exit}
	for _, blk := range b.blocks {
		if blk == b.exit {
			continue // placed last below
		}
		if !reach[blk] {
			continue
		}
		blk.Index = len(g.Blocks)
		g.Blocks = append(g.Blocks, blk)
	}
	b.exit.Index = len(g.Blocks)
	g.Blocks = append(g.Blocks, b.exit)
	for _, blk := range g.Blocks {
		var preds []*Edge
		for _, e := range blk.Preds {
			if reach[e.From] {
				preds = append(preds, e)
			}
		}
		blk.Preds = preds
	}
	return g
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
