package refbalance

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"valois/internal/analysis/framework"
)

// ParamEffect describes what a function does with the counted reference a
// caller passes in one parameter. The values form a small lattice ordered
// Neutral < Transfers < Releases; summary computation takes the maximum of
// the effects observed, erring toward the effects that silence reports.
type ParamEffect uint8

const (
	// ParamNeutral: the function only inspects the argument (reads fields,
	// compares it); the caller's reference obligation survives the call.
	// This is the effect that makes the analysis interprocedural: with the
	// canonical intraprocedural assumption "any call may take ownership", a
	// reference leaked across a read-only helper call is invisible.
	ParamNeutral ParamEffect = iota

	// ParamTransfers: the function takes ownership of the reference (stores
	// it into a structure, hands it to unknown code); the caller's
	// obligation is discharged, and later releases are its own business.
	ParamTransfers

	// ParamReleases: the function releases the reference (it reaches a
	// Release/ReleaseNodes call); the caller's obligation is discharged and
	// releasing the same reference again is a double release.
	ParamReleases
)

// Summary is the per-function refcount fact computed bottom-up over the
// package dependency graph: which results carry a +1 counted reference the
// caller must balance, and what happens to the references passed in each
// parameter. The zero Summary (no +1 results, all parameters neutral) is
// meaningful and distinct from "no summary known": an absent summary makes
// the checker assume every argument is consumed (lenient), while a neutral
// summary keeps the caller's obligation alive.
type Summary struct {
	// Results[i] reports whether result i carries a +1 reference.
	Results []bool
	// Params[i] is the effect on parameter i. For variadic functions the
	// last entry covers every expanded argument.
	Params []ParamEffect
	// NilTogether reports that the function's +1 results are correlated:
	// every return delivers either all of them non-nil or all of them nil
	// (the both-or-neither allocation idiom of AllocInsertNodes). Callers
	// link such references into a group, and proving any one nil
	// discharges the whole group. Only meaningful with two or more +1
	// results.
	NilTogether bool
}

// AFact marks Summary as a framework fact.
func (*Summary) AFact() {}

// plusResult reports whether the summary marks result i as +1.
func (s *Summary) plusResult(i int) bool {
	return s != nil && i < len(s.Results) && s.Results[i]
}

// paramEffect returns the effect on argument position j, expanding the
// variadic tail.
func (s *Summary) paramEffect(j int) ParamEffect {
	if s == nil || len(s.Params) == 0 {
		return ParamTransfers
	}
	if j >= len(s.Params) {
		j = len(s.Params) - 1
	}
	return s.Params[j]
}

// isPointer reports whether t is (or is a named type whose underlying is) a
// pointer — the only values that can carry a counted reference.
func isPointer(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}

// intrinsicSummary recognizes the paper's protocol functions by name, the
// same convention the saferead analyzer uses. Name-based recognition keeps
// the analyzers applicable to both the real managers (mm.RC, the List
// wrappers) and test fixtures, and it takes precedence over computed
// summaries: mm.RC.SafeRead's own body acquires its +1 via a bare
// refct.Add the computation cannot see.
func intrinsicSummary(fn *types.Func) *Summary {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	neutralParams := func() []ParamEffect {
		return make([]ParamEffect, sig.Params().Len())
	}
	switch fn.Name() {
	case "SafeRead", "safeRead", "Alloc":
		// Figure 15 / Figure 17: the returned cell carries one reference
		// owned by the caller.
		if sig.Results().Len() == 1 && isPointer(sig.Results().At(0).Type()) {
			return &Summary{Results: []bool{true}, Params: neutralParams()}
		}
	case "Release", "release":
		// Figure 16: the argument's reference is given back.
		if sig.Params().Len() >= 1 && isPointer(sig.Params().At(0).Type()) {
			p := neutralParams()
			p[0] = ParamReleases
			return &Summary{Results: make([]bool, sig.Results().Len()), Params: p}
		}
	case "ReleaseNodes", "releaseNodes":
		if sig.Params().Len() >= 1 {
			p := neutralParams()
			for i := range p {
				p[i] = ParamReleases
			}
			return &Summary{Results: make([]bool, sig.Results().Len()), Params: p}
		}
	case "AddRef", "addRef":
		// Acquires an extra reference to a cell the caller already holds;
		// it neither consumes nor releases the argument.
		return &Summary{Results: make([]bool, sig.Results().Len()), Params: neutralParams()}
	}
	return nil
}

// summarizer computes the per-function summaries of one package, consulting
// imported facts for out-of-package callees.
type summarizer struct {
	pass  *framework.Pass
	local map[*types.Func]*Summary
}

// computeSummaries builds summaries for every function declared in the
// package, iterating to a fixpoint so intra-package helper chains resolve
// regardless of declaration order, then exports each as a fact for the
// packages that import this one.
func computeSummaries(pass *framework.Pass) *summarizer {
	s := &summarizer{pass: pass, local: make(map[*types.Func]*Summary)}

	var decls []*ast.FuncDecl
	var fns []*types.Func
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls = append(decls, fd)
			fns = append(fns, fn)
		}
	}
	// Deterministic iteration order, so summaries (and through them the
	// diagnostics) are identical across runs.
	order := make([]int, len(decls))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return framework.ObjectKey(fns[order[a]]) < framework.ObjectKey(fns[order[b]])
	})

	// The effects only grow along the Neutral < Transfers < Releases order
	// and the +1 sets only grow, so iteration converges; the bound is
	// insurance against a modeling bug.
	for iter := 0; iter < 8; iter++ {
		changed := false
		for _, i := range order {
			next := s.summarizeFunc(decls[i], fns[i])
			if !summariesEqual(s.local[fns[i]], next) {
				s.local[fns[i]] = next
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, i := range order {
		pass.ExportObjectFact(fns[i], s.local[fns[i]])
	}
	return s
}

// summaryFor resolves the summary of a call's callee: protocol intrinsics
// first, then this package's computed summaries, then facts imported from
// dependency packages. nil means unknown: the checker then assumes every
// argument is consumed.
func (s *summarizer) summaryFor(fn *types.Func) *Summary {
	if fn == nil {
		return nil
	}
	if sum := intrinsicSummary(fn); sum != nil {
		return sum
	}
	if sum, ok := s.local[fn]; ok {
		return sum
	}
	var imported Summary
	if s.pass.ImportObjectFact(fn, &imported) {
		return &imported
	}
	return nil
}

// summarizeFunc computes one function's summary from its body, given the
// current fixpoint state.
func (s *summarizer) summarizeFunc(fd *ast.FuncDecl, fn *types.Func) *Summary {
	sig := fn.Type().(*types.Signature)
	sum := &Summary{
		Results: make([]bool, sig.Results().Len()),
		Params:  make([]ParamEffect, sig.Params().Len()),
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isPointer(sig.Params().At(i).Type()) {
			sum.Params[i] = s.paramEffect(fd, sig.Params().At(i))
		}
	}
	plus := s.plusVars(fd)
	for i := 0; i < sig.Results().Len(); i++ {
		if isPointer(sig.Results().At(i).Type()) {
			sum.Results[i] = s.resultPlus(fd, sig, i, plus)
		}
	}
	sum.NilTogether = s.nilTogether(fd, sig, sum)
	return sum
}

// nilTogether decides whether the function's +1 results are born
// correlated: with at least two +1 results, every explicit return must
// deliver either nil literals in all +1 positions or non-nil expressions
// in all of them. Naked returns and forwards of calls without the
// property veto — leniency here means fewer discharged obligations, never
// spurious reports.
func (s *summarizer) nilTogether(fd *ast.FuncDecl, sig *types.Signature, sum *Summary) bool {
	plusCount := 0
	for _, p := range sum.Results {
		if p {
			plusCount++
		}
	}
	if plusCount < 2 {
		return false
	}
	ok := true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if !ok {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // separate function, separate returns
		}
		ret, isRet := n.(*ast.ReturnStmt)
		if !isRet {
			return true
		}
		switch {
		case len(ret.Results) == sig.Results().Len():
			nils := 0
			for i, res := range ret.Results {
				if !sum.Results[i] {
					continue
				}
				if tv, found := s.pass.TypesInfo.Types[unparen(res)]; found && tv.IsNil() {
					nils++
				}
			}
			if nils != 0 && nils != plusCount {
				ok = false // a mixed return breaks the correlation
			}
		case len(ret.Results) == 1:
			// return f() forwarding a multi-result call inherits the
			// callee's correlation.
			call, isCall := unparen(ret.Results[0]).(*ast.CallExpr)
			if !isCall {
				ok = false
				return true
			}
			fsum := s.summaryFor(calleeFunc(s.pass, call))
			if fsum == nil || !fsum.NilTogether {
				ok = false
			}
		default: // naked return: correlation unknowable
			ok = false
		}
		return true
	})
	return ok
}

// paramEffect classifies every use of parameter p in the body and joins
// the observations: reads and comparisons are neutral; an argument position
// takes the callee's declared effect; everything that lets the value escape
// (returned, stored, captured, address taken, unknown callee) transfers
// ownership. Aliases of the parameter are not followed.
func (s *summarizer) paramEffect(fd *ast.FuncDecl, p *types.Var) ParamEffect {
	effect := ParamNeutral
	s.walkUses(fd.Body, p, func(path []ast.Node) {
		if e := s.classifyUse(path); e > effect {
			effect = e
		}
	})
	return effect
}

// walkUses calls visit for every identifier in body resolving to v, with
// the ancestor path (outermost first, the identifier last). ast.Inspect
// visits nil on the way out of each node, which pops the path stack.
func (s *summarizer) walkUses(body ast.Node, v *types.Var, visit func(path []ast.Node)) {
	var path []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			path = path[:len(path)-1]
			return true
		}
		path = append(path, n)
		if id, ok := n.(*ast.Ident); ok && s.pass.TypesInfo.Uses[id] == v {
			visit(append([]ast.Node(nil), path...))
		}
		return true
	})
}

// classifyUse maps one occurrence of a tracked parameter (the last path
// element) to its effect.
func (s *summarizer) classifyUse(path []ast.Node) ParamEffect {
	id := path[len(path)-1].(*ast.Ident)
	// A use anywhere inside a function literal escapes into the closure.
	for _, n := range path[:len(path)-1] {
		if _, ok := n.(*ast.FuncLit); ok {
			return ParamTransfers
		}
	}
	if len(path) < 2 {
		return ParamNeutral
	}
	parent := path[len(path)-2]
	// Look through parentheses.
	for {
		p, ok := parent.(*ast.ParenExpr)
		if !ok {
			break
		}
		idx := indexOf(path, p)
		if idx <= 0 {
			break
		}
		parent = path[idx-1]
	}
	switch parent := parent.(type) {
	case *ast.SelectorExpr:
		// p.field read or p.method(...) receiver: inspection only.
		return ParamNeutral
	case *ast.BinaryExpr, *ast.StarExpr, *ast.IndexExpr, *ast.SliceExpr,
		*ast.IfStmt, *ast.ForStmt, *ast.SwitchStmt, *ast.CaseClause,
		*ast.TypeAssertExpr, *ast.IncDecStmt, *ast.ExprStmt:
		return ParamNeutral
	case *ast.UnaryExpr:
		if parent.Op == token.AND {
			return ParamTransfers
		}
		return ParamNeutral
	case *ast.CallExpr:
		if unparen(parent.Fun) == ast.Expr(id) {
			return ParamNeutral // calling through the variable, not passing it
		}
		for j, arg := range parent.Args {
			if unparen(arg) == ast.Expr(id) {
				if cas, ok := casShape(s.pass, parent); ok {
					// Compare&Swap only reads its expected argument; the
					// stored new value is a transfer.
					switch j {
					case cas.expected:
						return ParamNeutral
					case cas.new:
						return ParamTransfers
					}
					return ParamNeutral // the location argument
				}
				sum := s.summaryFor(calleeFunc(s.pass, parent))
				if sum == nil {
					return ParamTransfers
				}
				switch sum.paramEffect(j) {
				case ParamReleases:
					return ParamReleases
				case ParamNeutral:
					return ParamNeutral
				default:
					return ParamTransfers
				}
			}
		}
		return ParamNeutral
	default:
		// Returned, assigned, stored in a composite, sent on a channel,
		// ranged over, deferred... — ownership leaves the function's hands.
		return ParamTransfers
	}
}

// plusVars over-approximates the set of local variables (and named results)
// that were assigned a +1 reference somewhere in the body: direct results
// of +1 calls, and transfers from other such variables.
func (s *summarizer) plusVars(fd *ast.FuncDecl) map[*types.Var]bool {
	plus := make(map[*types.Var]bool)
	for iter := 0; iter < 4; iter++ {
		changed := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			mark := func(lhs ast.Expr) {
				if v := usedOrDefinedVar(s.pass, lhs); v != nil && !plus[v] {
					plus[v] = true
					changed = true
				}
			}
			if len(as.Lhs) == len(as.Rhs) {
				for i := range as.Rhs {
					rhs := unparen(as.Rhs[i])
					if call, ok := rhs.(*ast.CallExpr); ok {
						if sum := s.summaryFor(calleeFunc(s.pass, call)); sum.plusResult(0) {
							mark(as.Lhs[i])
						}
						continue
					}
					if v := usedOrDefinedVar(s.pass, rhs); v != nil && plus[v] {
						mark(as.Lhs[i])
					}
				}
			} else if len(as.Rhs) == 1 {
				if call, ok := unparen(as.Rhs[0]).(*ast.CallExpr); ok {
					sum := s.summaryFor(calleeFunc(s.pass, call))
					for i := range as.Lhs {
						if sum.plusResult(i) {
							mark(as.Lhs[i])
						}
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	return plus
}

// resultPlus decides whether result i carries a +1 reference: at least one
// return statement must deliver one, and no return statement may deliver a
// value of unknown provenance (nil is compatible with either reading —
// releasing nil is a no-op).
func (s *summarizer) resultPlus(fd *ast.FuncDecl, sig *types.Signature, i int, plus map[*types.Var]bool) bool {
	some, veto := false, false
	classify := func(e ast.Expr) {
		e = unparen(e)
		if tv, ok := s.pass.TypesInfo.Types[e]; ok && tv.IsNil() {
			return
		}
		if call, ok := e.(*ast.CallExpr); ok {
			if s.summaryFor(calleeFunc(s.pass, call)).plusResult(0) {
				some = true
			} else {
				veto = true
			}
			return
		}
		if v := usedOrDefinedVar(s.pass, e); v != nil && plus[v] {
			some = true
			return
		}
		veto = true
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate function, separate returns
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		switch {
		case len(ret.Results) == 0:
			// Naked return: the named result either accumulated a +1
			// reference or it did not.
			if res := sig.Results().At(i); res.Name() != "" {
				if plus[res] {
					some = true
				} else {
					veto = true
				}
			}
		case len(ret.Results) == sig.Results().Len():
			classify(ret.Results[i])
		case len(ret.Results) == 1:
			// return f() forwarding a multi-result call.
			if call, ok := unparen(ret.Results[0]).(*ast.CallExpr); ok {
				if s.summaryFor(calleeFunc(s.pass, call)).plusResult(i) {
					some = true
				} else {
					veto = true
				}
			} else {
				veto = true
			}
		}
		return true
	})
	return some && !veto
}

// usedOrDefinedVar resolves an identifier expression to the non-blank
// variable it uses or defines, or nil.
func usedOrDefinedVar(pass *framework.Pass, e ast.Expr) *types.Var {
	id, ok := unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	v, _ := obj.(*types.Var)
	return v
}

func summariesEqual(a, b *Summary) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if len(a.Results) != len(b.Results) || len(a.Params) != len(b.Params) || a.NilTogether != b.NilTogether {
		return false
	}
	for i := range a.Results {
		if a.Results[i] != b.Results[i] {
			return false
		}
	}
	for i := range a.Params {
		if a.Params[i] != b.Params[i] {
			return false
		}
	}
	return true
}

func indexOf(path []ast.Node, n ast.Node) int {
	for i, p := range path {
		if p == n {
			return i
		}
	}
	return -1
}
