package refbalance_test

import (
	"testing"

	"valois/internal/analysis/analysistest"
	"valois/internal/analysis/refbalance"
)

func TestRefBalance(t *testing.T) {
	analysistest.Run(t, "testdata", refbalance.Analyzer, "a")
}
