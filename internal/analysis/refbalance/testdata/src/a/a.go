// Package a is the refbalance fixture: counted references must be balanced
// by exactly one Release even when they flow through helper functions. The
// helpers below exercise every summary class — neutral (readItem), releasing
// (drop), transferring (insertFront) and +1-returning (nextOf) — and the
// callers plant the two interprocedural bugs the analyzer exists to catch:
// a leak across a neutral helper, and a double release via a releasing one.
package a

import "sync/atomic"

type node struct {
	next atomic.Pointer[node]
	ref  atomic.Int64
	item int
}

type mgr struct {
	head atomic.Pointer[node]
	free atomic.Pointer[node]
}

// SafeRead acquires a counted reference (Figure 15 shape).
func (m *mgr) SafeRead(p *atomic.Pointer[node]) *node {
	for {
		q := p.Load()
		if q == nil {
			return nil
		}
		q.ref.Add(1)
		if q == p.Load() {
			return q
		}
		m.Release(q)
	}
}

// Release drops a counted reference (Figure 16 shape).
func (m *mgr) Release(n *node) {
	if n != nil {
		n.ref.Add(-1)
	}
}

// AddRef takes an extra counted reference to a held cell.
func (m *mgr) AddRef(n *node) {
	n.ref.Add(1)
}

// Alloc pops a cell off the free list, the Figure 17 retry loop; its result
// carries one reference.
func (m *mgr) Alloc() *node {
	for {
		q := m.SafeRead(&m.free)
		if q == nil {
			return nil
		}
		if m.free.CompareAndSwap(q, q.next.Load()) {
			return q
		}
		m.Release(q)
	}
}

// readItem only inspects its argument: a neutral helper. Callers keep
// their release obligation across this call.
func readItem(q *node) int {
	if q == nil {
		return 0
	}
	return q.item
}

// drop releases its argument on the caller's behalf: a releasing helper.
func drop(m *mgr, q *node) {
	m.Release(q)
}

// insertFront links the cell into the structure: a transferring helper.
// The structure now owns the reference.
func insertFront(m *mgr, n *node) {
	for {
		h := m.head.Load()
		n.next.Store(h)
		if m.head.CompareAndSwap(h, n) {
			return
		}
	}
}

// nextOf releases the cell it is given and returns a +1 reference to its
// successor — the cursor-advance helper shape (Figures 9–10).
func nextOf(m *mgr, q *node) *node {
	n := m.SafeRead(&q.next)
	m.Release(q)
	return n
}

// crossFuncLeak is the planted interprocedural leak: readItem is neutral,
// so the reference acquired here is still owed a Release when the function
// returns. An intraprocedural checker assumes readItem consumed it.
func crossFuncLeak(m *mgr) int {
	q := m.SafeRead(&m.head) // want `counted reference in q \(from SafeRead\) is not released on every path`
	if q == nil {
		return 0
	}
	return readItem(q)
}

// helperDoubleRelease is the planted interprocedural double release: drop
// already released q, so the count goes negative and a live cell can reach
// the free list while still linked (the §5.1 ABA scenario).
func helperDoubleRelease(m *mgr) int {
	q := m.SafeRead(&m.head)
	if q == nil {
		return 0
	}
	v := readItem(q)
	drop(m, q)
	m.Release(q) // want `counted reference in q \(from SafeRead\) is released again here`
	return v
}

// directDoubleRelease releases the same reference twice without a helper.
func directDoubleRelease(m *mgr) {
	q := m.SafeRead(&m.head)
	if q == nil {
		return
	}
	m.Release(q)
	m.Release(q) // want `counted reference in q \(from SafeRead\) is released again here`
}

// discardedAlloc drops the +1 result of Alloc on the floor.
func discardedAlloc(m *mgr) {
	m.Alloc() // want `result of Alloc carries a counted reference that is discarded`
}

// overwrittenBeforeRelease loses the first reference by re-reading into the
// same variable.
func overwrittenBeforeRelease(m *mgr) {
	q := m.SafeRead(&m.head) // want `counted reference in q \(from SafeRead\) is overwritten before being released`
	q = m.SafeRead(&m.head)
	m.Release(q)
}

// neutralHelperBalanced is the correct version of crossFuncLeak: the
// obligation survives readItem and is discharged here.
func neutralHelperBalanced(m *mgr) int {
	q := m.SafeRead(&m.head)
	if q == nil {
		return 0
	}
	v := readItem(q)
	m.Release(q)
	return v
}

// helperReleaseBalanced delegates the one release to drop.
func helperReleaseBalanced(m *mgr) int {
	q := m.SafeRead(&m.head)
	if q == nil {
		return 0
	}
	v := readItem(q)
	drop(m, q)
	return v
}

// allocInsert pairs Alloc with a transferring helper: insertFront assumes
// ownership, so no release is owed here.
func allocInsert(m *mgr, v int) bool {
	n := m.Alloc()
	if n == nil {
		return false
	}
	n.item = v
	insertFront(m, n)
	return true
}

// allocRelease pairs Alloc with Release directly (the Reclaim path).
func allocRelease(m *mgr) {
	n := m.Alloc()
	if n == nil {
		return
	}
	m.Release(n)
}

// popRetry is the Figure 17 retry loop at the call-site level: the CAS
// expected argument keeps the reference live, success transfers it to the
// caller, failure releases and retries.
func popRetry(m *mgr) *node {
	for {
		q := m.SafeRead(&m.head)
		if q == nil {
			return nil
		}
		if m.head.CompareAndSwap(q, q.next.Load()) {
			return q
		}
		m.Release(q)
	}
}

// cursorWalk chains the +1-returning helper: each call consumes the
// previous reference and returns the next, so only the final one is owed.
func cursorWalk(m *mgr) {
	p := m.SafeRead(&m.head)
	for p != nil {
		p = nextOf(m, p)
	}
}

// addRefExtra takes a second reference and releases both; AddRef makes the
// multiplicity unknowable, so neither release is a double.
func addRefExtra(m *mgr) {
	q := m.SafeRead(&m.head)
	if q == nil {
		return
	}
	m.AddRef(q)
	m.Release(q)
	m.Release(q)
}

// deferredRelease discharges the obligation at function exit.
func deferredRelease(m *mgr) int {
	q := m.SafeRead(&m.head)
	defer m.Release(q)
	return readItem(q)
}

// allocPair is the AllocInsertNodes shape (Figure 12's both-or-neither
// allocation): it returns either two live references or two nils, never a
// mix, so its summary carries the nil-together correlation.
func (m *mgr) allocPair() (*node, *node) {
	q := m.Alloc()
	if q == nil {
		return nil, nil
	}
	n := m.Alloc()
	if n == nil {
		m.Release(q)
		return nil, nil
	}
	return q, n
}

// pairInsert is the correlated-nil idiom the old analyzer needed an allow
// for: checking one result covers both, because allocPair's references are
// nil together. No leak on the early return.
func pairInsert(m *mgr, v int) bool {
	q, n := m.allocPair()
	if q == nil {
		return false
	}
	q.item = v
	insertFront(m, q)
	insertFront(m, n)
	return true
}

// pairGuardOther checks the correlation through the other result: proving
// n nil discharges q as well.
func pairGuardOther(m *mgr) {
	q, n := m.allocPair()
	if n == nil {
		return
	}
	m.Release(q)
	m.Release(n)
}

// allocUncorr returns a mixed pair on one path — q live, n nil — so its
// results are NOT nil-together and callers may not treat one nil check as
// covering both.
func (m *mgr) allocUncorr() (*node, *node) {
	q := m.Alloc()
	if q == nil {
		return nil, nil
	}
	n := m.Alloc()
	if n == nil {
		return q, nil
	}
	return q, n
}

// pairLeak guards only q, but allocUncorr's results are uncorrelated: on
// the early return n may still hold a live reference.
func pairLeak(m *mgr) {
	q, n := m.allocUncorr() // want `counted reference in n \(from allocUncorr\) is not released on every path`
	if q == nil {
		return
	}
	m.Release(q)
	m.Release(n)
}

// guard marks an epoch-protected region (the mode=ebr shape). Pins carry
// no reference count, so the interprocedural accounting must pass
// straight through them: a balanced counted traversal inside a pinned
// window is clean, and the guard itself never becomes an obligation.
type guard struct{ slot *int }

// Pin opens an epoch-protected region and returns its guard.
func (m *mgr) Pin() guard { return guard{} }

// Unpin closes the region.
func (m *mgr) Unpin(g guard) { _ = g }

// pinnedTraversal holds a counted reference across the neutral helper
// inside a pinned window and releases it before unpinning: no findings.
func pinnedTraversal(m *mgr) int {
	g := m.Pin()
	q := m.SafeRead(&m.head)
	if q == nil {
		m.Unpin(g)
		return 0
	}
	v := readItem(q)
	m.Release(q)
	m.Unpin(g)
	return v
}
