// Package refbalance defines an interprocedural analyzer checking that
// every counted reference (a SafeRead or Alloc result, per §5 of the
// paper, Figures 15–17) is balanced by exactly one Release along every
// control-flow path — including references that flow through helper
// functions.
//
// The intraprocedural saferead analyzer must assume that any call taking a
// tracked reference as an argument assumes ownership of it, because it
// knows nothing about the callee. That assumption hides the two bug
// classes the paper's Theorems 4 and 5 rule out only when the protocol is
// followed exactly:
//
//   - a reference held across a call to a read-only helper and then
//     forgotten (the helper did NOT take ownership — the cell leaks, and
//     with it everything reachable through its counted links);
//   - a reference released once by a helper and again by the caller (the
//     count goes negative, a live cell returns to the free list, and the
//     ABA protection of §5.1 collapses).
//
// refbalance closes that gap with per-function summaries — "returns a +1
// reference", "releases parameter i", "transfers ownership of parameter
// i", "neutral" — computed bottom-up over the package dependency graph and
// carried across packages as framework facts. At each call site the
// caller's obligations are updated from the callee's summary: a neutral
// parameter keeps the obligation alive, a releasing parameter discharges
// it (and flags a second release), a transferring parameter hands it off.
//
// The protocol functions themselves are recognized by name (SafeRead,
// Release, ReleaseNodes, AddRef, Alloc — the vocabulary of Figures 15–18),
// exactly as the saferead analyzer does.
//
// Like saferead, the analysis walks paths with zero-or-one loop unrolling
// and errs toward leniency: a reference that reaches any operation with
// unknown semantics stops being tracked. Two sources of deliberate slack:
// a Compare&Swap keeps its expected argument alive but marks it
// "shared" — the paper's structures routinely hold several counted
// references to one cell around a CAS (TryDelete releases both a link
// reference and a traversal reference of the same cell), so releases of
// shared references are never reported as doubles; and AddRef marks its
// argument shared the same way.
package refbalance

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"valois/internal/analysis/framework"
)

// Analyzer reports unbalanced counted references across call boundaries.
var Analyzer = &framework.Analyzer{
	Name:      "refbalance",
	Doc:       "report counted references not balanced by exactly one Release, following helper-call summaries",
	FactTypes: []framework.Fact{(*Summary)(nil)},
	Run:       run,
}

// maxStates bounds the number of distinct path states carried through a
// function; beyond it, excess states are dropped (under-approximation:
// fewer reports, never spurious ones).
const maxStates = 64

func run(pass *framework.Pass) (any, error) {
	sums := computeSummaries(pass)
	a := &analysis{pass: pass, sums: sums, reported: make(map[token.Pos]bool)}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					a.analyzeFunc(n.Type, n.Body)
				}
			case *ast.FuncLit:
				a.analyzeFunc(n.Type, n.Body)
			}
			return true
		})
	}
	return nil, nil
}

type analysis struct {
	pass     *framework.Pass
	sums     *summarizer
	reported map[token.Pos]bool
	// results holds the named result variables of the function currently
	// being analyzed: assigning to one transfers ownership to the caller.
	results map[*types.Var]bool
}

// ref is the abstract state of one tracked counted reference.
type ref struct {
	pos      token.Pos // the acquiring call, for diagnostics
	source   string    // name of the acquiring function, for diagnostics
	released bool      // discharged by a known releasing call
	shared   bool      // cell may hold several references (CAS expected, AddRef)
}

// state maps each tracked variable to its reference state.
type state map[*types.Var]ref

func (s state) clone() state {
	c := make(state, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// outcome is the result of interpreting a statement (or list): the states
// that fall through, and the states escaping via break or continue.
type outcome struct {
	normal []state
	brk    []state
	cont   []state
}

func (a *analysis) analyzeFunc(typ *ast.FuncType, body *ast.BlockStmt) {
	a.results = make(map[*types.Var]bool)
	if typ.Results != nil {
		for _, field := range typ.Results.List {
			for _, name := range field.Names {
				if v, ok := a.pass.TypesInfo.Defs[name].(*types.Var); ok {
					a.results[v] = true
				}
			}
		}
	}
	out := a.interpStmts(body.List, []state{make(state)})
	for _, st := range out.normal {
		a.leakCheck(st)
	}
}

// report emits one diagnostic per site.
func (a *analysis) report(pos token.Pos, category, format string, args ...any) {
	if a.reported[pos] {
		return
	}
	a.reported[pos] = true
	a.pass.Categorizef(category, pos, format, args...)
}

func (a *analysis) leakCheck(st state) {
	for v, r := range st {
		if !r.released {
			a.report(r.pos, "leak",
				"counted reference in %s (from %s) is not released on every path through this function", v.Name(), r.source)
		}
	}
}

func (a *analysis) interpStmts(list []ast.Stmt, in []state) outcome {
	states := in
	var brk, cont []state
	for _, s := range list {
		if len(states) == 0 {
			break // unreachable (after return/panic/branch)
		}
		o := a.interpStmt(s, states)
		brk = append(brk, o.brk...)
		cont = append(cont, o.cont...)
		states = capStates(o.normal)
	}
	return outcome{normal: states, brk: brk, cont: cont}
}

func (a *analysis) interpStmt(s ast.Stmt, in []state) outcome {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := unparen(s.X).(*ast.CallExpr); ok {
			if sum := a.summaryOf(call); sum.plusResult(0) {
				a.report(call.Pos(), "leak",
					"result of %s carries a counted reference that is discarded", calleeName(a.pass, call))
			}
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := a.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					for _, st := range in {
						a.evalExpr(s.X, st, false)
					}
					return outcome{} // path terminates
				}
			}
		}
		for _, st := range in {
			a.evalExpr(s.X, st, false)
		}
		return outcome{normal: in}

	case *ast.AssignStmt:
		for _, st := range in {
			a.interpAssign(s, st)
		}
		return outcome{normal: in}

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, st := range in {
					a.interpValueSpec(vs, st)
				}
			}
		}
		return outcome{normal: in}

	case *ast.ReturnStmt:
		for _, st := range in {
			for _, res := range s.Results {
				a.evalExpr(res, st, true) // returning transfers ownership
			}
			a.leakCheck(st)
		}
		return outcome{}

	case *ast.IfStmt:
		if s.Init != nil {
			in = a.interpStmt(s.Init, in).normal
		}
		for _, st := range in {
			a.evalExpr(s.Cond, st, false)
		}
		thenIn, elseIn := a.applyNilGuard(s.Cond, in)
		oThen := a.interpStmts(s.Body.List, thenIn)
		var oElse outcome
		if s.Else != nil {
			oElse = a.interpStmt(s.Else, elseIn)
		} else {
			oElse.normal = elseIn
		}
		return outcome{
			normal: append(oThen.normal, oElse.normal...),
			brk:    append(oThen.brk, oElse.brk...),
			cont:   append(oThen.cont, oElse.cont...),
		}

	case *ast.BlockStmt:
		return a.interpStmts(s.List, in)

	case *ast.ForStmt:
		if s.Init != nil {
			in = a.interpStmt(s.Init, in).normal
		}
		bodyIn := cloneAll(in)
		var exits []state
		if s.Cond != nil {
			for _, st := range in {
				a.evalExpr(s.Cond, st, false)
			}
			condTrue, condFalse := a.applyNilGuard(s.Cond, in)
			bodyIn = condTrue
			exits = append(exits, condFalse...)
		}
		bodyOut := a.interpStmts(s.Body.List, bodyIn)
		after := append(bodyOut.normal, bodyOut.cont...)
		if s.Post != nil {
			after = a.interpStmt(s.Post, after).normal
		}
		exits = append(exits, bodyOut.brk...)
		if s.Cond != nil {
			_, condFalse := a.applyNilGuard(s.Cond, after)
			exits = append(exits, condFalse...)
		}
		return outcome{normal: capStates(exits)}

	case *ast.RangeStmt:
		for _, st := range in {
			a.evalExpr(s.X, st, false)
		}
		bodyOut := a.interpStmts(s.Body.List, cloneAll(in))
		exits := append(in, bodyOut.normal...)
		exits = append(exits, bodyOut.cont...)
		exits = append(exits, bodyOut.brk...)
		return outcome{normal: capStates(exits)}

	case *ast.SwitchStmt:
		if s.Init != nil {
			in = a.interpStmt(s.Init, in).normal
		}
		if s.Tag != nil {
			for _, st := range in {
				a.evalExpr(s.Tag, st, false)
			}
		}
		return a.interpCases(s.Body, in, func(cc *ast.CaseClause, st state) {
			for _, e := range cc.List {
				a.evalExpr(e, st, false)
			}
		})

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			in = a.interpStmt(s.Init, in).normal
		}
		if s.Assign != nil {
			in = a.interpStmt(s.Assign, in).normal
		}
		return a.interpCases(s.Body, in, nil)

	case *ast.SelectStmt:
		var normal []state
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			clauseIn := cloneAll(in)
			if cc.Comm != nil {
				clauseIn = a.interpStmt(cc.Comm, clauseIn).normal
			}
			o := a.interpStmts(cc.Body, clauseIn)
			normal = append(normal, o.normal...)
			normal = append(normal, o.brk...) // break exits the select
		}
		if len(s.Body.List) == 0 {
			return outcome{} // select{} blocks forever
		}
		return outcome{normal: capStates(normal)}

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			return outcome{brk: in}
		case token.CONTINUE:
			return outcome{cont: in}
		case token.GOTO:
			// Dropping the states under-approximates: no reports along
			// goto paths rather than spurious ones.
			return outcome{}
		default: // fallthrough
			return outcome{normal: in}
		}

	case *ast.LabeledStmt:
		return a.interpStmt(s.Stmt, in)

	case *ast.DeferStmt:
		for _, st := range in {
			a.applyCall(s.Call, st, true)
		}
		return outcome{normal: in}

	case *ast.GoStmt:
		for _, st := range in {
			a.evalExpr(s.Call, st, false)
		}
		return outcome{normal: in}

	case *ast.SendStmt:
		for _, st := range in {
			a.evalExpr(s.Chan, st, false)
			a.evalExpr(s.Value, st, true) // sending transfers ownership
		}
		return outcome{normal: in}

	case *ast.IncDecStmt:
		for _, st := range in {
			a.evalExpr(s.X, st, false)
		}
		return outcome{normal: in}

	default: // EmptyStmt and anything unanticipated: no effect
		return outcome{normal: in}
	}
}

// interpCases interprets a switch body: the union of all case outcomes,
// plus fallthrough of the whole switch when there is no default clause.
func (a *analysis) interpCases(body *ast.BlockStmt, in []state, evalCase func(*ast.CaseClause, state)) outcome {
	var normal, cont []state
	hasDefault := false
	for _, clause := range body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		clauseIn := cloneAll(in)
		if evalCase != nil {
			for _, st := range clauseIn {
				evalCase(cc, st)
			}
		}
		o := a.interpStmts(cc.Body, clauseIn)
		normal = append(normal, o.normal...)
		normal = append(normal, o.brk...) // break exits the switch
		cont = append(cont, o.cont...)
	}
	if !hasDefault {
		normal = append(normal, in...)
	}
	return outcome{normal: capStates(normal), cont: cont}
}

// interpAssign applies one assignment statement to one state.
func (a *analysis) interpAssign(s *ast.AssignStmt, st state) {
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Rhs {
			a.assignOne(s.Lhs[i], s.Rhs[i], st)
		}
		return
	}
	// q, a := f(): a multi-result call tracked position by position.
	if len(s.Rhs) == 1 {
		if call, ok := unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			sum := a.summaryOf(call)
			a.applyCall(call, st, false)
			for i, lhs := range s.Lhs {
				a.overwriteCheck(lhs, st)
				if sum.plusResult(i) {
					if lv := a.localVar(lhs); lv != nil {
						st[lv] = ref{pos: call.Pos(), source: calleeName(a.pass, call)}
						continue
					}
				}
				a.evalExpr(lhs, st, false)
			}
			return
		}
	}
	for _, rhs := range s.Rhs {
		a.evalExpr(rhs, st, false)
	}
	for _, lhs := range s.Lhs {
		a.overwriteCheck(lhs, st)
		a.evalExpr(lhs, st, false)
	}
}

// interpValueSpec handles `var q = m.SafeRead(...)` declarations.
func (a *analysis) interpValueSpec(vs *ast.ValueSpec, st state) {
	if len(vs.Names) == len(vs.Values) {
		for i := range vs.Values {
			a.assignOne(vs.Names[i], vs.Values[i], st)
		}
		return
	}
	for _, v := range vs.Values {
		a.evalExpr(v, st, false)
	}
}

func (a *analysis) assignOne(lhs, rhs ast.Expr, st state) {
	// A +1 call assigned to a local variable starts an obligation.
	if call, ok := unparen(rhs).(*ast.CallExpr); ok {
		sum := a.summaryOf(call)
		a.applyCall(call, st, false)
		if sum.plusResult(0) {
			if lv := a.localVar(lhs); lv != nil {
				a.overwriteCheck(lhs, st)
				st[lv] = ref{pos: call.Pos(), source: calleeName(a.pass, call)}
				return
			}
			// Stored straight into a field or element: ownership
			// transferred to the structure.
			a.evalExpr(lhs, st, false)
			return
		}
		a.overwriteCheck(lhs, st)
		a.evalExpr(lhs, st, false)
		return
	}
	// Transferring a tracked reference between variables moves the
	// obligation; storing it anywhere else resolves it.
	if rv := a.trackedIdent(rhs, st); rv != nil {
		if lv := a.localVar(lhs); lv != nil {
			if lv == rv {
				return
			}
			r := st[rv]
			delete(st, rv)
			a.overwriteCheck(lhs, st)
			st[lv] = r
			return
		}
		delete(st, rv)
		a.evalExpr(lhs, st, false)
		return
	}
	a.evalExpr(rhs, st, a.localVar(lhs) == nil)
	a.overwriteCheck(lhs, st)
	a.evalExpr(lhs, st, false)
}

// overwriteCheck reports and clears a live, reliably-single obligation when
// its variable is about to be overwritten.
func (a *analysis) overwriteCheck(lhs ast.Expr, st state) {
	lv := a.localVar(lhs)
	if lv == nil {
		return
	}
	if r, held := st[lv]; held {
		if !r.released && !r.shared {
			a.report(r.pos, "leak",
				"counted reference in %s (from %s) is overwritten before being released", lv.Name(), r.source)
		}
		delete(st, lv)
	}
}

// summaryOf resolves the callee's summary, or nil when unknown.
func (a *analysis) summaryOf(call *ast.CallExpr) *Summary {
	return a.sums.summaryFor(calleeFunc(a.pass, call))
}

// applyCall updates one state for the effects of one call, consulting the
// callee's summary for each argument holding a tracked reference. deferred
// marks calls run at function exit (defer m.Release(q)): their releases are
// treated as shared, because statements between the defer and the actual
// exit may legitimately touch the reference again.
func (a *analysis) applyCall(call *ast.CallExpr, st state, deferred bool) {
	a.evalExpr(call.Fun, st, false)
	sum := a.summaryOf(call)
	cas, isCAS := casShape(a.pass, call)
	name := calleeName(a.pass, call)
	isAddRef := name == "AddRef" || name == "addRef"

	for j, arg := range call.Args {
		v := a.trackedIdent(arg, st)
		if v == nil {
			// Untracked argument: evaluate it; nested tracked uses inside
			// composite expressions escape as usual.
			a.evalExpr(arg, st, true)
			continue
		}
		r := st[v]
		switch {
		case isCAS && j == cas.expected:
			// The CAS only compares the expected value, but its success
			// usually means a structure link to the same cell was dropped
			// or created — reference multiplicity is no longer ours to
			// judge.
			r.shared = true
			st[v] = r
		case isCAS && j == cas.new:
			delete(st, v) // stored into the structure
		case isAddRef:
			// An extra reference was acquired: still at least one release
			// owed, but no longer exactly one.
			r.shared = true
			r.released = false
			st[v] = r
		case sum == nil:
			delete(st, v) // unknown callee may assume ownership
		default:
			switch sum.paramEffect(j) {
			case ParamReleases:
				if r.released && !r.shared {
					a.report(call.Pos(), "double-release",
						"counted reference in %s (from %s) is released again here; it was already released on this path", v.Name(), r.source)
				}
				r.released = true
				if deferred {
					r.shared = true
				}
				st[v] = r
			case ParamNeutral:
				// The interprocedural case: a read-only helper leaves the
				// obligation with the caller.
			default: // ParamTransfers
				delete(st, v)
			}
		}
	}
}

// evalExpr walks an expression, resolving tracked variables that occur in
// ownership-transferring positions. resolving reports whether e itself is
// in such a position (return value, composite element, ...).
func (a *analysis) evalExpr(e ast.Expr, st state, resolving bool) {
	switch e := e.(type) {
	case nil:
		return
	case *ast.Ident:
		if resolving {
			if v, ok := a.pass.TypesInfo.Uses[e].(*types.Var); ok {
				delete(st, v)
			}
		}
	case *ast.ParenExpr:
		a.evalExpr(e.X, st, resolving)
	case *ast.SelectorExpr:
		a.evalExpr(e.X, st, false) // q.Item, q.Next(): plain use, not a transfer
	case *ast.StarExpr:
		a.evalExpr(e.X, st, false)
	case *ast.UnaryExpr:
		a.evalExpr(e.X, st, e.Op == token.AND) // &q lets the reference escape
	case *ast.BinaryExpr:
		a.evalExpr(e.X, st, false)
		a.evalExpr(e.Y, st, false)
	case *ast.CallExpr:
		a.applyCall(e, st, false)
	case *ast.IndexExpr:
		a.evalExpr(e.X, st, resolving)
		a.evalExpr(e.Index, st, false)
	case *ast.IndexListExpr:
		a.evalExpr(e.X, st, resolving)
	case *ast.SliceExpr:
		a.evalExpr(e.X, st, false)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			a.evalExpr(elt, st, true)
		}
	case *ast.KeyValueExpr:
		a.evalExpr(e.Value, st, true)
	case *ast.TypeAssertExpr:
		a.evalExpr(e.X, st, resolving)
	case *ast.FuncLit:
		// Captured tracked variables escape into the closure.
		ast.Inspect(e.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v, ok := a.pass.TypesInfo.Uses[id].(*types.Var); ok {
					delete(st, v)
				}
			}
			return true
		})
	}
}

// applyNilGuard refines the then/else input states for conditions of the
// form `x == nil` and `x != nil`: a reference known to be nil carries no
// obligation on that branch.
func (a *analysis) applyNilGuard(cond ast.Expr, in []state) (thenIn, elseIn []state) {
	thenIn, elseIn = cloneAll(in), cloneAll(in)
	be, ok := unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return thenIn, elseIn
	}
	var v *types.Var
	if a.isNil(be.Y) {
		v = a.varOf(be.X)
	} else if a.isNil(be.X) {
		v = a.varOf(be.Y)
	}
	if v == nil {
		return thenIn, elseIn
	}
	nilSide := thenIn
	if be.Op == token.NEQ {
		nilSide = elseIn
	}
	for _, st := range nilSide {
		delete(st, v)
	}
	return thenIn, elseIn
}

func (a *analysis) isNil(e ast.Expr) bool {
	tv, ok := a.pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

func (a *analysis) varOf(e ast.Expr) *types.Var {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := a.pass.TypesInfo.Uses[id].(*types.Var)
	return v
}

// localVar returns the function-local, non-blank variable an lvalue
// denotes, or nil. Package-level variables are shared state and treated as
// escapes, not obligations.
func (a *analysis) localVar(e ast.Expr) *types.Var {
	id, ok := unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	obj := a.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = a.pass.TypesInfo.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || a.results[v] {
		return nil
	}
	if v.Parent() == nil || v.Parent() == a.pass.Pkg.Scope() {
		return nil
	}
	return v
}

// trackedIdent returns the tracked variable e denotes in st, or nil.
func (a *analysis) trackedIdent(e ast.Expr, st state) *types.Var {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := a.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	if _, held := st[v]; !held {
		return nil
	}
	return v
}

// casArgs locates the expected and new arguments of a Compare&Swap call.
type casArgs struct {
	expected int
	new      int
}

// casShape recognizes the three Compare&Swap spellings of this codebase —
// a CompareAndSwap/CASXxx method on an atomic (or a wrapper like
// mm.Node.CASNext), a sync/atomic CompareAndSwapXxx function, and the
// generic primitive.CompareAndSwap — and returns the positions of the
// expected and new arguments.
func casShape(pass *framework.Pass, call *ast.CallExpr) (casArgs, bool) {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return casArgs{}, false
	}
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if (name == "CompareAndSwap" || strings.HasPrefix(name, "CAS")) && len(call.Args) == 2 {
			return casArgs{expected: 0, new: 1}, true
		}
		return casArgs{}, false
	}
	if strings.HasPrefix(name, "CompareAndSwap") && len(call.Args) == 3 {
		return casArgs{expected: 1, new: 2}, true
	}
	return casArgs{}, false
}

// calleeName returns the simple name of the called function or method.
func calleeName(pass *framework.Pass, call *ast.CallExpr) string {
	if fn := calleeFunc(pass, call); fn != nil {
		return fn.Name()
	}
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return "the call"
}

// calleeFunc resolves the *types.Func a call invokes, or nil for calls
// through function values, conversions, and builtins.
func calleeFunc(pass *framework.Pass, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		if id, ok := unparen(fun.X).(*ast.Ident); ok {
			fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
			return fn
		}
		if sel, ok := unparen(fun.X).(*ast.SelectorExpr); ok {
			fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			return fn
		}
	}
	return nil
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func cloneAll(in []state) []state {
	out := make([]state, len(in))
	for i, st := range in {
		out[i] = st.clone()
	}
	return out
}

// capStates deduplicates identical states and drops the excess beyond
// maxStates.
func capStates(in []state) []state {
	if len(in) <= 1 {
		return in
	}
	var out []state
	for _, st := range in {
		dup := false
		for _, prev := range out {
			if statesEqual(st, prev) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, st)
		}
		if len(out) == maxStates {
			break
		}
	}
	return out
}

func statesEqual(a, b state) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}
