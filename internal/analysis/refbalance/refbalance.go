// Package refbalance defines an interprocedural analyzer checking that
// every counted reference (a SafeRead or Alloc result, per §5 of the
// paper, Figures 15–17) is balanced by exactly one Release along every
// control-flow path — including references that flow through helper
// functions.
//
// The intraprocedural saferead analyzer must assume that any call taking a
// tracked reference as an argument assumes ownership of it, because it
// knows nothing about the callee. That assumption hides the two bug
// classes the paper's Theorems 4 and 5 rule out only when the protocol is
// followed exactly:
//
//   - a reference held across a call to a read-only helper and then
//     forgotten (the helper did NOT take ownership — the cell leaks, and
//     with it everything reachable through its counted links);
//   - a reference released once by a helper and again by the caller (the
//     count goes negative, a live cell returns to the free list, and the
//     ABA protection of §5.1 collapses).
//
// refbalance closes that gap with per-function summaries — "returns a +1
// reference", "releases parameter i", "transfers ownership of parameter
// i", "neutral" — computed bottom-up over the package dependency graph and
// carried across packages as framework facts. At each call site the
// caller's obligations are updated from the callee's summary: a neutral
// parameter keeps the obligation alive, a releasing parameter discharges
// it (and flags a second release), a transferring parameter hands it off.
//
// The protocol functions themselves are recognized by name (SafeRead,
// Release, ReleaseNodes, AddRef, Alloc — the vocabulary of Figures 15–18),
// exactly as the saferead analyzer does.
//
// The function body is interpreted path by path over its control-flow
// graph (framework/cfg), with branch edges carrying their conditions so
// nil tests refine the state on each side. Summaries additionally record
// when a function's +1 results are nil together — AllocInsertNodes
// (Figure 12's both-or-neither allocation) returns either two live
// references or two nils, never a mix — and the caller links such
// references into a group: proving one nil (`if q == nil`) discharges the
// whole group, so the correlated-nil idiom needs no suppression.
//
// Like saferead, the analysis errs toward leniency: a reference that
// reaches any operation with unknown semantics stops being tracked, loop
// exploration is bounded by the interpreter's visit budget, and paths that
// end in panic are exempt (the releasepath analyzer owns exit-path
// accounting). Two sources of deliberate slack: a Compare&Swap keeps its
// expected argument alive but marks it "shared" — the paper's structures
// routinely hold several counted references to one cell around a CAS
// (TryDelete releases both a link reference and a traversal reference of
// the same cell), so releases of shared references are never reported as
// doubles; and AddRef marks its argument shared the same way.
package refbalance

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"valois/internal/analysis/framework"
	"valois/internal/analysis/framework/cfg"
)

// Analyzer reports unbalanced counted references across call boundaries.
var Analyzer = &framework.Analyzer{
	Name:      "refbalance",
	Doc:       "report counted references not balanced by exactly one Release, following helper-call summaries",
	FactTypes: []framework.Fact{(*Summary)(nil)},
	Version:   "v2", // v2: CFG path interpreter + correlated-nil groups
	Run:       run,
}

// maxStates bounds the number of distinct path states carried through a
// function; beyond it, excess states are dropped (under-approximation:
// fewer reports, never spurious ones).
const maxStates = 64

func run(pass *framework.Pass) (any, error) {
	sums := computeSummaries(pass)
	a := &analysis{pass: pass, sums: sums, reported: make(map[token.Pos]bool)}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					a.analyzeFunc(n.Type, n.Body)
				}
			case *ast.FuncLit:
				a.analyzeFunc(n.Type, n.Body)
			}
			return true
		})
	}
	return nil, nil
}

type analysis struct {
	pass     *framework.Pass
	sums     *summarizer
	reported map[token.Pos]bool
	// results holds the named result variables of the function currently
	// being analyzed: assigning to one transfers ownership to the caller.
	results map[*types.Var]bool
	// nextGroup numbers the correlated-nil groups of the current function;
	// references created by one nil-together call share a group id.
	nextGroup int
}

// ref is the abstract state of one tracked counted reference.
type ref struct {
	pos      token.Pos // the acquiring call, for diagnostics
	source   string    // name of the acquiring function, for diagnostics
	released bool      // discharged by a known releasing call
	shared   bool      // cell may hold several references (CAS expected, AddRef)
	group    int       // correlated-nil group: 0 when independent
}

// state maps each tracked variable to its reference state.
type state map[*types.Var]ref

func (s state) clone() state {
	c := make(state, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func (a *analysis) analyzeFunc(typ *ast.FuncType, body *ast.BlockStmt) {
	a.results = make(map[*types.Var]bool)
	if typ.Results != nil {
		for _, field := range typ.Results.List {
			for _, name := range field.Names {
				if v, ok := a.pass.TypesInfo.Defs[name].(*types.Var); ok {
					a.results[v] = true
				}
			}
		}
	}
	ip := &cfg.Interp[state]{
		MaxStates: maxStates,
		Clone:     func(st state) state { return st.clone() },
		Equal:     statesEqual,
		Node:      a.applyNode,
		Edge: func(e *cfg.Edge, st state) bool {
			a.refineNil(e, st)
			return true
		},
		Exit: func(e *cfg.Edge, st state) {
			// Panic paths are exempt: releasepath owns exit accounting for
			// paths that do not complete normally.
			if e.Kind != cfg.Panic {
				a.leakCheck(st)
			}
		},
	}
	ip.Run(a.pass.FuncCFG(body), make(state))
}

// report emits one diagnostic per site.
func (a *analysis) report(pos token.Pos, category, format string, args ...any) {
	if a.reported[pos] {
		return
	}
	a.reported[pos] = true
	a.pass.Categorizef(category, pos, format, args...)
}

func (a *analysis) leakCheck(st state) {
	for v, r := range st {
		if !r.released {
			a.report(r.pos, "leak",
				"counted reference in %s (from %s) is not released on every path through this function", v.Name(), r.source)
		}
	}
}

// applyNode interprets one evaluated CFG node against one state.
func (a *analysis) applyNode(n ast.Node, st state) {
	switch n := n.(type) {
	case *ast.ExprStmt:
		if call, ok := unparen(n.X).(*ast.CallExpr); ok {
			if sum := a.summaryOf(call); sum.plusResult(0) {
				a.report(call.Pos(), "leak",
					"result of %s carries a counted reference that is discarded", calleeName(a.pass, call))
			}
		}
		a.evalExpr(n.X, st, false)

	case *ast.AssignStmt:
		a.interpAssign(n, st)

	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					a.interpValueSpec(vs, st)
				}
			}
		}

	case *ast.ReturnStmt:
		for _, res := range n.Results {
			a.evalExpr(res, st, true) // returning transfers ownership
		}

	case *ast.DeferStmt:
		a.applyCall(n.Call, st, true)

	case *ast.GoStmt:
		a.evalExpr(n.Call, st, false)

	case *ast.SendStmt:
		a.evalExpr(n.Chan, st, false)
		a.evalExpr(n.Value, st, true) // sending transfers ownership

	case *ast.IncDecStmt:
		a.evalExpr(n.X, st, false)

	case *ast.RangeStmt:
		// The per-iteration key/value binding; the range operand was
		// already evaluated as its own node before the loop head.

	case ast.Expr:
		a.evalExpr(n, st, false)
	}
}

// refineNil applies the branch condition carried on a True/False edge: a
// reference known to be nil on the taken side carries no obligation — and
// neither do its group mates, because a nil-together callee delivered
// either all of them or none (the correlated-nil proof that replaces the
// old AllocInsertNodes suppressions).
func (a *analysis) refineNil(e *cfg.Edge, st state) {
	if e.Cond == nil {
		return
	}
	be, ok := unparen(e.Cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return
	}
	var v *types.Var
	if a.isNil(be.Y) {
		v = a.varOf(be.X)
	} else if a.isNil(be.X) {
		v = a.varOf(be.Y)
	}
	if v == nil {
		return
	}
	nilSide := (be.Op == token.EQL) == (e.Kind == cfg.True)
	if !nilSide {
		return
	}
	r, held := st[v]
	if !held {
		return
	}
	delete(st, v)
	if r.group != 0 {
		for ov, or := range st {
			if or.group == r.group {
				delete(st, ov)
			}
		}
	}
}

// interpAssign applies one assignment statement to one state.
func (a *analysis) interpAssign(s *ast.AssignStmt, st state) {
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Rhs {
			a.assignOne(s.Lhs[i], s.Rhs[i], st)
		}
		return
	}
	// q, a := f(): a multi-result call tracked position by position.
	if len(s.Rhs) == 1 {
		if call, ok := unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			sum := a.summaryOf(call)
			a.applyCall(call, st, false)
			// A nil-together callee's references are born correlated: one
			// group id links every +1 result of this call.
			group := 0
			if sum != nil && sum.NilTogether {
				a.nextGroup++
				group = a.nextGroup
			}
			for i, lhs := range s.Lhs {
				a.overwriteCheck(lhs, st, call.Pos())
				if sum.plusResult(i) {
					if lv := a.localVar(lhs); lv != nil {
						st[lv] = ref{pos: call.Pos(), source: calleeName(a.pass, call), group: group}
						continue
					}
				}
				a.evalExpr(lhs, st, false)
			}
			return
		}
	}
	for _, rhs := range s.Rhs {
		a.evalExpr(rhs, st, false)
	}
	for _, lhs := range s.Lhs {
		a.overwriteCheck(lhs, st, token.NoPos)
		a.evalExpr(lhs, st, false)
	}
}

// interpValueSpec handles `var q = m.SafeRead(...)` declarations.
func (a *analysis) interpValueSpec(vs *ast.ValueSpec, st state) {
	if len(vs.Names) == len(vs.Values) {
		for i := range vs.Values {
			a.assignOne(vs.Names[i], vs.Values[i], st)
		}
		return
	}
	for _, v := range vs.Values {
		a.evalExpr(v, st, false)
	}
}

func (a *analysis) assignOne(lhs, rhs ast.Expr, st state) {
	// A +1 call assigned to a local variable starts an obligation.
	if call, ok := unparen(rhs).(*ast.CallExpr); ok {
		sum := a.summaryOf(call)
		a.applyCall(call, st, false)
		if sum.plusResult(0) {
			if lv := a.localVar(lhs); lv != nil {
				a.overwriteCheck(lhs, st, call.Pos())
				st[lv] = ref{pos: call.Pos(), source: calleeName(a.pass, call)}
				return
			}
			// Stored straight into a field or element: ownership
			// transferred to the structure.
			a.evalExpr(lhs, st, false)
			return
		}
		a.overwriteCheck(lhs, st, token.NoPos)
		a.evalExpr(lhs, st, false)
		return
	}
	// Transferring a tracked reference between variables moves the
	// obligation; storing it anywhere else resolves it.
	if rv := a.trackedIdent(rhs, st); rv != nil {
		if lv := a.localVar(lhs); lv != nil {
			if lv == rv {
				return
			}
			r := st[rv]
			delete(st, rv)
			a.overwriteCheck(lhs, st, token.NoPos)
			st[lv] = r
			return
		}
		delete(st, rv)
		a.evalExpr(lhs, st, false)
		return
	}
	a.evalExpr(rhs, st, a.localVar(lhs) == nil)
	a.overwriteCheck(lhs, st, token.NoPos)
	a.evalExpr(lhs, st, false)
}

// overwriteCheck reports and clears a live, reliably-single obligation when
// its variable is about to be overwritten. newPos is the acquiring call of
// the incoming value, when there is one: re-executing the same acquisition
// on a later loop iteration replaces the obligation silently (the previous
// trip's balance is judged at the loop's exit edges, not here).
func (a *analysis) overwriteCheck(lhs ast.Expr, st state, newPos token.Pos) {
	lv := a.localVar(lhs)
	if lv == nil {
		return
	}
	if r, held := st[lv]; held {
		if !r.released && !r.shared && r.pos != newPos {
			a.report(r.pos, "leak",
				"counted reference in %s (from %s) is overwritten before being released", lv.Name(), r.source)
		}
		delete(st, lv)
	}
}

// summaryOf resolves the callee's summary, or nil when unknown.
func (a *analysis) summaryOf(call *ast.CallExpr) *Summary {
	return a.sums.summaryFor(calleeFunc(a.pass, call))
}

// applyCall updates one state for the effects of one call, consulting the
// callee's summary for each argument holding a tracked reference. deferred
// marks calls run at function exit (defer m.Release(q)): their releases are
// treated as shared, because statements between the defer and the actual
// exit may legitimately touch the reference again.
func (a *analysis) applyCall(call *ast.CallExpr, st state, deferred bool) {
	a.evalExpr(call.Fun, st, false)
	sum := a.summaryOf(call)
	cas, isCAS := casShape(a.pass, call)
	name := calleeName(a.pass, call)
	isAddRef := name == "AddRef" || name == "addRef"

	for j, arg := range call.Args {
		v := a.trackedIdent(arg, st)
		if v == nil {
			// Untracked argument: evaluate it; nested tracked uses inside
			// composite expressions escape as usual.
			a.evalExpr(arg, st, true)
			continue
		}
		r := st[v]
		switch {
		case isCAS && j == cas.expected:
			// The CAS only compares the expected value, but its success
			// usually means a structure link to the same cell was dropped
			// or created — reference multiplicity is no longer ours to
			// judge.
			r.shared = true
			st[v] = r
		case isCAS && j == cas.new:
			delete(st, v) // stored into the structure
		case isAddRef:
			// An extra reference was acquired: still at least one release
			// owed, but no longer exactly one.
			r.shared = true
			r.released = false
			st[v] = r
		case sum == nil:
			delete(st, v) // unknown callee may assume ownership
		default:
			switch sum.paramEffect(j) {
			case ParamReleases:
				if r.released && !r.shared {
					a.report(call.Pos(), "double-release",
						"counted reference in %s (from %s) is released again here; it was already released on this path", v.Name(), r.source)
				}
				r.released = true
				if deferred {
					r.shared = true
				}
				st[v] = r
			case ParamNeutral:
				// The interprocedural case: a read-only helper leaves the
				// obligation with the caller.
			default: // ParamTransfers
				delete(st, v)
			}
		}
	}
}

// evalExpr walks an expression, resolving tracked variables that occur in
// ownership-transferring positions. resolving reports whether e itself is
// in such a position (return value, composite element, ...).
func (a *analysis) evalExpr(e ast.Expr, st state, resolving bool) {
	switch e := e.(type) {
	case nil:
		return
	case *ast.Ident:
		if resolving {
			if v, ok := a.pass.TypesInfo.Uses[e].(*types.Var); ok {
				delete(st, v)
			}
		}
	case *ast.ParenExpr:
		a.evalExpr(e.X, st, resolving)
	case *ast.SelectorExpr:
		a.evalExpr(e.X, st, false) // q.Item, q.Next(): plain use, not a transfer
	case *ast.StarExpr:
		a.evalExpr(e.X, st, false)
	case *ast.UnaryExpr:
		a.evalExpr(e.X, st, e.Op == token.AND) // &q lets the reference escape
	case *ast.BinaryExpr:
		a.evalExpr(e.X, st, false)
		a.evalExpr(e.Y, st, false)
	case *ast.CallExpr:
		a.applyCall(e, st, false)
	case *ast.IndexExpr:
		a.evalExpr(e.X, st, resolving)
		a.evalExpr(e.Index, st, false)
	case *ast.IndexListExpr:
		a.evalExpr(e.X, st, resolving)
	case *ast.SliceExpr:
		a.evalExpr(e.X, st, false)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			a.evalExpr(elt, st, true)
		}
	case *ast.KeyValueExpr:
		a.evalExpr(e.Value, st, true)
	case *ast.TypeAssertExpr:
		a.evalExpr(e.X, st, resolving)
	case *ast.FuncLit:
		// Captured tracked variables escape into the closure.
		ast.Inspect(e.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v, ok := a.pass.TypesInfo.Uses[id].(*types.Var); ok {
					delete(st, v)
				}
			}
			return true
		})
	}
}

func (a *analysis) isNil(e ast.Expr) bool {
	tv, ok := a.pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

func (a *analysis) varOf(e ast.Expr) *types.Var {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := a.pass.TypesInfo.Uses[id].(*types.Var)
	return v
}

// localVar returns the function-local, non-blank variable an lvalue
// denotes, or nil. Package-level variables are shared state and treated as
// escapes, not obligations.
func (a *analysis) localVar(e ast.Expr) *types.Var {
	id, ok := unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	obj := a.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = a.pass.TypesInfo.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || a.results[v] {
		return nil
	}
	if v.Parent() == nil || v.Parent() == a.pass.Pkg.Scope() {
		return nil
	}
	return v
}

// trackedIdent returns the tracked variable e denotes in st, or nil.
func (a *analysis) trackedIdent(e ast.Expr, st state) *types.Var {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := a.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	if _, held := st[v]; !held {
		return nil
	}
	return v
}

// casArgs locates the expected and new arguments of a Compare&Swap call.
type casArgs struct {
	expected int
	new      int
}

// casShape recognizes the three Compare&Swap spellings of this codebase —
// a CompareAndSwap/CASXxx method on an atomic (or a wrapper like
// mm.Node.CASNext), a sync/atomic CompareAndSwapXxx function, and the
// generic primitive.CompareAndSwap — and returns the positions of the
// expected and new arguments.
func casShape(pass *framework.Pass, call *ast.CallExpr) (casArgs, bool) {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return casArgs{}, false
	}
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if (name == "CompareAndSwap" || strings.HasPrefix(name, "CAS")) && len(call.Args) == 2 {
			return casArgs{expected: 0, new: 1}, true
		}
		return casArgs{}, false
	}
	if strings.HasPrefix(name, "CompareAndSwap") && len(call.Args) == 3 {
		return casArgs{expected: 1, new: 2}, true
	}
	return casArgs{}, false
}

// calleeName returns the simple name of the called function or method.
func calleeName(pass *framework.Pass, call *ast.CallExpr) string {
	if fn := calleeFunc(pass, call); fn != nil {
		return fn.Name()
	}
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return "the call"
}

// calleeFunc resolves the *types.Func a call invokes, or nil for calls
// through function values, conversions, and builtins.
func calleeFunc(pass *framework.Pass, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		if id, ok := unparen(fun.X).(*ast.Ident); ok {
			fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
			return fn
		}
		if sel, ok := unparen(fun.X).(*ast.SelectorExpr); ok {
			fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			return fn
		}
	}
	return nil
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func statesEqual(a, b state) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}
