// Package goroleak defines an analyzer for goroutines that can never
// terminate.
//
// The serving stack spawns goroutines freely — one per accepted
// connection, per proxy direction, per load-generator worker — and every
// one of them must have a reachable termination path: a return, a
// done-channel or context select arm that returns, a bounded loop, or a
// call that ends the goroutine. A goroutine whose body is an infinite
// loop with no escape survives until process exit, pinning its stack and
// everything it references; under goroutine-per-connection serving that
// is an unbounded leak.
//
// The analyzer flags each `go` statement whose spawned function provably
// never returns:
//
//   - its unconditionally-executed spine contains an infinite `for` loop
//     (no condition) whose body has no escape — no return, no break or
//     goto out of the loop, and no terminating call (panic, os.Exit,
//     runtime.Goexit, log.Fatal*);
//   - or the spine reaches an empty select (`select {}`), which blocks
//     forever by definition;
//   - or the spine calls a function already known to never return.
//
// The "never returns" property is interprocedural: it is computed as a
// fixpoint over the package's functions and exported as a NoReturn fact,
// so a `go pkg.Serve()` in one package is flagged when pkg.Serve spins
// forever in another. Loops with conditions, range loops (including
// `for range ch`, which terminates when the channel closes), and loops
// with any escape are never flagged: the analyzer only reports goroutines
// with no termination path at all.
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"valois/internal/analysis/framework"
)

// Analyzer reports go statements spawning functions that never return.
var Analyzer = &framework.Analyzer{
	Name:      "goroleak",
	Doc:       "report go statements whose goroutine has no termination path",
	FactTypes: []framework.Fact{(*NoReturn)(nil)},
	Version:   "v1",
	Run:       run,
}

// NoReturn is exported for every function that provably never returns,
// making the property visible across package boundaries.
type NoReturn struct{}

// AFact marks NoReturn as a framework.Fact.
func (*NoReturn) AFact() {}

func run(pass *framework.Pass) (any, error) {
	// Collect the package's function declarations, then compute the
	// never-returns set as a fixpoint: a function whose spine calls a
	// just-discovered non-returning function becomes non-returning too.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
				decls[obj] = fn
			}
		}
	}
	noret := make(map[*types.Func]bool)
	for changed := true; changed; {
		changed = false
		for obj, fn := range decls {
			if noret[obj] {
				continue
			}
			if spineNeverReturns(pass, fn.Body.List, noret) {
				noret[obj] = true
				changed = true
			}
		}
	}
	for obj := range noret {
		pass.ExportObjectFact(obj, &NoReturn{})
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			switch fun := unparen(g.Call.Fun).(type) {
			case *ast.FuncLit:
				if spineNeverReturns(pass, fun.Body.List, noret) {
					pass.Categorizef("goroutine-leak", g.Pos(),
						"goroutine never terminates: the function literal has no return, break, or terminating call on any path")
				}
			default:
				fn := calleeFunc(pass, g.Call)
				if fn != nil && isNoReturnFunc(pass, fn, noret) {
					pass.Categorizef("goroutine-leak", g.Pos(),
						"goroutine never terminates: %s has no return, break, or terminating call on any path", fn.Name())
				}
			}
			return true
		})
	}
	return nil, nil
}

// spineNeverReturns reports whether executing stmts in order provably
// never completes. Only unconditionally-executed statements are examined
// (the spine): nested blocks and labeled statements are followed,
// branches are not — a function that merely may loop forever is not
// flagged.
func spineNeverReturns(pass *framework.Pass, stmts []ast.Stmt, noret map[*types.Func]bool) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.ReturnStmt:
			return false
		case *ast.BlockStmt:
			if spineNeverReturns(pass, s.List, noret) {
				return true
			}
		case *ast.LabeledStmt:
			if spineNeverReturns(pass, []ast.Stmt{s.Stmt}, noret) {
				return true
			}
		case *ast.ForStmt:
			if s.Cond == nil && !loopEscapes(pass, s) {
				return true
			}
		case *ast.SelectStmt:
			if len(s.Body.List) == 0 {
				return true // select{} blocks forever
			}
		case *ast.ExprStmt:
			if call, ok := unparen(s.X).(*ast.CallExpr); ok {
				if fn := calleeFunc(pass, call); fn != nil && isNoReturnFunc(pass, fn, noret) {
					return true
				}
			}
		}
	}
	return false
}

// isNoReturnFunc reports whether fn is known to never return, either from
// this package's fixpoint or from a NoReturn fact exported by fn's own
// package.
func isNoReturnFunc(pass *framework.Pass, fn *types.Func, noret map[*types.Func]bool) bool {
	if noret[fn] {
		return true
	}
	var fact NoReturn
	return pass.ImportObjectFact(fn, &fact)
}

// loopEscapes reports whether the body of the infinite loop l contains any
// way out: a return, an unlabeled break targeting l, any labeled break or
// goto (labels only lead outward), or a call that terminates the
// goroutine. Function literals inside the body are separate goroutine-less
// scopes and are skipped.
func loopEscapes(pass *framework.Pass, l *ast.ForStmt) bool {
	escapes := false
	// nested tracks whether an enclosing for/range/switch/select sits
	// between the current node and l, which retargets unlabeled breaks.
	var scan func(n ast.Node, nested bool)
	scan = func(n ast.Node, nested bool) {
		if escapes || n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return
		case *ast.ReturnStmt:
			escapes = true
			return
		case *ast.BranchStmt:
			switch n.Tok {
			case token.BREAK:
				if n.Label != nil || !nested {
					escapes = true
				}
			case token.GOTO:
				escapes = true
			}
			return
		case *ast.CallExpr:
			if isTerminatingCall(pass, n) {
				escapes = true
				return
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			nested = true
		}
		ast.Inspect(n, func(child ast.Node) bool {
			if child == n {
				return true
			}
			scan(child, nested)
			return false
		})
	}
	scan(l.Body, false)
	return escapes
}

// isTerminatingCall recognizes calls that end the goroutine (or the whole
// process): panic, os.Exit, runtime.Goexit, log.Fatal and variants.
func isTerminatingCall(pass *framework.Pass, call *ast.CallExpr) bool {
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			return b.Name() == "panic"
		}
	}
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "os":
		return fn.Name() == "Exit"
	case "runtime":
		return fn.Name() == "Goexit"
	case "log":
		return strings.HasPrefix(fn.Name(), "Fatal") || strings.HasPrefix(fn.Name(), "Panic")
	}
	return false
}

// calleeFunc resolves the *types.Func a call invokes, or nil for calls
// through function values, conversions, and builtins.
func calleeFunc(pass *framework.Pass, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	}
	return nil
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
