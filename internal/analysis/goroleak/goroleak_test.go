package goroleak_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"valois/internal/analysis/analysistest"
	"valois/internal/analysis/framework"
	"valois/internal/analysis/goroleak"
)

func TestGoroLeak(t *testing.T) {
	analysistest.Run(t, "testdata", goroleak.Analyzer, "a")
}

// TestCrossPackageFact checks the interprocedural half: a goroutine
// spawning another package's never-returning function is flagged through
// the NoReturn fact exported while analyzing the dependency.
func TestCrossPackageFact(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) string {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	depPath := write("dep/dep.go", `package dep

func tick() {}

// Serve spins forever.
func Serve() {
	for {
		tick()
	}
}

// Poll returns when asked.
func Poll(done chan struct{}) {
	for {
		select {
		case <-done:
			return
		default:
			tick()
		}
	}
}
`)
	rootPath := write("root/root.go", `package root

import "dep"

func Start(done chan struct{}) {
	go dep.Serve()
	go dep.Poll(done)
}
`)

	ld := framework.NewLoader("")
	facts := framework.NewFactStore()
	var diags []framework.Diagnostic
	for _, fx := range []struct {
		pkg  string
		path string
	}{{"dep", depPath}, {"root", rootPath}} {
		loaded, err := ld.LoadFiles(fx.pkg, fx.path)
		if err != nil {
			t.Fatalf("loading %s: %v", fx.pkg, err)
		}
		if len(loaded.Errors) > 0 {
			t.Fatalf("fixture %s: %v", fx.pkg, loaded.Errors)
		}
		pass := &framework.Pass{
			Analyzer:  goroleak.Analyzer,
			Fset:      ld.Fset(),
			Files:     loaded.Syntax,
			Pkg:       loaded.Types,
			TypesInfo: loaded.TypesInfo,
			Facts:     facts,
		}
		pass.Report = func(d framework.Diagnostic) { diags = append(diags, d) }
		if _, err := goroleak.Analyzer.Run(pass); err != nil {
			t.Fatalf("analyzer on %s: %v", fx.pkg, err)
		}
	}

	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1 (go dep.Serve()): %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "Serve") {
		t.Fatalf("diagnostic does not name Serve: %s", diags[0].Message)
	}
	pos := ld.Fset().Position(diags[0].Pos)
	if filepath.Base(pos.Filename) != "root.go" {
		t.Fatalf("diagnostic at %s, want root.go (the spawn site)", pos)
	}
}
