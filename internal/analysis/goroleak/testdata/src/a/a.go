// Package a exercises the goroleak analyzer: go statements spawning
// functions with no termination path are flagged; goroutines with a
// reachable return, break, bound, or terminating call are not.
package a

import (
	"log"
	"os"
	"runtime"
)

func work(int)          {}
func next() (int, bool) { return 0, false }

// spin never returns: infinite loop, no escape.
func spin() {
	for {
		work(1)
	}
}

// spinsViaCallee never returns because its spine calls spin.
func spinsViaCallee() {
	work(0)
	spin()
}

// blockForever never returns: select{} blocks by definition.
func blockForever() {
	select {}
}

// drain terminates when ch is closed: range over a channel is a
// termination path.
func drain(ch chan int) {
	for v := range ch {
		work(v)
	}
}

// pump has a return inside the loop.
func pump(done chan struct{}, ch chan int) {
	for {
		select {
		case <-done:
			return
		case v := <-ch:
			work(v)
		}
	}
}

// crashy terminates the goroutine via panic.
func crashy() {
	for {
		panic("boom")
	}
}

// exits terminates the process.
func exits() {
	for {
		os.Exit(1)
	}
}

// bails terminates via log.Fatal.
func bails() {
	for {
		log.Fatal("bye")
	}
}

// quits ends the goroutine explicitly.
func quits() {
	for {
		runtime.Goexit()
	}
}

// bounded has a loop condition.
func bounded() {
	for i := 0; i < 10; i++ {
		work(i)
	}
}

// breaksOut escapes with an unlabeled break.
func breaksOut() {
	for {
		if _, ok := next(); !ok {
			break
		}
	}
}

// labeledBreak escapes an inner loop out to the label.
func labeledBreak() {
outer:
	for {
		for {
			if _, ok := next(); !ok {
				break outer
			}
		}
	}
}

func spawnAll(done chan struct{}, ch chan int) {
	go spin()           // want `goroutine never terminates: spin`
	go spinsViaCallee() // want `goroutine never terminates: spinsViaCallee`
	go blockForever()   // want `goroutine never terminates: blockForever`

	go func() { // want `goroutine never terminates`
		for {
			work(2)
		}
	}()

	go func() { // want `goroutine never terminates`
		select {}
	}()

	// A nested switch retargets nothing: the unlabeled break below leaves
	// the switch, not the loop, so the loop still has no escape.
	go func() { // want `goroutine never terminates`
		for {
			switch v, _ := next(); v {
			case 0:
				break
			default:
				work(v)
			}
		}
	}()

	// Clean spawns: all of these terminate (or can).
	go drain(ch)
	go pump(done, ch)
	go crashy()
	go exits()
	go bails()
	go quits()
	go bounded()
	go breaksOut()
	go labeledBreak()
	go work(3)

	go func() {
		for v := range ch {
			work(v)
		}
	}()

	go func() {
		for {
			if _, ok := next(); !ok {
				return
			}
		}
	}()

	// The inner function literal loops forever, but it is not the spawned
	// goroutine's body — spawning a closure-maker is not itself a leak
	// (the literal would be flagged where it is started).
	go func() {
		f := func() {
			for {
				work(4)
			}
		}
		_ = f
	}()
}
