// Package hbpublish defines a happens-before-aware analyzer for mutation
// after publication.
//
// A lock-free structure hands cells to other goroutines by publishing a
// pointer: an atomic Store, a successful CompareAndSwap, or a channel
// send. From that instant the cell is shared — every plain field write
// reachable after the publication races with readers that already
// traversed the pointer, and the race is invisible locally because the
// writing goroutine still holds what looks like a private pointer it just
// initialized. The correct order (the paper's Figures 17–18 and every
// constructor in internal/mm) is: initialize fully, then publish, then
// touch the cell only through its atomic fields.
//
// The analyzer tracks function-local pointers born from &T{...} or new(T)
// and runs a forward may-dataflow over the function's control-flow graph
// (framework/cfg): the fact at each point is the set of tracked pointers
// a publication reaches. A plain field write is flagged only when a
// publication of the same pointer actually reaches it along some path —
// unlike its position-based predecessor (publish, v1–v6 of the suite),
// which compared source offsets and therefore missed loop-carried races
// (a write textually above the CAS that iteration N+1 performs after
// iteration N published) while flagging writes on branches mutually
// exclusive with the publication. Dominators grade each finding: a write
// the publication dominates races on every path, otherwise on some path.
// Re-pointing the variable at a fresh cell kills the fact — the write
// then targets the new, private cell.
//
// Publications in scope:
//
//   - an atomic Store method or the new value of a CompareAndSwap —
//     always: these are the lock-free publication idioms;
//   - a channel send — only when the struct carries a sync/atomic field,
//     the marker of a concurrently-accessed protocol cell (mirroring
//     abaguard's scoping; plain data sent over a channel with the
//     receiver taking ownership is a legitimate hand-off pattern).
//
// Writes through the cell's own atomic fields (x.refct.Store(1)) are
// method calls, not plain writes, and stay clean. Function literals are
// separate accounting scopes: a publication inside a closure orders with
// the closure's own writes, not the enclosing function's (cross-closure
// ordering is out of scope — lenient, like the reference analyzers).
package hbpublish

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"valois/internal/analysis/framework"
	"valois/internal/analysis/framework/cfg"
)

// Analyzer reports plain field writes reachable after the struct was
// published.
var Analyzer = &framework.Analyzer{
	Name:    "hbpublish",
	Doc:     "report struct fields written at a point reachable after the struct was published via atomic store, CAS, or channel send",
	Version: "v1",
	Run:     run,
}

func run(pass *framework.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFunc(pass, n.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, n.Body)
			}
			return true
		})
	}
	return nil, nil
}

// pubInfo records the earliest publication of one tracked pointer that
// reaches a program point.
type pubInfo struct {
	pos   token.Pos
	how   string
	block int // the CFG block performing the publication
}

// fact is the dataflow fact: which tracked pointers are published here,
// each with its earliest reaching publication.
type fact map[*types.Var]pubInfo

func cloneFact(f fact) fact {
	c := make(fact, len(f))
	for k, v := range f {
		c[k] = v
	}
	return c
}

func checkFunc(pass *framework.Pass, body *ast.BlockStmt) {
	locals := gatherLocals(pass, body)
	if len(locals) == 0 {
		return
	}
	g := pass.FuncCFG(body)

	apply := func(b *cfg.Block, in fact) fact {
		out := cloneFact(in)
		for _, n := range b.Nodes {
			applyNode(pass, locals, n, out, b.Index)
		}
		return out
	}
	res := cfg.Solve(g, cfg.Problem[fact]{
		Dir:      cfg.Forward,
		Boundary: fact{},
		Init:     fact{},
		Join: func(a, b fact) fact {
			j := cloneFact(a)
			for v, p := range b {
				if old, ok := j[v]; !ok || p.pos < old.pos {
					j[v] = p
				}
			}
			return j
		},
		Transfer: apply,
		Equal: func(a, b fact) bool {
			if len(a) != len(b) {
				return false
			}
			for v, p := range a {
				if q, ok := b[v]; !ok || q != p {
					return false
				}
			}
			return true
		},
	})

	// Reporting pass: re-walk each block from its fixpoint in-fact,
	// checking every plain field write against the publications reaching
	// it. Publications inherited from predecessors are graded by
	// dominance; one applied earlier in the same block is by construction
	// on every path.
	idom := cfg.Dominators(g)
	for _, b := range g.Blocks {
		inherited := res.In[b.Index]
		local := make(fact)
		for _, n := range b.Nodes {
			for _, w := range fieldWrites(pass, locals, n) {
				p, fromLocal := local[w.v]
				if !fromLocal {
					var ok bool
					p, ok = inherited[w.v]
					if !ok {
						continue
					}
				}
				every := fromLocal ||
					(p.block != b.Index && cfg.Dominates(idom, p.block, b.Index))
				path := "some path"
				if every {
					path = "every path"
				}
				ppos := pass.Fset.Position(p.pos)
				pass.Categorizef("unsafe-publish", w.pos,
					"field %s of %s is written after the struct was published by %s (line %d) on %s: the plain write races with readers of the published pointer — initialize before publishing, or make the field atomic",
					w.field, w.v.Name(), p.how, ppos.Line, path)
			}
			applyNode(pass, locals, n, local, b.Index)
			// A re-point also hides inherited publications from later
			// nodes of this block.
			for _, v := range repointedVars(pass, locals, n) {
				if _, ok := inherited[v]; ok {
					inherited = cloneFact(inherited)
					delete(inherited, v)
				}
			}
		}
	}
}

// applyNode folds one evaluated CFG node into a publication fact:
// publications add entries, re-pointing a tracked variable removes its
// entry (the old cell is no longer reachable through it). Function-literal
// interiors are skipped — separate scope.
func applyNode(pass *framework.Pass, locals map[*types.Var]bool, n ast.Node, f fact, block int) {
	inspectNoFuncLit(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if v := localIdent(pass, locals, lhs); v != nil {
					delete(f, v)
				}
			}
		case *ast.CallExpr:
			recordCallPublication(pass, locals, f, n, block)
		case *ast.SendStmt:
			if v := localIdent(pass, locals, n.Value); v != nil && hasAtomicField(v.Type()) {
				if old, ok := f[v]; !ok || n.Pos() < old.pos {
					f[v] = pubInfo{pos: n.Pos(), how: "channel send", block: block}
				}
			}
		}
		return true
	})
}

// repointedVars lists the tracked variables n assigns to directly.
func repointedVars(pass *framework.Pass, locals map[*types.Var]bool, n ast.Node) []*types.Var {
	var vars []*types.Var
	inspectNoFuncLit(n, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if v := localIdent(pass, locals, lhs); v != nil {
					vars = append(vars, v)
				}
			}
		}
		return true
	})
	return vars
}

type fieldWrite struct {
	pos   token.Pos
	v     *types.Var
	field string
}

// fieldWrites lists the plain field writes n performs through tracked
// pointers.
func fieldWrites(pass *framework.Pass, locals map[*types.Var]bool, n ast.Node) []fieldWrite {
	var writes []fieldWrite
	inspectNoFuncLit(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if w, ok := asFieldWrite(pass, locals, lhs); ok {
					writes = append(writes, w)
				}
			}
		case *ast.IncDecStmt:
			if w, ok := asFieldWrite(pass, locals, n.X); ok {
				writes = append(writes, w)
			}
		}
		return true
	})
	return writes
}

// gatherLocals collects the function's locally-constructed struct
// pointers: variables assigned &T{...} or new(T) anywhere in the body
// (their own scope; closure interiors excluded).
func gatherLocals(pass *framework.Pass, body *ast.BlockStmt) map[*types.Var]bool {
	locals := make(map[*types.Var]bool)
	inspectNoFuncLit(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Rhs {
					recordLocal(pass, locals, n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Values {
					recordLocal(pass, locals, n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return locals
}

// inspectNoFuncLit walks n without entering function literals: a closure
// is its own accounting scope.
func inspectNoFuncLit(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n == nil {
			return true
		}
		return f(n)
	})
}

// recordLocal marks lhs as a tracked pointer when rhs constructs a fresh
// struct: &T{...} or new(T).
func recordLocal(pass *framework.Pass, locals map[*types.Var]bool, lhs, rhs ast.Expr) {
	id, ok := unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return
	}
	fresh := false
	switch rhs := unparen(rhs).(type) {
	case *ast.UnaryExpr:
		if rhs.Op == token.AND {
			_, fresh = unparen(rhs.X).(*ast.CompositeLit)
		}
	case *ast.CallExpr:
		if fun, ok := unparen(rhs.Fun).(*ast.Ident); ok {
			if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok && b.Name() == "new" {
				fresh = true
			}
		}
	}
	if !fresh || !pointsToStruct(v.Type()) {
		return
	}
	locals[v] = true
}

// recordCallPublication detects the atomic publication idioms: a Store
// method with a tracked pointer argument, and a CompareAndSwap whose new
// value is a tracked pointer.
func recordCallPublication(pass *framework.Pass, locals map[*types.Var]bool, f fact, call *ast.CallExpr, block int) {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return
	}
	record := func(v *types.Var, how string) {
		if old, ok := f[v]; !ok || call.Pos() < old.pos {
			f[v] = pubInfo{pos: call.Pos(), how: how, block: block}
		}
	}
	isMethod := fn.Type().(*types.Signature).Recv() != nil
	switch {
	case isMethod && fn.Name() == "Store":
		for _, arg := range call.Args {
			if v := localIdent(pass, locals, arg); v != nil {
				record(v, "atomic store")
			}
		}
	case isMethod && (fn.Name() == "CompareAndSwap" || strings.HasPrefix(fn.Name(), "CAS")),
		!isMethod && strings.HasPrefix(fn.Name(), "CompareAndSwap"):
		if len(call.Args) == 0 {
			return
		}
		if v := localIdent(pass, locals, call.Args[len(call.Args)-1]); v != nil {
			record(v, "CompareAndSwap")
		}
	}
}

// asFieldWrite decodes expr as a plain field write x.f through a tracked
// pointer x.
func asFieldWrite(pass *framework.Pass, locals map[*types.Var]bool, expr ast.Expr) (fieldWrite, bool) {
	sel, ok := unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return fieldWrite{}, false
	}
	v := localIdent(pass, locals, sel.X)
	if v == nil {
		return fieldWrite{}, false
	}
	if s, ok := pass.TypesInfo.Selections[sel]; !ok || s.Kind() != types.FieldVal {
		return fieldWrite{}, false
	}
	return fieldWrite{pos: expr.Pos(), v: v, field: sel.Sel.Name}, true
}

// localIdent resolves e to a tracked local pointer variable, or nil.
func localIdent(pass *framework.Pass, locals map[*types.Var]bool, e ast.Expr) *types.Var {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || !locals[v] {
		return nil
	}
	return v
}

func pointsToStruct(t types.Type) bool {
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	_, ok = ptr.Elem().Underlying().(*types.Struct)
	return ok
}

// hasAtomicField reports whether the pointee struct carries a sync/atomic
// field — the marker of a concurrently-accessed protocol cell.
func hasAtomicField(t types.Type) bool {
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	st, ok := ptr.Elem().Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		named, ok := st.Field(i).Type().(*types.Named)
		if ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync/atomic" {
			return true
		}
	}
	return false
}

// calleeFunc resolves the *types.Func a call invokes, or nil for calls
// through function values, conversions, and builtins.
func calleeFunc(pass *framework.Pass, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		if id, ok := unparen(fun.X).(*ast.Ident); ok {
			fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
			return fn
		}
		if sel, ok := unparen(fun.X).(*ast.SelectorExpr); ok {
			fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			return fn
		}
	}
	return nil
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
