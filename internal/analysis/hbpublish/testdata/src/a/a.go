// Package a exercises the hbpublish analyzer: plain field writes at a
// point reachable after the struct escaped via atomic store, CAS, or
// channel send are flagged; writes on paths the publication cannot reach
// are not, and the loop back edge counts as reachability.
package a

import "sync/atomic"

type Node struct {
	val   int
	next  atomic.Pointer[Node]
	refct atomic.Int64
}

type Plain struct {
	n int
}

func storeThenWrite(head *atomic.Pointer[Node]) {
	n := &Node{}
	n.val = 1 // initialize-before-publish: fine
	head.Store(n)
	n.val = 2 // want `field val of n is written after the struct was published by atomic store \(line 22\) on every path`
}

func casThenWrite(head *atomic.Pointer[Node]) {
	old := head.Load()
	n := new(Node)
	if head.CompareAndSwap(old, n) {
		n.val = 3 // want `field val of n is written after the struct was published by CompareAndSwap \(line 29\) on every path`
	}
}

func sendThenWrite(ch chan *Node) {
	n := &Node{val: 4}
	ch <- n
	n.val = 5 // want `field val of n is written after the struct was published by channel send \(line 36\) on every path`
}

func incAfterPublish(head *atomic.Pointer[Node]) {
	n := &Node{}
	head.Store(n)
	n.val++ // want `field val of n is written after the struct was published by atomic store \(line 42\) on every path`
}

// loopRepublish: the write sits textually above the CAS, but the loop's
// back edge makes it reachable after iteration one's publication — the
// race the position-based analyzer could not see.
func loopRepublish(head *atomic.Pointer[Node]) {
	n := &Node{}
	for i := 0; i < 2; i++ {
		n.val = i // want `field val of n is written after the struct was published by CompareAndSwap \(line 53\) on some path`
		head.CompareAndSwap(nil, n)
	}
}

// branchPublishJoin: published only on one branch, written after the
// join — a race on the paths through the then-branch.
func branchPublishJoin(head *atomic.Pointer[Node], c bool) {
	n := &Node{}
	if c {
		head.Store(n)
	}
	n.val = 14 // want `field val of n is written after the struct was published by atomic store \(line 62\) on some path`
}

// atomicAfterPublish touches the published cell only through its atomic
// fields: the sanctioned pattern.
func atomicAfterPublish(head *atomic.Pointer[Node], next *Node) {
	n := &Node{val: 6}
	head.Store(n)
	n.refct.Store(1)
	n.next.Store(next)
}

// initThenPublish is the canonical constructor order.
func initThenPublish(head *atomic.Pointer[Node]) {
	n := &Node{}
	n.val = 7
	n.refct.Store(1)
	head.Store(n)
}

// ownershipHandoff sends a plain struct (no atomic fields): the receiver
// takes ownership by convention, out of this analyzer's scope.
func ownershipHandoff(ch chan *Plain) {
	p := &Plain{}
	ch <- p
	p.n = 8
}

// notPublished never escapes: writes are private.
func notPublished() int {
	n := &Node{}
	n.val = 9
	n.val++
	return n.val
}

// paramWrite: parameters are not locally-constructed; their ownership is
// the caller's business.
func paramWrite(head *atomic.Pointer[Node], n *Node) {
	head.Store(n)
	n.val = 10
}

// siblingBranch: the publication and the write sit on mutually exclusive
// branches — no execution performs both in order, so nothing is flagged.
// The position-based analyzer reported this.
func siblingBranch(head *atomic.Pointer[Node], c bool) {
	n := &Node{}
	if c {
		head.Store(n)
	} else {
		n.val = 11
		head.Store(n)
	}
}

// repoint: after publishing the first cell, n is re-pointed at a fresh
// private one; the write targets the new cell, not the published one.
func repoint(head *atomic.Pointer[Node]) {
	n := &Node{}
	head.Store(n)
	n = &Node{}
	n.val = 12
	head.Store(n)
}

// closureScope: the publication happens inside a function literal, a
// separate accounting scope — the enclosing function's write is not
// ordered after it by this analyzer.
func closureScope(head *atomic.Pointer[Node]) func() {
	n := &Node{}
	f := func() { head.Store(n) }
	n.val = 13
	return f
}
