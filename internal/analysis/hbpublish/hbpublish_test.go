package hbpublish_test

import (
	"testing"

	"valois/internal/analysis/analysistest"
	"valois/internal/analysis/hbpublish"
)

func TestHBPublish(t *testing.T) {
	analysistest.Run(t, "testdata", hbpublish.Analyzer, "a")
}
