package publish_test

import (
	"testing"

	"valois/internal/analysis/analysistest"
	"valois/internal/analysis/publish"
)

func TestPublish(t *testing.T) {
	analysistest.Run(t, "testdata", publish.Analyzer, "a")
}
