// Package publish defines an analyzer for mutation after publication.
//
// A lock-free structure hands cells to other goroutines by publishing a
// pointer: an atomic Store, a successful CompareAndSwap, or a channel
// send. From that instant the cell is shared — every plain field write
// after the publication races with readers that already traversed the
// pointer, and the race is invisible locally because the writing
// goroutine still holds what looks like a private pointer it just
// initialized. The correct order (the paper's Figures 17–18 and every
// constructor in internal/mm) is: initialize fully, then publish, then
// touch the cell only through its atomic fields.
//
// The analyzer tracks function-local pointers born from &T{...} or
// new(T) and flags plain field writes through them positioned after the
// pointer escaped:
//
//   - via an atomic Store method or as the new value of a CompareAndSwap
//     — always in scope: these are the lock-free publication idioms;
//   - via a channel send — in scope only when the struct carries a
//     sync/atomic field, the marker of a concurrently-accessed protocol
//     cell (mirroring abaguard's scoping; plain data sent over a channel
//     with the receiver taking ownership is a legitimate hand-off
//     pattern).
//
// Writes through the cell's own atomic fields (x.refct.Store(1)) are
// method calls, not plain writes, and stay clean.
package publish

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"valois/internal/analysis/framework"
)

// Analyzer reports plain field writes after the struct was published.
var Analyzer = &framework.Analyzer{
	Name:    "publish",
	Doc:     "report struct fields written after the struct was published via atomic store, CAS, or channel send",
	Version: "v1",
	Run:     run,
}

func run(pass *framework.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd.Body)
			}
		}
	}
	return nil, nil
}

type pub struct {
	pos token.Pos
	how string
}

type fieldWrite struct {
	pos   token.Pos
	v     *types.Var
	field string
}

// checkFunc gathers one function's locally-constructed pointers, their
// publications, and their plain field writes, then reports every write
// positioned after its pointer's first publication. Function literals are
// walked as part of the enclosing body; variables are distinguished by
// object identity.
func checkFunc(pass *framework.Pass, body *ast.BlockStmt) {
	locals := make(map[*types.Var]bool)
	pubs := make(map[*types.Var][]pub)
	var writes []fieldWrite

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Rhs {
					recordLocal(pass, locals, n.Lhs[i], n.Rhs[i])
				}
			}
			for _, lhs := range n.Lhs {
				if w, ok := asFieldWrite(pass, locals, lhs); ok {
					writes = append(writes, w)
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Values {
					recordLocal(pass, locals, n.Names[i], n.Values[i])
				}
			}
		case *ast.IncDecStmt:
			if w, ok := asFieldWrite(pass, locals, n.X); ok {
				writes = append(writes, w)
			}
		case *ast.CallExpr:
			recordCallPublication(pass, locals, pubs, n)
		case *ast.SendStmt:
			if v := localIdent(pass, locals, n.Value); v != nil && hasAtomicField(v.Type()) {
				pubs[v] = append(pubs[v], pub{n.Pos(), "channel send"})
			}
		}
		return true
	})

	for _, w := range writes {
		for _, p := range pubs[w.v] {
			if p.pos < w.pos {
				ppos := pass.Fset.Position(p.pos)
				pass.Categorizef("unsafe-publish", w.pos,
					"field %s of %s is written after the struct was published by %s (line %d): the plain write races with readers of the published pointer — initialize before publishing, or make the field atomic",
					w.field, w.v.Name(), p.how, ppos.Line)
				break
			}
		}
	}
}

// recordLocal marks lhs as a tracked pointer when rhs constructs a fresh
// struct: &T{...} or new(T).
func recordLocal(pass *framework.Pass, locals map[*types.Var]bool, lhs, rhs ast.Expr) {
	id, ok := unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return
	}
	fresh := false
	switch rhs := unparen(rhs).(type) {
	case *ast.UnaryExpr:
		if rhs.Op == token.AND {
			_, fresh = unparen(rhs.X).(*ast.CompositeLit)
		}
	case *ast.CallExpr:
		if fun, ok := unparen(rhs.Fun).(*ast.Ident); ok {
			if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok && b.Name() == "new" {
				fresh = true
			}
		}
	}
	if !fresh || !pointsToStruct(v.Type()) {
		return
	}
	locals[v] = true
}

// recordCallPublication detects the atomic publication idioms: a Store
// method with a tracked pointer argument, and a CompareAndSwap whose new
// value is a tracked pointer.
func recordCallPublication(pass *framework.Pass, locals map[*types.Var]bool, pubs map[*types.Var][]pub, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return
	}
	isMethod := fn.Type().(*types.Signature).Recv() != nil
	switch {
	case isMethod && fn.Name() == "Store":
		for _, arg := range call.Args {
			if v := localIdent(pass, locals, arg); v != nil {
				pubs[v] = append(pubs[v], pub{call.Pos(), "atomic store"})
			}
		}
	case isMethod && (fn.Name() == "CompareAndSwap" || strings.HasPrefix(fn.Name(), "CAS")),
		!isMethod && strings.HasPrefix(fn.Name(), "CompareAndSwap"):
		if len(call.Args) == 0 {
			return
		}
		if v := localIdent(pass, locals, call.Args[len(call.Args)-1]); v != nil {
			pubs[v] = append(pubs[v], pub{call.Pos(), "CompareAndSwap"})
		}
	}
}

// asFieldWrite decodes expr as a plain field write x.f through a tracked
// pointer x.
func asFieldWrite(pass *framework.Pass, locals map[*types.Var]bool, expr ast.Expr) (fieldWrite, bool) {
	sel, ok := unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return fieldWrite{}, false
	}
	v := localIdent(pass, locals, sel.X)
	if v == nil {
		return fieldWrite{}, false
	}
	if s, ok := pass.TypesInfo.Selections[sel]; !ok || s.Kind() != types.FieldVal {
		return fieldWrite{}, false
	}
	return fieldWrite{pos: expr.Pos(), v: v, field: sel.Sel.Name}, true
}

// localIdent resolves e to a tracked local pointer variable, or nil.
func localIdent(pass *framework.Pass, locals map[*types.Var]bool, e ast.Expr) *types.Var {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || !locals[v] {
		return nil
	}
	return v
}

func pointsToStruct(t types.Type) bool {
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	_, ok = ptr.Elem().Underlying().(*types.Struct)
	return ok
}

// hasAtomicField reports whether the pointee struct carries a sync/atomic
// field — the marker of a concurrently-accessed protocol cell.
func hasAtomicField(t types.Type) bool {
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	st, ok := ptr.Elem().Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		named, ok := st.Field(i).Type().(*types.Named)
		if ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync/atomic" {
			return true
		}
	}
	return false
}

// calleeFunc resolves the *types.Func a call invokes, or nil for calls
// through function values, conversions, and builtins.
func calleeFunc(pass *framework.Pass, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		if id, ok := unparen(fun.X).(*ast.Ident); ok {
			fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
			return fn
		}
		if sel, ok := unparen(fun.X).(*ast.SelectorExpr); ok {
			fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			return fn
		}
	}
	return nil
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
