// Package a exercises the publish analyzer: plain field writes after the
// struct escaped via atomic store, CAS, or channel send are flagged.
package a

import "sync/atomic"

type Node struct {
	val   int
	next  atomic.Pointer[Node]
	refct atomic.Int64
}

type Plain struct {
	n int
}

func storeThenWrite(head *atomic.Pointer[Node]) {
	n := &Node{}
	n.val = 1 // initialize-before-publish: fine
	head.Store(n)
	n.val = 2 // want `field val of n is written after the struct was published by atomic store`
}

func casThenWrite(head *atomic.Pointer[Node]) {
	old := head.Load()
	n := new(Node)
	if head.CompareAndSwap(old, n) {
		n.val = 3 // want `field val of n is written after the struct was published by CompareAndSwap`
	}
}

func sendThenWrite(ch chan *Node) {
	n := &Node{val: 4}
	ch <- n
	n.val = 5 // want `field val of n is written after the struct was published by channel send`
}

func incAfterPublish(head *atomic.Pointer[Node]) {
	n := &Node{}
	head.Store(n)
	n.val++ // want `field val of n is written after the struct was published by atomic store`
}

// atomicAfterPublish touches the published cell only through its atomic
// fields: the sanctioned pattern.
func atomicAfterPublish(head *atomic.Pointer[Node], next *Node) {
	n := &Node{val: 6}
	head.Store(n)
	n.refct.Store(1)
	n.next.Store(next)
}

// initThenPublish is the canonical constructor order.
func initThenPublish(head *atomic.Pointer[Node]) {
	n := &Node{}
	n.val = 7
	n.refct.Store(1)
	head.Store(n)
}

// ownershipHandoff sends a plain struct (no atomic fields): the receiver
// takes ownership by convention, out of this analyzer's scope.
func ownershipHandoff(ch chan *Plain) {
	p := &Plain{}
	ch <- p
	p.n = 8
}

// notPublished never escapes: writes are private.
func notPublished() int {
	n := &Node{}
	n.val = 9
	n.val++
	return n.val
}

// paramWrite: parameters are not locally-constructed; their ownership is
// the caller's business.
func paramWrite(head *atomic.Pointer[Node], n *Node) {
	head.Store(n)
	n.val = 10
}
