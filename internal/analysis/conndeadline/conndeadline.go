// Package conndeadline defines an analyzer for blocking network I/O that
// no deadline bounds.
//
// A Read or Write on a net.Conn without a deadline can block forever: a
// peer that stops sending (or stops draining) parks the goroutine
// indefinitely, and under goroutine-per-connection serving a handful of
// such peers exhausts the server. The serving stack's rule (DESIGN.md §7)
// is that every blocking operation on a connection happens under a
// deadline armed beforehand.
//
// The analyzer flags, per function:
//
//   - Read/Write-family method calls on a deadline-capable value (any
//     type with a SetDeadline method: net.Conn implementations and
//     wrappers alike);
//   - method calls on a bufio.Reader or bufio.Writer that was constructed
//     in the same function around a deadline-capable value;
//   - io.Copy, io.CopyN, io.ReadAll, and io.ReadFull calls given a
//     deadline-capable argument;
//
// unless some SetDeadline, SetReadDeadline, or SetWriteDeadline call
// occurs earlier (in source order) in the same function — arming any
// deadline before the first blocking operation is taken as evidence the
// function manages its I/O budget. Methods whose own receiver is
// deadline-capable are skipped entirely: a wrapper type forwarding Read
// to an inner connection inherits its caller's deadline discipline, and
// flagging the forwarder would indict every implementation of net.Conn.
package conndeadline

import (
	"go/ast"
	"go/token"
	"go/types"

	"valois/internal/analysis/framework"
)

// Analyzer reports blocking connection I/O with no preceding deadline.
var Analyzer = &framework.Analyzer{
	Name:    "conndeadline",
	Doc:     "report blocking net.Conn I/O with no deadline armed before it",
	Version: "v1",
	Run:     run,
}

// blockingMethods are the I/O methods that park the goroutine until the
// peer acts (or a deadline fires).
var blockingMethods = map[string]bool{
	"Read": true, "Write": true, "ReadFrom": true, "WriteTo": true,
	"ReadString": true, "ReadBytes": true, "ReadSlice": true,
	"ReadLine": true, "ReadByte": true, "ReadRune": true, "Peek": true,
	"WriteString": true, "WriteByte": true, "WriteRune": true, "Flush": true,
}

// ioBlockers are the io helpers that loop over Read/Write internally.
var ioBlockers = map[string]bool{
	"Copy": true, "CopyN": true, "ReadAll": true, "ReadFull": true,
}

func run(pass *framework.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if recvDeadlineCapable(pass, fn) {
				continue // a conn wrapper: its caller owns the deadlines
			}
			checkFunc(pass, fn.Body)
		}
	}
	return nil, nil
}

type site struct {
	pos  token.Pos
	what string
}

// checkFunc scans one function body (function literals included — they
// share the enclosing function's deadline discipline, and source order
// still approximates domination) for deadline arms and blocking I/O,
// then reports every blocking site no arm precedes.
func checkFunc(pass *framework.Pass, body *ast.BlockStmt) {
	var arms []token.Pos
	var blocks []site
	buffered := bufioOverConns(pass, body)

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return true
		}
		if sig.Recv() != nil {
			switch fn.Name() {
			case "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
				arms = append(arms, call.Pos())
				return true
			}
			if !blockingMethods[fn.Name()] {
				return true
			}
			sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv := unparen(sel.X)
			if t := pass.TypesInfo.TypeOf(recv); t != nil && deadlineCapable(t) {
				blocks = append(blocks, site{call.Pos(), fn.Name() + " on connection"})
				return true
			}
			if id, ok := recv.(*ast.Ident); ok && buffered[pass.TypesInfo.ObjectOf(id)] {
				blocks = append(blocks, site{call.Pos(), fn.Name() + " on connection-backed " + bufioTypeName(pass, recv)})
			}
			return true
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "io" && ioBlockers[fn.Name()] {
			for _, arg := range call.Args {
				t := pass.TypesInfo.TypeOf(arg)
				argConn := t != nil && deadlineCapable(t)
				if !argConn {
					if id, ok := unparen(arg).(*ast.Ident); ok && buffered[pass.TypesInfo.ObjectOf(id)] {
						argConn = true
					}
				}
				if argConn {
					blocks = append(blocks, site{call.Pos(), "io." + fn.Name() + " over a connection"})
					break
				}
			}
		}
		return true
	})

	for _, b := range blocks {
		armed := false
		for _, a := range arms {
			if a < b.pos {
				armed = true
				break
			}
		}
		if !armed {
			pass.Categorizef("no-deadline", b.pos,
				"blocking %s with no deadline: no SetDeadline/SetReadDeadline/SetWriteDeadline call precedes it in this function", b.what)
		}
	}
}

// bufioOverConns finds variables assigned from bufio.NewReader/NewWriter/
// NewReadWriter around a deadline-capable value: blocking through them is
// blocking on the connection.
func bufioOverConns(pass *framework.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "bufio" {
			return true
		}
		switch fn.Name() {
		case "NewReader", "NewWriter", "NewReadWriter", "NewReaderSize", "NewWriterSize":
		default:
			return true
		}
		overConn := false
		for _, arg := range call.Args {
			if t := pass.TypesInfo.TypeOf(arg); t != nil && deadlineCapable(t) {
				overConn = true
			}
		}
		if !overConn {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := unparen(lhs).(*ast.Ident); ok {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// deadlineCapable reports whether t (or its pointee) has a SetDeadline
// method — the shape of net.Conn and everything wrapping one. os.File
// also has SetDeadline (for pipes), but regular-file I/O does not block
// on a peer, so files are excluded.
func deadlineCapable(t types.Type) bool {
	if isOSFile(t) {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, "SetDeadline")
	if _, ok := obj.(*types.Func); ok {
		return true
	}
	return false
}

func isOSFile(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "os" && n.Obj().Name() == "File"
}

// recvDeadlineCapable reports whether fn is a method on a deadline-capable
// type.
func recvDeadlineCapable(pass *framework.Pass, fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	t := pass.TypesInfo.TypeOf(fn.Recv.List[0].Type)
	return t != nil && deadlineCapable(t)
}

func bufioTypeName(pass *framework.Pass, e ast.Expr) string {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return "buffer"
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return "bufio." + n.Obj().Name()
	}
	return "buffer"
}

// calleeFunc resolves the *types.Func a call invokes, or nil for calls
// through function values, conversions, and builtins.
func calleeFunc(pass *framework.Pass, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	}
	return nil
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
