// Package a exercises the conndeadline analyzer: blocking connection I/O
// with no deadline armed earlier in the function is flagged.
package a

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"time"
)

func naked(conn net.Conn, buf []byte) {
	conn.Read(buf)  // want `blocking Read on connection with no deadline`
	conn.Write(buf) // want `blocking Write on connection with no deadline`
}

func nakedBuffered(conn net.Conn) {
	br := bufio.NewReader(conn)
	br.ReadString('\n') // want `blocking ReadString on connection-backed bufio.Reader with no deadline`
}

func nakedCopy(dst io.Writer, conn net.Conn) {
	io.Copy(dst, conn) // want `blocking io.Copy over a connection with no deadline`
}

func nakedFlush(conn net.Conn, buf []byte) {
	bw := bufio.NewWriter(conn)
	bw.Write(buf) // want `blocking Write on connection-backed bufio.Writer with no deadline`
	bw.Flush()    // want `blocking Flush on connection-backed bufio.Writer with no deadline`
}

func deadlined(conn net.Conn, buf []byte) {
	conn.SetReadDeadline(time.Now().Add(time.Second))
	conn.Read(buf)
	conn.SetWriteDeadline(time.Now().Add(time.Second))
	conn.Write(buf)
}

func deadlinedBuffered(conn net.Conn) {
	conn.SetDeadline(time.Now().Add(time.Second))
	br := bufio.NewReader(conn)
	br.ReadString('\n')
}

func deadlinedCopy(dst io.Writer, conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(time.Second))
	io.Copy(dst, conn)
}

// deadlineInLiteral: the literal shares the enclosing function's
// discipline, and the arm precedes the copy in source order.
func deadlinedLiteral(dst io.Writer, conn net.Conn) {
	conn.SetDeadline(time.Now().Add(time.Second))
	go func() {
		io.Copy(dst, conn)
	}()
}

func nakedLiteral(dst io.Writer, conn net.Conn) {
	go func() {
		io.Copy(dst, conn) // want `blocking io.Copy over a connection with no deadline`
	}()
}

// notAConn: Read on something without SetDeadline is not connection I/O.
func notAConn(buf *bytes.Buffer, p []byte) {
	buf.Read(p)
}

// plainCopy: io.Copy between non-connections is fine.
func plainCopy(dst io.Writer, src io.Reader) {
	io.Copy(dst, src)
}

// plainBuffered: a bufio.Reader over a non-connection is fine.
func plainBuffered(src io.Reader) {
	br := bufio.NewReader(src)
	br.ReadString('\n')
}

// Wrapper forwards Read to an inner connection. Its receiver is
// deadline-capable (the embedded net.Conn provides SetDeadline), so its
// methods are skipped: the wrapper's caller arms the deadlines.
type Wrapper struct {
	net.Conn
}

func (w *Wrapper) Read(p []byte) (int, error) {
	return w.Conn.Read(p)
}
