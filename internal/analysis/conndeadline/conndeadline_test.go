package conndeadline_test

import (
	"testing"

	"valois/internal/analysis/analysistest"
	"valois/internal/analysis/conndeadline"
)

func TestConnDeadline(t *testing.T) {
	analysistest.Run(t, "testdata", conndeadline.Analyzer, "a")
}
