package releasepath_test

import (
	"testing"

	"valois/internal/analysis/analysistest"
	"valois/internal/analysis/releasepath"
)

func TestReleasePath(t *testing.T) {
	analysistest.Run(t, "testdata", releasepath.Analyzer, "a")
}
