// Package releasepath defines an analyzer that audits every function exit
// path — ordinary returns, early error returns, fall-through ends, and
// panic exits — for acquired references that are neither released nor
// transferred.
//
// The paper's reclamation discipline (§5, Figures 15–18) only works if
// the count is balanced on EVERY way out of a function. The exits that
// slip through review are rarely the happy path: they are the early
// `return nil, err` added after the SafeRead, and the `panic` guarding a
// broken invariant — an exit the companion analyzers deliberately exempt
// (saferead and refbalance police paths that complete; this analyzer owns
// the rest). A reference lost on a panic exit is especially insidious:
// the process usually survives (a recover upstream), the count stays
// high forever, and the cell plus everything reachable through its
// counted links is unreclaimable.
//
// The analyzer tracks local variables assigned from calls named SafeRead,
// safeRead, Alloc, or alloc that return a pointer — the acquisition
// intrinsics of the protocol — and interprets the function's control-flow
// graph path by path. It applies the same discipline to epoch guards:
// a call named Pin or pin returning a single value opens an epoch-
// protected region, and a guard that is never handed to Unpin on some
// exit path leaves that epoch pinned forever — reclamation wedges, limbo
// grows without bound, and unlike a single lost cell the damage is
// global. Those findings carry the missing-unpin category. An obligation is discharged by anything that
// releases or plausibly transfers it: passing the variable to any call
// (Release, ReleaseNodes, or a helper that may assume ownership),
// returning it, storing it into a structure, capturing it in a closure,
// sending it on a channel, or proving it nil on the branch taken.
// Deferred releases — `defer m.Release(q)` or a deferred closure touching
// q — discharge the obligation for every later exit on the path,
// including panic exits, because deferred calls run during unwinding.
//
// At each exit edge of the CFG the interpreter reports what is still
// live, with the exit kind in the message: the return being taken, the
// fall-through end of the function, or the panic. Like its companions it
// under-approximates — transfer is read broadly, loops are explored under
// a visit budget — so it misses some leaks but does not flag correct
// code.
package releasepath

import (
	"go/ast"
	"go/token"
	"go/types"

	"valois/internal/analysis/framework"
	"valois/internal/analysis/framework/cfg"
)

// Analyzer reports acquired references that some exit path abandons.
var Analyzer = &framework.Analyzer{
	Name:    "releasepath",
	Doc:     "report exit paths (including early returns and panics) that abandon an acquired reference",
	Version: "v1",
	Run:     run,
}

// maxStates bounds the number of distinct path states carried through a
// function; beyond it, excess states are dropped (under-approximation:
// fewer reports, never spurious ones).
const maxStates = 64

func run(pass *framework.Pass) (any, error) {
	a := &analysis{pass: pass, reported: make(map[reportKey]bool)}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					a.analyzeFunc(n.Type, n.Body)
				}
			case *ast.FuncLit:
				a.analyzeFunc(n.Type, n.Body)
			}
			return true
		})
	}
	return nil, nil
}

type reportKey struct {
	pos  token.Pos
	kind cfg.EdgeKind
}

type analysis struct {
	pass     *framework.Pass
	reported map[reportKey]bool
	// results holds the named result variables of the current function:
	// assigning to one transfers ownership to the caller.
	results map[*types.Var]bool
}

// obligation records one outstanding acquired reference or epoch guard.
type obligation struct {
	pos    token.Pos // the acquiring call
	source string    // its callee name, for the message
	pin    bool      // a Pin guard (missing-unpin) rather than a counted reference
}

// state maps each live tracked variable to its obligation.
type state map[*types.Var]obligation

func (s state) clone() state {
	c := make(state, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func (a *analysis) analyzeFunc(typ *ast.FuncType, body *ast.BlockStmt) {
	a.results = make(map[*types.Var]bool)
	if typ.Results != nil {
		for _, field := range typ.Results.List {
			for _, name := range field.Names {
				if v, ok := a.pass.TypesInfo.Defs[name].(*types.Var); ok {
					a.results[v] = true
				}
			}
		}
	}
	ip := &cfg.Interp[state]{
		MaxStates: maxStates,
		Clone:     func(st state) state { return st.clone() },
		Equal:     statesEqual,
		Node:      a.applyNode,
		Edge: func(e *cfg.Edge, st state) bool {
			a.refineNil(e, st)
			return true
		},
		Exit: a.exitCheck,
	}
	ip.Run(a.pass.FuncCFG(body), make(state))
}

// exitCheck runs on every edge into the exit block — this analyzer's
// whole point is that panic edges are NOT exempt.
func (a *analysis) exitCheck(e *cfg.Edge, st state) {
	for v, ob := range st {
		key := reportKey{pos: ob.pos, kind: e.Kind}
		if a.reported[key] {
			continue
		}
		a.reported[key] = true
		if ob.pin {
			// A lost guard is worse than a lost cell: the pinned epoch
			// never retires, so reclamation stalls globally.
			switch e.Kind {
			case cfg.Panic:
				a.pass.Categorizef("missing-unpin", ob.pos,
					"guard in %s (from %s) is lost when this path panics: unpin it in a defer, or the pinned epoch wedges reclamation for the whole structure", v.Name(), ob.source)
			case cfg.Return:
				if e.Ret != nil {
					a.pass.Categorizef("missing-unpin", ob.pos,
						"guard in %s (from %s) is not unpinned on the exit path through the return at line %d: the pinned epoch wedges reclamation", v.Name(), ob.source, a.pass.Fset.Position(e.Ret.Pos()).Line)
					continue
				}
				a.pass.Categorizef("missing-unpin", ob.pos,
					"guard in %s (from %s) is not unpinned on every exit path: the pinned epoch wedges reclamation", v.Name(), ob.source)
			default:
				a.pass.Categorizef("missing-unpin", ob.pos,
					"guard in %s (from %s) is not unpinned when the function falls off its end: the pinned epoch wedges reclamation", v.Name(), ob.source)
			}
			continue
		}
		switch e.Kind {
		case cfg.Panic:
			a.pass.Categorizef("exit-leak", ob.pos,
				"reference in %s (from %s) is lost when this path panics: release it in a defer so the count survives unwinding", v.Name(), ob.source)
		case cfg.Return:
			if e.Ret != nil {
				a.pass.Categorizef("exit-leak", ob.pos,
					"reference in %s (from %s) is not released or transferred on the exit path through the return at line %d", v.Name(), ob.source, a.pass.Fset.Position(e.Ret.Pos()).Line)
				continue
			}
			a.pass.Categorizef("exit-leak", ob.pos,
				"reference in %s (from %s) is not released or transferred on every exit path", v.Name(), ob.source)
		default: // ImplicitReturn: fell off the end of the function
			a.pass.Categorizef("exit-leak", ob.pos,
				"reference in %s (from %s) is not released or transferred when the function falls off its end", v.Name(), ob.source)
		}
	}
}

// applyNode interprets one evaluated CFG node against one state.
func (a *analysis) applyNode(n ast.Node, st state) {
	switch n := n.(type) {
	case *ast.ExprStmt:
		a.evalExpr(n.X, st, false)

	case *ast.AssignStmt:
		a.interpAssign(n, st)

	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					a.interpValueSpec(vs, st)
				}
			}
		}

	case *ast.ReturnStmt:
		for _, res := range n.Results {
			a.evalExpr(res, st, true) // returning transfers ownership
		}

	case *ast.DeferStmt:
		// A deferred call runs on every later exit of this path, panic
		// included: releases and transfers inside it discharge now.
		a.evalExpr(n.Call, st, false)

	case *ast.GoStmt:
		a.evalExpr(n.Call, st, false)

	case *ast.SendStmt:
		a.evalExpr(n.Chan, st, false)
		a.evalExpr(n.Value, st, true) // sending transfers ownership

	case *ast.IncDecStmt:
		a.evalExpr(n.X, st, false)

	case *ast.RangeStmt:
		// Per-iteration binding; the operand was its own node already.

	case ast.Expr:
		a.evalExpr(n, st, false)
	}
}

// refineNil applies the branch condition carried on a True/False edge: a
// reference known to be nil on the taken side carries no obligation.
func (a *analysis) refineNil(e *cfg.Edge, st state) {
	if e.Cond == nil {
		return
	}
	be, ok := unparen(e.Cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return
	}
	var v *types.Var
	if a.isNil(be.Y) {
		v = a.varOf(be.X)
	} else if a.isNil(be.X) {
		v = a.varOf(be.Y)
	}
	if v == nil {
		return
	}
	nilSide := (be.Op == token.EQL) == (e.Kind == cfg.True)
	if nilSide {
		delete(st, v)
	}
}

func (a *analysis) interpAssign(s *ast.AssignStmt, st state) {
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Rhs {
			a.assignOne(s.Lhs[i], s.Rhs[i], st)
		}
		return
	}
	for _, rhs := range s.Rhs {
		a.evalExpr(rhs, st, false)
	}
	for _, lhs := range s.Lhs {
		if lv := a.localVar(lhs); lv != nil {
			delete(st, lv) // overwriting is saferead/refbalance's concern
			continue
		}
		a.evalExpr(lhs, st, false)
	}
}

func (a *analysis) interpValueSpec(vs *ast.ValueSpec, st state) {
	if len(vs.Names) == len(vs.Values) {
		for i := range vs.Values {
			a.assignOne(vs.Names[i], vs.Values[i], st)
		}
		return
	}
	for _, v := range vs.Values {
		a.evalExpr(v, st, false)
	}
}

func (a *analysis) assignOne(lhs, rhs ast.Expr, st state) {
	if call, ok := unparen(rhs).(*ast.CallExpr); ok && (a.isAcquireCall(call) || a.isPinCall(call)) {
		a.evalExpr(call, st, false)
		if lv := a.localVar(lhs); lv != nil {
			st[lv] = obligation{pos: call.Pos(), source: calleeName(call), pin: a.isPinCall(call)}
			return
		}
		// Stored straight into a field or element: ownership transferred.
		a.evalExpr(lhs, st, false)
		return
	}
	// Transferring a tracked reference between variables moves the
	// obligation; storing it anywhere else resolves it.
	if rv := a.trackedIdent(rhs, st); rv != nil {
		if lv := a.localVar(lhs); lv != nil {
			if lv == rv {
				return
			}
			ob := st[rv]
			delete(st, rv)
			delete(st, lv)
			st[lv] = ob
			return
		}
		delete(st, rv)
		a.evalExpr(lhs, st, false)
		return
	}
	a.evalExpr(rhs, st, a.localVar(lhs) == nil)
	if lv := a.localVar(lhs); lv != nil {
		delete(st, lv)
		return
	}
	a.evalExpr(lhs, st, false)
}

// evalExpr walks an expression, discharging tracked variables that occur
// in release- or transfer-positions. resolving reports whether e itself
// is in such a position.
func (a *analysis) evalExpr(e ast.Expr, st state, resolving bool) {
	switch e := e.(type) {
	case nil:
		return
	case *ast.Ident:
		if resolving {
			if v, ok := a.pass.TypesInfo.Uses[e].(*types.Var); ok {
				delete(st, v)
			}
		}
	case *ast.ParenExpr:
		a.evalExpr(e.X, st, resolving)
	case *ast.SelectorExpr:
		a.evalExpr(e.X, st, false) // q.Item: plain use, not a transfer
	case *ast.StarExpr:
		a.evalExpr(e.X, st, false)
	case *ast.UnaryExpr:
		a.evalExpr(e.X, st, e.Op == token.AND) // &q lets the reference escape
	case *ast.BinaryExpr:
		a.evalExpr(e.X, st, false)
		a.evalExpr(e.Y, st, false)
	case *ast.CallExpr:
		a.evalExpr(e.Fun, st, false)
		for _, arg := range e.Args {
			a.evalExpr(arg, st, true) // the callee may release or assume ownership
		}
	case *ast.IndexExpr:
		a.evalExpr(e.X, st, resolving)
		a.evalExpr(e.Index, st, false)
	case *ast.IndexListExpr:
		a.evalExpr(e.X, st, resolving)
	case *ast.SliceExpr:
		a.evalExpr(e.X, st, false)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			a.evalExpr(elt, st, true)
		}
	case *ast.KeyValueExpr:
		a.evalExpr(e.Value, st, true)
	case *ast.TypeAssertExpr:
		a.evalExpr(e.X, st, resolving)
	case *ast.FuncLit:
		// Captured tracked variables escape into the closure.
		ast.Inspect(e.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v, ok := a.pass.TypesInfo.Uses[id].(*types.Var); ok {
					delete(st, v)
				}
			}
			return true
		})
	}
}

func (a *analysis) isNil(e ast.Expr) bool {
	tv, ok := a.pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

func (a *analysis) varOf(e ast.Expr) *types.Var {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := a.pass.TypesInfo.Uses[id].(*types.Var)
	return v
}

// localVar returns the function-local, non-blank variable an lvalue
// denotes, or nil.
func (a *analysis) localVar(e ast.Expr) *types.Var {
	id, ok := unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	obj := a.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = a.pass.TypesInfo.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || a.results[v] {
		return nil
	}
	if v.Parent() == nil || v.Parent() == a.pass.Pkg.Scope() {
		return nil
	}
	return v
}

// trackedIdent returns the tracked variable e denotes in st, or nil.
func (a *analysis) trackedIdent(e ast.Expr, st state) *types.Var {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := a.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	if _, held := st[v]; !held {
		return nil
	}
	return v
}

// isAcquireCall recognizes the acquisition intrinsics: calls named
// SafeRead, safeRead, Alloc, or alloc returning a single pointer.
func (a *analysis) isAcquireCall(call *ast.CallExpr) bool {
	switch calleeName(call) {
	case "SafeRead", "safeRead", "Alloc", "alloc":
	default:
		return false
	}
	tv, ok := a.pass.TypesInfo.Types[call]
	if !ok {
		return false
	}
	_, isPtr := tv.Type.Underlying().(*types.Pointer)
	return isPtr
}

// isPinCall recognizes the epoch-guard acquisition shape: a call named
// Pin or pin returning a single value (the guard). Any single return
// type qualifies — guards are deliberately opaque (mm.Guard is a struct,
// other implementations hand out ints or pointers) — but a multi-value
// pin helper is left alone: its extra results make the idiomatic
// `g, ok := pin()` shape too varied to interpret soundly.
func (a *analysis) isPinCall(call *ast.CallExpr) bool {
	switch calleeName(call) {
	case "Pin", "pin":
	default:
		return false
	}
	tv, ok := a.pass.TypesInfo.Types[call]
	if !ok {
		return false
	}
	_, isTuple := tv.Type.(*types.Tuple)
	return !isTuple
}

// calleeName returns the simple name of the called function or method.
func calleeName(call *ast.CallExpr) string {
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return ""
}

func statesEqual(a, b state) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
