// Package a is the releasepath fixture: every exit path of a function —
// the happy return, the early error return, the fall-through end, and
// the panic — must release or transfer every reference acquired on it.
package a

import (
	"errors"
	"sync/atomic"
)

type node struct {
	next atomic.Pointer[node]
	ref  atomic.Int64
	item int
}

type mgr struct {
	head atomic.Pointer[node]
	free atomic.Pointer[node]
}

var errEmpty = errors.New("empty")

// SafeRead acquires a counted reference (Figure 15 shape).
func (m *mgr) SafeRead(p *atomic.Pointer[node]) *node {
	for {
		q := p.Load()
		if q == nil {
			return nil
		}
		q.ref.Add(1)
		if q == p.Load() {
			return q
		}
		m.Release(q)
	}
}

// Release drops a counted reference (Figure 16 shape).
func (m *mgr) Release(n *node) {
	if n != nil {
		n.ref.Add(-1)
	}
}

// Alloc pops a cell off the free list (the Figure 17 retry loop); its
// result carries one reference.
func (m *mgr) Alloc() *node {
	for {
		q := m.SafeRead(&m.free)
		if q == nil {
			return nil
		}
		if m.free.CompareAndSwap(q, q.next.Load()) {
			return q
		}
		m.Release(q)
	}
}

func check(v int) error {
	if v < 0 {
		return errEmpty
	}
	return nil
}

// earlyReturnLeak is the review-resistant bug this analyzer exists for:
// the happy path releases, but the error return added later walks out
// with the reference still counted.
func earlyReturnLeak(m *mgr) (int, error) {
	q := m.SafeRead(&m.head) // want `reference in q \(from SafeRead\) is not released or transferred on the exit path through the return at line 77`
	if q == nil {
		return 0, errEmpty
	}
	if err := check(q.item); err != nil {
		return 0, err
	}
	v := q.item
	m.Release(q)
	return v, nil
}

// panicLeak abandons the reference on the panic exit: unwinding runs no
// release, the count stays high forever, and the cell is unreclaimable.
func panicLeak(m *mgr) int {
	q := m.SafeRead(&m.head) // want `reference in q \(from SafeRead\) is lost when this path panics`
	if q == nil {
		return 0
	}
	if q.item < 0 {
		panic("corrupt item")
	}
	v := q.item
	m.Release(q)
	return v
}

// fallThroughLeak forgets the release entirely and falls off the end.
func fallThroughLeak(m *mgr) {
	q := m.SafeRead(&m.head) // want `reference in q \(from SafeRead\) is not released or transferred when the function falls off its end`
	if q == nil {
		return
	}
	q.item++
}

// allocPanicLeak: Alloc results carry the same obligation.
func allocPanicLeak(m *mgr, v int) {
	n := m.Alloc() // want `reference in n \(from Alloc\) is lost when this path panics`
	if n == nil {
		return
	}
	if v < 0 {
		panic("negative item")
	}
	n.item = v
	m.Release(n)
}

// deferredCoversPanic is the prescribed fix for panicLeak: the deferred
// release runs during unwinding, so every exit after the defer — panic
// included — is balanced.
func deferredCoversPanic(m *mgr) int {
	q := m.SafeRead(&m.head)
	if q == nil {
		return 0
	}
	defer m.Release(q)
	if q.item < 0 {
		panic("corrupt item")
	}
	return q.item
}

// deferredClosureCoversExits releases through a deferred closure.
func deferredClosureCoversExits(m *mgr) (int, error) {
	q := m.SafeRead(&m.head)
	if q == nil {
		return 0, errEmpty
	}
	defer func() { m.Release(q) }()
	if err := check(q.item); err != nil {
		return 0, err
	}
	return q.item, nil
}

// everyPathBalanced releases on each exit explicitly.
func everyPathBalanced(m *mgr) (int, error) {
	q := m.SafeRead(&m.head)
	if q == nil {
		return 0, errEmpty
	}
	if err := check(q.item); err != nil {
		m.Release(q)
		return 0, err
	}
	v := q.item
	m.Release(q)
	return v, nil
}

// transferOnReturn hands the reference to the caller: not a leak.
func transferOnReturn(m *mgr) *node {
	q := m.SafeRead(&m.head)
	return q
}

// transferToHelper passes the reference to a call that may assume
// ownership — read broadly, so helpers are never falsely flagged.
func transferToHelper(m *mgr, sink func(*node)) {
	q := m.SafeRead(&m.head)
	if q == nil {
		return
	}
	sink(q)
}

// nilGuardedPanic panics only where the reference is proven nil: no
// obligation rides the panic edge.
func nilGuardedPanic(m *mgr) int {
	q := m.SafeRead(&m.head)
	if q == nil {
		panic("empty structure")
	}
	v := q.item
	m.Release(q)
	return v
}

// guard marks an epoch-protected region (the mode=ebr shape): it carries
// no count, but losing it leaves its epoch pinned forever.
type guard struct{ slot *int }

// Pin opens an epoch-protected region and returns its guard.
func (m *mgr) Pin() guard { return guard{} }

// Unpin closes the region.
func (m *mgr) Unpin(g guard) { _ = g }

// missingUnpinEarlyReturn leaves the epoch pinned on the error return:
// the same review-resistant shape as earlyReturnLeak, with global rather
// than per-cell consequences.
func missingUnpinEarlyReturn(m *mgr, v int) error {
	g := m.Pin() // want `guard in g \(from Pin\) is not unpinned on the exit path through the return at line \d+`
	if err := check(v); err != nil {
		return err
	}
	m.Unpin(g)
	return nil
}

// missingUnpinPanic loses the guard during unwinding: no deferred unpin
// runs, so the epoch stays pinned after the recover upstream.
func missingUnpinPanic(m *mgr, v int) {
	g := m.Pin() // want `guard in g \(from Pin\) is lost when this path panics`
	if v < 0 {
		panic("negative item")
	}
	m.Unpin(g)
}

// deferredUnpin is the prescribed shape: one defer covers every later
// exit, panic included.
func deferredUnpin(m *mgr, v int) error {
	g := m.Pin()
	defer m.Unpin(g)
	if err := check(v); err != nil {
		return err
	}
	return nil
}

// unpinEveryPath balances each exit explicitly.
func unpinEveryPath(m *mgr, v int) error {
	g := m.Pin()
	if err := check(v); err != nil {
		m.Unpin(g)
		return err
	}
	m.Unpin(g)
	return nil
}
