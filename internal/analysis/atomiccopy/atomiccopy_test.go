package atomiccopy_test

import (
	"testing"

	"valois/internal/analysis/analysistest"
	"valois/internal/analysis/atomiccopy"
)

func TestAtomicCopy(t *testing.T) {
	analysistest.Run(t, "testdata", atomiccopy.Analyzer, "a")
}
