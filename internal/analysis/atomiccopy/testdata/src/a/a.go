// Package a is the atomiccopy fixture: values containing sync/atomic
// fields must move by pointer, never by copy.
package a

import "sync/atomic"

type node struct {
	next  atomic.Pointer[node]
	refct atomic.Int64
	item  int
}

// shards embeds nodes by value in an array: still no copying allowed.
type shards struct {
	slots [4]node
}

func assignCopy(n *node) *node {
	m := *n // want `assignment copies node`
	return &m
}

func identCopy(n node) int { // want `parameter type node contains sync/atomic values`
	m := n // want `assignment copies node`
	return m.item
}

func callCopy(n *node) {
	sink(*n) // want `call passes node`
}

func sink(n node) {} // want `parameter type node contains sync/atomic values`

func returnCopy(n *node) node { // want `result type node contains sync/atomic values`
	return *n // want `return copies node`
}

func rangeCopy(s *shards) int {
	total := 0
	for _, n := range s.slots { // want `range copies node`
		total += n.item
	}
	return total
}

func fine(n *node) *node {
	fresh := node{item: 1} // ok: composite literal constructs a fresh value
	_ = fresh.item         // ok: copies only the plain int field
	p := n                 // ok: copying the pointer
	for i := range p.next.Load().item {
		_ = i // ok: index-only range
	}
	return p
}
