// Package atomiccopy defines an analyzer that reports copies of values
// whose type contains sync/atomic values, extending go vet's copylocks.
//
// Copying an atomic.Int64 or atomic.Pointer[T] detaches the copy from the
// original word: subsequent atomic operations act on different memory and
// every invariant built on them (reference counts, claim bits, list links)
// silently breaks. vet's copylocks catches many of these because the
// sync/atomic types embed a noCopy sentinel, but it stops at types it can
// prove have a Lock method; this analyzer tracks containment transitively
// through named structs and arrays, and also flags by-value parameters,
// results, returns, and range copies.
//
// Like copylocks, construction is allowed: composite literals and function
// calls produce fresh values, so assigning them is not a copy of a shared
// value.
package atomiccopy

import (
	"go/ast"
	"go/types"

	"valois/internal/analysis/framework"
)

// Analyzer reports copies of atomic-containing values.
var Analyzer = &framework.Analyzer{
	Name: "atomiccopy",
	Doc:  "report copies of structs containing sync/atomic values",
	Run:  run,
}

type checker struct {
	pass *framework.Pass
	// contains memoizes containsAtomic per type.
	contains map[types.Type]bool
}

func run(pass *framework.Pass) (any, error) {
	c := &checker{pass: pass, contains: make(map[types.Type]bool)}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					// Assigning to the blank identifier evaluates but
					// does not copy.
					if len(n.Lhs) == len(n.Rhs) && isBlank(n.Lhs[i]) {
						continue
					}
					c.checkCopy(rhs, "assignment copies")
				}
			case *ast.CallExpr:
				for _, arg := range n.Args {
					c.checkCopy(arg, "call passes")
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					c.checkCopy(res, "return copies")
				}
			case *ast.RangeStmt:
				if t := c.exprType(n.Value); t != nil && c.containsAtomic(t) {
					c.pass.Categorizef("copy", n.Value.Pos(),
						"range copies %s, which contains sync/atomic values; iterate by index or pointer",
						types.TypeString(t, types.RelativeTo(c.pass.Pkg)))
				}
			case *ast.FuncType:
				c.checkFieldList(n.Params, "parameter")
				c.checkFieldList(n.Results, "result")
			}
			return true
		})
	}
	return nil, nil
}

// checkCopy reports e if evaluating it copies an existing atomic-containing
// value: an identifier, field selection, dereference, or index — but not a
// composite literal or call, which construct fresh values.
func (c *checker) checkCopy(e ast.Expr, verb string) {
	switch unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return
	}
	tv, ok := c.pass.TypesInfo.Types[e]
	if !ok || !tv.IsValue() || !c.containsAtomic(tv.Type) {
		return
	}
	c.pass.Categorizef("copy", e.Pos(), "%s %s, which contains sync/atomic values; use a pointer",
		verb, types.TypeString(tv.Type, types.RelativeTo(c.pass.Pkg)))
}

// checkFieldList flags by-value parameters and results of atomic-containing
// type in function signatures.
func (c *checker) checkFieldList(fl *ast.FieldList, what string) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		tv, ok := c.pass.TypesInfo.Types[field.Type]
		if !ok || !c.containsAtomic(tv.Type) {
			continue
		}
		c.pass.Categorizef("copy", field.Type.Pos(), "%s type %s contains sync/atomic values; use a pointer",
			what, types.TypeString(tv.Type, types.RelativeTo(c.pass.Pkg)))
	}
}

// containsAtomic reports whether t transitively contains a sync/atomic
// type by value (through struct fields and array elements; pointers,
// slices, maps, and channels break containment).
func (c *checker) containsAtomic(t types.Type) bool {
	if v, ok := c.contains[t]; ok {
		return v
	}
	c.contains[t] = false // cut recursion on cyclic types
	v := c.computeContains(t)
	c.contains[t] = v
	return v
}

func (c *checker) computeContains(t types.Type) bool {
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "sync/atomic" {
			if _, isStruct := named.Underlying().(*types.Struct); isStruct {
				return true
			}
		}
		return c.containsAtomic(named.Underlying())
	}
	switch t := t.(type) {
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if c.containsAtomic(t.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return c.containsAtomic(t.Elem())
	}
	return false
}

// exprType resolves the type of e, looking through range-clause variable
// definitions (which go/types records in Defs rather than Types).
func (c *checker) exprType(e ast.Expr) types.Type {
	if e == nil {
		return nil
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
			return obj.Type()
		}
		if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	if tv, ok := c.pass.TypesInfo.Types[e]; ok && tv.IsValue() {
		return tv.Type
	}
	return nil
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
