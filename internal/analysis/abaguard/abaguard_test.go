package abaguard_test

import (
	"testing"

	"valois/internal/analysis/abaguard"
	"valois/internal/analysis/analysistest"
)

func TestABAGuard(t *testing.T) {
	analysistest.Run(t, "testdata", abaguard.Analyzer, "a")
}
