// Package a is the abaguard fixture: a CAS whose expected pointer was read
// with a plain Load and dereferenced before (or inside) the CAS is the
// recycled-pointer ABA hazard of §5.1; the same shapes built on SafeRead,
// and pure pointer hand-offs that never dereference, are clean.
package a

import "sync/atomic"

type node struct {
	next atomic.Pointer[node]
	ref  atomic.Int64
	item int
}

type mgr struct {
	head  atomic.Pointer[node]
	count atomic.Int64
}

// SafeRead acquires a counted reference (Figure 15 shape); Theorem 5 keeps
// the cell from being recycled while it is held.
func (m *mgr) SafeRead(p *atomic.Pointer[node]) *node {
	for {
		q := p.Load()
		if q == nil {
			return nil
		}
		q.ref.Add(1)
		if q == p.Load() {
			return q
		}
		m.Release(q)
	}
}

// Release drops a counted reference (Figure 16 shape).
func (m *mgr) Release(n *node) {
	if n != nil {
		n.ref.Add(-1)
	}
}

// naivePop is the textbook ABA bug: q's successor is read while nothing
// prevents q from being freed and recycled, and the CAS cannot tell.
func naivePop(m *mgr) *node {
	for {
		q := m.head.Load()
		if q == nil {
			return nil
		}
		if m.head.CompareAndSwap(q, q.next.Load()) { // want `CAS expected value q comes from a plain Load and is dereferenced`
			return q
		}
	}
}

// naiveReadThenSwap dereferences in a separate statement before the CAS —
// the window is the same.
func naiveReadThenSwap(m *mgr, n *node) int {
	q := m.head.Load()
	if q == nil {
		return 0
	}
	v := q.item
	if m.head.CompareAndSwap(q, n) { // want `CAS expected value q comes from a plain Load and is dereferenced`
		return v
	}
	return 0
}

// safePop closes the window with SafeRead: the counted reference keeps the
// cell alive, so its address cannot be recycled before the CAS.
func safePop(m *mgr) *node {
	for {
		q := m.SafeRead(&m.head)
		if q == nil {
			return nil
		}
		if m.head.CompareAndSwap(q, q.next.Load()) {
			return q
		}
		m.Release(q)
	}
}

// push only hands the loaded pointer onward — it is stored and compared,
// never dereferenced, so recycling between Load and CAS is harmless: the
// CAS judges exactly the bit pattern push read.
func push(m *mgr, n *node) {
	for {
		h := m.head.Load()
		n.next.Store(h)
		if m.head.CompareAndSwap(h, n) {
			return
		}
	}
}

// counterRetry CASes a plain integer: values carry no identity, so there is
// no ABA cell to recycle.
func counterRetry(m *mgr) {
	for {
		c := m.count.Load()
		if m.count.CompareAndSwap(c, c+1) {
			return
		}
	}
}

// localAtomic loads from an atomic nothing else can see; no other
// goroutine can free the cell in the window.
func localAtomic(n *node) *node {
	var slot atomic.Pointer[node]
	slot.Store(n)
	q := slot.Load()
	if q == nil {
		return nil
	}
	if slot.CompareAndSwap(q, q.next.Load()) {
		return q
	}
	return nil
}

// gcnode has no refcount field: the garbage collector owns its cells, a
// held pointer keeps them from being reused, and the recycled-pointer ABA
// cannot arise.
type gcnode struct {
	next atomic.Pointer[gcnode]
	item int
}

// gcPop is naivePop on collector-managed cells: out of abaguard's scope.
func gcPop(top *atomic.Pointer[gcnode]) *gcnode {
	for {
		q := top.Load()
		if q == nil {
			return nil
		}
		if top.CompareAndSwap(q, q.next.Load()) {
			return q
		}
	}
}

// derefAfterCAS keeps the Load→CAS window itself dereference-free, which
// is all abaguard judges; whether trusting the cell after the successful
// CAS is sound is the caller's protocol problem, not an ABA window.
func derefAfterCAS(m *mgr, n *node) int {
	q := m.head.Load()
	if q == nil {
		return 0
	}
	if m.head.CompareAndSwap(q, n) {
		return q.item
	}
	return 0
}
