// Package abaguard defines an analyzer for the recycled-pointer ABA hazard
// of §5.1 of the paper.
//
// A Compare&Swap succeeds whenever the location holds the expected bit
// pattern — it cannot tell "the same cell, untouched" from "a different
// cell that reuses the same address". When the expected value was read
// with a plain Load, nothing stops the cell from being freed, recycled,
// and relinked between the Load and the CAS: the CAS then succeeds while
// every conclusion drawn from the cell in that window (its next pointer,
// its item) is stale. That is the classic lost-update pop:
//
//	q := head.Load()
//	head.CompareAndSwap(q, q.next.Load()) // q.next may belong to q's next life
//
// The paper's protocol closes the window with reference counts: SafeRead
// (Figure 15) acquires a counted reference, and Theorem 5 guarantees a
// counted cell is not reclaimed, so its address cannot be reused while we
// hold it. abaguard therefore flags a CAS whose expected value is a
// pointer obtained from a plain Load of shared memory and dereferenced
// between that Load and the CAS — the dereference is what makes the
// recycling observable, so a pure pointer hand-off (the push idiom, where
// the loaded value is only stored and compared) stays clean.
//
// The check is scoped to reference-counted cell types (structs with a
// sync/atomic ref* field, like mm.Node's refct): only manually reclaimed
// cells can be recycled while a plain pointer to them is held. Structures
// that lean on the garbage collector instead (internal/queue, the
// universal construction) get ABA freedom for free — a held pointer keeps
// its cell from being reused — and are deliberately out of scope.
package abaguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"valois/internal/analysis/framework"
)

// Analyzer reports CAS expected values read outside a SafeRead window.
var Analyzer = &framework.Analyzer{
	Name: "abaguard",
	Doc:  "report CAS expected values read with a plain Load and dereferenced before the CAS (ABA hazard)",
	Run:  run,
}

// assignKind classifies the provenance of a pointer variable's value.
type assignKind uint8

const (
	assignOther     assignKind = iota // unknown provenance: give the benefit of the doubt
	assignPlainLoad                   // plain Load of a shared atomic — unprotected
	assignProtected                   // SafeRead/Alloc result — counted, Theorem 5 applies
)

type assignment struct {
	pos  token.Pos
	kind assignKind
}

// funcState accumulates the per-function evidence: assignments and
// dereferences of each local pointer variable, and the CAS calls to judge.
type funcState struct {
	assigns map[*types.Var][]assignment
	derefs  map[*types.Var][]token.Pos
	cas     []*ast.CallExpr
}

func run(pass *framework.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd.Body)
			}
		}
	}
	return nil, nil
}

// checkFunc gathers the evidence in one function body and judges its CAS
// calls. Function literals are walked as part of the enclosing body:
// variables are distinguished by object identity, so the merge is safe.
func checkFunc(pass *framework.Pass, body *ast.BlockStmt) {
	st := &funcState{
		assigns: make(map[*types.Var][]assignment),
		derefs:  make(map[*types.Var][]token.Pos),
	}
	var path []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			path = path[:len(path)-1]
			return true
		}
		path = append(path, n)
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Rhs {
					st.recordAssign(pass, n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Values {
					st.recordAssign(pass, n.Names[i], n.Values[i])
				}
			}
		case *ast.CallExpr:
			if isCASCall(pass, n) {
				st.cas = append(st.cas, n)
			}
		case *ast.Ident:
			// A dereference is a selector or star applied to the variable:
			// the moment cell contents are trusted.
			if v, ok := pass.TypesInfo.Uses[n].(*types.Var); ok && len(path) >= 2 {
				switch parent := path[len(path)-2].(type) {
				case *ast.SelectorExpr:
					if parent.X == ast.Expr(n) {
						st.derefs[v] = append(st.derefs[v], n.Pos())
					}
				case *ast.StarExpr:
					st.derefs[v] = append(st.derefs[v], n.Pos())
				}
			}
		}
		return true
	})

	for _, cas := range st.cas {
		st.judge(pass, cas)
	}
}

// recordAssign classifies one assignment's right-hand side.
func (st *funcState) recordAssign(pass *framework.Pass, lhs, rhs ast.Expr) {
	id, ok := unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || !isPointer(v.Type()) {
		return
	}
	kind := assignOther
	if call, ok := unparen(rhs).(*ast.CallExpr); ok {
		if fn := calleeFunc(pass, call); fn != nil {
			switch {
			case fn.Name() == "SafeRead" || fn.Name() == "safeRead" || fn.Name() == "Alloc":
				kind = assignProtected
			case fn.Name() == "Load" && isSharedLoad(pass, call):
				kind = assignPlainLoad
			}
		}
	}
	st.assigns[v] = append(st.assigns[v], assignment{pos: lhs.Pos(), kind: kind})
}

// judge reports cas when its expected value is a pointer variable whose
// latest assignment before the CAS is a plain shared Load, and the variable
// is dereferenced between that Load and the CAS.
func (st *funcState) judge(pass *framework.Pass, cas *ast.CallExpr) {
	expected := expectedArg(pass, cas)
	if expected == nil {
		return
	}
	id, ok := unparen(expected).(*ast.Ident)
	if !ok {
		return
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || !isPointer(v.Type()) || !hasRefCountField(v.Type()) {
		return
	}
	// The latest assignment to v strictly before the CAS decides the
	// provenance of the compared value.
	last := assignment{kind: assignOther}
	found := false
	for _, a := range st.assigns[v] {
		if a.pos < cas.Pos() && (!found || a.pos > last.pos) {
			last = a
			found = true
		}
	}
	if !found || last.kind != assignPlainLoad {
		return
	}
	// The window closes at the end of the CAS call: the canonical hazard
	// dereferences the loaded pointer inside the new-value argument itself
	// (head.CompareAndSwap(q, q.next.Load())).
	for _, d := range st.derefs[v] {
		if last.pos < d && d < cas.End() {
			dpos := pass.Fset.Position(d)
			pass.Categorizef("aba", cas.Pos(),
				"CAS expected value %s comes from a plain Load and is dereferenced (line %d) before the CAS: the cell may be freed and recycled in between, so the CAS can succeed on a stale reading; acquire %s with SafeRead",
				v.Name(), dpos.Line, v.Name())
			return
		}
	}
}

// isSharedLoad reports whether a Load call reads shared memory. The only
// loads exempted are those of an atomic value held in a function-local
// variable and addressed directly — nothing else can see those.
func isSharedLoad(pass *framework.Pass, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return true
	}
	recv, ok := unparen(sel.X).(*ast.Ident)
	if !ok {
		return true // field chains (m.head), derived expressions: shared
	}
	v, ok := pass.TypesInfo.Uses[recv].(*types.Var)
	if !ok {
		return true
	}
	if v.IsField() || isPointer(v.Type()) {
		return true // fields and pointees live in shared memory
	}
	// A non-pointer local outside package scope is this goroutine's own.
	return v.Parent() == nil || v.Parent() == pass.Pkg.Scope()
}

func isPointer(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}

// hasRefCountField reports whether the pointee is a reference-counted cell:
// a struct with a sync/atomic integer field whose name starts with "ref"
// (refct in internal/mm, following §5.1). The refcount is the marker for
// manual reclamation — only such cells can be freed and recycled while a
// plain pointer to them is held. Cells owned by the garbage collector are
// never reused while referenced, so the recycled-pointer ABA cannot arise
// for them and they are deliberately out of scope.
func hasRefCountField(t types.Type) bool {
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	st, ok := ptr.Elem().Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !strings.HasPrefix(strings.ToLower(f.Name()), "ref") {
			continue
		}
		named, ok := f.Type().(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			continue
		}
		if named.Obj().Pkg().Path() == "sync/atomic" {
			switch named.Obj().Name() {
			case "Int32", "Int64", "Uint32", "Uint64":
				return true
			}
		}
	}
	return false
}

// isCASCall recognizes Compare&Swap in the spellings used here: a
// CompareAndSwap or CASXxx method, a sync/atomic CompareAndSwapXxx
// function, and the generic primitive.CompareAndSwap wrapper.
func isCASCall(pass *framework.Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return fn.Name() == "CompareAndSwap" || strings.HasPrefix(fn.Name(), "CAS")
	}
	return strings.HasPrefix(fn.Name(), "CompareAndSwap")
}

// expectedArg returns the expected-value argument of a CAS call: the first
// argument of the method forms, the second of the function forms.
func expectedArg(pass *framework.Pass, call *ast.CallExpr) ast.Expr {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return nil
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		if len(call.Args) == 2 {
			return call.Args[0]
		}
		return nil
	}
	if len(call.Args) == 3 {
		return call.Args[1]
	}
	return nil
}

// calleeFunc resolves the *types.Func a call invokes, or nil for calls
// through function values, conversions, and builtins.
func calleeFunc(pass *framework.Pass, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		if id, ok := unparen(fun.X).(*ast.Ident); ok {
			fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
			return fn
		}
		if sel, ok := unparen(fun.X).(*ast.SelectorExpr); ok {
			fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			return fn
		}
	}
	return nil
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
