// Package boundedretry defines an analyzer for retry loops that neither
// back off nor bound themselves.
//
// The repo's contention rule (DESIGN.md, PR 4) is that every retry loop
// backs off: a loop that re-attempts a failable operation at full speed
// turns transient contention into a CPU-saturating spin, which on the
// serving path also starves the goroutines that would resolve the
// contention. The sanctioned tools are primitive.Backoff (truncated
// exponential), runtime.Gosched, a time.Sleep, or an explicit bound on
// the loop itself.
//
// The analyzer flags an unconditionally-infinite `for` (no condition)
// that looks like a retry loop — its body re-attempts a failable
// operation, evidenced by a Compare&Swap call or an exit-on-success
// error shape (`if err == nil { break }` or `if err != nil { continue }`)
// — when the body has neither pacing (Backoff.Wait, runtime.Gosched,
// time.Sleep) nor any operation that already blocks the goroutine
// (select, channel operations, sync locking, accepting or reading a
// connection): a loop paced by blocking I/O is not a spin.
//
// Out of scope by design: bounded loops (`for i := 0; i < n;` ...),
// pure worker loops with no exit at all (goroleak's domain),
// consume-until-error loops (`if err != nil { return }` — the exit is
// the failure, so nothing is retried), and structural walks that exit
// on a bool or pointer condition (list traversals retry nothing).
package boundedretry

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"valois/internal/analysis/framework"
)

// Analyzer reports unbounded retry loops with no backoff.
var Analyzer = &framework.Analyzer{
	Name:    "boundedretry",
	Doc:     "report retry loops with neither a backoff nor a bound",
	Version: "v1",
	Run:     run,
}

// loopInfo accumulates what one infinite for statement contains.
type loopInfo struct {
	stmt     *ast.ForStmt
	cas      bool // a Compare&Swap call: the classic lock-free retry
	condExit bool // exit-on-success error shape: retry-until-nil-error
	pacing   bool // Backoff.Wait, runtime.Gosched, or time.Sleep
	blocking bool // select, channel op, lock, or connection I/O
}

func run(pass *framework.Pass) (any, error) {
	for _, f := range pass.Files {
		var loops []*loopInfo
		collect(pass, f, nil, &loops)
		for _, l := range loops {
			if !l.cas && !l.condExit {
				continue // not a retry loop
			}
			if l.pacing || l.blocking {
				continue
			}
			shape := "retry loop"
			if l.cas {
				shape = "CAS retry loop"
			}
			pass.Categorizef("unbounded", l.stmt.Pos(),
				"%s has neither a backoff nor a bound: spin at full speed saturates a core under contention (use primitive.Backoff, runtime.Gosched, or bound the loop)", shape)
		}
	}
	return nil, nil
}

// collect walks n, attributing retry evidence to cur, the innermost
// enclosing infinite for statement. Nested for statements open a new
// attribution scope; function literals close it.
func collect(pass *framework.Pass, n ast.Node, cur *loopInfo, loops *[]*loopInfo) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.FuncLit:
		collect(pass, n.Body, nil, loops)
		return
	case *ast.ForStmt:
		if n.Cond == nil {
			inner := &loopInfo{stmt: n}
			*loops = append(*loops, inner)
			collect(pass, n.Body, inner, loops)
		} else {
			// A bounded loop: its own contents are fine, and it also
			// does not pace an enclosing loop.
			collect(pass, n.Body, nil, loops)
		}
		return
	case *ast.RangeStmt:
		if cur != nil {
			// Ranging (over a channel or a collection) inside the loop
			// paces it; the range's own contents open a fresh scope.
			cur.blocking = true
		}
		collect(pass, n.Body, nil, loops)
		return
	case *ast.IfStmt:
		if cur != nil && isRetryExit(pass, n) {
			cur.condExit = true
		}
	case *ast.SelectStmt:
		if cur != nil {
			cur.blocking = true
		}
	case *ast.SendStmt:
		if cur != nil {
			cur.blocking = true
		}
	case *ast.UnaryExpr:
		if cur != nil && n.Op == token.ARROW {
			cur.blocking = true
		}
	case *ast.CallExpr:
		if cur != nil {
			classifyCall(pass, n, cur)
		}
	}
	ast.Inspect(n, func(child ast.Node) bool {
		if child == n {
			return true
		}
		collect(pass, child, cur, loops)
		return false
	})
}

// isRetryExit reports whether the if statement is the exit-on-success
// half of a retry loop: a condition testing an error against nil, either
// leaving the loop when the error is nil (`if err == nil { break }`) or
// re-entering it when it is not (`if err != nil { continue }`). The
// symmetric consume shape — exit when err != nil — retries nothing and
// does not count.
func isRetryExit(pass *framework.Pass, ifs *ast.IfStmt) bool {
	if condComparesError(pass, ifs.Cond, token.EQL) && hasStmt(ifs, isExit) {
		return true
	}
	return condComparesError(pass, ifs.Cond, token.NEQ) && hasStmt(ifs, isContinue)
}

// condComparesError reports whether cond contains a comparison of an
// error-typed operand against nil with the given operator.
func condComparesError(pass *framework.Pass, cond ast.Expr, op token.Token) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || b.Op != op {
			return !found
		}
		for _, pair := range [2][2]ast.Expr{{b.X, b.Y}, {b.Y, b.X}} {
			if isNilIdent(pair[1]) && isErrorType(pass.TypesInfo.TypeOf(pair[0])) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isNilIdent(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

func isExit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return n.Tok == token.BREAK
	}
	return false
}

func isContinue(n ast.Node) bool {
	b, ok := n.(*ast.BranchStmt)
	return ok && b.Tok == token.CONTINUE
}

// hasStmt reports whether the if statement (or its else chain) contains a
// node matching pred, function literals excluded.
func hasStmt(ifs *ast.IfStmt, pred func(ast.Node) bool) bool {
	found := false
	ast.Inspect(ifs, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if pred(n) {
			found = true
		}
		return !found
	})
	return found
}

// classifyCall marks cur according to what the call does: Compare&Swap
// (retry evidence), pacing, or blocking.
func classifyCall(pass *framework.Pass, call *ast.CallExpr, cur *loopInfo) {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	if sig.Recv() != nil {
		switch {
		case fn.Name() == "CompareAndSwap":
			cur.cas = true
		case fn.Name() == "Wait" && recvNamed(sig) == "Backoff":
			cur.pacing = true
		case fn.Pkg() != nil && fn.Pkg().Path() == "sync":
			switch fn.Name() {
			case "Lock", "RLock", "Wait", "Do":
				cur.blocking = true
			}
		case fn.Name() == "Accept":
			cur.blocking = true
		case blockingIO[fn.Name()] && (deadlineCapable(recvType(sig)) || isBufio(recvType(sig))):
			// Reads through a connection or a bufio wrapper pace the
			// loop with real I/O.
			cur.blocking = true
		}
		return
	}
	if strings.HasPrefix(fn.Name(), "CompareAndSwap") {
		cur.cas = true
		return
	}
	if fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "runtime":
		if fn.Name() == "Gosched" {
			cur.pacing = true
		}
	case "time":
		if fn.Name() == "Sleep" {
			cur.pacing = true
		}
	case "net":
		if strings.HasPrefix(fn.Name(), "Dial") || strings.HasPrefix(fn.Name(), "Listen") {
			cur.blocking = true
		}
	}
}

// blockingIO is the Read/Write family that parks the goroutine when the
// receiver is a connection.
var blockingIO = map[string]bool{
	"Read": true, "Write": true, "ReadFrom": true, "WriteTo": true,
	"ReadString": true, "ReadBytes": true, "ReadByte": true, "ReadRune": true,
	"ReadSlice": true, "ReadLine": true, "Peek": true, "Flush": true,
}

// isBufio reports whether t (or its pointee) is a bufio type; its blocking
// methods forward to whatever reader or writer it wraps.
func isBufio(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "bufio"
}

// deadlineCapable reports whether t (or its pointee) has a SetDeadline
// method — the shape of net.Conn and everything wrapping one.
func deadlineCapable(t types.Type) bool {
	if t == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, "SetDeadline")
	_, ok := obj.(*types.Func)
	return ok
}

func recvType(sig *types.Signature) types.Type {
	if sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

func recvNamed(sig *types.Signature) string {
	t := recvType(sig)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name()
	case *types.Alias:
		return t.Obj().Name()
	}
	return ""
}

// calleeFunc resolves the *types.Func a call invokes, or nil for calls
// through function values, conversions, and builtins.
func calleeFunc(pass *framework.Pass, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		if id, ok := unparen(fun.X).(*ast.Ident); ok {
			fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
			return fn
		}
		if sel, ok := unparen(fun.X).(*ast.SelectorExpr); ok {
			fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			return fn
		}
	}
	return nil
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
