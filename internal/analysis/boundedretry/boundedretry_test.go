package boundedretry_test

import (
	"testing"

	"valois/internal/analysis/analysistest"
	"valois/internal/analysis/boundedretry"
)

func TestBoundedRetry(t *testing.T) {
	analysistest.Run(t, "testdata", boundedretry.Analyzer, "a")
}
