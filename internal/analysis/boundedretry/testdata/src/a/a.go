// Package a exercises the boundedretry analyzer: infinite retry loops
// with neither backoff nor bound are flagged.
package a

import (
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Backoff mimics primitive.Backoff by name and shape: a Wait method on a
// type named Backoff is the sanctioned pacer.
type Backoff struct{ n int }

func (b *Backoff) Wait() { b.n++ }

func try() error         { return nil }
func dial() (int, error) { return 0, nil }
func found() bool        { return true }
func process(int)        {}

func hotRetry() {
	for { // want `retry loop has neither a backoff nor a bound`
		if try() == nil {
			break
		}
	}
}

func hotErrRetry() (int, error) {
	for { // want `retry loop has neither a backoff nor a bound`
		v, err := dial()
		if err == nil {
			return v, nil
		}
	}
}

func hotContinueRetry() int {
	for { // want `retry loop has neither a backoff nor a bound`
		v, err := dial()
		if err != nil {
			continue
		}
		return v
	}
}

func hotCAS(p *atomic.Int64) {
	for { // want `CAS retry loop has neither a backoff nor a bound`
		old := p.Load()
		if p.CompareAndSwap(old, old+1) {
			break
		}
	}
}

func hotCASFunc(p *int64) {
	for { // want `CAS retry loop has neither a backoff nor a bound`
		old := atomic.LoadInt64(p)
		if atomic.CompareAndSwapInt64(p, old, old+1) {
			break
		}
	}
}

func pacedByBackoff(p *atomic.Int64) {
	var b Backoff
	for {
		old := p.Load()
		if p.CompareAndSwap(old, old+1) {
			break
		}
		b.Wait()
	}
}

func pacedByGosched() {
	for {
		if try() == nil {
			break
		}
		runtime.Gosched()
	}
}

func pacedBySleep() {
	for {
		if try() == nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
}

func bounded() {
	for i := 0; i < 20; i++ {
		if try() == nil {
			break
		}
	}
}

// consumeLoop exits when the operation fails: nothing is retried, the
// loop is paced by each successful read.
func consumeLoop() error {
	for {
		v, err := dial()
		if err != nil {
			return err
		}
		process(v)
	}
}

// traversal exits on a structural condition, not an error: walks retry
// nothing.
func traversal() {
	for {
		if found() {
			break
		}
		process(0)
	}
}

// acceptLoop is paced by Accept blocking for the next connection.
func acceptLoop(ln net.Listener) {
	for {
		c, err := ln.Accept()
		if err == nil {
			_ = c
			continue
		}
		return
	}
}

// readLoop is paced by the connection read.
func readLoop(conn net.Conn, buf []byte) {
	for {
		n, err := conn.Read(buf)
		if err != nil {
			continue
		}
		process(n)
	}
}

// eventLoop is paced by the channel receive.
func eventLoop(ch chan int, done chan struct{}) {
	for {
		select {
		case <-done:
			return
		case v := <-ch:
			process(v)
		}
	}
}

// lockLoop is paced by lock acquisition.
func lockLoop(mu *sync.Mutex) {
	for {
		mu.Lock()
		err := try()
		mu.Unlock()
		if err == nil {
			return
		}
	}
}

// workerLoop has no exit at all: not a retry loop (goroleak's domain).
func workerLoop() {
	for {
		process(1)
	}
}
