package saferead_test

import (
	"testing"

	"valois/internal/analysis/analysistest"
	"valois/internal/analysis/saferead"
)

func TestSafeRead(t *testing.T) {
	analysistest.Run(t, "testdata", saferead.Analyzer, "a")
}
