// Package a is the saferead fixture: every SafeRead must reach a Release
// (or an ownership transfer) on all control-flow paths.
package a

import "sync/atomic"

type node struct {
	next atomic.Pointer[node]
	ref  atomic.Int64
	item int
}

type mgr struct {
	head  atomic.Pointer[node]
	cache *node
}

// SafeRead acquires a counted reference (Figure 15 shape).
func (m *mgr) SafeRead(p *atomic.Pointer[node]) *node {
	for {
		q := p.Load()
		if q == nil {
			return nil
		}
		q.ref.Add(1)
		if q == p.Load() {
			return q
		}
		m.Release(q)
	}
}

// Release drops a counted reference (Figure 16 shape).
func (m *mgr) Release(n *node) {
	if n != nil {
		n.ref.Add(-1)
	}
}

// leakStraightLine never releases the reference at all.
func leakStraightLine(m *mgr) int {
	q := m.SafeRead(&m.head) // want `SafeRead result in q is not Released on every path`
	return q.item
}

// leakOnEarlyReturn releases on the main path but not before the guard
// clause returns.
func leakOnEarlyReturn(m *mgr, limit int) int {
	q := m.SafeRead(&m.head) // want `SafeRead result in q is not Released on every path`
	if limit == 0 {
		return -1 // leaks q
	}
	v := q.item
	m.Release(q)
	return v
}

// leakDiscarded drops the result on the floor.
func leakDiscarded(m *mgr) {
	m.SafeRead(&m.head) // want `result of SafeRead is discarded`
}

// leakOverwrite re-reads into the same variable while the first reference
// is still live.
func leakOverwrite(m *mgr) {
	q := m.SafeRead(&m.head) // want `SafeRead result in q is overwritten before being Released`
	q = m.SafeRead(&m.head)
	m.Release(q)
}

// balanced is the canonical shape: nil-guard, use, Release.
func balanced(m *mgr) int {
	q := m.SafeRead(&m.head)
	if q == nil {
		return 0
	}
	v := q.item
	m.Release(q)
	return v
}

// transferred hands the obligation to another variable and releases that.
func transferred(m *mgr) {
	q := m.SafeRead(&m.head)
	p := q
	m.Release(p)
}

// returned transfers ownership to the caller.
func returned(m *mgr) *node {
	q := m.SafeRead(&m.head)
	return q
}

// storedInField transfers ownership to the structure.
func storedInField(m *mgr) {
	m.cache = m.SafeRead(&m.head)
}

// deferred releases via defer.
func deferred(m *mgr) int {
	q := m.SafeRead(&m.head)
	defer m.Release(q)
	if q == nil {
		return 0
	}
	return q.item
}

// retryLoop re-reads each iteration and releases before retrying, the
// Alloc shape of Figure 17.
func retryLoop(m *mgr) *node {
	for {
		q := m.SafeRead(&m.head)
		if q == nil {
			return nil
		}
		if m.head.CompareAndSwap(q, q.next.Load()) {
			return q
		}
		m.Release(q)
	}
}

// loopCarried walks a chain, releasing the previous reference after
// acquiring the next, the Figure 10 back-link walk shape.
func loopCarried(m *mgr) {
	p := m.SafeRead(&m.head)
	for p != nil {
		q := m.SafeRead(&p.next)
		m.Release(p)
		p = q
	}
}

// capturedByClosure escapes into the closure, which releases it.
func capturedByClosure(m *mgr) func() {
	q := m.SafeRead(&m.head)
	return func() { m.Release(q) }
}

// guard marks an epoch-protected region (the mode=ebr shape).
type guard struct{ slot *int }

// Pin opens an epoch-protected region and returns its guard.
func (m *mgr) Pin() guard { return guard{} }

// Unpin closes the region.
func (m *mgr) Unpin(g guard) { _ = g }

// discardedGuard drops the guard on the floor: with no handle, the pin
// can never be released and reclamation wedges at this epoch.
func discardedGuard(m *mgr) {
	m.Pin() // want `guard returned by Pin is discarded`
}

// blankGuard discards through the blank identifier — same wedge.
func blankGuard(m *mgr) {
	_ = m.Pin() // want `guard returned by Pin is discarded`
}

// pinnedRegion is the clean shape: guard bound, deferred unpin, counted
// traversal balanced inside the pinned window.
func pinnedRegion(m *mgr) int {
	g := m.Pin()
	defer m.Unpin(g)
	q := m.SafeRead(&m.head)
	if q == nil {
		return 0
	}
	v := q.item
	m.Release(q)
	return v
}
