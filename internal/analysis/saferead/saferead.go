// Package saferead defines an analyzer that checks SafeRead/Release
// balance along control-flow paths.
//
// Under the paper's reference-counting scheme (§5, Figures 15 and 16)
// every SafeRead acquires a counted reference that must eventually be
// handed back with Release — a reference that is forgotten on even one
// path can never be reclaimed, and the cell (plus everything reachable
// through its counted links) leaks. This is the protocol-violation class
// Michael & Scott's correction note and later surveys identify as the
// dominant source of bugs in reference-counted lock-free structures.
//
// The analyzer tracks local variables assigned from a call to a function
// or method named SafeRead (or the unexported safeRead wrapper idiom) and
// interprets the function's control-flow graph (framework/cfg) path by
// path. A tracked reference is considered resolved when it
//
//   - is passed as an argument to any call (Release, ReleaseNodes, or any
//     other function that could assume ownership),
//   - is returned (ownership transfers to the caller),
//   - is stored into a struct field, slice, map, global, or dereference
//     (ownership transfers to the structure),
//   - is captured by a function literal or sent on a channel,
//   - is transferred to another local variable (which inherits the
//     obligation), or
//   - is known to be nil on the current path (the CFG's branch edges
//     carry their conditions, so `if q == nil` refines the nil side).
//
// A diagnostic is reported when a path reaches a return (or the end of the
// function) with an unresolved reference, when a SafeRead result is
// discarded outright, and when a live reference is overwritten.
//
// The analyzer also polices the epoch-guard acquisition shape that
// arrives with mode=ebr: a call named Pin or pin returns a guard that
// must eventually reach Unpin. A discarded guard — `m.Pin()` as a bare
// statement, or `_ = m.Pin()` — can never be unpinned, so the pinned
// epoch wedges reclamation for the whole structure; those findings carry
// the missing-unpin category. Guards that are bound to a variable are
// tracked across exit paths by the releasepath analyzer.
//
// Loops are explored under the interpreter's per-block visit budget, and
// short-circuit condition evaluation is approximated by evaluating the
// whole condition on every path, so the analysis errs toward leniency: it
// will miss some leaks but does not flag correct code. Paths that end in
// panic are exempt from the leak check here — the releasepath analyzer
// owns exit-path accounting, including panics.
package saferead

import (
	"go/ast"
	"go/token"
	"go/types"

	"valois/internal/analysis/framework"
	"valois/internal/analysis/framework/cfg"
)

// Analyzer reports SafeRead references that may escape Release.
var Analyzer = &framework.Analyzer{
	Name:    "saferead",
	Doc:     "report SafeRead results that are not Released on every path",
	Version: "v2", // v2: rebuilt on the framework/cfg path interpreter
	Run:     run,
}

// maxStates bounds the number of distinct path states carried through a
// function; beyond it, excess states are dropped (under-approximation:
// fewer reports, never spurious ones).
const maxStates = 64

func run(pass *framework.Pass) (any, error) {
	a := &analysis{pass: pass, reported: make(map[token.Pos]bool)}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					a.analyzeFunc(n.Type, n.Body)
				}
			case *ast.FuncLit:
				// Each function literal is its own accounting scope; the
				// outer scope treats captures as ownership transfers.
				a.analyzeFunc(n.Type, n.Body)
			}
			return true
		})
	}
	return nil, nil
}

type analysis struct {
	pass     *framework.Pass
	reported map[token.Pos]bool
	// results holds the named result variables of the function currently
	// being analyzed: assigning to one transfers ownership to the caller
	// (the naked-return idiom), so they are never tracked.
	results map[*types.Var]bool
}

// state maps each live tracked variable to the position of the SafeRead
// that created its obligation.
type state map[*types.Var]token.Pos

func (s state) clone() state {
	c := make(state, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func (a *analysis) analyzeFunc(typ *ast.FuncType, body *ast.BlockStmt) {
	a.results = make(map[*types.Var]bool)
	if typ.Results != nil {
		for _, field := range typ.Results.List {
			for _, name := range field.Names {
				if v, ok := a.pass.TypesInfo.Defs[name].(*types.Var); ok {
					a.results[v] = true
				}
			}
		}
	}
	ip := &cfg.Interp[state]{
		MaxStates: maxStates,
		Clone:     func(st state) state { return st.clone() },
		Equal:     statesEqual,
		Node:      a.applyNode,
		Edge: func(e *cfg.Edge, st state) bool {
			a.refineNil(e, st)
			return true
		},
		Exit: func(e *cfg.Edge, st state) {
			// Panic paths are exempt here: this analyzer polices the
			// Release obligation of paths that complete; releasepath owns
			// the panic exits.
			if e.Kind != cfg.Panic {
				a.leakCheck(st)
			}
		},
	}
	ip.Run(a.pass.FuncCFG(body), make(state))
}

// report emits one diagnostic per SafeRead site; every saferead finding is
// a lost reference, so they all carry the leak category.
func (a *analysis) report(pos token.Pos, format string, args ...any) {
	if a.reported[pos] {
		return
	}
	a.reported[pos] = true
	a.pass.Categorizef("leak", pos, format, args...)
}

// reportGuard emits a discarded-guard diagnostic; losing a guard wedges
// the epoch, a different failure class than a lost counted reference.
func (a *analysis) reportGuard(pos token.Pos, format string, args ...any) {
	if a.reported[pos] {
		return
	}
	a.reported[pos] = true
	a.pass.Categorizef("missing-unpin", pos, format, args...)
}

func (a *analysis) leakCheck(st state) {
	for v, pos := range st {
		a.report(pos, "SafeRead result in %s is not Released on every path through this function", v.Name())
	}
}

// applyNode interprets one evaluated CFG node against one state. The
// builder delivers statements plus the expressions of control decisions
// (conditions, switch tags, case lists); jumps and structured statements
// never appear — they became edges.
func (a *analysis) applyNode(n ast.Node, st state) {
	switch n := n.(type) {
	case *ast.ExprStmt:
		if call, ok := unparen(n.X).(*ast.CallExpr); ok {
			if a.isSafeReadCall(call) {
				a.report(call.Pos(), "result of %s is discarded, leaking the acquired reference", calleeName(a.pass, call))
			}
			if a.isPinCall(call) {
				a.reportGuard(call.Pos(), "guard returned by %s is discarded: it can never be unpinned, so the pinned epoch wedges reclamation", calleeName(a.pass, call))
			}
		}
		a.evalExpr(n.X, st, false)

	case *ast.AssignStmt:
		a.interpAssign(n, st)

	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					a.interpValueSpec(vs, st)
				}
			}
		}

	case *ast.ReturnStmt:
		for _, res := range n.Results {
			a.evalExpr(res, st, true) // returning transfers ownership
		}

	case *ast.DeferStmt:
		a.evalExpr(n.Call, st, false)

	case *ast.GoStmt:
		a.evalExpr(n.Call, st, false)

	case *ast.SendStmt:
		a.evalExpr(n.Chan, st, false)
		a.evalExpr(n.Value, st, true) // sending transfers ownership

	case *ast.IncDecStmt:
		a.evalExpr(n.X, st, false)

	case *ast.RangeStmt:
		// The per-iteration key/value binding; the range operand was
		// already evaluated as its own node before the loop head.

	case ast.Expr:
		a.evalExpr(n, st, false)
	}
}

// refineNil applies the branch condition carried on a True/False edge: a
// reference known to be nil on the taken side carries no obligation.
func (a *analysis) refineNil(e *cfg.Edge, st state) {
	if e.Cond == nil {
		return
	}
	be, ok := unparen(e.Cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return
	}
	var v *types.Var
	if a.isNil(be.Y) {
		v = a.varOf(be.X)
	} else if a.isNil(be.X) {
		v = a.varOf(be.Y)
	}
	if v == nil {
		return
	}
	nilSide := (be.Op == token.EQL) == (e.Kind == cfg.True)
	if nilSide {
		delete(st, v)
	}
}

// interpAssign applies one assignment statement to one state.
func (a *analysis) interpAssign(s *ast.AssignStmt, st state) {
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Rhs {
			a.assignOne(s.Lhs[i], s.Rhs[i], st)
		}
		return
	}
	// Tuple assignment: evaluate the source, then treat every destination
	// as plainly overwritten.
	for _, rhs := range s.Rhs {
		a.evalExpr(rhs, st, false)
	}
	for _, lhs := range s.Lhs {
		a.overwriteCheck(lhs, st, token.NoPos)
		a.evalExpr(lhs, st, false)
	}
}

// interpValueSpec handles `var q = m.SafeRead(...)` declarations.
func (a *analysis) interpValueSpec(vs *ast.ValueSpec, st state) {
	if len(vs.Names) == len(vs.Values) {
		for i := range vs.Values {
			a.assignOne(vs.Names[i], vs.Values[i], st)
		}
		return
	}
	for _, v := range vs.Values {
		a.evalExpr(v, st, false)
	}
}

func (a *analysis) assignOne(lhs, rhs ast.Expr, st state) {
	// Assigning a guard to the blank identifier discards it as surely as
	// a bare statement does.
	if call, ok := unparen(rhs).(*ast.CallExpr); ok && a.isPinCall(call) {
		if id, ok := unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
			a.reportGuard(call.Pos(), "guard returned by %s is discarded: it can never be unpinned, so the pinned epoch wedges reclamation", calleeName(a.pass, call))
		}
	}
	// A SafeRead call assigned to a local variable starts an obligation.
	if call, ok := unparen(rhs).(*ast.CallExpr); ok && a.isSafeReadCall(call) {
		a.evalExpr(call, st, false)
		if lv := a.localVar(lhs); lv != nil {
			a.overwriteCheck(lhs, st, call.Pos())
			st[lv] = call.Pos()
			return
		}
		// Stored straight into a field or element: ownership transferred.
		a.evalExpr(lhs, st, false)
		return
	}
	// Transferring a tracked reference between variables moves the
	// obligation; storing it anywhere else resolves it.
	if rv := a.trackedIdent(rhs, st); rv != nil {
		if lv := a.localVar(lhs); lv != nil {
			if lv == rv {
				return
			}
			pos := st[rv]
			delete(st, rv)
			a.overwriteCheck(lhs, st, token.NoPos)
			st[lv] = pos
			return
		}
		delete(st, rv)
		a.evalExpr(lhs, st, false)
		return
	}
	// Plain assignment: storing into a non-local destination lets any
	// tracked variables inside rhs escape.
	a.evalExpr(rhs, st, a.localVar(lhs) == nil)
	a.overwriteCheck(lhs, st, token.NoPos)
	a.evalExpr(lhs, st, false)
}

// overwriteCheck reports and clears an obligation when its variable is
// about to be overwritten while still live. newPos is the acquiring call
// of the incoming value, when there is one: re-executing the same
// acquisition on a later loop iteration replaces the obligation silently
// (the per-iteration balance of the previous trip is judged at the loop's
// exit edges, not here).
func (a *analysis) overwriteCheck(lhs ast.Expr, st state, newPos token.Pos) {
	lv := a.localVar(lhs)
	if lv == nil {
		return
	}
	if pos, held := st[lv]; held {
		if pos != newPos {
			a.report(pos, "SafeRead result in %s is overwritten before being Released", lv.Name())
		}
		delete(st, lv)
	}
}

// evalExpr walks an expression, resolving tracked variables that occur in
// ownership-transferring positions. resolving reports whether e itself is
// in such a position (call argument, return value, composite element, ...).
func (a *analysis) evalExpr(e ast.Expr, st state, resolving bool) {
	switch e := e.(type) {
	case nil:
		return
	case *ast.Ident:
		if resolving {
			if v, ok := a.pass.TypesInfo.Uses[e].(*types.Var); ok {
				delete(st, v)
			}
		}
	case *ast.ParenExpr:
		a.evalExpr(e.X, st, resolving)
	case *ast.SelectorExpr:
		a.evalExpr(e.X, st, false) // q.Item, q.Next(): plain use, not a transfer
	case *ast.StarExpr:
		a.evalExpr(e.X, st, false)
	case *ast.UnaryExpr:
		a.evalExpr(e.X, st, e.Op == token.AND) // &q lets the reference escape
	case *ast.BinaryExpr:
		a.evalExpr(e.X, st, false)
		a.evalExpr(e.Y, st, false)
	case *ast.CallExpr:
		a.evalExpr(e.Fun, st, false)
		for _, arg := range e.Args {
			a.evalExpr(arg, st, true) // the callee may assume ownership
		}
	case *ast.IndexExpr:
		a.evalExpr(e.X, st, resolving)
		a.evalExpr(e.Index, st, false)
	case *ast.IndexListExpr:
		a.evalExpr(e.X, st, resolving)
	case *ast.SliceExpr:
		a.evalExpr(e.X, st, false)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			a.evalExpr(elt, st, true)
		}
	case *ast.KeyValueExpr:
		a.evalExpr(e.Value, st, true)
	case *ast.TypeAssertExpr:
		a.evalExpr(e.X, st, resolving)
	case *ast.FuncLit:
		// Captured tracked variables escape into the closure.
		ast.Inspect(e.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v, ok := a.pass.TypesInfo.Uses[id].(*types.Var); ok {
					delete(st, v)
				}
			}
			return true
		})
	}
}

func (a *analysis) isNil(e ast.Expr) bool {
	tv, ok := a.pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

func (a *analysis) varOf(e ast.Expr) *types.Var {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := a.pass.TypesInfo.Uses[id].(*types.Var)
	return v
}

// localVar returns the function-local, non-blank variable an lvalue
// denotes, or nil. Package-level variables are shared state and treated as
// escapes, not obligations.
func (a *analysis) localVar(e ast.Expr) *types.Var {
	id, ok := unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	obj := a.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = a.pass.TypesInfo.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || a.results[v] {
		return nil
	}
	if v.Parent() == nil || v.Parent() == a.pass.Pkg.Scope() {
		return nil
	}
	return v
}

// trackedIdent returns the tracked variable e denotes in st, or nil.
func (a *analysis) trackedIdent(e ast.Expr, st state) *types.Var {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := a.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	if _, held := st[v]; !held {
		return nil
	}
	return v
}

// isSafeReadCall recognizes calls to functions or methods named SafeRead
// or safeRead that return a single pointer.
func (a *analysis) isSafeReadCall(call *ast.CallExpr) bool {
	name := calleeName(a.pass, call)
	if name != "SafeRead" && name != "safeRead" {
		return false
	}
	tv, ok := a.pass.TypesInfo.Types[call]
	if !ok {
		return false
	}
	_, isPtr := tv.Type.Underlying().(*types.Pointer)
	return isPtr
}

// isPinCall recognizes the epoch-guard acquisition shape: a call named
// Pin or pin returning a single value of any type (guards are opaque —
// mm.Guard is a struct; other implementations hand out ints or
// pointers). Multi-value pin helpers are left alone.
func (a *analysis) isPinCall(call *ast.CallExpr) bool {
	name := calleeName(a.pass, call)
	if name != "Pin" && name != "pin" {
		return false
	}
	tv, ok := a.pass.TypesInfo.Types[call]
	if !ok {
		return false
	}
	_, isTuple := tv.Type.(*types.Tuple)
	return !isTuple
}

// calleeName returns the simple name of the called function or method.
func calleeName(pass *framework.Pass, call *ast.CallExpr) string {
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return ""
}

func statesEqual(a, b state) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
