// Package saferead defines an analyzer that checks SafeRead/Release
// balance along control-flow paths.
//
// Under the paper's reference-counting scheme (§5, Figures 15 and 16)
// every SafeRead acquires a counted reference that must eventually be
// handed back with Release — a reference that is forgotten on even one
// path can never be reclaimed, and the cell (plus everything reachable
// through its counted links) leaks. This is the protocol-violation class
// Michael & Scott's correction note and later surveys identify as the
// dominant source of bugs in reference-counted lock-free structures.
//
// The analyzer tracks local variables assigned from a call to a function
// or method named SafeRead (or the unexported safeRead wrapper idiom) and
// abstractly interprets the function body path by path. A tracked
// reference is considered resolved when it
//
//   - is passed as an argument to any call (Release, ReleaseNodes, or any
//     other function that could assume ownership),
//   - is returned (ownership transfers to the caller),
//   - is stored into a struct field, slice, map, global, or dereference
//     (ownership transfers to the structure),
//   - is captured by a function literal or sent on a channel,
//   - is transferred to another local variable (which inherits the
//     obligation), or
//   - is known to be nil on the current path (guarded by == nil / != nil).
//
// A diagnostic is reported when a path reaches a return (or the end of the
// function) with an unresolved reference, when a SafeRead result is
// discarded outright, and when a live reference is overwritten.
//
// Loops are interpreted for at most one iteration (zero-or-one unrolling),
// and short-circuit condition evaluation is approximated by evaluating the
// whole condition on every path, so the analysis errs toward leniency: it
// will miss some leaks but does not flag correct code.
package saferead

import (
	"go/ast"
	"go/token"
	"go/types"

	"valois/internal/analysis/framework"
)

// Analyzer reports SafeRead references that may escape Release.
var Analyzer = &framework.Analyzer{
	Name: "saferead",
	Doc:  "report SafeRead results that are not Released on every path",
	Run:  run,
}

// maxStates bounds the number of distinct path states carried through a
// function; beyond it, excess states are dropped (under-approximation:
// fewer reports, never spurious ones).
const maxStates = 64

func run(pass *framework.Pass) (any, error) {
	a := &analysis{pass: pass, reported: make(map[token.Pos]bool)}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					a.analyzeFunc(n.Type, n.Body)
				}
			case *ast.FuncLit:
				// Each function literal is its own accounting scope; the
				// outer scope treats captures as ownership transfers.
				a.analyzeFunc(n.Type, n.Body)
			}
			return true
		})
	}
	return nil, nil
}

type analysis struct {
	pass     *framework.Pass
	reported map[token.Pos]bool
	// results holds the named result variables of the function currently
	// being analyzed: assigning to one transfers ownership to the caller
	// (the naked-return idiom), so they are never tracked.
	results map[*types.Var]bool
}

// state maps each live tracked variable to the position of the SafeRead
// that created its obligation.
type state map[*types.Var]token.Pos

func (s state) clone() state {
	c := make(state, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// outcome is the result of interpreting a statement (or list): the states
// that fall through, and the states escaping via break or continue.
type outcome struct {
	normal []state
	brk    []state
	cont   []state
}

func (a *analysis) analyzeFunc(typ *ast.FuncType, body *ast.BlockStmt) {
	a.results = make(map[*types.Var]bool)
	if typ.Results != nil {
		for _, field := range typ.Results.List {
			for _, name := range field.Names {
				if v, ok := a.pass.TypesInfo.Defs[name].(*types.Var); ok {
					a.results[v] = true
				}
			}
		}
	}
	out := a.interpStmts(body.List, []state{make(state)})
	for _, st := range out.normal {
		a.leakCheck(st)
	}
	// break/continue outside any loop cannot occur in well-typed code.
}

// report emits one diagnostic per SafeRead site.
func (a *analysis) report(pos token.Pos, format string, args ...any) {
	if a.reported[pos] {
		return
	}
	a.reported[pos] = true
	a.pass.Reportf(pos, format, args...)
}

func (a *analysis) leakCheck(st state) {
	for v, pos := range st {
		a.report(pos, "SafeRead result in %s is not Released on every path through this function", v.Name())
	}
}

func (a *analysis) interpStmts(list []ast.Stmt, in []state) outcome {
	states := in
	var brk, cont []state
	for _, s := range list {
		if len(states) == 0 {
			break // unreachable (after return/panic/branch)
		}
		o := a.interpStmt(s, states)
		brk = append(brk, o.brk...)
		cont = append(cont, o.cont...)
		states = capStates(o.normal)
	}
	return outcome{normal: states, brk: brk, cont: cont}
}

func (a *analysis) interpStmt(s ast.Stmt, in []state) outcome {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := unparen(s.X).(*ast.CallExpr); ok {
			if a.isSafeReadCall(call) {
				a.report(call.Pos(), "result of %s is discarded, leaking the acquired reference", calleeName(a.pass, call))
			}
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := a.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					for _, st := range in {
						a.evalExpr(s.X, st, false)
					}
					return outcome{} // path terminates
				}
			}
		}
		for _, st := range in {
			a.evalExpr(s.X, st, false)
		}
		return outcome{normal: in}

	case *ast.AssignStmt:
		for _, st := range in {
			a.interpAssign(s, st)
		}
		return outcome{normal: in}

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, st := range in {
					a.interpValueSpec(vs, st)
				}
			}
		}
		return outcome{normal: in}

	case *ast.ReturnStmt:
		for _, st := range in {
			for _, res := range s.Results {
				a.evalExpr(res, st, true) // returning transfers ownership
			}
			a.leakCheck(st)
		}
		return outcome{}

	case *ast.IfStmt:
		if s.Init != nil {
			in = a.interpStmt(s.Init, in).normal
		}
		for _, st := range in {
			a.evalExpr(s.Cond, st, false)
		}
		thenIn, elseIn := a.applyNilGuard(s.Cond, in)
		oThen := a.interpStmts(s.Body.List, thenIn)
		var oElse outcome
		if s.Else != nil {
			oElse = a.interpStmt(s.Else, elseIn)
		} else {
			oElse.normal = elseIn
		}
		return outcome{
			normal: append(oThen.normal, oElse.normal...),
			brk:    append(oThen.brk, oElse.brk...),
			cont:   append(oThen.cont, oElse.cont...),
		}

	case *ast.BlockStmt:
		return a.interpStmts(s.List, in)

	case *ast.ForStmt:
		if s.Init != nil {
			in = a.interpStmt(s.Init, in).normal
		}
		bodyIn := cloneAll(in)
		var exits []state
		if s.Cond != nil {
			for _, st := range in {
				a.evalExpr(s.Cond, st, false)
			}
			// Exiting because the condition is false refines nil guards
			// (`for p != nil` means p is nil on exit); the body sees the
			// condition-true refinement.
			condTrue, condFalse := a.applyNilGuard(s.Cond, in)
			bodyIn = condTrue
			exits = append(exits, condFalse...)
		}
		bodyOut := a.interpStmts(s.Body.List, bodyIn)
		after := append(bodyOut.normal, bodyOut.cont...)
		if s.Post != nil {
			after = a.interpStmt(s.Post, after).normal
		}
		exits = append(exits, bodyOut.brk...)
		if s.Cond != nil {
			// Exit after one iteration, again with the condition false.
			_, condFalse := a.applyNilGuard(s.Cond, after)
			exits = append(exits, condFalse...)
		}
		return outcome{normal: capStates(exits)}

	case *ast.RangeStmt:
		for _, st := range in {
			a.evalExpr(s.X, st, false)
		}
		bodyOut := a.interpStmts(s.Body.List, cloneAll(in))
		exits := append(in, bodyOut.normal...)
		exits = append(exits, bodyOut.cont...)
		exits = append(exits, bodyOut.brk...)
		return outcome{normal: capStates(exits)}

	case *ast.SwitchStmt:
		if s.Init != nil {
			in = a.interpStmt(s.Init, in).normal
		}
		if s.Tag != nil {
			for _, st := range in {
				a.evalExpr(s.Tag, st, false)
			}
		}
		return a.interpCases(s.Body, in, func(cc *ast.CaseClause, st state) {
			for _, e := range cc.List {
				a.evalExpr(e, st, false)
			}
		})

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			in = a.interpStmt(s.Init, in).normal
		}
		if s.Assign != nil {
			in = a.interpStmt(s.Assign, in).normal
		}
		return a.interpCases(s.Body, in, nil)

	case *ast.SelectStmt:
		var normal []state
		hasDefault := false
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			if cc.Comm == nil {
				hasDefault = true
			}
			clauseIn := cloneAll(in)
			if cc.Comm != nil {
				clauseIn = a.interpStmt(cc.Comm, clauseIn).normal
			}
			o := a.interpStmts(cc.Body, clauseIn)
			normal = append(normal, o.normal...)
			normal = append(normal, o.brk...) // break exits the select
		}
		_ = hasDefault // a select with no default still takes some clause
		if len(s.Body.List) == 0 {
			return outcome{} // select{} blocks forever
		}
		return outcome{normal: capStates(normal)}

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			return outcome{brk: in}
		case token.CONTINUE:
			return outcome{cont: in}
		case token.GOTO:
			// Dropping the states under-approximates: no reports along
			// goto paths rather than spurious ones.
			return outcome{}
		default: // fallthrough
			return outcome{normal: in}
		}

	case *ast.LabeledStmt:
		return a.interpStmt(s.Stmt, in)

	case *ast.DeferStmt:
		for _, st := range in {
			a.evalExpr(s.Call, st, false)
		}
		return outcome{normal: in}

	case *ast.GoStmt:
		for _, st := range in {
			a.evalExpr(s.Call, st, false)
		}
		return outcome{normal: in}

	case *ast.SendStmt:
		for _, st := range in {
			a.evalExpr(s.Chan, st, false)
			a.evalExpr(s.Value, st, true) // sending transfers ownership
		}
		return outcome{normal: in}

	case *ast.IncDecStmt:
		for _, st := range in {
			a.evalExpr(s.X, st, false)
		}
		return outcome{normal: in}

	default: // EmptyStmt and anything unanticipated: no effect
		return outcome{normal: in}
	}
}

// interpCases interprets a switch body: the union of all case outcomes,
// plus fallthrough of the whole switch when there is no default clause.
// break escapes the switch, not an enclosing loop.
func (a *analysis) interpCases(body *ast.BlockStmt, in []state, evalCase func(*ast.CaseClause, state)) outcome {
	var normal, cont []state
	hasDefault := false
	for _, clause := range body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		clauseIn := cloneAll(in)
		if evalCase != nil {
			for _, st := range clauseIn {
				evalCase(cc, st)
			}
		}
		o := a.interpStmts(cc.Body, clauseIn)
		normal = append(normal, o.normal...)
		normal = append(normal, o.brk...) // break exits the switch
		cont = append(cont, o.cont...)
	}
	if !hasDefault {
		normal = append(normal, in...)
	}
	return outcome{normal: capStates(normal), cont: cont}
}

// interpAssign applies one assignment statement to one state.
func (a *analysis) interpAssign(s *ast.AssignStmt, st state) {
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Rhs {
			a.assignOne(s.Lhs[i], s.Rhs[i], st)
		}
		return
	}
	// Tuple assignment: evaluate the source, then treat every destination
	// as plainly overwritten.
	for _, rhs := range s.Rhs {
		a.evalExpr(rhs, st, false)
	}
	for _, lhs := range s.Lhs {
		a.overwriteCheck(lhs, st)
		a.evalExpr(lhs, st, false)
	}
}

// interpValueSpec handles `var q = m.SafeRead(...)` declarations.
func (a *analysis) interpValueSpec(vs *ast.ValueSpec, st state) {
	if len(vs.Names) == len(vs.Values) {
		for i := range vs.Values {
			a.assignOne(vs.Names[i], vs.Values[i], st)
		}
		return
	}
	for _, v := range vs.Values {
		a.evalExpr(v, st, false)
	}
}

func (a *analysis) assignOne(lhs, rhs ast.Expr, st state) {
	// A SafeRead call assigned to a local variable starts an obligation.
	if call, ok := unparen(rhs).(*ast.CallExpr); ok && a.isSafeReadCall(call) {
		a.evalExpr(call, st, false)
		if lv := a.localVar(lhs); lv != nil {
			a.overwriteCheck(lhs, st)
			st[lv] = call.Pos()
			return
		}
		// Stored straight into a field or element: ownership transferred.
		a.evalExpr(lhs, st, false)
		return
	}
	// Transferring a tracked reference between variables moves the
	// obligation; storing it anywhere else resolves it.
	if rv := a.trackedIdent(rhs, st); rv != nil {
		if lv := a.localVar(lhs); lv != nil {
			if lv == rv {
				return
			}
			pos := st[rv]
			delete(st, rv)
			a.overwriteCheck(lhs, st)
			st[lv] = pos
			return
		}
		delete(st, rv)
		a.evalExpr(lhs, st, false)
		return
	}
	// Plain assignment: storing into a non-local destination lets any
	// tracked variables inside rhs escape.
	a.evalExpr(rhs, st, a.localVar(lhs) == nil)
	a.overwriteCheck(lhs, st)
	a.evalExpr(lhs, st, false)
}

// overwriteCheck reports and clears an obligation when its variable is
// about to be overwritten while still live.
func (a *analysis) overwriteCheck(lhs ast.Expr, st state) {
	lv := a.localVar(lhs)
	if lv == nil {
		return
	}
	if pos, held := st[lv]; held {
		a.report(pos, "SafeRead result in %s is overwritten before being Released", lv.Name())
		delete(st, lv)
	}
}

// evalExpr walks an expression, resolving tracked variables that occur in
// ownership-transferring positions. resolving reports whether e itself is
// in such a position (call argument, return value, composite element, ...).
func (a *analysis) evalExpr(e ast.Expr, st state, resolving bool) {
	switch e := e.(type) {
	case nil:
		return
	case *ast.Ident:
		if resolving {
			if v, ok := a.pass.TypesInfo.Uses[e].(*types.Var); ok {
				delete(st, v)
			}
		}
	case *ast.ParenExpr:
		a.evalExpr(e.X, st, resolving)
	case *ast.SelectorExpr:
		a.evalExpr(e.X, st, false) // q.Item, q.Next(): plain use, not a transfer
	case *ast.StarExpr:
		a.evalExpr(e.X, st, false)
	case *ast.UnaryExpr:
		a.evalExpr(e.X, st, e.Op == token.AND) // &q lets the reference escape
	case *ast.BinaryExpr:
		a.evalExpr(e.X, st, false)
		a.evalExpr(e.Y, st, false)
	case *ast.CallExpr:
		a.evalExpr(e.Fun, st, false)
		for _, arg := range e.Args {
			a.evalExpr(arg, st, true) // the callee may assume ownership
		}
	case *ast.IndexExpr:
		a.evalExpr(e.X, st, resolving)
		a.evalExpr(e.Index, st, false)
	case *ast.IndexListExpr:
		a.evalExpr(e.X, st, resolving)
	case *ast.SliceExpr:
		a.evalExpr(e.X, st, false)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			a.evalExpr(elt, st, true)
		}
	case *ast.KeyValueExpr:
		a.evalExpr(e.Value, st, true)
	case *ast.TypeAssertExpr:
		a.evalExpr(e.X, st, resolving)
	case *ast.FuncLit:
		// Captured tracked variables escape into the closure.
		ast.Inspect(e.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v, ok := a.pass.TypesInfo.Uses[id].(*types.Var); ok {
					delete(st, v)
				}
			}
			return true
		})
	}
}

// applyNilGuard refines the then/else input states for conditions of the
// form `x == nil` and `x != nil`: a reference known to be nil carries no
// obligation on that branch.
func (a *analysis) applyNilGuard(cond ast.Expr, in []state) (thenIn, elseIn []state) {
	thenIn, elseIn = cloneAll(in), cloneAll(in)
	be, ok := unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return thenIn, elseIn
	}
	var v *types.Var
	if a.isNil(be.Y) {
		v = a.varOf(be.X)
	} else if a.isNil(be.X) {
		v = a.varOf(be.Y)
	}
	if v == nil {
		return thenIn, elseIn
	}
	nilSide := thenIn
	if be.Op == token.NEQ {
		nilSide = elseIn
	}
	for _, st := range nilSide {
		delete(st, v)
	}
	return thenIn, elseIn
}

func (a *analysis) isNil(e ast.Expr) bool {
	tv, ok := a.pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

func (a *analysis) varOf(e ast.Expr) *types.Var {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := a.pass.TypesInfo.Uses[id].(*types.Var)
	return v
}

// localVar returns the function-local, non-blank variable an lvalue
// denotes, or nil. Package-level variables are shared state and treated as
// escapes, not obligations.
func (a *analysis) localVar(e ast.Expr) *types.Var {
	id, ok := unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	obj := a.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = a.pass.TypesInfo.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || a.results[v] {
		return nil
	}
	if v.Parent() == nil || v.Parent() == a.pass.Pkg.Scope() {
		return nil
	}
	return v
}

// trackedIdent returns the tracked variable e denotes in st, or nil.
func (a *analysis) trackedIdent(e ast.Expr, st state) *types.Var {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := a.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	if _, held := st[v]; !held {
		return nil
	}
	return v
}

// isSafeReadCall recognizes calls to functions or methods named SafeRead
// or safeRead that return a single pointer.
func (a *analysis) isSafeReadCall(call *ast.CallExpr) bool {
	name := calleeName(a.pass, call)
	if name != "SafeRead" && name != "safeRead" {
		return false
	}
	tv, ok := a.pass.TypesInfo.Types[call]
	if !ok {
		return false
	}
	_, isPtr := tv.Type.Underlying().(*types.Pointer)
	return isPtr
}

// calleeName returns the simple name of the called function or method.
func calleeName(pass *framework.Pass, call *ast.CallExpr) string {
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return ""
}

func cloneAll(in []state) []state {
	out := make([]state, len(in))
	for i, st := range in {
		out[i] = st.clone()
	}
	return out
}

// capStates deduplicates identical states and drops the excess beyond
// maxStates.
func capStates(in []state) []state {
	if len(in) <= 1 {
		return in
	}
	var out []state
	for _, st := range in {
		dup := false
		for _, prev := range out {
			if statesEqual(st, prev) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, st)
		}
		if len(out) == maxStates {
			break
		}
	}
	return out
}

func statesEqual(a, b state) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
