package mixedatomic_test

import (
	"testing"

	"valois/internal/analysis/analysistest"
	"valois/internal/analysis/mixedatomic"
)

func TestMixedAtomic(t *testing.T) {
	analysistest.Run(t, "testdata", mixedatomic.Analyzer, "a")
}
