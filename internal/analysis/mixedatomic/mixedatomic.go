// Package mixedatomic defines an analyzer that reports struct fields
// accessed both through sync/atomic functions and through plain reads or
// writes within a package.
//
// Valois's algorithms are correct only if every access to a shared word
// goes through the atomic primitives (§2.1, Figure 1): a single plain load
// of a field that other goroutines update with Compare&Swap is a data race
// and can observe torn or stale values. The Go race detector finds such
// races only when a test happens to interleave the two accesses; this
// analyzer finds the mixed usage statically.
//
// A field counts as atomically accessed when its address is passed to a
// function of the sync/atomic package (atomic.AddInt64(&s.n, 1) and
// friends). Typed atomics (atomic.Int64, atomic.Pointer[T]) need no
// checking here: their plain fields are unexported, so mixed access does
// not compile. Limitations: the analysis is per-package, initialization via
// composite literals is not reported (construction before publication is
// idiomatic), and a field whose address escapes to a non-atomic function is
// not tracked further.
package mixedatomic

import (
	"go/ast"
	"go/token"
	"go/types"

	"valois/internal/analysis/framework"
)

// Analyzer reports mixed atomic/plain access to struct fields.
var Analyzer = &framework.Analyzer{
	Name: "mixedatomic",
	Doc:  "report struct fields accessed both via sync/atomic and plainly",
	Run:  run,
}

func run(pass *framework.Pass) (any, error) {
	// Pass 1: find fields whose address reaches a sync/atomic call, and
	// remember those selector nodes so pass 2 does not re-flag them.
	atomicFields := make(map[*types.Var]token.Pos)
	blessed := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) || len(call.Args) == 0 {
				return true
			}
			addr, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			sel, ok := unparen(addr.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if field := fieldOf(pass, sel); field != nil {
				if _, seen := atomicFields[field]; !seen {
					atomicFields[field] = sel.Pos()
				}
				blessed[sel] = true
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil, nil
	}

	// Pass 2: any other selector of those fields is a plain access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || blessed[sel] {
				return true
			}
			field := fieldOf(pass, sel)
			if field == nil {
				return true
			}
			if _, ok := atomicFields[field]; ok {
				pass.Categorizef("plain-access", sel.Pos(),
					"plain access to field %s, which is accessed with sync/atomic elsewhere in this package",
					field.Name())
			}
			return true
		})
	}
	return nil, nil
}

// isAtomicCall reports whether call invokes a package-level function of
// sync/atomic (the address-taking Load/Store/Add/Swap/CompareAndSwap
// family — the package exports nothing else at package level).
func isAtomicCall(pass *framework.Pass, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic" && fn.Type().(*types.Signature).Recv() == nil
}

// fieldOf returns the struct field a selector expression denotes, or nil.
func fieldOf(pass *framework.Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
