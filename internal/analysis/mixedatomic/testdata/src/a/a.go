// Package a is the mixedatomic fixture: counter fields accessed through
// sync/atomic must not also be read or written plainly.
package a

import "sync/atomic"

type counters struct {
	hits   int64 // accessed via sync/atomic below: plain access is a race
	misses int64 // accessed via sync/atomic below
	plain  int64 // never accessed atomically: plain access is fine
}

func record(c *counters) {
	atomic.AddInt64(&c.hits, 1)
	atomic.StoreInt64(&c.misses, 0)
	c.plain++ // ok: not an atomic field
}

func raceyRead(c *counters) int64 {
	return c.hits // want `plain access to field hits`
}

func raceyWrite(c *counters) {
	c.misses = 0 // want `plain access to field misses`
}

func fine(c *counters) int64 {
	n := atomic.LoadInt64(&c.hits) // ok: atomic access
	return n + c.plain             // ok: plain field stays plain
}

// construct initializes by composite literal, which is idiomatic before
// the value is published and deliberately not flagged.
func construct() *counters {
	return &counters{hits: 0}
}
