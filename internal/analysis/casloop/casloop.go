// Package casloop defines an analyzer for Compare&Swap retry loops.
//
// It enforces two properties of the paper's lock-free hot paths:
//
//  1. A CAS retry loop must re-load its expected value each iteration
//     (Figures 17 and 18: "q = Freelist" happens inside the loop). A CAS
//     whose expected value is computed once before the loop can never
//     succeed after the first failure — the loop livelocks, burning CPU
//     while making no progress.
//
//  2. The body of a CAS retry loop is a lock-free hot path; it must not
//     block. Calls to time.Sleep, sync.Mutex.Lock and friends, channel
//     operations, and select statements turn the non-blocking guarantee
//     of §1 into lock-based waiting (runtime.Gosched and the
//     primitive.Backoff spinner remain allowed — yielding is not
//     blocking).
//
// A CAS call is attributed to its innermost enclosing for statement;
// blocking calls in an outer loop that merely contains a nested retry
// loop are not flagged. Function literals are separate scopes.
package casloop

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"valois/internal/analysis/framework"
)

// Analyzer reports stale expected values and blocking calls in CAS loops.
var Analyzer = &framework.Analyzer{
	Name: "casloop",
	Doc:  "report CAS retry loops with stale expected values or blocking calls",
	Run:  run,
}

// loopInfo accumulates the CAS calls and blocking sites attributed to one
// for statement.
type loopInfo struct {
	stmt     *ast.ForStmt
	cas      []*ast.CallExpr
	blocking []blockSite
}

type blockSite struct {
	pos  token.Pos
	what string
}

func run(pass *framework.Pass) (any, error) {
	for _, f := range pass.Files {
		var loops []*loopInfo
		collect(pass, f, nil, &loops)
		for _, l := range loops {
			if len(l.cas) == 0 {
				continue
			}
			for _, b := range l.blocking {
				pass.Categorizef("blocking", b.pos, "%s inside a CAS retry loop blocks the lock-free hot path", b.what)
			}
			for _, cas := range l.cas {
				checkStaleExpected(pass, l.stmt, cas)
			}
		}
	}
	return nil, nil
}

// collect walks n, attributing CAS calls and blocking operations to cur,
// the innermost enclosing for statement. Nested for statements open a new
// attribution scope; function literals close it.
func collect(pass *framework.Pass, n ast.Node, cur *loopInfo, loops *[]*loopInfo) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.FuncLit:
		collect(pass, n.Body, nil, loops)
		return
	case *ast.ForStmt:
		inner := &loopInfo{stmt: n}
		*loops = append(*loops, inner)
		collect(pass, n.Init, inner, loops)
		if n.Cond != nil {
			collect(pass, n.Cond, inner, loops)
		}
		collect(pass, n.Post, inner, loops)
		collect(pass, n.Body, inner, loops)
		return
	case *ast.CallExpr:
		if cur != nil {
			if isCASCall(pass, n) {
				cur.cas = append(cur.cas, n)
			}
			if what, ok := blockingCall(pass, n); ok {
				cur.blocking = append(cur.blocking, blockSite{pos: n.Pos(), what: what})
			}
		}
	case *ast.SendStmt:
		if cur != nil {
			cur.blocking = append(cur.blocking, blockSite{pos: n.Pos(), what: "channel send"})
		}
	case *ast.UnaryExpr:
		if cur != nil && n.Op == token.ARROW {
			cur.blocking = append(cur.blocking, blockSite{pos: n.Pos(), what: "channel receive"})
		}
	case *ast.SelectStmt:
		if cur != nil {
			cur.blocking = append(cur.blocking, blockSite{pos: n.Pos(), what: "select"})
		}
	}
	// Generic traversal of children within the same attribution scope.
	ast.Inspect(n, func(child ast.Node) bool {
		if child == n {
			return true
		}
		collect(pass, child, cur, loops)
		return false
	})
}

// isCASCall recognizes Compare&Swap in all three spellings used here: a
// CompareAndSwap method (typed atomics), a CompareAndSwapXxx function of
// sync/atomic, and the generic primitive.CompareAndSwap wrapper.
func isCASCall(pass *framework.Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return fn.Name() == "CompareAndSwap"
	}
	return strings.HasPrefix(fn.Name(), "CompareAndSwap")
}

// checkStaleExpected reports cas when its expected-value argument is a
// variable that is neither declared per-iteration nor re-assigned anywhere
// in the loop: the retry can then never observe a different expected value.
func checkStaleExpected(pass *framework.Pass, loop *ast.ForStmt, cas *ast.CallExpr) {
	old := expectedArg(pass, cas)
	if old == nil {
		return
	}
	id, ok := unparen(old).(*ast.Ident)
	if !ok {
		return
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil {
		return // nil, constants, fields, or non-variables
	}
	// Declared inside the loop body: fresh each iteration.
	if loop.Body.Pos() <= v.Pos() && v.Pos() <= loop.Body.End() {
		return
	}
	if assignedIn(pass, loop, v) {
		return
	}
	pass.Categorizef("stale-expected", cas.Pos(),
		"CAS expected value %s is never re-loaded inside the retry loop; the CAS cannot succeed after the first failure",
		v.Name())
}

// expectedArg returns the expected-value argument of a CAS call: the first
// argument of the method form, the second of the function forms.
func expectedArg(pass *framework.Pass, call *ast.CallExpr) ast.Expr {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return nil
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		if len(call.Args) == 2 {
			return call.Args[0]
		}
		return nil
	}
	if len(call.Args) == 3 {
		return call.Args[1]
	}
	return nil
}

// assignedIn reports whether v is assigned (or has its address taken, in
// which case a re-load through the pointer is possible) within the loop's
// body or post statement.
func assignedIn(pass *framework.Pass, loop *ast.ForStmt, v *types.Var) bool {
	found := false
	check := func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if refersTo(pass, lhs, v) {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if refersTo(pass, n.X, v) {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND && refersTo(pass, n.X, v) {
				found = true
			}
		case *ast.RangeStmt:
			if refersTo(pass, n.Key, v) || refersTo(pass, n.Value, v) {
				found = true
			}
		}
		return !found
	}
	ast.Inspect(loop.Body, check)
	if loop.Post != nil {
		ast.Inspect(loop.Post, check)
	}
	return found
}

func refersTo(pass *framework.Pass, e ast.Expr, v *types.Var) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == v
}

// blockingCall classifies calls that park the goroutine.
func blockingCall(pass *framework.Pass, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	if sig := fn.Type().(*types.Signature); sig.Recv() != nil {
		if pkg == "sync" {
			switch name {
			case "Lock", "RLock", "Wait", "Do":
				return "sync." + recvTypeName(sig) + "." + name, true
			}
		}
		return "", false
	}
	if pkg == "time" && name == "Sleep" {
		return "time.Sleep", true
	}
	return "", false
}

func recvTypeName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

// calleeFunc resolves the *types.Func a call invokes, or nil for calls
// through function values, conversions, and builtins.
func calleeFunc(pass *framework.Pass, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		if id, ok := unparen(fun.X).(*ast.Ident); ok {
			fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
			return fn
		}
		if sel, ok := unparen(fun.X).(*ast.SelectorExpr); ok {
			fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			return fn
		}
	}
	return nil
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
