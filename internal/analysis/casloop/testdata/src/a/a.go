// Package a is the casloop fixture: CAS retry loops must re-load their
// expected value and must not block.
package a

import (
	"sync"
	"sync/atomic"
	"time"
)

// staleMethod never re-loads head inside the loop: after one failure the
// CAS can never succeed.
func staleMethod(head *atomic.Int64, next int64) {
	old := head.Load()
	for !head.CompareAndSwap(old, next) { // want `expected value old is never re-loaded`
	}
}

// staleFn is the same bug through the sync/atomic function form.
func staleFn(addr *int64, next int64) {
	old := atomic.LoadInt64(addr)
	for {
		if atomic.CompareAndSwapInt64(addr, old, next) { // want `expected value old is never re-loaded`
			return
		}
	}
}

// staleInit declares the expected value in the loop init, which still runs
// only once.
func staleInit(head *atomic.Int64, next int64) {
	for old := head.Load(); !head.CompareAndSwap(old, next); { // want `expected value old is never re-loaded`
	}
}

// reloaded is the correct shape of Figures 17/18: the expected value is
// read fresh each iteration.
func reloaded(head *atomic.Int64, delta int64) {
	for {
		old := head.Load() // ok: per-iteration load
		if head.CompareAndSwap(old, old+delta) {
			return
		}
	}
}

// reassigned re-loads into a variable declared outside the loop, which is
// equally fine.
func reassigned(head *atomic.Int64, delta int64) {
	old := head.Load()
	for !head.CompareAndSwap(old, old+delta) {
		old = head.Load() // ok: re-loaded before retrying
	}
}

// constExpected spins waiting for a state another goroutine sets; the
// expected value is a constant, not a stale snapshot.
func constExpected(state *atomic.Int32) {
	const idle = 0
	for !state.CompareAndSwap(idle, 1) { // ok: constant expected value
	}
}

// blocking shows each forbidden operation inside a retry loop.
func blocking(head *atomic.Int64, mu *sync.Mutex, ch chan int) {
	for {
		old := head.Load()
		time.Sleep(time.Millisecond) // want `time.Sleep inside a CAS retry loop`
		mu.Lock()                    // want `sync.Mutex.Lock inside a CAS retry loop`
		<-ch                         // want `channel receive inside a CAS retry loop`
		ch <- 1                      // want `channel send inside a CAS retry loop`
		if head.CompareAndSwap(old, old+1) {
			return
		}
	}
}

// outerLoopMaySleep: the sleep sits in the outer loop; only the inner loop
// is the CAS hot path, so the sleep is fine.
func outerLoopMaySleep(head *atomic.Int64) {
	for {
		time.Sleep(time.Millisecond) // ok: not in the innermost CAS loop
		for {
			old := head.Load()
			if head.CompareAndSwap(old, old+1) {
				break
			}
		}
	}
}

// closuresAreSeparate: a CAS loop inside a function literal does not make
// the enclosing loop a hot path.
func closuresAreSeparate(head *atomic.Int64, ch chan func()) {
	for {
		f := func() {
			for {
				old := head.Load()
				if head.CompareAndSwap(old, old+1) {
					return
				}
			}
		}
		ch <- f // ok: enclosing loop has no CAS of its own
	}
}
