package casloop_test

import (
	"testing"

	"valois/internal/analysis/analysistest"
	"valois/internal/analysis/casloop"
)

func TestCASLoop(t *testing.T) {
	analysistest.Run(t, "testdata", casloop.Analyzer, "a")
}
