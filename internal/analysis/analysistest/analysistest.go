// Package analysistest runs an analyzer over a fixture package and checks
// its diagnostics against "// want" comment expectations, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture lives in testdata/src/<pkg>/ beside the analyzer's test (the
// testdata directory keeps it out of the regular build). Lines expected to
// be flagged carry a trailing comment of the form
//
//	x = 1 // want `plain write to field`
//	y = 2 // want "first" "second"
//
// where each Go string literal is a regular expression that must match one
// diagnostic reported on that line. Diagnostics without a matching
// expectation, and expectations without a matching diagnostic, fail the
// test.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"valois/internal/analysis/framework"
)

// expectation is one want-regexp at a file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// Run loads the fixture package testdata/src/<pkg>, applies the analyzer,
// and reports mismatches between its diagnostics and the fixture's want
// comments as test errors.
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixture files in %s (%v)", dir, err)
	}
	sort.Strings(files)

	ld := framework.NewLoader(dir)
	loaded, err := ld.LoadFiles(pkg, files...)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	for _, e := range loaded.Errors {
		t.Errorf("fixture %s: %v", dir, e)
	}
	if t.Failed() {
		t.FailNow()
	}

	var wants []*expectation
	for _, f := range loaded.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := ld.Fset().Position(c.Pos())
				for _, w := range parseWants(t, pos, c.Text) {
					wants = append(wants, w)
				}
			}
		}
	}

	pass := &framework.Pass{
		Analyzer:  a,
		Fset:      ld.Fset(),
		Files:     loaded.Syntax,
		Pkg:       loaded.Types,
		TypesInfo: loaded.TypesInfo,
		Facts:     framework.NewFactStore(),
	}
	var diags []framework.Diagnostic
	pass.Report = func(d framework.Diagnostic) { diags = append(diags, d) }
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}

	for _, d := range diags {
		pos := ld.Fset().Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.met && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// parseWants extracts the expectations from one comment's text.
func parseWants(t *testing.T, pos token.Position, text string) []*expectation {
	t.Helper()
	rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(text, "//")), "want ")
	if !ok {
		return nil
	}
	position := pos.String()
	file, line := pos.Filename, pos.Line
	var wants []*expectation
	rest = strings.TrimSpace(rest)
	for rest != "" {
		lit, remainder, err := cutStringLiteral(rest)
		if err != nil {
			t.Fatalf("%s: malformed want comment %q: %v", position, text, err)
		}
		pattern, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("%s: malformed want literal %s: %v", position, lit, err)
		}
		re, err := regexp.Compile(pattern)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", position, pattern, err)
		}
		wants = append(wants, &expectation{file: file, line: line, re: re})
		rest = strings.TrimSpace(remainder)
	}
	return wants
}

// cutStringLiteral splits a leading Go string literal (quoted or
// backquoted) off s.
func cutStringLiteral(s string) (lit, rest string, err error) {
	if s == "" {
		return "", "", fmt.Errorf("empty literal")
	}
	switch s[0] {
	case '`':
		if i := strings.IndexByte(s[1:], '`'); i >= 0 {
			return s[:i+2], s[i+2:], nil
		}
		return "", "", fmt.Errorf("unterminated raw string")
	case '"':
		for i := 1; i < len(s); i++ {
			switch s[i] {
			case '\\':
				i++
			case '"':
				return s[:i+1], s[i+1:], nil
			}
		}
		return "", "", fmt.Errorf("unterminated string")
	default:
		return "", "", fmt.Errorf("expected a string literal, found %q", s)
	}
}
