package server

import (
	"errors"
	"fmt"
	"time"

	"valois/internal/persist"
	"valois/internal/proto"
)

// Durability wiring. When Config.PersistDir is set, the server opens an
// append-only log (internal/persist) at construction, recovers state
// from it (latest snapshot + AOF tail), and from then on appends every
// applied mutation to it.
//
// Ordering contract: the append happens AFTER the mutation is applied to
// the shard, and both happen under that shard's logMu. The mutex is what
// makes recovery linearizable — without it, two racing SETs of the same
// key could apply in one order and land in the log in the other, and a
// pre-crash GET that observed the first order would make the recovered
// history unlinearizable. The mutex is per shard and taken only on the
// mutation path, so GETs and RANGEs still run purely on the lock-free
// structures, and mutations in different shards never serialize against
// each other.
//
// The mutation path itself lives in batch.go (execKeyedLocked): the
// batched executor takes logMu once per shard-group — one acquisition
// covering every mutation a pipelined batch sends to that shard — and
// applies then appends each command in batch order under it, which
// preserves this contract while amortizing the lock.
//
// If the append itself fails (disk full, log closed mid-shutdown), the
// in-memory apply has already happened: memory and disk have diverged.
// The client gets SERVER_ERROR — which the chaos harness records as a
// Lost (indeterminate) operation, keeping its linearizability accounting
// sound — and the divergence is counted in persist_errors.

// openPersist is called by New when cfg.PersistDir is set: it replays
// existing state into the freshly created shards and leaves the log open
// for appends.
func (s *Server) openPersist() error {
	policy, err := persist.ParsePolicy(s.cfg.FsyncPolicy)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	log, info, err := persist.Open(s.cfg.PersistDir, policy, s.applyRecovered, s.cfg.Logf)
	if err != nil {
		return err
	}
	s.log = log
	s.replayed.Store(int64(info.Replayed()))
	s.recovery = info
	return nil
}

// applyRecovered applies one replayed log record to the shards. It runs
// during New, strictly before any connection exists, so it writes to the
// dictionaries directly without logMu or re-appending.
func (s *Server) applyRecovered(cmd proto.Command) error {
	switch cmd.Verb {
	case proto.VerbSet:
		s.shardFor(cmd.Key).set(cmd.Key, cmd.Value)
	case proto.VerbDelete:
		s.shardFor(cmd.Key).d.Delete(cmd.Key)
	default:
		return fmt.Errorf("server: log record with non-mutation verb %s", cmd.Verb)
	}
	return nil
}

// Snapshot runs one snapshot compaction cycle: rotate the AOF, then
// stream every shard's live bindings into the snapshot file via the
// backends' lock-free cursor scans (RangeFrom; the hash backend scans
// bucket by bucket), and atomically install it. Writers are never
// blocked — the scan starts after the rotation, which is exactly the
// consistency contract persist.StartSnapshot documents.
func (s *Server) Snapshot() error {
	if s.log == nil {
		return errors.New("server: persistence not enabled")
	}
	sw, err := s.log.StartSnapshot()
	if err != nil {
		return err
	}
	for _, sh := range s.shards {
		var addErr error
		sh.snap(func(k string, v []byte) bool {
			addErr = sw.Add(k, v)
			return addErr == nil
		})
		if addErr != nil {
			sw.Abort()
			return addErr
		}
	}
	return sw.Commit()
}

// snapshotLoop runs Snapshot every cfg.SnapshotInterval until Shutdown
// closes snapStop. Failures are logged and the loop keeps going: a
// failed snapshot leaves the rotated AOF chain intact and replayable.
func (s *Server) snapshotLoop() {
	defer s.snapWG.Done()
	t := time.NewTicker(s.cfg.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-s.snapStop:
			return
		case <-t.C:
			if err := s.Snapshot(); err != nil {
				s.cfg.Logf("snapshot: %v", err)
			}
		}
	}
}

// stopSnapshots halts the background snapshot loop and waits for any
// in-flight snapshot to finish, so the log can be closed safely.
func (s *Server) stopSnapshots() {
	s.snapStopOnce.Do(func() { close(s.snapStop) })
	s.snapWG.Wait()
}

// persistStats contributes the durability lines to STATS. All zeros with
// persistence disabled, so clients can probe unconditionally.
func (s *Server) persistStats() []Stat {
	var ps persist.Stats
	if s.log != nil {
		ps = s.log.Stats()
	}
	n := func(v int64) string { return fmt.Sprintf("%d", v) }
	return []Stat{
		{"aof_records", n(ps.Records)},
		{"aof_bytes", n(ps.Bytes)},
		{"aof_fsyncs", n(ps.Fsyncs)},
		{"snapshot_runs", n(ps.SnapshotRuns)},
		{"snapshot_last_unix", n(ps.SnapshotLastUnix)},
		{"recovery_replayed", n(s.replayed.Load())},
		{"persist_errors", n(s.persistErrs.Load())},
	}
}
