package server_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"valois/internal/client"
	"valois/internal/server"
	"valois/internal/testenv"
)

// TestE2EMixedWorkloadOracle drives a live loopback server from many
// client goroutines with a mixed get/set/delete workload and verifies the
// final contents against a mutex-protected map oracle, for every backend
// under both memory modes. Each goroutine owns a disjoint key range, so
// per-key operation order is sequential and the oracle is exact; the
// goroutines still collide inside the shared lock-free shards, which is
// the concurrency under test. Iteration counts respect the
// VALOIS_STRESS_DIV divisor so the race-detector CI run stays fast.
func TestE2EMixedWorkloadOracle(t *testing.T) {
	backends := []struct {
		name string
		keys int // per-goroutine key range (the list backend is O(n))
	}{
		{server.BackendSkipList, 96},
		{server.BackendHash, 96},
		{server.BackendBST, 96},
		{server.BackendList, 24},
	}
	for _, b := range backends {
		for _, mode := range []string{"gc", "rc", "ebr"} {
			t.Run(b.name+"/"+mode, func(t *testing.T) {
				runOracle(t, server.Config{Backend: b.name, Mode: mode, Shards: 4, Buckets: 32}, b.keys)
			})
		}
	}
}

func runOracle(t *testing.T, cfg server.Config, keysPerG int) {
	srv, addr := startServer(t, cfg)

	const goroutines = 8
	ops := testenv.Iters(600)

	var (
		oracleMu sync.Mutex
		oracle   = make(map[string][]byte)
	)
	readOracle := func(k string) ([]byte, bool) {
		oracleMu.Lock()
		defer oracleMu.Unlock()
		v, ok := oracle[k]
		return v, ok
	}
	writeOracle := func(k string, v []byte) {
		oracleMu.Lock()
		defer oracleMu.Unlock()
		if v == nil {
			delete(oracle, k)
		} else {
			oracle[k] = v
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Goroutines alternate wire protocols against the one
			// auto-detecting server.
			c, err := client.Dial(addr, client.Options{Protocol: protoFor(g)})
			if err != nil {
				errs <- fmt.Errorf("goroutine %d: dial: %w", g, err)
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(g) + 1))
			for i := 0; i < ops; i++ {
				// Keys are disjoint per goroutine: g owns key(g, 0..keysPerG).
				k := fmt.Sprintf("g%02d:%04d", g, rng.Intn(keysPerG))
				switch p := rng.Intn(100); {
				case p < 30: // get, checked against the oracle
					v, found, err := c.Get(k)
					if err != nil {
						errs <- fmt.Errorf("goroutine %d: Get(%s): %w", g, k, err)
						return
					}
					want, wantFound := readOracle(k)
					if found != wantFound || !bytes.Equal(v, want) {
						errs <- fmt.Errorf("goroutine %d: Get(%s) = %q,%v; oracle %q,%v",
							g, k, v, found, want, wantFound)
						return
					}
				case p < 70: // set
					v := []byte(fmt.Sprintf("v%d-%d", g, i))
					if err := c.Set(k, v); err != nil {
						errs <- fmt.Errorf("goroutine %d: Set(%s): %w", g, k, err)
						return
					}
					writeOracle(k, v)
				default: // delete, result checked against the oracle
					deleted, err := c.Delete(k)
					if err != nil {
						errs <- fmt.Errorf("goroutine %d: Delete(%s): %w", g, k, err)
						return
					}
					_, wantFound := readOracle(k)
					if deleted != wantFound {
						errs <- fmt.Errorf("goroutine %d: Delete(%s) = %v; oracle has=%v",
							g, k, deleted, wantFound)
						return
					}
					writeOracle(k, nil)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Final contents must match the oracle exactly.
	c := dialTest(t, addr)
	for k, want := range oracle {
		v, found, err := c.Get(k)
		if err != nil || !found || !bytes.Equal(v, want) {
			t.Fatalf("final Get(%s) = %q,%v,%v; oracle %q", k, v, found, err, want)
		}
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if want := fmt.Sprintf("%d", len(oracle)); stats["curr_items"] != want {
		t.Fatalf("curr_items = %s, want %s", stats["curr_items"], want)
	}
	if srv.Ordered() {
		// A full RANGE sweep must observe exactly the oracle's items, in
		// ascending key order.
		entries, err := c.Range("g", len(oracle)+10)
		if err != nil {
			t.Fatalf("Range: %v", err)
		}
		if len(entries) != len(oracle) {
			t.Fatalf("Range returned %d entries, oracle has %d", len(entries), len(oracle))
		}
		for i, e := range entries {
			if i > 0 && entries[i-1].Key >= e.Key {
				t.Fatalf("Range out of order: %q before %q", entries[i-1].Key, e.Key)
			}
			if want := oracle[e.Key]; !bytes.Equal(e.Value, want) {
				t.Fatalf("Range entry %s = %q, oracle %q", e.Key, e.Value, want)
			}
		}
	}
}
