package server_test

// Tests for the hardening layer: connection deadlines, the MaxConns
// accept gate, and panic isolation — each observed through the STATS
// counters it increments and through the goroutine-leak helper, so the
// defenses are demonstrably exercised, not just configured.

import (
	"bufio"
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"valois/internal/client"
	"valois/internal/proto"
	"valois/internal/server"
)

// TestSlowLorisCutByReadDeadline trickles a request one byte at a time,
// forever under the idle deadline but never completing a command: the
// read deadline must cut the connection, count a conn_timeout, and leak
// nothing.
func TestSlowLorisCutByReadDeadline(t *testing.T) {
	_, addr, stop := bootServer(t, server.Config{
		Backend:     server.BackendSkipList,
		Shards:      1,
		IdleTimeout: 10 * time.Second, // never the cutter here
		ReadTimeout: 300 * time.Millisecond,
	})
	base := goroutineBaseline()

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer nc.Close()

	closed := make(chan error, 1)
	go func() {
		nc.SetReadDeadline(time.Now().Add(10 * time.Second))
		_, err := nc.Read(make([]byte, 64))
		closed <- err
	}()

	// Drip bytes of a GET far slower than the command completes but far
	// faster than the idle deadline — the classic slow loris.
	start := time.Now()
	for i := 0; i < 80; i++ {
		nc.SetWriteDeadline(time.Now().Add(time.Second))
		if _, err := nc.Write([]byte("G")); err != nil {
			break // server already cut us
		}
		time.Sleep(50 * time.Millisecond)
	}

	select {
	case err := <-closed:
		if err == nil {
			t.Fatal("server wrote a reply to an incomplete command")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("slow-loris connection was never cut")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cut took %v, want about the 300ms read deadline", elapsed)
	}
	nc.Close()

	c := dialTest(t, addr)
	stats, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if stats["conn_timeouts"] == "0" {
		t.Errorf("conn_timeouts = 0, want the slow-loris cut counted")
	}
	c.Close()

	waitNoGoroutineLeak(t, base, 1)
	stop()
}

// TestIdleTimeoutCutsIdleConn parks a connection that never sends a
// byte: the idle deadline must close it and count a conn_timeout.
func TestIdleTimeoutCutsIdleConn(t *testing.T) {
	_, addr, stop := bootServer(t, server.Config{
		Backend:     server.BackendSkipList,
		Shards:      1,
		IdleTimeout: 200 * time.Millisecond,
	})
	base := goroutineBaseline()

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer nc.Close()
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := nc.Read(make([]byte, 1)); err == nil {
		t.Fatal("server wrote to a connection that sent nothing")
	}
	nc.Close()

	c := dialTest(t, addr)
	stats, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if stats["conn_timeouts"] == "0" {
		t.Errorf("conn_timeouts = 0, want the idle cut counted")
	}
	c.Close()

	waitNoGoroutineLeak(t, base, 1)
	stop()
}

// TestMaxConnsGate fills the connection cap, verifies the over-cap dial
// is answered SERVER_ERROR and closed (with conn_rejected counted), and
// that capacity frees up when a connection leaves.
func TestMaxConnsGate(t *testing.T) {
	_, addr, stop := bootServer(t, server.Config{
		Backend:  server.BackendSkipList,
		Shards:   1,
		MaxConns: 2,
	})
	base := goroutineBaseline()

	c1 := dialTest(t, addr)
	if err := c1.Set("a", []byte("1")); err != nil {
		t.Fatalf("Set on conn 1: %v", err)
	}
	c2 := dialTest(t, addr)
	if err := c2.Set("b", []byte("2")); err != nil {
		t.Fatalf("Set on conn 2: %v", err)
	}

	// Both slots are taken and provably registered; the next dial must be
	// answered with SERVER_ERROR and closed, without any command sent.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("over-cap Dial: %v", err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := bufio.NewReader(nc).ReadString('\n')
	if err != nil {
		t.Fatalf("reading rejection: %v", err)
	}
	if !strings.HasPrefix(line, "SERVER_ERROR") {
		t.Fatalf("rejection line = %q, want SERVER_ERROR", line)
	}
	if _, err := bufio.NewReader(nc).ReadString('\n'); err == nil {
		t.Fatal("rejected connection stayed open past its error line")
	}
	nc.Close()

	stats, err := c1.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if stats["conn_rejected"] == "0" {
		t.Errorf("conn_rejected = 0, want the over-cap dial counted")
	}

	// Freeing a slot restores service for new connections.
	c2.Close()
	var c3 *client.Client
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		c3, err = client.Dial(addr, client.Options{Retries: -1, OpTimeout: time.Second})
		if err == nil {
			if err = c3.Set("c", []byte("3")); err == nil {
				break
			}
			c3.Close()
			c3 = nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	if c3 == nil || err != nil {
		t.Fatalf("no service after freeing a slot: %v", err)
	}
	c3.Close()
	c1.Close()

	waitNoGoroutineLeak(t, base, 1)
	stop()
}

// TestPanicIsolation injects a panic into dispatch (via the test-only
// hook): the panicking connection gets SERVER_ERROR and closes, every
// other connection keeps working, conn_panics counts it, and nothing
// leaks — one poisoned request cannot take the server down.
func TestPanicIsolation(t *testing.T) {
	srv, err := server.New(server.Config{Backend: server.BackendSkipList, Shards: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Installed before Serve so no connection can race the write.
	srv.SetPanicHook(func(cmd proto.Command) {
		if cmd.Verb == proto.VerbDelete && cmd.Key == "boom" {
			panic("injected dispatch panic")
		}
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	addr := ln.Addr().String()
	base := goroutineBaseline()

	bystander := dialTest(t, addr)
	if err := bystander.Set("x", []byte("1")); err != nil {
		t.Fatalf("bystander Set: %v", err)
	}

	victim := dialTest(t, addr)
	_, err = victim.Delete("boom")
	var re *proto.ReplyError
	if !errors.As(err, &re) || re.Kind != "SERVER_ERROR" {
		t.Fatalf("poisoned Delete error = %v, want SERVER_ERROR reply", err)
	}
	victim.Close()

	// The bystander connection — and the server as a whole — survive.
	if v, found, err := bystander.Get("x"); err != nil || !found || string(v) != "1" {
		t.Fatalf("bystander Get after panic = %q,%v,%v", v, found, err)
	}
	stats, err := bystander.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if stats["conn_panics"] != "1" {
		t.Errorf("conn_panics = %s, want 1", stats["conn_panics"])
	}
	bystander.Close()

	waitNoGoroutineLeak(t, base, 1)
}
