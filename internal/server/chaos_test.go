package server_test

// Chaos suite: the whole serving stack — client, wire protocol, hardened
// server, every §4 backend under both §5 memory modes — driven through
// the internal/faultnet proxy while a wire-level history is recorded and
// checked for linearizability against the KV specification
// (linearize.CheckKV). Faults are derived deterministically from the
// seed, so every failure report names the exact subtest to re-run.
//
// Chaos clients run with retries disabled: one logical operation is one
// wire attempt, so the server executes it at most once and an operation
// whose reply was lost is recorded Lost — the ambiguous-retry case the
// checker absorbs (it may have executed at any point after invocation,
// or never). Client-internal retries would instead let a stale first
// attempt land after its retry, making the at-most-once accounting
// wrong.
//
// Corruption is deliberately absent from the linearizability runs: the
// text protocol has no integrity layer, so a flipped byte can turn one
// valid reply into a different valid reply that no checker can
// distinguish from a server bug. TestChaosCorruptionSurvival exercises
// corruption separately, asserting survival rather than linearizability.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"valois/internal/client"
	"valois/internal/faultnet"
	"valois/internal/server"
	"valois/internal/testenv"
)

// chaosSeeds is the fixed replay matrix. Every seed fully determines the
// fault schedule, so re-running the subtest named in a failure report
// reproduces it.
var chaosSeeds = []int64{1, 2, 3, 5, 8, 13, 21, 34}

const (
	chaosKeys      = 32
	chaosWorkers   = 3
	chaosOpTimeout = 500 * time.Millisecond
)

// chaosServerConfig hardens the server with deadlines short enough that
// injected stalls and half-dead connections are cut within the test.
func chaosServerConfig(backend, mode string) server.Config {
	return server.Config{
		Backend:      backend,
		Mode:         mode,
		Shards:       4,
		IdleTimeout:  2 * time.Second,
		ReadTimeout:  time.Second,
		WriteTimeout: time.Second,
	}
}

// bootServer starts a server and returns an idempotent stop. Unlike
// startServer it is stoppable mid-test, so the goroutine-leak check can
// run inside the test body after an explicit shutdown.
func bootServer(t *testing.T, cfg server.Config) (*server.Server, string, func()) {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				t.Errorf("Shutdown: %v", err)
			}
			if err := <-serveErr; !errors.Is(err, server.ErrServerClosed) {
				t.Errorf("Serve returned %v, want ErrServerClosed", err)
			}
		})
	}
	t.Cleanup(stop)
	return srv, ln.Addr().String(), stop
}

// dialChaos dials through the fault proxy, retrying because the proxy
// kills a fraction of connections at accept time.
func dialChaos(addr, protocol string) (*client.Client, error) {
	var err error
	for i := 0; i < 20; i++ {
		var c *client.Client
		c, err = client.Dial(addr, client.Options{
			ConnectTimeout: 2 * time.Second,
			OpTimeout:      chaosOpTimeout,
			Retries:        -1, // one logical op = one wire attempt
			Backoff:        time.Millisecond,
			Protocol:       protocol,
		})
		if err == nil {
			return c, nil
		}
	}
	return nil, err
}

func TestChaosLinearizable(t *testing.T) {
	for bi, backend := range server.Backends() {
		for si, seed := range chaosSeeds {
			// Alternate so each backend runs all three memory modes (gc,
			// §5 reference counts, epoch-based reclamation) across the
			// seed matrix.
			mode := []string{"gc", "rc", "ebr"}[(bi+si)%3]
			t.Run(fmt.Sprintf("%s-%s-seed%d", backend, mode, seed), func(t *testing.T) {
				runChaos(t, backend, mode, seed)
			})
		}
	}
}

func runChaos(t *testing.T, backend, mode string, seed int64) {
	replay := fmt.Sprintf("backend=%s mode=%s seed=%d", backend, mode, seed)
	base := goroutineBaseline()
	_, addr, stop := bootServer(t, chaosServerConfig(backend, mode))
	proxy, err := faultnet.NewProxy(addr, faultnet.ChaosFaults(seed))
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	defer proxy.Close()

	h := newWireHist(chaosKeys)
	opsPer := testenv.Iters(100)
	fatal := make(chan error, chaosWorkers)
	var wg sync.WaitGroup
	for w := 0; w < chaosWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed<<8 + int64(w)))
			// Workers alternate wire protocols: every seed of the chaos
			// matrix faults text and RESP framing alike.
			c, err := dialChaos(proxy.Addr(), protoFor(w))
			if err != nil {
				fatal <- fmt.Errorf("worker %d dial: %w", w, err)
				return
			}
			defer c.Close()
			for i := 0; i < opsPer; i++ {
				k, ok := h.pickKey(rng.Intn)
				if !ok {
					return // every key is at its history budget
				}
				switch rng.Intn(10) {
				case 0, 1, 2, 3:
					if err, bad := h.doWireGet(c, k); bad {
						fatal <- fmt.Errorf("worker %d: %w", w, err)
						return
					}
				case 4, 5, 6, 7:
					h.doWireSet(c, k)
				default:
					h.doWireDelete(c, k)
				}
			}
		}()
	}
	wg.Wait()
	close(fatal)
	for err := range fatal {
		t.Fatalf("%s: %v", replay, err)
	}

	// The run must actually have exercised faults, or the seed matrix is
	// vacuous.
	if n := proxy.Stats().Snapshot().Total(); n == 0 {
		t.Errorf("%s: proxy injected no faults", replay)
	}

	// The server must still answer cleanly after the chaos: a direct
	// (unfaulted) read-back of every key, which also joins the history —
	// maxEventsPerKey leaves each key slack for exactly this pass.
	direct := dialTest(t, addr)
	for k := 0; k < chaosKeys; k++ {
		if err, _ := h.doWireGet(direct, k); err != nil {
			t.Fatalf("%s: post-chaos GET on a clean connection: %v", replay, err)
		}
	}
	stats, err := direct.Stats()
	if err != nil {
		t.Fatalf("%s: post-chaos STATS: %v", replay, err)
	}
	if got := stats["conn_panics"]; got != "0" {
		t.Errorf("%s: conn_panics = %s, want 0", replay, got)
	}
	direct.Close()

	proxy.Close()
	stop()
	waitNoGoroutineLeak(t, base, 3)

	checkWireHistory(t, h, replay)
}

// TestChaosCorruptionSurvival turns byte corruption on. No history is
// checked — the protocol cannot detect flipped bytes, so linearizability
// is unfalsifiable here (see the package comment). What must hold: the
// server never panics, cuts poisoned connections, keeps serving clean
// ones, and leaks nothing.
func TestChaosCorruptionSurvival(t *testing.T) {
	base := goroutineBaseline()
	_, addr, stop := bootServer(t, chaosServerConfig(server.BackendSkipList, "gc"))
	proxy, err := faultnet.NewProxy(addr, faultnet.CorruptionFaults(0xC0FFEE))
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	defer proxy.Close()

	opsPer := testenv.Iters(200)
	var wg sync.WaitGroup
	for w := 0; w < chaosWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(0xC0FFEE + int64(w)))
			var c *client.Client
			defer func() {
				if c != nil {
					c.Close()
				}
			}()
			for i := 0; i < opsPer; i++ {
				if c == nil {
					if c, _ = dialChaos(proxy.Addr(), protoFor(w)); c == nil {
						continue
					}
				}
				k := rng.Intn(chaosKeys)
				var err error
				switch rng.Intn(3) {
				case 0:
					_, _, err = c.Get(wireKey(k))
				case 1:
					err = c.Set(wireKey(k), []byte("v"))
				default:
					_, err = c.Delete(wireKey(k))
				}
				if err != nil {
					// A corrupted stream is desynced beyond recovery;
					// abandon the connection and start clean.
					c.Close()
					c = nil
				}
			}
		}()
	}
	wg.Wait()

	if n := proxy.Stats().Snapshot().Corruptions; n == 0 {
		t.Errorf("no corruption was injected; the survival run is vacuous")
	}

	// A clean connection must still get full service.
	direct := dialTest(t, addr)
	if err := direct.Set("survivor", []byte("ok")); err != nil {
		t.Fatalf("post-corruption SET on a clean connection: %v", err)
	}
	if v, found, err := direct.Get("survivor"); err != nil || !found || string(v) != "ok" {
		t.Fatalf("post-corruption GET = %q,%v,%v; want ok,true,nil", v, found, err)
	}
	stats, err := direct.Stats()
	if err != nil {
		t.Fatalf("post-corruption STATS: %v", err)
	}
	if got := stats["conn_panics"]; got != "0" {
		t.Errorf("conn_panics = %s, want 0", got)
	}
	direct.Close()

	proxy.Close()
	stop()
	waitNoGoroutineLeak(t, base, 3)
}
