package server

import (
	"errors"

	"valois/internal/proto"
)

// Batched execution: the connection loop (conn.go) drains every
// fully-buffered request into a []batchEntry, execEntries runs them, and
// the reply phase encodes all outcomes — in request order — into one
// buffer written with a single syscall.
//
// Execution may reorder *keyed* commands (GET/SET/DELETE) within a batch
// to group them by shard, which is what amortizes the per-op costs: one
// shard lookup and one persist logMu acquisition per shard-group instead
// of per command. The reordering is linearizability-safe: commands
// pipelined in one batch are concurrent from the client's point of view
// (it sent them all before reading any reply), and two commands on the
// SAME key always hash to the same shard, where the group executes them
// in batch order — so per-key program order is preserved, which is
// exactly the guarantee a pipelined client can rely on.
//
// Non-keyed commands (RANGE, STATS, PING, QUIT) and read errors are
// barriers: they split the batch into segments and never reorder across
// keyed commands, so a RANGE observes every earlier write in its batch.

// batchEntry is one request in a drained batch plus its outcome. The
// slice of entries is connection-owned scratch, reused across batches.
type batchEntry struct {
	cmd     proto.Command
	readErr error // parse outcome from the codec; nil for executable entries

	shard int  // keyed commands: shard index, set during grouping
	done  bool // keyed commands: already executed by an earlier group pass

	val        []byte // GET result
	found      bool   // GET hit / DELETE deleted
	err        error  // persist append failure (SERVER_ERROR) or errRangeUnordered
	rangeItems []kv   // RANGE result
	statItems  []Stat // STATS result
}

// errRangeUnordered marks a RANGE on a backend without ordered
// iteration; the reply phase turns it into the CLIENT_ERROR the
// one-at-a-time path always produced.
var errRangeUnordered = errors.New("range on unordered backend")

func keyedVerb(v proto.Verb) bool {
	return v == proto.VerbGet || v == proto.VerbSet || v == proto.VerbDelete
}

// execEntries executes a drained batch: maximal runs of consecutive
// keyed commands execute shard-grouped; everything else executes in
// place as a barrier.
func (s *Server) execEntries(entries []batchEntry) {
	i := 0
	for i < len(entries) {
		e := &entries[i]
		if e.readErr != nil {
			i++
			continue
		}
		if !keyedVerb(e.cmd.Verb) {
			s.execMisc(e)
			i++
			continue
		}
		j := i + 1
		for j < len(entries) && entries[j].readErr == nil && keyedVerb(entries[j].cmd.Verb) {
			j++
		}
		s.execKeyedRun(entries[i:j])
		i = j
	}
}

// execKeyedRun executes one run of keyed commands grouped by shard. The
// scan is O(run × groups) with no allocation: for each not-yet-done
// entry, execute it and then sweep forward for every later entry on the
// same shard. A single-command run skips the grouping machinery — the
// empty-pipeline fast path.
func (s *Server) execKeyedRun(run []batchEntry) {
	if len(run) == 1 {
		s.execKeyedSingle(&run[0])
		return
	}
	for k := range run {
		run[k].shard = s.shardIndex(run[k].cmd.Key)
	}
	for k := range run {
		if !run[k].done {
			s.execShardGroup(run[k:], run[k].shard)
		}
	}
}

// execShardGroup executes every not-done entry in run that lives on
// shard si, taking the shard's persist mutex at most once for the whole
// group — the per-batch amortization of the logMu acquisition. The lock
// is taken lazily on the first mutation, so a read-only group never
// serializes against writers, and released via defer so a panicking
// backend (see TestPanicIsolation) cannot leak it.
func (s *Server) execShardGroup(run []batchEntry, si int) {
	sh := s.shards[si]
	locked := false
	defer func() {
		if locked {
			sh.logMu.Unlock()
		}
	}()
	for m := range run {
		e := &run[m]
		if e.done || e.shard != si {
			continue
		}
		e.done = true
		if !locked && s.log != nil && e.cmd.Verb != proto.VerbGet {
			sh.logMu.Lock()
			locked = true
		}
		s.execKeyedLocked(sh, e)
	}
}

// execKeyedSingle is the ungrouped path: one keyed command, taking logMu
// only if this command mutates and persistence is on.
func (s *Server) execKeyedSingle(e *batchEntry) {
	sh := s.shardFor(e.cmd.Key)
	if s.log != nil && e.cmd.Verb != proto.VerbGet {
		sh.logMu.Lock()
		defer sh.logMu.Unlock()
	}
	s.execKeyedLocked(sh, e)
}

// execKeyedLocked executes one keyed command against its shard. Caller
// holds sh.logMu whenever s.log != nil and the command mutates — the
// apply-then-append ordering contract of persist.go.
func (s *Server) execKeyedLocked(sh *shard, e *batchEntry) {
	if s.panicHook != nil {
		s.panicHook(e.cmd)
	}
	switch e.cmd.Verb {
	case proto.VerbGet:
		s.cmdGet.Add(1)
		if v, ok := sh.d.Find(e.cmd.Key); ok {
			s.getHits.Add(1)
			e.val, e.found = v, true
		} else {
			s.getMisses.Add(1)
		}

	case proto.VerbSet:
		s.cmdSet.Add(1)
		sh.set(e.cmd.Key, e.cmd.Value)
		if s.log != nil {
			if err := s.log.Append(e.cmd); err != nil {
				s.persistErrs.Add(1)
				s.cfg.Logf("persist append: %v", err)
				e.err = err
			}
		}

	case proto.VerbDelete:
		s.cmdDelete.Add(1)
		deleted := sh.d.Delete(e.cmd.Key)
		e.found = deleted
		if deleted {
			s.deleteHits.Add(1)
		} else {
			s.deleteMisses.Add(1)
		}
		// A miss mutates nothing and is not logged.
		if deleted && s.log != nil {
			if err := s.log.Append(proto.Command{Verb: proto.VerbDelete, Key: e.cmd.Key}); err != nil {
				s.persistErrs.Add(1)
				s.cfg.Logf("persist append: %v", err)
				e.err = err
			}
		}
	}
}

// execMisc executes a non-keyed command (a batch barrier).
func (s *Server) execMisc(e *batchEntry) {
	if s.panicHook != nil {
		s.panicHook(e.cmd)
	}
	switch e.cmd.Verb {
	case proto.VerbRange:
		s.cmdRange.Add(1)
		if !s.Ordered() {
			s.protoErrs.Add(1)
			e.err = errRangeUnordered
			return
		}
		e.rangeItems = s.rangeMerged(e.cmd.Key, e.cmd.Count)
	case proto.VerbStats:
		s.cmdStats.Add(1)
		e.statItems = s.Stats()
	case proto.VerbPing, proto.VerbQuit:
		// No work; the reply phase answers.
	}
}

// appendEntryReply encodes one entry's outcome. quit is set when the
// connection must close after the reply (QUIT, a fatal client error, or
// a panic already handled by the caller).
func (s *Server) appendEntryReply(codec proto.ServerCodec, dst []byte, e *batchEntry) (out []byte, quit bool) {
	if e.readErr != nil {
		var ce *proto.ClientError
		switch {
		case errors.As(e.readErr, &ce):
			s.protoErrs.Add(1)
			dst = codec.AppendClientError(dst, ce.Msg)
			return dst, ce.Fatal
		case errors.Is(e.readErr, proto.ErrUnknownVerb):
			s.protoErrs.Add(1)
			return codec.AppendUnknownVerb(dst), false
		default:
			// Transport error mid-command: the read deadline expired, the
			// peer reset, or shutdown closed the socket. Nothing to say.
			s.countNetErr(e.readErr)
			return dst, true
		}
	}
	switch e.cmd.Verb {
	case proto.VerbGet:
		dst = codec.AppendGetReply(dst, e.cmd.Key, e.val, e.found)
	case proto.VerbSet:
		if e.err != nil {
			// Applied but not durably logged: indeterminate for the
			// client (see persist.go), so SERVER_ERROR, not STORED.
			dst = codec.AppendServerError(dst, "durability failure")
		} else {
			dst = codec.AppendSetReply(dst)
		}
	case proto.VerbDelete:
		if e.err != nil {
			dst = codec.AppendServerError(dst, "durability failure")
		} else {
			dst = codec.AppendDeleteReply(dst, e.found)
		}
	case proto.VerbRange:
		if e.err != nil {
			dst = codec.AppendClientError(dst, "RANGE requires an ordered backend (list, skiplist, bst)")
			break
		}
		dst = codec.AppendRangeHeader(dst, len(e.rangeItems))
		for _, item := range e.rangeItems {
			dst = codec.AppendRangeItem(dst, item.key, item.value)
		}
		dst = codec.AppendRangeTrailer(dst)
	case proto.VerbStats:
		dst = codec.AppendStatsHeader(dst, len(e.statItems))
		for _, st := range e.statItems {
			dst = codec.AppendStatItem(dst, st.Name, st.Value)
		}
		dst = codec.AppendStatsTrailer(dst)
	case proto.VerbPing:
		dst = codec.AppendPong(dst)
	case proto.VerbQuit:
		return codec.AppendQuit(dst), true
	}
	return dst, false
}
