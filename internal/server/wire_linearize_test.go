package server_test

// Loopback wire-level linearizability: the same history recording as the
// chaos suite, but over clean connections with no fault proxy — every
// operation completes, so the checker sees no Lost events. This isolates
// the serving stack itself: if this test fails, the violation is in the
// server or the §4 structures, not in the fault model.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"valois/internal/server"
	"valois/internal/testenv"
)

func TestWireLinearizable(t *testing.T) {
	for bi, backend := range server.Backends() {
		for mi, mode := range []string{"gc", "rc", "ebr"} {
			t.Run(fmt.Sprintf("%s-%s", backend, mode), func(t *testing.T) {
				seed := int64(bi*2 + mi + 1)
				runWireLinearizable(t, backend, mode, seed)
			})
		}
	}
}

func runWireLinearizable(t *testing.T, backend, mode string, seed int64) {
	_, addr := startServer(t, server.Config{Backend: backend, Mode: mode, Shards: 4})

	const keys = 16
	h := newWireHist(keys)
	workers := 4
	opsPer := testenv.Iters(150)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed<<8 + int64(w)))
			// Workers alternate wire protocols, so every seed checks
			// text and RESP traffic interleaved on one server.
			c := dialTestProto(t, addr, protoFor(w))
			for i := 0; i < opsPer; i++ {
				k, ok := h.pickKey(rng.Intn)
				if !ok {
					return
				}
				var err error
				switch rng.Intn(10) {
				case 0, 1, 2, 3:
					err, _ = h.doWireGet(c, k)
				case 4, 5, 6, 7:
					err = h.doWireSet(c, k)
				default:
					err = h.doWireDelete(c, k)
				}
				if err != nil {
					// No faults are injected here, so every error is real.
					errs <- fmt.Errorf("worker %d op %d: %w", w, i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("clean wire op failed: %v", err)
	}

	checkWireHistory(t, h, fmt.Sprintf("loopback backend=%s mode=%s seed=%d", backend, mode, seed))
}
