package server_test

// In-process durability tests: recovery round-trips across server
// restarts on every backend, the STATS durability counters, and
// snapshot compaction running while the server serves traffic. The
// crash-path (SIGKILL) coverage lives in crashrestart_test.go; these
// tests exercise the graceful path, where Shutdown's log flush makes
// even fsync=no lossless.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"testing"
	"time"

	"valois/internal/client"
	"valois/internal/server"
	"valois/internal/testenv"
)

// bootPersist starts a server whose lifecycle the test drives explicitly
// (no t.Cleanup shutdown — restarts need deterministic stop points).
func bootPersist(t *testing.T, cfg server.Config) (*server.Server, string, func()) {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
		if err := <-serveErr; !errors.Is(err, server.ErrServerClosed) {
			t.Fatalf("Serve returned %v, want ErrServerClosed", err)
		}
	}
	return srv, ln.Addr().String(), stop
}

func statInt(t *testing.T, stats map[string]string, name string) int {
	t.Helper()
	v, ok := stats[name]
	if !ok {
		t.Fatalf("STATS missing %q", name)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		t.Fatalf("STATS %s = %q, not a number", name, v)
	}
	return n
}

// TestServerRecovery round-trips state across a graceful restart on
// every backend × memory mode: sets (including overwrites), deletes,
// and a known survivor population, with an exact recovery_replayed
// assertion — the log must hold exactly the mutations that were
// acknowledged, nothing more.
func TestServerRecovery(t *testing.T) {
	for _, backend := range server.Backends() {
		for _, mode := range []string{"gc", "rc", "ebr"} {
			t.Run(backend+"/"+mode, func(t *testing.T) {
				dir := t.TempDir()
				cfg := server.Config{
					Backend: backend, Mode: mode, Shards: 4, Buckets: 64,
					PersistDir: dir, FsyncPolicy: "no",
				}
				_, addr, stop := bootPersist(t, cfg)
				c, err := client.Dial(addr, client.Options{})
				if err != nil {
					t.Fatalf("Dial: %v", err)
				}

				// 20 keys set, 5 of them overwritten, 5 others deleted,
				// one delete-miss (not a mutation, must not be logged).
				mutations := 0
				for i := 0; i < 20; i++ {
					if err := c.Set(key(i), []byte("v"+strconv.Itoa(i))); err != nil {
						t.Fatalf("Set: %v", err)
					}
					mutations++
				}
				for i := 0; i < 5; i++ {
					if err := c.Set(key(i), []byte("w"+strconv.Itoa(i))); err != nil {
						t.Fatalf("Set overwrite: %v", err)
					}
					mutations++
				}
				for i := 5; i < 10; i++ {
					if deleted, err := c.Delete(key(i)); err != nil || !deleted {
						t.Fatalf("Delete(%s) = %v, %v; want hit", key(i), deleted, err)
					}
					mutations++
				}
				if deleted, err := c.Delete("never-set"); err != nil || deleted {
					t.Fatalf("Delete(never-set) = %v, %v; want clean miss", deleted, err)
				}

				stats, err := c.Stats()
				if err != nil {
					t.Fatalf("Stats: %v", err)
				}
				if got := statInt(t, stats, "aof_records"); got != mutations {
					t.Errorf("aof_records = %d, want %d", got, mutations)
				}
				if statInt(t, stats, "aof_bytes") <= 0 {
					t.Errorf("aof_bytes = %s, want > 0", stats["aof_bytes"])
				}
				if got := statInt(t, stats, "recovery_replayed"); got != 0 {
					t.Errorf("recovery_replayed = %d on a fresh dir, want 0", got)
				}
				c.Close()
				stop()

				// Restart from disk and verify the exact surviving state.
				srv2, addr2, stop2 := bootPersist(t, cfg)
				defer stop2()
				if got := srv2.Recovery().Replayed(); got != mutations {
					t.Errorf("recovery replayed %d records, want %d", got, mutations)
				}
				c2, err := client.Dial(addr2, client.Options{})
				if err != nil {
					t.Fatalf("Dial after restart: %v", err)
				}
				defer c2.Close()
				for i := 0; i < 20; i++ {
					v, found, err := c2.Get(key(i))
					if err != nil {
						t.Fatalf("Get(%s): %v", key(i), err)
					}
					want, wantFound := "v"+strconv.Itoa(i), true
					switch {
					case i < 5:
						want = "w" + strconv.Itoa(i)
					case i < 10:
						wantFound = false
					}
					if found != wantFound || (found && string(v) != want) {
						t.Errorf("after restart Get(%s) = %q,%v; want %q,%v", key(i), v, found, want, wantFound)
					}
				}
				stats2, err := c2.Stats()
				if err != nil {
					t.Fatalf("Stats after restart: %v", err)
				}
				if got := statInt(t, stats2, "recovery_replayed"); got != mutations {
					t.Errorf("STATS recovery_replayed = %d, want %d", got, mutations)
				}
			})
		}
	}
}

func key(i int) string { return "rk:" + strconv.Itoa(i) }

// TestServerSnapshotWhileServing runs snapshot compaction concurrently
// with live SET/DELETE traffic, then restarts and checks the recovered
// state matches what the pre-restart server last acknowledged, key by
// key. Snapshots are cursor scans and must not block or corrupt anything
// — this is the server-level companion of persist's scan_test.
func TestServerSnapshotWhileServing(t *testing.T) {
	const keys = 64
	cfg := server.Config{
		Backend: server.BackendSkipList, Mode: "gc", Shards: 4,
		PersistDir: t.TempDir(), FsyncPolicy: "no",
	}
	srv, addr, stop := bootPersist(t, cfg)

	var wg sync.WaitGroup
	stopCh := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr, client.Options{})
			if err != nil {
				t.Errorf("writer dial: %v", err)
				return
			}
			defer c.Close()
			for i := 0; ; i++ {
				select {
				case <-stopCh:
					return
				default:
				}
				k := fmt.Sprintf("sk:%02d", (w*17+i)%keys)
				if i%5 == 4 {
					if _, err := c.Delete(k); err != nil {
						t.Errorf("writer delete: %v", err)
						return
					}
				} else if err := c.Set(k, []byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("writer set: %v", err)
					return
				}
			}
		}(w)
	}
	runs := testenv.Iters(8)
	for i := 0; i < runs; i++ {
		if err := srv.Snapshot(); err != nil {
			t.Fatalf("Snapshot %d: %v", i, err)
		}
	}
	close(stopCh)
	wg.Wait()

	// Record the acknowledged final state, then restart and compare.
	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	type kv struct {
		val   string
		found bool
	}
	final := make(map[string]kv, keys)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("sk:%02d", i)
		v, found, err := c.Get(k)
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		final[k] = kv{string(v), found}
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if got := statInt(t, stats, "snapshot_runs"); got != runs {
		t.Errorf("snapshot_runs = %d, want %d", got, runs)
	}
	if statInt(t, stats, "snapshot_last_unix") <= 0 {
		t.Errorf("snapshot_last_unix = %s, want > 0", stats["snapshot_last_unix"])
	}
	c.Close()
	stop()

	_, addr2, stop2 := bootPersist(t, cfg)
	defer stop2()
	c2, err := client.Dial(addr2, client.Options{})
	if err != nil {
		t.Fatalf("Dial after restart: %v", err)
	}
	defer c2.Close()
	for k, want := range final {
		v, found, err := c2.Get(k)
		if err != nil {
			t.Fatalf("Get(%s) after restart: %v", k, err)
		}
		if found != want.found || (found && string(v) != want.val) {
			t.Errorf("after restart %s = %q,%v; want %q,%v", k, v, found, want.val, want.found)
		}
	}
}

// TestServerSnapshotIntervalLoop exercises the background compaction
// goroutine end to end: with a short interval, snapshot_runs climbs on
// its own and shutdown stops the loop cleanly (the leak check is the
// assertion that matters).
func TestServerSnapshotIntervalLoop(t *testing.T) {
	base := goroutineBaseline()
	cfg := server.Config{
		Backend: server.BackendList, Mode: "rc", Shards: 2,
		PersistDir: t.TempDir(), FsyncPolicy: "everysec",
		SnapshotInterval: 10 * time.Millisecond,
	}
	_, addr, stop := bootPersist(t, cfg)
	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := c.Set(key(i), []byte("v")); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		stats, err := c.Stats()
		if err != nil {
			t.Fatalf("Stats: %v", err)
		}
		if statInt(t, stats, "snapshot_runs") >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background snapshot loop never ran twice")
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.Close()
	stop()
	waitNoGoroutineLeak(t, base, 2)
}

// TestServerPersistStatsDisabled pins that the durability counters are
// present (all zero) when persistence is off, so tooling can read them
// unconditionally.
func TestServerPersistStatsDisabled(t *testing.T) {
	_, addr := startServer(t, server.Config{Backend: server.BackendSkipList, Shards: 2})
	c := dialTest(t, addr)
	stats, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	for _, name := range []string{"aof_records", "aof_bytes", "aof_fsyncs", "snapshot_runs", "snapshot_last_unix", "recovery_replayed", "persist_errors"} {
		if got := statInt(t, stats, name); got != 0 {
			t.Errorf("%s = %d with persistence disabled, want 0", name, got)
		}
	}
}
