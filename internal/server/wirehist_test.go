package server_test

import (
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"valois/internal/client"
	"valois/internal/linearize"
)

// This file holds the wire-level history recording shared by the
// loopback linearizability test and the chaos suite: operations issued
// through internal/client are timestamped with a process-wide atomic
// clock and recorded as linearize events, with operations whose
// response never arrived marked Lost (the ambiguous-retry case: the
// server may or may not have executed them).

// maxEventsPerKey keeps per-key subhistories under the checker's
// 63-event memoization cap, with slack for the final read-back pass.
const maxEventsPerKey = 56

// wireHist collects a wire-level operation history.
type wireHist struct {
	clock  atomic.Int64
	setIDs atomic.Int64 // unique value per SET, so reads identify writers
	perKey []atomic.Int64

	mu     sync.Mutex
	events []linearize.Event
}

func newWireHist(keys int) *wireHist {
	return &wireHist{perKey: make([]atomic.Int64, keys)}
}

func (h *wireHist) record(e linearize.Event) {
	h.mu.Lock()
	h.events = append(h.events, e)
	h.mu.Unlock()
}

// pickKey draws a key from rng that still has history budget, redirecting
// away from keys that already hit the checker's per-key cap. ok=false
// when every probed key is full (the caller skips the operation).
func (h *wireHist) pickKey(intn func(int) int) (int, bool) {
	for try := 0; try < 16; try++ {
		k := intn(len(h.perKey))
		if h.perKey[k].Add(1) <= maxEventsPerKey {
			return k, true
		}
		h.perKey[k].Add(-1)
	}
	return 0, false
}

// history returns the recorded events. Call only at quiescence.
func (h *wireHist) history() []linearize.Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]linearize.Event(nil), h.events...)
}

func wireKey(k int) string { return "wk:" + strconv.Itoa(k) }

// parseWireValue maps a stored value back to the int the history uses.
// Every value this suite stores is a decimal set id; anything else means
// the wire corrupted data on a path that must be fault-free.
func parseWireValue(v []byte) (int, error) {
	return strconv.Atoi(string(v))
}

// doWireGet issues a GET, recording a completed Find event or nothing
// on a transport error (a lost read has no effect on the history).
// fatal reports a malformed stored value — a data-integrity failure the
// caller must surface, not a transient to retry through.
func (h *wireHist) doWireGet(c *client.Client, k int) (err error, fatal bool) {
	start := h.clock.Add(1)
	v, found, err := c.Get(wireKey(k))
	end := h.clock.Add(1)
	if err != nil {
		return err, false
	}
	val := 0
	if found {
		if val, err = parseWireValue(v); err != nil {
			return err, true
		}
	}
	h.record(linearize.Event{Op: linearize.OpFind, Key: k, Value: val, OK: found, Start: start, End: end})
	return nil, false
}

// doWireSet issues a SET with a unique value, recording a completed
// event or a Lost one when the response did not arrive.
func (h *wireHist) doWireSet(c *client.Client, k int) error {
	id := int(h.setIDs.Add(1))
	start := h.clock.Add(1)
	err := c.Set(wireKey(k), []byte(strconv.Itoa(id)))
	end := h.clock.Add(1)
	if err != nil {
		h.record(linearize.Event{Op: linearize.OpInsert, Key: k, Value: id, Start: start, Lost: true})
		return err
	}
	h.record(linearize.Event{Op: linearize.OpInsert, Key: k, Value: id, OK: true, Start: start, End: end})
	return nil
}

// doWireDelete issues a DELETE, recording completed or Lost.
func (h *wireHist) doWireDelete(c *client.Client, k int) error {
	start := h.clock.Add(1)
	deleted, err := c.Delete(wireKey(k))
	end := h.clock.Add(1)
	if err != nil {
		h.record(linearize.Event{Op: linearize.OpDelete, Key: k, Start: start, Lost: true})
		return err
	}
	h.record(linearize.Event{Op: linearize.OpDelete, Key: k, OK: deleted, Start: start, End: end})
	return nil
}

// checkWireHistory runs the wire-spec checker and fails the test with a
// replayable context string (backend, seed) on any violation.
func checkWireHistory(t *testing.T, h *wireHist, context string) {
	t.Helper()
	events := h.history()
	res := linearize.CheckKV(events)
	if !res.OK {
		t.Errorf("%s: history of %d events NOT linearizable at key %d:", context, len(events), res.BadKey)
		for _, e := range res.BadHistory {
			t.Errorf("  %v", e)
		}
	}
}

// goroutineBaseline snapshots the live goroutine count before a test
// spawns its server and clients.
func goroutineBaseline() int { return runtime.NumGoroutine() }

// waitNoGoroutineLeak polls until the goroutine count settles back to
// the baseline (plus slack for runtime background goroutines), failing
// the test if it never does — a leaked connection handler, pump, or
// client goroutine holds the count up.
func waitNoGoroutineLeak(t *testing.T, baseline, slack int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+slack {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d running, baseline %d (slack %d)", runtime.NumGoroutine(), baseline, slack)
}
