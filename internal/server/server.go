// Package server implements valoisd, a TCP key-value server whose entire
// storage engine is the paper's §4 lock-free dictionary structures. Keys
// are sharded by hash across N independent dictionary instances so that
// the lock-free structures — not the accept loop or any server-side lock —
// are where concurrent operations meet; each connection is served by its
// own goroutine, exactly the paper's process-per-operation model with
// goroutines standing in for processes.
//
// The wire protocol is the memcached-style text protocol of
// internal/proto. The backend structure (sorted list, hash table, skip
// list, or BST) and the §5 memory mode (GC or RC) are chosen at
// construction, making the server a network-facing harness for comparing
// the paper's structures under real socket-driven load (cmd/lfload).
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"valois/internal/proto"

	"valois/internal/bst"
	"valois/internal/dict"
	"valois/internal/mm"
	"valois/internal/persist"
	"valois/internal/primitive"
	"valois/internal/skiplist"
)

// ErrServerClosed is returned by Serve after Shutdown begins.
var ErrServerClosed = errors.New("server: closed")

// Backend names a dictionary structure from §4 of the paper.
const (
	BackendList     = "list"     // §4.1 single sorted lock-free list
	BackendHash     = "hash"     // §4.1 hash table of sorted lists
	BackendSkipList = "skiplist" // §4.1 lock-free skip list
	BackendBST      = "bst"      // §4.2 binary search tree with aux nodes
)

// Backends lists the valid Config.Backend values.
func Backends() []string {
	return []string{BackendList, BackendHash, BackendSkipList, BackendBST}
}

// Config parameterizes a Server.
type Config struct {
	// Backend selects the §4 structure each shard instantiates:
	// "list", "hash", "skiplist" (default), or "bst".
	Backend string
	// Mode selects cell reclamation: "gc" (default), "rc" (§5), or
	// "ebr" (epoch-based reclamation over the §5 free list).
	Mode string
	// Shards is the number of independent dictionary instances keys are
	// hashed across. Default 16.
	Shards int
	// Buckets is the bucket count per shard for the hash backend.
	// Default 1024.
	Buckets int

	// IdleTimeout bounds how long a connection may sit between requests
	// (waiting for the first byte of the next command). Expiry counts as
	// conn_timeouts and closes the connection. Default 5m; negative
	// disables.
	IdleTimeout time.Duration
	// ReadTimeout bounds how long one request may take to arrive once
	// its first byte has been read — the slow-loris guard: a client
	// trickling a command one byte at a time is cut when the whole
	// command has not arrived in time. Default 30s; negative disables.
	ReadTimeout time.Duration
	// WriteTimeout bounds each reply flush, so a client that stops
	// reading cannot pin a handler goroutine on a full socket buffer.
	// Default 30s; negative disables.
	WriteTimeout time.Duration
	// MaxConns caps concurrently served connections. Connections over
	// the cap are answered with SERVER_ERROR and closed (counted as
	// conn_rejected); the accept loop itself never blocks on them.
	// Default 0 = unlimited.
	MaxConns int

	// Protocol selects the wire protocol served: proto.ProtocolText,
	// proto.ProtocolRESP, or proto.ProtocolAuto (the default), which
	// sniffs each connection from its first byte — '*' opens a RESP
	// array, anything else is the text protocol. (A RESP client that
	// opens with an inline command is indistinguishable from text; use
	// the forced setting for inline-only clients.)
	Protocol string
	// NoBatch disables pipelined batch draining: each loop iteration
	// reads, executes, and answers exactly one command. For comparison
	// runs and bisection; the default (false) drains every fully
	// buffered command into one batched execution.
	NoBatch bool

	// PersistDir, when non-empty, enables durability: state is recovered
	// from this directory at New (latest snapshot + append-only log
	// tail) and every applied mutation is appended to the log from then
	// on. Empty (the default) keeps the server purely in-memory.
	PersistDir string
	// FsyncPolicy selects when the append-only log is fsynced:
	// "always" (before each mutation's reply), "everysec" (background,
	// the default), or "no" (leave it to the OS). Only meaningful with
	// PersistDir set.
	FsyncPolicy string
	// SnapshotInterval, when positive, runs background snapshot
	// compaction every interval while serving. Zero disables; the log
	// then grows until Snapshot is called explicitly. Only meaningful
	// with PersistDir set.
	SnapshotInterval time.Duration

	// Logf, if set, receives connection-level diagnostics.
	Logf func(format string, args ...any)
}

// Default connection deadlines (see Config).
const (
	DefaultIdleTimeout  = 5 * time.Minute
	DefaultReadTimeout  = 30 * time.Second
	DefaultWriteTimeout = 30 * time.Second
)

// ordered is the iteration surface shared by the three ordered backends;
// the hash backend does not provide it and RANGE is rejected there.
type ordered interface {
	RangeFrom(start string, f func(key string, value []byte) bool)
}

// shard is one independent dictionary instance.
type shard struct {
	d     dict.Dictionary[string, []byte]
	ord   ordered         // nil for the hash backend
	mem   func() mm.Stats // §5 manager counters
	size  func() int      // snapshot item count
	close func()          // release cells (required under RC)

	// snap streams the shard's live bindings through emit (stopping when
	// emit returns false) via the backend's lock-free cursor scan; the
	// hash backend iterates bucket by bucket.
	snap func(emit func(key string, value []byte) bool)

	// logMu serializes apply+append on the mutation path when
	// persistence is enabled, so the log's record order matches the
	// linearization order of same-shard mutations (see persist.go).
	logMu sync.Mutex
}

// Server is a valoisd instance. Create with New, start with Serve or
// ListenAndServe, stop with Shutdown.
type Server struct {
	cfg    Config
	mode   mm.Mode
	shards []*shard
	start  time.Time

	mu      sync.Mutex
	ln      net.Listener
	conns   map[*conn]struct{}
	closing bool

	wg sync.WaitGroup // live connection handlers

	closeShards sync.Once

	// Durability state (see persist.go); log is nil when PersistDir is
	// empty and every field below then stays at its zero value.
	log          *persist.Log
	recovery     persist.RecoveryInfo
	replayed     atomic.Int64
	persistErrs  atomic.Int64
	snapStop     chan struct{}
	snapStopOnce sync.Once
	snapStart    sync.Once
	snapWG       sync.WaitGroup

	// panicHook, when set (tests only), runs inside dispatch so panic
	// isolation can be exercised without a real server bug.
	panicHook func(cmd proto.Command)

	// Counters exposed by STATS.
	totalConns   atomic.Int64
	connTimeouts atomic.Int64
	connResets   atomic.Int64
	connRejected atomic.Int64
	connPanics   atomic.Int64
	protoErrs    atomic.Int64
	cmdGet       atomic.Int64
	cmdSet       atomic.Int64
	cmdDelete    atomic.Int64
	cmdRange     atomic.Int64
	cmdStats     atomic.Int64
	getHits      atomic.Int64
	getMisses    atomic.Int64
	deleteHits   atomic.Int64
	deleteMisses atomic.Int64

	// Wire-level counters (the batched serving path, conn.go/batch.go).
	batches    atomic.Int64 // batches of size ≥ 2 executed
	batchedOps atomic.Int64 // commands that rode in those batches
	bytesIn    atomic.Int64 // bytes read off client sockets
	bytesOut   atomic.Int64 // bytes written to client sockets
}

// New returns a configured server with its shards allocated.
func New(cfg Config) (*Server, error) {
	if cfg.Backend == "" {
		cfg.Backend = BackendSkipList
	}
	if cfg.Mode == "" {
		cfg.Mode = "gc"
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	if cfg.Buckets <= 0 {
		cfg.Buckets = 1024
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = DefaultIdleTimeout
	}
	if cfg.ReadTimeout == 0 {
		cfg.ReadTimeout = DefaultReadTimeout
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	switch cfg.Protocol {
	case "":
		cfg.Protocol = proto.ProtocolAuto
	case proto.ProtocolText, proto.ProtocolRESP, proto.ProtocolAuto:
	default:
		return nil, fmt.Errorf("server: unknown protocol %q (want text, resp, or auto)", cfg.Protocol)
	}
	mode, ok := mm.ParseMode(cfg.Mode)
	if !ok {
		return nil, fmt.Errorf("server: unknown memory mode %q (want gc, rc, or ebr)", cfg.Mode)
	}
	s := &Server{
		cfg:      cfg,
		mode:     mode,
		shards:   make([]*shard, cfg.Shards),
		start:    time.Now(),
		conns:    make(map[*conn]struct{}),
		snapStop: make(chan struct{}),
	}
	for i := range s.shards {
		sh, err := newShard(cfg, mode)
		if err != nil {
			return nil, err
		}
		s.shards[i] = sh
	}
	if cfg.PersistDir != "" {
		if err := s.openPersist(); err != nil {
			s.closeShards.Do(func() {
				for _, sh := range s.shards {
					sh.close()
				}
			})
			return nil, err
		}
	}
	return s, nil
}

func newShard(cfg Config, mode mm.Mode) (*shard, error) {
	switch cfg.Backend {
	case BackendList:
		d := dict.NewSortedList[string, []byte](mode)
		return &shard{d: d, ord: d, snap: snapOrdered(d), mem: d.MemStats, size: d.Len, close: d.Close}, nil
	case BackendHash:
		d := dict.NewHash[string, []byte](cfg.Buckets, mode, dict.HashString)
		return &shard{d: d, snap: snapHash(d), mem: d.MemStats, size: d.Len, close: d.Close}, nil
	case BackendSkipList:
		d := skiplist.New[string, []byte](mode)
		return &shard{d: d, ord: d, snap: snapOrdered(d), mem: d.MemStats, size: d.Len, close: d.Close}, nil
	case BackendBST:
		d := bst.New[string, []byte](mode)
		return &shard{d: d, ord: d, snap: snapOrdered(d), mem: d.MemStats, size: d.Len, close: d.Close}, nil
	default:
		return nil, fmt.Errorf("server: unknown backend %q (want one of %v)", cfg.Backend, Backends())
	}
}

// snapOrdered scans an ordered backend from the smallest key — one
// traversal-consistent cursor walk (Fig 12/13 cursor plumbing).
func snapOrdered(o ordered) func(func(string, []byte) bool) {
	return func(emit func(string, []byte) bool) {
		o.RangeFrom("", emit)
	}
}

// snapHash scans the hash backend bucket by bucket; each bucket is a
// sorted list with the same cursor-scan guarantees, so the snapshot is
// per-bucket consistent (global order across buckets is irrelevant — the
// snapshot is a set of SET records).
func snapHash(h *dict.Hash[string, []byte]) func(func(string, []byte) bool) {
	return func(emit func(string, []byte) bool) {
		for i := 0; i < h.NumBuckets(); i++ {
			cont := true
			h.Bucket(i).RangeFrom("", func(k string, v []byte) bool {
				cont = emit(k, v)
				return cont
			})
			if !cont {
				return
			}
		}
	}
}

// Ordered reports whether the configured backend supports RANGE.
func (s *Server) Ordered() bool { return s.shards[0].ord != nil }

// Recovery reports what New recovered from PersistDir (zero value when
// persistence is disabled or the directory was empty).
func (s *Server) Recovery() persist.RecoveryInfo { return s.recovery }

// shardIndex hashes a key to its shard's index; the batch executor uses
// the index directly to group same-shard commands.
func (s *Server) shardIndex(key string) int {
	return int(dict.HashString(key) % uint64(len(s.shards)))
}

// shardFor hashes a key to its shard.
func (s *Server) shardFor(key string) *shard {
	return s.shards[s.shardIndex(key)]
}

// set is an upsert: the paper's Insert (Figure 12) refuses duplicate keys
// rather than replacing, so SET loops delete-then-insert until its insert
// wins. Each iteration is lock-free; the loop retries only when another
// goroutine re-inserted the key in the window, so it terminates unless the
// key is under perpetual contention from other writers. Retries back off
// exponentially (§2.1): when several connections SET the same hot key,
// immediate retries just feed each other's delete-then-insert windows.
func (sh *shard) set(key string, value []byte) {
	var backoff primitive.Backoff
	for {
		if sh.d.Insert(key, value) {
			return
		}
		sh.d.Delete(key)
		backoff.Wait()
	}
}

// Addr returns the listening address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// ListenAndServe listens on addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln, spawning one handler goroutine per
// connection, until Shutdown closes the listener. It always returns a
// non-nil error; after Shutdown the error is ErrServerClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()

	s.snapStart.Do(func() {
		if s.log != nil && s.cfg.SnapshotInterval > 0 {
			s.snapWG.Add(1)
			go s.snapshotLoop()
		}
	})

	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.closing
			s.mu.Unlock()
			if closing {
				return ErrServerClosed
			}
			return err
		}
		c := &conn{srv: s, nc: nc}
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			nc.Close()
			return ErrServerClosed
		}
		if s.cfg.MaxConns > 0 && len(s.conns) >= s.cfg.MaxConns {
			s.mu.Unlock()
			s.connRejected.Add(1)
			s.wg.Add(1)
			go s.rejectConn(nc) // clean rejection off the accept path
			continue
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.totalConns.Add(1)
		go c.serve()
	}
}

// rejectConn answers a connection over the MaxConns cap: one
// SERVER_ERROR reply under a short write deadline, then close. It runs
// on its own goroutine so a rejected client that refuses to read cannot
// stall the accept loop. Nothing has been read from the connection, so
// auto-detect is impossible; only a forced RESP configuration rejects in
// RESP framing.
func (s *Server) rejectConn(nc net.Conn) {
	defer s.wg.Done()
	nc.SetWriteDeadline(time.Now().Add(time.Second))
	var msg []byte
	if s.cfg.Protocol == proto.ProtocolRESP {
		msg = proto.AppendRESPError(nil, "SERVER_ERROR", "too many connections")
	} else {
		msg = []byte("SERVER_ERROR too many connections\r\n")
	}
	nc.Write(msg)
	nc.Close()
}

// countNetErr classifies a transport error into the connection-health
// counters: deadline expiries are conn_timeouts, anything else except a
// clean EOF is conn_resets (the peer vanished mid-exchange).
func (s *Server) countNetErr(err error) {
	var nerr net.Error
	switch {
	case errors.As(err, &nerr) && nerr.Timeout():
		s.connTimeouts.Add(1)
	case !errors.Is(err, io.EOF):
		s.connResets.Add(1)
	}
}

func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// Shutdown stops the server gracefully: it closes the listener, lets every
// connection finish the request it is currently executing, closes idle
// connections immediately, and waits for all handlers to drain. If ctx
// expires first, remaining connections are closed forcibly and ctx's error
// is returned. After the handlers drain the shards are closed, returning
// their cells to the §5 managers (observable as mm_reclaims under RC).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closing = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.beginShutdown()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-done
		err = ctx.Err()
	}
	// Handlers have drained (or been cut): no more appends are coming.
	// Stop the snapshot loop, then close the log — Close flushes and
	// fsyncs, so a graceful shutdown loses nothing even under fsync=no.
	s.stopSnapshots()
	s.closeShards.Do(func() {
		for _, sh := range s.shards {
			sh.close()
		}
		if s.log != nil {
			if cerr := s.log.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	})
	return err
}

// Stat is one STATS line.
type Stat struct {
	Name  string
	Value string
}

// Stats returns the server's statistics snapshot: identity, connection and
// per-verb counters, per-shard item counts, and the summed §5 memory
// manager counters.
func (s *Server) Stats() []Stat {
	s.mu.Lock()
	currConns := len(s.conns)
	s.mu.Unlock()

	items := 0
	perShard := make([]int, len(s.shards))
	var mem mm.Stats
	for i, sh := range s.shards {
		perShard[i] = sh.size()
		items += perShard[i]
		mem.Add(sh.mem())
	}

	n := func(v int64) string { return fmt.Sprintf("%d", v) }
	stats := []Stat{
		{"backend", s.cfg.Backend},
		{"mode", s.cfg.Mode},
		{"shards", n(int64(len(s.shards)))},
		{"uptime_seconds", n(int64(time.Since(s.start).Seconds()))},
		{"curr_connections", n(int64(currConns))},
		{"total_connections", n(s.totalConns.Load())},
		{"cmd_get", n(s.cmdGet.Load())},
		{"cmd_set", n(s.cmdSet.Load())},
		{"cmd_delete", n(s.cmdDelete.Load())},
		{"cmd_range", n(s.cmdRange.Load())},
		{"cmd_stats", n(s.cmdStats.Load())},
		{"get_hits", n(s.getHits.Load())},
		{"get_misses", n(s.getMisses.Load())},
		{"delete_hits", n(s.deleteHits.Load())},
		{"delete_misses", n(s.deleteMisses.Load())},
		{"protocol_errors", n(s.protoErrs.Load())},
		// Wire counters: batches of pipelined commands executed as one
		// dispatch, how many commands rode in them, and raw socket bytes
		// in each direction.
		{"batches", n(s.batches.Load())},
		{"batched_ops", n(s.batchedOps.Load())},
		{"bytes_in", n(s.bytesIn.Load())},
		{"bytes_out", n(s.bytesOut.Load())},
		// Connection-health counters (the hardening layer): deadline
		// cuts, peer resets, MaxConns rejections, recovered panics.
		{"conn_timeouts", n(s.connTimeouts.Load())},
		{"conn_resets", n(s.connResets.Load())},
		{"conn_rejected", n(s.connRejected.Load())},
		{"conn_panics", n(s.connPanics.Load())},
		{"curr_items", n(int64(items))},
		{"mm_allocs", n(mem.Allocs)},
		{"mm_reclaims", n(mem.Reclaims)},
		{"mm_live", n(mem.Live())},
		{"mm_created", n(mem.Created)},
		// Free-list behavior (all zero under mode=gc, which has no free
		// list): pops/pushes are the Fig 17/18 traffic, grows the arena
		// growth events, steals the cross-stripe pops, and stripes the
		// total stripe count across shards.
		{"mm_pops", n(mem.Pops)},
		{"mm_pushes", n(mem.Pushes)},
		{"mm_grows", n(mem.Grows)},
		{"mm_steals", n(mem.Steals)},
		{"mm_stripes", n(int64(mem.Stripes))},
		// Epoch-based reclamation gauges (zero under gc and rc): the
		// current epoch and the limbo population, summed across shards —
		// activity indicators, not exact globals.
		{"mm_epoch", n(mem.Epoch)},
		{"mm_limbo", n(mem.Limbo)},
	}
	stats = append(stats, s.persistStats()...)
	for i, c := range perShard {
		stats = append(stats, Stat{fmt.Sprintf("shard%d_items", i), n(int64(c))})
	}
	return stats
}

// rangeMerged collects up to count items with key ≥ start across all
// shards and merges them into global key order (each shard is
// independently sorted; the merge re-establishes the total order).
func (s *Server) rangeMerged(start string, count int) []kv {
	var all []kv
	for _, sh := range s.shards {
		taken := 0
		sh.ord.RangeFrom(start, func(k string, v []byte) bool {
			all = append(all, kv{k, v})
			taken++
			return taken < count
		})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].key < all[j].key })
	if len(all) > count {
		all = all[:count]
	}
	return all
}

type kv struct {
	key   string
	value []byte
}
