package server

import "valois/internal/proto"

// SetPanicHook installs a hook that runs inside dispatch, so tests can
// make a handler panic on demand and verify per-connection isolation.
// Install before Serve; the hook runs on connection goroutines.
func (s *Server) SetPanicHook(f func(cmd proto.Command)) { s.panicHook = f }
