package server_test

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"valois/internal/client"
	"valois/internal/proto"
	"valois/internal/server"
)

// startServer boots a server on a loopback listener and tears it down with
// the test. It returns the server and its dial address.
func startServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveErr; !errors.Is(err, server.ErrServerClosed) {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	})
	return srv, ln.Addr().String()
}

func dialTest(t *testing.T, addr string) *client.Client {
	return dialTestProto(t, addr, proto.ProtocolText)
}

func dialTestProto(t *testing.T, addr, protocol string) *client.Client {
	t.Helper()
	c, err := client.Dial(addr, client.Options{Protocol: protocol})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// protoFor alternates wire protocols by index, so a suite's worker pool
// exercises text and RESP against the same auto-detecting server in the
// same run.
func protoFor(i int) string {
	if i%2 == 1 {
		return proto.ProtocolRESP
	}
	return proto.ProtocolText
}

func TestServerBasicOps(t *testing.T) {
	for _, backend := range server.Backends() {
		for _, mode := range []string{"gc", "rc", "ebr"} {
			for _, protocol := range []string{proto.ProtocolText, proto.ProtocolRESP} {
				t.Run(backend+"/"+mode+"/"+protocol, func(t *testing.T) {
					_, addr := startServer(t, server.Config{Backend: backend, Mode: mode, Shards: 4, Buckets: 64})
					c := dialTestProto(t, addr, protocol)

					if _, found, err := c.Get("missing"); err != nil || found {
						t.Fatalf("Get(missing) = %v found=%v, want miss", err, found)
					}
					if err := c.Set("k1", []byte("v1")); err != nil {
						t.Fatalf("Set: %v", err)
					}
					if v, found, err := c.Get("k1"); err != nil || !found || string(v) != "v1" {
						t.Fatalf("Get(k1) = %q,%v,%v; want v1", v, found, err)
					}
					// SET replaces: the server upserts even though the paper's
					// Insert refuses duplicates.
					if err := c.Set("k1", []byte("v2")); err != nil {
						t.Fatalf("Set overwrite: %v", err)
					}
					if v, _, _ := c.Get("k1"); string(v) != "v2" {
						t.Fatalf("Get after overwrite = %q, want v2", v)
					}
					if deleted, err := c.Delete("k1"); err != nil || !deleted {
						t.Fatalf("Delete(k1) = %v,%v; want true", deleted, err)
					}
					if deleted, err := c.Delete("k1"); err != nil || deleted {
						t.Fatalf("second Delete(k1) = %v,%v; want false", deleted, err)
					}
					// Binary-safe values.
					raw := []byte("line1\r\nline2\x00\xff")
					if err := c.Set("bin", raw); err != nil {
						t.Fatalf("Set binary: %v", err)
					}
					if v, _, _ := c.Get("bin"); !bytes.Equal(v, raw) {
						t.Fatalf("Get binary = %q, want %q", v, raw)
					}
				})
			}
		}
	}
}

func TestServerRange(t *testing.T) {
	srv, addr := startServer(t, server.Config{Backend: server.BackendSkipList, Shards: 4})
	c := dialTest(t, addr)
	if !srv.Ordered() {
		t.Fatal("skiplist backend should be ordered")
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := c.Set(fmt.Sprintf("key:%03d", i), []byte{byte(i)}); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	// The merge across shards must re-establish global key order.
	entries, err := c.Range("key:010", 20)
	if err != nil {
		t.Fatalf("Range: %v", err)
	}
	if len(entries) != 20 {
		t.Fatalf("Range returned %d entries, want 20", len(entries))
	}
	for i, e := range entries {
		want := fmt.Sprintf("key:%03d", 10+i)
		if e.Key != want {
			t.Fatalf("entries[%d].Key = %q, want %q", i, e.Key, want)
		}
	}
	// Count larger than remaining items.
	entries, err = c.Range("key:045", 100)
	if err != nil || len(entries) != 5 {
		t.Fatalf("tail Range = %d entries, %v; want 5", len(entries), err)
	}
}

func TestServerRangeUnorderedBackend(t *testing.T) {
	_, addr := startServer(t, server.Config{Backend: server.BackendHash, Shards: 2, Buckets: 16})
	c := dialTest(t, addr)
	_, err := c.Range("a", 10)
	var re *proto.ReplyError
	if !errors.As(err, &re) || re.Kind != "CLIENT_ERROR" {
		t.Fatalf("Range on hash backend = %v, want CLIENT_ERROR reply", err)
	}
	// The connection survives a CLIENT_ERROR.
	if err := c.Set("a", []byte("1")); err != nil {
		t.Fatalf("Set after rejected RANGE: %v", err)
	}
}

func TestServerStats(t *testing.T) {
	for _, protocol := range []string{proto.ProtocolText, proto.ProtocolRESP} {
		t.Run(protocol, func(t *testing.T) { testServerStats(t, protocol) })
	}
}

func testServerStats(t *testing.T, protocol string) {
	_, addr := startServer(t, server.Config{Backend: server.BackendList, Mode: "rc", Shards: 2})
	c := dialTestProto(t, addr, protocol)
	for i := 0; i < 10; i++ {
		if err := c.Set(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	c.Get("k1")
	c.Get("nope")
	c.Delete("k2")

	stats, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	want := map[string]string{
		"backend":          "list",
		"mode":             "rc",
		"shards":           "2",
		"curr_items":       "9",
		"cmd_set":          "10",
		"get_hits":         "1",
		"get_misses":       "1",
		"delete_hits":      "1",
		"curr_connections": "1",
	}
	for k, v := range want {
		if stats[k] != v {
			t.Errorf("stats[%q] = %q, want %q", k, stats[k], v)
		}
	}
	// §5 manager counters: RC reclaims the deleted key's cells.
	if stats["mm_allocs"] == "0" || stats["mm_allocs"] == "" {
		t.Errorf("mm_allocs = %q, want > 0", stats["mm_allocs"])
	}
	if stats["mm_reclaims"] == "0" || stats["mm_reclaims"] == "" {
		t.Errorf("mm_reclaims = %q under rc after a delete, want > 0", stats["mm_reclaims"])
	}
	// Per-shard items sum to curr_items.
	sum := 0
	for i := 0; i < 2; i++ {
		var n int
		fmt.Sscanf(stats[fmt.Sprintf("shard%d_items", i)], "%d", &n)
		sum += n
	}
	if sum != 9 {
		t.Errorf("shardN_items sum = %d, want 9", sum)
	}
}

// TestServerMalformedInput drives raw malformed bytes at the server: every
// line must draw ERROR/CLIENT_ERROR (never a panic), fatal framing errors
// must close the connection, and once the clients are gone the server must
// not have leaked connection goroutines.
func TestServerMalformedInput(t *testing.T) {
	baseline := goroutineBaseline()
	_, addr := startServer(t, server.Config{Backend: server.BackendSkipList, Shards: 1})

	send := func(payload string) (replies []string) {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		defer nc.Close()
		nc.SetDeadline(time.Now().Add(5 * time.Second))
		if _, err := nc.Write([]byte(payload)); err != nil {
			t.Fatalf("Write: %v", err)
		}
		// Signal EOF so the server stops reading after the payload.
		nc.(*net.TCPConn).CloseWrite()
		sc := bufio.NewScanner(nc)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			replies = append(replies, sc.Text())
		}
		return replies
	}

	t.Run("unknown verb", func(t *testing.T) {
		replies := send("FROB x\r\nGET k\r\n")
		if len(replies) != 2 || replies[0] != "ERROR" || replies[1] != "END" {
			t.Fatalf("replies = %q, want [ERROR END]", replies)
		}
	})
	t.Run("bad arguments", func(t *testing.T) {
		replies := send("GET\r\nGET a b c\r\nRANGE x 0\r\nGET ok\r\n")
		if len(replies) != 4 {
			t.Fatalf("replies = %q, want 4 lines", replies)
		}
		for _, r := range replies[:3] {
			if !strings.HasPrefix(r, "CLIENT_ERROR") {
				t.Fatalf("reply %q, want CLIENT_ERROR", r)
			}
		}
		if replies[3] != "END" {
			t.Fatalf("final reply %q, want END", replies[3])
		}
	})
	t.Run("oversized line is fatal", func(t *testing.T) {
		replies := send("GET " + strings.Repeat("k", 4096) + "\r\nGET after\r\n")
		// One CLIENT_ERROR, then the connection closes: the trailing GET
		// must not be answered.
		if len(replies) != 1 || !strings.HasPrefix(replies[0], "CLIENT_ERROR") {
			t.Fatalf("replies = %q, want single CLIENT_ERROR", replies)
		}
	})
	t.Run("bad set framing is fatal", func(t *testing.T) {
		replies := send("SET k 5\r\nhelloXXGET after\r\n")
		if len(replies) != 1 || !strings.HasPrefix(replies[0], "CLIENT_ERROR") {
			t.Fatalf("replies = %q, want single CLIENT_ERROR", replies)
		}
	})
	t.Run("oversized value is fatal", func(t *testing.T) {
		replies := send(fmt.Sprintf("SET k %d\r\n", proto.MaxValueLen+1))
		if len(replies) != 1 || !strings.HasPrefix(replies[0], "CLIENT_ERROR") {
			t.Fatalf("replies = %q, want single CLIENT_ERROR", replies)
		}
	})
	t.Run("binary garbage", func(t *testing.T) {
		send("\x00\x01\x02\xff\xfe\r\n\r\n\x00\r\n")
	})

	// All test connections are closed; the per-connection goroutines must
	// drain. Allow the server's own accept goroutine and some slack for
	// runtime background goroutines.
	waitNoGoroutineLeak(t, baseline, 2)
}

// TestServerGracefulShutdown verifies Shutdown under live traffic: every
// in-flight request is answered or the connection is cleanly closed, and
// Shutdown returns without forcing the context.
func TestServerGracefulShutdown(t *testing.T) {
	srv, err := server.New(server.Config{Backend: server.BackendSkipList, Shards: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	addr := ln.Addr().String()

	// Hammer the server from several goroutines while shutdown fires.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := client.Dial(addr, client.Options{Retries: -1}) // no retries: observe raw close
			if err != nil {
				return
			}
			defer c.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := c.Set(fmt.Sprintf("g%d-k%d", g, i), []byte("v")); err != nil {
					// The only acceptable failure is the connection being
					// closed by shutdown — never a garbled reply.
					var re *proto.ReplyError
					if errors.As(err, &re) {
						t.Errorf("got protocol error during shutdown: %v", err)
					}
					return
				}
			}
		}(g)
	}

	time.Sleep(50 * time.Millisecond) // let traffic build
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown during load: %v", err)
	}
	close(stop)
	wg.Wait()
	if err := <-serveErr; !errors.Is(err, server.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	// New connections must be refused.
	if _, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		t.Fatal("dial succeeded after Shutdown")
	}
}
