package server_test

// Raw-socket tests for the RESP side of the wire: protocol auto-detection
// from the first byte, forced-protocol configs, exact reply framing, and
// the batch/byte accounting counters of the batched serving path.

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"valois/internal/proto"
	"valois/internal/server"
)

// respConn is a raw test connection speaking scripted RESP bytes.
type respConn struct {
	t  *testing.T
	nc net.Conn
	br *bufio.Reader
}

func dialRaw(t *testing.T, addr string) *respConn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { nc.Close() })
	nc.SetDeadline(time.Now().Add(10 * time.Second))
	return &respConn{t: t, nc: nc, br: bufio.NewReader(nc)}
}

func (c *respConn) send(raw string) {
	c.t.Helper()
	if _, err := c.nc.Write([]byte(raw)); err != nil {
		c.t.Fatalf("Write(%q): %v", raw, err)
	}
}

// expectLine reads one CRLF-terminated reply line and requires it to
// equal want (without the terminator).
func (c *respConn) expectLine(want string) {
	c.t.Helper()
	line, err := c.br.ReadString('\n')
	if err != nil {
		c.t.Fatalf("reading reply (want %q): %v", want, err)
	}
	if got := strings.TrimRight(line, "\r\n"); got != want {
		c.t.Fatalf("reply line = %q, want %q", got, want)
	}
}

// expectPrefix reads one reply line and requires its prefix.
func (c *respConn) expectPrefix(want string) {
	c.t.Helper()
	line, err := c.br.ReadString('\n')
	if err != nil {
		c.t.Fatalf("reading reply (want prefix %q): %v", want, err)
	}
	if !strings.HasPrefix(line, want) {
		c.t.Fatalf("reply line = %q, want prefix %q", line, want)
	}
}

// TestRESPWireSession drives one scripted RESP conversation over a raw
// socket against an auto-detecting server, pinning exact reply framing
// for every verb and both error kinds.
func TestRESPWireSession(t *testing.T) {
	_, addr := startServer(t, server.Config{Backend: server.BackendSkipList, Shards: 4})
	c := dialRaw(t, addr)

	// The first byte is '*', so auto-detection locks this connection to
	// RESP.
	c.send("*1\r\n$4\r\nPING\r\n")
	c.expectLine("+PONG")

	c.send("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhello\r\n")
	c.expectLine("+OK")

	c.send("*2\r\n$3\r\nGET\r\n$1\r\nk\r\n")
	c.expectLine("$5")
	c.expectLine("hello")

	// A binary value survives byte-for-byte: CR, LF, and NUL inside the
	// bulk payload are data, not framing.
	bin := "a\r\nb\x00c"
	c.send(fmt.Sprintf("*3\r\n$3\r\nSET\r\n$3\r\nbin\r\n$%d\r\n%s\r\n", len(bin), bin))
	c.expectLine("+OK")
	c.send("*2\r\n$3\r\nGET\r\n$3\r\nbin\r\n")
	c.expectLine(fmt.Sprintf("$%d", len(bin)))
	got := make([]byte, len(bin)+2)
	if _, err := io.ReadFull(c.br, got); err != nil {
		t.Fatalf("reading binary bulk: %v", err)
	}
	if string(got) != bin+"\r\n" {
		t.Fatalf("binary bulk = %q, want %q", got, bin+"\r\n")
	}

	c.send("*2\r\n$3\r\nDEL\r\n$1\r\nk\r\n")
	c.expectLine(":1")
	c.send("*2\r\n$6\r\nDELETE\r\n$1\r\nk\r\n") // DELETE spelling, same verb
	c.expectLine(":0")
	c.send("*2\r\n$3\r\nGET\r\n$1\r\nk\r\n")
	c.expectLine("$-1")

	// RANGE replies with a flat key/value pair array.
	c.send("*3\r\n$5\r\nRANGE\r\n$3\r\nbin\r\n$2\r\n10\r\n")
	c.expectLine("*2")
	c.expectLine("$3")
	c.expectLine("bin")
	c.expectLine(fmt.Sprintf("$%d", len(bin)))
	if _, err := io.ReadFull(c.br, got); err != nil {
		t.Fatalf("reading RANGE bulk: %v", err)
	}

	// Unknown verb: -ERR, connection stays usable.
	c.send("*2\r\n$4\r\nFROB\r\n$1\r\nx\r\n")
	c.expectLine("-ERR unknown command")

	// Recoverable client error: the bad key is drained, framing holds,
	// and the next command still parses.
	c.send("*2\r\n$3\r\nGET\r\n$3\r\na b\r\n")
	c.expectPrefix("-CLIENT_ERROR")

	// Inline commands work once the connection is locked to RESP.
	c.send("PING\r\n")
	c.expectLine("+PONG")

	c.send("*1\r\n$4\r\nQUIT\r\n")
	c.expectLine("+OK")
	if _, err := c.br.ReadByte(); err != io.EOF {
		t.Fatalf("after QUIT: read = %v, want EOF", err)
	}
}

// TestProtocolForced pins the -protocol override: forced RESP parses an
// inline first command that auto-detection would have taken for text,
// and forced text answers a RESP array header with the text ERROR reply.
func TestProtocolForced(t *testing.T) {
	t.Run("resp", func(t *testing.T) {
		_, addr := startServer(t, server.Config{Backend: server.BackendSkipList, Shards: 1, Protocol: proto.ProtocolRESP})
		c := dialRaw(t, addr)
		c.send("PING\r\n") // no '*' first byte; only the forced config gets here
		c.expectLine("+PONG")
	})
	t.Run("text", func(t *testing.T) {
		_, addr := startServer(t, server.Config{Backend: server.BackendSkipList, Shards: 1, Protocol: proto.ProtocolText})
		c := dialRaw(t, addr)
		c.send("*1\r\n$4\r\nPING\r\n")
		c.expectLine("ERROR") // "*1" is no text verb
	})
	t.Run("invalid", func(t *testing.T) {
		if _, err := server.New(server.Config{Protocol: "gopher"}); err == nil {
			t.Fatal("New accepted protocol \"gopher\"")
		}
	})
}

// TestBatchAndByteCounters exercises the wire accounting of the batched
// serving path: bytes_in/bytes_out must balance the socket traffic
// exactly, and a pipelined burst must register in batches/batched_ops —
// unless NoBatch disables draining, which must keep both at zero.
func TestBatchAndByteCounters(t *testing.T) {
	const burstOps = 8
	var burst strings.Builder
	for i := 0; i < burstOps; i++ {
		fmt.Fprintf(&burst, "SET key%d 2\r\nv%d\r\n", i, i)
	}
	wantReply := strings.Repeat("STORED\r\n", burstOps)

	// sendBurst writes one pipelined burst in a single write and consumes
	// the replies in full, returning the byte counts exchanged.
	sendBurst := func(t *testing.T, c *respConn) (in, out int) {
		t.Helper()
		c.send(burst.String())
		got := make([]byte, len(wantReply))
		if _, err := io.ReadFull(c.br, got); err != nil {
			t.Fatalf("reading burst replies: %v", err)
		}
		if string(got) != wantReply {
			t.Fatalf("burst replies = %q, want %q", got, wantReply)
		}
		return burst.Len(), len(wantReply)
	}

	// readStats issues STATS on the same connection and parses the map.
	// The 7 bytes of "STATS\r\n" are on the wire before Stats() runs, so
	// they are part of the expected bytes_in.
	readStats := func(t *testing.T, c *respConn) map[string]string {
		t.Helper()
		c.send("STATS\r\n")
		stats := make(map[string]string)
		for {
			line, err := c.br.ReadString('\n')
			if err != nil {
				t.Fatalf("reading STATS: %v", err)
			}
			line = strings.TrimRight(line, "\r\n")
			if line == "END" {
				return stats
			}
			f := strings.Fields(line)
			if len(f) == 3 && f[0] == "STAT" {
				stats[f[1]] = f[2]
			}
		}
	}

	t.Run("batched", func(t *testing.T) {
		_, addr := startServer(t, server.Config{Backend: server.BackendSkipList, Shards: 4})
		c := dialRaw(t, addr)
		bytesIn, bytesOut := 0, 0
		// A burst written in one syscall lands whole on loopback nearly
		// always, but TCP guarantees nothing — retry until a batch
		// registers rather than asserting on segmentation luck.
		sawBatch := false
		for round := 0; round < 20 && !sawBatch; round++ {
			in, out := sendBurst(t, c)
			bytesIn += in
			bytesOut += out
			stats := readStats(t, c)
			bytesIn += len("STATS\r\n")
			if stats["bytes_in"] != fmt.Sprint(bytesIn) {
				t.Fatalf("round %d: bytes_in = %s, want %d", round, stats["bytes_in"], bytesIn)
			}
			if stats["bytes_out"] != fmt.Sprint(bytesOut) {
				t.Fatalf("round %d: bytes_out = %s, want %d", round, stats["bytes_out"], bytesOut)
			}
			// Every reply byte of this STATS round is written after the
			// snapshot was taken; account for it before the next round.
			bytesOut += statsReplyBytes(stats)
			if stats["batches"] != "0" {
				sawBatch = true
				if stats["batched_ops"] == "0" {
					t.Fatalf("batches = %s but batched_ops = 0", stats["batches"])
				}
			}
		}
		if !sawBatch {
			t.Fatal("no pipelined burst ever executed as a batch")
		}
	})

	t.Run("nobatch", func(t *testing.T) {
		_, addr := startServer(t, server.Config{Backend: server.BackendSkipList, Shards: 4, NoBatch: true})
		c := dialRaw(t, addr)
		for round := 0; round < 5; round++ {
			sendBurst(t, c)
		}
		stats := readStats(t, c)
		if stats["batches"] != "0" || stats["batched_ops"] != "0" {
			t.Fatalf("NoBatch counters = batches %s, batched_ops %s; want 0, 0",
				stats["batches"], stats["batched_ops"])
		}
	})
}

// statsReplyBytes reconstructs the exact wire size of a text STATS reply
// from its parsed map: "STAT <name> <value>\r\n" per line plus "END\r\n".
func statsReplyBytes(stats map[string]string) int {
	n := len("END\r\n")
	for k, v := range stats {
		n += len("STAT ") + len(k) + 1 + len(v) + 2
	}
	return n
}
