package server

import (
	"bufio"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"valois/internal/proto"
)

// conn is one client connection served by its own goroutine.
//
// Serving is batched (see batch.go): each loop iteration blocks for one
// request, then drains every further request that is already fully
// buffered — a pipelining client's whole burst — executes them as one
// batch, and answers with a single write. A client that sends one
// request at a time never batches and takes the same path it always did,
// one command per iteration.
//
// Graceful shutdown protocol: Shutdown marks every conn closing. A conn
// that is idle (blocked reading the next request) is closed immediately —
// it has no request in flight. A conn that is busy executing a batch
// finishes it, writes the replies, and then closes itself when it
// observes the closing mark. Either way no accepted request is abandoned
// mid-way.
type conn struct {
	srv *Server
	nc  net.Conn

	mu      sync.Mutex
	busy    bool // between reading a request and writing its reply
	closing bool
}

// setBusy flips the busy flag and reports whether shutdown was requested,
// so the handler can exit after finishing the current batch.
func (c *conn) setBusy(b bool) (closing bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.busy = b
	return c.closing
}

// beginShutdown is called (with srv.mu held) by Shutdown: idle conns are
// unblocked by closing the socket; busy conns will see the mark after
// their current batch.
func (c *conn) beginShutdown() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closing = true
	if !c.busy {
		c.nc.Close()
	}
}

const (
	connBufSize = 16 << 10

	// maxBatch caps how many requests one drain may accumulate, bounding
	// the entries scratch and the reply buffer a hostile pipeliner can
	// make a single connection hold.
	maxBatch = 256
)

// countingReader counts bytes read off the socket into the server's
// bytes_in. It deliberately holds an io.Reader, not the net.Conn: the
// deadline for each read is armed by the serve loop before blocking.
type countingReader struct {
	r io.Reader
	n *atomic.Int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n.Add(int64(n))
	return n, err
}

// newCodec picks the wire codec for a connection whose first byte is
// first: the configured protocol, or — under auto — RESP exactly when
// the client opens with a '*' array header, which no text command can.
func (c *conn) newCodec(first byte) proto.ServerCodec {
	switch c.srv.cfg.Protocol {
	case proto.ProtocolText:
		return &proto.TextCodec{}
	case proto.ProtocolRESP:
		return &proto.RESPCodec{}
	default:
		if first == '*' {
			return &proto.RESPCodec{}
		}
		return &proto.TextCodec{}
	}
}

func (c *conn) serve() {
	defer c.srv.wg.Done()
	defer c.srv.removeConn(c)
	defer c.nc.Close()
	// Last-resort panic isolation: a panic anywhere in this handler
	// kills only this connection, never the server. The execution path
	// has its own recover (execAndReply) that still answers the client;
	// this one catches framework-level bugs.
	defer func() {
		if r := recover(); r != nil {
			c.srv.connPanics.Add(1)
			c.srv.cfg.Logf("connection %v: handler panic: %v", c.nc.RemoteAddr(), r)
		}
	}()

	br := bufio.NewReaderSize(&countingReader{r: c.nc, n: &c.srv.bytesIn}, connBufSize)
	var codec proto.ServerCodec // chosen from the first byte, once
	entries := make([]batchEntry, 0, 16)
	for {
		// Idle deadline: how long the client may think between requests.
		if d := c.srv.cfg.IdleTimeout; d > 0 {
			c.nc.SetReadDeadline(time.Now().Add(d))
		}
		first, err := br.Peek(1)
		if err != nil {
			// No request started: a clean disconnect, an idle-deadline
			// expiry, or a reset while the connection sat idle.
			c.srv.countNetErr(err)
			return
		}
		if codec == nil {
			codec = c.newCodec(first[0])
		}
		// Read deadline: once a request's first byte exists, the whole
		// command must arrive within ReadTimeout — a slow-loris client
		// dripping one byte at a time is cut here.
		if d := c.srv.cfg.ReadTimeout; d > 0 {
			c.nc.SetReadDeadline(time.Now().Add(d))
		}
		entries = c.readBatch(codec, br, entries[:0])
		if c.setBusy(true) {
			// Shutdown won the race before we started executing; the
			// batch was read but not begun, so dropping it is safe.
			return
		}
		out, quit := c.execAndReply(codec, entries, proto.GetBuffer(0))
		werr := c.writeReply(out)
		proto.PutBuffer(out)
		closing := c.setBusy(false)
		if quit || closing || werr != nil {
			return
		}
	}
}

// readBatch reads one request — blocking for it, the caller armed the
// deadline — then drains every request that is already fully buffered,
// so a pipelined burst becomes one batch. Complete() guards each extra
// read: ReadCommand is only called when the buffer provably holds a
// whole request (or a decidable error that consumes only buffered
// bytes), so draining never blocks on the socket. The drain stops at the
// first read error or QUIT — nothing after either gets a reply, so
// nothing after either may execute.
func (c *conn) readBatch(codec proto.ServerCodec, br *bufio.Reader, entries []batchEntry) []batchEntry {
	for {
		cmd, err := codec.ReadCommand(br)
		entries = append(entries, batchEntry{cmd: cmd, readErr: err})
		if err != nil || cmd.Verb == proto.VerbQuit {
			return entries
		}
		if c.srv.cfg.NoBatch || len(entries) >= maxBatch {
			return entries
		}
		n := br.Buffered()
		if n == 0 {
			return entries
		}
		buffered, _ := br.Peek(n)
		if !codec.Complete(buffered) {
			return entries
		}
	}
}

// execAndReply executes a batch and encodes every reply, in request
// order, into dst. A panic during execution answers SERVER_ERROR in
// place of the batch's replies and closes this connection (execution may
// have half-happened, so per-entry replies cannot be trusted), while
// every other connection keeps being served.
func (c *conn) execAndReply(codec proto.ServerCodec, entries []batchEntry, dst []byte) (out []byte, quit bool) {
	out = dst
	defer func() {
		if r := recover(); r != nil {
			c.srv.connPanics.Add(1)
			c.srv.cfg.Logf("connection %v: exec panic: %v", c.nc.RemoteAddr(), r)
			out = codec.AppendServerError(out[:0], "internal error")
			quit = true
		}
	}()
	c.srv.execEntries(entries)
	if len(entries) > 1 {
		c.srv.batches.Add(1)
		c.srv.batchedOps.Add(int64(len(entries)))
	}
	for i := range entries {
		var q bool
		out, q = c.srv.appendEntryReply(codec, out, &entries[i])
		if q {
			// Only the batch's last entry can quit (the drain stops at
			// QUIT and read errors), so no reply is being skipped.
			return out, true
		}
	}
	return out, false
}

// writeReply sends a batch's replies with one write under the write
// deadline, classifying failures into the connection-health counters.
func (c *conn) writeReply(buf []byte) error {
	if len(buf) == 0 {
		return nil
	}
	if d := c.srv.cfg.WriteTimeout; d > 0 {
		c.nc.SetWriteDeadline(time.Now().Add(d))
	}
	n, err := c.nc.Write(buf)
	c.srv.bytesOut.Add(int64(n))
	if err != nil {
		c.srv.countNetErr(err)
	}
	return err
}
