package server

import (
	"bufio"
	"errors"
	"net"
	"sync"

	"valois/internal/proto"
)

// conn is one client connection served by its own goroutine.
//
// Graceful shutdown protocol: Shutdown marks every conn closing. A conn
// that is idle (blocked reading the next request) is closed immediately —
// it has no request in flight. A conn that is busy executing a request
// finishes it, flushes the reply, and then closes itself when it observes
// the closing mark. Either way no accepted request is abandoned mid-way.
type conn struct {
	srv *Server
	nc  net.Conn

	mu      sync.Mutex
	busy    bool // between reading a request and flushing its reply
	closing bool
}

// setBusy flips the busy flag and reports whether shutdown was requested,
// so the handler can exit after finishing the current request.
func (c *conn) setBusy(b bool) (closing bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.busy = b
	return c.closing
}

// beginShutdown is called (with srv.mu held) by Shutdown: idle conns are
// unblocked by closing the socket; busy conns will see the mark after
// their current request.
func (c *conn) beginShutdown() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closing = true
	if !c.busy {
		c.nc.Close()
	}
}

const connBufSize = 16 << 10

func (c *conn) serve() {
	defer c.srv.wg.Done()
	defer c.srv.removeConn(c)
	defer c.nc.Close()

	br := bufio.NewReaderSize(c.nc, connBufSize)
	bw := bufio.NewWriterSize(c.nc, connBufSize)
	for {
		cmd, err := proto.ReadCommand(br)
		if err != nil {
			if !c.replyReadError(bw, err) {
				return
			}
			continue
		}
		if c.setBusy(true) {
			// Shutdown won the race before we started executing; the
			// request was read but not begun, so dropping it is safe.
			return
		}
		quit := c.srv.dispatch(bw, cmd)
		flushErr := bw.Flush()
		closing := c.setBusy(false)
		if quit || closing || flushErr != nil {
			return
		}
	}
}

// replyReadError answers a failed ReadCommand and reports whether the
// connection should keep reading. Malformed requests draw an error reply;
// framing-destroying ones additionally close the connection; socket errors
// just close.
func (c *conn) replyReadError(bw *bufio.Writer, err error) (keepGoing bool) {
	var ce *proto.ClientError
	switch {
	case errors.As(err, &ce):
		c.srv.protoErrs.Add(1)
		proto.WriteClientError(bw, ce.Msg)
		bw.Flush()
		return !ce.Fatal
	case errors.Is(err, proto.ErrUnknownVerb):
		c.srv.protoErrs.Add(1)
		proto.WriteError(bw)
		return bw.Flush() == nil
	default:
		// io error: peer went away or shutdown closed the socket.
		return false
	}
}

// dispatch executes one command and writes (not flushes) its reply,
// reporting whether the connection should close (QUIT).
func (s *Server) dispatch(bw *bufio.Writer, cmd proto.Command) (quit bool) {
	switch cmd.Verb {
	case proto.VerbGet:
		s.cmdGet.Add(1)
		if v, ok := s.shardFor(cmd.Key).d.Find(cmd.Key); ok {
			s.getHits.Add(1)
			proto.WriteValue(bw, cmd.Key, v)
		} else {
			s.getMisses.Add(1)
		}
		proto.WriteLine(bw, proto.ReplyEnd)

	case proto.VerbSet:
		s.cmdSet.Add(1)
		s.shardFor(cmd.Key).set(cmd.Key, cmd.Value)
		proto.WriteLine(bw, proto.ReplyStored)

	case proto.VerbDelete:
		s.cmdDelete.Add(1)
		if s.shardFor(cmd.Key).d.Delete(cmd.Key) {
			s.deleteHits.Add(1)
			proto.WriteLine(bw, proto.ReplyDeleted)
		} else {
			s.deleteMisses.Add(1)
			proto.WriteLine(bw, proto.ReplyNotFound)
		}

	case proto.VerbRange:
		s.cmdRange.Add(1)
		if !s.Ordered() {
			s.protoErrs.Add(1)
			proto.WriteClientError(bw, "RANGE requires an ordered backend (list, skiplist, bst)")
			return false
		}
		for _, item := range s.rangeMerged(cmd.Key, cmd.Count) {
			proto.WriteValue(bw, item.key, item.value)
		}
		proto.WriteLine(bw, proto.ReplyEnd)

	case proto.VerbStats:
		s.cmdStats.Add(1)
		for _, st := range s.Stats() {
			proto.WriteStat(bw, st.Name, st.Value)
		}
		proto.WriteLine(bw, proto.ReplyEnd)

	case proto.VerbQuit:
		return true
	}
	return false
}
