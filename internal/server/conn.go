package server

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"time"

	"valois/internal/proto"
)

// conn is one client connection served by its own goroutine.
//
// Graceful shutdown protocol: Shutdown marks every conn closing. A conn
// that is idle (blocked reading the next request) is closed immediately —
// it has no request in flight. A conn that is busy executing a request
// finishes it, flushes the reply, and then closes itself when it observes
// the closing mark. Either way no accepted request is abandoned mid-way.
type conn struct {
	srv *Server
	nc  net.Conn

	mu      sync.Mutex
	busy    bool // between reading a request and flushing its reply
	closing bool
}

// setBusy flips the busy flag and reports whether shutdown was requested,
// so the handler can exit after finishing the current request.
func (c *conn) setBusy(b bool) (closing bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.busy = b
	return c.closing
}

// beginShutdown is called (with srv.mu held) by Shutdown: idle conns are
// unblocked by closing the socket; busy conns will see the mark after
// their current request.
func (c *conn) beginShutdown() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closing = true
	if !c.busy {
		c.nc.Close()
	}
}

const connBufSize = 16 << 10

func (c *conn) serve() {
	defer c.srv.wg.Done()
	defer c.srv.removeConn(c)
	defer c.nc.Close()
	// Last-resort panic isolation: a panic anywhere in this handler
	// kills only this connection, never the server. The dispatch path
	// has its own recover (dispatchSafe) that still answers the client;
	// this one catches framework-level bugs.
	defer func() {
		if r := recover(); r != nil {
			c.srv.connPanics.Add(1)
			c.srv.cfg.Logf("connection %v: handler panic: %v", c.nc.RemoteAddr(), r)
		}
	}()

	br := bufio.NewReaderSize(c.nc, connBufSize)
	bw := bufio.NewWriterSize(c.nc, connBufSize)
	for {
		// Idle deadline: how long the client may think between requests.
		if d := c.srv.cfg.IdleTimeout; d > 0 {
			c.nc.SetReadDeadline(time.Now().Add(d))
		}
		if _, err := br.Peek(1); err != nil {
			// No request started: a clean disconnect, an idle-deadline
			// expiry, or a reset while the connection sat idle.
			c.srv.countNetErr(err)
			return
		}
		// Read deadline: once a request's first byte exists, the whole
		// command must arrive within ReadTimeout — a slow-loris client
		// dripping one byte at a time is cut here.
		if d := c.srv.cfg.ReadTimeout; d > 0 {
			c.nc.SetReadDeadline(time.Now().Add(d))
		}
		cmd, err := proto.ReadCommand(br)
		if err != nil {
			if !c.replyReadError(bw, err) {
				return
			}
			continue
		}
		if c.setBusy(true) {
			// Shutdown won the race before we started executing; the
			// request was read but not begun, so dropping it is safe.
			return
		}
		quit := c.dispatchSafe(bw, cmd)
		flushErr := c.flush(bw)
		closing := c.setBusy(false)
		if quit || closing || flushErr != nil {
			return
		}
	}
}

// flush writes the buffered reply under the write deadline, classifying
// failures into the connection-health counters.
func (c *conn) flush(bw *bufio.Writer) error {
	if d := c.srv.cfg.WriteTimeout; d > 0 {
		c.nc.SetWriteDeadline(time.Now().Add(d))
	}
	err := bw.Flush()
	if err != nil {
		c.srv.countNetErr(err)
	}
	return err
}

// dispatchSafe executes one command with panic isolation: a panicking
// dispatch answers SERVER_ERROR and closes this connection (the reply
// buffer may hold a half-written reply, so framing cannot be trusted
// afterwards), while every other connection keeps being served.
func (c *conn) dispatchSafe(bw *bufio.Writer, cmd proto.Command) (quit bool) {
	defer func() {
		if r := recover(); r != nil {
			c.srv.connPanics.Add(1)
			c.srv.cfg.Logf("connection %v: %s dispatch panic: %v", c.nc.RemoteAddr(), cmd.Verb, r)
			proto.WriteServerError(bw, "internal error")
			quit = true
		}
	}()
	return c.srv.dispatch(bw, cmd)
}

// replyReadError answers a failed ReadCommand and reports whether the
// connection should keep reading. Malformed requests draw an error reply;
// framing-destroying ones additionally close the connection; socket errors
// just close.
func (c *conn) replyReadError(bw *bufio.Writer, err error) (keepGoing bool) {
	var ce *proto.ClientError
	switch {
	case errors.As(err, &ce):
		c.srv.protoErrs.Add(1)
		proto.WriteClientError(bw, ce.Msg)
		c.flush(bw)
		return !ce.Fatal
	case errors.Is(err, proto.ErrUnknownVerb):
		c.srv.protoErrs.Add(1)
		proto.WriteError(bw)
		return c.flush(bw) == nil
	default:
		// io error mid-command: the read deadline expired, the peer
		// reset, or shutdown closed the socket.
		c.srv.countNetErr(err)
		return false
	}
}

// dispatch executes one command and writes (not flushes) its reply,
// reporting whether the connection should close (QUIT).
func (s *Server) dispatch(bw *bufio.Writer, cmd proto.Command) (quit bool) {
	if s.panicHook != nil {
		s.panicHook(cmd)
	}
	switch cmd.Verb {
	case proto.VerbGet:
		s.cmdGet.Add(1)
		if v, ok := s.shardFor(cmd.Key).d.Find(cmd.Key); ok {
			s.getHits.Add(1)
			proto.WriteValue(bw, cmd.Key, v)
		} else {
			s.getMisses.Add(1)
		}
		proto.WriteLine(bw, proto.ReplyEnd)

	case proto.VerbSet:
		s.cmdSet.Add(1)
		if err := s.applySet(cmd.Key, cmd.Value); err != nil {
			// The apply happened but the log append failed: the outcome
			// is indeterminate for the client (see persist.go), so answer
			// SERVER_ERROR rather than STORED.
			s.persistErrs.Add(1)
			s.cfg.Logf("persist append: %v", err)
			proto.WriteServerError(bw, "durability failure")
		} else {
			proto.WriteLine(bw, proto.ReplyStored)
		}

	case proto.VerbDelete:
		s.cmdDelete.Add(1)
		deleted, err := s.applyDelete(cmd.Key)
		switch {
		case err != nil:
			s.persistErrs.Add(1)
			s.cfg.Logf("persist append: %v", err)
			proto.WriteServerError(bw, "durability failure")
		case deleted:
			s.deleteHits.Add(1)
			proto.WriteLine(bw, proto.ReplyDeleted)
		default:
			s.deleteMisses.Add(1)
			proto.WriteLine(bw, proto.ReplyNotFound)
		}

	case proto.VerbRange:
		s.cmdRange.Add(1)
		if !s.Ordered() {
			s.protoErrs.Add(1)
			proto.WriteClientError(bw, "RANGE requires an ordered backend (list, skiplist, bst)")
			return false
		}
		for _, item := range s.rangeMerged(cmd.Key, cmd.Count) {
			proto.WriteValue(bw, item.key, item.value)
		}
		proto.WriteLine(bw, proto.ReplyEnd)

	case proto.VerbStats:
		s.cmdStats.Add(1)
		for _, st := range s.Stats() {
			proto.WriteStat(bw, st.Name, st.Value)
		}
		proto.WriteLine(bw, proto.ReplyEnd)

	case proto.VerbQuit:
		return true
	}
	return false
}
