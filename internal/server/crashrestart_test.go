package server_test

// Crash-restart chaos: a real valoisd process with -aof -fsync always is
// SIGKILLed mid-traffic, restarted from its data directory, and driven
// again — and the MERGED history of both lives must be linearizable
// under the KV spec. Mutations whose reply never arrived (cut by the
// kill) are recorded Lost, the ambiguous case CheckKV absorbs: they may
// have reached the log before the kill or not. Acknowledged mutations
// are unambiguous — fsync=always means the record was flushed and
// fsynced before STORED/DELETED was sent, so the restarted process must
// observe them; the sentinel assertion pins exactly that.
//
// The kill is a process kill, not a machine crash: bytes that reached
// write(2) survive in the page cache, so the loss window for an applied
// mutation is only the user-space buffer between apply and flush. See
// DESIGN.md §10 for the one anomaly that window admits.
//
// The matrix mirrors the chaos suite: the ordered backends × the seed
// replay matrix, alternating gc/rc, with background snapshot compaction
// enabled on every other seed so recovery exercises both the pure-AOF
// and the snapshot+tail paths.

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"valois/internal/client"
	"valois/internal/server"
	"valois/internal/testenv"
)

var (
	valoisdOnce sync.Once
	valoisdBin  string
	valoisdErr  error
)

// buildValoisd compiles cmd/valoisd once per test binary, the same
// build-and-drive idiom cmd/lfcheck's tests use.
func buildValoisd(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go toolchain not on PATH: %v", err)
	}
	valoisdOnce.Do(func() {
		dir, err := os.MkdirTemp("", "valoisd-crash")
		if err != nil {
			valoisdErr = err
			return
		}
		valoisdBin = filepath.Join(dir, "valoisd")
		root, err := filepath.Abs("../..")
		if err != nil {
			valoisdErr = err
			return
		}
		cmd := exec.Command("go", "build", "-o", valoisdBin, "./cmd/valoisd")
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			valoisdErr = fmt.Errorf("go build ./cmd/valoisd: %v\n%s", err, out)
		}
	})
	if valoisdErr != nil {
		t.Fatal(valoisdErr)
	}
	return valoisdBin
}

// logWatcher captures a valoisd process's stderr and extracts the bound
// address from its "serving on <addr>" line.
type logWatcher struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	addrC chan string
	sent  bool
}

func (w *logWatcher) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	if !w.sent {
		s := w.buf.String()
		if i := strings.Index(s, "serving on "); i >= 0 {
			rest := s[i+len("serving on "):]
			if j := strings.IndexAny(rest, " \n"); j > 0 {
				w.addrC <- rest[:j]
				w.sent = true
			}
		}
	}
	return len(p), nil
}

func (w *logWatcher) log() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

type valoisdProc struct {
	cmd  *exec.Cmd
	addr string
	wat  *logWatcher
	done chan error
}

// startValoisd launches the daemon and waits until it is accepting. The
// returned proc is registered for cleanup kill, so a failing test never
// strands a child process.
func startValoisd(t *testing.T, bin string, args ...string) *valoisdProc {
	t.Helper()
	wat := &logWatcher{addrC: make(chan string, 1)}
	cmd := exec.Command(bin, args...)
	cmd.Stderr = wat
	if err := cmd.Start(); err != nil {
		t.Fatalf("start valoisd: %v", err)
	}
	p := &valoisdProc{cmd: cmd, wat: wat, done: make(chan error, 1)}
	go func() { p.done <- cmd.Wait() }()
	t.Cleanup(func() {
		cmd.Process.Kill()
		<-p.done
	})
	select {
	case p.addr = <-wat.addrC:
	case err := <-p.done:
		p.done <- err
		t.Fatalf("valoisd exited before serving: %v\n%s", err, wat.log())
	case <-time.After(10 * time.Second):
		t.Fatalf("valoisd never reported its address\n%s", wat.log())
	}
	return p
}

// kill SIGKILLs the process and reaps it — the crash.
func (p *valoisdProc) kill() {
	p.cmd.Process.Kill()
	err := <-p.done
	p.done <- err
}

// term asks for a graceful shutdown and reports the exit error (nil
// means exit 0: listener closed, connections drained, log fsynced).
func (p *valoisdProc) term(t *testing.T) error {
	t.Helper()
	p.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case err := <-p.done:
		p.done <- err
		return err
	case <-time.After(15 * time.Second):
		p.cmd.Process.Kill()
		err := <-p.done
		p.done <- err
		return fmt.Errorf("SIGTERM drain timed out; killed\n%s", p.wat.log())
	}
}

func dialDirect(addr, protocol string) (*client.Client, error) {
	return client.Dial(addr, client.Options{
		ConnectTimeout: 2 * time.Second,
		OpTimeout:      5 * time.Second,
		Retries:        -1, // one logical op = one wire attempt (see chaos_test.go)
		Protocol:       protocol,
	})
}

func TestCrashRestartLinearizable(t *testing.T) {
	bin := buildValoisd(t)
	ordered := []string{server.BackendList, server.BackendSkipList, server.BackendBST}
	for bi, backend := range ordered {
		for si, seed := range chaosSeeds {
			mode := []string{"gc", "rc", "ebr"}[(bi+si)%3]
			snapshots := si%2 == 1
			t.Run(fmt.Sprintf("%s-%s-seed%d", backend, mode, seed), func(t *testing.T) {
				runCrashRestart(t, bin, backend, mode, seed, snapshots)
			})
		}
	}
}

func runCrashRestart(t *testing.T, bin, backend, mode string, seed int64, snapshots bool) {
	replay := fmt.Sprintf("backend=%s mode=%s seed=%d snapshots=%v", backend, mode, seed, snapshots)
	base := goroutineBaseline()
	dir := t.TempDir()
	args := []string{
		"-addr", "127.0.0.1:0", "-backend", backend, "-mode", mode, "-shards", "4",
		"-aof", "-data-dir", dir, "-fsync", "always",
	}
	if snapshots {
		// Fast enough that several compactions land inside the run, so
		// recovery goes through snapshot + tail, not just the AOF.
		args = append(args, "-snapshot-interval", "50ms")
	}

	// Phase 1: traffic into the first life until enough mutations have
	// been acknowledged, then SIGKILL at a seed-jittered moment.
	p1 := startValoisd(t, bin, args...)
	h := newWireHist(chaosKeys)
	var completed atomic.Int64
	target := int64(testenv.Iters(30))
	stopCh := make(chan struct{})
	var wg sync.WaitGroup
	worker := func(w, ops int, addr string, stop <-chan struct{}) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed<<8 + int64(w)))
		var c *client.Client
		defer func() {
			if c != nil {
				c.Close()
			}
		}()
		for i := 0; ops < 0 || i < ops; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if c == nil {
				var err error
				// Workers alternate wire protocols, so recovery is
				// exercised under mixed text/RESP traffic.
				if c, err = dialDirect(addr, protoFor(w)); err != nil {
					// The kill landed (or is about to); wait for the stop
					// signal rather than spinning on a dead address.
					select {
					case <-stop:
						return
					case <-time.After(10 * time.Millisecond):
					}
					continue
				}
			}
			k, ok := h.pickKey(rng.Intn)
			if !ok {
				return
			}
			var err error
			switch rng.Intn(10) {
			case 0, 1, 2:
				var bad bool
				if err, bad = h.doWireGet(c, k); bad {
					t.Errorf("%s: worker %d: %v", replay, w, err)
					return
				}
			case 3, 4, 5, 6:
				if err = h.doWireSet(c, k); err == nil {
					completed.Add(1)
				}
			default:
				if err = h.doWireDelete(c, k); err == nil {
					completed.Add(1)
				}
			}
			if err != nil {
				// Transport cut — mutations were recorded Lost. Drop the
				// connection; the loop redials (or exits on stop).
				c.Close()
				c = nil
			}
		}
	}
	for w := 0; w < chaosWorkers; w++ {
		wg.Add(1)
		go worker(w, -1, p1.addr, stopCh)
	}
	deadline := time.Now().Add(20 * time.Second)
	for completed.Load() < target {
		if time.Now().After(deadline) {
			close(stopCh)
			wg.Wait()
			t.Fatalf("%s: only %d/%d mutations acknowledged before deadline\n%s",
				replay, completed.Load(), target, p1.wat.log())
		}
		time.Sleep(time.Millisecond)
	}
	// The sentinel: acknowledged under fsync=always, so its record was
	// flushed and fsynced before the reply — the restarted process MUST
	// have it, which turns "recovery happened" into a deterministic
	// assertion rather than a counter heuristic.
	sentinel := fmt.Sprintf("alive-%d", seed)
	sc, err := dialDirect(p1.addr, protoFor(int(seed)))
	if err != nil {
		close(stopCh)
		wg.Wait()
		t.Fatalf("%s: sentinel dial: %v", replay, err)
	}
	if err := sc.Set("crash-sentinel", []byte(sentinel)); err != nil {
		close(stopCh)
		wg.Wait()
		t.Fatalf("%s: sentinel SET: %v", replay, err)
	}
	sc.Close()
	rng := rand.New(rand.NewSource(seed))
	time.Sleep(time.Duration(rng.Intn(40)) * time.Millisecond) // kill mid-traffic
	p1.kill()
	close(stopCh)
	wg.Wait()

	// Phase 2: restart from the same directory; acknowledged state must
	// be there, and the merged history must stay linearizable.
	p2 := startValoisd(t, bin, args...)
	c2, err := dialDirect(p2.addr, protoFor(int(seed)+1))
	if err != nil {
		t.Fatalf("%s: dial after restart: %v", replay, err)
	}
	v, found, err := c2.Get("crash-sentinel")
	if err != nil || !found || string(v) != sentinel {
		t.Fatalf("%s: sentinel after restart = %q,%v,%v; want %q — an acknowledged fsync=always write did not survive the crash\n%s",
			replay, v, found, err, sentinel, p2.wat.log())
	}

	phase2Stop := make(chan struct{}) // workers poll it; never closed here
	opsPer := testenv.Iters(40)
	for w := 0; w < chaosWorkers; w++ {
		wg.Add(1)
		go worker(chaosWorkers+w, opsPer, p2.addr, phase2Stop)
	}
	wg.Wait()

	// Read-back pass on a clean connection joins the history, so every
	// key's final value is checked against both lives' mutations.
	for k := 0; k < chaosKeys; k++ {
		if err, _ := h.doWireGet(c2, k); err != nil {
			t.Fatalf("%s: post-restart read-back GET: %v", replay, err)
		}
	}
	stats, err := c2.Stats()
	if err != nil {
		t.Fatalf("%s: post-restart STATS: %v", replay, err)
	}
	if got := stats["conn_panics"]; got != "0" {
		t.Errorf("%s: conn_panics = %s, want 0", replay, got)
	}
	// The sentinel proved recovery worked; the counter must agree (the
	// sentinel's record is in the snapshot or the tail, either way it
	// was replayed).
	if got := stats["recovery_replayed"]; got == "0" {
		t.Errorf("%s: recovery_replayed = 0 after a crash with acknowledged writes", replay)
	}
	c2.Close()

	if err := p2.term(t); err != nil {
		t.Errorf("%s: graceful shutdown after recovery: %v\n%s", replay, err, p2.wat.log())
	}
	waitNoGoroutineLeak(t, base, 3)
	checkWireHistory(t, h, replay)
}
