package linearize

import "testing"

// Shorthand constructors for hand-built wire histories. Timestamps are
// explicit so real-time precedence is exactly what each test states.
func set(key, value int, start, end int64) Event {
	return Event{Op: OpInsert, Key: key, Value: value, OK: true, Start: start, End: end}
}
func get(key, value int, ok bool, start, end int64) Event {
	return Event{Op: OpFind, Key: key, Value: value, OK: ok, Start: start, End: end}
}
func del(key int, ok bool, start, end int64) Event {
	return Event{Op: OpDelete, Key: key, OK: ok, Start: start, End: end}
}
func lost(op Op, key, value int, start int64) Event {
	return Event{Op: op, Key: key, Value: value, Start: start, Lost: true}
}

func TestKVUpsertOverwrites(t *testing.T) {
	// SET k=1; SET k=2; GET k → 2. The second SET must overwrite — under
	// the dict spec (Insert refuses duplicates) this same shape would
	// need the OK=false branch, which the wire never produces.
	h := []Event{
		set(1, 1, 1, 2),
		set(1, 2, 3, 4),
		get(1, 2, true, 5, 6),
	}
	if r := CheckKV(h); !r.OK {
		t.Fatalf("sequential upsert history rejected: %+v", r)
	}
	// A stale read of the overwritten value is a violation.
	h[2] = get(1, 1, true, 5, 6)
	if r := CheckKV(h); r.OK {
		t.Fatal("stale read after overwrite accepted")
	}
}

func TestKVCompletedSetNeverFails(t *testing.T) {
	h := []Event{{Op: OpInsert, Key: 1, Value: 1, OK: false, Start: 1, End: 2}}
	if r := CheckKV(h); r.OK {
		t.Fatal("a completed SET reported as failed is not legal on the wire")
	}
}

func TestKVDeleteSemantics(t *testing.T) {
	// DELETE of an absent key is NOT_FOUND; after a SET it is DELETED.
	h := []Event{
		del(7, false, 1, 2),
		set(7, 1, 3, 4),
		del(7, true, 5, 6),
		get(7, 0, false, 7, 8),
	}
	if r := CheckKV(h); !r.OK {
		t.Fatalf("delete lifecycle rejected: %+v", r)
	}
	// NOT_FOUND while the key is provably present is a violation.
	bad := []Event{
		set(7, 1, 1, 2),
		del(7, false, 3, 4),
	}
	if r := CheckKV(bad); r.OK {
		t.Fatal("NOT_FOUND delete of a present key accepted")
	}
}

// TestKVLostSetAmbiguity is the ambiguous-retry case of DESIGN.md §8: a
// SET whose response was lost may or may not have executed, so a later
// GET may see either the old or the new value — but nothing else.
func TestKVLostSetAmbiguity(t *testing.T) {
	base := []Event{
		set(1, 10, 1, 2),
		lost(OpInsert, 1, 20, 3), // response lost: may or may not have run
	}
	for _, tc := range []struct {
		name string
		read Event
		ok   bool
	}{
		{"old value (lost SET never ran)", get(1, 10, true, 10, 11), true},
		{"new value (lost SET ran)", get(1, 20, true, 10, 11), true},
		{"phantom value", get(1, 99, true, 10, 11), false},
		{"phantom miss", get(1, 0, false, 10, 11), false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h := append(append([]Event(nil), base...), tc.read)
			if r := CheckKV(h); r.OK != tc.ok {
				t.Fatalf("CheckKV = %v, want %v (history %v)", r.OK, tc.ok, h)
			}
		})
	}
}

// TestKVLostDeleteAmbiguity: after a lost DELETE both a hit on the old
// value and a miss are linearizable; and a completed DELETE after it may
// legally report either outcome.
func TestKVLostDeleteAmbiguity(t *testing.T) {
	base := []Event{
		set(3, 5, 1, 2),
		lost(OpDelete, 3, 0, 3),
	}
	for _, tail := range [][]Event{
		{get(3, 5, true, 10, 11)},  // delete never ran
		{get(3, 0, false, 10, 11)}, // delete ran
		{del(3, true, 10, 11)},     // delete never ran; retry deletes
		{del(3, false, 10, 11)},    // delete ran; retry finds nothing
	} {
		h := append(append([]Event(nil), base...), tail...)
		if r := CheckKV(h); !r.OK {
			t.Fatalf("ambiguous-delete history rejected: %v", h)
		}
	}
}

// TestKVLostOpDoesNotConstrainRealTime: a lost operation has no
// response, so operations invoked after it are NOT forced to observe it,
// even arbitrarily much later.
func TestKVLostOpDoesNotConstrainRealTime(t *testing.T) {
	h := []Event{
		lost(OpInsert, 2, 42, 1),
		get(2, 0, false, 100, 101), // still a miss long after: legal
		get(2, 42, true, 200, 201), // then it "lands": also legal
	}
	if r := CheckKV(h); !r.OK {
		t.Fatalf("late-landing lost SET rejected: %+v", r)
	}
	// But once a completed response pins the binding, real time binds:
	// a read that responded before another read's invocation cannot see
	// a newer state than the later read.
	bad := []Event{
		lost(OpInsert, 2, 42, 1),
		get(2, 42, true, 100, 101), // observed: the SET has linearized
		get(2, 0, false, 200, 201), // later miss with no delete: illegal
	}
	if r := CheckKV(bad); r.OK {
		t.Fatal("value un-landed without a delete")
	}
}

// TestKVConcurrentOverlap: overlapping SETs and GETs where each read is
// explained by some linearization of the concurrent writes.
func TestKVConcurrentOverlap(t *testing.T) {
	h := []Event{
		set(1, 1, 1, 10), // overlaps everything
		set(1, 2, 2, 9),
		get(1, 2, true, 3, 4), // sees SET(2) first
		get(1, 1, true, 5, 6), // then SET(1): legal, they overlap
	}
	if r := CheckKV(h); !r.OK {
		t.Fatalf("overlapping writes rejected: %+v", r)
	}
	// Non-overlapping version of the same reads is a violation: SET(1)
	// responded before GET→2 was invoked and nothing overwrote 1 back.
	bad := []Event{
		set(1, 1, 1, 2),
		set(1, 2, 3, 4),
		get(1, 2, true, 5, 6),
		get(1, 1, true, 7, 8),
	}
	if r := CheckKV(bad); r.OK {
		t.Fatal("time-travelling read accepted")
	}
}

// TestDictSpecStillRefusesDuplicates guards the refactor: Check (the
// paper's dictionary spec) must still reject what CheckKV accepts.
func TestDictSpecStillRefusesDuplicates(t *testing.T) {
	h := []Event{
		{Op: OpInsert, Key: 1, Value: 1, OK: true, Start: 1, End: 2},
		{Op: OpInsert, Key: 1, Value: 2, OK: true, Start: 3, End: 4},
	}
	if r := Check(h); r.OK {
		t.Fatal("dict spec accepted a duplicate successful Insert")
	}
	if r := CheckKV(h); !r.OK {
		t.Fatal("wire spec rejected an upsert")
	}
}
