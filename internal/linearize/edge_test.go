package linearize

import (
	"sort"
	"testing"
)

// TestEmptyHistory: the checker must accept both a nil history and an
// empty-but-allocated one, and a fresh Recorder must produce such a
// history before any session records an event.
func TestEmptyHistory(t *testing.T) {
	for _, events := range [][]Event{nil, {}} {
		res := Check(events)
		if !res.OK {
			t.Fatalf("empty history rejected: %+v", res)
		}
		if res.BadKey != 0 || res.BadHistory != nil {
			t.Fatalf("empty history produced a witness: %+v", res)
		}
	}

	r := NewRecorder(nil)
	r.Session() // a session that never performs an operation
	if h := r.History(); len(h) != 0 {
		t.Fatalf("fresh recorder history has %d events, want 0", len(h))
	}
}

// TestSingleOpHistory pins down every single-operation history: each op
// kind, succeeding and failing, against the initially-absent key state.
func TestSingleOpHistory(t *testing.T) {
	tests := []struct {
		name string
		ev   Event
		ok   bool
	}{
		{"find-miss", Event{Op: OpFind, OK: false}, true},
		{"find-hit", Event{Op: OpFind, Value: 3, OK: true}, false},
		{"insert-success", Event{Op: OpInsert, Value: 3, OK: true}, true},
		{"insert-failure", Event{Op: OpInsert, Value: 3, OK: false}, false},
		{"delete-failure", Event{Op: OpDelete, OK: false}, true},
		{"delete-success", Event{Op: OpDelete, OK: true}, false},
		{"invalid-op", Event{Op: Op(99), OK: true}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ev := tt.ev
			ev.Key = 7
			ev.Start, ev.End = 1, 2
			res := Check([]Event{ev})
			if res.OK != tt.ok {
				t.Fatalf("Check(%v).OK = %v, want %v", ev, res.OK, tt.ok)
			}
			if !tt.ok && res.BadKey != 7 {
				t.Fatalf("BadKey = %d, want 7", res.BadKey)
			}
		})
	}
}

// TestUnlinearizableWitness checks the failure report itself: when one
// key's subhistory is illegal among several legal ones, the Result must
// name that key and return exactly its events, sorted by invocation time.
func TestUnlinearizableWitness(t *testing.T) {
	good1 := seqEvents(1,
		Event{Op: OpInsert, Value: 10, OK: true},
		Event{Op: OpFind, Value: 10, OK: true},
	)
	good9 := seqEvents(9,
		Event{Op: OpDelete, OK: false},
	)
	// Key 5: a Find observes a value that was never inserted — no
	// sequential order explains it. Build it with deliberately unsorted
	// Start times to check the witness comes back sorted.
	bad := []Event{
		{Op: OpFind, Key: 5, Value: 99, OK: true, Start: 30, End: 40},
		{Op: OpInsert, Key: 5, Value: 1, OK: true, Start: 10, End: 20},
	}

	var history []Event
	history = append(history, good1...)
	history = append(history, bad...)
	history = append(history, good9...)

	res := Check(history)
	if res.OK {
		t.Fatal("unlinearizable history accepted")
	}
	if res.BadKey != 5 {
		t.Fatalf("BadKey = %d, want 5", res.BadKey)
	}
	if len(res.BadHistory) != len(bad) {
		t.Fatalf("BadHistory has %d events, want %d: %v", len(res.BadHistory), len(bad), res.BadHistory)
	}
	for _, e := range res.BadHistory {
		if e.Key != 5 {
			t.Fatalf("BadHistory contains foreign key %d: %v", e.Key, e)
		}
	}
	if !sort.SliceIsSorted(res.BadHistory, func(i, j int) bool {
		return res.BadHistory[i].Start < res.BadHistory[j].Start
	}) {
		t.Fatalf("BadHistory not sorted by Start: %v", res.BadHistory)
	}
}

// TestWitnessReportsSmallestBadKey: with several illegal subhistories the
// checker reports the smallest key, keeping failures deterministic.
func TestWitnessReportsSmallestBadKey(t *testing.T) {
	bad := func(key int) Event {
		return Event{Op: OpDelete, Key: key, OK: true, Start: 1, End: 2}
	}
	res := Check([]Event{bad(12), bad(3), bad(44)})
	if res.OK {
		t.Fatal("illegal history accepted")
	}
	if res.BadKey != 3 {
		t.Fatalf("BadKey = %d, want smallest bad key 3", res.BadKey)
	}
}
