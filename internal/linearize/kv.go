package linearize

// This file extends the checker from the paper's dictionary
// specification to the valoisd wire specification, so real network
// histories — recorded client-side around internal/client calls — can be
// checked for linearizability. Two things differ from the in-memory
// dictionaries:
//
//  1. The sequential spec: SET is an upsert (the server composes
//     delete-then-insert until it wins, and always replies STORED), so a
//     completed SET succeeds in every state, unlike the paper's Insert
//     which refuses duplicates. GET and DELETE match Find and Delete.
//
//  2. Ambiguous retries: over a faulty network a SET or DELETE whose
//     response was lost (connection reset, deadline) may or may not have
//     executed server-side. Such operations are recorded with Event.Lost
//     and the checker accepts both outcomes — the operation linearizes at
//     some point after its invocation, or it never ran (see checkKey).
//     This is exactly why blind client retries of non-idempotent
//     operations are "at-least-once": each attempt whose reply is lost
//     leaves an ambiguity only the history checker can absorb.

// applyKV is the sequential single-key wire specification.
func applyKV(st keyState, e Event) (keyState, bool) {
	if e.Lost {
		switch e.Op {
		case OpFind:
			return st, true
		case OpInsert:
			// A lost SET that executed overwrote the binding.
			return keyState{present: true, value: e.Value}, true
		case OpDelete:
			if !st.present {
				return st, true
			}
			return keyState{}, true
		default:
			return st, false
		}
	}
	switch e.Op {
	case OpFind: // GET: hit iff present, with the current binding
		if e.OK != st.present {
			return st, false
		}
		if st.present && e.Value != st.value {
			return st, false
		}
		return st, true
	case OpInsert: // SET: an upsert, legal (and STORED) in every state
		if !e.OK {
			return st, false // the server never refuses a SET
		}
		return keyState{present: true, value: e.Value}, true
	case OpDelete: // DELETE: DELETED iff present
		if e.OK {
			if !st.present {
				return st, false
			}
			return keyState{}, true
		}
		if st.present {
			return st, false // NOT_FOUND while present is illegal
		}
		return st, true
	default:
		return st, false
	}
}

// CheckKV verifies a wire-level history against the sequential
// key-value specification of the valoisd protocol: OpInsert events are
// SETs (upserts), OpFind events are GETs, OpDelete events are DELETEs.
// Events marked Lost are operations with no response; the checker
// accepts histories in which they executed (at any point after
// invocation) and histories in which they did not.
func CheckKV(history []Event) Result {
	return checkHistory(history, applyKV)
}
