// Package linearize tests the linearizability the paper asserts but does
// not prove: "We also require our objects to be linearizable [14]; this
// implies that operations appear to happen atomically at some point
// during their execution. Proofs that our data structures are
// linearizable are beyond the scope of this paper, but are
// straightforward." (§2.1)
//
// The package records complete concurrent histories of dictionary
// operations — each with an invocation and a response timestamp from a
// shared atomic clock — and then checks, in the style of Wing & Gong's
// algorithm with Lowe's memoization, whether some sequential order of the
// operations (a) respects real-time precedence (if op A responded before
// op B was invoked, A comes first) and (b) is legal for the sequential
// dictionary specification.
//
// Dictionary operations on distinct keys commute, so the checker uses the
// standard decomposition: a history is linearizable if and only if each
// per-key subhistory is linearizable against the single-key specification
// (absent | present(v); Insert succeeds iff absent, Delete succeeds iff
// present, Find returns the current binding). Per-key subhistories stay
// small, keeping the exponential search tractable.
package linearize

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"valois/internal/dict"
)

// Op identifies a dictionary operation kind.
type Op uint8

// Operation kinds.
const (
	OpFind Op = iota + 1
	OpInsert
	OpDelete
)

// String returns the operation's name.
func (o Op) String() string {
	switch o {
	case OpFind:
		return "find"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	default:
		return "invalid"
	}
}

// Event is one completed operation in a history.
type Event struct {
	Op    Op
	Key   int
	Value int  // argument of Insert; result of a successful Find
	OK    bool // Insert/Delete success, or Find hit
	Start int64
	End   int64
}

func (e Event) String() string {
	return fmt.Sprintf("%s(%d)=%v,%d [%d,%d]", e.Op, e.Key, e.OK, e.Value, e.Start, e.End)
}

// Recorder wraps a dictionary and records a history of the operations
// performed through it. It is safe for concurrent use; each goroutine
// should obtain its own Session to avoid contending on one buffer.
type Recorder struct {
	d     dict.Dictionary[int, int]
	clock atomic.Int64

	mu       sync.Mutex
	sessions []*Session
}

// NewRecorder wraps d.
func NewRecorder(d dict.Dictionary[int, int]) *Recorder {
	return &Recorder{d: d}
}

// Session is a per-goroutine event buffer with the Dictionary interface.
type Session struct {
	r      *Recorder
	events []Event
}

var _ dict.Dictionary[int, int] = (*Session)(nil)

// Session returns a recording handle for one goroutine.
func (r *Recorder) Session() *Session {
	s := &Session{r: r}
	r.mu.Lock()
	r.sessions = append(r.sessions, s)
	r.mu.Unlock()
	return s
}

// Find performs and records a Find.
func (s *Session) Find(key int) (int, bool) {
	start := s.r.clock.Add(1)
	v, ok := s.r.d.Find(key)
	end := s.r.clock.Add(1)
	s.events = append(s.events, Event{Op: OpFind, Key: key, Value: v, OK: ok, Start: start, End: end})
	return v, ok
}

// Insert performs and records an Insert.
func (s *Session) Insert(key, value int) bool {
	start := s.r.clock.Add(1)
	ok := s.r.d.Insert(key, value)
	end := s.r.clock.Add(1)
	s.events = append(s.events, Event{Op: OpInsert, Key: key, Value: value, OK: ok, Start: start, End: end})
	return ok
}

// Delete performs and records a Delete.
func (s *Session) Delete(key int) bool {
	start := s.r.clock.Add(1)
	ok := s.r.d.Delete(key)
	end := s.r.clock.Add(1)
	s.events = append(s.events, Event{Op: OpDelete, Key: key, OK: ok, Start: start, End: end})
	return ok
}

// History returns all recorded events. Call only at quiescence.
func (r *Recorder) History() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var all []Event
	for _, s := range r.sessions {
		all = append(all, s.events...)
	}
	return all
}

// Result reports the outcome of a linearizability check.
type Result struct {
	// OK reports whether the whole history is linearizable.
	OK bool
	// BadKey is the key whose subhistory failed, when OK is false.
	BadKey int
	// BadHistory is that subhistory, sorted by invocation time.
	BadHistory []Event
}

// Check verifies the history against the sequential dictionary
// specification, per key. An empty history is linearizable.
func Check(history []Event) Result {
	byKey := make(map[int][]Event)
	for _, e := range history {
		byKey[e.Key] = append(byKey[e.Key], e)
	}
	keys := make([]int, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Ints(keys) // deterministic failure reporting
	for _, k := range keys {
		sub := byKey[k]
		sort.Slice(sub, func(i, j int) bool { return sub[i].Start < sub[j].Start })
		if !checkKey(sub) {
			return Result{BadKey: k, BadHistory: sub}
		}
	}
	return Result{OK: true}
}

// keyState is the sequential single-key specification state.
type keyState struct {
	present bool
	value   int
}

// apply returns the post-state if e is legal in state st, or ok=false.
func (st keyState) apply(e Event) (keyState, bool) {
	switch e.Op {
	case OpFind:
		if e.OK != st.present {
			return st, false
		}
		if st.present && e.Value != st.value {
			return st, false
		}
		return st, true
	case OpInsert:
		if e.OK {
			if st.present {
				return st, false
			}
			return keyState{present: true, value: e.Value}, true
		}
		if !st.present {
			return st, false // failed insert while absent is illegal
		}
		return st, true
	case OpDelete:
		if e.OK {
			if !st.present {
				return st, false
			}
			return keyState{}, true
		}
		if st.present {
			return st, false // failed delete while present is illegal
		}
		return st, true
	default:
		return st, false
	}
}

// checkKey runs the Wing-Gong search with memoization over one key's
// subhistory (events sorted by Start).
func checkKey(events []Event) bool {
	n := len(events)
	if n == 0 {
		return true
	}
	if n > 63 {
		// The bitmask memoization caps at 63 events per key; histories
		// should be generated below that (the tests are).
		panic("linearize: per-key history too large")
	}
	type memoKey struct {
		done    uint64
		present bool
		value   int
	}
	seen := make(map[memoKey]bool)

	var dfs func(done uint64, st keyState) bool
	dfs = func(done uint64, st keyState) bool {
		if done == uint64(1)<<n-1 {
			return true
		}
		mk := memoKey{done: done, present: st.present, value: st.value}
		if seen[mk] {
			return false
		}
		seen[mk] = true

		// The earliest response among not-yet-linearized operations
		// bounds which operations may linearize next: an operation can
		// only be chosen if it was invoked before every pending
		// operation's response (otherwise some completed operation would
		// be ordered after an operation that started after it ended).
		minEnd := int64(1) << 62
		for i := 0; i < n; i++ {
			if done&(1<<i) == 0 && events[i].End < minEnd {
				minEnd = events[i].End
			}
		}
		for i := 0; i < n; i++ {
			if done&(1<<i) != 0 {
				continue
			}
			e := events[i]
			if e.Start > minEnd {
				// e began after a pending operation finished; that
				// operation must linearize first. Events are sorted by
				// Start, so no later candidate qualifies either.
				break
			}
			if next, ok := st.apply(e); ok {
				if dfs(done|uint64(1)<<i, next) {
					return true
				}
			}
		}
		return false
	}
	return dfs(0, keyState{})
}
