// Package linearize tests the linearizability the paper asserts but does
// not prove: "We also require our objects to be linearizable [14]; this
// implies that operations appear to happen atomically at some point
// during their execution. Proofs that our data structures are
// linearizable are beyond the scope of this paper, but are
// straightforward." (§2.1)
//
// The package records complete concurrent histories of dictionary
// operations — each with an invocation and a response timestamp from a
// shared atomic clock — and then checks, in the style of Wing & Gong's
// algorithm with Lowe's memoization, whether some sequential order of the
// operations (a) respects real-time precedence (if op A responded before
// op B was invoked, A comes first) and (b) is legal for the sequential
// dictionary specification.
//
// Dictionary operations on distinct keys commute, so the checker uses the
// standard decomposition: a history is linearizable if and only if each
// per-key subhistory is linearizable against the single-key specification
// (absent | present(v); Insert succeeds iff absent, Delete succeeds iff
// present, Find returns the current binding). Per-key subhistories stay
// small, keeping the exponential search tractable.
package linearize

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"valois/internal/dict"
)

// Op identifies a dictionary operation kind.
type Op uint8

// Operation kinds.
const (
	OpFind Op = iota + 1
	OpInsert
	OpDelete
)

// String returns the operation's name.
func (o Op) String() string {
	switch o {
	case OpFind:
		return "find"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	default:
		return "invalid"
	}
}

// Event is one operation in a history.
type Event struct {
	Op    Op
	Key   int
	Value int  // argument of Insert; result of a successful Find
	OK    bool // Insert/Delete success, or Find hit
	Start int64
	End   int64
	// Lost marks an operation whose invocation was observed but whose
	// response never arrived (the connection died or timed out before
	// the reply). The server may or may not have executed it, so the
	// checker must accept histories where it took effect at any point
	// after Start and histories where it never ran at all. OK, Value
	// (for Find), and End are meaningless on a lost event.
	Lost bool
}

func (e Event) String() string {
	if e.Lost {
		return fmt.Sprintf("%s(%d)=LOST,%d [%d,?]", e.Op, e.Key, e.Value, e.Start)
	}
	return fmt.Sprintf("%s(%d)=%v,%d [%d,%d]", e.Op, e.Key, e.OK, e.Value, e.Start, e.End)
}

// Recorder wraps a dictionary and records a history of the operations
// performed through it. It is safe for concurrent use; each goroutine
// should obtain its own Session to avoid contending on one buffer.
type Recorder struct {
	d     dict.Dictionary[int, int]
	clock atomic.Int64

	mu       sync.Mutex
	sessions []*Session
}

// NewRecorder wraps d.
func NewRecorder(d dict.Dictionary[int, int]) *Recorder {
	return &Recorder{d: d}
}

// Session is a per-goroutine event buffer with the Dictionary interface.
type Session struct {
	r      *Recorder
	events []Event
}

var _ dict.Dictionary[int, int] = (*Session)(nil)

// Session returns a recording handle for one goroutine.
func (r *Recorder) Session() *Session {
	s := &Session{r: r}
	r.mu.Lock()
	r.sessions = append(r.sessions, s)
	r.mu.Unlock()
	return s
}

// Find performs and records a Find.
func (s *Session) Find(key int) (int, bool) {
	start := s.r.clock.Add(1)
	v, ok := s.r.d.Find(key)
	end := s.r.clock.Add(1)
	s.events = append(s.events, Event{Op: OpFind, Key: key, Value: v, OK: ok, Start: start, End: end})
	return v, ok
}

// Insert performs and records an Insert.
func (s *Session) Insert(key, value int) bool {
	start := s.r.clock.Add(1)
	ok := s.r.d.Insert(key, value)
	end := s.r.clock.Add(1)
	s.events = append(s.events, Event{Op: OpInsert, Key: key, Value: value, OK: ok, Start: start, End: end})
	return ok
}

// Delete performs and records a Delete.
func (s *Session) Delete(key int) bool {
	start := s.r.clock.Add(1)
	ok := s.r.d.Delete(key)
	end := s.r.clock.Add(1)
	s.events = append(s.events, Event{Op: OpDelete, Key: key, OK: ok, Start: start, End: end})
	return ok
}

// History returns all recorded events. Call only at quiescence.
func (r *Recorder) History() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var all []Event
	for _, s := range r.sessions {
		all = append(all, s.events...)
	}
	return all
}

// Result reports the outcome of a linearizability check.
type Result struct {
	// OK reports whether the whole history is linearizable.
	OK bool
	// BadKey is the key whose subhistory failed, when OK is false.
	BadKey int
	// BadHistory is that subhistory, sorted by invocation time.
	BadHistory []Event
}

// Check verifies the history against the sequential dictionary
// specification (Insert refuses duplicates), per key. An empty history
// is linearizable.
func Check(history []Event) Result {
	return checkHistory(history, keyState.apply)
}

// checkHistory runs the per-key decomposition under the given
// single-key sequential specification.
func checkHistory(history []Event, apply func(keyState, Event) (keyState, bool)) Result {
	byKey := make(map[int][]Event)
	for _, e := range history {
		byKey[e.Key] = append(byKey[e.Key], e)
	}
	keys := make([]int, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Ints(keys) // deterministic failure reporting
	for _, k := range keys {
		sub := byKey[k]
		sort.Slice(sub, func(i, j int) bool { return sub[i].Start < sub[j].Start })
		if !checkKey(sub, apply) {
			return Result{BadKey: k, BadHistory: sub}
		}
	}
	return Result{OK: true}
}

// keyState is the sequential single-key specification state.
type keyState struct {
	present bool
	value   int
}

// apply returns the post-state if e is legal in state st, or ok=false.
func (st keyState) apply(e Event) (keyState, bool) {
	if e.Lost {
		// No response to honor: the effect at this linearization point
		// is whatever the operation would deterministically do here.
		return st.applyLost(e)
	}
	switch e.Op {
	case OpFind:
		if e.OK != st.present {
			return st, false
		}
		if st.present && e.Value != st.value {
			return st, false
		}
		return st, true
	case OpInsert:
		if e.OK {
			if st.present {
				return st, false
			}
			return keyState{present: true, value: e.Value}, true
		}
		if !st.present {
			return st, false // failed insert while absent is illegal
		}
		return st, true
	case OpDelete:
		if e.OK {
			if !st.present {
				return st, false
			}
			return keyState{}, true
		}
		if st.present {
			return st, false // failed delete while present is illegal
		}
		return st, true
	default:
		return st, false
	}
}

// applyLost is the Lost arm shared by both specifications: a lost
// Find has no effect; a lost Insert/Delete does whatever that operation
// would do in state st, with no reported result to contradict.
func (st keyState) applyLost(e Event) (keyState, bool) {
	switch e.Op {
	case OpFind:
		return st, true
	case OpInsert:
		if st.present {
			return st, true // dict Insert refuses duplicates; no effect
		}
		return keyState{present: true, value: e.Value}, true
	case OpDelete:
		if !st.present {
			return st, true
		}
		return keyState{}, true
	default:
		return st, false
	}
}

// checkKey runs the Wing-Gong search with memoization over one key's
// subhistory (events sorted by Start), under the given sequential
// specification. Lost operations (Event.Lost) have no response: they
// never constrain the real-time order (their End is treated as +inf)
// and the search may either linearize them at some point after their
// invocation or decide they never executed — the history is accepted
// once every completed operation is linearized.
func checkKey(events []Event, apply func(keyState, Event) (keyState, bool)) bool {
	n := len(events)
	if n == 0 {
		return true
	}
	if n > 63 {
		// The bitmask memoization caps at 63 events per key; histories
		// should be generated below that (the tests are).
		panic("linearize: per-key history too large")
	}
	// required is the mask of completed operations: the search succeeds
	// when all of them are linearized, whatever subset of lost
	// operations was taken along the way.
	var required uint64
	for i, e := range events {
		if !e.Lost {
			required |= 1 << i
		}
	}
	type memoKey struct {
		done    uint64
		present bool
		value   int
	}
	seen := make(map[memoKey]bool)

	var dfs func(done uint64, st keyState) bool
	dfs = func(done uint64, st keyState) bool {
		if done&required == required {
			return true
		}
		mk := memoKey{done: done, present: st.present, value: st.value}
		if seen[mk] {
			return false
		}
		seen[mk] = true

		// The earliest response among not-yet-linearized operations
		// bounds which operations may linearize next: an operation can
		// only be chosen if it was invoked before every pending
		// operation's response (otherwise some completed operation would
		// be ordered after an operation that started after it ended).
		// Lost operations have no response and impose no bound.
		minEnd := int64(1) << 62
		for i := 0; i < n; i++ {
			if done&(1<<i) == 0 && !events[i].Lost && events[i].End < minEnd {
				minEnd = events[i].End
			}
		}
		for i := 0; i < n; i++ {
			if done&(1<<i) != 0 {
				continue
			}
			e := events[i]
			if e.Start > minEnd {
				// e began after a pending operation finished; that
				// operation must linearize first. Events are sorted by
				// Start, so no later candidate qualifies either.
				break
			}
			if next, ok := apply(st, e); ok {
				if dfs(done|uint64(1)<<i, next) {
					return true
				}
			}
		}
		return false
	}
	return dfs(0, keyState{})
}
