package linearize

import (
	"math/rand"
	"sync"
	"testing"

	"valois/internal/bst"
	"valois/internal/dict"
	"valois/internal/mm"
	"valois/internal/skiplist"
)

// seqEvents builds a strictly sequential history from (op, ok, value)
// triples on one key.
func seqEvents(key int, steps ...Event) []Event {
	t := int64(0)
	out := make([]Event, 0, len(steps))
	for _, s := range steps {
		t++
		s.Key = key
		s.Start = t
		t++
		s.End = t
		out = append(out, s)
	}
	return out
}

func TestSequentialLegalHistories(t *testing.T) {
	tests := []struct {
		name   string
		events []Event
	}{
		{name: "empty", events: nil},
		{name: "insert-find-delete", events: seqEvents(1,
			Event{Op: OpInsert, Value: 10, OK: true},
			Event{Op: OpFind, Value: 10, OK: true},
			Event{Op: OpDelete, OK: true},
			Event{Op: OpFind, OK: false},
		)},
		{name: "failed-ops", events: seqEvents(2,
			Event{Op: OpDelete, OK: false},
			Event{Op: OpInsert, Value: 5, OK: true},
			Event{Op: OpInsert, Value: 6, OK: false},
			Event{Op: OpFind, Value: 5, OK: true},
		)},
		{name: "reinsert-new-value", events: seqEvents(3,
			Event{Op: OpInsert, Value: 1, OK: true},
			Event{Op: OpDelete, OK: true},
			Event{Op: OpInsert, Value: 2, OK: true},
			Event{Op: OpFind, Value: 2, OK: true},
		)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if res := Check(tt.events); !res.OK {
				t.Fatalf("legal history rejected: %v", res.BadHistory)
			}
		})
	}
}

func TestSequentialIllegalHistories(t *testing.T) {
	tests := []struct {
		name   string
		events []Event
	}{
		{name: "find-hit-on-absent", events: seqEvents(1,
			Event{Op: OpFind, Value: 9, OK: true},
		)},
		{name: "find-wrong-value", events: seqEvents(1,
			Event{Op: OpInsert, Value: 10, OK: true},
			Event{Op: OpFind, Value: 11, OK: true},
		)},
		{name: "double-successful-insert", events: seqEvents(1,
			Event{Op: OpInsert, Value: 1, OK: true},
			Event{Op: OpInsert, Value: 2, OK: true},
		)},
		{name: "delete-succeeds-on-absent", events: seqEvents(1,
			Event{Op: OpDelete, OK: true},
		)},
		{name: "failed-insert-on-absent", events: seqEvents(1,
			Event{Op: OpInsert, Value: 1, OK: false},
		)},
		{name: "failed-delete-on-present", events: seqEvents(1,
			Event{Op: OpInsert, Value: 1, OK: true},
			Event{Op: OpDelete, OK: false},
		)},
		{name: "find-miss-while-present", events: seqEvents(1,
			Event{Op: OpInsert, Value: 1, OK: true},
			Event{Op: OpFind, OK: false},
		)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if res := Check(tt.events); res.OK {
				t.Fatal("illegal history accepted")
			}
		})
	}
}

func TestConcurrentOverlapUsesFlexibility(t *testing.T) {
	// Two overlapping operations: a Find that misses, concurrent with the
	// Insert that succeeds. Legal only because the Find may linearize
	// before the Insert within their overlap.
	events := []Event{
		{Op: OpInsert, Key: 1, Value: 7, OK: true, Start: 1, End: 4},
		{Op: OpFind, Key: 1, OK: false, Start: 2, End: 3},
	}
	if res := Check(events); !res.OK {
		t.Fatal("overlapping find-miss + insert rejected")
	}
	// But if the Find strictly follows the Insert, the miss is illegal.
	events = []Event{
		{Op: OpInsert, Key: 1, Value: 7, OK: true, Start: 1, End: 2},
		{Op: OpFind, Key: 1, OK: false, Start: 3, End: 4},
	}
	if res := Check(events); res.OK {
		t.Fatal("find-miss after completed insert accepted")
	}
}

func TestRealTimeOrderRespected(t *testing.T) {
	// Insert completes, then delete completes, then a find hit: legal.
	// The same find hit moved before the delete's invocation: still legal
	// (value present). A find hit strictly after the delete: illegal.
	events := []Event{
		{Op: OpInsert, Key: 1, Value: 7, OK: true, Start: 1, End: 2},
		{Op: OpDelete, Key: 1, OK: true, Start: 3, End: 4},
		{Op: OpFind, Key: 1, Value: 7, OK: true, Start: 5, End: 6},
	}
	if res := Check(events); res.OK {
		t.Fatal("find hit after completed delete accepted")
	}
	// Overlapping with the delete: legal (may linearize before it).
	events[2].Start, events[2].End = 3, 6
	events[1].Start, events[1].End = 3, 5
	if res := Check(events); !res.OK {
		t.Fatal("find hit overlapping delete rejected")
	}
}

// faultyDict drops every dropNth successful insert: it reports true but
// stores nothing — a classic lost-update bug the checker must catch.
type faultyDict struct {
	mu      sync.Mutex
	m       map[int]int
	calls   int
	dropNth int
}

func (f *faultyDict) Find(k int) (int, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	v, ok := f.m[k]
	return v, ok
}

func (f *faultyDict) Insert(k, v int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.m[k]; ok {
		return false
	}
	f.calls++
	if f.calls%f.dropNth == 0 {
		return true // lie: claim success without storing
	}
	f.m[k] = v
	return true
}

func (f *faultyDict) Delete(k int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.m[k]; !ok {
		return false
	}
	delete(f.m, k)
	return true
}

func TestCheckerCatchesLostUpdates(t *testing.T) {
	r := NewRecorder(&faultyDict{m: make(map[int]int), dropNth: 5})
	s := r.Session()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		k := rng.Intn(8)
		switch rng.Intn(3) {
		case 0:
			s.Insert(k, i)
		case 1:
			s.Delete(k)
		default:
			s.Find(k)
		}
	}
	res := Check(r.History())
	if res.OK {
		t.Fatal("checker passed a dictionary that drops inserts")
	}
	if len(res.BadHistory) == 0 {
		t.Fatal("failure did not report the offending subhistory")
	}
}

// checkStructure runs a concurrent recorded workload against d and checks
// linearizability.
func checkStructure(t *testing.T, name string, d dict.Dictionary[int, int]) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		r := NewRecorder(d)
		const (
			goroutines = 6
			perG       = 250
			keys       = 64
		)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				s := r.Session()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < perG; i++ {
					k := rng.Intn(keys)
					switch rng.Intn(4) {
					case 0:
						s.Insert(k, int(seed)*10_000+i)
					case 1:
						s.Delete(k)
					default:
						s.Find(k)
					}
				}
			}(int64(g + 1))
		}
		wg.Wait()
		history := r.History()
		if len(history) != goroutines*perG {
			t.Fatalf("recorded %d events, want %d", len(history), goroutines*perG)
		}
		if res := Check(history); !res.OK {
			t.Fatalf("history not linearizable at key %d:\n%v", res.BadKey, res.BadHistory)
		}
	})
}

// TestPaperStructuresAreLinearizable is the empirical stand-in for the
// proofs §2.1 leaves out: every structure, under both memory managers,
// with torture-forced interleavings where supported.
func TestPaperStructuresAreLinearizable(t *testing.T) {
	for _, mode := range []mm.Mode{mm.ModeGC, mm.ModeRC} {
		sl := dict.NewSortedList[int, int](mode)
		sl.EnableTorture(3)
		checkStructure(t, "sortedlist/"+mode.String(), sl)

		h := dict.NewHash[int, int](8, mode, dict.HashInt)
		h.EnableTorture(3)
		checkStructure(t, "hash/"+mode.String(), h)

		checkStructure(t, "skiplist/"+mode.String(), skiplist.New[int, int](mode))
		checkStructure(t, "bst/"+mode.String(), bst.New[int, int](mode))
	}
}
