package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"valois/internal/mm"
)

// TestSequentialModelProperty drives a list and a plain-slice model with
// the same random positional operation sequence under a single goroutine;
// their contents must agree after every step. This pins down the
// sequential semantics of the §3 operations: insertion precedes the
// visited position and deletion removes the visited item.
func TestSequentialModelProperty(t *testing.T) {
	type step struct {
		op  uint8 // 0 insert, 1 delete, 2 no-op traversal
		pos uint8
		val int
	}
	run := func(seed int64, mode string) bool {
		rng := rand.New(rand.NewSource(seed))
		var m mm.Manager[int]
		if mode == "gc" {
			m = mm.NewGC[int]()
		} else {
			m = mm.NewRC[int]()
		}
		l := New(m)
		var model []int
		steps := 200
		for i := 0; i < steps; i++ {
			s := step{op: uint8(rng.Intn(3)), pos: uint8(rng.Intn(16)), val: rng.Int()}
			c := l.NewCursor()
			pos := int(s.pos)
			if n := len(model); n > 0 {
				pos %= n + 1 // n+1 cursor positions, including end-of-list
			} else {
				pos = 0
			}
			for j := 0; j < pos; j++ {
				c.Next()
			}
			switch s.op {
			case 0:
				q, a := l.AllocInsertNodes(s.val)
				if !c.TryInsert(q, a) {
					return false // sequential operation must not fail
				}
				l.ReleaseNodes(q, a)
				model = append(model[:pos:pos], append([]int{s.val}, model[pos:]...)...)
			case 1:
				if pos == len(model) {
					if c.TryDelete() {
						return false // deleting the end position must fail
					}
				} else {
					if !c.TryDelete() {
						return false
					}
					model = append(model[:pos:pos], model[pos+1:]...)
				}
			default:
				for !c.End() {
					c.Next()
				}
			}
			c.Close()
			if !equalItems(l.Items(), model) {
				t.Logf("seed %d step %d: list %v, model %v", seed, i, l.Items(), model)
				return false
			}
		}
		if err := l.CheckQuiescent(); err != nil {
			t.Log(err)
			return false
		}
		if rc, ok := m.(*mm.RC[int]); ok {
			l.Close()
			if rc.Stats().Live() != 0 {
				t.Logf("seed %d: %d cells leaked", seed, rc.Stats().Live())
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(func(seed int64) bool { return run(seed, "gc") }, cfg); err != nil {
		t.Errorf("gc: %v", err)
	}
	if err := quick.Check(func(seed int64) bool { return run(seed, "rc") }, cfg); err != nil {
		t.Errorf("rc: %v", err)
	}
}
