// Package core implements the paper's primary contribution (§3): a
// non-blocking singly-linked list manipulated with single-word
// Compare&Swap, supporting concurrent traversal, insertion and deletion at
// arbitrary positions through cursors.
//
// The data structure follows Figure 4: normal cells carrying items are
// separated by auxiliary nodes (cells with only a next field), and the list
// is delimited by two dummy cells, First and Last. Every normal cell has an
// auxiliary node as predecessor and successor; chains of adjacent auxiliary
// nodes may appear transiently while deletions are in progress and are
// collapsed by Update and TryDelete (§3's final argument shows they vanish
// once all deletions complete — TestAuxChainsCollapse reproduces it).
//
// All memory is obtained from an mm.Manager, so the same algorithm text
// runs both under the paper's reference-count scheme (mm.RC) and under the
// Go garbage collector (mm.GC). Reference-count bookkeeping beyond the
// paper's pseudocode is marked with "refs:" comments; under mm.GC those
// calls are no-ops.
//
// # Traversal past deleted cells rejoins at an unspecified position
//
// Cell persistence (§2.2) lets a cursor parked on a deleted cell keep
// traversing through the cell's preserved next pointer. A consequence of
// the paper's cleanup strategy worth knowing: auxiliary nodes are
// position-agnostic connective tissue, and TryDelete's chain collapse
// (Figure 10 line 17) reuses the auxiliary node at the end of a chain in
// place. If every cell in a region is deleted, an auxiliary node that once
// sat late in the list can end up as, say, the head auxiliary. A cursor
// whose frozen path runs through such a node therefore rejoins the live
// list at an arbitrary — possibly earlier — position and may revisit items
// it has already seen. Keyed searches (Figure 11) are unaffected: they
// simply re-walk forward and land at the correct place, and the
// TryInsert/TryDelete Compare&Swap guards keep every update linearizable.
// But a raw cursor sweep over a list under concurrent churn is NOT
// guaranteed to visit keys monotonically; ordered iteration at the
// dictionary layer filters for monotonicity (see dict.SortedList.Range).
package core

import (
	"runtime"
	"sync/atomic"

	"valois/internal/mm"
)

// List is a shared singly-linked list (Figure 4). The zero value is not
// usable; construct with New.
type List[T any] struct {
	manager mm.Manager[T]
	gc      bool        // manager is mm.GC: all reference bookkeeping is a no-op
	ebr     bool        // manager pins epochs: traversal references are no-ops, links stay counted
	pinner  mm.Pinner   // non-nil exactly when ebr is true
	first   *mm.Node[T] // dummy First cell; root pointer, never changes
	last    *mm.Node[T] // dummy Last cell; root pointer, never changes
	stats   *Counters   // nil unless EnableStats was called

	yield        func() // see SetYieldHook / EnableTorture
	noAuxRemoval bool   // see DisableAuxRemoval
	noBackoff    bool   // see DisableBackoff
}

// The traversal loop runs a handful of nanoseconds per hop, so the no-op
// memory-management calls of the GC manager are not left to dynamic
// dispatch: the list detects mm.GC at construction and branches around
// them. Under mm.RC the interface calls proceed as written.
//
// The paper's reference operations split into two families, and the
// wrappers below encode the split so the algorithm text stays identical
// across all three managers:
//
//   - traversal references (safeRead, release, addRef): the SafeReads a
//     cursor performs per hop and the releases/duplications of its own
//     position pointers. Counted under RC (Figures 15/16); no-ops under
//     GC; under EBR they are replaced wholesale by the cursor's epoch pin
//     — safeRead is a plain load and release/addRef do nothing.
//   - link references (linkRef, unlink): a pointer stored into a cell
//     field acquires a reference and a pointer overwritten drops one
//     (the Michael & Scott bookkeeping). Counted under both RC and EBR —
//     under EBR the drop of a cell's last link is what retires it — and
//     no-ops under GC.

func (l *List[T]) safeRead(p *atomic.Pointer[mm.Node[T]]) *mm.Node[T] {
	if l.gc || l.ebr {
		return p.Load()
	}
	return l.manager.SafeRead(p)
}

func (l *List[T]) release(n *mm.Node[T]) {
	if !l.gc && !l.ebr {
		l.manager.Release(n)
	}
}

func (l *List[T]) addRef(n *mm.Node[T]) {
	if !l.gc && !l.ebr {
		l.manager.AddRef(n)
	}
}

// linkRef accounts for a new pointer to n stored in a cell field.
func (l *List[T]) linkRef(n *mm.Node[T]) {
	if !l.gc {
		l.manager.AddRef(n)
	}
}

// unlink accounts for a stored pointer to n being overwritten; under EBR
// dropping the last link is the retire point of an unreachable cell.
func (l *List[T]) unlink(n *mm.Node[T]) {
	if !l.gc {
		l.manager.Release(n)
	}
}

// pin enters an epoch-protected region under the EBR manager and is a
// no-op guard otherwise; every cursor holds one for its lifetime.
func (l *List[T]) pin() (mm.Guard, bool) {
	if l.pinner == nil {
		return mm.Guard{}, false
	}
	return l.pinner.Pin(), true
}

func (l *List[T]) unpin(g mm.Guard, pinned bool) {
	if pinned {
		l.pinner.Unpin(g)
	}
}

// New builds an empty list: the two dummy cells separated by a single
// auxiliary node (Figure 4). The manager supplies and reclaims all cells.
func New[T any](manager mm.Manager[T]) *List[T] {
	first := manager.Alloc()
	aux := manager.Alloc()
	last := manager.Alloc()
	first.SetKind(mm.KindFirst)
	aux.SetKind(mm.KindAux)
	last.SetKind(mm.KindLast)

	aux.StoreNext(last)
	manager.AddRef(last) // refs: link aux→last
	first.StoreNext(aux)
	manager.AddRef(aux)  // refs: link first→aux
	manager.Release(aux) // refs: drop the allocation reference; the list link remains

	// The allocation references of first and last are retained as the
	// list's root references and dropped by Close.
	_, isGC := manager.(*mm.GC[T])
	pinner, isEBR := manager.(mm.Pinner)
	return &List[T]{manager: manager, gc: isGC, ebr: isEBR, pinner: pinner, first: first, last: last}
}

// Manager returns the memory manager the list allocates from.
func (l *List[T]) Manager() mm.Manager[T] { return l.manager }

// EnableStats attaches work counters to the list (experiments E3–E6). It
// must be called before the list is shared between goroutines.
func (l *List[T]) EnableStats() *Counters {
	if l.stats == nil {
		l.stats = &Counters{}
	}
	return l.stats
}

// Stats returns the list's counters, or nil if EnableStats was not called.
func (l *List[T]) Stats() *Counters { return l.stats }

// SetYieldHook installs a function invoked at every structural
// Compare&Swap site (the read-position-then-swing windows of Figures 5,
// 9, and 10). The deterministic schedule explorer (internal/sched) uses
// it to take control of interleaving; EnableTorture uses it to randomize
// interleaving. Must be called before the list is shared; nil (the
// default) disables it.
func (l *List[T]) SetYieldHook(f func()) {
	l.yield = f
}

// EnableTorture makes every period-th structural Compare&Swap yield the
// processor first. On a single-CPU host, operations otherwise run
// quasi-serially and the contention the amortized analysis of §4.1 talks
// about almost never materializes; the yield opens the
// read-position-then-Compare&Swap window so concurrent operations actually
// interleave. For tests and the work-measurement experiments (E3, E4)
// only; it must be called before the list is shared, and a period of zero
// (the default) disables it.
func (l *List[T]) EnableTorture(period uint32) {
	if period == 0 {
		l.yield = nil
		return
	}
	var ctr atomic.Uint32
	l.yield = func() {
		if ctr.Add(1)%period == 0 {
			runtime.Gosched()
		}
	}
}

// DisableAuxRemoval turns off Update's removal of adjacent auxiliary
// pairs (Figure 5 line 7), leaving chain cleanup entirely to TryDelete's
// collapse (Figure 10 lines 17–21). Exists for the A2 ablation
// experiment, which quantifies how much that design choice contributes;
// must be called before the list is shared.
func (l *List[T]) DisableAuxRemoval() { l.noAuxRemoval = true }

// DisableBackoff turns off the exponential backoff in TryDelete's
// chain-collapse Compare&Swap retry loop (Figure 10 lines 17–21), leaving
// the paper's bare loop. For the A1 ablation and the faithful
// configuration; must be called before the list is shared.
func (l *List[T]) DisableBackoff() { l.noBackoff = true }

// maybeYield runs the yield hook; called before structural CASes.
func (l *List[T]) maybeYield() {
	if l.yield != nil {
		l.yield()
	}
}

// First returns the dummy head cell. Exposed for tests and structural
// checks; applications use cursors.
func (l *List[T]) First() *mm.Node[T] { return l.first }

// Last returns the dummy tail cell.
func (l *List[T]) Last() *mm.Node[T] { return l.last }

// NewCursor returns a cursor visiting the first item of the list (or the
// end-of-list position if the list is empty), per §2.1: "When a new cursor
// is created, it is visiting the first item in the list."
func (l *List[T]) NewCursor() *Cursor[T] {
	c := &Cursor[T]{list: l}
	c.guard, c.pinned = l.pin() // EBR: the pin replaces per-hop SafeRead references
	c.Reset()
	return c
}

// CursorAt returns a cursor positioned at the first normal cell at or
// after the given cell, which must belong to this list and be safely held
// by the caller (a counted reference under mm.RC). The cell may have been
// deleted: its next pointer is preserved (§2.2), so the cursor lands on
// the closest live position after it. Higher-level structures use this to
// resume a search from a known vantage point — the skip list descends a
// level this way.
func (l *List[T]) CursorAt(n *mm.Node[T]) *Cursor[T] {
	c := &Cursor[T]{list: l}
	c.guard, c.pinned = l.pin() // before any plain load of shared links
	c.preCell = n
	l.addRef(n) // refs: the cursor's own hold, duplicating the caller's
	c.preAux = l.safeRead(n.NextAddr())
	c.target = nil
	c.update()
	return c
}

// Close releases the list's root references. Under mm.RC this reclaims
// every cell still in the list (the release of First cascades down the
// chain of counted links); it must only be called once all cursors have
// been closed and no operations are in flight.
func (l *List[T]) Close() {
	l.manager.Release(l.first)
	l.manager.Release(l.last)
	l.first = nil
	l.last = nil
}

// Len counts the items currently in the list by traversing it with a
// cursor. It is linear and, under concurrent updates, only a snapshot.
func (l *List[T]) Len() int {
	c := l.NewCursor()
	defer c.Close()
	n := 0
	for !c.End() {
		n++
		if !c.Next() {
			break
		}
	}
	return n
}
