package core

import (
	"errors"
	"fmt"

	"valois/internal/mm"
)

// Structural invariant checking for tests and the stress tool. These
// helpers read the list with plain loads and are only meaningful at
// quiescence (no operations in flight).

// ErrStructure reports a violation of the list's structural invariants.
var ErrStructure = errors.New("core: list structure violated")

// CheckQuiescent validates the §3 structural invariants of a quiescent
// list: the chain starts at the First dummy and ends at the Last dummy,
// every normal cell has exactly one auxiliary node as predecessor and
// successor (the theorem at the end of §3: once all deletions have
// completed, no extra auxiliary nodes remain), and no cell in the list has
// its back_link set.
func (l *List[T]) CheckQuiescent() error {
	n := l.first.Next()
	if n == nil {
		return fmt.Errorf("%w: First has nil next", ErrStructure)
	}
	// The walk expects the repeating shape aux (cell aux)* terminated by
	// the Last dummy.
	auxRun := 0
	pos := 0
	for cur := n; ; pos++ {
		if cur == nil {
			return fmt.Errorf("%w: nil link at position %d", ErrStructure, pos)
		}
		switch cur.Kind() {
		case mm.KindLast:
			if cur != l.last {
				return fmt.Errorf("%w: foreign Last dummy at position %d", ErrStructure, pos)
			}
			if auxRun != 1 {
				return fmt.Errorf("%w: %d auxiliary nodes before Last (want 1)", ErrStructure, auxRun)
			}
			return nil
		case mm.KindAux:
			auxRun++
			if auxRun > 1 {
				return fmt.Errorf("%w: auxiliary chain of length %d at position %d (quiescent list must have none)", ErrStructure, auxRun, pos)
			}
		case mm.KindCell:
			if auxRun != 1 {
				return fmt.Errorf("%w: cell at position %d preceded by %d auxiliary nodes (want 1)", ErrStructure, pos, auxRun)
			}
			auxRun = 0
			if cur.Deleted() {
				return fmt.Errorf("%w: deleted cell (back_link set) still linked at position %d", ErrStructure, pos)
			}
		case mm.KindFirst:
			return fmt.Errorf("%w: First dummy re-encountered at position %d", ErrStructure, pos)
		default:
			return fmt.Errorf("%w: invalid kind %v at position %d", ErrStructure, cur.Kind(), pos)
		}
		if pos > 1<<26 {
			return fmt.Errorf("%w: traversal did not terminate (cycle?)", ErrStructure)
		}
		cur = cur.Next()
	}
}

// Items returns a snapshot of the items currently in the list, in list
// order, gathered with a cursor.
func (l *List[T]) Items() []T {
	c := l.NewCursor()
	defer c.Close()
	var items []T
	for !c.End() {
		items = append(items, c.Item())
		if !c.Next() {
			break
		}
	}
	return items
}
