package core

import (
	"testing"

	"valois/internal/mm"
)

func buildList(t *testing.T, m mm.Manager[int], items ...int) *List[int] {
	t.Helper()
	l := New(m)
	c := l.NewCursor()
	defer c.Close()
	for i := len(items) - 1; i >= 0; i-- {
		c.Reset()
		q, a := l.AllocInsertNodes(items[i])
		if !c.TryInsert(q, a) {
			t.Fatalf("setup insert of %d failed", items[i])
		}
		l.ReleaseNodes(q, a)
	}
	return l
}

func TestCursorAtResumesFromCell(t *testing.T) {
	managers(t, func(t *testing.T, m mm.Manager[int]) {
		l := buildList(t, m, 1, 2, 3, 4)
		// Walk to 2 and capture the cell.
		scout := l.NewCursor()
		scout.Next()
		cell := scout.Target()
		m.AddRef(cell) // hold it beyond the scout's lifetime
		scout.Close()

		c := l.CursorAt(cell)
		m.Release(cell)
		if got := c.Item(); got != 3 {
			t.Fatalf("CursorAt(cell 2) visits %d, want 3 (first cell after it)", got)
		}
		if !c.Next() || c.Item() != 4 {
			t.Fatal("traversal from CursorAt position broken")
		}
		c.Close()
	})
}

func TestCursorAtFromDeletedCell(t *testing.T) {
	// Cell persistence (§2.2): resuming from a deleted cell lands on the
	// closest live position after it — the property the skip list's level
	// descent depends on.
	managers(t, func(t *testing.T, m mm.Manager[int]) {
		l := buildList(t, m, 1, 2, 3)
		scout := l.NewCursor()
		scout.Next() // at 2
		cell := scout.Target()
		m.AddRef(cell)
		if !scout.TryDelete() {
			t.Fatal("delete failed")
		}
		scout.Close()

		c := l.CursorAt(cell)
		m.Release(cell)
		if got := c.Item(); got != 3 {
			t.Fatalf("CursorAt(deleted 2) visits %d, want 3", got)
		}
		c.Close()
		if err := l.CheckQuiescent(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestCapacityBoundedListAllocFails(t *testing.T) {
	// A bounded RC manager makes AllocInsertNodes return nil,nil once
	// exhausted (Figure 17's NULL), and frees reopen capacity.
	m := mm.NewRC[int](mm.WithCapacity(6), mm.WithBatchSize(2))
	l := New(m) // consumes 3 cells (First, aux, Last)
	c := l.NewCursor()
	defer c.Close()

	q, a := l.AllocInsertNodes(1) // 2 more cells
	if q == nil {
		t.Fatal("first insert pair should fit")
	}
	if !c.TryInsert(q, a) {
		t.Fatal("insert failed")
	}
	l.ReleaseNodes(q, a)

	if q2, a2 := l.AllocInsertNodes(2); q2 != nil || a2 != nil {
		t.Fatal("AllocInsertNodes beyond capacity should return nil, nil")
	}

	// Delete the item; its two cells return to the free list (after the
	// cursor lets go), making room again.
	c.Reset()
	if !c.TryDelete() {
		t.Fatal("delete failed")
	}
	c.Reset() // drop the cursor's references to the deleted cell
	if q3, a3 := l.AllocInsertNodes(3); q3 == nil || a3 == nil {
		t.Fatal("AllocInsertNodes after delete should succeed again")
	} else {
		l.ReleaseNodes(q3, a3)
	}
}

func TestDisableAuxRemovalStillCorrect(t *testing.T) {
	// With Update's pair removal off, chains are cleaned only by
	// TryDelete; semantics must be unchanged and the structure must still
	// quiesce clean (the collapse path guarantees it).
	m := mm.NewGC[int]()
	l := New(m)
	l.DisableAuxRemoval()
	l.EnableStats()
	c := l.NewCursor()
	defer c.Close()
	for i := 0; i < 20; i++ {
		q, a := l.AllocInsertNodes(i)
		if !c.TryInsert(q, a) {
			t.Fatal("insert failed")
		}
		l.ReleaseNodes(q, a)
		c.Update()
	}
	for i := 0; i < 20; i++ {
		c.Reset()
		if !c.TryDelete() {
			t.Fatal("delete failed")
		}
	}
	if got := l.Len(); got != 0 {
		t.Fatalf("Len = %d, want 0", got)
	}
	if err := l.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Snapshot().AuxRemovals; got != 0 {
		t.Fatalf("AuxRemovals = %d with removal disabled, want 0", got)
	}
}

func TestValidReflectsCursorState(t *testing.T) {
	m := mm.NewGC[int]()
	l := buildList(t, m, 1)
	c := l.NewCursor()
	defer c.Close()
	if !c.Valid() {
		t.Fatal("fresh cursor invalid")
	}
	if c.List() != l {
		t.Fatal("List() returned wrong list")
	}
	if l.First().Kind() != mm.KindFirst || l.Last().Kind() != mm.KindLast {
		t.Fatal("dummy kinds wrong")
	}
}
