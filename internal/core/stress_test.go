package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"valois/internal/mm"
	"valois/internal/testenv"
)

// stressParams shrink automatically under -short and VALOIS_STRESS_DIV.
func stressIters(t *testing.T, n int) int {
	if testing.Short() {
		n /= 10
	}
	return testenv.Iters(n)
}

func runStress(t *testing.T, m mm.Manager[int], goroutines, iters int) (inserted, deleted int64, l *List[int]) {
	t.Helper()
	l = New(m)
	l.EnableStats()
	var (
		wg        sync.WaitGroup
		insertals atomic.Int64
		deletions atomic.Int64
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			c := l.NewCursor()
			defer c.Close()
			for i := 0; i < iters; i++ {
				switch rng.Intn(3) {
				case 0: // insert at a random position, retrying per Fig 12
					c.Reset()
					for steps := rng.Intn(8); steps > 0 && !c.End(); steps-- {
						c.Next()
					}
					q, a := l.AllocInsertNodes(int(seed)*1_000_000 + i)
					for !c.TryInsert(q, a) {
						l.Stats().AddInsertRetries(1)
						c.Update()
					}
					l.ReleaseNodes(q, a)
					insertals.Add(1)
				case 1: // delete the cell at a random position, if any
					c.Reset()
					for steps := rng.Intn(8); steps > 0 && !c.End(); steps-- {
						c.Next()
					}
					if c.End() {
						continue
					}
					if c.TryDelete() {
						deletions.Add(1)
					} else {
						l.Stats().AddDeleteRetries(1)
					}
				default: // traverse, touching every item
					c.Reset()
					for !c.End() {
						_ = c.Item()
						if !c.Next() {
							break
						}
					}
				}
			}
		}(int64(g + 1))
	}
	wg.Wait()
	return insertals.Load(), deletions.Load(), l
}

func TestConcurrentStress(t *testing.T) {
	const goroutines = 8
	iters := stressIters(t, 3000)
	t.Run("gc", func(t *testing.T) {
		ins, del, l := runStress(t, mm.NewGC[int](), goroutines, iters)
		if got, want := int64(l.Len()), ins-del; got != want {
			t.Fatalf("Len = %d, want inserted-deleted = %d", got, want)
		}
		if err := l.CheckQuiescent(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("rc", func(t *testing.T) {
		m := mm.NewRC[int]()
		ins, del, l := runStress(t, m, goroutines, iters)
		n := int64(l.Len())
		if want := ins - del; n != want {
			t.Fatalf("Len = %d, want inserted-deleted = %d", n, want)
		}
		if err := l.CheckQuiescent(); err != nil {
			t.Fatal(err)
		}
		// Leak check: at quiescence the live cells are exactly the two
		// dummies, one auxiliary per position boundary, and a cell and
		// an auxiliary per item: 3 + 2n.
		if live, want := m.Stats().Live(), 3+2*n; live != want {
			t.Fatalf("live cells = %d, want %d (list of %d items)", live, want, n)
		}
		l.Close()
		if live := m.Stats().Live(); live != 0 {
			t.Fatalf("live cells after Close = %d, want 0", live)
		}
	})
}

func TestConcurrentDeleteAll(t *testing.T) {
	// All goroutines race to delete every item of a prefilled list: the
	// heaviest exercise of back_link walks and auxiliary-chain collapse
	// (Figure 10 lines 7-21). Afterwards the list must be empty and, per
	// the theorem closing §3, contain no extra auxiliary nodes.
	const items = 300
	for _, mode := range []string{"gc", "rc"} {
		t.Run(mode, func(t *testing.T) {
			var m mm.Manager[int]
			if mode == "gc" {
				m = mm.NewGC[int]()
			} else {
				m = mm.NewRC[int]()
			}
			l := New(m)
			l.EnableStats()
			c := l.NewCursor()
			for i := 0; i < items; i++ {
				q, a := l.AllocInsertNodes(i)
				for !c.TryInsert(q, a) {
					c.Update()
				}
				l.ReleaseNodes(q, a)
			}
			c.Close()

			var (
				wg      sync.WaitGroup
				deleted atomic.Int64
			)
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					c := l.NewCursor()
					defer c.Close()
					for {
						c.Reset()
						if c.End() {
							return
						}
						for !c.End() {
							if c.TryDelete() {
								deleted.Add(1)
							}
							c.Update()
						}
					}
				}()
			}
			wg.Wait()
			if got := deleted.Load(); got != items {
				t.Fatalf("deleted %d items, want %d", got, items)
			}
			if got := l.Len(); got != 0 {
				t.Fatalf("Len = %d after delete-all, want 0", got)
			}
			if err := l.CheckQuiescent(); err != nil {
				t.Fatal(err)
			}
			if rc, ok := m.(*mm.RC[int]); ok {
				if live := rc.Stats().Live(); live != 3 {
					t.Fatalf("live cells = %d, want 3 (empty list)", live)
				}
			}
		})
	}
}

func TestBacklinkWalkIsExercised(t *testing.T) {
	// Deleting a cell whose pre_cell has itself been deleted forces the
	// back_link walk of Figure 10 lines 7-11; the counters must see it.
	m := mm.NewGC[int]()
	l := New(m)
	l.EnableStats()
	c := l.NewCursor()
	for i := 3; i >= 1; i-- {
		q, a := l.AllocInsertNodes(i)
		if !c.TryInsert(q, a) {
			t.Fatal("setup insert failed")
		}
		l.ReleaseNodes(q, a)
		c.Update()
	}
	c.Close()

	cB := l.NewCursor()
	cB.Next() // at 2; pre_cell = 1
	cC := l.NewCursor()
	cC.Next()
	cC.Next() // at 3; pre_cell = 2
	if !cB.TryDelete() {
		t.Fatal("delete 2 failed")
	}
	if !cC.TryDelete() { // pre_cell 2 is deleted: must walk its back_link
		t.Fatal("delete 3 failed")
	}
	cB.Close()
	cC.Close()
	if got := l.Stats().Snapshot().BacklinkSteps; got < 1 {
		t.Fatalf("BacklinkSteps = %d, want ≥ 1", got)
	}
	if err := l.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

func TestAuxChainCollapse(t *testing.T) {
	// White-box reproduction of the theorem at the end of §3: a chain of
	// auxiliary nodes (here injected by hand, as two stalled TryDeletes
	// would leave it) is removed by the first Update that walks it.
	for _, mode := range []string{"gc", "rc"} {
		t.Run(mode, func(t *testing.T) {
			var m mm.Manager[int]
			if mode == "gc" {
				m = mm.NewGC[int]()
			} else {
				m = mm.NewRC[int]()
			}
			l := New(m)
			c := l.NewCursor()
			q, a := l.AllocInsertNodes(5)
			if !c.TryInsert(q, a) {
				t.Fatal("setup insert failed")
			}
			l.ReleaseNodes(q, a)
			c.Close()

			// Inject two auxiliary nodes between the head auxiliary and
			// the cell: first → aux → x1 → x2 → cell5 → aux → last.
			cell := l.first.Next().Next()
			if cell.Kind() != mm.KindCell {
				t.Fatal("setup: expected a cell after the head auxiliary")
			}
			headAux := l.first.Next()
			inject := func(before *mm.Node[int]) {
				x := m.Alloc()
				x.SetKind(mm.KindAux)
				next := before.Next()
				x.StoreNext(next)
				m.AddRef(next) // link x→next
				if !before.CASNext(next, x) {
					t.Fatal("setup CAS failed")
				}
				m.AddRef(x)     // link before→x
				m.Release(next) // dropped link before→next
				m.Release(x)    // allocation reference
			}
			inject(headAux)
			inject(headAux)

			if err := l.CheckQuiescent(); err == nil {
				t.Fatal("expected CheckQuiescent to reject the injected auxiliary chain")
			}

			stats := l.EnableStats()
			c = l.NewCursor() // Reset runs Update, which must collapse the chain
			if got := c.Item(); got != 5 {
				t.Fatalf("cursor item = %d, want 5", got)
			}
			c.Close()
			if err := l.CheckQuiescent(); err != nil {
				t.Fatalf("auxiliary chain not collapsed: %v", err)
			}
			s := stats.Snapshot()
			if s.AuxSkips == 0 || s.AuxRemovals == 0 {
				t.Fatalf("stats = %+v, want aux skips and removals recorded", s)
			}
			if rc, ok := m.(*mm.RC[int]); ok {
				// first, aux, cell, aux, last = 5 live cells; the two
				// injected auxiliaries must have been reclaimed.
				if live := rc.Stats().Live(); live != 5 {
					t.Fatalf("live = %d, want 5", live)
				}
			}
		})
	}
}

func TestTryDeleteAdvancesOverAuxChain(t *testing.T) {
	// Force TryDelete's chain scan (Fig 10 lines 13-16): inject an extra
	// auxiliary node after the deleted cell's successor auxiliary, as a
	// concurrent deletion stalled mid-cleanup would leave it.
	for _, mode := range []string{"gc", "rc"} {
		t.Run(mode, func(t *testing.T) {
			var m mm.Manager[int]
			if mode == "gc" {
				m = mm.NewGC[int]()
			} else {
				m = mm.NewRC[int]()
			}
			l := New(m)
			l.EnableStats()
			c := l.NewCursor()
			for _, v := range []int{2, 1} { // list [1 2]
				c.Reset()
				q, a := l.AllocInsertNodes(v)
				if !c.TryInsert(q, a) {
					t.Fatal("setup insert failed")
				}
				l.ReleaseNodes(q, a)
			}
			c.Close()

			// aux1 is the auxiliary after cell 1; inject x between aux1
			// and cell 2 so deleting 1 sees a chain aux1 -> x.
			cell1 := l.first.Next().Next()
			aux1 := cell1.Next()
			if !aux1.IsAux() {
				t.Fatal("setup: expected auxiliary after cell 1")
			}
			x := m.Alloc()
			x.SetKind(mm.KindAux)
			next := aux1.Next()
			x.StoreNext(next)
			m.AddRef(next)
			if !aux1.CASNext(next, x) {
				t.Fatal("setup CAS failed")
			}
			m.AddRef(x)
			m.Release(next)
			m.Release(x)

			del := l.NewCursor() // at cell 1
			if !del.TryDelete() {
				t.Fatal("delete failed")
			}
			del.Close()
			if got := l.Stats().Snapshot().ChainSteps; got < 1 {
				t.Fatalf("ChainSteps = %d, want ≥ 1", got)
			}
			if err := l.CheckQuiescent(); err != nil {
				t.Fatal(err)
			}
			if items := l.Items(); len(items) != 1 || items[0] != 2 {
				t.Fatalf("items = %v, want [2]", items)
			}
			if rc, ok := m.(*mm.RC[int]); ok {
				l.Close()
				if live := rc.Stats().Live(); live != 0 {
					t.Fatalf("live = %d after Close, want 0", live)
				}
			}
		})
	}
}
