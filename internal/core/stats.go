package core

import "sync/atomic"

// Counters accumulates the "extra work" measures of §4.1's amortized
// analysis: auxiliary-node hops beyond the one per position the structure
// always has, removals of adjacent auxiliary pairs, back-link walk steps,
// chain-collapse steps, and operation retries. All methods are safe on a
// nil receiver (counting disabled) and safe for concurrent use.
type Counters struct {
	auxSkips         atomic.Int64
	auxRemovals      atomic.Int64
	backlinkSteps    atomic.Int64
	chainSteps       atomic.Int64
	deleteCASRetries atomic.Int64
	insertRetries    atomic.Int64
	deleteRetries    atomic.Int64
}

// WorkStats is a plain snapshot of Counters.
type WorkStats struct {
	// AuxSkips counts auxiliary nodes traversed by Update beyond the
	// single auxiliary node every position always has: the paper's
	// "work done traversing extra auxiliary nodes" (§4.1).
	AuxSkips int64
	// AuxRemovals counts successful removals of an adjacent auxiliary
	// pair (Figure 5 line 7).
	AuxRemovals int64
	// BacklinkSteps counts back_link hops in TryDelete (Figure 10 line 9).
	BacklinkSteps int64
	// ChainSteps counts auxiliary-chain hops in TryDelete (Fig 10 line 14).
	ChainSteps int64
	// DeleteCASRetries counts retries of the chain-collapse Compare&Swap
	// (Figure 10 lines 17-21).
	DeleteCASRetries int64
	// InsertRetries counts failed TryInsert attempts: the paper's
	// "repetitive calls to TryInsert" (§4.1).
	InsertRetries int64
	// DeleteRetries counts failed TryDelete attempts.
	DeleteRetries int64
}

// ExtraWork sums every component of §4.1's extra-work measure.
func (w WorkStats) ExtraWork() int64 {
	return w.AuxSkips + w.AuxRemovals + w.BacklinkSteps + w.ChainSteps +
		w.DeleteCASRetries + w.InsertRetries + w.DeleteRetries
}

// Snapshot returns the current counter values; zero values if counting is
// disabled.
func (c *Counters) Snapshot() WorkStats {
	if c == nil {
		return WorkStats{}
	}
	return WorkStats{
		AuxSkips:         c.auxSkips.Load(),
		AuxRemovals:      c.auxRemovals.Load(),
		BacklinkSteps:    c.backlinkSteps.Load(),
		ChainSteps:       c.chainSteps.Load(),
		DeleteCASRetries: c.deleteCASRetries.Load(),
		InsertRetries:    c.insertRetries.Load(),
		DeleteRetries:    c.deleteRetries.Load(),
	}
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	if c == nil {
		return
	}
	c.auxSkips.Store(0)
	c.auxRemovals.Store(0)
	c.backlinkSteps.Store(0)
	c.chainSteps.Store(0)
	c.deleteCASRetries.Store(0)
	c.insertRetries.Store(0)
	c.deleteRetries.Store(0)
}

// AddInsertRetries records n failed insertion attempts; called by the
// dictionary layer's retry loops (Figure 12).
func (c *Counters) AddInsertRetries(n int64) {
	if c == nil {
		return
	}
	c.insertRetries.Add(n)
}

// AddDeleteRetries records n failed deletion attempts (Figure 13).
func (c *Counters) AddDeleteRetries(n int64) {
	if c == nil {
		return
	}
	c.deleteRetries.Add(n)
}

func (c *Counters) addAuxSkips(n int64) {
	if c == nil {
		return
	}
	c.auxSkips.Add(n)
}

func (c *Counters) addAuxRemovals(n int64) {
	if c == nil {
		return
	}
	c.auxRemovals.Add(n)
}

func (c *Counters) addBacklinkSteps(n int64) {
	if c == nil {
		return
	}
	c.backlinkSteps.Add(n)
}

func (c *Counters) addChainSteps(n int64) {
	if c == nil {
		return
	}
	c.chainSteps.Add(n)
}

func (c *Counters) addDeleteCASRetries(n int64) {
	if c == nil {
		return
	}
	c.deleteCASRetries.Add(n)
}
