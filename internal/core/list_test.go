package core

import (
	"fmt"
	"testing"

	"valois/internal/mm"
)

// managers runs a subtest under both memory managers so every list
// behaviour is exercised with reference counting and with GC reclamation.
func managers(t *testing.T, f func(t *testing.T, m mm.Manager[int])) {
	t.Helper()
	t.Run("gc", func(t *testing.T) { f(t, mm.NewGC[int]()) })
	t.Run("rc", func(t *testing.T) { f(t, mm.NewRC[int]()) })
}

func TestEmptyList(t *testing.T) {
	managers(t, func(t *testing.T, m mm.Manager[int]) {
		l := New(m)
		if err := l.CheckQuiescent(); err != nil {
			t.Fatal(err)
		}
		if got := l.Len(); got != 0 {
			t.Fatalf("Len = %d, want 0", got)
		}
		c := l.NewCursor()
		if !c.End() {
			t.Fatal("cursor on empty list must be at end-of-list position")
		}
		if c.Next() {
			t.Fatal("Next at end-of-list must return false (Fig 7 line 2)")
		}
		c.Close()
	})
}

func TestListCloseReclaimsEverything(t *testing.T) {
	m := mm.NewRC[int]()
	l := New(m)
	c := l.NewCursor()
	for i := 0; i < 10; i++ {
		q, a := l.AllocInsertNodes(i)
		if !c.TryInsert(q, a) {
			t.Fatal("uncontended TryInsert failed")
		}
		l.ReleaseNodes(q, a)
		c.Update()
	}
	c.Close()
	if got := l.Len(); got != 10 {
		t.Fatalf("Len = %d, want 10", got)
	}
	l.Close()
	if s := m.Stats(); s.Live() != 0 {
		t.Fatalf("live cells after Close = %d, want 0", s.Live())
	}
}

func insertAll(t *testing.T, l *List[int], items ...int) {
	t.Helper()
	c := l.NewCursor()
	defer c.Close()
	for _, item := range items {
		// Insert each item at the front; the resulting order is the
		// reverse of the argument order.
		c.Reset()
		q, a := l.AllocInsertNodes(item)
		if !c.TryInsert(q, a) {
			t.Fatalf("uncontended TryInsert(%d) failed", item)
		}
		l.ReleaseNodes(q, a)
	}
}

func equalItems(got, want []int) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func TestInsertAtFront(t *testing.T) {
	managers(t, func(t *testing.T, m mm.Manager[int]) {
		l := New(m)
		insertAll(t, l, 3, 2, 1)
		if got := l.Items(); !equalItems(got, []int{1, 2, 3}) {
			t.Fatalf("items = %v, want [1 2 3]", got)
		}
		if err := l.CheckQuiescent(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestInsertAtEnd(t *testing.T) {
	managers(t, func(t *testing.T, m mm.Manager[int]) {
		l := New(m)
		c := l.NewCursor()
		defer c.Close()
		for i := 1; i <= 4; i++ {
			// Walk to the end-of-list position and insert there: §2.1
			// allows insertion at the position preceding any cursor,
			// including the distinguished end position.
			c.Reset()
			for !c.End() {
				c.Next()
			}
			q, a := l.AllocInsertNodes(i)
			if !c.TryInsert(q, a) {
				t.Fatalf("append %d failed", i)
			}
			l.ReleaseNodes(q, a)
		}
		if got := l.Items(); !equalItems(got, []int{1, 2, 3, 4}) {
			t.Fatalf("items = %v, want [1 2 3 4]", got)
		}
		if err := l.CheckQuiescent(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestInsertMiddle(t *testing.T) {
	managers(t, func(t *testing.T, m mm.Manager[int]) {
		l := New(m)
		insertAll(t, l, 30, 10)
		c := l.NewCursor()
		defer c.Close()
		if c.Item() != 10 {
			t.Fatalf("first item = %d, want 10", c.Item())
		}
		c.Next() // now visiting 30
		q, a := l.AllocInsertNodes(20)
		if !c.TryInsert(q, a) {
			t.Fatal("middle insert failed")
		}
		l.ReleaseNodes(q, a)
		if got := l.Items(); !equalItems(got, []int{10, 20, 30}) {
			t.Fatalf("items = %v, want [10 20 30]", got)
		}
		if err := l.CheckQuiescent(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestTryInsertFailsOnInvalidCursor(t *testing.T) {
	managers(t, func(t *testing.T, m mm.Manager[int]) {
		l := New(m)
		insertAll(t, l, 1)
		c1 := l.NewCursor()
		defer c1.Close()
		// A second cursor inserts at the same position, invalidating c1.
		c2 := l.NewCursor()
		q2, a2 := l.AllocInsertNodes(99)
		if !c2.TryInsert(q2, a2) {
			t.Fatal("c2 insert failed")
		}
		l.ReleaseNodes(q2, a2)
		c2.Close()

		q1, a1 := l.AllocInsertNodes(7)
		if c1.TryInsert(q1, a1) {
			t.Fatal("TryInsert on an invalidated cursor must fail")
		}
		// Retry after Update, as Figure 12 does. Update repositions the
		// cursor on the next normal cell after its pre_aux — here the
		// newly inserted 99 — which is exactly why Figure 12 re-checks
		// the key's position before retrying.
		c1.Update()
		if got := c1.Item(); got != 99 {
			t.Fatalf("after Update cursor visits %d, want 99", got)
		}
		if !c1.TryInsert(q1, a1) {
			t.Fatal("TryInsert after Update failed")
		}
		l.ReleaseNodes(q1, a1)
		if got := l.Items(); !equalItems(got, []int{7, 99, 1}) {
			t.Fatalf("items = %v, want [7 99 1]", got)
		}
		if err := l.CheckQuiescent(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestDeleteOnly(t *testing.T) {
	managers(t, func(t *testing.T, m mm.Manager[int]) {
		l := New(m)
		insertAll(t, l, 42)
		c := l.NewCursor()
		if !c.TryDelete() {
			t.Fatal("uncontended TryDelete failed")
		}
		c.Close()
		if got := l.Len(); got != 0 {
			t.Fatalf("Len after delete = %d, want 0", got)
		}
		if err := l.CheckQuiescent(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestDeleteEachPosition(t *testing.T) {
	managers(t, func(t *testing.T, m mm.Manager[int]) {
		for del := 0; del < 3; del++ {
			t.Run(fmt.Sprintf("pos%d", del), func(t *testing.T) {
				l := New(m)
				insertAll(t, l, 2, 1, 0)
				c := l.NewCursor()
				defer c.Close()
				for i := 0; i < del; i++ {
					c.Next()
				}
				if got := c.Item(); got != del {
					t.Fatalf("cursor item = %d, want %d", got, del)
				}
				if !c.TryDelete() {
					t.Fatal("TryDelete failed")
				}
				var want []int
				for i := 0; i < 3; i++ {
					if i != del {
						want = append(want, i)
					}
				}
				if got := l.Items(); !equalItems(got, want) {
					t.Fatalf("items = %v, want %v", got, want)
				}
				if err := l.CheckQuiescent(); err != nil {
					t.Fatal(err)
				}
			})
		}
	})
}

func TestTryDeleteAtEndFails(t *testing.T) {
	managers(t, func(t *testing.T, m mm.Manager[int]) {
		l := New(m)
		c := l.NewCursor()
		defer c.Close()
		if c.TryDelete() {
			t.Fatal("TryDelete at the end-of-list position must fail")
		}
	})
}

func TestTryDeleteFailsOnInvalidCursor(t *testing.T) {
	managers(t, func(t *testing.T, m mm.Manager[int]) {
		l := New(m)
		insertAll(t, l, 1)
		c1 := l.NewCursor()
		defer c1.Close()
		c2 := l.NewCursor()
		// c2 deletes the cell c1 targets; both cursors share pre_aux, so
		// c1's subsequent Compare&Swap must fail.
		if !c2.TryDelete() {
			t.Fatal("c2 delete failed")
		}
		c2.Close()
		if c1.TryDelete() {
			t.Fatal("second TryDelete of the same cell must fail")
		}
	})
}

func TestExactlyOneDeleterWins(t *testing.T) {
	managers(t, func(t *testing.T, m mm.Manager[int]) {
		l := New(m)
		insertAll(t, l, 5)
		cursors := make([]*Cursor[int], 4)
		for i := range cursors {
			cursors[i] = l.NewCursor()
		}
		wins := 0
		for _, c := range cursors {
			if c.TryDelete() {
				wins++
			}
		}
		for _, c := range cursors {
			c.Close()
		}
		if wins != 1 {
			t.Fatalf("%d TryDeletes of one cell succeeded, want exactly 1", wins)
		}
	})
}

func TestCursorTraversesDeletedCell(t *testing.T) {
	// §2.2 cell persistence: a cursor visiting a deleted cell can still
	// read its contents and continue traversing.
	managers(t, func(t *testing.T, m mm.Manager[int]) {
		l := New(m)
		insertAll(t, l, 3, 2, 1)
		parked := l.NewCursor()
		parked.Next() // visiting 2
		if got := parked.Item(); got != 2 {
			t.Fatalf("parked on %d, want 2", got)
		}

		deleter := l.NewCursor()
		deleter.Next()
		if !deleter.TryDelete() { // delete 2
			t.Fatal("delete failed")
		}
		deleter.Close()

		if !parked.OnDeleted() {
			t.Fatal("parked cursor should observe its cell was deleted")
		}
		if got := parked.Item(); got != 2 {
			t.Fatalf("deleted cell's item = %d, want 2 (persistence)", got)
		}
		if !parked.Next() {
			t.Fatal("Next from a deleted cell failed")
		}
		if got := parked.Item(); got != 3 {
			t.Fatalf("after Next from deleted cell, item = %d, want 3", got)
		}
		parked.Close()
		if err := l.CheckQuiescent(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestInsertAfterTargetDeletedRetries(t *testing.T) {
	// The Figure 2 scenario: insertion at a position whose cell is
	// concurrently deleted. The insertion's Compare&Swap must fail (the
	// deletion swung pre_aux.next first), and the retry must place the
	// new cell correctly — the combination the paper shows cannot be
	// allowed to interleave wrongly.
	managers(t, func(t *testing.T, m mm.Manager[int]) {
		l := New(m)
		insertAll(t, l, 3, 2) // list: [2 3]
		inserter := l.NewCursor()
		inserter.Next() // visiting 3; would insert before it
		deleter := l.NewCursor()
		deleter.Next()
		if !deleter.TryDelete() { // delete 3
			t.Fatal("delete failed")
		}
		deleter.Close()

		q, a := l.AllocInsertNodes(9)
		if inserter.TryInsert(q, a) {
			t.Fatal("insert after concurrent delete of target must fail")
		}
		inserter.Update()
		if !inserter.TryInsert(q, a) {
			t.Fatal("retry after Update failed")
		}
		l.ReleaseNodes(q, a)
		inserter.Close()
		if got := l.Items(); !equalItems(got, []int{2, 9}) {
			t.Fatalf("items = %v, want [2 9]", got)
		}
		if err := l.CheckQuiescent(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAdjacentDeletes(t *testing.T) {
	// The Figure 3 scenario: deletion of two adjacent cells. Whatever the
	// order, neither deletion may be undone.
	managers(t, func(t *testing.T, m mm.Manager[int]) {
		l := New(m)
		insertAll(t, l, 4, 3, 2, 1) // [1 2 3 4]
		cB := l.NewCursor()
		cB.Next() // at 2
		cC := l.NewCursor()
		cC.Next()
		cC.Next() // at 3
		if !cB.TryDelete() {
			t.Fatal("delete of 2 failed")
		}
		if !cC.TryDelete() {
			t.Fatal("delete of 3 failed")
		}
		cB.Close()
		cC.Close()
		if got := l.Items(); !equalItems(got, []int{1, 4}) {
			t.Fatalf("items = %v, want [1 4] (no deletion undone)", got)
		}
		if err := l.CheckQuiescent(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestValidAndUpdate(t *testing.T) {
	managers(t, func(t *testing.T, m mm.Manager[int]) {
		l := New(m)
		insertAll(t, l, 1)
		c := l.NewCursor()
		defer c.Close()
		if !c.Valid() {
			t.Fatal("fresh cursor must be valid")
		}
		other := l.NewCursor()
		q, a := l.AllocInsertNodes(0)
		other.TryInsert(q, a)
		l.ReleaseNodes(q, a)
		other.Close()
		if c.Valid() {
			t.Fatal("cursor must be invalid after concurrent insert at its position")
		}
		c.Update()
		if !c.Valid() {
			t.Fatal("Update must restore validity")
		}
		if got := c.Item(); got != 0 {
			t.Fatalf("after Update cursor visits %d, want 0 (Fig 12's uniqueness re-check relies on this)", got)
		}
	})
}
