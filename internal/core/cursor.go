package core

import (
	"valois/internal/mm"
	"valois/internal/primitive"
)

// Cursor is a position in a list (§2.1), implemented as the three pointers
// of §3: target is the cell at the visited position (equal to the Last
// dummy when visiting the end-of-list position), pre_aux is an auxiliary
// node, and pre_cell is a regular cell used only by TryDelete. The cursor
// is valid when pre_aux.next = target; concurrent structural changes near
// the cursor invalidate it, and Update revalidates it.
//
// A cursor is owned by a single goroutine; distinct goroutines use distinct
// cursors over the same shared list. Under mm.RC the cursor holds counted
// references to the cells its three pointers visit; under mm.EBR it holds
// an epoch pin for its whole lifetime instead, which is what keeps the
// cells behind its plain-loaded pointers from being recycled. Either way,
// call Close when done with the cursor.
type Cursor[T any] struct {
	list    *List[T]
	target  *mm.Node[T]
	preAux  *mm.Node[T]
	preCell *mm.Node[T]
	guard   mm.Guard // the epoch pin under mm.EBR
	pinned  bool
}

// List returns the list this cursor traverses.
func (c *Cursor[T]) List() *List[T] { return c.list }

// Reset moves the cursor to the first position of the list, implementing
// First (Figure 6).
func (c *Cursor[T]) Reset() {
	l := c.list
	// refs: drop whatever the cursor held before.
	l.release(c.preCell)
	l.release(c.preAux)
	l.release(c.target)

	c.preCell = l.first                       // Fig 6 line 1; the root pointer never changes,
	l.addRef(c.preCell)                       // so SafeRead(First) is a plain counted copy
	c.preAux = l.safeRead(l.first.NextAddr()) // Fig 6 line 2
	c.target = nil                            // Fig 6 line 3
	c.update()                                // Fig 6 line 4
}

// Close releases the cursor's references and its epoch pin. The cursor
// must not be used afterwards.
func (c *Cursor[T]) Close() {
	l := c.list
	l.release(c.preCell)
	l.release(c.preAux)
	l.release(c.target)
	c.preCell, c.preAux, c.target = nil, nil, nil
	l.unpin(c.guard, c.pinned)
	c.pinned = false
}

// End reports whether the cursor is visiting the distinguished end-of-list
// position (target = Last, §3).
func (c *Cursor[T]) End() bool { return c.target == c.list.last }

// Item returns the item of the cell the cursor is visiting. It must not be
// called at the end-of-list position. Thanks to cell persistence (§2.2)
// Item remains readable even after the cell has been deleted from the list.
func (c *Cursor[T]) Item() T { return c.target.Item }

// Target returns the cell the cursor is visiting. Exposed for structural
// tests and for building higher-level structures (e.g. the skip list's
// level descent).
func (c *Cursor[T]) Target() *mm.Node[T] { return c.target }

// PreCell returns the cursor's pre_cell pointer: the cell from which the
// cursor last advanced (or the First dummy after a Reset). After a search
// that stopped at the first item ≥ some key, PreCell is the closest
// preceding cell — which is how the skip list obtains the node to descend
// from. The returned cell is kept alive by the cursor's reference; callers
// that need it beyond the cursor's lifetime must AddRef it first.
func (c *Cursor[T]) PreCell() *mm.Node[T] { return c.preCell }

// OnDeleted reports whether the visited cell has been deleted from the
// list by some process. Traversal past a deleted cell still works: its
// next pointer is kept intact until the cell is reclaimed.
func (c *Cursor[T]) OnDeleted() bool {
	return c.target != c.list.last && c.target.Deleted()
}

// Valid reports whether the cursor is currently valid (pre_aux.next =
// target, §3). A valid cursor may be invalidated at any moment by a
// concurrent operation; the TryInsert/TryDelete Compare&Swap is the only
// authoritative validity test.
func (c *Cursor[T]) Valid() bool { return c.preAux.Next() == c.target }

// Update revalidates the cursor, implementing Update (Figure 5): it walks
// from pre_aux over any chain of auxiliary nodes, removing pairs of
// adjacent auxiliary nodes it encounters, and lands target on the next
// normal cell (or Last).
func (c *Cursor[T]) Update() { c.update() }

func (c *Cursor[T]) update() {
	l := c.list
	if c.preAux.Next() == c.target { // Fig 5 line 1: already valid
		return
	}
	p := c.preAux                  // refs: cursor's pre_aux reference transfers to p
	n := l.safeRead(p.NextAddr())  // Fig 5 line 4
	l.release(c.target)            // Fig 5 line 5
	for n != l.last && n.IsAux() { // Fig 5 line 6
		// Fig 5 line 7: two adjacent auxiliary nodes — try to unlink the
		// first by swinging pre_cell's next past it. If pre_cell has
		// itself been deleted this swing is harmless: it updates a cell
		// that is no longer reachable from the list.
		l.maybeYield()
		if !l.noAuxRemoval && c.preCell.CASNext(p, n) {
			l.linkRef(n) // refs: new link pre_cell→n
			l.unlink(p)  // refs: dropped link pre_cell→p
			l.stats.addAuxRemovals(1)
		}
		l.release(p)                 // Fig 5 line 8: our traversal reference
		p = n                        // Fig 5 line 9
		n = l.safeRead(p.NextAddr()) // Fig 5 line 10
		l.stats.addAuxSkips(1)
	}
	c.preAux = p // Fig 5 line 11
	c.target = n // Fig 5 line 12
}

// Next advances the cursor to the next position, implementing Next
// (Figure 7). It returns false if the cursor is already at the end-of-list
// position and cannot be advanced.
func (c *Cursor[T]) Next() bool {
	l := c.list
	if c.target == l.last { // Fig 7 lines 1-2
		return false
	}
	l.addRef(c.target)   // Fig 7 line 4: SafeRead(c.target) duplicates a held reference
	l.release(c.preCell) // Fig 7 line 3
	c.preCell = c.target
	next := l.safeRead(c.target.NextAddr()) // Fig 7 line 6
	l.release(c.preAux)                     // Fig 7 line 5
	c.preAux = next
	c.update() // Fig 7 line 7
	return true
}

// TryInsert attempts to insert the normal cell q, followed by the
// auxiliary node a, at the position visited by the cursor (Figure 9;
// see Figure 8 for the resulting shape: pre_aux → q → a → target).
// It returns false, without inserting, if the cursor has become invalid;
// the caller should Update the cursor, re-establish its position, and
// retry with the same two cells.
//
// q must be a KindCell with its Item set; a must be a KindAux. Both remain
// owned by the caller until an attempt succeeds: on success the caller's
// allocation references still stand and should be dropped with
// ReleaseNodes (or kept, if the caller wants to pin the cells).
func (c *Cursor[T]) TryInsert(q, a *mm.Node[T]) bool {
	l := c.list
	if q.Next() != a { // Fig 9 line 1 (idempotent across retries)
		q.StoreNext(a)
		l.linkRef(a) // refs: link q→a
	}
	if old := a.Next(); old != c.target { // Fig 9 line 2 (retarget on retry)
		l.linkRef(c.target) // refs: link a→target
		a.StoreNext(c.target)
		l.unlink(old) // refs: dropped link a→old target (no-op first time)
	}
	l.maybeYield()
	if c.preAux.CASNext(c.target, q) { // Fig 9 line 3
		l.linkRef(q)       // refs: new link pre_aux→q
		l.unlink(c.target) // refs: dropped link pre_aux→target
		return true
	}
	return false
}

// TryDelete attempts to delete the cell visited by the cursor
// (Figure 10). It returns false if the cursor has become invalid (or is at
// the end-of-list position); the caller should Update and retry.
//
// On success the cell is unlinked and its back_link is set to pre_cell;
// the bulk of the work is then removing the "extra" auxiliary node the
// deletion leaves behind, chasing back_links to a cell still in the list
// (lines 7–11), collapsing any chain of auxiliary nodes (lines 12–16), and
// swinging that cell's next past the chain (lines 17–21).
func (c *Cursor[T]) TryDelete() bool {
	l := c.list
	d := c.target // Fig 10 line 1 (borrow the cursor's reference)
	if d == l.last {
		return false
	}
	// Fig 10 line 2. The paper reads d.next plainly; we use SafeRead so
	// that the reference accounting below is uniform. Note the read may be
	// stale by the time of the Compare&Swap (d.next moves when an Update
	// collapses auxiliary nodes after d); installing the older auxiliary
	// node is benign because bypassed auxiliary nodes keep pointing into
	// the list, and the chain collapse below removes the slack.
	n := l.safeRead(d.NextAddr())
	l.maybeYield()
	if !c.preAux.CASNext(d, n) { // Fig 10 line 3
		l.release(n)
		return false // Fig 10 lines 4-5
	}
	l.linkRef(n) // refs: new link pre_aux→n
	l.unlink(d)  // refs: dropped link pre_aux→d

	l.linkRef(c.preCell)
	d.StoreBackLink(c.preCell) // Fig 10 line 6 (the stored pointer is counted)

	// Fig 10 lines 7-11: walk back_links to a cell still in the list.
	p := c.preCell
	l.addRef(p) // refs: private copy; the cursor keeps its own pre_cell reference
	for {
		q := l.safeRead(p.BackLinkAddr()) // Fig 10 line 9
		if q == nil {                     // Fig 10 line 8
			break
		}
		l.release(p) // Fig 10 line 10
		p = q        // Fig 10 line 11
		l.stats.addBacklinkSteps(1)
	}

	s := l.safeRead(p.NextAddr()) // Fig 10 line 12

	// Fig 10 lines 13-16: advance n to the last auxiliary node of the
	// chain (stop when the node after n is a normal cell).
	for {
		after := n.Next()
		if after == nil || after.IsNormal() {
			break
		}
		q := l.safeRead(n.NextAddr()) // Fig 10 line 14
		l.release(n)                  // Fig 10 line 15
		n = q                         // Fig 10 line 16
		l.stats.addChainSteps(1)
	}

	// Fig 10 lines 17-21: swing p.next past the auxiliary chain. Stop on
	// success, or when p has itself been deleted (its deleter's back_link
	// walk takes over), or when the chain has been extended by another
	// deletion (that deleter's collapse takes over).
	backoff := primitive.Backoff{Disabled: l.noBackoff}
	for {
		l.maybeYield()
		if p.CASNext(s, n) { // Fig 10 line 17
			l.linkRef(n) // refs: new link p→n
			l.unlink(s)  // refs: dropped link p→s
			break
		}
		if p.BackLink() != nil {
			break
		}
		if after := n.Next(); after != nil && after.IsAux() {
			break
		}
		backoff.Wait()               // §2.1: contended swing; back off before re-reading
		l.release(s)                 // Fig 10 line 19
		s = l.safeRead(p.NextAddr()) // Fig 10 line 20
		l.stats.addDeleteCASRetries(1)
	}
	l.release(p) // Fig 10 line 22
	l.release(s) // Fig 10 line 23
	l.release(n) // Fig 10 line 24
	return true  // Fig 10 line 25
}

// AllocInsertNodes allocates the cell-and-auxiliary-node pair TryInsert
// needs, with the cell's item set. It returns nil, nil when the manager's
// capacity is exhausted.
func (l *List[T]) AllocInsertNodes(item T) (q, a *mm.Node[T]) {
	q = l.manager.Alloc()
	if q == nil {
		return nil, nil
	}
	a = l.manager.Alloc()
	if a == nil {
		l.manager.Release(q)
		return nil, nil
	}
	q.SetKind(mm.KindCell)
	q.Item = item
	a.SetKind(mm.KindAux)
	return q, a
}

// ReleaseNodes drops the caller's allocation references on nodes obtained
// from AllocInsertNodes, after a successful insertion (the list's links now
// keep them alive) or when abandoning an insertion.
func (l *List[T]) ReleaseNodes(nodes ...*mm.Node[T]) {
	for _, n := range nodes {
		l.manager.Release(n)
	}
}
