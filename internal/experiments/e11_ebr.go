package experiments

import (
	"fmt"
	"runtime"
	"time"

	"valois/internal/core"
	"valois/internal/dict"
	"valois/internal/mm"
	"valois/internal/workload"
)

// E11 measures the epoch-based reclamation manager (mode=ebr) against the
// paper's §5 reference counts (mode=rc) and the GC baseline on the two
// axes where the modes differ: the C8 per-hop traversal cost (E8's
// single-goroutine methodology — ebr exists precisely to remove the two
// atomic counter updates SafeRead/Release charge per hop) and allocation
// churn under multiprogramming (E9/E10's methodology — ebr's retire path
// defers cells through limbo, so its churn throughput shows the grace-
// period overhead the traversal numbers do not). Every ebr arm ends with
// a quiesce: limbo must drain completely and the live-cell count must
// return to zero, so the speed columns can never be bought with a leak.
func E11(o Options) Table {
	size := 10000
	passes := 30
	procs := []int{1, 2, 4, 8}
	if o.Quick {
		size = 1000
		passes = 5
		procs = []int{1, 4}
	}
	const holdPerG = 8

	t := Table{
		ID:      "E11",
		Title:   fmt.Sprintf("epoch-based reclamation vs §5 counts: %d-cell traversal and free-list churn", size),
		Claim:   `"The most time consuming operation is most likely performing a SafeRead on each cell as we traverse the list" (§6) — epoch-based reclamation pins once per cursor instead of counting every hop`,
		Columns: []string{"point", "gc", "rc", "ebr", "ebr vs rc", "ebr vs gc", "ebr leak check"},
	}

	// Per-hop traversal cost, E8's shape: prefill, warm, timed passes.
	hop := map[mm.Mode]float64{}
	leak := "ok (0 live)"
	for _, mode := range []mm.Mode{mm.ModeGC, mm.ModeRC, mm.ModeEBR} {
		m := mm.NewManager[int](mode)
		l := core.New(m)
		c := l.NewCursor()
		for i := 0; i < size; i++ {
			q, a := l.AllocInsertNodes(i)
			if !c.TryInsert(q, a) {
				panic("experiments: prefill insert failed on idle list")
			}
			l.ReleaseNodes(q, a)
			c.Update()
		}
		c.Close()

		runtime.GC()
		warm := l.NewCursor()
		for !warm.End() {
			if !warm.Next() {
				break
			}
		}
		warm.Close()

		start := time.Now()
		items := 0
		for pass := 0; pass < passes; pass++ {
			tc := l.NewCursor()
			for !tc.End() {
				items++
				if !tc.Next() {
					break
				}
			}
			tc.Close()
		}
		hop[mode] = time.Since(start).Seconds() * 1e9 / float64(items)
		if q, ok := m.(mm.Quiescer); ok {
			l.Close()
			leak = e11Drain(q)
		}
	}
	t.Rows = append(t.Rows, []string{
		"traversal (ns/item)",
		fmt.Sprintf("%.1f", hop[mm.ModeGC]),
		fmt.Sprintf("%.1f", hop[mm.ModeRC]),
		fmt.Sprintf("%.1f", hop[mm.ModeEBR]),
		fmtF(hop[mm.ModeEBR]/hop[mm.ModeRC]) + "x",
		fmtF(hop[mm.ModeEBR]/hop[mm.ModeGC]) + "x",
		leak,
	})

	// Raw Alloc/Release churn with the E10 yield hook (the single-CPU
	// analogue of a preempted process holding a CAS window open).
	for _, p := range procs {
		gcRate, _ := churn(mm.NewGC[int](), p, o.duration(), holdPerG)
		runtime.GC()
		rcm := mm.NewRC[int]()
		rcm.SetYieldHook(runtime.Gosched)
		rcRate, _ := churn(rcm, p, o.duration(), holdPerG)
		runtime.GC()
		ebrm := mm.NewEBR[int]()
		ebrm.SetYieldHook(runtime.Gosched)
		ebrRate, _ := churn(ebrm, p, o.duration(), holdPerG)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("churn p=%d (pairs/s)", p),
			fmtOps(gcRate),
			fmtOps(rcRate),
			fmtOps(ebrRate),
			fmtF(safeRatio(ebrRate, rcRate)) + "x",
			fmtF(safeRatio(ebrRate, gcRate)) + "x",
			e11Drain(ebrm),
		})
	}

	// End-to-end: the update-heavy sorted-list workload under torture
	// (E10's dict row), once per mode.
	gcOps, _ := e11Dict(o, mm.ModeGC)
	rcOps, _ := e11Dict(o, mm.ModeRC)
	ebrOps, dictLeak := e11Dict(o, mm.ModeEBR)
	t.Rows = append(t.Rows, []string{
		"dict p=4 (ops/s)",
		fmtOps(gcOps),
		fmtOps(rcOps),
		fmtOps(ebrOps),
		fmtF(safeRatio(ebrOps, rcOps)) + "x",
		fmtF(safeRatio(ebrOps, gcOps)) + "x",
		dictLeak,
	})

	t.Notes = append(t.Notes,
		"ebr traversal hops are plain loads inside a pinned epoch (pin/unpin amortized once per cursor), so the per-hop cost must sit strictly below rc's two atomic counter updates and near the gc baseline",
		"ebr still counts stored links (edges, descriptors), so mutation-heavy rows pay counted link maintenance plus limbo bookkeeping — reclamation cost moved off the reader, not eliminated",
		"every ebr arm force-advances and drains at quiescence: limbo empty, live cells zero — the throughput columns are leak-audited",
		"rc and ebr churn arms install the same free-list yield hook as E10; the gc arm has no free-list head to contend on")
	return t
}

// e11Drain quiesces an EBR manager and renders the leak-check cell.
func e11Drain(q mm.Quiescer) string {
	q.ForceAdvance()
	if !q.Quiesce() {
		return fmt.Sprintf("WEDGED (%d in limbo)", q.LimboLen())
	}
	type liver interface{ Stats() mm.Stats }
	if s, ok := q.(liver); ok {
		if live := s.Stats().Live(); live != 0 {
			return fmt.Sprintf("LEAK (%d live)", live)
		}
	}
	return "ok (0 live)"
}

// e11Dict runs the update-heavy sorted-list workload at p=4 under torture
// (E10's dict-row methodology) for the given mode, returning ops/s and
// the ebr leak-check cell ("-" for modes without deferred reclamation).
func e11Dict(o Options, mode mm.Mode) (float64, string) {
	const p = 4
	d := dict.NewSortedList[int, int](mode)
	d.EnableTorture(2)
	switch m := d.List().Manager().(type) {
	case *mm.RC[dict.Entry[int, int]]:
		m.SetYieldHook(runtime.Gosched)
	case *mm.EBR[dict.Entry[int, int]]:
		m.SetYieldHook(runtime.Gosched)
	}
	cfg := workload.Config{
		Goroutines: p,
		Duration:   o.duration(),
		Mix:        workload.UpdateHeavy(),
		KeySpace:   512,
		Prefill:    256,
		Seed:       o.Seed,
	}
	workload.Prefill(cfg, d)
	res := workload.Run(cfg, d)
	leak := "-"
	if q, ok := d.List().Manager().(mm.Quiescer); ok {
		d.Close()
		leak = e11Drain(q)
	} else {
		d.Close()
	}
	return res.OpsPerSec(), leak
}

// safeRatio guards the division of throughput or latency ratios.
func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
