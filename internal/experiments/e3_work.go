package experiments

import (
	"fmt"
	"math"

	"valois/internal/dict"
	"valois/internal/mm"
	"valois/internal/skiplist"
	"valois/internal/workload"
)

// E3 reproduces claim C4 (§4.1): with p processes, a sequence of n
// sorted-list dictionary operations does O(n²) total work — each
// completed operation can force p−1 retries and each operation may
// traverse extra auxiliary nodes. The experiment prefillls lists of
// increasing size, runs a fixed number of update-heavy operations, and
// reports the extra work (retries + auxiliary traffic) per operation.
func E3(o Options) Table {
	sizes := []int{256, 1024}
	procs := []int{1, 2, 4, 8, 16}
	opsTotal := 8000
	if o.Quick {
		sizes = []int{128}
		procs = []int{1, 4}
		opsTotal = 800
	}

	t := Table{
		ID:    "E3",
		Title: "sorted list: extra work per operation (aux hops + retries)",
		Claim: `"the total work done ... for a sequence of n operations by p processes is O(n²)" (§4.1)`,
		Columns: append([]string{"n"}, func() []string {
			var cols []string
			for _, p := range procs {
				cols = append(cols, fmt.Sprintf("p=%d extra/op", p), fmt.Sprintf("p=%d retries/op", p))
			}
			return cols
		}()...),
	}
	for _, n := range sizes {
		row := []string{fmt.Sprintf("%d", n)}
		for _, p := range procs {
			s := dict.NewSortedList[int, int](mm.ModeGC)
			s.EnableStats()
			// On the single-CPU reproduction host operations run
			// quasi-serially; the torture yields open the
			// find-position-then-Compare&Swap window so the contention
			// §4.1 analyzes actually occurs (core.List.EnableTorture).
			s.EnableTorture(2)
			cfg := workload.Config{
				Goroutines: p,
				Mix:        workload.UpdateHeavy(),
				KeySpace:   2 * n,
				Prefill:    n,
				Seed:       o.Seed,
			}
			workload.Prefill(cfg, s)
			s.List().Stats().Reset()
			res := workload.RunOps(cfg, opsTotal/p, s)
			w := s.List().Stats().Snapshot()
			row = append(row,
				fmtF(float64(w.ExtraWork())/float64(res.Ops)),
				fmtF(float64(w.InsertRetries+w.DeleteRetries)/float64(res.Ops)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"extra work counts Update's auxiliary-node skips/removals, back-link walks, chain collapses, and TryInsert/TryDelete retries",
		"p=1 is the contention-free baseline (≈0); extra work grows with p — the paper's 'each successfully completed operation can cause p−1 concurrent processes to have to retry'",
		"torture yields (core.List.EnableTorture) force mid-operation interleaving, which the single-CPU host otherwise almost never produces")
	return t
}

// E4 reproduces claim C5 (§4.1): the hash-table dictionary does O(1)
// expected extra work per operation when the hash spreads operations
// across buckets — per-op extra work should stay flat as n grows.
func E4(o Options) Table {
	sizes := []int{256, 1024, 4096, 16384}
	const p = 8
	opsTotal := 16000
	if o.Quick {
		sizes = []int{256, 1024}
		opsTotal = 1600
	}

	t := Table{
		ID:      "E4",
		Title:   fmt.Sprintf("hash table (load factor 2): extra work per operation, p=%d", p),
		Claim:   `"if we assume that the hash function evenly distributes the operations across the lists, then we would expect the extra work done to be O(1)" (§4.1)`,
		Columns: []string{"n", "buckets", "extra/op", "ns/op"},
	}
	for _, n := range sizes {
		buckets := n / 2
		h := dict.NewHash[int, int](buckets, mm.ModeGC, dict.HashInt)
		h.EnableStats()
		h.EnableTorture(2) // same interleaving pressure as E3
		cfg := workload.Config{
			Goroutines: p,
			Mix:        workload.UpdateHeavy(),
			KeySpace:   2 * n,
			Prefill:    n,
			Seed:       o.Seed,
		}
		workload.Prefill(cfg, h)
		res := workload.RunOps(cfg, opsTotal/p, h)
		w := h.WorkStats()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", buckets),
			fmtF(float64(w.ExtraWork()) / float64(res.Ops)),
			fmt.Sprintf("%.0f", res.Elapsed.Seconds()*1e9/float64(res.Ops)),
		})
	}
	t.Notes = append(t.Notes,
		"flat extra/op across n confirms the O(1) expectation (ns/op includes torture yields; compare shapes, not absolutes)",
		"torture yields force mid-operation interleaving on the single-CPU host, as in E3")
	return t
}

// E5 reproduces claim C6 (§4.1): the skip list reduces traversal work
// relative to the sorted list (crossing over once n is non-trivial),
// while contention can add up to O(p log n) extra work.
func E5(o Options) Table {
	sizes := []int{128, 512, 2048, 8192}
	const p = 8
	if o.Quick {
		sizes = []int{128, 512}
	}

	t := Table{
		ID:      "E5",
		Title:   fmt.Sprintf("skip list vs sorted list, read-mostly mix, p=%d (ops/s)", p),
		Claim:   `"the structure of the skip list reduces the amount of work done traversing the list ... extra work may be O(p log n)" (§4.1)`,
		Columns: []string{"n", "sortedlist", "skiplist", "speedup", "skiplist extra/op"},
	}
	for _, n := range sizes {
		cfg := workload.Config{
			Goroutines: p,
			Duration:   o.duration(),
			Mix:        workload.ReadMostly(),
			KeySpace:   2 * n,
			Prefill:    n,
			Seed:       o.Seed,
		}
		sl := dict.NewSortedList[int, int](mm.ModeGC)
		workload.Prefill(cfg, sl)
		slOps := workload.Run(cfg, sl).OpsPerSec()

		sk := skiplist.New[int, int](mm.ModeGC, skiplist.WithSeed(uint64(o.Seed)))
		sk.EnableStats()
		workload.Prefill(cfg, sk)
		res := workload.Run(cfg, sk)
		skOps := res.OpsPerSec()
		w := sk.WorkStats()

		speedup := 0.0
		if slOps > 0 {
			speedup = skOps / slOps
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmtOps(slOps),
			fmtOps(skOps),
			fmtF(speedup) + "x",
			fmtF(float64(w.ExtraWork()) / float64(res.Ops)),
		})
	}
	t.Notes = append(t.Notes, "speedup should grow with n: O(log n) vs O(n) traversal")
	return t
}

// E6 reproduces claim C7 (§4.2): for Find and Insert only, a sequence of
// n tree operations does expected O(n log n) extra work — i.e. per-op
// cost tracks the expected height O(log n).
func E6(o Options) Table {
	sizes := []int{512, 2048, 8192, 32768}
	const p = 8
	if o.Quick {
		sizes = []int{256, 1024}
	}

	t := Table{
		ID:      "E6",
		Title:   fmt.Sprintf("BST find+insert, random keys, p=%d", p),
		Claim:   `"considering only Find and Insert ... the amount of extra work done by a sequence of operations is expected O(n log n), since the tree has expected height O(log n)" (§4.2)`,
		Columns: []string{"n", "ops/s", "ns/op", "ns/op ÷ log2(n)", "extra/op"},
	}
	for _, n := range sizes {
		tr := newTreeForE6(o, n)
		cfg := workload.Config{
			Goroutines: p,
			Duration:   o.duration(),
			Mix:        workload.Mix{FindPct: 50, InsertPct: 50},
			KeySpace:   4 * n,
			Seed:       o.Seed,
		}
		res := workload.Run(cfg, tr)
		nsPerOp := res.Elapsed.Seconds() * 1e9 / float64(res.Ops)
		w := tr.WorkStats()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmtOps(res.OpsPerSec()),
			fmt.Sprintf("%.0f", nsPerOp),
			fmtF(nsPerOp / math.Log2(float64(n))),
			fmtF(float64(w.ExtraWork()) / float64(res.Ops)),
		})
	}
	t.Notes = append(t.Notes,
		"ns/op ÷ log2(n) staying roughly constant confirms the O(log n) per-operation height bound",
		"prefill uses random key order, giving the expected O(log n) height without balancing")
	return t
}
