package experiments

import (
	"fmt"
	"runtime"

	"valois/internal/dict"
	"valois/internal/mm"
	"valois/internal/workload"
)

// E10 measures the striped free list against the paper's single-head
// free list (§5.2, Figures 17-18) under multiprogramming. On this
// host's single CPU goroutines run quasi-serially, so — exactly like
// the torture hook used by E3/E4 and ablation A1 — every arm installs
// the same free-list yield hook, which opens the read-head-then-CAS
// window that a preempted process occupies on real hardware. The
// single-head arm then pays a failed CAS (plus backoff) whenever a
// concurrent goroutine moved the shared head inside the window; the
// striped arms do not, because concurrent goroutines claim distinct
// stripes. At p=1 no other goroutine can occupy the window, so all
// arms must agree — any gap there would be overhead, not contention.
func E10(o Options) Table {
	procs := []int{1, 2, 4, 8}
	if o.Quick {
		procs = []int{1, 4}
	}
	const (
		holdPerG = 8 // short hold: maximize pop/push traffic per pair
		stripes  = 8 // fixed, so the arm is identical at every p
	)

	t := Table{
		ID:    "E10",
		Title: fmt.Sprintf("free-list Alloc/Release churn, single head vs %d stripes (pairs/s)", stripes),
		Claim: `"as the level of multiprogramming increased ... the lock-free implementation had constant throughput" (§6) — the §5.2 free list's single head is the one shared CAS target every operation must cross`,
		Columns: []string{"p", "single head", "striped packed", "striped+padded",
			"padded/single", "leak check"},
	}
	for _, p := range procs {
		arms := []struct {
			name string
			opts []mm.RCOption
		}{
			{"single head", []mm.RCOption{mm.WithStripes(1), mm.WithCellPadding(false)}},
			{"striped packed", []mm.RCOption{mm.WithStripes(stripes), mm.WithCellPadding(false)}},
			{"striped+padded", []mm.RCOption{mm.WithStripes(stripes)}},
		}
		rates := make([]float64, len(arms))
		leaked := int64(0)
		for i, arm := range arms {
			runtime.GC() // collect prior arms' arenas outside the timed window
			m := mm.NewRC[int](arm.opts...)
			m.SetYieldHook(runtime.Gosched)
			rate, leak := churn(m, p, o.duration(), holdPerG)
			rates[i] = rate
			leaked += leak
		}
		ratio := 0.0
		if rates[0] > 0 {
			ratio = rates[2] / rates[0]
		}
		check := "ok (0 live)"
		if leaked != 0 {
			check = fmt.Sprintf("LEAK (%d live)", leaked)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p),
			fmtOps(rates[0]),
			fmtOps(rates[1]),
			fmtOps(rates[2]),
			fmtF(ratio) + "x",
			check,
		})
	}

	// One end-to-end row: an update-heavy dictionary workload where the
	// free list is fed by real Insert/Delete churn rather than raw
	// Alloc/Release pairs. Torture mode (period 2) materializes the list
	// CAS windows the same way the yield hook does for the free list.
	single, singleSteals := e10Dict(o, mm.FaithfulOptions()...)
	striped, stripedSteals := e10Dict(o, mm.WithStripes(stripes))
	ratio := 0.0
	if single > 0 {
		ratio = striped / single
	}
	t.Rows = append(t.Rows, []string{
		"4 (dict)",
		fmtOps(single),
		"-",
		fmtOps(striped),
		fmtF(ratio) + "x",
		fmt.Sprintf("steals %d vs %d", singleSteals, stripedSteals),
	})

	t.Notes = append(t.Notes,
		"all arms install the same free-list yield hook (one Gosched per head CAS), the single-CPU analogue of a preempted process holding the window open — the E3/E4/A1 torture methodology",
		"the striped arms keep each stripe a Fig 17/18 SafeRead-protected stack, so the §5.1 ABA argument is per-stripe unchanged; see DESIGN.md §5 deviations",
		"the dict row runs the update-heavy sorted-list workload under torture period 2 with the faithful single-head configuration vs the striped default",
		"padding spaces cells a cache line apart in grow(); on this single-CPU host it cannot show a gap vs packed — the column is kept for multicore runs")
	return t
}

// e10Dict runs the update-heavy sorted-list workload at p=4 with the
// given RC options, returning ops/s and the manager's steal count.
func e10Dict(o Options, opts ...mm.RCOption) (float64, int64) {
	const p = 4
	d := dict.NewSortedList[int, int](mm.ModeRC, opts...)
	defer d.Close()
	d.EnableTorture(2)
	if rc, ok := d.List().Manager().(*mm.RC[dict.Entry[int, int]]); ok {
		rc.SetYieldHook(runtime.Gosched)
	}
	cfg := workload.Config{
		Goroutines: p,
		Duration:   o.duration(),
		Mix:        workload.UpdateHeavy(),
		KeySpace:   512,
		Prefill:    256,
		Seed:       o.Seed,
	}
	workload.Prefill(cfg, d)
	res := workload.Run(cfg, d)
	return res.OpsPerSec(), d.MemStats().Steals
}
