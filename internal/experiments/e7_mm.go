package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"valois/internal/bst"
	"valois/internal/core"
	"valois/internal/dict"
	"valois/internal/mm"
	"valois/internal/universal"
	"valois/internal/workload"
)

// newTreeForE6 builds a tree prefilled with n random keys for E6.
func newTreeForE6(o Options, n int) *bst.Tree[int, int] {
	tr := bst.New[int, int](mm.ModeGC)
	cfg := workload.Config{KeySpace: 4 * n, Prefill: n, Seed: o.Seed}
	workload.Prefill(cfg, tr)
	return tr
}

// E7 reproduces claim C3 (§1, §2): universal methods "involve
// considerable overhead, making them impractical" next to the direct
// implementation. A Herlihy-style construction copies the whole object on
// every update, so its update cost grows linearly with the dictionary
// size while the direct lock-free hash table stays flat; the experiment
// sweeps the dictionary size to expose exactly that.
func E7(o Options) Table {
	sizes := []int{256, 1024, 4096, 16384}
	const p = 4
	if o.Quick {
		sizes = []int{256, 1024}
	}

	t := Table{
		ID:      "E7",
		Title:   fmt.Sprintf("direct implementation vs universal construction, p=%d (ops/s)", p),
		Claim:   `"universal methods suffer from several sources of inefficiency, such as wasted parallelism, excessive copying, and generally high overhead" (§2)`,
		Columns: []string{"n", "direct list (§3)", "direct hash (§4.1)", "universal [13]", "hash/universal", "entries copied"},
	}
	for _, n := range sizes {
		cfg := workload.Config{
			Goroutines: p,
			Duration:   o.duration(),
			Mix:        workload.Mixed(),
			KeySpace:   2 * n,
			Prefill:    n,
			Seed:       o.Seed,
		}
		measure := func(d dict.Dictionary[int, int]) float64 {
			workload.Prefill(cfg, d)
			return workload.Run(cfg, d).OpsPerSec()
		}
		listOps := measure(dict.NewSortedList[int, int](mm.ModeGC))
		hashOps := measure(dict.NewHash[int, int](n/4+1, mm.ModeGC, dict.HashInt))
		u := universal.New[int, int]()
		uOps := measure(u)
		ratio := 0.0
		if uOps > 0 {
			ratio = hashOps / uOps
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmtOps(listOps),
			fmtOps(hashOps),
			fmtOps(uOps),
			fmtF(ratio) + "x",
			fmtOps(float64(u.EntriesCopied())),
		})
	}
	t.Notes = append(t.Notes,
		"every universal-construction update copies the whole dictionary — its throughput falls off linearly in n while the direct hash stays flat",
		"the universal construction stores a sorted array (binary-search reads), so at small n it can beat the O(n) direct list; the paper's overhead argument is about updates and object size")
	return t
}

// E8 reproduces claim C8 (§6): "The most time consuming operation is most
// likely performing a SafeRead on each cell as we traverse the list". It
// measures raw cursor traversal of a prefilled list under the GC manager
// (SafeRead = plain load) and the RC manager (reference count per hop).
func E8(o Options) Table {
	size := 10000
	passes := 30
	if o.Quick {
		size = 1000
		passes = 5
	}

	t := Table{
		ID:      "E8",
		Title:   fmt.Sprintf("raw traversal of a %d-cell list (single goroutine)", size),
		Claim:   `"The most time consuming operation is most likely performing a SafeRead on each cell as we traverse the list" (§6)`,
		Columns: []string{"manager", "ns/item", "vs gc"},
	}
	var base float64
	for _, mode := range []mm.Mode{mm.ModeGC, mm.ModeRC} {
		l := core.New(mm.NewManager[int](mode))
		c := l.NewCursor()
		for i := 0; i < size; i++ {
			q, a := l.AllocInsertNodes(i)
			if !c.TryInsert(q, a) {
				panic("experiments: prefill insert failed on idle list")
			}
			l.ReleaseNodes(q, a)
			c.Update()
		}
		c.Close()

		// Collect garbage left by earlier experiments and warm the
		// traversal path so the timing below measures hops, not the
		// collector or cold caches.
		runtime.GC()
		warm := l.NewCursor()
		for !warm.End() {
			if !warm.Next() {
				break
			}
		}
		warm.Close()

		start := time.Now()
		items := 0
		for pass := 0; pass < passes; pass++ {
			tc := l.NewCursor()
			for !tc.End() {
				items++
				if !tc.Next() {
					break
				}
			}
			tc.Close()
		}
		ns := time.Since(start).Seconds() * 1e9 / float64(items)
		row := []string{mode.String(), fmt.Sprintf("%.1f", ns)}
		if mode == mm.ModeGC {
			base = ns
			row = append(row, "1.00x")
		} else {
			row = append(row, fmtF(ns/base)+"x")
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"rc pays two atomic counter updates (SafeRead + Release) per hop, Figures 15-16")
	return t
}

// E9 reproduces claim C9 (§5.2): the free list's Alloc and Reclaim are
// lock-free and conserve cells under concurrent churn. The ABA
// demonstration itself is deterministic and lives in the tests
// (TestABANaiveStackCorrupts / TestABAPreventedByReferenceCounts).
func E9(o Options) Table {
	procs := []int{1, 2, 4, 8}
	if o.Quick {
		procs = []int{2}
	}
	const holdPerG = 64

	t := Table{
		ID:      "E9",
		Title:   "free-list Alloc/Release churn (pairs/s), vs GC allocation",
		Claim:   `"New cells are allocated by removing them from the front of the list, and cells are reclaimed by putting them back on the front" (§5.2, Figures 17-18)`,
		Columns: []string{"p", "rc freelist", "gc new()", "rc leak check"},
	}
	for _, p := range procs {
		rcRate, leak := churn(mm.NewRC[int](), p, o.duration(), holdPerG)
		gcRate, _ := churn(mm.NewGC[int](), p, o.duration(), holdPerG)
		check := "ok (0 live)"
		if leak != 0 {
			check = fmt.Sprintf("LEAK (%d live)", leak)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p),
			fmtOps(rcRate),
			fmtOps(gcRate),
			check,
		})
	}
	t.Notes = append(t.Notes,
		"every run releases all cells and verifies Allocs-Reclaims returns to zero",
		"the deterministic ABA corruption/prevention pair is in internal/mm's tests")
	return t
}

// churn runs p goroutines that allocate and release cells as fast as they
// can for the duration, returning pairs/s and the leak count at
// quiescence.
func churn(m mm.Manager[int], p int, d time.Duration, hold int) (pairsPerSec float64, leaked int64) {
	var (
		wg    sync.WaitGroup
		total int64
		mu    sync.Mutex
	)
	stop := make(chan struct{})
	for g := 0; g < p; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			held := make([]*mm.Node[int], 0, hold)
			pairs := int64(0)
			for {
				select {
				case <-stop:
					for _, n := range held {
						m.Release(n)
					}
					mu.Lock()
					total += pairs
					mu.Unlock()
					return
				default:
				}
				if len(held) < hold {
					held = append(held, m.Alloc())
				} else {
					for _, n := range held {
						m.Release(n)
					}
					held = held[:0]
					pairs += int64(hold)
				}
			}
		}()
	}
	start := time.Now()
	time.Sleep(d)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	return float64(total) / elapsed.Seconds(), m.Stats().Live()
}
