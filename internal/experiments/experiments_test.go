package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestAllExperimentsRunQuick smoke-tests every experiment at reduced
// scale: each must produce a non-empty, well-formed table.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take a few seconds even in quick mode")
	}
	o := Options{Duration: 20 * time.Millisecond, Quick: true, Seed: 1}
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			table := r.Run(o)
			if table.ID != r.ID {
				t.Fatalf("table ID = %q, want %q", table.ID, r.ID)
			}
			if len(table.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			for _, row := range table.Rows {
				if len(row) != len(table.Columns) {
					t.Fatalf("row %v has %d cells, want %d", row, len(row), len(table.Columns))
				}
			}
			out := table.Format()
			if !strings.Contains(out, r.ID) || !strings.Contains(out, "claim:") {
				t.Fatalf("formatted table missing header:\n%s", out)
			}
		})
	}
}

// TestE11LeakAudited pins the property that makes E11's speed columns
// trustworthy: every ebr arm must drain its limbo and report zero live
// cells — a wedge or leak turns the row's last cell into an error marker.
func TestE11LeakAudited(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take a few seconds even in quick mode")
	}
	table := E11(Options{Duration: 20 * time.Millisecond, Quick: true, Seed: 1})
	for _, row := range table.Rows {
		check := row[len(row)-1]
		if check != "ok (0 live)" && check != "-" {
			t.Errorf("row %q: ebr leak check = %q, want ok", row[0], check)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("e3"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	if _, ok := Lookup("E42"); ok {
		t.Fatal("lookup of unknown experiment succeeded")
	}
}

func TestFmtOps(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{2_500_000, "2.50M"},
		{12_300, "12.3k"},
		{42, "42"},
	}
	for _, tt := range tests {
		if got := fmtOps(tt.in); got != tt.want {
			t.Errorf("fmtOps(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}
