package experiments

import (
	"fmt"
	"time"

	"valois/internal/dict"
	"valois/internal/mm"
	"valois/internal/spinlock"
	"valois/internal/workload"
)

// listContender names one structure competing in E1/E2: the lock-free
// sorted list under both memory modes and the same sequential sorted list
// under each lock kind.
type listContender struct {
	name string
	make func() dict.Dictionary[int, int]
}

func listContenders() []listContender {
	contenders := []listContender{
		{name: "lockfree/gc", make: func() dict.Dictionary[int, int] {
			return dict.NewSortedList[int, int](mm.ModeGC)
		}},
		{name: "lockfree/rc", make: func() dict.Dictionary[int, int] {
			return dict.NewSortedList[int, int](mm.ModeRC)
		}},
	}
	for _, kind := range spinlock.LockKinds() {
		kind := kind
		contenders = append(contenders, listContender{
			name: "lock/" + kind,
			make: func() dict.Dictionary[int, int] {
				return spinlock.NewLockedList[int, int](spinlock.NewLock(kind))
			},
		})
	}
	return contenders
}

// E1 reproduces claim C1 (§1, §6): the direct lock-free list is
// competitive with spin-lock-protected lists. It sweeps goroutine counts
// over a 50/25/25 find/insert/delete mix on a 512-key space and reports
// throughput per structure.
func E1(o Options) Table {
	procs := []int{1, 2, 4, 8, 16, 32}
	if o.Quick {
		procs = []int{1, 4}
	}
	const keySpace = 512

	t := Table{
		ID:    "E1",
		Title: "sorted-list dictionary throughput vs concurrency (ops/s)",
		Claim: `"providing performance competitive with spin locks" (§1)`,
		Columns: append([]string{"structure"}, func() []string {
			var cols []string
			for _, p := range procs {
				cols = append(cols, fmt.Sprintf("p=%d", p))
			}
			return cols
		}()...),
	}
	for _, c := range listContenders() {
		row := []string{c.name}
		for _, p := range procs {
			d := c.make()
			cfg := workload.Config{
				Goroutines: p,
				Duration:   o.duration(),
				Mix:        workload.Mixed(),
				KeySpace:   keySpace,
				Dist:       workload.Uniform,
				Prefill:    keySpace / 2,
				Seed:       o.Seed,
			}
			workload.Prefill(cfg, d)
			res := workload.Run(cfg, d)
			row = append(row, fmtOps(res.OpsPerSec()))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"lockfree/rc pays the SafeRead/Release reference counts of §5 on every hop (quantified by E8)")
	return t
}

// E2 reproduces claim C2 (§1): delays inside critical sections convoy
// lock-based structures while the lock-free list degrades gracefully. One
// in 100 operations stalls for the given duration — inside the critical
// section for locks, inside the operation window for the lock-free list.
func E2(o Options) Table {
	const (
		procs    = 8
		keySpace = 512
	)
	delays := []struct {
		label string
		spec  workload.DelaySpec
	}{
		{label: "none", spec: workload.DelaySpec{}},
		{label: "50us/1%", spec: workload.DelaySpec{Every: 100, D: 50 * time.Microsecond}},
		{label: "500us/1%", spec: workload.DelaySpec{Every: 100, D: 500 * time.Microsecond}},
	}
	contenders := []listContender{
		listContenders()[0], // lockfree/gc
		{name: "lock/ttas", make: func() dict.Dictionary[int, int] {
			return spinlock.NewLockedList[int, int](spinlock.NewLock("ttas"))
		}},
		{name: "lock/mutex", make: func() dict.Dictionary[int, int] {
			return spinlock.NewLockedList[int, int](spinlock.NewLock("mutex"))
		}},
	}
	if o.Quick {
		delays = delays[:2]
	}

	t := Table{
		ID:    "E2",
		Title: fmt.Sprintf("throughput under injected delays, p=%d (ops/s; slowdown vs none)", procs),
		Claim: `"the delay of a process while in a critical section ... forms a bottleneck which can cause performance problems such as convoying" (§1)`,
		Columns: append([]string{"structure"}, func() []string {
			var cols []string
			for _, d := range delays {
				cols = append(cols, "delay="+d.label)
			}
			return cols
		}()...),
	}
	for _, c := range contenders {
		row := []string{c.name}
		base := 0.0
		for i, dl := range delays {
			d := c.make()
			cfg := workload.Config{
				Goroutines: procs,
				Duration:   o.duration(),
				Mix:        workload.Mixed(),
				KeySpace:   keySpace,
				Dist:       workload.Uniform,
				Prefill:    keySpace / 2,
				Seed:       o.Seed,
				Delay:      dl.spec,
			}
			workload.Prefill(cfg, d)
			res := workload.Run(cfg, d)
			ops := res.OpsPerSec()
			if i == 0 {
				base = ops
				row = append(row, fmt.Sprintf("%s p99=%s", fmtOps(ops), fmtDur(res.LatP99)))
			} else {
				slow := 0.0
				if ops > 0 {
					slow = base / ops
				}
				row = append(row, fmt.Sprintf("%s (%sx) p99=%s", fmtOps(ops), fmtF(slow), fmtDur(res.LatP99)))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"a stalled lock holder blocks every other process; a stalled lock-free operation blocks only itself",
		"convoying shows first in the latency tail: p99 is the sampled 99th-percentile operation latency")
	return t
}
