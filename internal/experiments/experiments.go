// Package experiments implements the reproduction suite E1–E11 defined in
// DESIGN.md: one experiment per evaluative claim of the paper. Each
// experiment returns a Table with the same rows the claim predicts;
// cmd/lfbench prints them and EXPERIMENTS.md records paper-expected vs
// measured shapes.
package experiments

import (
	"encoding/csv"
	"fmt"
	"strings"
	"time"
)

// Table is one experiment's result: a caption tying it to the paper's
// claim, column headers, and data rows.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper text the experiment checks
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Format renders the table as aligned text.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as RFC-4180 CSV (header row first; claim and
// notes as comment-prefixed rows are omitted — CSV is for plotting).
func (t Table) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write(append([]string{}, t.Columns...))
	for _, row := range t.Rows {
		_ = w.Write(row)
	}
	w.Flush()
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table with
// the claim as a caption line.
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "> %s\n\n", t.Claim)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}

// Options tunes how long each measured point runs.
type Options struct {
	// Duration is the wall-clock time per throughput measurement point.
	Duration time.Duration
	// Quick trims sweeps to a couple of points for smoke tests.
	Quick bool
	// Seed makes workloads reproducible.
	Seed int64
}

// DefaultOptions returns the settings cmd/lfbench uses.
func DefaultOptions() Options {
	return Options{Duration: 300 * time.Millisecond, Seed: 1}
}

func (o Options) duration() time.Duration {
	if o.Duration <= 0 {
		return 300 * time.Millisecond
	}
	return o.Duration
}

// Runner is a named experiment.
type Runner struct {
	ID   string
	Name string
	Run  func(Options) Table
}

// All returns the experiment registry in order.
func All() []Runner {
	return []Runner{
		{ID: "E1", Name: "lock-free list vs spin locks", Run: E1},
		{ID: "E2", Name: "delay injection / convoying", Run: E2},
		{ID: "E3", Name: "sorted-list extra work", Run: E3},
		{ID: "E4", Name: "hash-table extra work", Run: E4},
		{ID: "E5", Name: "skip list vs sorted list", Run: E5},
		{ID: "E6", Name: "BST find+insert work", Run: E6},
		{ID: "E7", Name: "direct vs universal construction", Run: E7},
		{ID: "E8", Name: "SafeRead traversal overhead", Run: E8},
		{ID: "E9", Name: "free-list alloc/reclaim", Run: E9},
		{ID: "E10", Name: "striped free list under contention", Run: E10},
		{ID: "E11", Name: "epoch-based reclamation vs rc/gc", Run: E11},
		{ID: "A1", Name: "ablation: retry backoff", Run: A1},
		{ID: "A2", Name: "ablation: aux-pair removal", Run: A2},
		{ID: "A3", Name: "ablation: free-list batch size", Run: A3},
		{ID: "persist", Name: "durability cost: AOF fsync policies", Run: Persist},
	}
}

// Lookup finds an experiment by ID (case-insensitive).
func Lookup(id string) (Runner, bool) {
	for _, r := range All() {
		if strings.EqualFold(r.ID, id) {
			return r, true
		}
	}
	return Runner{}, false
}

func fmtOps(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

func fmtF(v float64) string { return fmt.Sprintf("%.2f", v) }

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/1e6)
	case d >= time.Microsecond:
		return fmt.Sprintf("%.0fµs", float64(d)/1e3)
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}
