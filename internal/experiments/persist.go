package experiments

// Durability-cost experiment (beyond the paper's E1–E10): the same
// closed-loop SET/GET workload against an in-process valoisd server
// under the three AOF fsync policies, plus the AOF disabled as the
// baseline. The interesting number is the gap: appends happen after the
// lock-free apply under a per-shard mutex, so "aof=off" vs
// "fsync=everysec" prices the append itself and "fsync=always" prices
// the synchronous disk barrier per acknowledged mutation.

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"valois/internal/client"
	"valois/internal/server"
)

// Persist runs the durability-cost experiment (lfbench -e persist).
func Persist(opts Options) Table {
	t := Table{
		ID:    "persist",
		Title: "durability cost: AOF off vs everysec vs always",
		Claim: "appends ride after the lock-free apply, so the AOF prices in as a per-mutation" +
			" encode+write (everysec) or encode+write+fsync (always), not as lost scalability",
		Columns: []string{"config", "ops/s", "p50_us", "p99_us", "aof_records", "aof_fsyncs"},
	}
	arms := []struct {
		name  string
		aof   bool
		fsync string
	}{
		{"aof=off", false, ""},
		{"fsync=everysec", true, "everysec"},
		{"fsync=always", true, "always"},
	}
	for _, arm := range arms {
		row, err := persistArm(arm.name, arm.aof, arm.fsync, opts)
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("%s failed: %v", arm.name, err))
			continue
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"skiplist/gc, 4 shards, 4 closed-loop clients, 50/50 SET/GET over 256 keys; latencies are SET round trips")
	return t
}

func persistArm(name string, aof bool, fsync string, opts Options) ([]string, error) {
	cfg := server.Config{Backend: server.BackendSkipList, Mode: "gc", Shards: 4}
	if aof {
		dir, err := os.MkdirTemp("", "lfbench-persist")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		cfg.PersistDir = dir
		cfg.FsyncPolicy = fsync
	}
	srv, err := server.New(cfg)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	const (
		clients = 4
		keys    = 256
	)
	value := make([]byte, 32)
	deadline := time.Now().Add(opts.duration())
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		ops     int64
		setLats []time.Duration
		armErr  error
	)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(ln.Addr().String(), client.Options{})
			if err != nil {
				mu.Lock()
				armErr = err
				mu.Unlock()
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(opts.Seed<<4 + int64(w)))
			var n int64
			var lats []time.Duration
			for time.Now().Before(deadline) {
				k := "pk:" + strconv.Itoa(rng.Intn(keys))
				if rng.Intn(2) == 0 {
					start := time.Now()
					err = c.Set(k, value)
					lats = append(lats, time.Since(start))
				} else {
					_, _, err = c.Get(k)
				}
				if err != nil {
					mu.Lock()
					armErr = err
					mu.Unlock()
					return
				}
				n++
			}
			mu.Lock()
			ops += n
			setLats = append(setLats, lats...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	stats := make(map[string]string)
	for _, st := range srv.Stats() {
		stats[st.Name] = st.Value
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return nil, err
	}
	<-serveErr
	if armErr != nil {
		return nil, armErr
	}

	sort.Slice(setLats, func(i, j int) bool { return setLats[i] < setLats[j] })
	pct := func(p float64) time.Duration {
		if len(setLats) == 0 {
			return 0
		}
		i := int(p * float64(len(setLats)-1))
		return setLats[i]
	}
	opsPerSec := float64(ops) / opts.duration().Seconds()
	return []string{
		name,
		fmtOps(opsPerSec),
		fmt.Sprintf("%.0f", float64(pct(0.50))/1e3),
		fmt.Sprintf("%.0f", float64(pct(0.99))/1e3),
		stats["aof_records"],
		stats["aof_fsyncs"],
	}, nil
}
