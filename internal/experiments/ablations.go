package experiments

import (
	"fmt"

	"valois/internal/dict"
	"valois/internal/mm"
	"valois/internal/workload"
)

// The A-series experiments are ablations of design choices the paper
// makes in passing: each removes one mechanism and measures what it was
// buying.

// A1 ablates the exponential backoff of §2.1 ("starvation at high levels
// of contention is more efficiently handled by techniques such as
// exponential backoff"): the same hot-key workload with and without
// backoff in the retry loops.
func A1(o Options) Table {
	procs := []int{2, 8, 16}
	if o.Quick {
		procs = []int{4}
	}
	const keySpace = 16 // hot keys: nearly every operation contends

	t := Table{
		ID:      "A1",
		Title:   "ablation: retry backoff on a 16-key contended sorted list",
		Claim:   `"starvation at high levels of contention is more efficiently handled by techniques such as exponential backoff" (§2.1)`,
		Columns: []string{"p", "backoff ops/s", "no-backoff ops/s", "backoff retries/op", "no-backoff retries/op"},
	}
	run := func(p int, disable bool) (opsPerSec, retriesPerOp float64) {
		s := dict.NewSortedList[int, int](mm.ModeGC)
		s.EnableStats()
		s.EnableTorture(2)
		if disable {
			s.DisableBackoff()
		}
		cfg := workload.Config{
			Goroutines: p,
			Duration:   o.duration(),
			Mix:        workload.UpdateHeavy(),
			KeySpace:   keySpace,
			Prefill:    keySpace / 2,
			Seed:       o.Seed,
		}
		workload.Prefill(cfg, s)
		s.List().Stats().Reset()
		res := workload.Run(cfg, s)
		w := s.List().Stats().Snapshot()
		return res.OpsPerSec(), float64(w.InsertRetries+w.DeleteRetries) / float64(res.Ops)
	}
	for _, p := range procs {
		withOps, withRetries := run(p, false)
		withoutOps, withoutRetries := run(p, true)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p),
			fmtOps(withOps),
			fmtOps(withoutOps),
			fmtF(withRetries),
			fmtF(withoutRetries),
		})
	}
	t.Notes = append(t.Notes,
		"backoff trades a little latency on first retry for fewer wasted attempts; the retries/op column shows what it absorbs")
	return t
}

// A2 ablates Update's removal of adjacent auxiliary pairs (Figure 5
// line 7): without it, chain cleanup falls entirely to TryDelete's
// collapse, and traversals pay for the leftover auxiliary nodes.
func A2(o Options) Table {
	const (
		p        = 8
		keySpace = 128
	)

	t := Table{
		ID:      "A2",
		Title:   fmt.Sprintf("ablation: Update's auxiliary-pair removal (Fig 5 line 7), p=%d, delete-heavy churn", p),
		Claim:   `"If two adjacent auxiliary nodes are found in the list, the UPDATE algorithm will remove one of them" (§3)`,
		Columns: []string{"variant", "ops/s", "aux skips/op", "aux removals/op"},
	}
	for _, disable := range []bool{false, true} {
		s := dict.NewSortedList[int, int](mm.ModeGC)
		s.EnableStats()
		s.EnableTorture(2)
		if disable {
			s.List().DisableAuxRemoval()
		}
		cfg := workload.Config{
			Goroutines: p,
			Duration:   o.duration(),
			Mix:        workload.UpdateHeavy(),
			KeySpace:   keySpace,
			Prefill:    keySpace / 2,
			Seed:       o.Seed,
		}
		workload.Prefill(cfg, s)
		s.List().Stats().Reset()
		res := workload.Run(cfg, s)
		w := s.List().Stats().Snapshot()
		name := "removal on (paper)"
		if disable {
			name = "removal off"
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmtOps(res.OpsPerSec()),
			fmtF(float64(w.AuxSkips) / float64(res.Ops)),
			fmtF(float64(w.AuxRemovals) / float64(res.Ops)),
		})
	}
	t.Notes = append(t.Notes,
		"with removal disabled, TryDelete's collapse (Fig 10) still bounds the chains, so the difference is traversal work, not correctness")
	return t
}

// A3 ablates the RC manager's arena growth batch: Figure 17 describes a
// single free list; batching only affects how many cells a grow creates
// at once, trading allocation smoothness for footprint.
func A3(o Options) Table {
	batches := []int{1, 16, 256}
	if o.Quick {
		batches = []int{1, 16}
	}
	const p = 4

	t := Table{
		ID:      "A3",
		Title:   fmt.Sprintf("ablation: RC free-list grow batch size, p=%d churn", p),
		Claim:   `free-list management per §5.2, Figures 17-18`,
		Columns: []string{"batch", "pairs/s", "cells created", "leak check"},
	}
	for _, b := range batches {
		m := mm.NewRC[int](mm.WithBatchSize(b))
		rate, leak := churn(m, p, o.duration(), 64)
		check := "ok"
		if leak != 0 {
			check = fmt.Sprintf("LEAK %d", leak)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", b),
			fmtOps(rate),
			fmt.Sprintf("%d", m.Stats().Created),
			check,
		})
	}
	t.Notes = append(t.Notes,
		"once the arena matches the working set, all batch sizes converge: the free list itself is the steady-state allocator")
	return t
}
