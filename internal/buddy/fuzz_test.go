package buddy

import "testing"

// FuzzAllocFree interprets a byte stream as alloc/free decisions and
// checks unit conservation and full coalescing at the end of every input.
func FuzzAllocFree(f *testing.F) {
	f.Add([]byte{0, 2, 0, 4, 1, 0, 0, 1, 1, 1})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		a, err := New(7) // 128 units
		if err != nil {
			t.Fatal(err)
		}
		type blk struct{ off, order int }
		var held []blk
		units := 0
		for i := 0; i+1 < len(ops); i += 2 {
			if ops[i]%2 == 0 {
				order := int(ops[i+1]) % 5
				off, err := a.Alloc(order)
				if err != nil {
					continue
				}
				if off%(1<<order) != 0 {
					t.Fatalf("misaligned block: offset %d order %d", off, order)
				}
				held = append(held, blk{off, order})
				units += 1 << order
			} else if len(held) > 0 {
				j := int(ops[i+1]) % len(held)
				b := held[j]
				if err := a.Free(b.off, b.order); err != nil {
					t.Fatalf("free of held block failed: %v", err)
				}
				held[j] = held[len(held)-1]
				held = held[:len(held)-1]
				units -= 1 << b.order
			}
			if got := a.FreeUnits(); got+units != a.Capacity() {
				t.Fatalf("conservation broken: %d free + %d held != %d", got, units, a.Capacity())
			}
		}
		for _, b := range held {
			if err := a.Free(b.off, b.order); err != nil {
				t.Fatalf("final free failed: %v", err)
			}
		}
		if _, err := a.Alloc(a.MaxOrder()); err != nil {
			t.Fatalf("arena did not coalesce back to one block: %v", err)
		}
	})
}
