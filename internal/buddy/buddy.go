// Package buddy implements the lock-free buddy system the paper points
// to for variable-sized cells: "in [28] we show how to extend these ideas
// to implement a lock-free buddy system which provides management of
// variable-sized cells" (§5.2).
//
// The allocator manages an arena of 2^maxOrder units. A block is a
// (offset, order) pair covering 2^order units, aligned to its size. Free
// blocks of each order live on a lock-free LIFO free list exactly like
// §5.2's (Figures 17–18). The lock-free twist is coalescing: a block
// cannot be removed from the middle of a lock-free stack, so merging is
// done with per-block tag words instead:
//
//   - every block start has a tag: (state, order, version), updated only
//     by Compare&Swap; the version counter makes tag transitions immune
//     to the ABA problem (§5.1's concern, solved here with versioning
//     rather than reference counts because tags are never reused for
//     anything else);
//   - Free first publishes the block's tag as FREE, then pushes a
//     descriptor onto the order's free list. A concurrent Free of the
//     buddy may claim the tag (FREE → DEAD) between those two steps and
//     merge; the descriptor then dangles harmlessly;
//   - Alloc pops descriptors and validates them against the tag with a
//     Compare&Swap (FREE → ALLOCATED); descriptors whose block was
//     claimed by a merge fail validation and are discarded — lazy
//     deletion from the free list;
//   - merging claims the buddy's tag (so at most one of the two
//     concurrent freers wins), invalidates both halves, and re-frees the
//     doubled block one order up, cascading as far as possible.
//
// Every operation is non-blocking: a failed Compare&Swap always means
// another operation succeeded.
package buddy

import (
	"errors"
	"fmt"
	"sync/atomic"

	"valois/internal/primitive"
)

// Block states stored in tags.
const (
	stateDead  uint64 = iota // not a current block (merged away, or interior)
	stateFree                // on (or headed to) its order's free list
	stateAlloc               // owned by a caller
)

// Tag layout: [version:40][order:8][state:8] (state in the low byte).
const (
	stateBits   = 8
	orderBits   = 8
	stateMask   = 1<<stateBits - 1
	orderShift  = stateBits
	orderMask   = 1<<orderBits - 1
	verShift    = stateBits + orderBits
	maxOrderCap = 48 // arena capacity is 2^maxOrder units; keep offsets in int
)

func packTag(state uint64, order int, ver uint64) uint64 {
	return state | uint64(order)<<orderShift | ver<<verShift
}

func tagState(t uint64) uint64 { return t & stateMask }
func tagOrder(t uint64) int    { return int(t >> orderShift & orderMask) }
func tagVer(t uint64) uint64   { return t >> verShift }

// Errors returned by the allocator.
var (
	// ErrExhausted reports that no block of the requested order could be
	// assembled from the current free space.
	ErrExhausted = errors.New("buddy: arena exhausted")
	// ErrBadSize reports a size that is not satisfiable by the arena.
	ErrBadSize = errors.New("buddy: bad size")
)

// Allocator is a lock-free buddy allocator over 2^maxOrder units.
type Allocator struct {
	maxOrder int
	tags     []atomic.Uint64 // one per unit offset; only block starts matter
	free     []freeStack     // per-order free lists

	allocs atomic.Int64
	frees  atomic.Int64
	merges atomic.Int64
	splits atomic.Int64
	stale  atomic.Int64
}

// freeStack is the Treiber free list of Figures 17–18, holding block
// descriptors. Descriptor nodes are garbage collected; the lazy-deletion
// scheme means a descriptor may outlive its block's FREE state.
type freeStack struct {
	top atomic.Pointer[descriptor]
}

type descriptor struct {
	next   atomic.Pointer[descriptor]
	offset int
	ver    uint64 // tag version the block had when freed
}

func (s *freeStack) push(d *descriptor) {
	var backoff primitive.Backoff
	for {
		top := s.top.Load()
		d.next.Store(top)
		if s.top.CompareAndSwap(top, d) {
			return
		}
		backoff.Wait() // §2.1: back off instead of re-colliding immediately
	}
}

func (s *freeStack) pop() *descriptor {
	var backoff primitive.Backoff
	for {
		top := s.top.Load()
		if top == nil {
			return nil
		}
		if s.top.CompareAndSwap(top, top.next.Load()) {
			return top
		}
		backoff.Wait() // §2.1: back off instead of re-colliding immediately
	}
}

// New returns an allocator managing 2^maxOrder units, initially one free
// block of the maximum order.
func New(maxOrder int) (*Allocator, error) {
	if maxOrder < 0 || maxOrder > maxOrderCap {
		return nil, fmt.Errorf("%w: maxOrder %d out of [0,%d]", ErrBadSize, maxOrder, maxOrderCap)
	}
	a := &Allocator{
		maxOrder: maxOrder,
		tags:     make([]atomic.Uint64, 1<<maxOrder),
		free:     make([]freeStack, maxOrder+1),
	}
	a.tags[0].Store(packTag(stateFree, maxOrder, 1))
	a.free[maxOrder].push(&descriptor{offset: 0, ver: 1})
	return a, nil
}

// MaxOrder reports the order of the whole arena.
func (a *Allocator) MaxOrder() int { return a.maxOrder }

// Capacity reports the arena size in units.
func (a *Allocator) Capacity() int { return 1 << a.maxOrder }

// OrderFor returns the smallest order whose block size holds size units.
func OrderFor(size int) int {
	if size <= 1 {
		return 0
	}
	order := 0
	for 1<<order < size {
		order++
	}
	return order
}

// Alloc returns the offset of a block of 2^order units aligned to its
// size, or ErrExhausted/ErrBadSize.
func (a *Allocator) Alloc(order int) (int, error) {
	if order < 0 || order > a.maxOrder {
		return 0, fmt.Errorf("%w: order %d out of [0,%d]", ErrBadSize, order, a.maxOrder)
	}
	var backoff primitive.Backoff
	for {
		if d := a.free[order].pop(); d != nil {
			// Validate against the tag: the descriptor is stale if a
			// merge claimed the block or its version moved on.
			want := packTag(stateFree, order, d.ver)
			if a.tags[d.offset].CompareAndSwap(want, packTag(stateAlloc, order, d.ver+1)) {
				a.allocs.Add(1)
				return d.offset, nil
			}
			a.stale.Add(1)
			backoff.Wait() // §2.1: back off instead of re-colliding immediately
			continue
		}
		// Free list empty: split a larger block.
		offset, err := a.allocSplit(order)
		if err != nil {
			return 0, err
		}
		a.allocs.Add(1)
		return offset, nil
	}
}

// allocSplit obtains a block of the requested order by allocating one
// order up and splitting it, recursing toward the maximum order.
func (a *Allocator) allocSplit(order int) (int, error) {
	if order == a.maxOrder {
		// Nothing larger to split; a concurrent Free may refill the
		// list, but for this attempt the arena is exhausted.
		if d := a.free[order].pop(); d != nil {
			want := packTag(stateFree, order, d.ver)
			if a.tags[d.offset].CompareAndSwap(want, packTag(stateAlloc, order, d.ver+1)) {
				return d.offset, nil
			}
			a.stale.Add(1)
		}
		return 0, ErrExhausted
	}
	// Try this order's list once more before escalating, since frees and
	// merges run concurrently.
	if d := a.free[order].pop(); d != nil {
		want := packTag(stateFree, order, d.ver)
		if a.tags[d.offset].CompareAndSwap(want, packTag(stateAlloc, order, d.ver+1)) {
			return d.offset, nil
		}
		a.stale.Add(1)
	}
	offset, err := a.allocSplit(order + 1)
	if err != nil {
		return 0, err
	}
	a.splits.Add(1)
	// We own [offset, offset+2^(order+1)). Keep the lower half at the
	// target order; free the upper half at the target order.
	buddy := offset + 1<<order
	a.tags[offset].Store(packTag(stateAlloc, order, tagVer(a.tags[offset].Load())+1))
	a.freeBlock(buddy, order)
	return offset, nil
}

// Free returns the block at offset with the given order to the allocator,
// merging it with its free buddy as far as possible. The caller must own
// the block (a matching earlier Alloc) and must not use it afterwards.
func (a *Allocator) Free(offset, order int) error {
	if order < 0 || order > a.maxOrder || offset < 0 || offset >= a.Capacity() || offset&(1<<order-1) != 0 {
		return fmt.Errorf("%w: free of offset %d order %d", ErrBadSize, offset, order)
	}
	t := a.tags[offset].Load()
	if tagState(t) != stateAlloc || tagOrder(t) != order {
		return fmt.Errorf("%w: free of block not allocated at offset %d order %d", ErrBadSize, offset, order)
	}
	a.frees.Add(1)
	a.freeBlock(offset, order)
	return nil
}

// freeBlock makes [offset, offset+2^order) available, coalescing upward.
func (a *Allocator) freeBlock(offset, order int) {
	var backoff primitive.Backoff
	for {
		if order == a.maxOrder {
			a.publishFree(offset, order)
			return
		}
		buddy := offset ^ 1<<order
		bt := a.tags[buddy].Load()
		if tagState(bt) == stateFree && tagOrder(bt) == order {
			// The buddy is (or is about to be) on the free list: claim
			// it. Exactly one claimer can win this Compare&Swap; its
			// free-list descriptor goes stale and is discarded by Alloc.
			if a.tags[buddy].CompareAndSwap(bt, packTag(stateDead, order, tagVer(bt)+1)) {
				a.merges.Add(1)
				// Invalidate our own half and continue one order up
				// with the combined block.
				mine := a.tags[offset].Load()
				a.tags[offset].Store(packTag(stateDead, order, tagVer(mine)+1))
				if buddy < offset {
					offset = buddy
				}
				order++
				continue
			}
			// Lost the claim race (the buddy was allocated or merged by
			// someone else); re-read and fall through to publishing.
			backoff.Wait() // §2.1: back off instead of re-colliding immediately
			continue
		}
		a.publishFree(offset, order)
		return
	}
}

// publishFree marks the block FREE and pushes its descriptor. The tag is
// published first so a concurrent freer of the buddy can claim and merge
// it even before the descriptor lands on the list.
func (a *Allocator) publishFree(offset, order int) {
	ver := tagVer(a.tags[offset].Load()) + 1
	a.tags[offset].Store(packTag(stateFree, order, ver))
	a.free[order].push(&descriptor{offset: offset, ver: ver})
}

// Stats reports cumulative allocator activity.
type Stats struct {
	Allocs, Frees    int64
	Merges, Splits   int64
	StaleDescriptors int64
}

// Stats returns a snapshot of the counters.
func (a *Allocator) Stats() Stats {
	return Stats{
		Allocs:           a.allocs.Load(),
		Frees:            a.frees.Load(),
		Merges:           a.merges.Load(),
		Splits:           a.splits.Load(),
		StaleDescriptors: a.stale.Load(),
	}
}

// FreeUnits counts the units currently in FREE blocks by scanning tags.
// It is a consistent total only at quiescence.
func (a *Allocator) FreeUnits() int {
	total := 0
	for off := 0; off < a.Capacity(); off++ {
		t := a.tags[off].Load()
		if tagState(t) == stateFree {
			total += 1 << tagOrder(t)
		}
	}
	return total
}
