package buddy

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"valois/internal/testenv"
)

func TestOrderFor(t *testing.T) {
	tests := []struct {
		size, want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10},
	}
	for _, tt := range tests {
		if got := OrderFor(tt.size); got != tt.want {
			t.Errorf("OrderFor(%d) = %d, want %d", tt.size, got, tt.want)
		}
	}
}

func TestNewBounds(t *testing.T) {
	if _, err := New(-1); err == nil {
		t.Fatal("negative maxOrder accepted")
	}
	if _, err := New(maxOrderCap + 1); err == nil {
		t.Fatal("huge maxOrder accepted")
	}
	a, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Capacity() != 1 {
		t.Fatalf("capacity = %d, want 1", a.Capacity())
	}
}

func TestAllocWholeArena(t *testing.T) {
	a, _ := New(4)
	off, err := a.Alloc(4)
	if err != nil || off != 0 {
		t.Fatalf("Alloc(max) = %d,%v; want 0,nil", off, err)
	}
	if _, err := a.Alloc(0); !errors.Is(err, ErrExhausted) {
		t.Fatalf("Alloc on full arena = %v, want ErrExhausted", err)
	}
	if err := a.Free(off, 4); err != nil {
		t.Fatal(err)
	}
	if got := a.FreeUnits(); got != 16 {
		t.Fatalf("FreeUnits = %d, want 16", got)
	}
}

func TestSplitProducesAlignedDisjointBlocks(t *testing.T) {
	a, _ := New(5) // 32 units
	offsets := make(map[int]bool)
	for i := 0; i < 8; i++ {
		off, err := a.Alloc(2) // 4 units each
		if err != nil {
			t.Fatalf("Alloc %d: %v", i, err)
		}
		if off%4 != 0 {
			t.Fatalf("block %d at offset %d not aligned to 4", i, off)
		}
		if offsets[off] {
			t.Fatalf("offset %d handed out twice", off)
		}
		offsets[off] = true
	}
	if _, err := a.Alloc(0); !errors.Is(err, ErrExhausted) {
		t.Fatalf("arena should be exhausted, got %v", err)
	}
}

func TestCoalescingRestoresMaxBlock(t *testing.T) {
	a, _ := New(6) // 64 units
	var blocks []struct{ off, order int }
	rng := rand.New(rand.NewSource(7))
	// Fragment the arena with random-size allocations until exhaustion.
	for {
		order := rng.Intn(4)
		off, err := a.Alloc(order)
		if err != nil {
			if errors.Is(err, ErrExhausted) {
				break
			}
			t.Fatal(err)
		}
		blocks = append(blocks, struct{ off, order int }{off, order})
	}
	// Free in random order; coalescing must rebuild the single max block.
	rng.Shuffle(len(blocks), func(i, j int) { blocks[i], blocks[j] = blocks[j], blocks[i] })
	for _, b := range blocks {
		if err := a.Free(b.off, b.order); err != nil {
			t.Fatal(err)
		}
	}
	off, err := a.Alloc(a.MaxOrder())
	if err != nil {
		t.Fatalf("max-order Alloc after freeing everything: %v (coalescing incomplete)", err)
	}
	if off != 0 {
		t.Fatalf("max block at offset %d, want 0", off)
	}
	if s := a.Stats(); s.Merges == 0 {
		t.Fatal("no merges recorded despite full coalescing")
	}
}

func TestFreeValidation(t *testing.T) {
	a, _ := New(4)
	off, _ := a.Alloc(2)
	if err := a.Free(off+1, 2); err == nil {
		t.Fatal("misaligned free accepted")
	}
	if err := a.Free(off, 3); err == nil {
		t.Fatal("wrong-order free accepted")
	}
	if err := a.Free(off, 2); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(off, 2); err == nil {
		t.Fatal("double free accepted")
	}
	if _, err := a.Alloc(9); !errors.Is(err, ErrBadSize) {
		t.Fatal("oversized order accepted")
	}
}

func TestConservationProperty(t *testing.T) {
	// Property: any sequence of allocs and frees conserves units: free
	// units + allocated units == capacity, and after freeing everything
	// the arena coalesces back to one block.
	f := func(ops []uint8) bool {
		a, _ := New(6)
		type blk struct{ off, order int }
		var held []blk
		unitsHeld := 0
		for _, op := range ops {
			if op%2 == 0 || len(held) == 0 {
				order := int(op/2) % 4
				off, err := a.Alloc(order)
				if err != nil {
					continue
				}
				held = append(held, blk{off, order})
				unitsHeld += 1 << order
			} else {
				i := int(op) % len(held)
				b := held[i]
				if a.Free(b.off, b.order) != nil {
					return false
				}
				held[i] = held[len(held)-1]
				held = held[:len(held)-1]
				unitsHeld -= 1 << b.order
			}
			if a.FreeUnits()+unitsHeld != a.Capacity() {
				return false
			}
		}
		for _, b := range held {
			if a.Free(b.off, b.order) != nil {
				return false
			}
		}
		_, err := a.Alloc(a.MaxOrder())
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentChurnDisjointAndCoalescing(t *testing.T) {
	const (
		maxOrder   = 10 // 1024 units
		goroutines = 8
	)
	iters := 3000
	if testing.Short() {
		iters = 300
	}
	iters = testenv.Iters(iters)
	a, _ := New(maxOrder)
	var wg sync.WaitGroup

	// occupancy tracks which goroutine owns each unit, to catch any
	// overlapping allocation the moment it happens.
	occupancy := make([]int32, a.Capacity())
	var occMu sync.Mutex
	claim := func(g, off, order int) bool {
		occMu.Lock()
		defer occMu.Unlock()
		for u := off; u < off+1<<order; u++ {
			if occupancy[u] != 0 {
				return false
			}
		}
		for u := off; u < off+1<<order; u++ {
			occupancy[u] = int32(g + 1)
		}
		return true
	}
	unclaim := func(off, order int) {
		occMu.Lock()
		defer occMu.Unlock()
		for u := off; u < off+1<<order; u++ {
			occupancy[u] = 0
		}
	}

	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g + 1)))
			type blk struct{ off, order int }
			var held []blk
			for i := 0; i < iters; i++ {
				if len(held) < 8 && rng.Intn(2) == 0 {
					order := rng.Intn(5)
					off, err := a.Alloc(order)
					if err != nil {
						continue
					}
					if !claim(g, off, order) {
						t.Errorf("overlapping allocation at offset %d order %d", off, order)
						return
					}
					held = append(held, blk{off, order})
				} else if len(held) > 0 {
					i := rng.Intn(len(held))
					b := held[i]
					unclaim(b.off, b.order)
					if err := a.Free(b.off, b.order); err != nil {
						t.Errorf("free failed: %v", err)
						return
					}
					held[i] = held[len(held)-1]
					held = held[:len(held)-1]
				}
			}
			for _, b := range held {
				unclaim(b.off, b.order)
				if err := a.Free(b.off, b.order); err != nil {
					t.Errorf("final free failed: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := a.FreeUnits(); got != a.Capacity() {
		t.Fatalf("FreeUnits = %d at quiescence, want %d", got, a.Capacity())
	}
	if _, err := a.Alloc(maxOrder); err != nil {
		t.Fatalf("max-order Alloc after concurrent churn: %v (coalescing incomplete)", err)
	}
	s := a.Stats()
	if s.Allocs-1 != s.Frees { // the final max-order Alloc is unfreed
		t.Fatalf("allocs-1 = %d, frees = %d; conservation broken", s.Allocs-1, s.Frees)
	}
}
