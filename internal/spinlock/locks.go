// Package spinlock provides the mutual-exclusion baselines the paper
// positions itself against (§1): "a number of efficient spin locking
// techniques have been developed [3, 8, 20]". It implements the classic
// test-and-set lock, the test-and-test-and-set lock with exponential
// backoff (Anderson [3], Graunke & Thakkar [8]), the ticket lock, and a
// CLH-style queue lock standing in for the queue-based locks of
// Mellor-Crummey & Scott [20], plus lock-based dictionary implementations
// built on them. Experiments E1 and E2 compare these against the lock-free
// structures; E2 injects delays inside the critical section to reproduce
// the convoying behaviour the paper's introduction describes.
package spinlock

import (
	"runtime"
	"sync"
	"sync/atomic"

	"valois/internal/primitive"
)

// Locker is the subset of sync.Locker the baselines need; sync.Mutex and
// every lock in this package satisfy it.
type Locker = sync.Locker

// TAS is the simplest spin lock: spin on Test&Set until it reads false.
// Every attempt writes the lock word, generating the coherence traffic
// that motivated the test-and-test-and-set variant.
type TAS struct {
	state atomic.Int32
}

var _ Locker = (*TAS)(nil)

// Lock acquires the lock, spinning until it succeeds.
func (l *TAS) Lock() {
	for primitive.TestAndSet(&l.state) == 1 {
		runtime.Gosched()
	}
}

// Unlock releases the lock.
func (l *TAS) Unlock() {
	l.state.Store(0)
}

// TTAS is the test-and-test-and-set lock with exponential backoff: it
// spins reading the lock word and attempts the atomic Test&Set only when
// the word looks free, backing off after failed attempts.
type TTAS struct {
	state atomic.Int32
}

var _ Locker = (*TTAS)(nil)

// Lock acquires the lock.
func (l *TTAS) Lock() {
	var b primitive.Backoff
	for {
		for l.state.Load() == 1 {
			runtime.Gosched()
		}
		if primitive.TestAndSet(&l.state) == 0 {
			return
		}
		b.Wait()
	}
}

// Unlock releases the lock.
func (l *TTAS) Unlock() {
	l.state.Store(0)
}

// Ticket is a fair FIFO spin lock: acquirers take a ticket with Fetch&Add
// and spin until the serving counter reaches it.
type Ticket struct {
	next    atomic.Int64
	serving atomic.Int64
}

var _ Locker = (*Ticket)(nil)

// Lock acquires the lock in FIFO order.
func (l *Ticket) Lock() {
	ticket := primitive.FetchAndAdd(&l.next, 1)
	for l.serving.Load() != ticket {
		runtime.Gosched()
	}
}

// Unlock releases the lock to the next ticket holder.
func (l *Ticket) Unlock() {
	l.serving.Add(1)
}

// CLH is a queue lock in the style of Craig/Landin-Hagersten, standing in
// for the MCS queue lock of Mellor-Crummey & Scott [20]: each acquirer
// enqueues a node and spins on its predecessor's flag, so waiters spin on
// distinct locations and the lock is FIFO-fair.
type CLH struct {
	tail atomic.Pointer[clhNode]
	mine sync.Map // per-goroutine is not expressible; key by token
}

type clhNode struct {
	locked atomic.Bool
}

// clhHandle carries the queue node between Lock and Unlock. Because Go
// has no per-thread storage, CLH hands the node through an explicit
// handle; use LockH/UnlockH when possible. The plain Lock/Unlock pair
// stores the handle keyed by goroutine-independent token and therefore
// serializes on a map — use it only where a sync.Locker is required.
type clhHandle struct {
	node *clhNode
	pred *clhNode
}

// LockH acquires the lock and returns a handle for UnlockH.
func (l *CLH) LockH() any {
	n := &clhNode{}
	n.locked.Store(true)
	pred := l.tail.Swap(n)
	if pred != nil {
		for pred.locked.Load() {
			runtime.Gosched()
		}
	}
	return &clhHandle{node: n, pred: pred}
}

// UnlockH releases the lock acquired by LockH.
func (l *CLH) UnlockH(h any) {
	handle, ok := h.(*clhHandle)
	if !ok {
		panic("spinlock: UnlockH called with a foreign handle")
	}
	handle.node.locked.Store(false)
}

// Lock acquires the lock through a per-lock handle slot so CLH satisfies
// sync.Locker. Handles are matched to unlocks in LIFO order of the single
// critical section, which is exactly the Lock/Unlock discipline.
func (l *CLH) Lock() {
	h := l.LockH()
	l.mine.Store(l, h) // one outstanding handle per lock while held
}

// Unlock releases the lock.
func (l *CLH) Unlock() {
	h, ok := l.mine.LoadAndDelete(l)
	if !ok {
		panic("spinlock: Unlock without Lock")
	}
	l.UnlockH(h)
}

var _ Locker = (*CLH)(nil)

// NewLock constructs a lock by name; the benchmark harness uses it to
// sweep lock kinds. Valid names: "tas", "ttas", "ticket", "clh", "mutex".
func NewLock(kind string) Locker {
	switch kind {
	case "tas":
		return &TAS{}
	case "ttas":
		return &TTAS{}
	case "ticket":
		return &Ticket{}
	case "clh":
		return &CLH{}
	case "mutex":
		return &sync.Mutex{}
	default:
		panic("spinlock: unknown lock kind " + kind)
	}
}

// LockKinds lists the lock names NewLock accepts, in presentation order.
func LockKinds() []string {
	return []string{"tas", "ttas", "ticket", "clh", "mutex"}
}
