package spinlock

import (
	"cmp"

	"valois/internal/dict"
)

// LockedList is the conventional alternative to the paper's structure: a
// plain sequential sorted singly-linked list protected by one lock. It is
// the baseline for experiment E1 ("competitive with spin locks") and,
// with a Delay hook installed, for E2 (a delayed process inside the
// critical section stalls every other process — the convoying of §1).
type LockedList[K cmp.Ordered, V any] struct {
	mu   Locker
	head *seqNode[K, V]
	// Delay, if non-nil, is invoked once per operation while the lock is
	// held, simulating a page fault or preemption inside the critical
	// section (§1). It must be set before the structure is shared.
	Delay func()
}

type seqNode[K cmp.Ordered, V any] struct {
	key   K
	value V
	next  *seqNode[K, V]
}

var _ dict.Dictionary[int, int] = (*LockedList[int, int])(nil)

// NewLockedList returns an empty lock-based sorted-list dictionary
// protected by the given lock.
func NewLockedList[K cmp.Ordered, V any](mu Locker) *LockedList[K, V] {
	return &LockedList[K, V]{mu: mu}
}

// SetDelay installs (or, with nil, removes) the critical-section delay
// hook. It must not race with operations; the workload runner installs it
// before starting and removes it after every worker has stopped.
func (l *LockedList[K, V]) SetDelay(delay func()) { l.Delay = delay }

func (l *LockedList[K, V]) delay() {
	if l.Delay != nil {
		l.Delay()
	}
}

// search returns the first node with key ≥ k and its predecessor (nil for
// the head). Caller must hold the lock.
func (l *LockedList[K, V]) search(k K) (prev, cur *seqNode[K, V]) {
	cur = l.head
	for cur != nil && cur.key < k {
		prev, cur = cur, cur.next
	}
	return prev, cur
}

// Find reports the value stored under key.
func (l *LockedList[K, V]) Find(key K) (V, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.delay()
	_, cur := l.search(key)
	if cur != nil && cur.key == key {
		return cur.value, true
	}
	var zero V
	return zero, false
}

// Insert adds the item if the key is not present.
func (l *LockedList[K, V]) Insert(key K, value V) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.delay()
	prev, cur := l.search(key)
	if cur != nil && cur.key == key {
		return false
	}
	n := &seqNode[K, V]{key: key, value: value, next: cur}
	if prev == nil {
		l.head = n
	} else {
		prev.next = n
	}
	return true
}

// Delete removes the item with the given key.
func (l *LockedList[K, V]) Delete(key K) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.delay()
	prev, cur := l.search(key)
	if cur == nil || cur.key != key {
		return false
	}
	if prev == nil {
		l.head = cur.next
	} else {
		prev.next = cur.next
	}
	return true
}

// Len reports the number of items.
func (l *LockedList[K, V]) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for cur := l.head; cur != nil; cur = cur.next {
		n++
	}
	return n
}

// LockedHash is a hash table of LockedLists with one lock per bucket —
// the fine-grained locking baseline for the hash-dictionary experiments.
type LockedHash[K cmp.Ordered, V any] struct {
	buckets []*LockedList[K, V]
	hash    func(K) uint64
}

var _ dict.Dictionary[int, int] = (*LockedHash[int, int])(nil)

// NewLockedHash returns a lock-based hash dictionary with nbuckets
// buckets; newLock constructs the per-bucket lock.
func NewLockedHash[K cmp.Ordered, V any](nbuckets int, hash func(K) uint64, newLock func() Locker) *LockedHash[K, V] {
	if nbuckets < 1 {
		nbuckets = 1
	}
	h := &LockedHash[K, V]{
		buckets: make([]*LockedList[K, V], nbuckets),
		hash:    hash,
	}
	for i := range h.buckets {
		h.buckets[i] = NewLockedList[K, V](newLock())
	}
	return h
}

// SetDelay installs a critical-section delay hook on every bucket.
func (h *LockedHash[K, V]) SetDelay(delay func()) {
	for _, b := range h.buckets {
		b.Delay = delay
	}
}

func (h *LockedHash[K, V]) bucket(key K) *LockedList[K, V] {
	return h.buckets[h.hash(key)%uint64(len(h.buckets))]
}

// Find reports the value stored under key.
func (h *LockedHash[K, V]) Find(key K) (V, bool) { return h.bucket(key).Find(key) }

// Insert adds the item if the key is not present.
func (h *LockedHash[K, V]) Insert(key K, value V) bool { return h.bucket(key).Insert(key, value) }

// Delete removes the item with the given key.
func (h *LockedHash[K, V]) Delete(key K) bool { return h.bucket(key).Delete(key) }
