package spinlock

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"valois/internal/dict"
)

func TestMutualExclusionAllKinds(t *testing.T) {
	for _, kind := range LockKinds() {
		t.Run(kind, func(t *testing.T) {
			mu := NewLock(kind)
			const (
				goroutines = 8
				perG       = 2000
			)
			counter := 0
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						mu.Lock()
						counter++
						mu.Unlock()
					}
				}()
			}
			wg.Wait()
			if counter != goroutines*perG {
				t.Fatalf("counter = %d, want %d (lost updates: no mutual exclusion)", counter, goroutines*perG)
			}
		})
	}
}

func TestCLHHandleAPI(t *testing.T) {
	var l CLH
	h := l.LockH()
	done := make(chan struct{})
	go func() {
		l.Lock() // must block until UnlockH
		l.Unlock()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("second acquire succeeded while lock held")
	default:
	}
	l.UnlockH(h)
	<-done
}

func TestNewLockUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLock with unknown kind did not panic")
		}
	}()
	NewLock("bogus")
}

func TestLockedListSemantics(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
	}
	f := func(ops []op) bool {
		l := NewLockedList[int, int](&sync.Mutex{})
		model := map[int]int{}
		v := 0
		for _, o := range ops {
			k := int(o.Key % 24)
			switch o.Kind % 3 {
			case 0:
				v++
				_, exists := model[k]
				if got := l.Insert(k, v); got != !exists {
					return false
				}
				if !exists {
					model[k] = v
				}
			case 1:
				_, exists := model[k]
				if got := l.Delete(k); got != exists {
					return false
				}
				delete(model, k)
			default:
				mv, exists := model[k]
				got, ok := l.Find(k)
				if ok != exists || (ok && got != mv) {
					return false
				}
			}
		}
		return l.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLockedListConcurrent(t *testing.T) {
	for _, kind := range LockKinds() {
		t.Run(kind, func(t *testing.T) {
			l := NewLockedList[int, int](NewLock(kind))
			var wg sync.WaitGroup
			for g := 0; g < 6; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 150; i++ {
						k := g*150 + i
						if !l.Insert(k, k) {
							t.Errorf("Insert(%d) failed", k)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			if got := l.Len(); got != 900 {
				t.Fatalf("Len = %d, want 900", got)
			}
		})
	}
}

func TestLockedHash(t *testing.T) {
	var d dict.Dictionary[int, int] = NewLockedHash[int, int](8, dict.HashInt, func() Locker { return &TTAS{} })
	for k := 0; k < 200; k++ {
		if !d.Insert(k, k*3) {
			t.Fatalf("Insert(%d) failed", k)
		}
	}
	for k := 0; k < 200; k++ {
		if v, ok := d.Find(k); !ok || v != k*3 {
			t.Fatalf("Find(%d) = %d,%v", k, v, ok)
		}
	}
	for k := 0; k < 200; k += 2 {
		if !d.Delete(k) {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	for k := 0; k < 200; k++ {
		_, ok := d.Find(k)
		if want := k%2 == 1; ok != want {
			t.Fatalf("Find(%d) = %v, want %v", k, ok, want)
		}
	}
}

func TestDelayHookRunsInsideCriticalSection(t *testing.T) {
	l := NewLockedList[int, int](&sync.Mutex{})
	var calls atomic.Int64
	l.Delay = func() { calls.Add(1) }
	l.Insert(1, 1)
	l.Find(1)
	l.Delete(1)
	if got := calls.Load(); got != 3 {
		t.Fatalf("delay hook ran %d times, want 3", got)
	}
}
