package mm

import (
	"sync"
	"testing"

	"valois/internal/testenv"
)

func TestEBRAllocGivesCallerReference(t *testing.T) {
	m := NewEBR[int]()
	n := m.Alloc()
	if n == nil {
		t.Fatal("Alloc returned nil without a capacity limit")
	}
	if got := n.RefCount(); got != 1 {
		t.Fatalf("fresh cell refcount = %d, want 1", got)
	}
	if got := n.claim.Load(); got != 0 {
		t.Fatalf("fresh cell claim = %d, want 0", got)
	}
}

func TestEBRSafeReadIsPlainLoad(t *testing.T) {
	m := NewEBR[int]()
	n := m.Alloc()
	var p = &n.next
	n2 := m.Alloc()
	p.Store(n2)
	g := m.Pin()
	if got := m.SafeRead(p); got != n2 {
		t.Fatalf("SafeRead = %p, want %p", got, n2)
	}
	// The load must not have touched the count: the pin is the protection.
	if got := n2.RefCount(); got != 1 {
		t.Fatalf("refcount after SafeRead = %d, want 1 (plain load)", got)
	}
	m.Unpin(g)
}

// TestEBRPinBlocksReclamation is the manager-level statement of the core
// EBR guarantee: a goroutine pinned at epoch e keeps every cell retired at
// epoch e out of the free list, no matter how often advancement is tried,
// because the second advancement past e cannot happen until the pin ends.
func TestEBRPinBlocksReclamation(t *testing.T) {
	m := NewEBR[int]()
	g := m.Pin()

	n := m.Alloc()
	m.Release(n) // count hits zero: retired into the current epoch's bucket

	for i := 0; i < 32; i++ {
		m.ForceAdvance()
	}
	if got := m.Stats().Reclaims; got != 0 {
		t.Fatalf("reclaims with a pin active = %d, want 0", got)
	}
	if got := m.LimboLen(); got != 1 {
		t.Fatalf("limbo length with a pin active = %d, want 1", got)
	}
	// The epoch may advance at most once past the pin's observation.
	if e := m.Epoch(); e > 2 {
		t.Fatalf("epoch advanced to %d past an active pin at epoch 1", e)
	}

	m.Unpin(g)
	if !m.Quiesce() {
		t.Fatalf("Quiesce failed after unpin; limbo = %d", m.LimboLen())
	}
	s := m.Stats()
	if s.Reclaims != 1 || s.Live() != 0 {
		t.Fatalf("after quiesce: reclaims = %d live = %d, want 1 and 0", s.Reclaims, s.Live())
	}
}

// TestEBRUnpinUnblocksAdvancement pins two goroutinesworth of slots and
// shows the epoch stays put until the last one unpins.
func TestEBRUnpinUnblocksAdvancement(t *testing.T) {
	m := NewEBR[int]()
	g1 := m.Pin()
	g2 := m.Pin()
	start := m.Epoch()

	m.Release(m.Alloc()) // something in limbo so Unpin bothers advancing

	m.Unpin(g1)
	for i := 0; i < 8; i++ {
		m.ForceAdvance()
	}
	if e := m.Epoch(); e > start+1 {
		t.Fatalf("epoch advanced to %d with a pin still at %d", e, start)
	}
	m.Unpin(g2)
	if !m.Quiesce() {
		t.Fatalf("Quiesce failed; limbo = %d", m.LimboLen())
	}
	if got := m.Stats().Live(); got != 0 {
		t.Fatalf("live after quiesce = %d, want 0", got)
	}
}

// TestEBRResurrectionDeferral exercises the drain's count re-check: a
// pinned goroutine holding a stale pointer stores a new counted link to an
// already-retired cell (the TryDelete back_link shape). The drain must
// requeue the cell instead of freeing it, and the eventual last Release
// must not retire it a second time.
func TestEBRResurrectionDeferral(t *testing.T) {
	m := NewEBR[int]()
	g := m.Pin()
	n := m.Alloc()
	m.Release(n) // retired; we still hold the raw pointer under the pin

	m.AddRef(n) // the resurrecting link store bumps the count first
	m.Unpin(g)

	for i := 0; i < 32; i++ {
		m.ForceAdvance()
	}
	if got := m.Stats().Reclaims; got != 0 {
		t.Fatalf("resurrected cell reclaimed: reclaims = %d, want 0", got)
	}
	if got := m.LimboLen(); got != 1 {
		t.Fatalf("limbo = %d, want 1 (requeued)", got)
	}

	m.Release(n) // the resurrecting link is dropped; claim already set
	if !m.Quiesce() {
		t.Fatalf("Quiesce failed; limbo = %d", m.LimboLen())
	}
	s := m.Stats()
	if s.Reclaims != 1 || s.Live() != 0 {
		t.Fatalf("reclaims = %d live = %d, want exactly 1 and 0", s.Reclaims, s.Live())
	}
}

// TestEBRRetiredLinksStayReadable pins down cell persistence across
// retirement: unlike RC's Reclaim, retiring must NOT clear next/back_link
// — pinned traversals may still be walking through the deleted cell. The
// links are dropped only when the grace period expires.
func TestEBRRetiredLinksStayReadable(t *testing.T) {
	m := NewEBR[int]()
	g := m.Pin()
	a := m.Alloc()
	b := m.Alloc()
	a.StoreNext(b)
	m.AddRef(b)  // counted link a→b
	m.Release(a) // a retired; holds the only surviving reference to b... plus ours

	if got := a.Next(); got != b {
		t.Fatalf("retired cell's next = %p, want %p (links must survive retirement)", got, b)
	}
	m.Release(b) // drop our allocation reference; the a→b link keeps b alive
	if got := b.RefCount(); got != 1 {
		t.Fatalf("b refcount = %d, want 1 (the a→b link)", got)
	}
	m.Unpin(g)
	if !m.Quiesce() {
		t.Fatalf("Quiesce failed; limbo = %d", m.LimboLen())
	}
	s := m.Stats()
	if s.Reclaims != 2 || s.Live() != 0 {
		t.Fatalf("reclaims = %d live = %d, want 2 and 0 (freeing a cascades to b)", s.Reclaims, s.Live())
	}
}

func TestEBRReleaseNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	m := NewEBR[int]()
	n := m.Alloc()
	m.Release(n)
	m.Release(n)
}

// TestEBRSlotBanksGrow takes more simultaneous pins than one bank holds;
// Pin must never block, and advancement must still see every slot.
func TestEBRSlotBanksGrow(t *testing.T) {
	m := NewEBR[int]()
	guards := make([]Guard, 3*slotsPerBank)
	seen := make(map[*eslot]bool)
	for i := range guards {
		guards[i] = m.Pin()
		if seen[guards[i].slot] {
			t.Fatalf("pin %d reused an already-pinned slot", i)
		}
		seen[guards[i].slot] = true
	}
	m.Release(m.Alloc())
	for i := 0; i < 8; i++ {
		m.ForceAdvance()
	}
	if e := m.Epoch(); e > 2 {
		t.Fatalf("epoch advanced to %d past %d active pins", e, len(guards))
	}
	for _, g := range guards {
		m.Unpin(g)
	}
	if !m.Quiesce() {
		t.Fatalf("Quiesce failed; limbo = %d", m.LimboLen())
	}
}

// TestEBRExtractorRunsOnFree mirrors RC's reclaim-extractor contract: the
// extractor's references are released when the retired cell is actually
// freed, not at retire time.
func TestEBRExtractorRunsOnFree(t *testing.T) {
	m := NewEBR[int]()
	b := m.Alloc() // the cell the extractor will surface, as a skip-list
	// tower's Down pointer would; our allocation reference stands in for
	// the item's counted reference.
	m.SetReclaimExtractor(func(item int) (*Node[int], *Node[int]) {
		if item == 1 {
			return b, nil
		}
		return nil, nil
	})
	a := m.Alloc()
	a.Item = 1
	m.Release(a) // retire a; freeing it must release the item's reference to b
	if !m.Quiesce() {
		t.Fatalf("Quiesce failed; limbo = %d", m.LimboLen())
	}
	s := m.Stats()
	if s.Reclaims != 2 || s.Live() != 0 {
		t.Fatalf("reclaims = %d live = %d, want 2 and 0 (a's free must cascade to b)", s.Reclaims, s.Live())
	}
}

// TestEBRChurnRace hammers the manager from several goroutines — pinned
// traversal windows, counted holds, retires, and concurrent advancement —
// under the race detector, then checks conservation.
func TestEBRChurnRace(t *testing.T) {
	m := NewEBR[int]()
	const workers = 4
	iters := testenv.Iters(20000)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			held := make([]*Node[int], 0, 8)
			for i := 0; i < iters; i++ {
				g := m.Pin()
				n := m.Alloc()
				if len(held) == cap(held) {
					for _, h := range held {
						m.Release(h)
					}
					held = held[:0]
				}
				held = append(held, n)
				m.Unpin(g)
				if i%64 == 0 {
					m.ForceAdvance()
				}
			}
			for _, h := range held {
				m.Release(h)
			}
		}()
	}
	wg.Wait()
	if !m.Quiesce() {
		t.Fatalf("Quiesce failed; limbo = %d", m.LimboLen())
	}
	s := m.Stats()
	if s.Live() != 0 {
		t.Fatalf("live after churn = %d, want 0 (allocs %d, reclaims %d)", s.Live(), s.Allocs, s.Reclaims)
	}
	if s.Limbo != 0 {
		t.Fatalf("limbo gauge = %d, want 0", s.Limbo)
	}
}

// TestEBRModePlumbing checks the NewManager switch and the mode names.
func TestEBRModePlumbing(t *testing.T) {
	m := NewManager[int](ModeEBR)
	if _, ok := m.(*EBR[int]); !ok {
		t.Fatalf("NewManager(ModeEBR) = %T, want *EBR", m)
	}
	if _, ok := m.(Pinner); !ok {
		t.Fatal("EBR manager does not implement Pinner")
	}
	if got := ModeEBR.String(); got != "ebr" {
		t.Fatalf("ModeEBR.String() = %q", got)
	}
	if mode, ok := ParseMode("ebr"); !ok || mode != ModeEBR {
		t.Fatalf("ParseMode(ebr) = %v, %v", mode, ok)
	}
}
