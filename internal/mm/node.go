// Package mm implements the memory management scheme of Valois §5: cells
// with reference counts manipulated through SafeRead and Release
// (Figures 15 and 16), and a lock-free free list with Alloc and Reclaim
// (Figures 17 and 18).
//
// Two interchangeable managers are provided behind the Manager interface:
//
//   - RC is the faithful reproduction: cells live in a type-stable arena,
//     are recycled through the lock-free free list, and are protected from
//     premature reuse — and therefore from the ABA problem (§5.1) — by
//     reference counts.
//   - GC leans on the Go garbage collector: SafeRead degenerates to an
//     atomic load and Release to a no-op, because the collector guarantees
//     a cell's memory is never reused while any process still holds a
//     pointer to it, which is exactly the property §5.1 derives from the
//     reference counts.
//
// The reference-counting discipline follows the paper with the bookkeeping
// conventions later formalized by Michael & Scott's correction note:
//
//   - every pointer stored in a cell field (next, back_link) counts as one
//     reference to the pointed-to cell, with the single exception of free
//     list linkage, which is uncounted (cells on the free list have count
//     zero apart from transient SafeReads by concurrent allocators);
//   - Alloc returns a cell whose count already includes the caller's one
//     private reference;
//   - reclaiming a cell releases the references held by the pointers still
//     stored in it, so chains of deleted cells are reclaimed transitively.
package mm

import "sync/atomic"

// Kind classifies a cell within the list structure of §3. The memory
// manager itself treats all kinds identically; the field lives on Node so
// that traversal code can distinguish auxiliary nodes (which consist of
// "only a next field") from normal cells and from the two dummy cells.
type Kind uint8

// Cell kinds. The zero value is deliberately invalid so that an
// uninitialized node is detectable in tests.
const (
	KindCell  Kind = iota + 1 // normal cell carrying an item
	KindAux                   // auxiliary node (§3): only the next field is meaningful
	KindFirst                 // the First dummy cell (Figure 4)
	KindLast                  // the Last dummy cell (Figure 4)
)

// String returns a short human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindCell:
		return "cell"
	case KindAux:
		return "aux"
	case KindFirst:
		return "first"
	case KindLast:
		return "last"
	default:
		return "invalid"
	}
}

// Node is a cell of the shared list structure (§2.1): a next pointer, the
// back_link pointer added by §3 for TryDelete, the memory-management fields
// refct and claim of §5.1, and the application item.
//
// All pointer fields must be accessed through the atomic accessors. The
// Item and kind fields are written only between Alloc and publication of
// the node, and are immutable afterwards, so they may be read plainly.
type Node[T any] struct {
	next     atomic.Pointer[Node[T]]
	backLink atomic.Pointer[Node[T]]
	refct    atomic.Int64
	claim    atomic.Int32
	kind     Kind

	// limbo links retired cells into an EBR limbo list (see EBR). It is a
	// separate field because a retired cell's next and back_link must stay
	// readable until its grace period expires — pinned traversals may still
	// be walking through the deleted cell (§2.2 cell persistence).
	limbo atomic.Pointer[Node[T]]

	// Item is the application payload stored in a normal cell. It is
	// preserved after deletion ("cell persistence", §2.2) until the cell
	// is reclaimed, so cursors visiting a deleted cell can still read it.
	Item T
}

// Next returns the cell's next pointer.
func (n *Node[T]) Next() *Node[T] { return n.next.Load() }

// StoreNext unconditionally stores next. It must only be used on cells the
// caller owns exclusively (e.g. a freshly allocated cell before insertion);
// published cells change their next pointer only through CASNext.
func (n *Node[T]) StoreNext(next *Node[T]) { n.next.Store(next) }

// CASNext atomically swings the next pointer from old to new, reporting
// whether it succeeded. This is the Compare&Swap of Figure 1 applied to a
// next field.
func (n *Node[T]) CASNext(old, new *Node[T]) bool { return n.next.CompareAndSwap(old, new) }

// NextAddr exposes the address of the next field for SafeRead.
func (n *Node[T]) NextAddr() *atomic.Pointer[Node[T]] { return &n.next }

// BackLink returns the cell's back_link pointer (§3), which is non-nil
// exactly when the cell has been deleted from the list.
func (n *Node[T]) BackLink() *Node[T] { return n.backLink.Load() }

// StoreBackLink sets the back_link pointer (TryDelete, Figure 10 line 6).
func (n *Node[T]) StoreBackLink(b *Node[T]) { n.backLink.Store(b) }

// CASBackLink atomically swings the back_link pointer from old to new.
// The binary search tree (§4.2) reuses the back_link field as its deletion
// descriptor slot, claimed exactly once per cell with this operation.
func (n *Node[T]) CASBackLink(old, new *Node[T]) bool { return n.backLink.CompareAndSwap(old, new) }

// BackLinkAddr exposes the address of the back_link field for SafeRead.
func (n *Node[T]) BackLinkAddr() *atomic.Pointer[Node[T]] { return &n.backLink }

// Deleted reports whether the cell has been deleted from the list, which
// §3 encodes by a non-nil back_link.
func (n *Node[T]) Deleted() bool { return n.backLink.Load() != nil }

// Kind reports the cell's kind.
func (n *Node[T]) Kind() Kind { return n.kind }

// SetKind classifies the cell. It must be called between Alloc and
// publication; the kind of a published cell is immutable.
func (n *Node[T]) SetKind(k Kind) { n.kind = k }

// IsAux reports whether the cell is an auxiliary node. Update (Figure 5)
// and TryDelete (Figure 10) use this as the "is not a normal cell" test.
func (n *Node[T]) IsAux() bool { return n.kind == KindAux }

// IsNormal reports whether the cell is a normal or dummy cell, i.e. the
// paper's "normal cell" test used to terminate auxiliary-chain scans. The
// dummy Last cell counts as normal (Figure 5 line 6 treats reaching Last
// like reaching a normal cell).
func (n *Node[T]) IsNormal() bool { return n.kind != KindAux }

// RefCount returns the current reference count. It is meaningful only
// under the RC manager and is exposed for invariant checks in tests.
func (n *Node[T]) RefCount() int64 { return n.refct.Load() }
