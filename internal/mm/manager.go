package mm

import "sync/atomic"

// Manager is the memory management interface of §5: allocation and
// reclamation of cells (§5.2) and the SafeRead/Release reference-count
// protocol (§5.1) that makes Compare&Swap on recycled cells safe from the
// ABA problem.
//
// The list algorithms of §3 are written against this interface so that the
// faithful reference-counted manager (RC) and the garbage-collector-backed
// manager (GC) are interchangeable; experiment E8 measures the difference.
type Manager[T any] interface {
	// Alloc returns a cell for exclusive use by the caller, or nil if the
	// manager has a fixed capacity and it is exhausted (Figure 17 returns
	// NULL on an empty free list). The returned cell carries one
	// reference owned by the caller; hand it back with Release once it is
	// either published (the structure's links then keep it alive) or
	// abandoned.
	Alloc() *Node[T]

	// SafeRead atomically reads the pointer at p and acquires a reference
	// to the cell read (Figure 15). The caller must pair it with Release.
	// It returns nil, without acquiring anything, if p holds nil.
	SafeRead(p *atomic.Pointer[Node[T]]) *Node[T]

	// Release gives up one reference to n, reclaiming the cell for reuse
	// if it was the last (Figure 16). Release(nil) is a no-op.
	Release(n *Node[T])

	// AddRef acquires an additional reference to a cell the caller
	// already safely holds. It accounts for storing a new pointer to n
	// into a cell field, or for duplicating a held reference (e.g. when a
	// cursor copies its target into pre_cell, Figure 7 line 4).
	// AddRef(nil) is a no-op.
	AddRef(n *Node[T])

	// Stats returns allocation counters for leak checks and experiment E9.
	Stats() Stats
}

// Stats reports cumulative allocation activity of a Manager.
type Stats struct {
	// Allocs is the number of successful Alloc calls.
	Allocs int64
	// Reclaims is the number of cells returned to the manager. Under the
	// GC manager it counts cells whose last reference was dropped through
	// Release only notionally (always zero) because the collector does
	// the actual reclamation.
	Reclaims int64
	// Created is the number of distinct cells ever created. Under RC,
	// Allocs-Reclaims ≤ live references and Created bounds the arena.
	Created int64

	// The remaining fields describe free-list behavior and are always
	// zero under the GC manager, which has no free list.

	// Pops counts successful Figure 17 pops, summed over stripes.
	Pops int64
	// Pushes counts Figure 18 pushes, summed over stripes (reclaims plus
	// the surplus cells each arena grow contributes).
	Pushes int64
	// Grows counts arena growth events (batches of cells created because
	// every stripe was empty).
	Grows int64
	// Steals counts Allocs satisfied from a sibling stripe after the home
	// stripe came up empty; a high rate means the stripes are imbalanced
	// relative to the workload's per-goroutine alloc/release mix.
	Steals int64
	// Stripes is the number of free-list stripes the manager was built
	// with (a configuration echo, not a counter).
	Stripes int

	// Epoch and Limbo are gauges of the EBR manager (zero elsewhere):
	// the current global epoch and the number of retired cells awaiting
	// their grace period. Aggregating per-shard managers sums them, so
	// treat the totals as activity indicators, not instantaneous state.
	Epoch int64
	Limbo int64
}

// Add accumulates o's counters into s (Stripes sums too, so aggregating
// per-shard managers reports the total stripe count).
func (s *Stats) Add(o Stats) {
	s.Allocs += o.Allocs
	s.Reclaims += o.Reclaims
	s.Created += o.Created
	s.Pops += o.Pops
	s.Pushes += o.Pushes
	s.Grows += o.Grows
	s.Steals += o.Steals
	s.Stripes += o.Stripes
	s.Epoch += o.Epoch
	s.Limbo += o.Limbo
}

// Live returns the number of cells currently checked out (allocated and
// not yet reclaimed). Under RC at quiescence this must equal the number of
// cells reachable from live structures plus references still held by
// cursors; tests use it for leak detection.
func (s Stats) Live() int64 { return s.Allocs - s.Reclaims }

type stats struct {
	allocs   atomic.Int64
	reclaims atomic.Int64
	created  atomic.Int64
}

func (s *stats) snapshot() Stats {
	return Stats{
		Allocs:   s.allocs.Load(),
		Reclaims: s.reclaims.Load(),
		Created:  s.created.Load(),
	}
}
