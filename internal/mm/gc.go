package mm

import "sync/atomic"

// GC is a Manager that delegates reclamation to the Go garbage collector.
//
// §5.1 observes that "the ABA problem can only occur if a cell is reused
// while another process has a pointer to it". A tracing garbage collector
// enforces precisely this rule for free, so under GC the SafeRead and
// Release operations reduce to a plain atomic read and a no-op, and cells
// are ordinary heap objects. This is the mode a Go application would use in
// production; the RC manager exists to reproduce the paper's own scheme and
// to quantify its cost (experiment E8).
type GC[T any] struct {
	stats stats
}

var _ Manager[int] = (*GC[int])(nil)

// NewGC returns a garbage-collector-backed manager.
func NewGC[T any]() *GC[T] {
	return &GC[T]{}
}

// Alloc returns a fresh zeroed cell.
func (m *GC[T]) Alloc() *Node[T] {
	m.stats.allocs.Add(1)
	m.stats.created.Add(1)
	return &Node[T]{}
}

// SafeRead is a plain atomic load: the collector provides the reuse
// guarantee that Figure 15 obtains with a reference count.
func (m *GC[T]) SafeRead(p *atomic.Pointer[Node[T]]) *Node[T] {
	return p.Load()
}

// Release is a no-op: unreachable cells are collected automatically.
func (m *GC[T]) Release(*Node[T]) {}

// AddRef is a no-op: the collector tracks references itself.
func (m *GC[T]) AddRef(*Node[T]) {}

// Stats returns allocation counters.
func (m *GC[T]) Stats() Stats {
	return m.stats.snapshot()
}
