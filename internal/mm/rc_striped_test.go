package mm

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"valois/internal/testenv"
)

// TestRCStripedDefaults checks the construction-time knobs: the default
// stripe count follows GOMAXPROCS, WithStripes overrides it, and
// FaithfulOptions restores the paper's single free list.
func TestRCStripedDefaults(t *testing.T) {
	if got, want := NewRC[int]().NumStripes(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("default stripes = %d, want GOMAXPROCS = %d", got, want)
	}
	if got := NewRC[int](WithStripes(6)).NumStripes(); got != 6 {
		t.Fatalf("WithStripes(6) stripes = %d, want 6", got)
	}
	if got := NewRC[int](WithStripes(0)).NumStripes(); got != 1 {
		t.Fatalf("WithStripes(0) stripes = %d, want clamped to 1", got)
	}
	m := NewRC[int](FaithfulOptions()...)
	if got := m.NumStripes(); got != 1 {
		t.Fatalf("faithful stripes = %d, want 1", got)
	}
	if !m.noBackoff {
		t.Fatal("faithful configuration should disable backoff")
	}
	if m.stride != 1 {
		t.Fatalf("faithful stride = %d, want packed (1)", m.stride)
	}
	if padded := NewRC[int](); padded.stride < 2 {
		t.Fatalf("padded stride for an 8-byte item = %d, want ≥ 2 (cells a cache line apart)", padded.stride)
	}
	// A payload already larger than a cache line needs no extra spacing.
	if big := NewRC[[16]int64](); big.stride != 1 {
		t.Fatalf("padded stride for a 128-byte item = %d, want 1", big.stride)
	}
}

// TestRCStealAvoidsGrow pins the steal path: when the claimed home stripe
// is empty but a sibling holds a free cell, Alloc must pop the sibling
// (counting a steal) rather than growing the arena.
func TestRCStealAvoidsGrow(t *testing.T) {
	m := NewRC[int](WithStripes(2), WithBatchSize(1))
	n := m.Alloc() // grows one cell on stripe 0 (the hint starts there)
	m.Release(n)   // pushes it back to stripe 0
	if got := m.Stats().Created; got != 1 {
		t.Fatalf("created = %d after one alloc/release, want 1", got)
	}

	// Occupy stripe 0 so the next claim lands on stripe 1, whose free
	// list is empty; the only free cell in the arena sits on stripe 0.
	m.stripes[0].busy.Store(1)
	n2 := m.Alloc()
	m.stripes[0].busy.Store(0)

	if n2 != n {
		t.Fatal("Alloc did not steal the sibling stripe's free cell")
	}
	s := m.Stats()
	if s.Created != 1 {
		t.Fatalf("created = %d after steal, want 1 (stealing must not grow)", s.Created)
	}
	if s.Steals != 1 {
		t.Fatalf("steals = %d, want 1", s.Steals)
	}
	per := m.StripeStats()
	if per[0].Steals != 1 {
		t.Fatalf("stripe 0 steals = %d, want 1 (the cell was taken from stripe 0)", per[0].Steals)
	}
	if per[1].Steals != 0 {
		t.Fatalf("stripe 1 steals = %d, want 0", per[1].Steals)
	}
	m.Release(n2)
}

// TestRCFreeLenQuiescenceContract pins FreeLen's documented contract: at
// quiescence it sums the free cells across every stripe and equals
// Created minus the cells currently checked out.
func TestRCFreeLenQuiescenceContract(t *testing.T) {
	m := NewRC[int](WithStripes(4), WithBatchSize(4))
	var held []*Node[int]
	for i := 0; i < 10; i++ {
		held = append(held, m.Alloc())
	}
	for _, n := range held[:6] {
		m.Release(n)
	}
	s := m.Stats()
	if got, want := int64(m.FreeLen()), s.Created-s.Live(); got != want {
		t.Fatalf("FreeLen = %d, want Created-Live = %d", got, want)
	}
	for _, n := range held[6:] {
		m.Release(n)
	}
	s = m.Stats()
	if s.Live() != 0 {
		t.Fatalf("live = %d at quiescence, want 0", s.Live())
	}
	if got := int64(m.FreeLen()); got != s.Created {
		t.Fatalf("FreeLen = %d at quiescence, want all %d created cells", got, s.Created)
	}
	// The free population is also exactly the push/pop imbalance.
	if got := int64(m.FreeLen()); got != s.Pushes-s.Pops {
		t.Fatalf("FreeLen = %d, want Pushes-Pops = %d", got, s.Pushes-s.Pops)
	}
}

// TestRCStripeCounterAccounting checks the counter identities that hold at
// quiescence with a grow batch of one (each grow creates exactly the cell
// it returns, so no grow surplus is ever pushed): every alloc is either a
// pop or a grow, and every push is a reclaim.
func TestRCStripeCounterAccounting(t *testing.T) {
	m := NewRC[int](WithStripes(3), WithBatchSize(1))
	var held []*Node[int]
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		if len(held) == 0 || rng.Intn(2) == 0 {
			held = append(held, m.Alloc())
		} else {
			j := rng.Intn(len(held))
			m.Release(held[j])
			held[j] = held[len(held)-1]
			held = held[:len(held)-1]
		}
	}
	for _, n := range held {
		m.Release(n)
	}
	s := m.Stats()
	if s.Allocs != s.Pops+s.Grows {
		t.Fatalf("allocs = %d, want pops+grows = %d+%d", s.Allocs, s.Pops, s.Grows)
	}
	if s.Pushes != s.Reclaims {
		t.Fatalf("pushes = %d, want reclaims = %d (batch=1 has no grow surplus)", s.Pushes, s.Reclaims)
	}
	if s.Stripes != 3 {
		t.Fatalf("stripes = %d, want 3", s.Stripes)
	}
	var perTotal StripeStats
	for _, st := range m.StripeStats() {
		perTotal.Pops += st.Pops
		perTotal.Pushes += st.Pushes
		perTotal.Grows += st.Grows
		perTotal.Steals += st.Steals
	}
	if perTotal.Pops != s.Pops || perTotal.Pushes != s.Pushes ||
		perTotal.Grows != s.Grows || perTotal.Steals != s.Steals {
		t.Fatalf("per-stripe sums %+v disagree with aggregate %+v", perTotal, s)
	}
}

// TestRCStripedStress hammers Alloc/Release from several goroutines
// against a deliberately striped manager, with the yield hook opening the
// read-head-then-Compare&Swap windows so pops, pushes, and steals actually
// interleave (on a single-CPU host they otherwise run quasi-serially).
// The race detector run in CI executes this with VALOIS_STRESS_DIV set;
// conservation must hold at quiescence.
func TestRCStripedStress(t *testing.T) {
	const (
		goroutines = 8
		holdMax    = 24
	)
	iterations := testenv.Iters(20000)
	m := NewRC[int](WithStripes(4), WithBatchSize(8))
	var ctr atomic.Uint32
	m.SetYieldHook(func() {
		if ctr.Add(1)%16 == 0 {
			runtime.Gosched()
		}
	})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var held []*Node[int]
			for i := 0; i < iterations; i++ {
				if len(held) < holdMax && (len(held) == 0 || rng.Intn(2) == 0) {
					n := m.Alloc()
					n.Item = i
					held = append(held, n)
				} else {
					j := rng.Intn(len(held))
					m.Release(held[j])
					held[j] = held[len(held)-1]
					held = held[:len(held)-1]
				}
			}
			for _, n := range held {
				m.Release(n)
			}
		}(int64(g + 1))
	}
	wg.Wait()
	s := m.Stats()
	if s.Live() != 0 {
		t.Fatalf("live = %d at quiescence, want 0", s.Live())
	}
	if got := int64(m.FreeLen()); got != s.Created {
		t.Fatalf("free list has %d cells, want all %d created", got, s.Created)
	}
	if got := int64(m.FreeLen()); got != s.Pushes-s.Pops {
		t.Fatalf("FreeLen = %d, want Pushes-Pops = %d", got, s.Pushes-s.Pops)
	}
	if s.Allocs != s.Pops+s.Grows {
		t.Fatalf("allocs = %d, want pops+grows = %d+%d", s.Allocs, s.Pops, s.Grows)
	}
}

// TestStatsAdd checks the Stats aggregation helper used by the hash
// dictionary and the server's per-shard rollup.
func TestStatsAdd(t *testing.T) {
	a := Stats{Allocs: 1, Reclaims: 2, Created: 3, Pops: 4, Pushes: 5, Grows: 6, Steals: 7, Stripes: 2}
	b := Stats{Allocs: 10, Reclaims: 20, Created: 30, Pops: 40, Pushes: 50, Grows: 60, Steals: 70, Stripes: 1}
	a.Add(b)
	want := Stats{Allocs: 11, Reclaims: 22, Created: 33, Pops: 44, Pushes: 55, Grows: 66, Steals: 77, Stripes: 3}
	if a != want {
		t.Fatalf("Add = %+v, want %+v", a, want)
	}
}
