package mm

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRCAllocGivesCallerReference(t *testing.T) {
	m := NewRC[int]()
	n := m.Alloc()
	if n == nil {
		t.Fatal("Alloc returned nil without a capacity limit")
	}
	if got := n.RefCount(); got != 1 {
		t.Fatalf("fresh cell refcount = %d, want 1", got)
	}
	if got := n.claim.Load(); got != 0 {
		t.Fatalf("fresh cell claim = %d, want 0", got)
	}
	if s := m.Stats(); s.Allocs != 1 || s.Live() != 1 {
		t.Fatalf("stats = %+v, want 1 alloc live", s)
	}
}

func TestRCReleaseReclaimsAndReuses(t *testing.T) {
	m := NewRC[int](WithBatchSize(1))
	n := m.Alloc()
	m.Release(n)
	if s := m.Stats(); s.Live() != 0 {
		t.Fatalf("live = %d after release, want 0", s.Live())
	}
	// The free list is a stack (§5.2), so the next Alloc returns the same
	// cell.
	n2 := m.Alloc()
	if n2 != n {
		t.Fatalf("Alloc did not reuse the reclaimed cell")
	}
	if got := n2.RefCount(); got != 1 {
		t.Fatalf("reused cell refcount = %d, want 1", got)
	}
	if got := n2.claim.Load(); got != 0 {
		t.Fatalf("reused cell claim = %d, want 0 (Fig 17 line 8)", got)
	}
	if n2.Next() != nil || n2.BackLink() != nil {
		t.Fatal("reused cell has stale links")
	}
}

func TestRCAllocZeroesItemAndKind(t *testing.T) {
	m := NewRC[string](WithBatchSize(1))
	n := m.Alloc()
	n.Item = "stale"
	n.SetKind(KindCell)
	m.Release(n)
	n2 := m.Alloc()
	if n2 != n {
		t.Fatal("expected reuse")
	}
	if n2.Item != "" {
		t.Fatalf("reused cell item = %q, want zero value", n2.Item)
	}
	if n2.Kind() != 0 {
		t.Fatalf("reused cell kind = %v, want unset", n2.Kind())
	}
}

func TestRCCapacityExhaustion(t *testing.T) {
	m := NewRC[int](WithCapacity(3), WithBatchSize(2))
	var nodes []*Node[int]
	for i := 0; i < 3; i++ {
		n := m.Alloc()
		if n == nil {
			t.Fatalf("Alloc %d returned nil below capacity", i)
		}
		nodes = append(nodes, n)
	}
	if n := m.Alloc(); n != nil {
		t.Fatal("Alloc beyond capacity should return nil (Fig 17 line 3)")
	}
	m.Release(nodes[0])
	if n := m.Alloc(); n == nil {
		t.Fatal("Alloc after a Release should succeed again")
	}
}

func TestRCSafeReadAcquiresReference(t *testing.T) {
	m := NewRC[int]()
	n := m.Alloc()
	var p atomic.Pointer[Node[int]]
	p.Store(n)

	got := m.SafeRead(&p)
	if got != n {
		t.Fatal("SafeRead returned wrong cell")
	}
	if rc := n.RefCount(); rc != 2 {
		t.Fatalf("refcount after SafeRead = %d, want 2", rc)
	}
	m.Release(got)
	if rc := n.RefCount(); rc != 1 {
		t.Fatalf("refcount after Release = %d, want 1", rc)
	}
}

func TestRCSafeReadNil(t *testing.T) {
	m := NewRC[int]()
	var p atomic.Pointer[Node[int]]
	if got := m.SafeRead(&p); got != nil {
		t.Fatalf("SafeRead of nil pointer = %v, want nil", got)
	}
	m.Release(nil) // must be a no-op
	m.AddRef(nil)  // must be a no-op
}

func TestRCReleaseCascadesThroughLinks(t *testing.T) {
	m := NewRC[int]()
	// Build a → b → c through counted next links and give b a counted
	// back_link to d; releasing the head must reclaim all four cells
	// (the Michael & Scott correction: Reclaim releases contained
	// pointers).
	a, b, c, d := m.Alloc(), m.Alloc(), m.Alloc(), m.Alloc()
	a.StoreNext(b)
	m.AddRef(b)
	b.StoreNext(c)
	m.AddRef(c)
	b.StoreBackLink(d)
	m.AddRef(d)
	// Drop the direct allocation references of b, c, d: only the links
	// keep them alive now.
	m.Release(b)
	m.Release(c)
	m.Release(d)
	if s := m.Stats(); s.Live() != 4 {
		t.Fatalf("live = %d, want 4 (a holds the chain)", s.Live())
	}
	m.Release(a)
	if s := m.Stats(); s.Live() != 0 {
		t.Fatalf("live = %d after cascade, want 0", s.Live())
	}
}

func TestRCTransientSafeReadOnFreeCell(t *testing.T) {
	// A SafeRead can transiently bump the count of a cell that is already
	// on the free list (its pointer read was stale). The claim bit must
	// prevent the subsequent Release from pushing the cell a second time.
	m := NewRC[int](WithBatchSize(1))
	n := m.Alloc()
	var p atomic.Pointer[Node[int]]
	p.Store(n)
	m.Release(n) // n is now free; p is a stale pointer to it

	before := m.Stats().Reclaims
	// Emulate the interleaving inside SafeRead: the increment lands, the
	// re-check would fail in a real race, and Release takes it back.
	n.refct.Add(1)
	m.Release(n)
	if after := m.Stats().Reclaims; after != before {
		t.Fatalf("free cell reclaimed twice (reclaims %d → %d)", before, after)
	}
	if got := m.FreeLen(); got != 1 {
		t.Fatalf("free list length = %d, want 1", got)
	}
}

func TestRCDoubleReleasePanics(t *testing.T) {
	m := NewRC[int]()
	n := m.Alloc()
	m.Release(n)
	// Reallocate so the cell has a real owner, then corrupt the count.
	n2 := m.Alloc()
	if n2 != n {
		t.Fatal("expected reuse")
	}
	m.Release(n2)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	m.Release(n2)
}

// TestABANaiveStackCorrupts reproduces §5.1's ABA scenario on a free list
// that reuses cells without reference counts: process P1 is about to pop A
// and has read A.next = B; meanwhile P2 pops A and B, keeps B in use, and
// pushes A back; P1's Compare&Swap then succeeds even though the stack has
// changed, installing the in-use cell B as the new head.
func TestABANaiveStackCorrupts(t *testing.T) {
	var head atomic.Pointer[Node[int]]
	nodes := make([]Node[int], 3)
	a, b, c := &nodes[0], &nodes[1], &nodes[2]
	// Stack: head → A → B → C.
	c.next.Store(nil)
	b.next.Store(c)
	a.next.Store(b)
	head.Store(a)

	naivePop := func() *Node[int] {
		for {
			q := head.Load()
			if q == nil {
				return nil
			}
			if head.CompareAndSwap(q, q.next.Load()) {
				return q
			}
		}
	}
	naivePush := func(n *Node[int]) {
		for {
			q := head.Load()
			n.next.Store(q)
			if head.CompareAndSwap(q, n) {
				return
			}
		}
	}

	// P1 begins a pop: reads the head and its next pointer, then stalls.
	p1Head := head.Load()
	p1Next := p1Head.next.Load()
	if p1Head != a || p1Next != b {
		t.Fatal("unexpected initial stack")
	}

	// P2 runs: pops A, pops B and keeps it (B is now "allocated"), then
	// frees A, pushing it back.
	if got := naivePop(); got != a {
		t.Fatal("P2 expected to pop A")
	}
	inUse := naivePop()
	if inUse != b {
		t.Fatal("P2 expected to pop B")
	}
	naivePush(a)

	// P1 resumes: its Compare&Swap succeeds — head is A again — and
	// installs B, a cell owned by P2, as the head of the free list.
	if !head.CompareAndSwap(p1Head, p1Next) {
		t.Fatal("ABA Compare&Swap unexpectedly failed; the demonstration schedule broke")
	}
	if head.Load() != b {
		t.Fatal("expected the corrupted head to be the in-use cell B")
	}
	// The stack now hands out B while P2 still owns it: corruption.
	if got := naivePop(); got != inUse {
		t.Fatal("expected the corrupted stack to hand out the in-use cell")
	}
}

// TestABAPreventedByReferenceCounts runs the same schedule against the RC
// manager's free list: P1's SafeRead holds a reference to A, so A cannot
// return to the free list while P1 is stalled, the head can never be A
// again, and P1's Compare&Swap fails harmlessly (§5.1).
func TestABAPreventedByReferenceCounts(t *testing.T) {
	// A single stripe pins the schedule to one free-list head, exactly the
	// paper's configuration.
	m := NewRC[int](WithStripes(1), WithBatchSize(1))
	free := &m.stripes[0].head
	// Materialize three cells and free them so the free list is C → B → A
	// ... actually A → B → C in pop order (LIFO).
	x, y, z := m.Alloc(), m.Alloc(), m.Alloc()
	m.Release(z)
	m.Release(y)
	m.Release(x)
	a := free.Load()
	if a != x {
		t.Fatal("expected x on top of the free list")
	}

	// P1 begins Alloc: SafeRead of the free list head, then stalls.
	p1 := m.SafeRead(free)
	if p1 != a {
		t.Fatal("P1 expected to read A")
	}
	p1Next := p1.next.Load()

	// P2 allocates A and B, keeps B, and releases A.
	gotA := m.Alloc()
	if gotA != a {
		t.Fatal("P2 expected to allocate A")
	}
	inUse := m.Alloc()
	m.Release(gotA)

	// Because P1 still holds a reference, A was NOT pushed back: its
	// count dropped to 1, not 0.
	if free.Load() == a {
		t.Fatal("A returned to the free list despite P1's reference")
	}

	// P1 resumes: the Compare&Swap of Fig 17 line 4 must fail.
	if free.CompareAndSwap(p1, p1Next) {
		t.Fatal("ABA Compare&Swap succeeded under reference counting")
	}
	m.Release(p1) // Fig 17 line 6; this is the last reference: A is reclaimed

	// Conservation: the in-use cell is live, everything else is free.
	if s := m.Stats(); s.Live() != 1 {
		t.Fatalf("live = %d, want 1 (only P2's cell)", s.Live())
	}
	m.Release(inUse)
	if s := m.Stats(); s.Live() != 0 {
		t.Fatalf("live = %d at quiescence, want 0", s.Live())
	}
	if got, want := int64(m.FreeLen()), m.Stats().Created; got != want {
		t.Fatalf("free list has %d cells, want all %d created", got, want)
	}
}

func TestRCConcurrentChurn(t *testing.T) {
	const (
		goroutines = 8
		iterations = 2000
		holdMax    = 16
	)
	m := NewRC[int](WithBatchSize(8))
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var held []*Node[int]
			for i := 0; i < iterations; i++ {
				if len(held) < holdMax && (len(held) == 0 || rng.Intn(2) == 0) {
					n := m.Alloc()
					n.Item = i
					held = append(held, n)
				} else {
					j := rng.Intn(len(held))
					m.Release(held[j])
					held[j] = held[len(held)-1]
					held = held[:len(held)-1]
				}
			}
			for _, n := range held {
				m.Release(n)
			}
		}(int64(g + 1))
	}
	wg.Wait()
	s := m.Stats()
	if s.Live() != 0 {
		t.Fatalf("live = %d at quiescence, want 0", s.Live())
	}
	if got := int64(m.FreeLen()); got != s.Created {
		t.Fatalf("free list has %d cells, want all %d created", got, s.Created)
	}
}

func TestRCConcurrentSafeReadChurn(t *testing.T) {
	// Readers SafeRead a shared slot while a writer continually swaps in
	// fresh cells and releases old ones; the count protocol must keep the
	// managed cells conserved.
	const (
		readers = 6
		swaps   = 3000
	)
	m := NewRC[int](WithBatchSize(4))
	var slot atomic.Pointer[Node[int]]
	first := m.Alloc()
	slot.Store(first)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := m.SafeRead(&slot)
				if n != nil {
					_ = n.Item
					m.Release(n)
				}
			}
		}()
	}
	for i := 0; i < swaps; i++ {
		n := m.Alloc()
		n.Item = i
		old := slot.Swap(n)
		m.Release(old)
	}
	close(stop)
	wg.Wait()
	m.Release(slot.Swap(nil))
	if s := m.Stats(); s.Live() != 0 {
		t.Fatalf("live = %d at quiescence, want 0", s.Live())
	}
}

func TestRCConservationProperty(t *testing.T) {
	// Property: for any sequence of alloc/release choices, allocations
	// minus reclamations equals the number of cells still held.
	f := func(choices []bool) bool {
		m := NewRC[int](WithBatchSize(3))
		var held []*Node[int]
		for _, alloc := range choices {
			if alloc || len(held) == 0 {
				held = append(held, m.Alloc())
			} else {
				m.Release(held[len(held)-1])
				held = held[:len(held)-1]
			}
		}
		if m.Stats().Live() != int64(len(held)) {
			return false
		}
		for _, n := range held {
			m.Release(n)
		}
		return m.Stats().Live() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGCManagerBasics(t *testing.T) {
	m := NewGC[int]()
	n := m.Alloc()
	if n == nil {
		t.Fatal("GC Alloc returned nil")
	}
	var p atomic.Pointer[Node[int]]
	p.Store(n)
	if got := m.SafeRead(&p); got != n {
		t.Fatal("GC SafeRead is not a plain load")
	}
	m.AddRef(n)
	m.Release(n)
	m.Release(n) // arbitrarily many releases are no-ops under GC
	if s := m.Stats(); s.Allocs != 1 {
		t.Fatalf("stats = %+v, want 1 alloc", s)
	}
}

func TestKindString(t *testing.T) {
	tests := []struct {
		kind Kind
		want string
	}{
		{KindCell, "cell"},
		{KindAux, "aux"},
		{KindFirst, "first"},
		{KindLast, "last"},
		{Kind(0), "invalid"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.kind, got, tt.want)
		}
	}
}
