package mm

import (
	"fmt"
	"sync/atomic"

	"valois/internal/primitive"
)

// slotsPerBank is the number of epoch slots in one bank. A bank is
// appended when every slot of every existing bank is pinned, so Pin never
// blocks — nested pins (a skip-list descent holding one cursor while
// opening another) cannot deadlock on slot exhaustion.
const slotsPerBank = 32

// limboBuckets is the number of per-epoch limbo lists. Four, not three:
// while the advancement from e to e+1 drains the bucket of cells retired
// at e-2, concurrent retires tag cells with e or e+1 — with three buckets
// the drain target and an active retire bucket would collide.
const limboBuckets = 4

// eslot is one goroutine-visible epoch slot: zero when free, otherwise
// the epoch its pinned owner has observed. The pad keeps concurrently
// pinning goroutines off each other's cache lines.
type eslot struct {
	state atomic.Int64
	_     [56]byte
}

// slotBank is a fixed block of epoch slots; banks form an append-only
// lock-free list so the slot set can grow without moving existing slots
// (a Guard holds a raw slot pointer).
type slotBank struct {
	slots [slotsPerBank]eslot
	next  atomic.Pointer[slotBank]
}

// Guard is an active epoch pin returned by Pin and surrendered to Unpin.
// While a goroutine holds a Guard, no cell it can reach through the
// structure is reclaimed — that is the EBR replacement for the per-hop
// SafeRead reference of §5.1.
type Guard struct {
	slot *eslot
}

// Pinner is the epoch side of the EBR manager, factored as a non-generic
// interface so structure code can detect it on any Manager[T] with a
// plain type assertion. Pin must be called before traversing shared cells
// with plain loads and Unpin after the last such access.
type Pinner interface {
	Pin() Guard
	Unpin(Guard)
}

// Quiescer is the deferred-reclamation side of the EBR manager, factored
// as a non-generic interface for the same reason as Pinner: tests and
// tools holding a Manager[T] whose T is another package's unexported item
// type can still drive epoch advancement and drain limbo through a plain
// interface assertion.
type Quiescer interface {
	// Quiesce advances epochs until limbo is empty, reporting success.
	// Call only at quiescent moments (no pins held, no operations in
	// flight).
	Quiesce() bool
	// ForceAdvance attempts one epoch advancement; it never bypasses an
	// active pin.
	ForceAdvance()
	// LimboLen is the number of retired cells awaiting a grace period.
	LimboLen() int64
	// Epoch is the current global epoch.
	Epoch() int64
}

// EBR is the epoch-based reclamation manager (mode=ebr): the alternative
// Trevor Brown's DEBRA line of work proposes to the paper's per-hop
// SafeRead/Release counting. Traversal references become one Pin/Unpin
// pair per structure operation; only the references materialized as
// stored pointers (links) and allocation references stay counted.
//
// The invariant that makes the counted/uncounted split sound is the
// paper's own (§5.1, as formalized by Michael & Scott): every pointer
// stored in a cell field is counted. A cell whose count reaches zero
// therefore has no stored pointers anywhere — no traversal that pins
// *after* that moment can reach it. Traversals pinned *before* that
// moment may still hold raw pointers to it, so the cell is not recycled
// but retired into the limbo bucket of the current global epoch; it is
// handed to the free list only after every goroutine pinned at retire
// time has unpinned (two grace periods, see tryAdvance).
//
// One hazard the deferral handles explicitly: a pinned goroutine holding
// a stale pointer may store a *new* counted link to an already-retired
// cell (TryDelete's back_link store is the real case). Stores bump the
// count before publishing the pointer, so the drain re-checks the count
// and requeues any resurrected cell instead of freeing it; the claim bit
// (set exactly once, at retire) keeps the later count-zero Release from
// retiring it a second time.
//
// Allocation reuses the RC manager's striped free list verbatim — pops
// are protected by the §5.1 transient-SafeRead argument, so Alloc needs
// no pin and the ABA argument is unchanged.
type EBR[T any] struct {
	fl *RC[T] // striped Figure 17/18 free list + alloc/reclaim counters

	epoch atomic.Int64 // global epoch; starts at 1 so slot 0 means "free"
	banks slotBank     // first slot bank, inline; more are appended

	limbo      [limboBuckets]atomic.Pointer[Node[T]] // per-epoch retired-cell stacks
	limboCount atomic.Int64
	retireTick atomic.Uint32 // paces tryAdvance from the retire path
	advances   atomic.Int64  // successful epoch advancements
}

var _ Manager[int] = (*EBR[int])(nil)
var _ Pinner = (*EBR[int])(nil)
var _ Quiescer = (*EBR[int])(nil)

// NewEBR returns an epoch-based manager with an empty free list. The RC
// options configure the underlying striped free list exactly as in NewRC.
func NewEBR[T any](opts ...RCOption) *EBR[T] {
	m := &EBR[T]{fl: NewRC[T](opts...)}
	m.epoch.Store(1)
	return m
}

// SetReclaimExtractor mirrors RC.SetReclaimExtractor: the extractor's
// references are released when a retired cell's grace period expires and
// it is actually freed.
func (m *EBR[T]) SetReclaimExtractor(f func(item T) (first, second *Node[T])) {
	m.fl.SetReclaimExtractor(f)
}

// SetYieldHook installs a hook run before the free-list Compare&Swaps and
// before the epoch-advancement Compare&Swap, for the deterministic
// schedule explorer and the single-CPU torture methodology.
func (m *EBR[T]) SetYieldHook(f func()) { m.fl.SetYieldHook(f) }

// NumStripes reports the free-list stripe count.
func (m *EBR[T]) NumStripes() int { return m.fl.NumStripes() }

// Alloc pops a cell from the striped free list (Figure 17), growing the
// arena when every stripe is empty. The pop's transient SafeRead bump is
// the same ABA protection RC uses; no pin is required.
func (m *EBR[T]) Alloc() *Node[T] { return m.fl.Alloc() }

// SafeRead is a plain atomic load: the caller's pin — not a per-cell
// count — keeps the cell from being recycled. It must only be called
// between Pin and Unpin (or on cells the caller holds counted references
// to); the lfcheck analyzers police the guard shape.
func (m *EBR[T]) SafeRead(p *atomic.Pointer[Node[T]]) *Node[T] { return p.Load() }

// AddRef acquires a counted reference: under EBR these account only for
// stored pointers (structure links) and allocation references, never for
// traversal positions.
func (m *EBR[T]) AddRef(n *Node[T]) {
	if n == nil {
		return
	}
	n.refct.Add(1)
}

// Release drops a counted reference. When the last stored pointer to a
// cell is dropped the cell has become unreachable from the structure
// roots, and the claim winner retires it into the current epoch's limbo
// bucket; it reaches the free list only after two grace periods. Unlike
// RC.Release the cell's own next/back_link references are NOT dropped
// here — pinned traversals may still be walking through the deleted cell,
// so the links stay readable until the drain actually frees it.
func (m *EBR[T]) Release(n *Node[T]) {
	if n == nil {
		return
	}
	c := n.refct.Add(-1)
	switch {
	case c > 0:
		return
	case c < 0:
		panic(fmt.Sprintf("mm: reference count of %s cell went negative (%d)", n.kind, c))
	}
	if primitive.TestAndSet(&n.claim) == 1 {
		// Already retired once (a resurrected cell dropping back to zero,
		// or a concurrent count-zero observer won): the limbo drain owns it.
		return
	}
	m.retire(n)
}

// retire pushes n onto the limbo bucket of the current epoch and
// occasionally tries to advance the epoch so limbo does not grow without
// bound under churn.
func (m *EBR[T]) retire(n *Node[T]) {
	m.pushLimbo(n)
	if m.retireTick.Add(1)%8 == 0 {
		m.tryAdvance()
	}
}

// pushLimbo adds n to the limbo bucket of the current epoch (a Treiber
// stack through the dedicated limbo field; next/back_link stay intact).
func (m *EBR[T]) pushLimbo(n *Node[T]) {
	var backoff primitive.Backoff
	b := &m.limbo[int(m.epoch.Load()%limboBuckets)]
	for {
		head := b.Load()
		n.limbo.Store(head)
		if b.CompareAndSwap(head, n) {
			m.limboCount.Add(1)
			return
		}
		backoff.Wait() // §2.1: back off instead of re-colliding immediately
	}
}

// Pin enters an epoch-protected region: it claims a free slot, publishes
// the current global epoch into it, and re-checks the global so that an
// advancer scanning after our publication is guaranteed to see it. The
// seq-cst total order of Go's atomics makes the re-check sufficient: if
// our load of the global returns e after our slot store, the store
// precedes any successful CAS e→e+1, so every later advancement scan
// observes our slot.
func (m *EBR[T]) Pin() Guard {
	s := m.claimSlot()
	for {
		e := m.epoch.Load()
		s.state.Store(e)
		if m.epoch.Load() == e {
			return Guard{slot: s}
		}
	}
}

// Unpin leaves the epoch-protected region and, if cells are waiting in
// limbo, tries to advance the epoch — an unpin is exactly the event that
// can unblock advancement.
func (m *EBR[T]) Unpin(g Guard) {
	if g.slot == nil {
		return
	}
	g.slot.state.Store(0)
	if m.limboCount.Load() > 0 {
		m.tryAdvance()
	}
}

// claimSlot finds a free epoch slot, appending a new bank when every
// existing slot is pinned. The claiming CAS installs the current epoch as
// a nonzero placeholder; Pin's publish loop immediately overwrites it
// with an up-to-date observation.
func (m *EBR[T]) claimSlot() *eslot {
	for bank := &m.banks; ; {
		for i := range bank.slots {
			s := &bank.slots[i]
			if s.state.Load() == 0 && s.state.CompareAndSwap(0, m.epoch.Load()) {
				return s
			}
		}
		next := bank.next.Load()
		if next == nil {
			fresh := &slotBank{}
			fresh.slots[0].state.Store(m.epoch.Load()) // pre-claim before publishing
			if bank.next.CompareAndSwap(nil, fresh) {
				return &fresh.slots[0]
			}
			next = bank.next.Load()
		}
		bank = next
	}
}

// allObserved reports whether every pinned slot has observed epoch e. A
// slot mid-Pin may show a stale epoch and block advancement for a moment;
// that errs toward keeping cells alive, never toward freeing early.
func (m *EBR[T]) allObserved(e int64) bool {
	for bank := &m.banks; bank != nil; bank = bank.next.Load() {
		for i := range bank.slots {
			if s := bank.slots[i].state.Load(); s != 0 && s != e {
				return false
			}
		}
	}
	return true
}

// tryAdvance advances the global epoch from e to e+1 when every pinned
// goroutine has observed e, and the advancement winner drains the bucket
// of cells retired at epoch e-2: any goroutine that could still reach one
// of those cells was pinned with a slot ≤ e-2, and the advancement to e
// already required that slot to be gone.
func (m *EBR[T]) tryAdvance() {
	e := m.epoch.Load()
	if !m.allObserved(e) {
		return
	}
	m.fl.maybeYield()
	if m.epoch.CompareAndSwap(e, e+1) {
		m.advances.Add(1)
		m.drain(int((e + 2) % limboBuckets)) // the bucket cells retired at e-2 landed in
	}
}

// drain detaches one limbo bucket and disposes of every cell on it: cells
// whose count is still zero are freed into the striped free list — now
// releasing the counted references their next/back_link/item fields hold,
// exactly as RC's Reclaim cascade does — and resurrected cells (count
// bumped by a pinned goroutine that stored a new link before the grace
// period expired) are requeued into the current bucket to be examined
// again a full round later.
func (m *EBR[T]) drain(bucket int) {
	n := m.limbo[bucket].Swap(nil)
	for n != nil {
		next := n.limbo.Swap(nil)
		if n.refct.Load() != 0 {
			m.limboCount.Add(-1)
			m.pushLimbo(n) // resurrected: still referenced, free it later
		} else {
			m.free(n)
		}
		n = next
	}
}

// free hands one grace-period-expired cell to the free list and releases
// the counted references it still holds (the deferred half of RC's
// Reclaim, Figure 18 plus the Michael & Scott correction). The recursive
// releases may retire further cells into the current epoch's bucket.
func (m *EBR[T]) free(n *Node[T]) {
	next := n.next.Swap(nil)
	back := n.backLink.Swap(nil)
	var extraA, extraB *Node[T]
	if m.fl.extract != nil {
		extraA, extraB = m.fl.extract(n.Item) // read before push: a concurrent Alloc may zero Item
	}
	m.fl.stats.reclaims.Add(1)
	m.limboCount.Add(-1)
	home, claimed := m.fl.claim(false)
	m.fl.push(&m.fl.stripes[home], n)
	m.fl.unclaim(home, claimed)
	m.Release(next)
	m.Release(back)
	m.Release(extraA)
	m.Release(extraB)
}

// Epoch returns the current global epoch (for tests and STATS).
func (m *EBR[T]) Epoch() int64 { return m.epoch.Load() }

// LimboLen returns the number of retired cells awaiting their grace
// period. Exact only at quiescence, like RC.FreeLen.
func (m *EBR[T]) LimboLen() int64 { return m.limboCount.Load() }

// ForceAdvance attempts one epoch advancement (draining the eligible
// bucket if it wins). It never bypasses an active pin — "force" means
// "don't wait for the retire-path pacing", not "skip the grace period".
func (m *EBR[T]) ForceAdvance() { m.tryAdvance() }

// Quiesce repeatedly advances the epoch and drains limbo until it is
// empty, reporting success. It is meant for quiescent moments (tests,
// shutdown): with no pins active each round advances one epoch, and
// freeing a cell can retire the cells it linked to (a closed list
// cascades one link per round), so the loop runs as long as it makes
// progress — reclaims growing or limbo shrinking — plus a full bucket
// rotation of slack, and gives up only when neither moves (an active pin
// or a counted reference still held somewhere).
func (m *EBR[T]) Quiesce() bool {
	stale := 0
	prevLimbo := m.limboCount.Load()
	prevReclaims := m.fl.stats.reclaims.Load()
	for stale <= 2*limboBuckets {
		if m.limboCount.Load() == 0 {
			return true
		}
		m.tryAdvance()
		limbo, reclaims := m.limboCount.Load(), m.fl.stats.reclaims.Load()
		if limbo < prevLimbo || reclaims > prevReclaims {
			stale = 0
		} else {
			stale++
		}
		prevLimbo, prevReclaims = limbo, reclaims
	}
	return m.limboCount.Load() == 0
}

// Stats returns the allocation and free-list counters, plus the EBR
// Epoch/Limbo gauges.
func (m *EBR[T]) Stats() Stats {
	s := m.fl.Stats()
	s.Epoch = m.epoch.Load()
	s.Limbo = m.limboCount.Load()
	return s
}

// FreeLen counts free-list cells across stripes (quiescence only).
func (m *EBR[T]) FreeLen() int { return m.fl.FreeLen() }
