package mm

import (
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"

	"valois/internal/primitive"
)

const defaultBatchSize = 256

// cellSpacing is the minimum distance, in bytes, between the starts of two
// cells handed out by a padded arena (see WithCellPadding). 64 bytes is
// the cache-line size of every platform this repo targets; keeping
// neighboring cells' refct/claim words on distinct lines stops the §5.1
// counter traffic of one goroutine from invalidating another's line.
const cellSpacing = 64

// maxCellStride bounds how many cells of padding grow inserts between
// consecutive live cells, so a tiny payload type cannot inflate the arena
// without bound (stride 8 already separates 8-byte-payload cells by well
// over a line).
const maxCellStride = 8

// stripe is one head of the striped free list. Each stripe is a complete
// §5.2 free list of its own: a Treiber stack popped with the
// SafeRead-protected Compare&Swap of Figure 17 and pushed with Figure 18,
// so the ABA-freedom argument of §5.1 applies per stripe exactly as it did
// to the single head. The trailing pad keeps each stripe — head pointer,
// claim flag, and counters — on cache lines no other stripe touches.
type stripe[T any] struct {
	head atomic.Pointer[Node[T]] // the Freelist root pointer of §5.2

	// busy steers concurrent operations to distinct stripes: a goroutine
	// claims a stripe with Compare&Swap before operating and clears the
	// flag afterwards. The flag is an affinity hint, NOT a lock — when
	// every stripe is busy the operation proceeds on an unclaimed stripe,
	// whose push/pop Compare&Swap loops are safe under sharing, so no
	// caller ever waits on the flag and lock-freedom is preserved.
	busy atomic.Int32

	pops   atomic.Int64 // successful Fig 17 pops from this stripe
	pushes atomic.Int64 // Fig 18 pushes onto this stripe
	grows  atomic.Int64 // arena grows that landed their batch here
	steals atomic.Int64 // pops taken from this stripe by an allocator whose home stripe was empty

	_ [64]byte // pad past a cache line so adjacent stripes never false-share
}

// RC is the paper's reference-counted memory manager (§5): cells are
// recycled through a lock-free free list (Figures 17 and 18) and protected
// from premature reuse by the refct/claim protocol of SafeRead and Release
// (Figures 15 and 16).
//
// Cells are never handed back to the runtime: once created they remain
// valid Node values forever (a type-stable arena). This is what makes the
// transient refct increment inside SafeRead safe — in the worst case it
// bumps the count of a cell that has already been recycled to a new owner,
// discovers that the pointer changed, and takes the increment back with
// Release. §5.1's central argument then applies: while any process holds a
// counted reference to a cell, the cell cannot return to the free list, so
// the free list head can never be swung back to it — Compare&Swap cannot
// suffer the ABA problem.
//
// Deviations from the single free list of Figure 17/18, all selectable off
// (see FaithfulOptions and DESIGN.md's "deviations for performance"):
//
//   - The free list is striped: WithStripes(n) creates n independent,
//     cache-line-padded heads, and each operation claims a stripe no
//     concurrent operation is using before pushing or popping, so the hot
//     Compare&Swap loops stop colliding. Alloc steals from sibling stripes
//     before growing the arena, so cells are conserved exactly as with one
//     head. Valois himself suggests distributing the free list (§5.2).
//   - Cells are padded: WithCellPadding spaces the cells grow creates at
//     least a cache line apart, so the refct/claim fields of cells handed
//     to different goroutines never share a line.
//   - The push/pop retry loops back off exponentially when their
//     Compare&Swap fails (§2.1 recommends exactly this under contention);
//     WithBackoff(false) restores the paper's bare loops.
type RC[T any] struct {
	stripes   []stripe[T]
	hint      atomic.Uint32 // stripe where claiming starts; moves on collision
	stats     stats
	capacity  int64 // 0 = grow on demand; >0 = hard cell budget (Alloc may return nil)
	batch     int   // cells created per grow
	stride    int   // distance between live cells in a grow batch, in cells (1 = packed)
	noBackoff bool
	yield     func() // see SetYieldHook
	extract   func(item T) (first, second *Node[T])
}

var _ Manager[int] = (*RC[int])(nil)

// RCOption configures an RC manager.
type RCOption interface {
	apply(*rcOptions)
}

type rcOptions struct {
	capacity int64
	batch    int
	stripes  int
	padded   bool
	backoff  bool
}

type capacityOption int64

func (c capacityOption) apply(o *rcOptions) { o.capacity = int64(c) }

// WithCapacity bounds the arena to n cells. When the budget is exhausted
// and the free list is empty, Alloc returns nil, matching Figure 17's NULL
// return. A capacity of zero (the default) lets the arena grow on demand.
func WithCapacity(n int64) RCOption { return capacityOption(n) }

type batchOption int

func (b batchOption) apply(o *rcOptions) { o.batch = int(b) }

// WithBatchSize sets how many cells are created at a time when the free
// list runs dry and the arena grows.
func WithBatchSize(n int) RCOption { return batchOption(n) }

type stripesOption int

func (s stripesOption) apply(o *rcOptions) { o.stripes = int(s) }

// WithStripes splits the free list across n independent padded heads.
// The default is GOMAXPROCS at construction time; 1 restores the paper's
// single Figure 17/18 free list.
func WithStripes(n int) RCOption { return stripesOption(n) }

type paddingOption bool

func (p paddingOption) apply(o *rcOptions) { o.padded = bool(p) }

// WithCellPadding controls whether grow spaces cells a cache line apart
// (the default) or packs them contiguously as the seed implementation did.
// Packing trades false sharing between neighboring cells' refct fields for
// a denser arena.
func WithCellPadding(on bool) RCOption { return paddingOption(on) }

type backoffOption bool

func (b backoffOption) apply(o *rcOptions) { o.backoff = bool(b) }

// WithBackoff controls whether the free-list push/pop retry loops back off
// exponentially after a failed Compare&Swap (the default) or retry
// immediately as the paper's pseudocode does.
func WithBackoff(on bool) RCOption { return backoffOption(on) }

// FaithfulOptions returns the options that disable every performance
// deviation, yielding the paper's single packed free list with bare retry
// loops: WithStripes(1), WithCellPadding(false), WithBackoff(false).
func FaithfulOptions() []RCOption {
	return []RCOption{WithStripes(1), WithCellPadding(false), WithBackoff(false)}
}

// NewRC returns a reference-counted manager with an empty free list.
func NewRC[T any](opts ...RCOption) *RC[T] {
	options := rcOptions{
		batch:   defaultBatchSize,
		stripes: runtime.GOMAXPROCS(0),
		padded:  true,
		backoff: true,
	}
	for _, o := range opts {
		o.apply(&options)
	}
	if options.batch < 1 {
		options.batch = 1
	}
	if options.stripes < 1 {
		options.stripes = 1
	}
	stride := 1
	if options.padded {
		// The stride is computed once, from the concrete cell size; grow
		// then hands out every stride-th cell of a batch so consecutive
		// live cells start at least cellSpacing apart.
		size := int(reflect.TypeOf(Node[T]{}).Size())
		if size < 1 {
			size = 1
		}
		stride = (cellSpacing + size - 1) / size
		if stride < 1 {
			stride = 1
		}
		if stride > maxCellStride {
			stride = maxCellStride
		}
	}
	return &RC[T]{
		stripes:   make([]stripe[T], options.stripes),
		capacity:  options.capacity,
		batch:     options.batch,
		stride:    stride,
		noBackoff: !options.backoff,
	}
}

// NumStripes reports how many free-list stripes the manager was built with.
func (m *RC[T]) NumStripes() int { return len(m.stripes) }

// SetReclaimExtractor registers a function that, given the item of a cell
// about to be reclaimed, returns up to two counted references the item
// holds to other cells (either may be nil). Structures that store node
// pointers inside their items — the skip list's tower Down pointer, the
// tree's two child auxiliary nodes — register an extractor so that
// reclaiming a cell releases those references too, exactly as Reclaim
// releases the cell's own next and back_link. It must be called before the
// manager is shared between goroutines.
func (m *RC[T]) SetReclaimExtractor(f func(item T) (first, second *Node[T])) {
	m.extract = f
}

// SetYieldHook installs a function invoked immediately before every
// free-list Compare&Swap (the read-head-then-swing windows of Figures 17
// and 18). Experiment E10 uses it to materialize contention on the
// single-CPU reproduction host, exactly as core.List.EnableTorture does
// for the list's structural windows. It must be set before the manager is
// shared; nil (the default) disables it.
func (m *RC[T]) SetYieldHook(f func()) { m.yield = f }

func (m *RC[T]) maybeYield() {
	if m.yield != nil {
		m.yield()
	}
}

// claim returns the stripe this operation should work on. It prefers a
// stripe no concurrent operation has claimed, probing from the hint and
// remembering where it landed so a stable set of goroutines settles on
// disjoint stripes. If every stripe is claimed it returns the hint stripe
// unclaimed — the per-stripe Compare&Swap loops remain correct under
// sharing, so claiming never waits (see stripe.busy).
//
// Allocators pass stocked=true: the first probe pass then skips stripes
// whose free list is empty, so concurrent Allocs claim distinct stripes
// that each have cells. Without that preference the free cells pool on a
// few stripes and every allocator whose claimed home happens to be empty
// falls through to stealing from the same stocked stripe — recreating on
// its head exactly the shared-Compare&Swap hot spot striping removes.
func (m *RC[T]) claim(stocked bool) (idx int, claimed bool) {
	n := uint32(len(m.stripes))
	if n == 1 {
		return 0, false
	}
	start := m.hint.Load()
	for pass := 0; pass < 2; pass++ {
		for i := uint32(0); i < n; i++ {
			at := (start + i) % n
			s := &m.stripes[at]
			if pass == 0 && stocked && s.head.Load() == nil {
				continue
			}
			if s.busy.Load() == 0 && s.busy.CompareAndSwap(0, 1) {
				if i != 0 {
					m.hint.Store(at)
				}
				return int(at), true
			}
		}
		if !stocked {
			break // one pass: the stocked filter was never applied
		}
	}
	return int(start % n), false
}

func (m *RC[T]) unclaim(idx int, claimed bool) {
	if claimed {
		m.stripes[idx].busy.Store(0)
	}
}

// Alloc implements Figure 17 over the striped free list. It pops a cell
// from the claimed home stripe, using SafeRead and Release so that the
// pop's Compare&Swap cannot suffer the ABA problem; if the home stripe is
// empty it steals from the sibling stripes, and only when every stripe is
// empty does the arena grow. It returns the cell with the claim bit
// cleared and one reference owned by the caller, or nil if a configured
// capacity is exhausted.
func (m *RC[T]) Alloc() *Node[T] {
	home, claimed := m.claim(true)
	n := m.pop(&m.stripes[home])
	if n == nil {
		// Home stripe empty: steal from every sibling before growing, so
		// cells freed to any stripe are found before the arena expands.
		for i := 1; i < len(m.stripes) && n == nil; i++ {
			sib := &m.stripes[(home+i)%len(m.stripes)]
			if n = m.pop(sib); n != nil {
				sib.steals.Add(1)
			}
		}
	}
	if n == nil {
		n = m.grow(&m.stripes[home])
	}
	m.unclaim(home, claimed)
	if n == nil {
		return nil
	}
	m.stats.allocs.Add(1)
	return n
}

// pop removes the front cell of one stripe (Figure 17 lines 1-8),
// returning nil if the stripe is empty.
func (m *RC[T]) pop(s *stripe[T]) *Node[T] {
	backoff := primitive.Backoff{Disabled: m.noBackoff}
	for {
		q := m.SafeRead(&s.head) // Fig 17 line 1: the SafeRead reference becomes the caller's
		if q == nil {
			return nil
		}
		// Reading q.next here is safe: our reference keeps q off the
		// free list, so if the head still equals q at the Compare&Swap
		// below, no process popped q, and only a pop or a reclaim may
		// rewrite a free cell's next field.
		m.maybeYield()
		if primitive.CompareAndSwap(&s.head, q, q.next.Load()) { // Fig 17 line 4
			q.next.Store(nil) // free-list linkage is uncounted; drop it plainly
			var zero T
			q.Item = zero
			q.kind = 0
			q.claim.Store(0) // Fig 17 line 8
			s.pops.Add(1)
			return q
		}
		m.Release(q)   // Fig 17 line 6
		backoff.Wait() // §2.1: back off instead of re-colliding immediately
	}
}

// SafeRead implements Figure 15: read the pointer, acquire a reference to
// the cell read, and re-check that the pointer still holds the same cell —
// retrying after undoing the acquisition if it does not.
func (m *RC[T]) SafeRead(p *atomic.Pointer[Node[T]]) *Node[T] {
	for {
		q := p.Load()
		if q == nil {
			return nil
		}
		q.refct.Add(1)
		if q == p.Load() {
			return q
		}
		m.Release(q)
	}
}

// AddRef acquires an extra reference to a cell the caller already holds.
func (m *RC[T]) AddRef(n *Node[T]) {
	if n == nil {
		return
	}
	n.refct.Add(1)
}

// Release implements Figure 16, extended per the Michael & Scott correction
// so that reclaiming a cell also releases the references held by the
// pointers still stored in it (its next and back_link fields). Deleted
// cells form chains through exactly those fields, so the cascade is
// unwound iteratively rather than recursively. Every cell the cascade
// reclaims is pushed to the same claimed stripe.
func (m *RC[T]) Release(n *Node[T]) {
	var pending []*Node[T]
	home := -1 // stripe claimed lazily: most Releases reclaim nothing
	claimed := false
	for {
		if n == nil {
			if len(pending) == 0 {
				if home >= 0 {
					m.unclaim(home, claimed)
				}
				return
			}
			n = pending[len(pending)-1]
			pending = pending[:len(pending)-1]
			continue
		}
		c := n.refct.Add(-1) // Fig 16 line 1
		switch {
		case c > 0: // Fig 16 line 2: other references remain
			n = nil
			continue
		case c < 0:
			// A counted reference was released twice; the structure is
			// already corrupt and continuing would recycle live cells.
			panic(fmt.Sprintf("mm: reference count of %s cell went negative (%d)", n.kind, c))
		}
		if primitive.TestAndSet(&n.claim) == 1 { // Fig 16 lines 4-6
			// Another process that concurrently saw the count reach
			// zero won the claim and will reclaim the cell.
			n = nil
			continue
		}
		// Reclaim (Figure 18), inlined so the contained-pointer releases
		// can share this loop's work list. Swap out the counted links
		// before the cell becomes reachable from the free list.
		next := n.next.Swap(nil)
		back := n.backLink.Swap(nil)
		var extraA, extraB *Node[T]
		if m.extract != nil {
			extraA, extraB = m.extract(n.Item) // read before push: a concurrent Alloc may zero Item
		}
		m.stats.reclaims.Add(1)
		if home < 0 {
			home, claimed = m.claim(false)
		}
		m.push(&m.stripes[home], n)
		if back != nil {
			pending = append(pending, back)
		}
		if extraA != nil {
			pending = append(pending, extraA)
		}
		if extraB != nil {
			pending = append(pending, extraB)
		}
		n = next
	}
}

// Stats returns allocation counters, including the free-list behavior
// counters summed over the stripes.
func (m *RC[T]) Stats() Stats {
	s := m.stats.snapshot()
	s.Stripes = len(m.stripes)
	for i := range m.stripes {
		st := &m.stripes[i]
		s.Pops += st.pops.Load()
		s.Pushes += st.pushes.Load()
		s.Grows += st.grows.Load()
		s.Steals += st.steals.Load()
	}
	return s
}

// StripeStats is the free-list activity of one stripe (see RC.StripeStats).
type StripeStats struct {
	// Pops counts successful Figure 17 pops from this stripe, including
	// pops performed as steals.
	Pops int64
	// Pushes counts Figure 18 pushes onto this stripe (reclaims plus the
	// surplus cells of grows that landed here).
	Pushes int64
	// Grows counts arena grows whose batch was pushed to this stripe.
	Grows int64
	// Steals counts pops taken from this stripe by allocators whose home
	// stripe was empty.
	Steals int64
}

// StripeStats returns the per-stripe free-list counters, indexed by
// stripe. Like Stats it is a point-in-time snapshot, exact only at
// quiescence.
func (m *RC[T]) StripeStats() []StripeStats {
	out := make([]StripeStats, len(m.stripes))
	for i := range m.stripes {
		st := &m.stripes[i]
		out[i] = StripeStats{
			Pops:   st.pops.Load(),
			Pushes: st.pushes.Load(),
			Grows:  st.grows.Load(),
			Steals: st.steals.Load(),
		}
	}
	return out
}

// FreeLen counts the cells currently on the free list, summed across all
// stripes.
//
// Contract: FreeLen is NOT atomic with respect to concurrent Alloc and
// Release — a concurrent pop can unlink the cell it is standing on and a
// concurrent push can splice ahead of it — so the walk is meaningful only
// at quiescence (no operations in flight), where it equals Created minus
// the cells currently checked out. Tests use it exactly there;
// TestRCFreeLenQuiescenceContract pins the contract down.
func (m *RC[T]) FreeLen() int {
	n := 0
	for i := range m.stripes {
		for q := m.stripes[i].head.Load(); q != nil; q = q.next.Load() {
			n++
		}
	}
	return n
}

// push implements Figure 18: place a cell on the front of one stripe.
// The linkage through next is uncounted (see the package comment).
func (m *RC[T]) push(s *stripe[T], n *Node[T]) {
	backoff := primitive.Backoff{Disabled: m.noBackoff}
	for {
		q := s.head.Load() // Fig 18 line 1
		n.next.Store(q)    // Fig 18 line 2
		m.maybeYield()
		if primitive.CompareAndSwap(&s.head, q, n) { // Fig 18 line 3
			s.pushes.Add(1)
			return
		}
		backoff.Wait()
	}
}

// grow creates a batch of cells, pushes all but one onto the given stripe,
// and returns the remaining one with the caller's reference, or nil if the
// configured capacity is exhausted. With cell padding enabled the batch is
// laid out strided, so consecutive live cells start on distinct cache
// lines; the skipped filler cells are never handed out and exist only as
// spacing (they are not counted against the capacity, which budgets usable
// cells).
func (m *RC[T]) grow(s *stripe[T]) *Node[T] {
	want := int64(m.batch)
	if m.capacity > 0 {
		backoff := primitive.Backoff{Disabled: m.noBackoff}
		for {
			created := m.stats.created.Load()
			remaining := m.capacity - created
			if remaining <= 0 {
				return nil
			}
			n := want
			if n > remaining {
				n = remaining
			}
			if m.stats.created.CompareAndSwap(created, created+n) {
				want = n
				break
			}
			backoff.Wait()
		}
	} else {
		m.stats.created.Add(want)
	}
	s.grows.Add(1)
	cells := make([]Node[T], int(want)*m.stride)
	for i := int64(1); i < want; i++ {
		c := &cells[int(i)*m.stride]
		c.claim.Store(1) // as a reclaimed cell would have (Fig 16 line 4)
		m.push(s, c)
	}
	// The first cell goes straight to the caller.
	first := &cells[0]
	first.refct.Store(1)
	return first
}
