package mm

import (
	"fmt"
	"sync/atomic"

	"valois/internal/primitive"
)

const defaultBatchSize = 256

// RC is the paper's reference-counted memory manager (§5): cells are
// recycled through a lock-free free list (Figures 17 and 18) and protected
// from premature reuse by the refct/claim protocol of SafeRead and Release
// (Figures 15 and 16).
//
// Cells are never handed back to the runtime: once created they remain
// valid Node values forever (a type-stable arena). This is what makes the
// transient refct increment inside SafeRead safe — in the worst case it
// bumps the count of a cell that has already been recycled to a new owner,
// discovers that the pointer changed, and takes the increment back with
// Release. §5.1's central argument then applies: while any process holds a
// counted reference to a cell, the cell cannot return to the free list, so
// the free list head can never be swung back to it — Compare&Swap cannot
// suffer the ABA problem.
type RC[T any] struct {
	free     atomic.Pointer[Node[T]] // the Freelist root pointer of §5.2
	stats    stats
	capacity int64 // 0 = grow on demand; >0 = hard cell budget (Alloc may return nil)
	batch    int   // cells created per grow
	extract  func(item T) (first, second *Node[T])
}

var _ Manager[int] = (*RC[int])(nil)

// RCOption configures an RC manager.
type RCOption interface {
	apply(*rcOptions)
}

type rcOptions struct {
	capacity int64
	batch    int
}

type capacityOption int64

func (c capacityOption) apply(o *rcOptions) { o.capacity = int64(c) }

// WithCapacity bounds the arena to n cells. When the budget is exhausted
// and the free list is empty, Alloc returns nil, matching Figure 17's NULL
// return. A capacity of zero (the default) lets the arena grow on demand.
func WithCapacity(n int64) RCOption { return capacityOption(n) }

type batchOption int

func (b batchOption) apply(o *rcOptions) { o.batch = int(b) }

// WithBatchSize sets how many cells are created at a time when the free
// list runs dry and the arena grows.
func WithBatchSize(n int) RCOption { return batchOption(n) }

// NewRC returns a reference-counted manager with an empty free list.
func NewRC[T any](opts ...RCOption) *RC[T] {
	options := rcOptions{batch: defaultBatchSize}
	for _, o := range opts {
		o.apply(&options)
	}
	if options.batch < 1 {
		options.batch = 1
	}
	return &RC[T]{capacity: options.capacity, batch: options.batch}
}

// SetReclaimExtractor registers a function that, given the item of a cell
// about to be reclaimed, returns up to two counted references the item
// holds to other cells (either may be nil). Structures that store node
// pointers inside their items — the skip list's tower Down pointer, the
// tree's two child auxiliary nodes — register an extractor so that
// reclaiming a cell releases those references too, exactly as Reclaim
// releases the cell's own next and back_link. It must be called before the
// manager is shared between goroutines.
func (m *RC[T]) SetReclaimExtractor(f func(item T) (first, second *Node[T])) {
	m.extract = f
}

// Alloc implements Figure 17. It pops a cell from the free list, using
// SafeRead and Release so that the pop's Compare&Swap cannot suffer the ABA
// problem, and returns it with the claim bit cleared and one reference
// owned by the caller. If the free list is empty the arena grows, unless a
// capacity was configured and is exhausted, in which case Alloc returns
// nil.
func (m *RC[T]) Alloc() *Node[T] {
	for {
		q := m.SafeRead(&m.free) // Fig 17 line 1: the SafeRead reference becomes the caller's
		if q == nil {
			n := m.grow()
			if n == nil {
				return nil
			}
			m.stats.allocs.Add(1)
			return n
		}
		// Reading q.next here is safe: our reference keeps q off the
		// free list, so if the head still equals q at the Compare&Swap
		// below, no process popped q, and only a pop or a reclaim may
		// rewrite a free cell's next field.
		if primitive.CompareAndSwap(&m.free, q, q.next.Load()) { // Fig 17 line 4
			q.next.Store(nil) // free-list linkage is uncounted; drop it plainly
			var zero T
			q.Item = zero
			q.kind = 0
			q.claim.Store(0) // Fig 17 line 8
			m.stats.allocs.Add(1)
			return q
		}
		m.Release(q) // Fig 17 line 6
	}
}

// SafeRead implements Figure 15: read the pointer, acquire a reference to
// the cell read, and re-check that the pointer still holds the same cell —
// retrying after undoing the acquisition if it does not.
func (m *RC[T]) SafeRead(p *atomic.Pointer[Node[T]]) *Node[T] {
	for {
		q := p.Load()
		if q == nil {
			return nil
		}
		q.refct.Add(1)
		if q == p.Load() {
			return q
		}
		m.Release(q)
	}
}

// AddRef acquires an extra reference to a cell the caller already holds.
func (m *RC[T]) AddRef(n *Node[T]) {
	if n == nil {
		return
	}
	n.refct.Add(1)
}

// Release implements Figure 16, extended per the Michael & Scott correction
// so that reclaiming a cell also releases the references held by the
// pointers still stored in it (its next and back_link fields). Deleted
// cells form chains through exactly those fields, so the cascade is
// unwound iteratively rather than recursively.
func (m *RC[T]) Release(n *Node[T]) {
	var pending []*Node[T]
	for {
		if n == nil {
			if len(pending) == 0 {
				return
			}
			n = pending[len(pending)-1]
			pending = pending[:len(pending)-1]
			continue
		}
		c := n.refct.Add(-1) // Fig 16 line 1
		switch {
		case c > 0: // Fig 16 line 2: other references remain
			n = nil
			continue
		case c < 0:
			// A counted reference was released twice; the structure is
			// already corrupt and continuing would recycle live cells.
			panic(fmt.Sprintf("mm: reference count of %s cell went negative (%d)", n.kind, c))
		}
		if primitive.TestAndSet(&n.claim) == 1 { // Fig 16 lines 4-6
			// Another process that concurrently saw the count reach
			// zero won the claim and will reclaim the cell.
			n = nil
			continue
		}
		// Reclaim (Figure 18), inlined so the contained-pointer releases
		// can share this loop's work list. Swap out the counted links
		// before the cell becomes reachable from the free list.
		next := n.next.Swap(nil)
		back := n.backLink.Swap(nil)
		var extraA, extraB *Node[T]
		if m.extract != nil {
			extraA, extraB = m.extract(n.Item) // read before push: a concurrent Alloc may zero Item
		}
		m.stats.reclaims.Add(1)
		m.push(n)
		if back != nil {
			pending = append(pending, back)
		}
		if extraA != nil {
			pending = append(pending, extraA)
		}
		if extraB != nil {
			pending = append(pending, extraB)
		}
		n = next
	}
}

// Stats returns allocation counters.
func (m *RC[T]) Stats() Stats {
	return m.stats.snapshot()
}

// FreeLen counts the cells currently on the free list. It is not atomic
// with respect to concurrent Alloc/Release and is intended for tests at
// quiescence.
func (m *RC[T]) FreeLen() int {
	n := 0
	for q := m.free.Load(); q != nil; q = q.next.Load() {
		n++
	}
	return n
}

// push implements Figure 18: place a cell on the front of the free list.
// The linkage through next is uncounted (see the package comment).
func (m *RC[T]) push(n *Node[T]) {
	for {
		q := m.free.Load()                           // Fig 18 line 1
		n.next.Store(q)                              // Fig 18 line 2
		if primitive.CompareAndSwap(&m.free, q, n) { // Fig 18 line 3
			return
		}
	}
}

// grow creates a batch of cells, pushes all but one onto the free list,
// and returns the remaining one with the caller's reference, or nil if the
// configured capacity is exhausted.
func (m *RC[T]) grow() *Node[T] {
	want := int64(m.batch)
	if m.capacity > 0 {
		for {
			created := m.stats.created.Load()
			remaining := m.capacity - created
			if remaining <= 0 {
				return nil
			}
			n := want
			if n > remaining {
				n = remaining
			}
			if m.stats.created.CompareAndSwap(created, created+n) {
				want = n
				break
			}
		}
	} else {
		m.stats.created.Add(want)
	}
	cells := make([]Node[T], want)
	for i := range cells[1:] {
		c := &cells[i+1]
		c.claim.Store(1) // as a reclaimed cell would have (Fig 16 line 4)
		m.push(c)
	}
	// The first cell goes straight to the caller.
	first := &cells[0]
	first.refct.Store(1)
	return first
}
