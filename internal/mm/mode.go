package mm

// Mode selects which memory manager a structure allocates its cells from.
type Mode int

const (
	// ModeGC relies on the Go garbage collector for reclamation (see GC).
	ModeGC Mode = iota + 1
	// ModeRC uses the paper's reference-count scheme (§5; see RC).
	ModeRC
)

// String returns the mode's short name as used in benchmark labels.
func (m Mode) String() string {
	switch m {
	case ModeGC:
		return "gc"
	case ModeRC:
		return "rc"
	default:
		return "invalid"
	}
}

// NewManager returns a fresh manager of the given mode. RC options apply
// only under ModeRC and are ignored by the GC manager (which has no free
// list to stripe). It panics on an invalid mode, which indicates a
// programming error at construction time.
func NewManager[T any](mode Mode, opts ...RCOption) Manager[T] {
	switch mode {
	case ModeGC:
		return NewGC[T]()
	case ModeRC:
		return NewRC[T](opts...)
	default:
		panic("mm: invalid Mode")
	}
}
