package mm

// Mode selects which memory manager a structure allocates its cells from.
type Mode int

const (
	// ModeGC relies on the Go garbage collector for reclamation (see GC).
	ModeGC Mode = iota + 1
	// ModeRC uses the paper's reference-count scheme (§5; see RC).
	ModeRC
	// ModeEBR uses epoch-based reclamation: manual reclamation like RC,
	// but traversal references become one Pin/Unpin per operation instead
	// of a SafeRead/Release pair per hop (see EBR).
	ModeEBR
)

// String returns the mode's short name as used in benchmark labels.
func (m Mode) String() string {
	switch m {
	case ModeGC:
		return "gc"
	case ModeRC:
		return "rc"
	case ModeEBR:
		return "ebr"
	default:
		return "invalid"
	}
}

// ParseMode returns the mode named by s ("gc", "rc", or "ebr"),
// reporting whether the name was recognized.
func ParseMode(s string) (Mode, bool) {
	switch s {
	case "gc":
		return ModeGC, true
	case "rc":
		return ModeRC, true
	case "ebr":
		return ModeEBR, true
	default:
		return 0, false
	}
}

// NewManager returns a fresh manager of the given mode. RC options
// configure the free list under ModeRC and ModeEBR and are ignored by the
// GC manager (which has no free list to stripe). It panics on an invalid
// mode, which indicates a programming error at construction time.
func NewManager[T any](mode Mode, opts ...RCOption) Manager[T] {
	switch mode {
	case ModeGC:
		return NewGC[T]()
	case ModeRC:
		return NewRC[T](opts...)
	case ModeEBR:
		return NewEBR[T](opts...)
	default:
		panic("mm: invalid Mode")
	}
}
