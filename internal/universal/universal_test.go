package universal

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSemanticsMatchMapModel(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
	}
	f := func(ops []op) bool {
		d := New[int, int]()
		model := map[int]int{}
		v := 0
		for _, o := range ops {
			k := int(o.Key % 24)
			switch o.Kind % 3 {
			case 0:
				v++
				_, exists := model[k]
				if got := d.Insert(k, v); got != !exists {
					return false
				}
				if !exists {
					model[k] = v
				}
			case 1:
				_, exists := model[k]
				if got := d.Delete(k); got != exists {
					return false
				}
				delete(model, k)
			default:
				mv, exists := model[k]
				got, ok := d.Find(k)
				if ok != exists || (ok && got != mv) {
					return false
				}
			}
		}
		return d.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentOneWinnerPerKey(t *testing.T) {
	d := New[int, int]()
	const (
		goroutines = 8
		keys       = 50
	)
	var wins atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				if d.Insert(k, g) {
					wins.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := wins.Load(); got != keys {
		t.Fatalf("%d inserts won, want %d", got, keys)
	}
	if got := d.Len(); got != keys {
		t.Fatalf("Len = %d, want %d", got, keys)
	}
}

func TestConcurrentConservation(t *testing.T) {
	d := New[int, int]()
	var inserts, deletes atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := (g*31 + i) % 48
				if i%2 == 0 {
					if d.Insert(k, k) {
						inserts.Add(1)
					}
				} else {
					if d.Delete(k) {
						deletes.Add(1)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if got, want := int64(d.Len()), inserts.Load()-deletes.Load(); got != want {
		t.Fatalf("Len = %d, want inserts-deletes = %d", got, want)
	}
}

func TestEntriesCopiedGrows(t *testing.T) {
	d := New[int, int]()
	for k := 0; k < 100; k++ {
		d.Insert(k, k)
	}
	// Inserting n items one by one copies 0+1+...+(n-1) entries: the
	// quadratic overhead §2 attributes to universal methods.
	if got, want := d.EntriesCopied(), int64(100*99/2); got != want {
		t.Fatalf("EntriesCopied = %d, want %d", got, want)
	}
}
