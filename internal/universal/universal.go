// Package universal implements the baseline the paper argues against
// (§1, §2): a Herlihy-style universal construction [13] that makes any
// sequential object lock-free by copying. Each operation reads the
// current object state through an atomic root pointer, copies the whole
// state, applies the operation to the copy, and Compare&Swaps the root
// from the old state to the new one, retrying from scratch on failure.
//
// The construction is correct and non-blocking, but it exhibits exactly
// the inefficiencies the paper lists — "wasted parallelism, excessive
// copying, and generally high overhead" — because every update copies the
// entire dictionary and contending operations discard whole copies.
// Experiment E7 measures the gap against the direct implementation of §3.
package universal

import (
	"cmp"
	"sort"
	"sync/atomic"

	"valois/internal/dict"
	"valois/internal/primitive"
)

// state is the immutable object state: a sorted slice of entries. It is
// never modified after publication; operations copy it.
type state[K cmp.Ordered, V any] struct {
	entries []dict.Entry[K, V]
}

// Dict is a dictionary implemented with the universal construction.
type Dict[K cmp.Ordered, V any] struct {
	root   atomic.Pointer[state[K, V]]
	copies atomic.Int64 // entries copied, for the E7 overhead report
}

var _ dict.Dictionary[int, int] = (*Dict[int, int])(nil)

// New returns an empty universal-construction dictionary.
func New[K cmp.Ordered, V any]() *Dict[K, V] {
	d := &Dict[K, V]{}
	d.root.Store(&state[K, V]{})
	return d
}

// find locates key in s, returning its index and whether it is present.
func find[K cmp.Ordered, V any](s *state[K, V], key K) (int, bool) {
	i := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].Key >= key })
	return i, i < len(s.entries) && s.entries[i].Key == key
}

// Find reports the value stored under key. Reads need no copy: they read
// the current immutable state.
func (d *Dict[K, V]) Find(key K) (V, bool) {
	s := d.root.Load()
	if i, ok := find(s, key); ok {
		return s.entries[i].Value, true
	}
	var zero V
	return zero, false
}

// Insert adds the item if the key is not present, copying the entire
// state and swinging the root.
func (d *Dict[K, V]) Insert(key K, value V) bool {
	var backoff primitive.Backoff
	for {
		s := d.root.Load()
		i, ok := find(s, key)
		if ok {
			return false
		}
		next := &state[K, V]{entries: make([]dict.Entry[K, V], len(s.entries)+1)}
		copy(next.entries, s.entries[:i])
		next.entries[i] = dict.Entry[K, V]{Key: key, Value: value}
		copy(next.entries[i+1:], s.entries[i:])
		d.copies.Add(int64(len(s.entries)))
		if d.root.CompareAndSwap(s, next) {
			return true
		}
		backoff.Wait() // §2.1: back off instead of re-colliding immediately
	}
}

// Delete removes the item with the given key, copying the entire state
// and swinging the root.
func (d *Dict[K, V]) Delete(key K) bool {
	var backoff primitive.Backoff
	for {
		s := d.root.Load()
		i, ok := find(s, key)
		if !ok {
			return false
		}
		next := &state[K, V]{entries: make([]dict.Entry[K, V], len(s.entries)-1)}
		copy(next.entries, s.entries[:i])
		copy(next.entries[i:], s.entries[i+1:])
		d.copies.Add(int64(len(s.entries)))
		if d.root.CompareAndSwap(s, next) {
			return true
		}
		backoff.Wait() // §2.1: back off instead of re-colliding immediately
	}
}

// Len reports the number of items.
func (d *Dict[K, V]) Len() int { return len(d.root.Load().entries) }

// EntriesCopied reports the total number of entries copied by updates —
// the "excessive copying" overhead of the construction.
func (d *Dict[K, V]) EntriesCopied() int64 { return d.copies.Load() }
