package persist

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"valois/internal/proto"
)

// Policy selects when appended records are fsynced to stable storage.
type Policy int

const (
	// PolicyNo never fsyncs explicitly; the OS writes pages back on its
	// own schedule. Fastest, weakest: a crash can lose everything since
	// the last OS writeback.
	PolicyNo Policy = iota
	// PolicyEverySec fsyncs once a second from a background goroutine:
	// a crash loses at most about a second of acknowledged writes.
	PolicyEverySec
	// PolicyAlways flushes and fsyncs inside every Append, before the
	// caller replies to its client: an acknowledged write is durable.
	PolicyAlways
)

// ParsePolicy maps the -fsync flag spellings to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "no":
		return PolicyNo, nil
	case "everysec", "":
		return PolicyEverySec, nil
	case "always":
		return PolicyAlways, nil
	}
	return 0, fmt.Errorf("persist: unknown fsync policy %q (want always, everysec, or no)", s)
}

// String returns the flag spelling of p.
func (p Policy) String() string {
	switch p {
	case PolicyNo:
		return "no"
	case PolicyEverySec:
		return "everysec"
	case PolicyAlways:
		return "always"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// File naming: one AOF segment and at most one snapshot per generation.
// A snapshot run seals segment g, starts segment g+1, and writes
// snapshot g+1 holding everything up to the seal; recovery loads the
// newest snapshot and replays every segment of that generation onward.
const (
	aofPattern  = "aof-%08d.log"
	snapPattern = "snapshot-%08d.snap"
	tmpSuffix   = ".tmp"
)

func aofName(gen uint64) string  { return fmt.Sprintf(aofPattern, gen) }
func snapName(gen uint64) string { return fmt.Sprintf(snapPattern, gen) }

// Stats is a snapshot of the log's counters (the aof_* / snapshot_*
// lines of server STATS).
type Stats struct {
	Records          int64 // records appended since Open
	Bytes            int64 // framed bytes appended since Open
	Fsyncs           int64 // explicit fsync calls on the AOF
	SnapshotRuns     int64 // completed snapshot compactions
	SnapshotLastUnix int64 // unix time of the last completed snapshot
	Replayed         int64 // records applied during recovery at Open
}

// RecoveryInfo reports what Open replayed.
type RecoveryInfo struct {
	SnapshotGen     uint64 // generation of the snapshot loaded (0 = none)
	SnapshotRecords int    // records applied from the snapshot
	TailRecords     int    // records replayed from AOF segments
	TornTail        bool   // the newest segment ended in a torn record (dropped)
}

// Replayed is the total number of records applied during recovery.
func (r RecoveryInfo) Replayed() int { return r.SnapshotRecords + r.TailRecords }

// Log is the durability pipeline for one server: an open AOF segment
// receiving framed command records, plus snapshot compaction. Append is
// safe for concurrent use; the caller provides any ordering it needs
// between applying a mutation and appending it (valoisd holds a
// per-shard mutex across apply+append so replay order matches apply
// order per key).
type Log struct {
	dir    string
	policy Policy
	logf   func(format string, args ...any)

	mu     sync.Mutex // guards f/w/gen/snapping/closed and all file writes
	f      *os.File
	w      *writerAt
	gen    uint64
	snap   bool // a snapshot is in progress
	closed bool
	dirty  bool // bytes appended since the last fsync

	stop     chan struct{} // closes the everysec goroutine
	syncDone chan struct{}

	scratch []byte // Append's encode buffer, reused under mu
	frame   []byte // Append's frame buffer, reused under mu

	records   atomic.Int64
	bytes     atomic.Int64
	fsyncs    atomic.Int64
	snapRuns  atomic.Int64
	snapLast  atomic.Int64
	replayedN atomic.Int64
}

// writerAt is a minimal buffered writer; bufio.Writer would do, but we
// also need to know whether unflushed bytes exist without poking at
// Buffered() under races — everything here runs under Log.mu anyway.
type writerAt struct {
	f   *os.File
	buf []byte
}

func (w *writerAt) Write(p []byte) error {
	w.buf = append(w.buf, p...)
	if len(w.buf) >= 64<<10 {
		return w.Flush()
	}
	return nil
}

func (w *writerAt) Flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	_, err := w.f.Write(w.buf)
	w.buf = w.buf[:0]
	return err
}

// Open opens (creating if needed) the durability directory, recovers its
// contents by calling apply for every surviving record — snapshot first,
// then the AOF tail, in append order — and leaves the log ready for
// Append. A torn final record is truncated away; interior corruption
// fails Open (see the package comment). logf may be nil.
func Open(dir string, policy Policy, apply func(proto.Command) error, logf func(format string, args ...any)) (*Log, RecoveryInfo, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var info RecoveryInfo
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, info, err
	}
	snaps, aofs, err := scanDir(dir)
	if err != nil {
		return nil, info, err
	}

	l := &Log{
		dir:      dir,
		policy:   policy,
		logf:     logf,
		stop:     make(chan struct{}),
		syncDone: make(chan struct{}),
	}

	// Load the newest snapshot, if any.
	var snapGen uint64
	if len(snaps) > 0 {
		snapGen = snaps[len(snaps)-1]
		n, err := replayFile(filepath.Join(dir, snapName(snapGen)), false, apply)
		if err != nil {
			return nil, info, fmt.Errorf("snapshot %s: %w", snapName(snapGen), err)
		}
		info.SnapshotGen = snapGen
		info.SnapshotRecords = n
	}

	// Replay every AOF segment of the snapshot's generation and later,
	// oldest first. Only the newest segment may end torn: older segments
	// are sealed (flushed and fsynced) before a newer one receives its
	// first record.
	var replay []uint64
	for _, g := range aofs {
		if g >= snapGen {
			replay = append(replay, g)
		}
	}
	for i, g := range replay {
		last := i == len(replay)-1
		n, err := replayFile(filepath.Join(dir, aofName(g)), last, apply)
		if err != nil {
			return nil, info, fmt.Errorf("aof %s: %w", aofName(g), err)
		}
		if n < 0 { // torn tail was truncated away
			n = -n - 1
			info.TornTail = true
		}
		info.TailRecords += n
	}

	// The live segment: the newest existing one, or a fresh segment for
	// the snapshot's generation (also covers the empty-directory case,
	// which starts at generation 1).
	l.gen = snapGen
	if len(replay) > 0 {
		l.gen = replay[len(replay)-1]
	}
	if l.gen == 0 {
		l.gen = 1
	}
	f, err := os.OpenFile(filepath.Join(dir, aofName(l.gen)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, info, err
	}
	l.f = f
	l.w = &writerAt{f: f}
	l.replayedN.Store(int64(info.Replayed()))

	if policy == PolicyEverySec {
		go l.syncLoop()
	} else {
		close(l.syncDone)
	}
	if info.Replayed() > 0 || info.TornTail {
		logf("persist: recovered %d records (%d snapshot + %d tail, torn tail: %v) from %s",
			info.Replayed(), info.SnapshotRecords, info.TailRecords, info.TornTail, dir)
	}
	return l, info, nil
}

// scanDir inventories the durability directory: sorted snapshot and AOF
// generations. Leftover temporary files (a snapshot that died before its
// rename) are removed.
func scanDir(dir string) (snaps, aofs []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) == tmpSuffix {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		var g uint64
		if _, err := fmt.Sscanf(name, aofPattern, &g); err == nil && name == aofName(g) {
			aofs = append(aofs, g)
			continue
		}
		if _, err := fmt.Sscanf(name, snapPattern, &g); err == nil && name == snapName(g) {
			snaps = append(snaps, g)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(aofs, func(i, j int) bool { return aofs[i] < aofs[j] })
	return snaps, aofs, nil
}

// replayFile applies every record of one log file. With tolerateTorn, a
// torn final record is dropped and the file truncated back to its intact
// prefix; the count is then returned as -(n+1) to signal the truncation.
// Without it (snapshots, sealed segments) any damage is an error.
func replayFile(path string, tolerateTorn bool, apply func(proto.Command) error) (int, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := NewRecordScanner(f)
	n := 0
	for {
		payload, err := sc.Next()
		if err == io.EOF {
			return n, nil
		}
		if errors.Is(err, ErrTornTail) {
			if !tolerateTorn {
				return n, err
			}
			// Drop the in-flight record: truncate back to the last intact
			// one so future appends extend a clean log.
			if err := f.Truncate(sc.Offset()); err != nil {
				return n, err
			}
			if err := f.Sync(); err != nil {
				return n, err
			}
			return -n - 1, nil
		}
		if err != nil {
			return n, err
		}
		cmd, err := proto.DecodeCommand(payload)
		if err != nil {
			return n, &CorruptError{Offset: sc.Offset(), Reason: "framed payload is not a command: " + err.Error()}
		}
		if err := apply(cmd); err != nil {
			return n, err
		}
		n++
	}
}

// Append frames cmd and appends it to the live AOF segment, fsyncing
// according to the policy. Under PolicyAlways the record is on stable
// storage when Append returns.
func (l *Log) Append(cmd proto.Command) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("persist: log is closed")
	}
	payload, err := proto.AppendCommand(l.scratch[:0], cmd)
	if err != nil {
		return err
	}
	l.scratch = payload[:0] // keep the (possibly grown) buffer
	framed := AppendRecord(l.frame[:0], payload)
	l.frame = framed[:0]
	if err := l.w.Write(framed); err != nil {
		return err
	}
	l.records.Add(1)
	l.bytes.Add(int64(len(framed)))
	l.dirty = true
	if l.policy == PolicyAlways {
		return l.syncLocked()
	}
	return nil
}

// syncLocked flushes the buffer and fsyncs the live segment. Caller
// holds l.mu.
func (l *Log) syncLocked() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	if !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	l.fsyncs.Add(1)
	return nil
}

// Sync forces a flush+fsync of the live segment (used on shutdown and
// by tests).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	return l.syncLocked()
}

// syncLoop is the PolicyEverySec background fsync: once a second, flush
// whatever Append buffered. It exits when Close closes l.stop.
func (l *Log) syncLoop() {
	defer close(l.syncDone)
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			if err := l.Sync(); err != nil {
				l.logf("persist: background fsync: %v", err)
			}
		}
	}
}

// Close flushes, fsyncs, and closes the live segment and stops the
// background fsync goroutine. The Log is unusable afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	err := l.syncLocked()
	l.closed = true
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.mu.Unlock()
	close(l.stop)
	<-l.syncDone
	return err
}

// Stats returns the log's counters.
func (l *Log) Stats() Stats {
	return Stats{
		Records:          l.records.Load(),
		Bytes:            l.bytes.Load(),
		Fsyncs:           l.fsyncs.Load(),
		SnapshotRuns:     l.snapRuns.Load(),
		SnapshotLastUnix: l.snapLast.Load(),
		Replayed:         l.replayedN.Load(),
	}
}

// Dir returns the durability directory.
func (l *Log) Dir() string { return l.dir }
